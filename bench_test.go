// Benchmarks regenerating every table and figure of the paper's evaluation
// (one benchmark per table/figure; see DESIGN.md's experiment index) plus
// ablation benches for the design choices. Figure benches drive the same
// runners as cmd/experiments at a reduced scale and report wall-clock per
// full regeneration; ablations isolate a single mechanism.
package armine

import (
	"io"
	"testing"

	"repro/internal/apriori"
	"repro/internal/baseline"
	"repro/internal/ccpd"
	"repro/internal/db"
	"repro/internal/eclat"
	"repro/internal/expt"
	"repro/internal/gen"
	"repro/internal/hashtree"
	"repro/internal/itemset"
	"repro/internal/mem"
	"repro/internal/quant"
	"repro/internal/rules"
	"repro/internal/seqpat"
	"repro/internal/taxonomy"
	"repro/internal/vbit"
)

// benchScale keeps each figure regeneration around a second.
const benchScale = 0.004

func benchRunner() *expt.Runner {
	r := expt.NewRunner(benchScale)
	r.Procs = []int{1, 2, 4, 8}
	r.MaxTraceTx = 100
	return r
}

func benchDB(b *testing.B, t, i, d int) *db.Database {
	b.Helper()
	out, err := gen.Generate(gen.Params{T: t, I: i, D: d, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	return out
}

// BenchmarkGen measures synthetic database generation (Table 2 substrate).
func BenchmarkGen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := gen.Generate(gen.Params{T: 10, I: 4, D: 5000, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2Properties regenerates the database-properties table.
func BenchmarkTable2Properties(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		if err := r.Table2(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig06TreeSize regenerates the hash-tree-size-per-iteration series.
func BenchmarkFig06TreeSize(b *testing.B) {
	r := benchRunner()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.Figure6(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig07Frequent regenerates the frequent-itemsets-per-iteration series.
func BenchmarkFig07Frequent(b *testing.B) {
	r := benchRunner()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.Figure7(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig08Balancing regenerates the COMP/TREE/COMP-TREE improvements.
func BenchmarkFig08Balancing(b *testing.B) {
	r := benchRunner()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.Figure8(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig09ShortCircuit regenerates the short-circuit improvements.
func BenchmarkFig09ShortCircuit(b *testing.B) {
	r := benchRunner()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.Figure9(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10PerIteration regenerates the per-iteration improvement series.
func BenchmarkFig10PerIteration(b *testing.B) {
	r := benchRunner()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.Figure10(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11Speedup regenerates the CCPD speed-up curves.
func BenchmarkFig11Speedup(b *testing.B) {
	r := benchRunner()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.Figure11(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig12Placement1P regenerates the single-processor placement study.
func BenchmarkFig12Placement1P(b *testing.B) {
	r := benchRunner()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.Figure12(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig13PlacementMP regenerates the multi-processor placement study.
func BenchmarkFig13PlacementMP(b *testing.B) {
	r := benchRunner()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.Figure13(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benches (design choices called out in DESIGN.md) ---

// BenchmarkAblationCounters compares the counter update modes under
// concurrent counting.
func BenchmarkAblationCounters(b *testing.B) {
	d := benchDB(b, 10, 4, 2000)
	for _, mode := range []hashtree.CounterMode{
		hashtree.CounterLocked, hashtree.CounterAtomic, hashtree.CounterPrivate,
	} {
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, _, err := ccpd.Mine(d, ccpd.Options{
					Options: apriori.Options{AbsSupport: 10, ShortCircuit: true},
					Procs:   4, Counter: mode,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationFanout compares fixed fan-outs against the adaptive rule.
func BenchmarkAblationFanout(b *testing.B) {
	d := benchDB(b, 10, 4, 2000)
	for _, fan := range []int{0, 2, 8, 32, 128} { // 0 = adaptive
		name := "adaptive"
		if fan > 0 {
			name = "H" + itoa(fan)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := apriori.Mine(d, apriori.Options{
					AbsSupport: 10, Fanout: fan, ShortCircuit: true,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationVisited compares counting with and without the
// short-circuit VISITED optimization on a wide-transaction workload.
func BenchmarkAblationVisited(b *testing.B) {
	d := benchDB(b, 20, 6, 1500)
	for _, sc := range []bool{false, true} {
		name := "base"
		if sc {
			name = "shortcircuit"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := apriori.Mine(d, apriori.Options{AbsSupport: 8, ShortCircuit: sc})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationJoin compares the equivalence-class join against the
// naive all-pairs join.
func BenchmarkAblationJoin(b *testing.B) {
	d := benchDB(b, 10, 4, 2000)
	res, err := apriori.Mine(d, apriori.Options{AbsSupport: 10})
	if err != nil {
		b.Fatal(err)
	}
	var f2 []itemset.Itemset
	for _, f := range res.ByK[2] {
		f2 = append(f2, f.Items)
	}
	if len(f2) == 0 {
		b.Skip("no frequent 2-itemsets at this scale")
	}
	b.Run("class", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			apriori.GenerateCandidates(f2, false)
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			apriori.GenerateCandidates(f2, true)
		}
	})
}

// BenchmarkAblationDBPartition compares block vs workload-heuristic
// database partitioning.
func BenchmarkAblationDBPartition(b *testing.B) {
	d := benchDB(b, 15, 4, 2000)
	for _, part := range []ccpd.DBPartition{ccpd.PartitionBlock, ccpd.PartitionWorkload} {
		b.Run(part.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, _, err := ccpd.Mine(d, ccpd.Options{
					Options: apriori.Options{AbsSupport: 10, ShortCircuit: true},
					Procs:   4, DBPart: part,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationHashKind compares interleaved vs bitonic tree hashing in
// wall clock (the real-layout side of the TREE optimization).
func BenchmarkAblationHashKind(b *testing.B) {
	d := benchDB(b, 10, 6, 2000)
	for _, h := range []hashtree.HashKind{hashtree.HashInterleaved, hashtree.HashBitonic} {
		b.Run(h.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := apriori.Mine(d, apriori.Options{AbsSupport: 10, Hash: h})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRules measures rule generation from a mined result.
func BenchmarkRules(b *testing.B) {
	d := benchDB(b, 10, 4, 3000)
	res, err := apriori.Mine(d, apriori.Options{AbsSupport: 12})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rules.Generate(res, rules.Options{MinConfidence: 0.5, DBSize: int64(d.Len())})
	}
}

// BenchmarkCounting isolates the support-counting hot loop (tree walk).
func BenchmarkCounting(b *testing.B) {
	d := benchDB(b, 10, 4, 1000)
	res, err := apriori.Mine(d, apriori.Options{AbsSupport: 5, MaxK: 2})
	if err != nil {
		b.Fatal(err)
	}
	var f1 []itemset.Itemset
	for _, f := range res.ByK[1] {
		f1 = append(f1, f.Items)
	}
	cands, _, _ := apriori.GenerateCandidates(f1, false)
	tree, err := hashtree.Build(hashtree.Config{
		K: 2, Threshold: 8, Hash: hashtree.HashBitonic, NumItems: d.NumItems(),
	}, cands)
	if err != nil {
		b.Fatal(err)
	}
	counters := hashtree.NewCounters(hashtree.CounterAtomic, tree.NumCandidates(), 1)
	ctx := tree.NewCountCtx(counters, hashtree.CountOpts{ShortCircuit: true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for t := 0; t < d.Len(); t++ {
			ctx.CountTransaction(d.Items(t))
		}
	}
}

// BenchmarkCountKernel is the allocation-visible view of the frozen-flat
// counting kernel: one full database pass per op over a K=3 tree, reported
// with allocs/op (must be 0) for each counter mode, batched and not. This is
// the benchmark cmd/benchjson snapshots into BENCH_counting.json.
func BenchmarkCountKernel(b *testing.B) {
	d := benchDB(b, 10, 4, 1000)
	res, err := apriori.Mine(d, apriori.Options{AbsSupport: 5, MaxK: 3})
	if err != nil {
		b.Fatal(err)
	}
	var f2 []itemset.Itemset
	for _, f := range res.ByK[2] {
		f2 = append(f2, f.Items)
	}
	cands, _, _ := apriori.GenerateCandidates(f2, false)
	if len(cands) == 0 {
		b.Skip("no 3-candidates at this scale")
	}
	tree, err := hashtree.Build(hashtree.Config{
		K: 3, Threshold: 8, Hash: hashtree.HashBitonic, NumItems: d.NumItems(),
	}, cands)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []hashtree.CounterMode{
		hashtree.CounterLocked, hashtree.CounterAtomic, hashtree.CounterPrivate,
	} {
		for _, batch := range []bool{false, true} {
			name := mode.String()
			if batch {
				name += "-batched"
			}
			b.Run(name, func(b *testing.B) {
				counters := hashtree.NewCounters(mode, tree.NumCandidates(), 1)
				ctx := tree.NewCountCtx(counters, hashtree.CountOpts{
					ShortCircuit: true, BatchUpdates: batch,
				})
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for t := 0; t < d.Len(); t++ {
						ctx.CountTransaction(d.Items(t))
					}
					ctx.Flush()
				}
			})
		}
	}
}

// BenchmarkVBitKernel is the vertical engine's counterpart of
// BenchmarkCountKernel: the same 3-candidate counting job driven through
// word-parallel popcount intersections instead of the hash-tree walk, on a
// dense (bitmap columns) and a sparse (tidlist columns) database. allocs/op
// must be 0 — the kernels run entirely on caller-provided scratch.
func BenchmarkVBitKernel(b *testing.B) {
	for _, spec := range []struct {
		name string
		p    gen.Params
	}{
		{"dense", gen.Params{N: 60, L: 30, T: 12, I: 4, D: 1000, Seed: 1}},
		{"sparse", gen.Params{T: 10, I: 4, D: 1000, Seed: 1}},
	} {
		d, err := gen.Generate(spec.p)
		if err != nil {
			b.Fatal(err)
		}
		res, err := apriori.Mine(d, apriori.Options{AbsSupport: 5, MaxK: 3})
		if err != nil {
			b.Fatal(err)
		}
		var f2 []itemset.Itemset
		for _, f := range res.ByK[2] {
			f2 = append(f2, f.Items)
		}
		cands, _, _ := apriori.GenerateCandidates(f2, false)
		if len(cands) == 0 {
			b.Skip("no 3-candidates at this scale")
		}
		if len(cands) > 4096 {
			cands = cands[:4096]
		}
		b.Run(spec.name, func(b *testing.B) {
			lay := vbit.NewLayout(d, 0)
			scr := lay.NewScratch()
			out := make([]int64, len(cands))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				lay.CountCandidates(scr, cands, out)
			}
		})
	}
}

// BenchmarkPlacementAssign measures address assignment per policy.
func BenchmarkPlacementAssign(b *testing.B) {
	d := benchDB(b, 10, 4, 1000)
	res, err := apriori.Mine(d, apriori.Options{AbsSupport: 5, MaxK: 2})
	if err != nil {
		b.Fatal(err)
	}
	var f1 []itemset.Itemset
	for _, f := range res.ByK[1] {
		f1 = append(f1, f.Items)
	}
	cands, _, _ := apriori.GenerateCandidates(f1, false)
	tree, err := hashtree.Build(hashtree.Config{K: 2, NumItems: d.NumItems()}, cands)
	if err != nil {
		b.Fatal(err)
	}
	for _, pol := range []mem.Policy{mem.PolicyCCPD, mem.PolicySPP, mem.PolicyGPP, mem.PolicyLCAGPP} {
		b.Run(pol.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				hashtree.NewPlacement(tree, pol, 4)
			}
		})
	}
}

// BenchmarkAblationLayout compares real wall-clock counting over the
// pointer-chasing tree (the original malloc'd CCPD layout) vs the
// arena-backed tree (the SPP-style contiguous layout) — the genuine-Go side
// of the Section 5 locality claim.
func BenchmarkAblationLayout(b *testing.B) {
	d := benchDB(b, 10, 4, 2000)
	res, err := apriori.Mine(d, apriori.Options{AbsSupport: 8, MaxK: 2})
	if err != nil {
		b.Fatal(err)
	}
	var f1 []itemset.Itemset
	for _, f := range res.ByK[1] {
		f1 = append(f1, f.Items)
	}
	cands, _, _ := apriori.GenerateCandidates(f1, false)
	cfg := hashtree.Config{K: 2, Threshold: 8, Hash: hashtree.HashBitonic, NumItems: d.NumItems()}

	b.Run("pointer", func(b *testing.B) {
		tree, err := hashtree.BuildPointer(cfg, cands)
		if err != nil {
			b.Fatal(err)
		}
		ctx := tree.NewCountCtx(true)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for t := 0; t < d.Len(); t++ {
				ctx.CountTransaction(d.Items(t))
			}
		}
	})
	b.Run("arena", func(b *testing.B) {
		tree, err := hashtree.Build(cfg, cands)
		if err != nil {
			b.Fatal(err)
		}
		counters := hashtree.NewCounters(hashtree.CounterAtomic, tree.NumCandidates(), 1)
		ctx := tree.NewCountCtx(counters, hashtree.CountOpts{ShortCircuit: true})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for t := 0; t < d.Len(); t++ {
				ctx.CountTransaction(d.Items(t))
			}
		}
	})
}

// BenchmarkBaselines compares the mining algorithms the paper positions
// against: sequential Apriori, DHP (hash filtering), Partition (two
// scans) and Count Distribution (message-passing parallel).
func BenchmarkBaselines(b *testing.B) {
	d := benchDB(b, 10, 4, 2000)
	opts := apriori.Options{AbsSupport: 10, ShortCircuit: true}
	b.Run("apriori", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := apriori.Mine(d, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dhp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := baseline.MineDHP(d, baseline.DHPOptions{Mining: opts}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("partition", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := baseline.MinePartition(d, baseline.PartitionOptions{Mining: opts, Chunks: 4}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("countdist", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := baseline.MineCD(d, baseline.CDOptions{Mining: opts, Procs: 4}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("eclat", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eclat.Mine(d, eclat.Options{AbsSupport: 10, Procs: 4}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("vbit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := vbit.Mine(d, vbit.Options{AbsSupport: 10, Procs: 4}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Extension-task benches (Section 8: sequences, taxonomy, quantitative) ---

// BenchmarkSeqPat measures sequential-pattern mining end to end.
func BenchmarkSeqPat(b *testing.B) {
	d, _, err := seqpat.Generate(seqpat.GenParams{C: 800, SeqLen: 10, NP: 10, PatLen: 3, N: 100, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := seqpat.Mine(d, seqpat.Options{MinSupport: 0.05, Procs: 4, Hash: seqpat.HashBitonic}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTaxonomy measures generalized mining over an extended database.
func BenchmarkTaxonomy(b *testing.B) {
	d := benchDB(b, 6, 3, 1500)
	tx, err := taxonomy.Generate(taxonomy.GenParams{NumLeaves: d.NumItems(), Fanout: 6, Levels: 2, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := taxonomy.Mine(d, tx, taxonomy.Options{
			Mining: apriori.Options{MinSupport: 0.02}, Procs: 2,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQuant measures quantitative mining of a 3-attribute table.
func BenchmarkQuant(b *testing.B) {
	rows := 2000
	tab := &quant.Table{Cols: []quant.Column{
		{Name: "x", Kind: quant.Numeric, Values: make([]float64, rows)},
		{Name: "y", Kind: quant.Numeric, Values: make([]float64, rows)},
		{Name: "c", Kind: quant.Categorical, Values: make([]float64, rows)},
	}}
	for i := 0; i < rows; i++ {
		tab.Cols[0].Values[i] = float64(i % 97)
		tab.Cols[1].Values[i] = float64((i * 7) % 89)
		tab.Cols[2].Values[i] = float64(i % 3)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := quant.Mine(tab, quant.Options{
			Intervals: 4, MaxMerge: 2, Mining: apriori.Options{MinSupport: 0.05},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
