package itemset

import "testing"

// FuzzParseKey checks that arbitrary strings never panic the key parser and
// that accepted keys round-trip through Key().
func FuzzParseKey(f *testing.F) {
	f.Add(New(1, 2, 3).Key())
	f.Add("")
	f.Add("abc")
	f.Add("\x00\x00\x00\x00")
	f.Fuzz(func(t *testing.T, key string) {
		s, err := ParseKey(key)
		if err != nil {
			return
		}
		if s.Key() != key {
			t.Fatalf("round trip: %q -> %v -> %q", key, s, s.Key())
		}
	})
}

// FuzzSubsetInvariants feeds arbitrary raw item lists through the itemset
// constructor and checks representation invariants plus algebra laws.
func FuzzSubsetInvariants(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{2, 3})
	f.Add([]byte{}, []byte{5})
	f.Fuzz(func(t *testing.T, rawA, rawB []byte) {
		mk := func(raw []byte) Itemset {
			items := make([]Item, len(raw))
			for i, v := range raw {
				items[i] = Item(v)
			}
			return New(items...)
		}
		a, b := mk(rawA), mk(rawB)
		if !a.IsSorted() || !b.IsSorted() {
			t.Fatal("constructor produced unsorted itemset")
		}
		u := a.Union(b)
		if !u.Contains(a) || !u.Contains(b) {
			t.Fatalf("union %v misses operand %v/%v", u, a, b)
		}
		x := a.Intersect(b)
		if !a.Contains(x) || !b.Contains(x) {
			t.Fatalf("intersection %v not contained in operands", x)
		}
		m := a.Minus(b)
		if m.Intersect(b).K() != 0 {
			t.Fatalf("difference %v overlaps %v", m, b)
		}
	})
}
