package itemset

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewSortsAndDedups(t *testing.T) {
	s := New(5, 1, 3, 1, 5, 2)
	want := Itemset{1, 2, 3, 5}
	if !s.Equal(want) {
		t.Fatalf("New = %v, want %v", s, want)
	}
	if !s.IsSorted() {
		t.Fatalf("New result not sorted: %v", s)
	}
}

func TestNewEmpty(t *testing.T) {
	s := New()
	if s.K() != 0 {
		t.Fatalf("empty K = %d", s.K())
	}
	if !s.IsSorted() {
		t.Fatal("empty itemset should be sorted")
	}
}

func TestEqual(t *testing.T) {
	cases := []struct {
		a, b Itemset
		want bool
	}{
		{New(1, 2, 3), New(1, 2, 3), true},
		{New(1, 2, 3), New(1, 2), false},
		{New(1, 2), New(1, 3), false},
		{New(), New(), true},
		{nil, New(), true},
	}
	for _, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("%v.Equal(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareAndLess(t *testing.T) {
	cases := []struct {
		a, b Itemset
		want int
	}{
		{New(1, 2), New(1, 3), -1},
		{New(1, 3), New(1, 2), 1},
		{New(1, 2), New(1, 2), 0},
		{New(1), New(1, 2), -1}, // prefix sorts first
		{New(1, 2), New(1), 1},
		{New(), New(1), -1},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("%v.Compare(%v) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := c.a.Less(c.b); got != (c.want < 0) {
			t.Errorf("%v.Less(%v) = %v", c.a, c.b, got)
		}
	}
}

func TestContains(t *testing.T) {
	s := New(1, 4, 5, 9, 12)
	for _, sub := range []Itemset{New(), New(1), New(5, 12), New(1, 4, 5, 9, 12)} {
		if !s.Contains(sub) {
			t.Errorf("%v should contain %v", s, sub)
		}
	}
	for _, sub := range []Itemset{New(2), New(1, 6), New(1, 4, 5, 9, 12, 13), New(0)} {
		if s.Contains(sub) {
			t.Errorf("%v should not contain %v", s, sub)
		}
	}
}

func TestContainsItem(t *testing.T) {
	s := New(2, 4, 8, 16)
	for _, it := range []Item{2, 4, 8, 16} {
		if !s.ContainsItem(it) {
			t.Errorf("missing item %d", it)
		}
	}
	for _, it := range []Item{0, 1, 3, 5, 17} {
		if s.ContainsItem(it) {
			t.Errorf("unexpected item %d", it)
		}
	}
	if Itemset(nil).ContainsItem(1) {
		t.Error("nil itemset contains nothing")
	}
}

func TestSetAlgebra(t *testing.T) {
	a, b := New(1, 3, 5, 7), New(3, 4, 5, 6)
	if got, want := a.Union(b), New(1, 3, 4, 5, 6, 7); !got.Equal(want) {
		t.Errorf("Union = %v, want %v", got, want)
	}
	if got, want := a.Intersect(b), New(3, 5); !got.Equal(want) {
		t.Errorf("Intersect = %v, want %v", got, want)
	}
	if got, want := a.Minus(b), New(1, 7); !got.Equal(want) {
		t.Errorf("Minus = %v, want %v", got, want)
	}
	if got := a.Minus(a); got.K() != 0 {
		t.Errorf("a-a = %v, want empty", got)
	}
}

func TestWithoutIndex(t *testing.T) {
	s := New(10, 20, 30)
	cases := []struct {
		idx  int
		want Itemset
	}{
		{0, New(20, 30)},
		{1, New(10, 30)},
		{2, New(10, 20)},
	}
	for _, c := range cases {
		if got := s.WithoutIndex(c.idx); !got.Equal(c.want) {
			t.Errorf("WithoutIndex(%d) = %v, want %v", c.idx, got, c.want)
		}
	}
	// Original must be unchanged.
	if !s.Equal(New(10, 20, 30)) {
		t.Errorf("WithoutIndex mutated receiver: %v", s)
	}
}

func TestHasPrefix(t *testing.T) {
	s := New(1, 2, 3, 4)
	if !s.HasPrefix(New()) || !s.HasPrefix(New(1)) || !s.HasPrefix(New(1, 2, 3)) {
		t.Error("prefix checks failed")
	}
	if s.HasPrefix(New(2)) || s.HasPrefix(New(1, 3)) || s.HasPrefix(New(1, 2, 3, 4, 5)) {
		t.Error("non-prefixes accepted")
	}
}

func TestKeyRoundTrip(t *testing.T) {
	sets := []Itemset{New(), New(0), New(1, 2, 3), New(1000000, 2000000)}
	for _, s := range sets {
		got, err := ParseKey(s.Key())
		if err != nil {
			t.Fatalf("ParseKey(%v): %v", s, err)
		}
		if !got.Equal(s) {
			t.Errorf("round trip %v -> %v", s, got)
		}
	}
	if _, err := ParseKey("abc"); err == nil {
		t.Error("ParseKey should reject non-multiple-of-4 keys")
	}
}

func TestKeyInjective(t *testing.T) {
	seen := map[string]Itemset{}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		n := rng.Intn(6)
		items := make([]Item, n)
		for j := range items {
			items[j] = Item(rng.Intn(1000))
		}
		s := New(items...)
		k := s.Key()
		if prev, ok := seen[k]; ok && !prev.Equal(s) {
			t.Fatalf("key collision: %v vs %v", prev, s)
		}
		seen[k] = s
	}
}

func TestString(t *testing.T) {
	if got := New(1, 4, 5).String(); got != "(1 4 5)" {
		t.Errorf("String = %q", got)
	}
	if got := New().String(); got != "()" {
		t.Errorf("empty String = %q", got)
	}
}

func TestForEachSubsetLexOrder(t *testing.T) {
	s := New(1, 2, 3, 4)
	var got []Itemset
	s.ForEachSubset(2, func(sub Itemset) bool {
		got = append(got, sub.Clone())
		return true
	})
	want := []Itemset{
		New(1, 2), New(1, 3), New(1, 4),
		New(2, 3), New(2, 4), New(3, 4),
	}
	if len(got) != len(want) {
		t.Fatalf("got %d subsets, want %d", len(got), len(want))
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Errorf("subset %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestForEachSubsetEdges(t *testing.T) {
	s := New(1, 2, 3)
	count := 0
	s.ForEachSubset(0, func(Itemset) bool { count++; return true })
	if count != 0 {
		t.Error("k=0 should enumerate nothing")
	}
	s.ForEachSubset(4, func(Itemset) bool { count++; return true })
	if count != 0 {
		t.Error("k>len should enumerate nothing")
	}
	s.ForEachSubset(3, func(sub Itemset) bool {
		count++
		if !sub.Equal(s) {
			t.Errorf("k=len subset = %v", sub)
		}
		return true
	})
	if count != 1 {
		t.Errorf("k=len should enumerate once, got %d", count)
	}
}

func TestForEachSubsetEarlyStop(t *testing.T) {
	s := New(1, 2, 3, 4, 5)
	count := 0
	s.ForEachSubset(2, func(Itemset) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Errorf("early stop after 3, got %d calls", count)
	}
}

func TestForEachSubsetCount(t *testing.T) {
	s := New(0, 1, 2, 3, 4, 5, 6, 7)
	for k := 1; k <= 8; k++ {
		count := int64(0)
		s.ForEachSubset(k, func(Itemset) bool { count++; return true })
		if want := Binomial(8, k); count != want {
			t.Errorf("k=%d: %d subsets, want %d", k, count, want)
		}
	}
}

func TestBinomial(t *testing.T) {
	cases := []struct {
		n, k int
		want int64
	}{
		{0, 0, 1}, {5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {10, 3, 120},
		{5, 6, 0}, {5, -1, 0}, {52, 5, 2598960},
	}
	for _, c := range cases {
		if got := Binomial(c.n, c.k); got != c.want {
			t.Errorf("Binomial(%d,%d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
	// Saturation, not overflow.
	if got := Binomial(1000, 500); got != int64(1)<<62 {
		t.Errorf("Binomial(1000,500) should saturate, got %d", got)
	}
}

// Property: Contains(sub) agrees with a map-based membership oracle.
func TestContainsProperty(t *testing.T) {
	f := func(raw []uint16, rawSub []uint16) bool {
		items := make([]Item, len(raw))
		for i, v := range raw {
			items[i] = Item(v % 64)
		}
		s := New(items...)
		subItems := make([]Item, 0, len(rawSub))
		for _, v := range rawSub {
			subItems = append(subItems, Item(v%64))
		}
		sub := New(subItems...)
		inSet := map[Item]bool{}
		for _, it := range s {
			inSet[it] = true
		}
		want := true
		for _, it := range sub {
			if !inSet[it] {
				want = false
				break
			}
		}
		return s.Contains(sub) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Union/Intersect/Minus obey |A∪B| = |A|+|B|-|A∩B| and results sorted.
func TestAlgebraProperty(t *testing.T) {
	f := func(ra, rb []uint16) bool {
		mk := func(raw []uint16) Itemset {
			items := make([]Item, len(raw))
			for i, v := range raw {
				items[i] = Item(v % 128)
			}
			return New(items...)
		}
		a, b := mk(ra), mk(rb)
		u, x, m := a.Union(b), a.Intersect(b), a.Minus(b)
		if !u.IsSorted() || !x.IsSorted() || !m.IsSorted() {
			return false
		}
		if len(u) != len(a)+len(b)-len(x) {
			return false
		}
		return len(m) == len(a)-len(x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestClasses(t *testing.T) {
	// F_2 with three prefix classes.
	f2 := []Itemset{
		New(1, 2), New(1, 4), New(1, 5),
		New(2, 3),
		New(4, 5), New(4, 7),
	}
	cls := Classes(f2)
	if len(cls) != 3 {
		t.Fatalf("got %d classes, want 3", len(cls))
	}
	if !cls[0].Prefix.Equal(New(1)) || !reflect.DeepEqual(cls[0].Tails, []Item{2, 4, 5}) {
		t.Errorf("class 0 = %+v", cls[0])
	}
	if !cls[1].Prefix.Equal(New(2)) || len(cls[1].Tails) != 1 {
		t.Errorf("class 1 = %+v", cls[1])
	}
	if !cls[2].Prefix.Equal(New(4)) || !reflect.DeepEqual(cls[2].Tails, []Item{5, 7}) {
		t.Errorf("class 2 = %+v", cls[2])
	}
	if got := TotalJoinPairs(cls); got != 3+0+1 {
		t.Errorf("TotalJoinPairs = %d, want 4", got)
	}
}

func TestClassesF1SingleClass(t *testing.T) {
	// F_1 has a null prefix: exactly one class (Section 3.1.2 example).
	var f1 []Itemset
	for i := Item(0); i < 10; i++ {
		f1 = append(f1, New(i))
	}
	cls := Classes(f1)
	if len(cls) != 1 {
		t.Fatalf("F1 should form one class, got %d", len(cls))
	}
	if cls[0].Size() != 10 {
		t.Errorf("class size = %d", cls[0].Size())
	}
	if cls[0].Pairs() != 45 {
		t.Errorf("pairs = %d, want 45", cls[0].Pairs())
	}
	if got := cls[0].Member(3); !got.Equal(New(3)) {
		t.Errorf("Member(3) = %v", got)
	}
}

func TestClassesEmptyAndDegenerate(t *testing.T) {
	if got := Classes(nil); len(got) != 0 {
		t.Errorf("Classes(nil) = %v", got)
	}
	if got := Classes([]Itemset{{}}); len(got) != 0 {
		t.Errorf("Classes of empty itemsets = %v", got)
	}
}

func TestClassMember(t *testing.T) {
	cls := Classes([]Itemset{New(3, 7, 9), New(3, 7, 12)})
	if len(cls) != 1 {
		t.Fatalf("want one class, got %d", len(cls))
	}
	if got := cls[0].Member(1); !got.Equal(New(3, 7, 12)) {
		t.Errorf("Member(1) = %v", got)
	}
}

// Property: Classes reconstructs exactly the input itemsets, in order.
func TestClassesReconstruct(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		k := 2 + rng.Intn(3)
		seen := map[string]bool{}
		var fk []Itemset
		for i := 0; i < 30; i++ {
			items := make([]Item, 0, k)
			for len(items) < k {
				it := Item(rng.Intn(20))
				dup := false
				for _, x := range items {
					if x == it {
						dup = true
					}
				}
				if !dup {
					items = append(items, it)
				}
			}
			s := New(items...)
			if !seen[s.Key()] {
				seen[s.Key()] = true
				fk = append(fk, s)
			}
		}
		sort.Slice(fk, func(i, j int) bool { return fk[i].Less(fk[j]) })
		var rebuilt []Itemset
		for _, c := range Classes(fk) {
			for i := 0; i < c.Size(); i++ {
				rebuilt = append(rebuilt, c.Member(i))
			}
		}
		if len(rebuilt) != len(fk) {
			t.Fatalf("trial %d: rebuilt %d, want %d", trial, len(rebuilt), len(fk))
		}
		for i := range fk {
			if !rebuilt[i].Equal(fk[i]) {
				t.Fatalf("trial %d: item %d = %v, want %v", trial, i, rebuilt[i], fk[i])
			}
		}
	}
}
