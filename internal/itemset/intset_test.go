package itemset

import (
	"math/rand"
	"testing"
)

func TestSetAddContains(t *testing.T) {
	s := NewSet(3, 4)
	a := New(1, 5, 9)
	b := New(1, 5, 10)
	s.Add(a)
	s.Add(b)
	s.Add(a) // duplicate must not double-count
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if !s.Contains(a) || !s.Contains(b) {
		t.Fatal("members missing")
	}
	if s.Contains(New(1, 5, 11)) || s.Contains(New(2, 5, 9)) {
		t.Fatal("false positive")
	}
	if s.Contains(New(1, 5)) {
		t.Fatal("length mismatch must be false")
	}
}

func TestSetContainsSkip(t *testing.T) {
	s := NewSet(2, 4)
	s.Add(New(2, 7))
	s.Add(New(5, 7))
	cand := New(2, 5, 7)
	// Dropping index 0 gives (5 7): member. Dropping 1 gives (2 7): member.
	// Dropping 2 gives (2 5): not a member.
	if !s.ContainsSkip(cand, 0) || !s.ContainsSkip(cand, 1) {
		t.Fatal("ContainsSkip missed members")
	}
	if s.ContainsSkip(cand, 2) {
		t.Fatal("ContainsSkip false positive")
	}
	if s.ContainsSkip(New(1, 2), 0) {
		t.Fatal("wrong-length input must be false")
	}
}

// TestSetMatchesMap cross-checks the open-addressing set against the former
// map[string]bool representation over random workloads, including growth.
func TestSetMatchesMap(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		k := 1 + rng.Intn(4)
		s := NewSet(k, 2) // deliberately undersized to exercise grow
		ref := map[string]bool{}
		var members []Itemset
		for i := 0; i < 200; i++ {
			m := map[Item]bool{}
			for len(m) < k {
				m[Item(rng.Intn(30))] = true
			}
			var raw Itemset
			for it := range m {
				raw = append(raw, it)
			}
			it := New(raw...)
			s.Add(it)
			ref[it.Key()] = true
			members = append(members, it)
		}
		if s.Len() != len(ref) {
			t.Fatalf("Len = %d, want %d", s.Len(), len(ref))
		}
		for _, it := range members {
			if !s.Contains(it) {
				t.Fatalf("lost member %v after growth", it)
			}
		}
		// Probe random itemsets both ways.
		for i := 0; i < 500; i++ {
			m := map[Item]bool{}
			for len(m) < k {
				m[Item(rng.Intn(30))] = true
			}
			var raw Itemset
			for it := range m {
				raw = append(raw, it)
			}
			probe := New(raw...)
			if s.Contains(probe) != ref[probe.Key()] {
				t.Fatalf("Contains(%v) = %v, ref %v", probe, s.Contains(probe), ref[probe.Key()])
			}
		}
		// ContainsSkip must agree with materialized WithoutIndex.
		for i := 0; i < 200; i++ {
			m := map[Item]bool{}
			for len(m) < k+1 {
				m[Item(rng.Intn(30))] = true
			}
			var raw Itemset
			for it := range m {
				raw = append(raw, it)
			}
			cand := New(raw...)
			drop := rng.Intn(k + 1)
			want := ref[cand.WithoutIndex(drop).Key()]
			if got := s.ContainsSkip(cand, drop); got != want {
				t.Fatalf("ContainsSkip(%v, %d) = %v, want %v", cand, drop, got, want)
			}
		}
	}
}

func TestSetLookupZeroAlloc(t *testing.T) {
	s := NewSet(3, 100)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 100; i++ {
		s.Add(New(Item(rng.Intn(20)), Item(20+rng.Intn(20)), Item(40+rng.Intn(20))))
	}
	probe := New(1, 25, 45)
	cand := New(1, 25, 45, 60)
	allocs := testing.AllocsPerRun(100, func() {
		s.Contains(probe)
		s.ContainsSkip(cand, 3)
	})
	if allocs != 0 {
		t.Fatalf("lookups allocate: %v allocs/op", allocs)
	}
}

func TestSetAddLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add with wrong length did not panic")
		}
	}()
	NewSet(2, 1).Add(New(1, 2, 3))
}
