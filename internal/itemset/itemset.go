// Package itemset provides the fundamental value types of association
// mining: items, itemsets (sorted sets of items), k-subset enumeration and
// the prefix-based equivalence classes used by the optimized candidate join
// of Section 3.1.1 of the paper.
//
// Itemset and class order feed the pinned work model (TestModelTimePinned),
// so the package must stay deterministic:
//
//armlint:pinned
package itemset

import (
	"fmt"
	"sort"
	"strings"
)

// Item is a single attribute of the universe I = {i1 … im}. Items are dense
// non-negative integers; the synthetic generator and the database readers
// guarantee density so that indirection vectors (Table 1 of the paper) can
// be plain slices.
type Item int32

// Itemset is a lexicographically sorted, duplicate-free sequence of items.
// The zero value is the empty itemset.
type Itemset []Item

// New returns a sorted, deduplicated itemset built from items.
func New(items ...Item) Itemset {
	s := make(Itemset, len(items))
	copy(s, items)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s.dedup()
}

func (s Itemset) dedup() Itemset {
	if len(s) < 2 {
		return s
	}
	out := s[:1]
	for _, it := range s[1:] {
		if it != out[len(out)-1] {
			out = append(out, it)
		}
	}
	return out
}

// K returns the number of items; an itemset with k items is a k-itemset.
func (s Itemset) K() int { return len(s) }

// Clone returns an independent copy of s.
func (s Itemset) Clone() Itemset {
	c := make(Itemset, len(s))
	copy(c, s)
	return c
}

// IsSorted reports whether s is strictly increasing (the representation
// invariant of Itemset).
func (s Itemset) IsSorted() bool {
	for i := 1; i < len(s); i++ {
		if s[i-1] >= s[i] {
			return false
		}
	}
	return true
}

// Equal reports whether s and t contain exactly the same items.
func (s Itemset) Equal(t Itemset) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Compare returns -1, 0, or +1 comparing s and t lexicographically.
// A proper prefix sorts before its extensions.
func (s Itemset) Compare(t Itemset) int {
	n := len(s)
	if len(t) < n {
		n = len(t)
	}
	for i := 0; i < n; i++ {
		switch {
		case s[i] < t[i]:
			return -1
		case s[i] > t[i]:
			return 1
		}
	}
	switch {
	case len(s) < len(t):
		return -1
	case len(s) > len(t):
		return 1
	}
	return 0
}

// Less reports whether s sorts lexicographically before t.
func (s Itemset) Less(t Itemset) bool { return s.Compare(t) < 0 }

// Contains reports whether sub ⊆ s. Both must be sorted; the merge walk is
// O(len(s)).
//
//armlint:noalloc
func (s Itemset) Contains(sub Itemset) bool {
	if len(sub) > len(s) {
		return false
	}
	i := 0
	for _, want := range sub {
		for i < len(s) && s[i] < want {
			i++
		}
		if i >= len(s) || s[i] != want {
			return false
		}
		i++
	}
	return true
}

// ContainsItem reports whether the single item it is a member of s,
// by binary search.
func (s Itemset) ContainsItem(it Item) bool {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] < it {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(s) && s[lo] == it
}

// Union returns the sorted union s ∪ t as a fresh itemset.
func (s Itemset) Union(t Itemset) Itemset {
	out := make(Itemset, 0, len(s)+len(t))
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			out = append(out, s[i])
			i++
		case s[i] > t[j]:
			out = append(out, t[j])
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	out = append(out, s[i:]...)
	out = append(out, t[j:]...)
	return out
}

// Intersect returns the sorted intersection s ∩ t as a fresh itemset.
func (s Itemset) Intersect(t Itemset) Itemset {
	out := make(Itemset, 0)
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			i++
		case s[i] > t[j]:
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	return out
}

// Minus returns s \ t as a fresh sorted itemset.
func (s Itemset) Minus(t Itemset) Itemset {
	out := make(Itemset, 0, len(s))
	j := 0
	for _, it := range s {
		for j < len(t) && t[j] < it {
			j++
		}
		if j < len(t) && t[j] == it {
			continue
		}
		out = append(out, it)
	}
	return out
}

// WithoutIndex returns a copy of s with the element at position idx removed;
// it is the (k-1)-subset obtained by dropping one item, used by the pruning
// step of candidate generation.
func (s Itemset) WithoutIndex(idx int) Itemset {
	out := make(Itemset, 0, len(s)-1)
	out = append(out, s[:idx]...)
	out = append(out, s[idx+1:]...)
	return out
}

// HasPrefix reports whether the first len(p) items of s equal p.
func (s Itemset) HasPrefix(p Itemset) bool {
	if len(p) > len(s) {
		return false
	}
	for i := range p {
		if s[i] != p[i] {
			return false
		}
	}
	return true
}

// Key returns a compact string usable as a map key. The encoding is a raw
// little-endian byte dump; it is injective over sorted itemsets.
func (s Itemset) Key() string {
	var b strings.Builder
	b.Grow(4 * len(s))
	for _, it := range s {
		b.WriteByte(byte(it))
		b.WriteByte(byte(it >> 8))
		b.WriteByte(byte(it >> 16))
		b.WriteByte(byte(it >> 24))
	}
	return b.String()
}

// ParseKey reconstructs the itemset encoded by Key.
func ParseKey(key string) (Itemset, error) {
	if len(key)%4 != 0 {
		return nil, fmt.Errorf("itemset: key length %d not a multiple of 4", len(key))
	}
	s := make(Itemset, len(key)/4)
	for i := range s {
		o := 4 * i
		s[i] = Item(uint32(key[o]) | uint32(key[o+1])<<8 | uint32(key[o+2])<<16 | uint32(key[o+3])<<24)
	}
	return s, nil
}

// String renders the itemset as "(a b c)".
func (s Itemset) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, it := range s {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", it)
	}
	b.WriteByte(')')
	return b.String()
}

// ForEachSubset enumerates all k-subsets of s in lexicographic order,
// invoking fn with a scratch buffer that is reused between calls: callers
// must Clone the argument if they retain it. Enumeration stops early if fn
// returns false.
func (s Itemset) ForEachSubset(k int, fn func(Itemset) bool) {
	if k <= 0 || k > len(s) {
		return
	}
	idx := make([]int, k)
	buf := make(Itemset, k)
	for i := range idx {
		idx[i] = i
		buf[i] = s[i]
	}
	for {
		if !fn(buf) {
			return
		}
		// Advance the combination odometer.
		i := k - 1
		for i >= 0 && idx[i] == len(s)-k+i {
			i--
		}
		if i < 0 {
			return
		}
		idx[i]++
		buf[i] = s[idx[i]]
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
			buf[j] = s[idx[j]]
		}
	}
}

// CountSubsets returns C(len(s), k), the number of k-subsets of s, saturating
// at math.MaxInt64 to avoid overflow on absurd inputs.
func (s Itemset) CountSubsets(k int) int64 {
	return Binomial(len(s), k)
}

// Binomial returns C(n, k) saturating at 1<<62 for large values.
func Binomial(n, k int) int64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	const sat = int64(1) << 62
	var r int64 = 1
	for i := 1; i <= k; i++ {
		hi := r * int64(n-k+i)
		if hi/int64(n-k+i) != r || hi < 0 {
			return sat
		}
		r = hi / int64(i)
	}
	return r
}
