package itemset

// Set is an open-addressing hash set of fixed-length itemsets, keyed on the
// raw int32 item encoding — the allocation-free replacement for the
// map[string]bool + Key() prune set of candidate generation. Members all
// have the same length k; storage is a single flat arena of k items per
// slot, probed linearly. Lookups (including the drop-one-position variant
// used by the (k-1)-subset prune) perform zero heap allocations.
//
// A Set is safe for concurrent readers once fully populated; Add is not
// safe for concurrent use.
type Set struct {
	k     int
	mask  uint32
	items []Item // (mask+1) × k item slots
	used  []bool
	n     int
}

// NewSet returns an empty set for k-itemsets sized for about n members.
func NewSet(k, n int) *Set {
	if k < 1 {
		k = 1
	}
	capacity := uint32(8)
	for int(capacity) < 2*n {
		capacity *= 2
	}
	return &Set{
		k:     k,
		mask:  capacity - 1,
		items: make([]Item, int(capacity)*k),
		used:  make([]bool, capacity),
	}
}

// Len returns the number of members.
func (s *Set) Len() int { return s.n }

// hashSkip is an FNV-1a style hash over the items of it, skipping position
// skip (pass skip < 0 to hash all items).
//
//armlint:noalloc
func hashSkip(it Itemset, skip int) uint32 {
	h := uint32(2166136261)
	for i, v := range it {
		if i == skip {
			continue
		}
		h ^= uint32(v)
		h *= 16777619
	}
	return h
}

// Add inserts a k-itemset, growing if the load factor passes 1/2. The items
// are copied into the arena; it may be reused by the caller.
func (s *Set) Add(it Itemset) {
	if len(it) != s.k {
		panic("itemset: Set.Add length mismatch")
	}
	if 2*(s.n+1) > int(s.mask)+1 {
		s.grow()
	}
	slot := hashSkip(it, -1) & s.mask
	for s.used[slot] {
		if s.equalAt(slot, it, -1) {
			return
		}
		slot = (slot + 1) & s.mask
	}
	s.used[slot] = true
	copy(s.items[int(slot)*s.k:], it)
	s.n++
}

// Contains reports whether the k-itemset is a member.
func (s *Set) Contains(it Itemset) bool {
	if len(it) != s.k {
		return false
	}
	return s.lookup(it, -1)
}

// ContainsSkip reports whether the (k)-subset of the (k+1)-itemset it formed
// by dropping position skip is a member — the prune probe, without
// materializing the subset.
//
//armlint:noalloc
func (s *Set) ContainsSkip(it Itemset, skip int) bool {
	if len(it) != s.k+1 || skip < 0 || skip > s.k {
		return false
	}
	return s.lookup(it, skip)
}

//armlint:noalloc
func (s *Set) lookup(it Itemset, skip int) bool {
	slot := hashSkip(it, skip) & s.mask
	for s.used[slot] {
		if s.equalAt(slot, it, skip) {
			return true
		}
		slot = (slot + 1) & s.mask
	}
	return false
}

// equalAt compares slot's member against it with position skip dropped.
//
//armlint:noalloc
func (s *Set) equalAt(slot uint32, it Itemset, skip int) bool {
	member := s.items[int(slot)*s.k : int(slot)*s.k+s.k]
	j := 0
	for i, v := range it {
		if i == skip {
			continue
		}
		if member[j] != v {
			return false
		}
		j++
	}
	return true
}

func (s *Set) grow() {
	oldItems, oldUsed := s.items, s.used
	capacity := 2 * (s.mask + 1)
	s.mask = capacity - 1
	s.items = make([]Item, int(capacity)*s.k)
	s.used = make([]bool, capacity)
	s.n = 0
	for slot, u := range oldUsed {
		if u {
			s.Add(Itemset(oldItems[slot*s.k : slot*s.k+s.k]))
		}
	}
}
