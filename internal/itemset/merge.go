package itemset

// MergeSortedBy k-way merges already-sorted lists into one sorted slice
// using a binary min-heap over the list heads: O(C·log P) comparisons for C
// total elements over P lists, replacing the O(C·P) linear head scan. Ties
// are broken by list index, so for distinct keys the output equals the fully
// sorted concatenation. Used by the parallel candidate-generation and
// frequent-extraction merges, where each worker's output is sorted and only
// the interleave across workers is unknown.
func MergeSortedBy[T any](lists [][]T, less func(a, b T) bool) []T {
	nonEmpty, total := -1, 0
	heads := 0
	for i, l := range lists {
		if len(l) > 0 {
			heads++
			nonEmpty = i
			total += len(l)
		}
	}
	if total == 0 {
		return nil
	}
	if heads == 1 {
		return lists[nonEmpty]
	}

	out := make([]T, 0, total)
	idx := make([]int, len(lists))
	// heap holds list indices ordered by each list's current head element.
	heap := make([]int32, 0, heads)
	before := func(a, b int32) bool {
		la, lb := lists[a], lists[b]
		if less(la[idx[a]], lb[idx[b]]) {
			return true
		}
		if less(lb[idx[b]], la[idx[a]]) {
			return false
		}
		return a < b
	}
	siftDown := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			min := i
			if l < len(heap) && before(heap[l], heap[min]) {
				min = l
			}
			if r < len(heap) && before(heap[r], heap[min]) {
				min = r
			}
			if min == i {
				return
			}
			heap[i], heap[min] = heap[min], heap[i]
			i = min
		}
	}
	for i, l := range lists {
		if len(l) > 0 {
			heap = append(heap, int32(i))
		}
	}
	for i := len(heap)/2 - 1; i >= 0; i-- {
		siftDown(i)
	}
	for len(heap) > 0 {
		src := heap[0]
		out = append(out, lists[src][idx[src]])
		idx[src]++
		if idx[src] == len(lists[src]) {
			heap[0] = heap[len(heap)-1]
			heap = heap[:len(heap)-1]
		}
		siftDown(0)
	}
	return out
}
