package itemset

import (
	"math/rand"
	"sort"
	"testing"
)

func intLess(a, b int) bool { return a < b }

func TestMergeSortedByBasics(t *testing.T) {
	if got := MergeSortedBy(nil, intLess); got != nil {
		t.Errorf("nil lists: %v", got)
	}
	if got := MergeSortedBy([][]int{{}, {}}, intLess); got != nil {
		t.Errorf("empty lists: %v", got)
	}
	// Single non-empty list is returned as-is.
	one := []int{1, 2, 3}
	if got := MergeSortedBy([][]int{{}, one, {}}, intLess); len(got) != 3 || got[0] != 1 {
		t.Errorf("single list: %v", got)
	}
	got := MergeSortedBy([][]int{{1, 4, 7}, {2, 5, 8}, {3, 6, 9}}, intLess)
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("merge = %v", got)
		}
	}
}

func TestMergeSortedByRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		p := 1 + rng.Intn(9)
		lists := make([][]int, p)
		var all []int
		for i := range lists {
			n := rng.Intn(20)
			for j := 0; j < n; j++ {
				lists[i] = append(lists[i], rng.Intn(1000))
			}
			sort.Ints(lists[i])
			all = append(all, lists[i]...)
		}
		sort.Ints(all)
		got := MergeSortedBy(lists, intLess)
		if len(got) != len(all) {
			t.Fatalf("trial %d: len %d != %d", trial, len(got), len(all))
		}
		for i := range all {
			if got[i] != all[i] {
				t.Fatalf("trial %d: got[%d]=%d want %d", trial, i, got[i], all[i])
			}
		}
	}
}

func TestMergeSortedByItemsets(t *testing.T) {
	lists := [][]Itemset{
		{New(1, 2), New(3, 4)},
		{New(1, 3), New(2, 9)},
	}
	got := MergeSortedBy(lists, Itemset.Less)
	want := []Itemset{New(1, 2), New(1, 3), New(2, 9), New(3, 4)}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Fatalf("merge = %v", got)
		}
	}
}
