package itemset

// EquivalenceClass groups the k-itemsets of a sorted frequent set F_k that
// share a common (k-1)-length prefix. Per Section 3.1.1 of the paper,
// candidates for iteration k+1 are formed only from item pairs within one
// class, prefixed by the class identifier.
type EquivalenceClass struct {
	// Prefix is the common (k-1)-prefix (the class identifier). For F_1 the
	// prefix is empty and there is exactly one class.
	Prefix Itemset
	// Tails are the distinct final items of the member itemsets, sorted.
	Tails []Item
}

// Size returns the number of member itemsets |S_i|.
func (c *EquivalenceClass) Size() int { return len(c.Tails) }

// Pairs returns C(|S_i|, 2), the number of candidate itemsets the class can
// generate by self-join.
func (c *EquivalenceClass) Pairs() int64 {
	n := int64(len(c.Tails))
	return n * (n - 1) / 2
}

// Member reconstructs the i-th member itemset (prefix + tail).
func (c *EquivalenceClass) Member(i int) Itemset {
	out := make(Itemset, 0, len(c.Prefix)+1)
	out = append(out, c.Prefix...)
	out = append(out, c.Tails[i])
	return out
}

// Classes partitions the lexicographically sorted k-itemsets fk into
// equivalence classes by their common (k-1)-prefix. fk must be sorted; the
// classes come out in lexicographic prefix order and each class's tails are
// sorted. It runs in a single pass.
func Classes(fk []Itemset) []EquivalenceClass {
	var out []EquivalenceClass
	for _, s := range fk {
		if len(s) == 0 {
			continue
		}
		prefix := s[:len(s)-1]
		tail := s[len(s)-1]
		if n := len(out); n > 0 && out[n-1].Prefix.Equal(prefix) {
			out[n-1].Tails = append(out[n-1].Tails, tail)
			continue
		}
		out = append(out, EquivalenceClass{Prefix: prefix.Clone(), Tails: []Item{tail}})
	}
	return out
}

// TotalJoinPairs sums Pairs over all classes: the number of join candidates
// considered by the optimized join (vs C(|F_k|, 2) for the naive join).
func TotalJoinPairs(classes []EquivalenceClass) int64 {
	var total int64
	for i := range classes {
		total += classes[i].Pairs()
	}
	return total
}
