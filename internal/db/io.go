package db

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"repro/internal/itemset"
)

// Binary file format (little endian):
//
//	magic   uint32  'ARDB'
//	version uint32  1
//	numItem uint32
//	count   uint64  number of transactions
//	repeat count times:
//	    tid   uint64
//	    len   uint32
//	    items len × uint32
//
// The format mirrors the paper's <TID, i1…ik> rows and keeps reads fully
// sequential, matching the single-disk access pattern of the evaluation.

const (
	magic   = 0x41524442 // "ARDB"
	version = 1
)

// Write streams the database to w in the binary format.
func (d *Database) Write(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	var hdr [20]byte
	binary.LittleEndian.PutUint32(hdr[0:], magic)
	binary.LittleEndian.PutUint32(hdr[4:], version)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(d.numItem))
	binary.LittleEndian.PutUint64(hdr[12:], uint64(d.Len()))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var buf [12]byte
	for i := 0; i < d.Len(); i++ {
		items := d.Items(i)
		binary.LittleEndian.PutUint64(buf[0:], uint64(d.tids[i]))
		binary.LittleEndian.PutUint32(buf[8:], uint32(len(items)))
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
		for _, it := range items {
			var ib [4]byte
			binary.LittleEndian.PutUint32(ib[:], uint32(it))
			if _, err := bw.Write(ib[:]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// decodeWindow bounds the byte window the streaming decoder reads through:
// items are pulled from the source in at most this many bytes at a time, so
// decoding never holds more than one window plus one transaction in flight.
const decodeWindow = 1 << 16

// DecodeTransactions streams count records of the binary row layout
// (tid u64, len u32, items len×u32, little endian) from r, invoking emit for
// each after validating it (item range, sortedness). The itemset passed to
// emit aliases a reusable internal buffer that the next record overwrites;
// emit must copy anything it retains (Database.TryAppend copies).
//
// Items are decoded through a fixed decodeWindow-byte buffer in bulk rather
// than one 4-byte ReadFull per item, so arbitrarily long inputs stream in
// constant memory at memory-bandwidth speed. The database reader and the
// segment-store loaders share this path.
func DecodeTransactions(r io.Reader, count uint64, numItems int, emit func(tid int64, items itemset.Itemset) error) error {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, decodeWindow)
	}
	var hdr [12]byte
	raw := make([]byte, decodeWindow)
	items := make(itemset.Itemset, 0, 256)
	for t := uint64(0); t < count; t++ {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return fmt.Errorf("db: transaction %d header: %w", t, err)
		}
		tid := int64(binary.LittleEndian.Uint64(hdr[0:]))
		n := binary.LittleEndian.Uint32(hdr[8:])
		if n > 1<<20 {
			return fmt.Errorf("db: transaction %d has implausible length %d", t, n)
		}
		if cap(items) < int(n) {
			items = make(itemset.Itemset, 0, n)
		}
		items = items[:0]
		for rem := int(n); rem > 0; {
			chunk := rem
			if chunk > len(raw)/4 {
				chunk = len(raw) / 4
			}
			if _, err := io.ReadFull(br, raw[:4*chunk]); err != nil {
				return fmt.Errorf("db: transaction %d item %d: %w", t, len(items), err)
			}
			for i := 0; i < chunk; i++ {
				v := binary.LittleEndian.Uint32(raw[4*i:])
				if v >= uint32(numItems) {
					return fmt.Errorf("db: transaction %d item %d outside universe [0,%d)", t, v, numItems)
				}
				items = append(items, itemset.Item(v))
			}
			rem -= chunk
		}
		if !items.IsSorted() {
			return fmt.Errorf("db: transaction %d (tid %d) not sorted", t, tid)
		}
		if err := emit(tid, items); err != nil {
			return fmt.Errorf("db: transaction %d (tid %d): %w", t, tid, err)
		}
	}
	return nil
}

// Read parses a database from r.
func Read(r io.Reader) (*Database, error) {
	br := bufio.NewReaderSize(r, decodeWindow)
	var hdr [20]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("db: reading header: %w", err)
	}
	if m := binary.LittleEndian.Uint32(hdr[0:]); m != magic {
		return nil, fmt.Errorf("db: bad magic %#x", m)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != version {
		return nil, fmt.Errorf("db: unsupported version %d", v)
	}
	numItem := int(binary.LittleEndian.Uint32(hdr[8:]))
	if numItem > 1<<31-1 {
		return nil, fmt.Errorf("db: item universe %d overflows int32 items", numItem)
	}
	count := binary.LittleEndian.Uint64(hdr[12:])
	d := New(numItem)
	// External files can legitimately exceed the int32-offset arena (2³¹−1
	// item occurrences); TryAppend surfaces that as a read error instead of
	// the silent offset wrap-around the unchecked append used to allow.
	if err := DecodeTransactions(br, count, numItem, d.TryAppend); err != nil {
		return nil, err
	}
	return d, nil
}

// WriteFile writes the database to path.
func (d *Database) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := d.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile loads a database from path.
func ReadFile(path string) (*Database, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
