package db

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"repro/internal/itemset"
)

// Binary file format (little endian):
//
//	magic   uint32  'ARDB'
//	version uint32  1
//	numItem uint32
//	count   uint64  number of transactions
//	repeat count times:
//	    tid   uint64
//	    len   uint32
//	    items len × uint32
//
// The format mirrors the paper's <TID, i1…ik> rows and keeps reads fully
// sequential, matching the single-disk access pattern of the evaluation.

const (
	magic   = 0x41524442 // "ARDB"
	version = 1
)

// Write streams the database to w in the binary format.
func (d *Database) Write(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	var hdr [20]byte
	binary.LittleEndian.PutUint32(hdr[0:], magic)
	binary.LittleEndian.PutUint32(hdr[4:], version)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(d.numItem))
	binary.LittleEndian.PutUint64(hdr[12:], uint64(d.Len()))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var buf [12]byte
	for i := 0; i < d.Len(); i++ {
		items := d.Items(i)
		binary.LittleEndian.PutUint64(buf[0:], uint64(d.tids[i]))
		binary.LittleEndian.PutUint32(buf[8:], uint32(len(items)))
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
		for _, it := range items {
			var ib [4]byte
			binary.LittleEndian.PutUint32(ib[:], uint32(it))
			if _, err := bw.Write(ib[:]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Read parses a database from r.
func Read(r io.Reader) (*Database, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [20]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("db: reading header: %w", err)
	}
	if m := binary.LittleEndian.Uint32(hdr[0:]); m != magic {
		return nil, fmt.Errorf("db: bad magic %#x", m)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != version {
		return nil, fmt.Errorf("db: unsupported version %d", v)
	}
	numItem := int(binary.LittleEndian.Uint32(hdr[8:]))
	if numItem > 1<<31-1 {
		return nil, fmt.Errorf("db: item universe %d overflows int32 items", numItem)
	}
	count := binary.LittleEndian.Uint64(hdr[12:])
	d := New(numItem)
	var buf [12]byte
	for t := uint64(0); t < count; t++ {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("db: transaction %d header: %w", t, err)
		}
		tid := int64(binary.LittleEndian.Uint64(buf[0:]))
		n := binary.LittleEndian.Uint32(buf[8:])
		if n > 1<<20 {
			return nil, fmt.Errorf("db: transaction %d has implausible length %d", t, n)
		}
		items := make(itemset.Itemset, n)
		for i := range items {
			var ib [4]byte
			if _, err := io.ReadFull(br, ib[:]); err != nil {
				return nil, fmt.Errorf("db: transaction %d item %d: %w", t, i, err)
			}
			v := binary.LittleEndian.Uint32(ib[:])
			if v >= uint32(numItem) {
				return nil, fmt.Errorf("db: transaction %d item %d outside universe [0,%d)", t, v, numItem)
			}
			items[i] = itemset.Item(v)
		}
		if !items.IsSorted() {
			return nil, fmt.Errorf("db: transaction %d (tid %d) not sorted", t, tid)
		}
		// External files can legitimately exceed the int32-offset arena
		// (2³¹−1 item occurrences); surface that as a read error instead of
		// the silent offset wrap-around the unchecked append used to allow.
		if err := d.TryAppend(tid, items); err != nil {
			return nil, fmt.Errorf("db: transaction %d (tid %d): %w", t, tid, err)
		}
	}
	return d, nil
}

// WriteFile writes the database to path.
func (d *Database) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := d.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile loads a database from path.
func ReadFile(path string) (*Database, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
