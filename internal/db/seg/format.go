// Package seg is the out-of-core segmented columnar store: a transaction
// database split into bounded segments, each laid out exactly like the
// in-memory db.Database (int64 tids, int32 cumulative offsets, int32 item
// arena), addressed globally with int64 transaction indexes. A database far
// larger than RAM — and far larger than the 2³¹−1 item occurrences one int32
// arena can hold — mines via streaming passes: segments load one (or a
// budgeted few) at a time, the counting kernels run on each segment
// unchanged, and a prefetcher goroutine double-buffers segment N+1 while the
// pool counts segment N (Pipeline).
//
// On-disk layout (little endian), written atomically (temp + fsync + rename):
//
//	header   64 bytes (see below)
//	payload  per segment: tids block, offsets block, arena block,
//	         each zero-padded to an 8-byte boundary so a memory-mapped
//	         file casts straight to the column types
//	dir      numSegs × 48-byte extent entries
//
// Header:
//
//	magic      uint32  'ARSG'
//	version    uint32  1
//	numItems   uint64  item universe (items are < numItems)
//	numTx      uint64  total transactions across all segments
//	totalItems uint64  total item occurrences Σ|t|
//	numSegs    uint64
//	dirOff     uint64  file offset of the directory
//	reserved   16 bytes (zero)
//
// Directory entry (one per segment, in segment order):
//
//	txOff    uint64  global index of the segment's first transaction
//	numTx    uint64  transactions in the segment
//	arenaLen uint64  item occurrences in the segment (≤ db.ArenaLimit())
//	tidsOff  uint64  file offset of the tids block (numTx × int64)
//	offsOff  uint64  file offset of the offsets block ((numTx+1) × int32)
//	arenaOff uint64  file offset of the arena block (arenaLen × int32)
//
// Segment contents feed the pinned work models of the engines that mine
// them, so the package itself is pinned: segment order, offsets and arena
// layout must be bit-deterministic (the prefetch pipeline's wall-clock
// stall counters carry explicit determinism allows — observability only):
//
//armlint:pinned
package seg

import (
	"encoding/binary"
	"fmt"
)

const (
	// Magic identifies a segmented store file ("ARSG"); db.ReadFile's "ARDB"
	// magic check rejects it, and IsSegmented sniffs it.
	Magic   = 0x41525347
	version = 1

	headerBytes   = 64
	dirEntryBytes = 48
)

// header is the decoded fixed-size file header.
type header struct {
	numItems   uint64
	numTx      uint64
	totalItems uint64
	numSegs    uint64
	dirOff     uint64
}

func (h header) encode() [headerBytes]byte {
	var b [headerBytes]byte
	binary.LittleEndian.PutUint32(b[0:], Magic)
	binary.LittleEndian.PutUint32(b[4:], version)
	binary.LittleEndian.PutUint64(b[8:], h.numItems)
	binary.LittleEndian.PutUint64(b[16:], h.numTx)
	binary.LittleEndian.PutUint64(b[24:], h.totalItems)
	binary.LittleEndian.PutUint64(b[32:], h.numSegs)
	binary.LittleEndian.PutUint64(b[40:], h.dirOff)
	return b
}

func decodeHeader(b []byte) (header, error) {
	if len(b) < headerBytes {
		return header{}, fmt.Errorf("seg: header truncated at %d bytes", len(b))
	}
	if m := binary.LittleEndian.Uint32(b[0:]); m != Magic {
		return header{}, fmt.Errorf("seg: bad magic %#x", m)
	}
	if v := binary.LittleEndian.Uint32(b[4:]); v != version {
		return header{}, fmt.Errorf("seg: unsupported version %d", v)
	}
	return header{
		numItems:   binary.LittleEndian.Uint64(b[8:]),
		numTx:      binary.LittleEndian.Uint64(b[16:]),
		totalItems: binary.LittleEndian.Uint64(b[24:]),
		numSegs:    binary.LittleEndian.Uint64(b[32:]),
		dirOff:     binary.LittleEndian.Uint64(b[40:]),
	}, nil
}

// SegmentInfo is one directory entry: a segment's global extent and the file
// offsets of its three column blocks.
type SegmentInfo struct {
	TxOff    int64 // global index of the first transaction
	NumTx    int64
	ArenaLen int64
	TidsOff  int64
	OffsOff  int64
	ArenaOff int64
}

// DecodedBytes returns the segment's in-memory footprint once materialized:
// the byte budget unit the Pipeline counts residents in.
func (s SegmentInfo) DecodedBytes() int64 {
	return s.NumTx*8 + (s.NumTx+1)*4 + s.ArenaLen*4
}

func (s SegmentInfo) encode() [dirEntryBytes]byte {
	var b [dirEntryBytes]byte
	binary.LittleEndian.PutUint64(b[0:], uint64(s.TxOff))
	binary.LittleEndian.PutUint64(b[8:], uint64(s.NumTx))
	binary.LittleEndian.PutUint64(b[16:], uint64(s.ArenaLen))
	binary.LittleEndian.PutUint64(b[24:], uint64(s.TidsOff))
	binary.LittleEndian.PutUint64(b[32:], uint64(s.OffsOff))
	binary.LittleEndian.PutUint64(b[40:], uint64(s.ArenaOff))
	return b
}

func decodeDirEntry(b []byte) SegmentInfo {
	return SegmentInfo{
		TxOff:    int64(binary.LittleEndian.Uint64(b[0:])),
		NumTx:    int64(binary.LittleEndian.Uint64(b[8:])),
		ArenaLen: int64(binary.LittleEndian.Uint64(b[16:])),
		TidsOff:  int64(binary.LittleEndian.Uint64(b[24:])),
		OffsOff:  int64(binary.LittleEndian.Uint64(b[32:])),
		ArenaOff: int64(binary.LittleEndian.Uint64(b[40:])),
	}
}

// pad8 returns n rounded up to the next multiple of 8 (block alignment: the
// mmap loader casts blocks in place, so every block must start 8-aligned).
func pad8(n int64) int64 { return (n + 7) &^ 7 }
