package seg

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"os"

	"repro/internal/db"
	"repro/internal/itemset"
)

// WriterOptions bounds the segments a Writer cuts.
type WriterOptions struct {
	// NumItems is the item-universe hint; it grows automatically past any
	// appended item, exactly like db.Database.
	NumItems int
	// SegTx caps transactions per segment. 0 uses 1<<18.
	SegTx int
	// SegItems caps item occurrences per segment. 0 uses 1<<26. The
	// effective cap is always clamped to db.ArenaLimit(): a written segment
	// must materialize into one int32-offset arena, whatever the caller
	// asked for.
	SegItems int64
}

func (o WriterOptions) withDefaults() WriterOptions {
	if o.SegTx <= 0 {
		o.SegTx = 1 << 18
	}
	if o.SegItems <= 0 {
		o.SegItems = 1 << 26
	}
	if lim := db.ArenaLimit(); o.SegItems > lim {
		o.SegItems = lim
	}
	return o
}

// Writer streams transactions into a segmented store file without ever
// materializing more than one segment: internal/gen can generate databases
// of any size through it in bounded memory. The file appears at its final
// path only on a successful Close (temp + fsync + rename, the same atomic
// publish discipline as the checkpoint writer); a crashed or aborted write
// leaves at most a .tmp file behind.
type Writer struct {
	path string
	tmp  string
	f    *os.File
	bw   *bufio.Writer
	opts WriterOptions

	off int64 // bytes written to the payload so far (file offset)
	dir []SegmentInfo

	// Current (unsealed) segment columns.
	tids    []int64
	offsets []int32
	arena   []itemset.Item

	txOff      int64 // global index of the current segment's first transaction
	totalItems int64
	numItems   int
	err        error
}

// Create opens a streaming writer targeting path.
func Create(path string, opts WriterOptions) (*Writer, error) {
	opts = opts.withDefaults()
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return nil, err
	}
	w := &Writer{
		path: path, tmp: tmp, f: f,
		bw:       bufio.NewWriterSize(f, 1<<20),
		opts:     opts,
		offsets:  []int32{0},
		numItems: opts.NumItems,
	}
	// Header placeholder; Close patches the real one in place before the
	// rename publishes the file.
	var zero [headerBytes]byte
	if _, err := w.bw.Write(zero[:]); err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, err
	}
	w.off = headerBytes
	return w, nil
}

// Append adds one transaction, sealing the current segment first when the
// transaction would push it past the SegTx or SegItems bound. items must be
// sorted; unlike the in-memory TryAppend there is no arena-full failure
// mode — that is the point of the store — so the only errors are I/O and a
// single transaction too large for any segment.
func (w *Writer) Append(tid int64, items itemset.Itemset) error {
	if w.err != nil {
		return w.err
	}
	if !items.IsSorted() {
		return w.fail(fmt.Errorf("seg: transaction %d not sorted", tid))
	}
	if int64(len(items)) > w.opts.SegItems {
		return w.fail(fmt.Errorf("seg: transaction %d has %d items, above the per-segment arena cap %d", tid, len(items), w.opts.SegItems))
	}
	if len(w.tids) >= w.opts.SegTx || int64(len(w.arena))+int64(len(items)) > w.opts.SegItems {
		if err := w.seal(); err != nil {
			return err
		}
	}
	w.tids = append(w.tids, tid)
	w.arena = append(w.arena, items...)
	w.offsets = append(w.offsets, int32(len(w.arena)))
	for _, it := range items {
		if int(it) >= w.numItems {
			w.numItems = int(it) + 1
		}
	}
	w.totalItems += int64(len(items))
	return nil
}

// seal writes the current segment's three blocks and resets the columns.
func (w *Writer) seal() error {
	if len(w.tids) == 0 {
		return nil
	}
	info := SegmentInfo{
		TxOff:    w.txOff,
		NumTx:    int64(len(w.tids)),
		ArenaLen: int64(len(w.arena)),
	}
	var err error
	info.TidsOff, err = w.block(len(w.tids)*8, func(b []byte) {
		for i, t := range w.tids {
			binary.LittleEndian.PutUint64(b[8*i:], uint64(t))
		}
	})
	if err != nil {
		return w.fail(err)
	}
	info.OffsOff, err = w.block(len(w.offsets)*4, func(b []byte) {
		for i, o := range w.offsets {
			binary.LittleEndian.PutUint32(b[4*i:], uint32(o))
		}
	})
	if err != nil {
		return w.fail(err)
	}
	info.ArenaOff, err = w.block(len(w.arena)*4, func(b []byte) {
		for i, it := range w.arena {
			binary.LittleEndian.PutUint32(b[4*i:], uint32(it))
		}
	})
	if err != nil {
		return w.fail(err)
	}
	w.dir = append(w.dir, info)
	w.txOff += int64(len(w.tids))
	w.tids = w.tids[:0]
	w.offsets = append(w.offsets[:0], 0)
	w.arena = w.arena[:0]
	return nil
}

// block writes one n-byte column block (encoded by fill into a scratch
// buffer) zero-padded to the 8-byte alignment the mmap loader requires, and
// returns its file offset.
func (w *Writer) block(n int, fill func([]byte)) (int64, error) {
	off := w.off
	b := make([]byte, pad8(int64(n)))
	fill(b[:n])
	if _, err := w.bw.Write(b); err != nil {
		return 0, err
	}
	w.off += int64(len(b))
	return off, nil
}

// Close seals the final segment, writes the directory, patches the header,
// syncs, and atomically renames the temp file into place.
func (w *Writer) Close() error {
	if w.err != nil {
		return w.err
	}
	if err := w.seal(); err != nil {
		return err
	}
	dirOff := w.off
	for _, s := range w.dir {
		e := s.encode()
		if _, err := w.bw.Write(e[:]); err != nil {
			return w.fail(err)
		}
		w.off += dirEntryBytes
	}
	if err := w.bw.Flush(); err != nil {
		return w.fail(err)
	}
	hdr := header{
		numItems:   uint64(w.numItems),
		numTx:      uint64(w.txOff),
		totalItems: uint64(w.totalItems),
		numSegs:    uint64(len(w.dir)),
		dirOff:     uint64(dirOff),
	}
	hb := hdr.encode()
	if _, err := w.f.WriteAt(hb[:], 0); err != nil {
		return w.fail(err)
	}
	if err := w.f.Sync(); err != nil {
		return w.fail(err)
	}
	if err := w.f.Close(); err != nil {
		w.err = err
		return err
	}
	if err := os.Rename(w.tmp, w.path); err != nil {
		w.err = err
		return err
	}
	w.err = os.ErrClosed // further writes fail loudly
	return nil
}

// Abort discards the temp file; safe after any error, a no-op after Close.
func (w *Writer) Abort() {
	if w.err == os.ErrClosed {
		return
	}
	w.f.Close()
	os.Remove(w.tmp)
	w.err = os.ErrClosed
}

// fail latches the first error, closes and removes the temp file.
func (w *Writer) fail(err error) error {
	if w.err == nil {
		w.err = err
		w.f.Close()
		os.Remove(w.tmp)
	}
	return w.err
}

// WriteDatabase splits an in-memory database into a segmented store file —
// the conversion path tests and the CLI use to compare in-RAM and
// out-of-core runs on identical data.
func WriteDatabase(path string, d *db.Database, opts WriterOptions) error {
	if opts.NumItems < d.NumItems() {
		opts.NumItems = d.NumItems()
	}
	w, err := Create(path, opts)
	if err != nil {
		return err
	}
	for i := 0; i < d.Len(); i++ {
		if err := w.Append(d.TID(i), d.Items(i)); err != nil {
			w.Abort()
			return err
		}
	}
	return w.Close()
}
