package seg

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/db"
	"repro/internal/gen"
	"repro/internal/itemset"
)

// genDB builds a deterministic synthetic database for the tests.
func genDB(t *testing.T, txs int, seed int64) *db.Database {
	t.Helper()
	d, err := gen.Generate(gen.Params{N: 50, L: 12, I: 4, T: 8, D: txs, Seed: seed})
	if err != nil {
		t.Fatalf("gen: %v", err)
	}
	return d
}

// writeSeg converts d to a segmented store in a temp dir and returns its path.
func writeSeg(t *testing.T, d *db.Database, opts WriterOptions) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "store.arseg")
	if err := WriteDatabase(path, d, opts); err != nil {
		t.Fatalf("WriteDatabase: %v", err)
	}
	return path
}

// checkAgainst verifies that streaming r's segments in order reproduces d
// transaction for transaction.
func checkAgainst(t *testing.T, r *Reader, d *db.Database) {
	t.Helper()
	if r.NumTx() != int64(d.Len()) {
		t.Fatalf("NumTx = %d, want %d", r.NumTx(), d.Len())
	}
	if r.NumItems() != d.NumItems() {
		t.Fatalf("NumItems = %d, want %d", r.NumItems(), d.NumItems())
	}
	var buf Buffer
	var global int
	for i := 0; i < r.NumSegments(); i++ {
		info := r.Segment(i)
		if info.TxOff != int64(global) {
			t.Fatalf("segment %d TxOff = %d, want %d", i, info.TxOff, global)
		}
		sd, err := r.LoadSegment(i, &buf)
		if err != nil {
			t.Fatalf("LoadSegment(%d): %v", i, err)
		}
		for j := 0; j < sd.Len(); j++ {
			if sd.TID(j) != d.TID(global) {
				t.Fatalf("tx %d (seg %d row %d): tid %d, want %d", global, i, j, sd.TID(j), d.TID(global))
			}
			if !reflect.DeepEqual(sd.Items(j), d.Items(global)) {
				t.Fatalf("tx %d (seg %d row %d): items %v, want %v", global, i, j, sd.Items(j), d.Items(global))
			}
			global++
		}
	}
	if global != d.Len() {
		t.Fatalf("streamed %d transactions, want %d", global, d.Len())
	}
}

func TestRoundTrip(t *testing.T) {
	d := genDB(t, 500, 11)
	// SegTx=123 forces several segments with a ragged tail.
	path := writeSeg(t, d, WriterOptions{SegTx: 123})
	r, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer r.Close()
	if r.NumSegments() != (500+122)/123 {
		t.Fatalf("NumSegments = %d, want %d", r.NumSegments(), (500+122)/123)
	}
	if r.TotalItems() <= 0 {
		t.Fatalf("TotalItems = %d, want > 0", r.TotalItems())
	}
	checkAgainst(t, r, d)
}

func TestSegItemsCut(t *testing.T) {
	d := genDB(t, 200, 3)
	// A tight arena cap must cut segments by item volume, not tx count.
	path := writeSeg(t, d, WriterOptions{SegItems: 100})
	r, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer r.Close()
	if r.NumSegments() < 2 {
		t.Fatalf("NumSegments = %d, want >= 2 under a 100-item cap", r.NumSegments())
	}
	for i := 0; i < r.NumSegments(); i++ {
		if got := r.Segment(i).ArenaLen; got > 100 {
			t.Fatalf("segment %d arena %d exceeds the 100-item cap", i, got)
		}
	}
	checkAgainst(t, r, d)
}

func TestMappedMatchesReadAt(t *testing.T) {
	d := genDB(t, 300, 7)
	path := writeSeg(t, d, WriterOptions{SegTx: 64})
	mr, err := OpenMapped(path)
	if err != nil {
		t.Skipf("OpenMapped unavailable: %v", err)
	}
	defer mr.Close()
	if !mr.Mapped() {
		t.Fatal("Mapped() = false for OpenMapped reader")
	}
	checkAgainst(t, mr, d)
}

func TestBlockAlignment(t *testing.T) {
	d := genDB(t, 97, 5) // odd counts exercise the padding
	path := writeSeg(t, d, WriterOptions{SegTx: 13})
	r, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer r.Close()
	for i := 0; i < r.NumSegments(); i++ {
		s := r.Segment(i)
		for _, off := range []int64{s.TidsOff, s.OffsOff, s.ArenaOff} {
			if off%8 != 0 {
				t.Fatalf("segment %d block offset %d not 8-aligned", i, off)
			}
		}
	}
}

func TestIsSegmented(t *testing.T) {
	d := genDB(t, 50, 1)
	segPath := writeSeg(t, d, WriterOptions{})
	if ok, err := IsSegmented(segPath); err != nil || !ok {
		t.Fatalf("IsSegmented(seg file) = %v, %v; want true, nil", ok, err)
	}
	ardb := filepath.Join(t.TempDir(), "flat.ardb")
	if err := d.WriteFile(ardb); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if ok, err := IsSegmented(ardb); err != nil || ok {
		t.Fatalf("IsSegmented(ardb file) = %v, %v; want false, nil", ok, err)
	}
	short := filepath.Join(t.TempDir(), "short")
	if err := os.WriteFile(short, []byte{1, 2}, 0o644); err != nil {
		t.Fatal(err)
	}
	if ok, err := IsSegmented(short); err != nil || ok {
		t.Fatalf("IsSegmented(short file) = %v, %v; want false, nil", ok, err)
	}
}

func TestOpenRejectsCorruption(t *testing.T) {
	d := genDB(t, 120, 9)
	path := writeSeg(t, d, WriterOptions{SegTx: 40})
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	write := func(t *testing.T, b []byte) string {
		t.Helper()
		p := filepath.Join(t.TempDir(), "bad.arseg")
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	cases := []struct {
		name   string
		mut    func([]byte) []byte
		substr string
	}{
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b }, "bad magic"},
		{"bad version", func(b []byte) []byte { b[4] = 9; return b }, "unsupported version"},
		{"truncated header", func(b []byte) []byte { return b[:10] }, "reading header"},
		{"truncated directory", func(b []byte) []byte { return b[:len(b)-20] }, "outside file"},
		{"truncated payload", func(b []byte) []byte {
			// Chop a payload block but keep a well-formed header+dir by
			// rewriting nothing: the dir extent check must catch it.
			return b[:headerBytes+8]
		}, "outside file"},
		{"dirOff past EOF", func(b []byte) []byte {
			hb := header{numItems: 10, numTx: 1, totalItems: 1, numSegs: 1, dirOff: uint64(len(b)) + 1000}.encode()
			copy(b, hb[:])
			return b
		}, "outside file"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.mut(append([]byte(nil), raw...))
			_, err := Open(write(t, b))
			if err == nil {
				t.Fatal("Open accepted corrupted file")
			}
			if !strings.Contains(err.Error(), tc.substr) {
				t.Fatalf("error %q does not contain %q", err, tc.substr)
			}
		})
	}
}

func TestWriterRejectsUnsorted(t *testing.T) {
	w, err := Create(filepath.Join(t.TempDir(), "x.arseg"), WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	err = w.Append(1, itemset.Itemset{3, 1, 2})
	if err == nil || !strings.Contains(err.Error(), "not sorted") {
		t.Fatalf("Append(unsorted) = %v, want not-sorted error", err)
	}
	// The writer is latched: further appends return the same failure.
	if err2 := w.Append(2, itemset.Itemset{1}); !errors.Is(err2, err) && err2 == nil {
		t.Fatalf("Append after failure = %v, want latched error", err2)
	}
}

func TestWriterOversizeTransaction(t *testing.T) {
	w, err := Create(filepath.Join(t.TempDir(), "x.arseg"), WriterOptions{SegItems: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(1, itemset.Itemset{0, 1, 2, 3, 4}); err == nil ||
		!strings.Contains(err.Error(), "per-segment arena cap") {
		t.Fatalf("Append(oversize) = %v, want arena-cap error", err)
	}
}

func TestWriterAtomicPublish(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.arseg")
	w, err := Create(path, WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(1, itemset.Itemset{0, 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("final path exists before Close (err=%v)", err)
	}
	w.Abort()
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("tmp file survives Abort (err=%v)", err)
	}

	w, err = Create(path, WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(1, itemset.Itemset{0, 1}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("tmp file survives Close (err=%v)", err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatalf("Open after Close: %v", err)
	}
	defer r.Close()
	if r.NumTx() != 1 || r.NumItems() != 2 {
		t.Fatalf("got numTx=%d numItems=%d, want 1, 2", r.NumTx(), r.NumItems())
	}
}

func TestEmptyStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.arseg")
	w, err := Create(path, WriterOptions{NumItems: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer r.Close()
	if r.NumSegments() != 0 || r.NumTx() != 0 || r.NumItems() != 5 {
		t.Fatalf("got segs=%d tx=%d items=%d, want 0, 0, 5", r.NumSegments(), r.NumTx(), r.NumItems())
	}
}

func TestArenaLimitRespected(t *testing.T) {
	// With the test hook shrinking the arena limit, the writer must clamp
	// SegItems so every segment still materializes as one in-memory arena.
	// Generate first: the in-memory generator needs the real limit.
	d := genDB(t, 100, 21)
	restore := db.SetArenaLimitForTesting(64)
	defer restore()
	path := writeSeg(t, d, WriterOptions{SegItems: 1 << 20})
	r, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer r.Close()
	if r.NumSegments() < 2 {
		t.Fatalf("NumSegments = %d, want >= 2 under a 64-item arena limit", r.NumSegments())
	}
	checkAgainst(t, r, d) // every LoadSegment goes through FromColumns' limit check
}
