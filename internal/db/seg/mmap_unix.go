//go:build unix

package seg

import (
	"fmt"
	"os"
	"syscall"
)

// OpenMapped opens a segmented store with the mmap-backed loader:
// LoadSegment returns databases whose columns alias a shared read-only
// mapping of the whole file, so segment "loads" cost nothing and residency
// is managed by the kernel's page cache instead of the pipeline's buffers.
// Requires a little-endian host (the on-disk byte order); Open is the
// portable fallback.
func OpenMapped(path string) (*Reader, error) {
	if !littleEndianHost() {
		return nil, fmt.Errorf("seg: mmap loader requires a little-endian host (use Open)")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	r := &Reader{f: f}
	if err := r.loadDirectory(); err != nil {
		f.Close()
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() > 0 {
		data, err := syscall.Mmap(int(f.Fd()), 0, int(st.Size()), syscall.PROT_READ, syscall.MAP_SHARED)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("seg: mmap: %w", err)
		}
		r.mapped = data
	}
	return r, nil
}

func munmap(data []byte) error { return syscall.Munmap(data) }
