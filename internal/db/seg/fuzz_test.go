package seg

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/db"
	"repro/internal/gen"
	"repro/internal/itemset"
)

// FuzzOpen hammers the directory loader with truncated and mutated store
// files: whatever the bytes, Open must either fail cleanly or produce a
// reader whose segments all load and validate — never panic or index out of
// range. CI runs this for a few seconds alongside the ARDB decode fuzzer.
func FuzzOpen(f *testing.F) {
	d, err := gen.Generate(gen.Params{N: 30, L: 8, I: 3, T: 6, D: 80, Seed: 43})
	if err != nil {
		f.Fatal(err)
	}
	dir := f.TempDir()
	path := filepath.Join(dir, "seed.arseg")
	if err := WriteDatabase(path, d, WriterOptions{SegTx: 16}); err != nil {
		f.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(raw)
	f.Add(raw[:headerBytes])
	f.Add(raw[:len(raw)-dirEntryBytes/2]) // truncated directory
	f.Add([]byte{})

	// A tiny hand-rolled store exercises the small-file paths.
	small := filepath.Join(dir, "small.arseg")
	w, err := Create(small, WriterOptions{})
	if err != nil {
		f.Fatal(err)
	}
	if err := w.Append(7, itemset.Itemset{1, 2, 3}); err != nil {
		f.Fatal(err)
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	sraw, err := os.ReadFile(small)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(sraw)

	f.Fuzz(func(t *testing.T, data []byte) {
		p := filepath.Join(t.TempDir(), "fuzz.arseg")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Skip()
		}
		r, err := Open(p)
		if err != nil {
			return // rejected cleanly
		}
		defer r.Close()
		// Accepted: every segment must stream and validate without panicking.
		pl := r.NewPipeline(PipelineOptions{})
		_ = pl.ForEach(context.Background(), func(_ int, sd *db.Database) error {
			_ = sd.Len()
			return nil
		})
	})
}
