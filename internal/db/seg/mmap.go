package seg

import (
	"unsafe"

	"repro/internal/itemset"
)

// mapSegment serves segment s straight out of the file mapping: the column
// slices alias the mapped bytes, so "loading" a segment is O(1) and the
// kernel's page cache is the only copy. The store is little endian on disk
// and the cast reinterprets bytes in place, so the mmap loader is only
// offered on little-endian hosts (OpenMapped checks); block offsets are
// 8-aligned by the writer and the mapping is page-aligned, so the casts are
// always aligned.
func (r *Reader) mapSegment(s SegmentInfo) ([]int64, []int32, []itemset.Item, error) {
	var tids []int64
	if s.NumTx > 0 {
		tids = unsafe.Slice((*int64)(unsafe.Pointer(&r.mapped[s.TidsOff])), s.NumTx)
	}
	offsets := unsafe.Slice((*int32)(unsafe.Pointer(&r.mapped[s.OffsOff])), s.NumTx+1)
	var arena []itemset.Item
	if s.ArenaLen > 0 {
		arena = unsafe.Slice((*itemset.Item)(unsafe.Pointer(&r.mapped[s.ArenaOff])), s.ArenaLen)
	}
	return tids, offsets, arena, nil
}

// littleEndianHost reports whether the host matches the on-disk byte order.
func littleEndianHost() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}
