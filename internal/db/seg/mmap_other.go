//go:build !unix

package seg

import "fmt"

// OpenMapped is unavailable without mmap support; Open (the read-at loader)
// serves every platform.
func OpenMapped(path string) (*Reader, error) {
	return nil, fmt.Errorf("seg: mmap loader unavailable on this platform (use Open)")
}

func munmap(data []byte) error { return nil }
