package seg

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"repro/internal/db"
	"repro/internal/itemset"
)

// Reader is an open segmented store. It is safe for concurrent LoadSegment
// calls (reads go through ReadAt / the shared mapping); Close invalidates
// every database a mapped reader handed out.
type Reader struct {
	f   *os.File
	hdr header
	dir []SegmentInfo

	// mapped is the whole-file memory mapping when the reader was opened
	// with OpenMapped; nil for the read-at loader.
	mapped []byte
}

// IsSegmented reports whether path begins with the segmented-store magic.
func IsSegmented(path string) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return false, err
	}
	defer f.Close()
	var b [4]byte
	if _, err := io.ReadFull(f, b[:]); err != nil {
		return false, nil // too short to be either format; let the real reader complain
	}
	return binary.LittleEndian.Uint32(b[:]) == Magic, nil
}

// Open opens a segmented store with the read-at loader: LoadSegment reads
// and decodes each segment's blocks through a bounded buffer into reusable
// column storage.
func Open(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	r := &Reader{f: f}
	if err := r.loadDirectory(); err != nil {
		f.Close()
		return nil, err
	}
	return r, nil
}

// loadDirectory reads and validates the header and directory. Every extent
// is bounds-checked against the file size here, so a truncated or corrupted
// directory fails at Open instead of panicking mid-mine.
func (r *Reader) loadDirectory() error {
	st, err := r.f.Stat()
	if err != nil {
		return err
	}
	size := st.Size()
	var hb [headerBytes]byte
	if _, err := r.f.ReadAt(hb[:], 0); err != nil {
		return fmt.Errorf("seg: reading header: %w", err)
	}
	r.hdr, err = decodeHeader(hb[:])
	if err != nil {
		return err
	}
	h := r.hdr
	if h.numItems > 1<<31-1 {
		return fmt.Errorf("seg: item universe %d overflows int32 items", h.numItems)
	}
	const maxSegs = 1 << 24 // directory sanity bound: 16M segments ≫ any real store
	if h.numSegs > maxSegs {
		return fmt.Errorf("seg: implausible segment count %d", h.numSegs)
	}
	dirBytes := int64(h.numSegs) * dirEntryBytes
	if int64(h.dirOff) < headerBytes || int64(h.dirOff)+dirBytes > size {
		return fmt.Errorf("seg: directory [%d,+%d) outside file of %d bytes", h.dirOff, dirBytes, size)
	}
	raw := make([]byte, dirBytes)
	if _, err := r.f.ReadAt(raw, int64(h.dirOff)); err != nil {
		return fmt.Errorf("seg: reading directory: %w", err)
	}
	r.dir = make([]SegmentInfo, h.numSegs)
	var txOff, totalItems int64
	for i := range r.dir {
		s := decodeDirEntry(raw[i*dirEntryBytes:])
		if s.NumTx < 0 || s.ArenaLen < 0 || s.ArenaLen > db.ArenaLimit() {
			return fmt.Errorf("seg: segment %d extent invalid (numTx=%d arenaLen=%d)", i, s.NumTx, s.ArenaLen)
		}
		if s.TxOff != txOff {
			return fmt.Errorf("seg: segment %d starts at tx %d, want %d", i, s.TxOff, txOff)
		}
		checkBlock := func(off, bytes int64, what string) error {
			if off < headerBytes || off%8 != 0 || off+bytes > size {
				return fmt.Errorf("seg: segment %d %s block [%d,+%d) invalid in file of %d bytes", i, what, off, bytes, size)
			}
			return nil
		}
		if err := checkBlock(s.TidsOff, s.NumTx*8, "tids"); err != nil {
			return err
		}
		if err := checkBlock(s.OffsOff, (s.NumTx+1)*4, "offsets"); err != nil {
			return err
		}
		if err := checkBlock(s.ArenaOff, s.ArenaLen*4, "arena"); err != nil {
			return err
		}
		r.dir[i] = s
		txOff += s.NumTx
		totalItems += s.ArenaLen
	}
	if uint64(txOff) != h.numTx {
		return fmt.Errorf("seg: directory covers %d transactions, header says %d", txOff, h.numTx)
	}
	if uint64(totalItems) != h.totalItems {
		return fmt.Errorf("seg: directory covers %d item occurrences, header says %d", totalItems, h.totalItems)
	}
	return nil
}

// NumSegments returns the segment count.
func (r *Reader) NumSegments() int { return len(r.dir) }

// NumTx returns the total transaction count across all segments — the int64
// global address space that replaces the in-RAM Len() ceiling.
//
//armlint:wide
func (r *Reader) NumTx() int64 { return int64(r.hdr.numTx) }

// NumItems returns the item universe size N.
func (r *Reader) NumItems() int { return int(r.hdr.numItems) }

// TotalItems returns the total item occurrences Σ|t|.
func (r *Reader) TotalItems() int64 { return int64(r.hdr.totalItems) }

// Segment returns segment i's directory entry.
func (r *Reader) Segment(i int) SegmentInfo { return r.dir[i] }

// MaxSegmentBytes returns the largest segment's decoded footprint — the unit
// the Pipeline's byte budget divides by.
func (r *Reader) MaxSegmentBytes() int64 {
	var m int64
	for _, s := range r.dir {
		if b := s.DecodedBytes(); b > m {
			m = b
		}
	}
	return m
}

// Mapped reports whether the reader serves segments from a memory mapping.
func (r *Reader) Mapped() bool { return r.mapped != nil }

// Close releases the file and any mapping.
func (r *Reader) Close() error {
	var merr error
	if r.mapped != nil {
		merr = munmap(r.mapped)
		r.mapped = nil
	}
	if err := r.f.Close(); err != nil {
		return err
	}
	return merr
}

// Buffer is reusable column storage for LoadSegment: the double-buffered
// pipeline rotates a small fixed set of them, so steady-state segment loads
// allocate nothing.
type Buffer struct {
	tids    []int64
	offsets []int32
	arena   []itemset.Item
	raw     []byte
}

// grow returns dst resized to n elements, reallocating only past capacity.
func grow[T any](dst []T, n int) []T {
	if cap(dst) < n {
		return make([]T, n)
	}
	return dst[:n]
}

// LoadSegment materializes segment i as a Database whose layout is identical
// to the in-memory store, so hashtree.CountTransaction and the vbit kernels
// run on it unchanged. For a mapped reader the columns alias the mapping
// (zero copy); otherwise the blocks are decoded through buf's bounded window
// into its reusable columns (buf may be nil for one-shot loads). Every load
// is validated like an external file read: offsets monotone and in-range,
// transactions sorted, items inside the universe.
//
//armlint:itersrc
func (r *Reader) LoadSegment(i int, buf *Buffer) (*db.Database, error) {
	s := r.dir[i]
	var (
		tids    []int64
		offsets []int32
		arena   []itemset.Item
		err     error
	)
	if r.mapped != nil {
		tids, offsets, arena, err = r.mapSegment(s)
	} else {
		if buf == nil {
			buf = &Buffer{}
		}
		tids, offsets, arena, err = r.readSegment(s, buf)
	}
	if err != nil {
		return nil, fmt.Errorf("seg: segment %d: %w", i, err)
	}
	d, err := db.FromColumns(tids, offsets, arena, r.NumItems())
	if err != nil {
		return nil, fmt.Errorf("seg: segment %d: %w", i, err)
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("seg: segment %d: %w", i, err)
	}
	return d, nil
}

// readSegment is the read-at loader: each block streams through buf.raw (a
// bounded window, like db.DecodeTransactions) into buf's column slices.
func (r *Reader) readSegment(s SegmentInfo, buf *Buffer) ([]int64, []int32, []itemset.Item, error) {
	buf.tids = grow(buf.tids, int(s.NumTx))
	buf.offsets = grow(buf.offsets, int(s.NumTx)+1)
	buf.arena = grow(buf.arena, int(s.ArenaLen))
	if buf.raw == nil {
		buf.raw = make([]byte, 1<<16)
	}
	if err := readBlock(r.f, s.TidsOff, buf.raw, len(buf.tids), 8, func(b []byte, base int) {
		for i := 0; i < len(b)/8; i++ {
			buf.tids[base+i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
		}
	}); err != nil {
		return nil, nil, nil, fmt.Errorf("tids block: %w", err)
	}
	if err := readBlock(r.f, s.OffsOff, buf.raw, len(buf.offsets), 4, func(b []byte, base int) {
		for i := 0; i < len(b)/4; i++ {
			buf.offsets[base+i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
		}
	}); err != nil {
		return nil, nil, nil, fmt.Errorf("offsets block: %w", err)
	}
	if err := readBlock(r.f, s.ArenaOff, buf.raw, len(buf.arena), 4, func(b []byte, base int) {
		for i := 0; i < len(b)/4; i++ {
			buf.arena[base+i] = itemset.Item(binary.LittleEndian.Uint32(b[4*i:]))
		}
	}); err != nil {
		return nil, nil, nil, fmt.Errorf("arena block: %w", err)
	}
	return buf.tids, buf.offsets, buf.arena, nil
}

// readBlock streams count elem-byte elements at off through the window,
// invoking decode for each full chunk with the element index it starts at.
func readBlock(f *os.File, off int64, window []byte, count, elem int, decode func(b []byte, base int)) error {
	n := count * elem
	done := 0
	for done < n {
		chunk := n - done
		if chunk > len(window) {
			chunk = len(window) / elem * elem
		}
		if _, err := f.ReadAt(window[:chunk], off+int64(done)); err != nil {
			return err
		}
		decode(window[:chunk], done/elem)
		done += chunk
	}
	return nil
}
