package seg

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/db"
	"repro/internal/obs"
)

// PipelineOptions configures a streaming pass pipeline over a Reader.
type PipelineOptions struct {
	// Budget caps the bytes of decoded segments resident at once; the
	// pipeline divides it by the largest segment to get the resident count.
	// 0 means double buffering (two residents). A budget below two segments
	// degrades to the synchronous load-then-count loop — correct, just
	// unoverlapped.
	Budget int64
	// LoadDelay adds synthetic latency to every segment load, modelling a
	// slower disk than the host's: the overlap benchmarks use it to make the
	// prefetch win measurable and deterministic-ish on any hardware.
	LoadDelay time.Duration
	// Obs records seg_load spans on the io track and seg_count /
	// prefetch_stall spans on the master track. Nil disables recording.
	Obs *obs.Recorder
}

// PipelineStats aggregates every pass run through the pipeline.
type PipelineStats struct {
	Residents  int   // budgeted resident segments
	Overlapped bool  // true when a prefetcher goroutine runs (Residents >= 2)
	Passes     int   // completed ForEach passes
	Segments   int   // segments streamed, cumulative over passes
	LoadNS     int64 // summed segment load+materialize time (includes LoadDelay)
	StallNS    int64 // summed consumer wait for the next segment
	CountNS    int64 // summed consumer callback time
}

// StallFraction returns the share of consumer wall-clock spent waiting for
// segment loads — the figure the prefetch-overlap benchmark gates on: near
// load/(load+count) for the synchronous loop, near zero when double
// buffering hides the loads.
func (s PipelineStats) StallFraction() float64 {
	total := s.StallNS + s.CountNS
	if total == 0 {
		return 0
	}
	return float64(s.StallNS) / float64(total)
}

// Pipeline streams a Reader's segments to a consumer, pass after pass. With
// two or more budgeted residents a prefetcher goroutine loads and
// materializes segment N+1 into a spare buffer while the consumer (the
// mining coordinator, driving sched.Pool) counts segment N; buffers rotate
// through a freelist, so steady-state passes allocate nothing. One Pipeline
// serves many passes (one per Apriori iteration), reusing its buffers.
//
// Not safe for concurrent ForEach calls: the consumer side is single-caller
// by design (the mining loop), and only the prefetcher goroutine runs
// concurrently with it.
type Pipeline struct {
	r         *Reader
	opts      PipelineOptions
	residents int

	// mu guards the buffer exchange between the consumer and the prefetcher
	// goroutine: free buffers flow consumer→loader through free (cond
	// signals a blocked loader), loaded segments flow back through the
	// per-pass channel.
	mu   sync.Mutex
	cond *sync.Cond
	//armlint:guardedby mu
	free []*Buffer
	//armlint:guardedby mu
	aborted bool

	stats PipelineStats
}

// NewPipeline builds a pipeline over the reader.
func (r *Reader) NewPipeline(opts PipelineOptions) *Pipeline {
	residents := 2
	if opts.Budget > 0 {
		if maxSeg := r.MaxSegmentBytes(); maxSeg > 0 {
			residents = int(opts.Budget / maxSeg)
		}
	}
	if residents < 1 {
		residents = 1
	}
	if n := r.NumSegments(); residents > n && n > 0 {
		residents = n
	}
	p := &Pipeline{r: r, opts: opts, residents: residents}
	p.cond = sync.NewCond(&p.mu)
	for i := 0; i < residents; i++ {
		//armlint:allow guardedby construction: p is unpublished until NewPipeline returns, so no goroutine can observe free yet
		p.free = append(p.free, &Buffer{})
	}
	p.stats.Residents = residents
	p.stats.Overlapped = residents >= 2 && r.NumSegments() > 1
	return p
}

// Residents returns the budgeted resident-segment count.
func (p *Pipeline) Residents() int { return p.residents }

// Stats returns the accumulated pipeline accounting. Call between passes.
func (p *Pipeline) Stats() PipelineStats { return p.stats }

// loaded is one prefetched segment handed from the loader to the consumer.
type loaded struct {
	seg    int
	d      *db.Database
	buf    *Buffer
	loadNS int64
	err    error
}

// ForEach runs one full pass: fn(seg, d) for every segment in order. The
// database passed to fn aliases a rotating buffer (or the file mapping) and
// is invalid once fn returns. Cancellation is observed between segments; a
// canceled pass returns ctx.Err() with the pass's partial work already done.
func (p *Pipeline) ForEach(ctx context.Context, fn func(seg int, d *db.Database) error) error {
	n := p.r.NumSegments()
	if n == 0 {
		p.stats.Passes++
		return nil
	}
	var err error
	if p.residents >= 2 {
		err = p.runOverlapped(ctx, n, fn)
	} else {
		err = p.runSync(ctx, n, fn)
	}
	if err == nil {
		p.stats.Passes++
	}
	return err
}

// runSync is the unoverlapped loop: load, then count, segment by segment.
// The whole load is consumer wait, so it is recorded (and accounted) as
// stall — this is the disk-bound ceiling the prefetcher exists to beat.
func (p *Pipeline) runSync(ctx context.Context, n int, fn func(int, *db.Database) error) error {
	rec := p.opts.Obs
	buf := p.take()
	if buf == nil {
		return fmt.Errorf("seg: pipeline aborted")
	}
	defer p.put(buf)
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		rec.Master().BeginSeg(obs.SegStall, i)
		d, loadNS, err := p.load(i, buf, rec.IO())
		rec.Master().EndSeg(obs.SegStall, i)
		p.stats.LoadNS += loadNS
		p.stats.StallNS += loadNS
		if err != nil {
			return err
		}
		if err := p.count(i, d, fn); err != nil {
			return err
		}
	}
	return nil
}

// runOverlapped double-buffers: a loader goroutine prefetches segment N+1
// (and beyond, up to the resident budget) while the consumer counts segment
// N. The loader blocks on the buffer freelist, so at most `residents`
// segments are ever materialized.
func (p *Pipeline) runOverlapped(ctx context.Context, n int, fn func(int, *db.Database) error) error {
	rec := p.opts.Obs
	p.mu.Lock()
	p.aborted = false
	p.mu.Unlock()
	ch := make(chan loaded, p.residents-1)
	abortCh := make(chan struct{})

	go func() {
		defer close(ch)
		io := rec.IO()
		for i := 0; i < n; i++ {
			buf := p.take()
			if buf == nil {
				return // consumer aborted the pass
			}
			d, loadNS, err := p.load(i, buf, io)
			select {
			case ch <- loaded{seg: i, d: d, buf: buf, loadNS: loadNS, err: err}:
			case <-abortCh:
				p.put(buf)
				return
			}
			if err != nil {
				return
			}
		}
	}()

	// abort unblocks the loader (whether waiting for a buffer or sending)
	// and reclaims in-flight buffers, so an early return leaks nothing and
	// the next pass starts clean.
	var aborted bool
	abort := func() {
		if aborted {
			return
		}
		aborted = true
		p.mu.Lock()
		p.aborted = true
		p.mu.Unlock()
		p.cond.Broadcast()
		close(abortCh)
		for ld := range ch {
			if ld.buf != nil {
				p.put(ld.buf)
			}
		}
	}
	defer abort()

	for i := 0; i < n; i++ {
		t0 := time.Now() //armlint:allow determinism wall-clock pipeline stat feeds Stats only, never the work model
		rec.Master().BeginSeg(obs.SegStall, i)
		var ld loaded
		var ok bool
		select {
		case ld, ok = <-ch:
		case <-ctx.Done():
			rec.Master().EndSeg(obs.SegStall, i)
			return ctx.Err()
		}
		rec.Master().EndSeg(obs.SegStall, i)
		if !ok {
			return fmt.Errorf("seg: prefetcher exited early")
		}
		p.stats.StallNS += time.Since(t0).Nanoseconds() //armlint:allow determinism wall-clock pipeline stat feeds Stats only, never the work model
		p.stats.LoadNS += ld.loadNS
		if ld.err != nil {
			return ld.err
		}
		err := p.count(i, ld.d, fn)
		p.put(ld.buf)
		if err != nil {
			return err
		}
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}

// load materializes one segment (applying the synthetic LoadDelay) under a
// seg_load span on the io track.
func (p *Pipeline) load(i int, buf *Buffer, io *obs.Worker) (*db.Database, int64, error) {
	t0 := time.Now() //armlint:allow determinism wall-clock pipeline stat feeds Stats only, never the work model
	io.BeginSeg(obs.SegLoad, i)
	d, err := p.r.LoadSegment(i, buf)
	if p.opts.LoadDelay > 0 {
		time.Sleep(p.opts.LoadDelay) //armlint:allow determinism synthetic I/O delay for pipeline tests; never a work-model input
	}
	io.EndSeg(obs.SegLoad, i)
	return d, time.Since(t0).Nanoseconds(), err //armlint:allow determinism wall-clock pipeline stat feeds Stats only, never the work model
}

// count runs the consumer callback under a seg_count span.
func (p *Pipeline) count(i int, d *db.Database, fn func(int, *db.Database) error) error {
	rec := p.opts.Obs
	t0 := time.Now() //armlint:allow determinism wall-clock pipeline stat feeds Stats only, never the work model
	rec.Master().BeginSeg(obs.SegCount, i)
	err := fn(i, d)
	rec.Master().EndSeg(obs.SegCount, i)
	p.stats.CountNS += time.Since(t0).Nanoseconds() //armlint:allow determinism wall-clock pipeline stat feeds Stats only, never the work model
	p.stats.Segments++
	return err
}

// take pops a free buffer, blocking until one is returned or the pass is
// aborted (nil).
//
//armlint:polls
func (p *Pipeline) take() *Buffer {
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.free) == 0 && !p.aborted {
		p.cond.Wait()
	}
	if p.aborted {
		return nil
	}
	b := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	return b
}

// put returns a buffer to the freelist and wakes a blocked loader.
func (p *Pipeline) put(b *Buffer) {
	p.mu.Lock()
	p.free = append(p.free, b)
	p.mu.Unlock()
	p.cond.Signal()
}
