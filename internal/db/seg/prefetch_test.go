package seg

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/db"
	"repro/internal/obs"
)

// openStore writes d segmented and opens it read-at.
func openStore(t *testing.T, d *db.Database, opts WriterOptions) *Reader {
	t.Helper()
	r, err := Open(writeSeg(t, d, opts))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

func TestPipelineOrderAndReuse(t *testing.T) {
	d := genDB(t, 400, 13)
	r := openStore(t, d, WriterOptions{SegTx: 64})
	p := r.NewPipeline(PipelineOptions{}) // 0 budget → double buffered
	if p.Residents() != 2 {
		t.Fatalf("Residents = %d, want 2 for zero budget", p.Residents())
	}
	for pass := 0; pass < 3; pass++ {
		var segs []int
		var tx int64
		err := p.ForEach(context.Background(), func(seg int, sd *db.Database) error {
			segs = append(segs, seg)
			tx += int64(sd.Len())
			return nil
		})
		if err != nil {
			t.Fatalf("pass %d: %v", pass, err)
		}
		for i, s := range segs {
			if s != i {
				t.Fatalf("pass %d: segment order %v", pass, segs)
			}
		}
		if tx != r.NumTx() {
			t.Fatalf("pass %d: streamed %d transactions, want %d", pass, tx, r.NumTx())
		}
	}
	st := p.Stats()
	if st.Passes != 3 || st.Segments != 3*r.NumSegments() {
		t.Fatalf("stats = %+v, want 3 passes x %d segments", st, r.NumSegments())
	}
	if !st.Overlapped {
		t.Fatalf("stats = %+v, want Overlapped", st)
	}
}

func TestPipelineBudgetResidents(t *testing.T) {
	d := genDB(t, 400, 13)
	r := openStore(t, d, WriterOptions{SegTx: 64})
	maxSeg := r.MaxSegmentBytes()
	cases := []struct {
		budget    int64
		residents int
	}{
		{1, 1},                     // below one segment → degrade to sync, never 0
		{maxSeg, 1},                // exactly one resident
		{2 * maxSeg, 2},            // double buffer
		{1 << 40, r.NumSegments()}, // huge budget caps at the segment count
	}
	for _, tc := range cases {
		p := r.NewPipeline(PipelineOptions{Budget: tc.budget})
		if p.Residents() != tc.residents {
			t.Errorf("budget %d: Residents = %d, want %d", tc.budget, p.Residents(), tc.residents)
		}
	}
}

func TestPipelineSyncMode(t *testing.T) {
	d := genDB(t, 300, 17)
	r := openStore(t, d, WriterOptions{SegTx: 64})
	p := r.NewPipeline(PipelineOptions{Budget: 1}) // one resident → synchronous
	if p.Stats().Overlapped {
		t.Fatal("one-resident pipeline reports Overlapped")
	}
	var tx int64
	if err := p.ForEach(context.Background(), func(_ int, sd *db.Database) error {
		tx += int64(sd.Len())
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if tx != r.NumTx() {
		t.Fatalf("streamed %d transactions, want %d", tx, r.NumTx())
	}
	st := p.Stats()
	if st.StallNS == 0 || st.StallNS < st.LoadNS {
		t.Fatalf("sync stats = %+v, want StallNS >= LoadNS > 0 (loads are stalls)", st)
	}
}

func TestPipelineStallAccounting(t *testing.T) {
	d := genDB(t, 200, 19)
	r := openStore(t, d, WriterOptions{SegTx: 32})
	if r.NumSegments() < 4 {
		t.Fatalf("want >= 4 segments, got %d", r.NumSegments())
	}
	const delay = 2 * time.Millisecond

	sync := r.NewPipeline(PipelineOptions{Budget: 1, LoadDelay: delay})
	if err := sync.ForEach(context.Background(), func(int, *db.Database) error { return nil }); err != nil {
		t.Fatal(err)
	}
	over := r.NewPipeline(PipelineOptions{LoadDelay: delay})
	if err := over.ForEach(context.Background(), func(int, *db.Database) error {
		time.Sleep(delay) // give the prefetcher time to hide the next load
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	ss, os_ := sync.Stats(), over.Stats()
	if ss.StallNS < int64(r.NumSegments())*int64(delay) {
		t.Fatalf("sync StallNS = %d, want >= %d (every load is a stall)", ss.StallNS, int64(r.NumSegments())*int64(delay))
	}
	// Overlapped: only the first load is exposed; later stalls are channel
	// handoffs. Allow generous slack but require a real win.
	if os_.StallNS >= ss.StallNS {
		t.Fatalf("overlapped StallNS = %d, not below sync %d", os_.StallNS, ss.StallNS)
	}
	if f := os_.StallFraction(); f >= ss.StallFraction() {
		t.Fatalf("overlapped stall fraction %.3f, not below sync %.3f", f, ss.StallFraction())
	}
}

func TestPipelineConsumerError(t *testing.T) {
	d := genDB(t, 300, 23)
	r := openStore(t, d, WriterOptions{SegTx: 32})
	p := r.NewPipeline(PipelineOptions{})
	boom := errors.New("boom")
	err := p.ForEach(context.Background(), func(seg int, _ *db.Database) error {
		if seg == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("ForEach = %v, want boom", err)
	}
	// The pass aborted cleanly: all buffers are back and a fresh pass works.
	var segs int
	if err := p.ForEach(context.Background(), func(int, *db.Database) error { segs++; return nil }); err != nil {
		t.Fatalf("pass after abort: %v", err)
	}
	if segs != r.NumSegments() {
		t.Fatalf("pass after abort saw %d segments, want %d", segs, r.NumSegments())
	}
}

func TestPipelineCancellation(t *testing.T) {
	d := genDB(t, 300, 29)
	r := openStore(t, d, WriterOptions{SegTx: 32})
	for _, budget := range []int64{1, 0} { // sync and overlapped paths
		p := r.NewPipeline(PipelineOptions{Budget: budget})
		ctx, cancel := context.WithCancel(context.Background())
		err := p.ForEach(ctx, func(seg int, _ *db.Database) error {
			if seg == 1 {
				cancel()
			}
			return nil
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("budget %d: ForEach = %v, want context.Canceled", budget, err)
		}
		// Restartable after cancellation.
		if err := p.ForEach(context.Background(), func(int, *db.Database) error { return nil }); err != nil {
			t.Fatalf("budget %d: pass after cancel: %v", budget, err)
		}
	}
}

func TestPipelineLoaderError(t *testing.T) {
	d := genDB(t, 300, 31)
	path := writeSeg(t, d, WriterOptions{SegTx: 64})
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	// Poison a later segment's directory entry in memory: the extra phantom
	// transaction makes the decoded offsets inconsistent, so LoadSegment's
	// validation fails inside the prefetcher goroutine.
	r.dir[2].NumTx++
	p := r.NewPipeline(PipelineOptions{})
	err = p.ForEach(context.Background(), func(int, *db.Database) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "segment 2") {
		t.Fatalf("ForEach with poisoned segment = %v, want segment 2 error", err)
	}
}

func TestPipelineObsSpans(t *testing.T) {
	d := genDB(t, 200, 37)
	r := openStore(t, d, WriterOptions{SegTx: 32})
	rec := obs.NewRecorder(2)
	p := r.NewPipeline(PipelineOptions{Obs: rec})
	if err := p.ForEach(context.Background(), func(int, *db.Database) error { return nil }); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rec.WriteTrace(&buf); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	out := buf.String()
	for _, want := range []string{`"seg_load"`, `"seg_count"`, `"prefetch_stall"`, `"io"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace missing %s:\n%s", want, out)
		}
	}
}
