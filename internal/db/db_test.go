package db

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"

	"repro/internal/itemset"
)

func sample() *Database {
	// The Section 2.1.3 example database.
	d := New(6)
	d.Append(1, itemset.New(1, 4, 5))
	d.Append(2, itemset.New(1, 2))
	d.Append(3, itemset.New(3, 4, 5))
	d.Append(4, itemset.New(1, 2, 4, 5))
	return d
}

func TestAppendAndAccess(t *testing.T) {
	d := sample()
	if d.Len() != 4 {
		t.Fatalf("Len = %d", d.Len())
	}
	if d.TID(2) != 3 {
		t.Errorf("TID(2) = %d", d.TID(2))
	}
	if got := d.Items(3); !got.Equal(itemset.New(1, 2, 4, 5)) {
		t.Errorf("Items(3) = %v", got)
	}
	if d.TotalItems() != 12 {
		t.Errorf("TotalItems = %d", d.TotalItems())
	}
	if d.AvgLen() != 3 {
		t.Errorf("AvgLen = %f", d.AvgLen())
	}
	if d.NumItems() != 6 {
		t.Errorf("NumItems = %d", d.NumItems())
	}
	if err := d.Validate(); err != nil {
		t.Error(err)
	}
}

func TestAppendGrowsUniverse(t *testing.T) {
	d := New(2)
	d.Append(1, itemset.New(10))
	if d.NumItems() != 11 {
		t.Errorf("NumItems = %d, want 11", d.NumItems())
	}
}

func TestAppendPanicsOnUnsorted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Append of unsorted transaction should panic")
		}
	}()
	d := New(10)
	d.Append(1, itemset.Itemset{5, 3})
}

func TestEmptyDatabase(t *testing.T) {
	d := New(10)
	if d.Len() != 0 || d.AvgLen() != 0 || d.TotalItems() != 0 {
		t.Error("empty database accessors wrong")
	}
	parts := d.BlockPartition(4)
	for _, s := range parts {
		if s.Len() != 0 {
			t.Error("empty db partition should be empty")
		}
	}
}

func TestBlockPartitionCoversExactly(t *testing.T) {
	d := New(100)
	for i := 0; i < 37; i++ {
		d.Append(int64(i), itemset.New(itemset.Item(i%100)))
	}
	for _, p := range []int{1, 2, 3, 5, 37, 50} {
		parts := d.BlockPartition(p)
		if len(parts) != p {
			t.Fatalf("p=%d: got %d parts", p, len(parts))
		}
		total, prev := 0, 0
		for _, s := range parts {
			if s.Lo != prev {
				t.Errorf("p=%d: gap at %d", p, s.Lo)
			}
			total += s.Len()
			prev = s.Hi
		}
		if total != 37 || prev != 37 {
			t.Errorf("p=%d: covered %d rows ending %d", p, total, prev)
		}
	}
	if got := d.BlockPartition(0); got != nil {
		t.Error("p=0 should return nil")
	}
}

func TestSliceForEach(t *testing.T) {
	d := sample()
	s := Slice{DB: d, Lo: 1, Hi: 3}
	var tids []int64
	s.ForEach(func(tid int64, items itemset.Itemset) {
		tids = append(tids, tid)
	})
	if len(tids) != 2 || tids[0] != 2 || tids[1] != 3 {
		t.Errorf("ForEach tids = %v", tids)
	}
}

func TestWorkloadPartitionBalancesSkew(t *testing.T) {
	// Front-loaded long transactions: block partition by row count is badly
	// imbalanced for k=3 work; workload partition should be much better.
	d := New(200)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 400; i++ {
		l := 3
		if i < 100 {
			l = 20 // long rows clustered at the front
		}
		items := map[itemset.Item]bool{}
		for len(items) < l {
			items[itemset.Item(rng.Intn(200))] = true
		}
		flat := make(itemset.Itemset, 0, l)
		for it := range items {
			flat = append(flat, it)
		}
		d.Append(int64(i), itemset.New(flat...))
	}
	const p, k = 4, 3
	imbalance := func(parts []Slice) float64 {
		var max, sum int64
		for _, s := range parts {
			w := s.EstimatedWork(k)
			sum += w
			if w > max {
				max = w
			}
		}
		return float64(max) * float64(p) / float64(sum)
	}
	bi := imbalance(d.BlockPartition(p))
	wi := imbalance(d.WorkloadPartition(p, 6))
	if wi >= bi {
		t.Errorf("workload partition (%.2f) not better than block (%.2f)", wi, bi)
	}
	if wi > 1.5 {
		t.Errorf("workload partition still very imbalanced: %.2f", wi)
	}
}

func TestWorkloadPartitionCoversExactly(t *testing.T) {
	d := sample()
	for _, p := range []int{1, 2, 3, 4, 7} {
		parts := d.WorkloadPartition(p, 3)
		if len(parts) != p {
			t.Fatalf("p=%d: %d parts", p, len(parts))
		}
		prev := 0
		for _, s := range parts {
			if s.Lo != prev {
				t.Errorf("p=%d: gap/overlap at %d", p, s.Lo)
			}
			prev = s.Hi
		}
		if prev != d.Len() {
			t.Errorf("p=%d: ends at %d", p, prev)
		}
	}
}

func TestRoundTripBinary(t *testing.T) {
	d := sample()
	var buf bytes.Buffer
	if err := d.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != d.Len() || got.NumItems() != d.NumItems() {
		t.Fatalf("round trip shape: %d/%d vs %d/%d", got.Len(), got.NumItems(), d.Len(), d.NumItems())
	}
	for i := 0; i < d.Len(); i++ {
		if got.TID(i) != d.TID(i) || !got.Items(i).Equal(d.Items(i)) {
			t.Errorf("transaction %d differs: %d%v vs %d%v", i, got.TID(i), got.Items(i), d.TID(i), d.Items(i))
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a database file....."))); err == nil {
		t.Error("Read should reject bad magic")
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Error("Read should reject truncated input")
	}
	// Valid header but truncated body.
	d := sample()
	var buf bytes.Buffer
	if err := d.Write(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, err := Read(bytes.NewReader(trunc)); err == nil {
		t.Error("Read should reject truncated body")
	}
}

func TestFileRoundTrip(t *testing.T) {
	d := sample()
	path := filepath.Join(t.TempDir(), "x.ardb")
	if err := d.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 4 {
		t.Errorf("file round trip Len = %d", got.Len())
	}
	if err := got.Validate(); err != nil {
		t.Error(err)
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing.ardb")); err == nil {
		t.Error("ReadFile of missing path should fail")
	}
}

func TestSizeBytes(t *testing.T) {
	d := sample()
	// 12 items ×4 + 4 transactions ×12 = 96.
	if got := d.SizeBytes(); got != 96 {
		t.Errorf("SizeBytes = %d, want 96", got)
	}
	// SizeBytes must match actual serialized size minus the 20-byte header.
	var buf bytes.Buffer
	if err := d.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if int64(buf.Len())-20 != d.SizeBytes() {
		t.Errorf("serialized %d bytes, SizeBytes+20 = %d", buf.Len(), d.SizeBytes()+20)
	}
}

// Property: serialization round-trips arbitrary databases.
func TestRoundTripProperty(t *testing.T) {
	f := func(rows [][]uint16) bool {
		d := New(1)
		for i, raw := range rows {
			items := make([]itemset.Item, len(raw))
			for j, v := range raw {
				items[j] = itemset.Item(v % 512)
			}
			d.Append(int64(i), itemset.New(items...))
		}
		var buf bytes.Buffer
		if err := d.Write(&buf); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if got.Len() != d.Len() {
			return false
		}
		for i := 0; i < d.Len(); i++ {
			if !got.Items(i).Equal(d.Items(i)) {
				return false
			}
		}
		return got.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// checkPartitionInvariants asserts p contiguous slices covering [0, Len).
func checkPartitionInvariants(t *testing.T, d *Database, parts []Slice, p int) {
	t.Helper()
	if len(parts) != p {
		t.Fatalf("%d parts, want %d", len(parts), p)
	}
	prev := 0
	for i, s := range parts {
		if s.Lo != prev || s.Hi < s.Lo {
			t.Fatalf("slice %d = [%d,%d), expected Lo=%d", i, s.Lo, s.Hi, prev)
		}
		prev = s.Hi
	}
	if prev != d.Len() {
		t.Fatalf("partition covers %d of %d rows", prev, d.Len())
	}
}

func maxSliceWork(parts []Slice, k int) int64 {
	var max int64
	for _, s := range parts {
		if w := s.EstimatedWork(k); w > max {
			max = w
		}
	}
	return max
}

func TestWorkloadPartitionEmptyDatabase(t *testing.T) {
	d := New(4)
	for _, p := range []int{1, 3, 8} {
		parts := d.WorkloadPartition(p, 3)
		checkPartitionInvariants(t, d, parts, p)
		for _, s := range parts {
			if s.Len() != 0 {
				t.Errorf("empty db produced non-empty slice %+v", s)
			}
		}
	}
}

func TestWorkloadPartitionMoreProcsThanRows(t *testing.T) {
	d := New(10)
	for i := 0; i < 3; i++ {
		d.Append(int64(i), itemset.New(itemset.Item(i), itemset.Item(i+1)))
	}
	parts := d.WorkloadPartition(8, 2)
	checkPartitionInvariants(t, d, parts, 8)
	// Every row should sit alone: no slice may hold more than one of the
	// three equal-cost transactions.
	for i, s := range parts {
		if s.Len() > 1 {
			t.Errorf("slice %d holds %d rows; with P > N each should be alone", i, s.Len())
		}
	}
}

func TestWorkloadPartitionUniformCosts(t *testing.T) {
	d := New(50)
	for i := 0; i < 12; i++ {
		d.Append(int64(i), itemset.New(1, 2, 3, 4))
	}
	parts := d.WorkloadPartition(4, 3)
	checkPartitionInvariants(t, d, parts, 4)
	// Uniform costs must split like a block partition: 3 rows each.
	for i, s := range parts {
		if s.Len() != 3 {
			t.Errorf("slice %d has %d rows, want 3", i, s.Len())
		}
	}
}

func TestWorkloadPartitionOneGiantTransaction(t *testing.T) {
	const k = 3
	build := func(giantAt int) *Database {
		d := New(64)
		big := make(itemset.Itemset, 0, 40)
		for it := 0; it < 40; it++ {
			big = append(big, itemset.Item(it))
		}
		for i := 0; i < 30; i++ {
			if i == giantAt {
				d.Append(int64(i), big)
				continue
			}
			d.Append(int64(i), itemset.New(60, 61, 62))
		}
		return d
	}
	for _, giantAt := range []int{0, 15, 29} {
		d := build(giantAt)
		parts := d.WorkloadPartition(4, 6)
		checkPartitionInvariants(t, d, parts, 4)
		giantWork := Slice{DB: d, Lo: giantAt, Hi: giantAt + 1}.EstimatedWork(k)
		// The giant dominates total work, so the best possible max slice is
		// the giant alone; the degenerate pre-fix behaviour lumped trailing
		// (or, for a tail giant, all) small rows in with it.
		if got := maxSliceWork(parts, k); got != giantWork {
			t.Errorf("giantAt=%d: max slice work %d, want giant alone (%d)", giantAt, got, giantWork)
		}
	}
}

func TestWorkloadPartitionNoOverloadedLastSlice(t *testing.T) {
	// Decreasing costs: the old fixed target total/p made every early slice
	// overshoot, starving or overloading the tail. The remaining-work target
	// keeps the last slice no worse than ~the largest single transaction
	// above the ideal share.
	d := New(64)
	row := 0
	addRows := func(n, l int) {
		for i := 0; i < n; i++ {
			tx := make(itemset.Itemset, l)
			for j := range tx {
				tx[j] = itemset.Item(j)
			}
			d.Append(int64(row), tx)
			row++
		}
	}
	addRows(8, 20)
	addRows(40, 4)
	const p, k = 4, 3
	parts := d.WorkloadPartition(p, k)
	checkPartitionInvariants(t, d, parts, p)
	var total int64
	for _, s := range parts {
		total += s.EstimatedWork(k)
	}
	ideal := total / int64(p)
	if got := maxSliceWork(parts, k); float64(got) > 1.5*float64(ideal) {
		t.Errorf("max slice work %d vs ideal %d — partition still degenerate", got, ideal)
	}
}
