package db

import (
	"bytes"
	"testing"

	"repro/internal/itemset"
)

// FuzzRead throws arbitrary bytes at the binary reader: it must never
// panic, and everything it accepts must round-trip identically.
func FuzzRead(f *testing.F) {
	// Seed with a valid database, a truncation of it, and garbage.
	d := New(6)
	d.Append(1, itemset.New(1, 4, 5))
	d.Append(2, itemset.New(0, 2))
	var buf bytes.Buffer
	if err := d.Write(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-5])
	f.Add([]byte("ARDBxxxx"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("accepted database fails validation: %v", err)
		}
		var out bytes.Buffer
		if err := got.Write(&out); err != nil {
			t.Fatalf("rewrite failed: %v", err)
		}
		back, err := Read(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-read failed: %v", err)
		}
		if back.Len() != got.Len() {
			t.Fatalf("round trip changed length: %d vs %d", back.Len(), got.Len())
		}
		for i := 0; i < got.Len(); i++ {
			if !back.Items(i).Equal(got.Items(i)) {
				t.Fatalf("round trip changed transaction %d", i)
			}
		}
	})
}
