// Package db provides the transaction database substrate: an in-memory
// transaction store with a compact binary on-disk format, block partitioning
// across processors, and the workload-estimating partitioner sketched in
// Section 3.2.2 of the paper.
package db

import (
	"fmt"

	"repro/internal/itemset"
)

// Transaction is one row of the basket database: a unique identifier plus a
// sorted itemset.
type Transaction struct {
	TID   int64
	Items itemset.Itemset
}

// Database is an in-memory transaction database. Transactions are stored in
// a single flat item arena with offsets, which keeps the scan phase cache
// friendly and makes logical partitioning an O(1) slice operation.
type Database struct {
	tids    []int64
	offsets []int32 // len = #transactions + 1; items of t are arena[offsets[t]:offsets[t+1]]
	arena   []itemset.Item
	numItem int // distinct-item upper bound (items are < numItem)
}

// New returns an empty database whose items are drawn from [0, numItems).
func New(numItems int) *Database {
	return &Database{offsets: []int32{0}, numItem: numItems}
}

// FromTransactions builds a database from explicit transactions. Item
// universe size is inferred as max item + 1 unless numItems is larger.
// Growth failures (ErrArenaFull) surface as an error naming the offending
// transaction instead of a panic from deep inside the loop.
func FromTransactions(ts []Transaction, numItems int) (*Database, error) {
	d := New(numItems)
	for i, t := range ts {
		if err := d.TryAppend(t.TID, t.Items); err != nil {
			return nil, fmt.Errorf("db: transaction %d (tid %d): %w", i, t.TID, err)
		}
	}
	return d, nil
}

// FromColumns wraps pre-built columnar storage as a Database without
// copying: tids and arena are aliased, and offsets must be the cumulative
// item layout (offsets[0] == 0, items of t are arena[offsets[t]:offsets[t+1]]).
// This is the constructor the segment loaders use — a decoded (or
// memory-mapped) segment becomes a Database in O(1), so the counting kernels
// run on it unchanged. Only the column shape is checked here; callers
// ingesting untrusted bytes must run Validate.
func FromColumns(tids []int64, offsets []int32, arena []itemset.Item, numItems int) (*Database, error) {
	if len(offsets) != len(tids)+1 {
		return nil, fmt.Errorf("db: offsets len %d != tids len %d + 1", len(offsets), len(tids))
	}
	if len(offsets) > 0 && offsets[0] != 0 {
		return nil, fmt.Errorf("db: offsets[0] = %d, want 0", offsets[0])
	}
	if int64(len(arena)) > maxArenaItems {
		return nil, ErrArenaFull
	}
	if last := offsets[len(offsets)-1]; int(last) != len(arena) {
		return nil, fmt.Errorf("db: final offset %d != arena len %d", last, len(arena))
	}
	return &Database{tids: tids, offsets: offsets, arena: arena, numItem: numItems}, nil
}

// ArenaLimit returns the current item-arena cap: the number of item
// occurrences one database (and therefore one store segment) may hold under
// the int32 offset encoding. Tests lower it via SetArenaLimitForTesting.
func ArenaLimit() int64 { return maxArenaItems }

// SetArenaLimitForTesting lowers the arena cap so overflow and segmentation
// paths can be exercised without materializing a 2³¹-item arena, returning a
// func that restores the previous cap. Tests only.
func SetArenaLimitForTesting(limit int64) (restore func()) {
	prev := maxArenaItems
	maxArenaItems = limit
	return func() { maxArenaItems = prev }
}

// maxArenaItems caps the item arena at what the int32 offset encoding can
// address. A package variable rather than a constant so the overflow tests
// can lower it without materializing a 2³¹-item arena.
var maxArenaItems = int64(1<<31 - 1)

// ErrArenaFull reports that appending a transaction would push the item
// arena past the 2³¹−1 occurrences the int32 offset encoding addresses.
// Before this guard, int32(len(d.arena)) silently wrapped negative and the
// next Items call sliced with inverted bounds — the database corrupted
// without any error at the Append that overflowed it.
var ErrArenaFull = fmt.Errorf("db: item arena full (int32 offsets address at most %d item occurrences)", maxArenaItems)

// TryAppend adds a transaction, returning ErrArenaFull when the arena would
// outgrow the int32 offset encoding. items must be sorted (itemset
// invariant); TryAppend panics if not, since an unsorted transaction
// silently corrupts subset counting.
func (d *Database) TryAppend(tid int64, items itemset.Itemset) error {
	if !items.IsSorted() {
		panic(fmt.Sprintf("db: transaction %d not sorted: %v", tid, items))
	}
	if int64(len(d.arena))+int64(len(items)) > maxArenaItems {
		return ErrArenaFull
	}
	d.tids = append(d.tids, tid)
	d.arena = append(d.arena, items...)
	d.offsets = append(d.offsets, int32(len(d.arena)))
	for _, it := range items {
		if int(it) >= d.numItem {
			d.numItem = int(it) + 1
		}
	}
	return nil
}

// Append adds a transaction, panicking when the arena is full (TryAppend is
// the checked variant). In-memory builders stay below the int32 limit by
// construction; readers of external data must use TryAppend and surface
// ErrArenaFull.
func (d *Database) Append(tid int64, items itemset.Itemset) {
	if err := d.TryAppend(tid, items); err != nil {
		panic(err)
	}
}

// SnapshotView returns an O(1) immutable view of the database's current
// prefix: the returned Database aliases the receiver's columns, sliced and
// capacity-capped at today's lengths. Appends to the receiver never mutate
// the view — existing elements are write-once (TryAppend only extends), and
// a growth reallocation leaves the view on the old backing array — so a
// miner can run over the view while ingestion keeps appending to the
// receiver. This is the armined ingest→re-mine split: take the view under
// the ingest lock, mine it outside. The capped capacities also make an
// accidental append to the view reallocate instead of stomping the parent.
func (d *Database) SnapshotView() *Database {
	n := len(d.tids)
	m := len(d.arena)
	return &Database{
		tids:    d.tids[:n:n],
		offsets: d.offsets[:n+1 : n+1],
		arena:   d.arena[:m:m],
		numItem: d.numItem,
	}
}

// Len returns the number of transactions D.
func (d *Database) Len() int { return len(d.tids) }

// NumItems returns the size of the item universe N (items are in [0, N)).
func (d *Database) NumItems() int { return d.numItem }

// TID returns the identifier of transaction i.
func (d *Database) TID(i int) int64 { return d.tids[i] }

// Items returns the itemset of transaction i. The returned slice aliases
// the database arena and must not be modified.
//
//armlint:itersrc
func (d *Database) Items(i int) itemset.Itemset {
	return itemset.Itemset(d.arena[d.offsets[i]:d.offsets[i+1]])
}

// TotalItems returns the total number of item occurrences Σ|t|.
func (d *Database) TotalItems() int64 { return int64(len(d.arena)) }

// AvgLen returns the mean transaction length T.
func (d *Database) AvgLen() float64 {
	if d.Len() == 0 {
		return 0
	}
	return float64(len(d.arena)) / float64(d.Len())
}

// SizeBytes returns the nominal on-disk size: 4 bytes per item plus 8 bytes
// of TID and 4 bytes of length per transaction (the binary format below).
// This is the "Total size" column of Table 2.
func (d *Database) SizeBytes() int64 {
	return int64(len(d.arena))*4 + int64(d.Len())*12
}

// Slice is a logical, zero-copy view of a contiguous transaction range
// [Lo, Hi) used for partitioned-database counting.
type Slice struct {
	DB     *Database
	Lo, Hi int
}

// Len returns the number of transactions in the slice.
func (s Slice) Len() int { return s.Hi - s.Lo }

// ForEach invokes fn for every transaction in the slice.
func (s Slice) ForEach(fn func(tid int64, items itemset.Itemset)) {
	for i := s.Lo; i < s.Hi; i++ {
		fn(s.DB.TID(i), s.DB.Items(i))
	}
}

// BlockPartition splits the database into p contiguous slices of nearly
// equal transaction count — the paper's baseline database partitioning.
func (d *Database) BlockPartition(p int) []Slice {
	if p <= 0 {
		return nil
	}
	out := make([]Slice, p)
	n := d.Len()
	for i := 0; i < p; i++ {
		lo := i * n / p
		hi := (i + 1) * n / p
		out[i] = Slice{DB: d, Lo: lo, Hi: hi}
	}
	return out
}

// WorkloadPartition implements the static heuristic of Section 3.2.2: it
// estimates the counting cost of transaction t as the mean of C(|t|, k) over
// k = 1..maxK and cuts the (still contiguous, locality-respecting) partition
// boundaries so that estimated work — not row count — is balanced.
func (d *Database) WorkloadPartition(p, maxK int) []Slice {
	if p <= 0 {
		return nil
	}
	if maxK < 1 {
		maxK = 1
	}
	n := d.Len()
	cost := make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		l := int(d.offsets[i+1] - d.offsets[i])
		var sum float64
		for k := 1; k <= maxK; k++ {
			sum += float64(itemset.Binomial(l, k))
		}
		cost[i] = sum / float64(maxK)
		total += cost[i]
	}
	out := make([]Slice, 0, p)
	lo, acc, remaining := 0, 0.0, total
	for i := 0; i < n && len(out) < p-1; i++ {
		// Re-derive the target from the work still unassigned, so an early
		// slice that overshot (or a giant transaction that consumed a whole
		// slice) does not leave the final slice with everything left over.
		target := remaining / float64(p-len(out))
		c := cost[i]
		// Cut before transaction i when including it would overshoot the
		// target by more than stopping short undershoots it — a giant
		// transaction then opens its own slice instead of overloading the
		// current one.
		if acc > 0 && acc+c > target && acc+c-target > target-acc {
			out = append(out, Slice{DB: d, Lo: lo, Hi: i})
			remaining -= acc
			lo, acc = i, 0
			if len(out) == p-1 {
				break
			}
			target = remaining / float64(p-len(out))
		}
		acc += c
		if acc >= target {
			out = append(out, Slice{DB: d, Lo: lo, Hi: i + 1})
			remaining -= acc
			lo, acc = i+1, 0
		}
	}
	out = append(out, Slice{DB: d, Lo: lo, Hi: n})
	for len(out) < p {
		out = append(out, Slice{DB: d, Lo: n, Hi: n})
	}
	return out
}

// EstimatedWork returns the Σ C(|t|,k) counting workload of a slice for a
// specific iteration k — useful for testing partition balance.
func (s Slice) EstimatedWork(k int) int64 {
	var w int64
	//armlint:allow ctxpoll bounded partition-balance estimation pass; callers poll at phase boundaries
	for i := s.Lo; i < s.Hi; i++ {
		w += itemset.Binomial(s.DB.Items(i).K(), k)
	}
	return w
}

// Validate checks internal consistency (sorted transactions, offsets
// monotone). Intended for tests and for readers of external files.
func (d *Database) Validate() error {
	if len(d.offsets) != len(d.tids)+1 {
		return fmt.Errorf("db: offsets len %d != tids len %d + 1", len(d.offsets), len(d.tids))
	}
	//armlint:allow ctxpoll validation is a bounded diagnostic pass, not a mining loop
	for i := 0; i < d.Len(); i++ {
		if d.offsets[i] > d.offsets[i+1] {
			return fmt.Errorf("db: offsets not monotone at %d", i)
		}
		items := d.Items(i)
		if !items.IsSorted() {
			return fmt.Errorf("db: transaction %d (tid %d) unsorted", i, d.tids[i])
		}
		for _, it := range items {
			if int(it) >= d.numItem || it < 0 {
				return fmt.Errorf("db: transaction %d item %d outside universe [0,%d)", i, it, d.numItem)
			}
		}
	}
	return nil
}
