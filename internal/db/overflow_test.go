package db

import (
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/itemset"
)

// stubArenaLimit shrinks the int32-offset arena cap for the duration of a
// test, so the overflow guard is exercised without allocating gigabytes.
func stubArenaLimit(t *testing.T, limit int64) {
	t.Helper()
	old := maxArenaItems
	maxArenaItems = limit
	t.Cleanup(func() { maxArenaItems = old })
}

// TestTryAppendArenaFull pins the int32-overflow guard: appending past the
// arena cap returns ErrArenaFull and leaves the database untouched, while an
// append landing exactly on the cap succeeds.
func TestTryAppendArenaFull(t *testing.T) {
	stubArenaLimit(t, 10)
	d := New(8)
	d.Append(0, itemset.New(0, 1, 2, 3))
	d.Append(1, itemset.New(0, 1, 2, 3))

	if err := d.TryAppend(2, itemset.New(0, 1, 2)); !errors.Is(err, ErrArenaFull) {
		t.Fatalf("TryAppend over the cap = %v, want ErrArenaFull", err)
	}
	// The failed append must not have mutated anything.
	if d.Len() != 2 || d.TotalItems() != 8 {
		t.Fatalf("failed append mutated the db: len=%d total=%d", d.Len(), d.TotalItems())
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("db invalid after refused append: %v", err)
	}
	// Exactly filling the arena is allowed.
	if err := d.TryAppend(2, itemset.New(0, 1)); err != nil {
		t.Fatalf("TryAppend to exactly the cap: %v", err)
	}
	if d.TotalItems() != 10 {
		t.Fatalf("TotalItems = %d, want 10", d.TotalItems())
	}
	// And one more item is refused again.
	if err := d.TryAppend(3, itemset.New(0)); !errors.Is(err, ErrArenaFull) {
		t.Fatalf("TryAppend past a full arena = %v, want ErrArenaFull", err)
	}
}

// TestAppendPanicsOnFullArena: the panicking wrapper (used by trusted
// in-process builders like the generator) surfaces the same error.
func TestAppendPanicsOnFullArena(t *testing.T) {
	stubArenaLimit(t, 3)
	d := New(4)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Append past the arena cap did not panic")
		}
		err, ok := r.(error)
		if !ok || !errors.Is(err, ErrArenaFull) {
			t.Fatalf("panic value %v, want ErrArenaFull", r)
		}
	}()
	d.Append(0, itemset.New(0, 1, 2, 3))
}

// TestReadRefusesArenaOverflow: the binary reader (untrusted input) must
// propagate the guard as an error naming the offending transaction instead
// of corrupting offsets.
func TestReadRefusesArenaOverflow(t *testing.T) {
	d := New(6)
	d.Append(0, itemset.New(0, 1, 2, 3))
	d.Append(1, itemset.New(0, 1, 2, 3))
	d.Append(2, itemset.New(4, 5))
	path := filepath.Join(t.TempDir(), "d.ardb")
	if err := d.WriteFile(path); err != nil {
		t.Fatal(err)
	}

	stubArenaLimit(t, 9) // the file carries 10 item occurrences
	_, err := ReadFile(path)
	if !errors.Is(err, ErrArenaFull) {
		t.Fatalf("ReadFile = %v, want ErrArenaFull", err)
	}
	if !strings.Contains(err.Error(), "transaction 2") {
		t.Errorf("error does not name the offending transaction: %v", err)
	}

	// With the real cap the same file loads fine.
	maxArenaItems = 10
	if _, err := ReadFile(path); err != nil {
		t.Fatalf("ReadFile under sufficient cap: %v", err)
	}
}
