// Package trace records the memory access pattern of the support-counting
// phase as a compact per-processor stream of (address, op, size) events.
// Traces are replayed through internal/cachesim to evaluate the placement
// policies of Section 5 without needing control over the real heap.
package trace

import "repro/internal/mem"

// Op distinguishes loads from stores.
type Op uint8

const (
	Read Op = iota
	Write
)

// Access is one memory reference. Size is in bytes (a multi-word reference
// touches Size consecutive bytes starting at Addr).
type Access struct {
	Addr mem.Addr
	Size uint16
	Op   Op
}

// Buffer accumulates one processor's access stream.
type Buffer struct {
	Proc     int
	Accesses []Access
}

// NewBuffer returns an empty buffer for processor proc, pre-sized for cap
// accesses.
func NewBuffer(proc, capacity int) *Buffer {
	return &Buffer{Proc: proc, Accesses: make([]Access, 0, capacity)}
}

// Load appends a read of size bytes at addr.
func (b *Buffer) Load(addr mem.Addr, size uint16) {
	b.Accesses = append(b.Accesses, Access{Addr: addr, Size: size, Op: Read})
}

// Store appends a write of size bytes at addr.
func (b *Buffer) Store(addr mem.Addr, size uint16) {
	b.Accesses = append(b.Accesses, Access{Addr: addr, Size: size, Op: Write})
}

// Len returns the number of recorded accesses.
func (b *Buffer) Len() int { return len(b.Accesses) }

// Reset clears the buffer, retaining capacity.
func (b *Buffer) Reset() { b.Accesses = b.Accesses[:0] }

// Note on GPP remapping: translation happens *before* tracing — the hash
// tree rewrites its per-component base addresses through the placer's remap
// table and only then replays the counting phase — so buffers always hold
// final addresses and no post-hoc translation pass is needed.
