package trace

import (
	"testing"

	"repro/internal/mem"
)

func TestBufferLoadStore(t *testing.T) {
	b := NewBuffer(2, 4)
	if b.Proc != 2 || b.Len() != 0 {
		t.Fatalf("fresh buffer: %+v", b)
	}
	b.Load(0x100, 8)
	b.Store(0x200, 4)
	if b.Len() != 2 {
		t.Fatalf("Len = %d", b.Len())
	}
	if b.Accesses[0].Op != Read || b.Accesses[0].Addr != 0x100 || b.Accesses[0].Size != 8 {
		t.Errorf("access 0 = %+v", b.Accesses[0])
	}
	if b.Accesses[1].Op != Write || b.Accesses[1].Addr != 0x200 {
		t.Errorf("access 1 = %+v", b.Accesses[1])
	}
}

func TestBufferReset(t *testing.T) {
	b := NewBuffer(0, 2)
	for i := 0; i < 100; i++ {
		b.Load(mem.Addr(i), 4)
	}
	c := cap(b.Accesses)
	b.Reset()
	if b.Len() != 0 {
		t.Error("Reset did not clear")
	}
	if cap(b.Accesses) != c {
		t.Error("Reset dropped capacity")
	}
}

func TestBufferGrowth(t *testing.T) {
	b := NewBuffer(0, 1)
	for i := 0; i < 10000; i++ {
		b.Store(mem.Addr(i*64), 4)
	}
	if b.Len() != 10000 {
		t.Errorf("Len = %d", b.Len())
	}
}
