// Package lint implements armlint, the repo's stdlib-only static analysis
// suite. It machine-checks the concurrency, zero-allocation and determinism
// invariants the paper's kernels depend on — the properties the runtime
// gates (-race, testing.AllocsPerRun, TestModelTimePinned) can only observe
// dynamically:
//
//   - atomic-mix: a field (or the elements of a slice field) updated through
//     sync/atomic anywhere in its package must never receive a plain read or
//     write elsewhere — mixing the two disciplines races.
//   - guardedby: fields annotated //armlint:guardedby mu may only be
//     accessed while mu (a sibling mutex, or a sibling stripe-lock array) is
//     held, checked conservatively and intraprocedurally.
//   - noalloc: functions annotated //armlint:noalloc must contain no
//     construct that can heap-allocate (make/new/append, closures, slice or
//     map literals, string concatenation, interface boxing, go/defer) — the
//     static complement of the AllocsPerRun==0 gates on the counting kernel.
//   - falseshare: computes real struct layouts with types.Sizes and flags
//     //armlint:hot per-worker mutable fields whose enclosing struct is used
//     as a slice/array element without being padded to the 64-byte coherence
//     line — the static twin of the cachesim MESI false-sharing classifier.
//   - determinism: packages annotated //armlint:pinned (the ones whose work
//     model TestModelTimePinned freezes) must not call time.Now/Since/Sleep,
//     must not import math/rand, must not feed map-iteration order into
//     an ordered accumulation (append inside a map range), and must not use
//     the result of an unpinned module function that transitively reads the
//     clock (statement-position observability calls are exempt).
//   - locked: //armlint:locked contracts are verified at every call site
//     instead of trusted — the caller must provably hold the declared locks.
//   - intwidth: values returned by //armlint:wide functions (or read from
//     wide fields) — seg global addresses, arena offsets, transaction
//     counts — must not be narrowed to int32/int contexts without a bounds
//     guard or an //armlint:narrowok justification. The PR 4 splitRange and
//     PR 5 arena-overflow bugs were exactly this shape.
//   - ctxpoll: in functions reachable from //armlint:cancellable roots,
//     every loop that claims chunks, walks segments or scans transactions
//     (calls an //armlint:itersrc function) must reach a cancellation check
//     in its body or through an //armlint:polls callee.
//   - atomicwrite: the temp+fsync+rename discipline of ckpt and seg.Writer —
//     a temp-pattern file must be fsynced before rename, writer Close errors
//     must be checked, and no return path may leak the temp file.
//
// The v2 analyzers (and the upgraded guardedby/noalloc/determinism/
// atomic-mix) share a module-wide call graph + summary substrate
// (callgraph.go) computed once per load.
//
// Everything is built on go/parser, go/ast and go/types with the source
// importer — no golang.org/x/tools dependency, matching the repo's
// stdlib-only rule. Findings can be suppressed line-by-line with
// //armlint:allow <analyzer>[,<analyzer>] <reason>, which doubles as
// documentation of why the invariant legitimately bends there.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"time"
)

// lineBytes is the coherence-line granularity the falseshare analyzer
// checks layouts against. It matches cachesim.DefaultConfig's LineSize (and
// the paper's evaluation platform).
const lineBytes = 64

// A Finding is one diagnostic produced by an analyzer.
type Finding struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Message  string         `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// An Analyzer is one named pass over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		AtomicMix, GuardedBy, Locked, NoAlloc, FalseShare, Determinism,
		IntWidth, CtxPoll, AtomicWrite,
	}
}

// ByName resolves an analyzer by its Name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Pass carries one analyzer's view of one package plus the module-wide
// annotation table.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	Sizes    types.Sizes
	Ann      *Annotations
	// Graph is the shared module call graph + summaries (never nil for
	// modules loaded through LoadModule/LoadDir).
	Graph *Graph

	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run executes the analyzers over every loaded package and returns the
// findings that survive //armlint:allow suppression, sorted by position.
func Run(mod *Module, analyzers []*Analyzer) []Finding {
	findings, _ := RunTimed(mod, analyzers)
	return findings
}

// Timing is one analyzer's aggregate over the whole module: how many
// findings survived suppression and how long the pass took. It feeds the
// armlint/v2 JSON report.
type Timing struct {
	Name      string  `json:"name"`
	Findings  int     `json:"findings"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// RunTimed is Run plus per-analyzer timing, analyzer-major so each timing
// covers one analyzer's full module sweep. Finding order is identical to
// Run's (position-sorted at the end).
func RunTimed(mod *Module, analyzers []*Analyzer) ([]Finding, []Timing) {
	var findings []Finding
	timings := make([]Timing, 0, len(analyzers))
	for _, a := range analyzers {
		start := time.Now()
		var fs []Finding
		for _, pkg := range mod.Packages {
			a.Run(&Pass{
				Analyzer: a,
				Fset:     mod.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Sizes:    mod.Sizes,
				Ann:      mod.Ann,
				Graph:    mod.Graph,
				findings: &fs,
			})
		}
		fs = mod.Ann.filterAllowed(fs)
		timings = append(timings, Timing{
			Name:      a.Name,
			Findings:  len(fs),
			ElapsedMS: float64(time.Since(start).Nanoseconds()) / 1e6,
		})
		findings = append(findings, fs...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, timings
}

// funcObj resolves a FuncDecl to its *types.Func.
func funcObj(info *types.Info, decl *ast.FuncDecl) *types.Func {
	if obj, ok := info.Defs[decl.Name].(*types.Func); ok {
		return obj
	}
	return nil
}

// deref unwraps pointers and aliases down to the core named or unnamed type.
func deref(t types.Type) types.Type {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Alias:
			t = types.Unalias(u)
		default:
			return t
		}
	}
}
