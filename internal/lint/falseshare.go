package lint

import (
	"go/ast"
	"go/types"
)

// FalseShare is the static twin of the cachesim MESI false-sharing
// classifier (Section 6.4): instead of replaying an access trace, it
// computes real struct layouts with types.Sizes (the gc rules for the host
// architecture) and flags //armlint:hot fields — fields mutated continually
// by their owning worker — whose layout lets two different owners' hot data
// land on one 64-byte coherence line:
//
//  1. A struct with hot fields that is used as a slice or array element
//     type anywhere in the analyzed package must have a size that is a
//     multiple of the line: []PerWorker with sizeof 32 puts worker p's
//     counters and worker p+1's on the same line, and every increment
//     ping-pongs it (exactly the adjacent-counter hazard of Figs 12–13).
//  2. Within one struct, hot fields of *different* owner groups
//     (//armlint:hot <group>) must not share a line. Fields of the same
//     group share an owner, so co-residence is free — that is why the
//     default group "worker" never conflicts with itself.
//
// The fix is padding (the paper's approach) or sharding; the analyzer
// reports the offending sizeof/offsets so the pad is easy to compute.
//
// Layout is a whole-program property already — the annotation table is
// module-wide and types.Sizes sees through package boundaries — so this is
// the one v1 analyzer the v2 call-graph substrate adds nothing to.
var FalseShare = &Analyzer{
	Name: "falseshare",
	Doc:  "hot per-worker fields must not share a 64-byte cache line across owners",
	Run:  runFalseShare,
}

func runFalseShare(pass *Pass) {
	checkHotStructDefs(pass)
	checkHotElemUses(pass)
}

// checkHotStructDefs applies rule 2 to structs defined in this package.
func checkHotStructDefs(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			spec, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			tn, ok := pass.Info.Defs[spec.Name].(*types.TypeName)
			if !ok {
				return true
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || len(pass.Ann.HotStructs[named]) == 0 {
				return true
			}
			st, ok := named.Underlying().(*types.Struct)
			if !ok {
				return true
			}
			fields := make([]*types.Var, st.NumFields())
			index := map[*types.Var]int{}
			for i := range fields {
				fields[i] = st.Field(i)
				index[fields[i]] = i
			}
			offsets := pass.Sizes.Offsetsof(fields)
			hot := pass.Ann.HotStructs[named]
			for i := 0; i < len(hot); i++ {
				for j := i + 1; j < len(hot); j++ {
					a, b := hot[i], hot[j]
					ga, gb := pass.Ann.Hot[a], pass.Ann.Hot[b]
					if ga == gb {
						continue
					}
					ia, ib := index[a], index[b]
					la0, la1 := lineSpan(offsets[ia], pass.Sizes.Sizeof(a.Type()))
					lb0, lb1 := lineSpan(offsets[ib], pass.Sizes.Sizeof(b.Type()))
					if la1 >= lb0 && lb1 >= la0 {
						pass.Reportf(b.Pos(), "hot fields %q (group %s, offset %d) and %q (group %s, offset %d) of %s share a %d-byte cache line; pad so different owners' hot data never co-reside", a.Name(), ga, offsets[ia], b.Name(), gb, offsets[ib], named.Obj().Name(), lineBytes)
					}
				}
			}
			return true
		})
	}
}

// checkHotElemUses applies rule 1 to []T / [N]T type expressions whose
// element type (declared in any module package) carries hot fields.
func checkHotElemUses(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			at, ok := n.(*ast.ArrayType)
			if !ok {
				return true
			}
			elemT := pass.Info.TypeOf(at.Elt)
			if elemT == nil {
				return true
			}
			named, ok := types.Unalias(elemT).(*types.Named)
			if !ok || len(pass.Ann.HotStructs[named]) == 0 {
				return true
			}
			size := pass.Sizes.Sizeof(named)
			if size%lineBytes == 0 {
				return true
			}
			pass.Reportf(at.Pos(), "%s has hot per-worker fields but sizeof(%s)=%d is not a multiple of the %d-byte cache line: adjacent elements of this slice/array false-share; pad the struct by %d bytes", named.Obj().Name(), named.Obj().Name(), size, lineBytes, lineBytes-size%lineBytes)
			return true
		})
	}
}

// lineSpan returns the inclusive range of cache-line indices a field at
// offset off with the given size touches.
func lineSpan(off, size int64) (first, last int64) {
	if size <= 0 {
		size = 1
	}
	return off / lineBytes, (off + size - 1) / lineBytes
}
