package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Annotation grammar (see DESIGN.md "Static analysis"):
//
//	//armlint:noalloc                      — on a function declaration
//	//armlint:guardedby <field>            — on a struct field; <field> is a
//	                                         sibling mutex or stripe-lock array
//	//armlint:locked <path>[,<path>]       — on a function declaration: the
//	                                         named lock paths are held by the
//	                                         caller on entry (split-style
//	                                         helpers)
//	//armlint:hot [group]                  — on a struct field mutated by one
//	                                         worker (default group "worker")
//	//armlint:pinned                       — in a package doc comment
//	//armlint:wide                         — on a function (its result is a
//	                                         wide int64: a global address,
//	                                         arena offset or transaction
//	                                         count) or on an int64 struct
//	                                         field with the same meaning
//	//armlint:narrowok <reason>            — on/above a narrowing conversion
//	                                         of a wide value: the range is
//	                                         bounded for the stated reason
//	                                         (sugar for allow intwidth)
//	//armlint:cancellable                  — on a ctx-taking entry point: every
//	                                         scan loop reachable from here
//	                                         must poll for cancellation
//	//armlint:polls                        — on a function that observes
//	                                         cancellation itself (blocks with
//	                                         an abort path, or checks ctx)
//	//armlint:itersrc                      — on a function that yields
//	                                         per-transaction/chunk/segment
//	                                         work; loops calling it owe a poll
//	//armlint:allow <a>[,<a>...] <reason>  — on/above a line, suppresses the
//	                                         named analyzers there
//
// Directives are ordinary //-comments with no space after the slashes, so
// godoc hides them and gofmt leaves them alone.

// Allow is one parsed //armlint:allow directive.
type Allow struct {
	File      string
	Line      int
	Analyzers map[string]bool
	Reason    string
}

// Annotations is the module-wide annotation table, keyed by type-checker
// objects so analyzers in any package resolve annotations declared in
// another.
type Annotations struct {
	// NoAlloc holds functions that must be statically allocation-free.
	NoAlloc map[*types.Func]bool
	// Guarded maps an annotated field to its sibling lock field.
	Guarded map[*types.Var]*types.Var
	// Locked lists lock paths a function's callers hold on entry.
	Locked map[*types.Func][]string
	// Hot maps a per-worker mutable field to its owner group.
	Hot map[*types.Var]string
	// HotStructs lists, per named struct type, its hot fields.
	HotStructs map[*types.Named][]*types.Var
	// Pinned marks packages whose work model is frozen by
	// TestModelTimePinned (determinism-critical).
	Pinned map[string]bool
	// Wide marks functions returning a wide int64 (global address, arena
	// offset, transaction count) that must not be narrowed unguarded.
	Wide map[*types.Func]bool
	// WideField marks int64 struct fields carrying wide values.
	WideField map[*types.Var]bool
	// Cancellable marks the ctx-taking mining entry points: ctxpoll roots.
	Cancellable map[*types.Func]bool
	// Polls marks functions that observe cancellation themselves.
	Polls map[*types.Func]bool
	// IterSrc marks functions yielding per-transaction/chunk/segment work.
	IterSrc map[*types.Func]bool

	allows map[string]map[int]*Allow // file → line → directive
}

func newAnnotations() *Annotations {
	return &Annotations{
		NoAlloc:     map[*types.Func]bool{},
		Guarded:     map[*types.Var]*types.Var{},
		Locked:      map[*types.Func][]string{},
		Hot:         map[*types.Var]string{},
		HotStructs:  map[*types.Named][]*types.Var{},
		Pinned:      map[string]bool{},
		Wide:        map[*types.Func]bool{},
		WideField:   map[*types.Var]bool{},
		Cancellable: map[*types.Func]bool{},
		Polls:       map[*types.Func]bool{},
		IterSrc:     map[*types.Func]bool{},
		allows:      map[string]map[int]*Allow{},
	}
}

// directive splits an "//armlint:<verb> <args>" comment; ok is false for
// ordinary comments.
func directive(c *ast.Comment) (verb, args string, ok bool) {
	text, found := strings.CutPrefix(c.Text, "//armlint:")
	if !found {
		return "", "", false
	}
	verb, args, _ = strings.Cut(text, " ")
	return verb, strings.TrimSpace(args), true
}

// collect scans one package's ASTs for armlint directives and merges them
// into the table. It runs after type checking so directives resolve to
// checker objects.
func (a *Annotations) collect(fset *token.FileSet, pkg *Package) {
	info := pkg.Info
	for _, file := range pkg.Files {
		// Package-level: //armlint:pinned in the package doc.
		if file.Doc != nil {
			for _, c := range file.Doc.List {
				if verb, _, ok := directive(c); ok && verb == "pinned" {
					a.Pinned[pkg.Path] = true
				}
			}
		}
		// Suppressions can appear in any comment group. narrowok is sugar
		// for an intwidth-only allow: the reason documents why the wide
		// value's range is bounded at that conversion.
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				verb, args, ok := directive(c)
				if !ok {
					continue
				}
				al := &Allow{Analyzers: map[string]bool{}}
				switch verb {
				case "allow":
					names, reason, _ := strings.Cut(args, " ")
					al.Reason = strings.TrimSpace(reason)
					for _, n := range strings.Split(names, ",") {
						if n = strings.TrimSpace(n); n != "" {
							al.Analyzers[n] = true
						}
					}
				case "narrowok":
					al.Reason = args
					al.Analyzers["intwidth"] = true
				default:
					continue
				}
				pos := fset.Position(c.Pos())
				al.File, al.Line = pos.Filename, pos.Line
				if a.allows[al.File] == nil {
					a.allows[al.File] = map[int]*Allow{}
				}
				a.allows[al.File][al.Line] = al
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				a.collectFunc(info, n)
			case *ast.TypeSpec:
				a.collectType(info, n)
			}
			return true
		})
	}
}

func (a *Annotations) collectFunc(info *types.Info, decl *ast.FuncDecl) {
	if decl.Doc == nil {
		return
	}
	for _, c := range decl.Doc.List {
		verb, args, ok := directive(c)
		if !ok {
			continue
		}
		fn := funcObj(info, decl)
		if fn == nil {
			continue
		}
		switch verb {
		case "noalloc":
			a.NoAlloc[fn] = true
		case "locked":
			for _, p := range strings.Split(args, ",") {
				if p = strings.TrimSpace(p); p != "" {
					a.Locked[fn] = append(a.Locked[fn], p)
				}
			}
		case "wide":
			a.Wide[fn] = true
		case "cancellable":
			a.Cancellable[fn] = true
		case "polls":
			a.Polls[fn] = true
		case "itersrc":
			a.IterSrc[fn] = true
		}
	}
}

func (a *Annotations) collectType(info *types.Info, spec *ast.TypeSpec) {
	st, ok := spec.Type.(*ast.StructType)
	if !ok || st.Fields == nil {
		return
	}
	var named *types.Named
	if tn, ok := info.Defs[spec.Name].(*types.TypeName); ok {
		named, _ = tn.Type().(*types.Named)
	}
	for _, field := range st.Fields.List {
		for _, verb := range fieldDirectives(field) {
			switch verb.verb {
			case "guardedby":
				lock := lookupSibling(info, st, verb.args)
				if lock == nil {
					continue
				}
				for _, v := range fieldVars(info, field) {
					a.Guarded[v] = lock
				}
			case "hot":
				group := verb.args
				if group == "" {
					group = "worker"
				}
				for _, v := range fieldVars(info, field) {
					a.Hot[v] = group
					if named != nil {
						a.HotStructs[named] = append(a.HotStructs[named], v)
					}
				}
			case "wide":
				for _, v := range fieldVars(info, field) {
					a.WideField[v] = true
				}
			}
		}
	}
}

type fieldDirective struct{ verb, args string }

// fieldDirectives extracts armlint directives from a struct field's doc and
// trailing comments.
func fieldDirectives(field *ast.Field) []fieldDirective {
	var out []fieldDirective
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if verb, args, ok := directive(c); ok {
				out = append(out, fieldDirective{verb, args})
			}
		}
	}
	return out
}

// fieldVars resolves a field declaration's names to checker objects.
func fieldVars(info *types.Info, field *ast.Field) []*types.Var {
	var out []*types.Var
	for _, name := range field.Names {
		if v, ok := info.Defs[name].(*types.Var); ok {
			out = append(out, v)
		}
	}
	return out
}

// lookupSibling finds a struct field by name within the same struct literal.
func lookupSibling(info *types.Info, st *ast.StructType, name string) *types.Var {
	for _, f := range st.Fields.List {
		for _, n := range f.Names {
			if n.Name == name {
				if v, ok := info.Defs[n].(*types.Var); ok {
					return v
				}
			}
		}
	}
	return nil
}

// filterAllowed drops findings covered by an //armlint:allow directive on
// the same line or the line immediately above.
func (a *Annotations) filterAllowed(findings []Finding) []Finding {
	out := findings[:0]
	for _, f := range findings {
		if a.allowed(f) {
			continue
		}
		out = append(out, f)
	}
	return out
}

func (a *Annotations) allowed(f Finding) bool {
	lines := a.allows[f.File]
	if lines == nil {
		return false
	}
	for _, line := range []int{f.Line, f.Line - 1} {
		if al := lines[line]; al != nil && al.Analyzers[f.Analyzer] {
			return true
		}
	}
	return false
}
