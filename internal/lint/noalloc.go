package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NoAlloc verifies that //armlint:noalloc functions contain no construct
// that can heap-allocate. It is the static complement of the
// testing.AllocsPerRun==0 gates on the frozen counting kernel: the runtime
// gate proves a particular execution allocated nothing, this pass proves no
// execution can, by refusing the constructs the compiler lowers to
// runtime allocation:
//
//   - make / new / append (growth or escape)
//   - slice, map and &struct composite literals (plain by-value struct
//     literals are fine — they stay in registers or the frame)
//   - function literals (closure environments escape)
//   - string concatenation and string<->[]byte/[]rune conversions
//   - interface boxing at calls, assignments and returns (a concrete value
//     assigned to an interface is heap-boxed unless it is pointer-shaped,
//     which escape analysis may not prove)
//   - go and defer statements
//
// Callee bodies are not re-analyzed, but the call graph closes the
// contract: a noalloc function may only call module functions that are
// themselves annotated noalloc (the kernel's scanLeaf/bump/flushBatch chain
// is), so an allocation can't hide one frame down. Standard-library calls
// are trusted case by case — the kernel's stdlib surface is popcount
// intrinsics and slice indexing, which don't allocate. False positives — a
// construct the compiler provably keeps on the stack — carry
// //armlint:allow noalloc.
var NoAlloc = &Analyzer{
	Name: "noalloc",
	Doc:  "annotated functions contain no allocating constructs",
	Run:  runNoAlloc,
}

func runNoAlloc(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				return true
			}
			fn := funcObj(pass.Info, fd)
			if fn == nil || !pass.Ann.NoAlloc[fn] {
				return true
			}
			checkNoAlloc(pass, fn, fd.Body)
			return false
		})
	}
}

func checkNoAlloc(pass *Pass, fn *types.Func, body *ast.BlockStmt) {
	info := pass.Info
	sig := fn.Type().(*types.Signature)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "noalloc %s: go statement allocates a goroutine", fn.Name())
		case *ast.DeferStmt:
			pass.Reportf(n.Pos(), "noalloc %s: defer may allocate its frame record", fn.Name())
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "noalloc %s: function literal allocates its closure", fn.Name())
			return false
		case *ast.CompositeLit:
			switch deref(info.TypeOf(n)).Underlying().(type) {
			case *types.Slice, *types.Map:
				pass.Reportf(n.Pos(), "noalloc %s: slice/map literal allocates", fn.Name())
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "noalloc %s: &composite literal escapes to the heap", fn.Name())
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(info.TypeOf(n)) {
				pass.Reportf(n.Pos(), "noalloc %s: string concatenation allocates", fn.Name())
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isString(info.TypeOf(n.Lhs[0])) {
				pass.Reportf(n.Pos(), "noalloc %s: string concatenation allocates", fn.Name())
			}
			for i, lhs := range n.Lhs {
				if i < len(n.Rhs) && boxes(info, info.TypeOf(lhs), n.Rhs[i]) {
					pass.Reportf(n.Rhs[i].Pos(), "noalloc %s: assignment boxes concrete value into interface", fn.Name())
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if i < len(n.Values) && boxes(info, info.TypeOf(name), n.Values[i]) {
					pass.Reportf(n.Values[i].Pos(), "noalloc %s: var declaration boxes concrete value into interface", fn.Name())
				}
			}
		case *ast.ReturnStmt:
			res := sig.Results()
			for i, r := range n.Results {
				if i < res.Len() && boxes(info, res.At(i).Type(), r) {
					pass.Reportf(r.Pos(), "noalloc %s: return boxes concrete value into interface", fn.Name())
				}
			}
		case *ast.CallExpr:
			checkNoAllocCall(pass, fn, n)
		}
		return true
	})
}

func checkNoAllocCall(pass *Pass, fn *types.Func, call *ast.CallExpr) {
	info := pass.Info
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new", "append":
				pass.Reportf(call.Pos(), "noalloc %s: builtin %s allocates", fn.Name(), b.Name())
			}
			return
		}
	}
	// Conversions: T(x).
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		srcT := info.TypeOf(call.Args[0])
		if srcT == nil {
			return
		}
		dst := deref(tv.Type).Underlying()
		src := deref(srcT).Underlying()
		switch {
		case isString(dst) && !isString(src):
			pass.Reportf(call.Pos(), "noalloc %s: conversion to string allocates", fn.Name())
		case isString(src):
			if sl, ok := dst.(*types.Slice); ok && isByteOrRune(sl.Elem()) {
				pass.Reportf(call.Pos(), "noalloc %s: string to slice conversion allocates", fn.Name())
			}
		}
		return
	}
	// Module callees must carry the annotation themselves — otherwise the
	// static proof has a hole one frame down.
	if pass.Graph != nil {
		if callee := calledFunc(info, call); callee != nil {
			if pass.Graph.Nodes[callee] != nil && !pass.Ann.NoAlloc[callee] {
				pass.Reportf(call.Pos(), "noalloc %s: calls module function %s which is not annotated //armlint:noalloc", fn.Name(), callee.Name())
			}
		}
	}
	// Ordinary calls: interface boxing of arguments.
	sig, ok := deref(info.TypeOf(call.Fun)).Underlying().(*types.Signature)
	if !ok {
		return
	}
	if call.Ellipsis.IsValid() {
		return // passing a []T... slice through boxes nothing new
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			pt = sig.Params().At(np - 1).Type().(*types.Slice).Elem()
		case i < np:
			pt = sig.Params().At(i).Type()
		default:
			continue
		}
		if boxes(info, pt, arg) {
			pass.Reportf(arg.Pos(), "noalloc %s: argument boxes concrete value into interface", fn.Name())
		}
	}
}

// boxes reports whether assigning expr to a destination of type dst wraps a
// concrete value in an interface.
func boxes(info *types.Info, dst types.Type, expr ast.Expr) bool {
	if dst == nil {
		return false
	}
	if _, ok := deref(dst).Underlying().(*types.Interface); !ok {
		return false
	}
	tv, ok := info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	if tv.IsNil() {
		return false
	}
	src := tv.Type
	if _, ok := src.Underlying().(*types.Interface); ok {
		return false // interface-to-interface carries the existing box
	}
	return true
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRune(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
