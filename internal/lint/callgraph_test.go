package lint

import (
	"path/filepath"
	"testing"
)

// loadCallgraphFixture loads testdata/src/callgraph and returns its graph.
func loadCallgraphFixture(t *testing.T) *Graph {
	t.Helper()
	mod, err := LoadDir(filepath.Join("testdata", "src", "callgraph"))
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if mod.Graph == nil {
		t.Fatal("LoadDir did not build a call graph")
	}
	return mod.Graph
}

func nodeByName(t *testing.T, g *Graph, name string) *FuncNode {
	t.Helper()
	var found *FuncNode
	for fn, n := range g.Nodes {
		if fn.Name() == name {
			if found != nil {
				t.Fatalf("two nodes named %q", name)
			}
			found = n
		}
	}
	if found == nil {
		t.Fatalf("no node named %q", name)
	}
	return found
}

func TestCallGraphSummaries(t *testing.T) {
	g := loadCallgraphFixture(t)

	// IterSrc propagates through two call layers.
	for _, name := range []string{"source", "level1", "level2"} {
		if !nodeByName(t, g, name).IterSrc {
			t.Errorf("%s.IterSrc = false, want true", name)
		}
	}
	if nodeByName(t, g, "even").IterSrc {
		t.Error("even.IterSrc = true; recursion must not invent properties")
	}

	// Polls propagates from the annotated (and directly-polling) helper.
	if !nodeByName(t, g, "check").Polls {
		t.Error("check.Polls = false, want true")
	}
	if !nodeByName(t, g, "viaCheck").Polls {
		t.Error("viaCheck.Polls = false, want true")
	}

	// WideRet propagates over direct result returns.
	if !nodeByName(t, g, "wrapWide").WideRet {
		t.Error("wrapWide.WideRet = false, want true")
	}

	// AtomicParams propagates over parameter forwarding.
	if !nodeByName(t, g, "bump").AtomicParams[0] {
		t.Error("bump.AtomicParams[0] = false, want true")
	}
	if !nodeByName(t, g, "bump2").AtomicParams[0] {
		t.Error("bump2.AtomicParams[0] = false, want true")
	}
}

func TestCallGraphRecursion(t *testing.T) {
	g := loadCallgraphFixture(t)
	// Mutual recursion: both edges present, fixpoint terminated (we got
	// here), no property invented.
	even, odd := nodeByName(t, g, "even"), nodeByName(t, g, "odd")
	hasCall := func(n *FuncNode, target *FuncNode) bool {
		for _, c := range n.Calls {
			if c == target {
				return true
			}
		}
		return false
	}
	if !hasCall(even, odd) || !hasCall(odd, even) {
		t.Error("mutual recursion edges missing from Calls")
	}
	if even.Polls || even.IterSrc || even.Clock || even.WideRet {
		t.Errorf("recursive even acquired spurious summaries: %+v", even)
	}
}

func TestCallGraphEdgeKinds(t *testing.T) {
	g := loadCallgraphFixture(t)

	// A method value is a Refs edge but not a Calls edge.
	root, m := nodeByName(t, g, "Root"), nodeByName(t, g, "M")
	hasRef := false
	for _, r := range root.Refs {
		if r == m {
			hasRef = true
		}
	}
	if !hasRef {
		t.Error("Root does not Ref the method value M")
	}
	for _, c := range root.Calls {
		if c == m {
			t.Error("method value M must not be a Calls edge")
		}
	}

	// A deferred call is both a Refs and a Calls edge.
	def, helper := nodeByName(t, g, "deferred"), nodeByName(t, g, "helperD")
	hasRef, hasCall := false, false
	for _, r := range def.Refs {
		if r == helper {
			hasRef = true
		}
	}
	for _, c := range def.Calls {
		if c == helper {
			hasCall = true
		}
	}
	if !hasRef || !hasCall {
		t.Errorf("deferred call edges: ref=%v call=%v, want both", hasRef, hasCall)
	}
}

func TestCancellableReach(t *testing.T) {
	g := loadCallgraphFixture(t)
	m := nodeByName(t, g, "M")
	root := nodeByName(t, g, "Root")
	if !g.CancellableReach[root.Fn] {
		t.Error("root itself not in CancellableReach")
	}
	if !g.CancellableReach[m.Fn] {
		t.Error("method value target M not reachable from the cancellable root")
	}
	for _, name := range []string{"deferred", "level2", "even"} {
		if g.CancellableReach[nodeByName(t, g, name).Fn] {
			t.Errorf("%s is not referenced from any cancellable root but is in CancellableReach", name)
		}
	}
}
