package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AtomicWrite checks the temp+fsync+rename discipline that makes checkpoint
// and segment writes crash-atomic. The contract (ckpt.WriteFile is the
// canonical shape):
//
//  1. the temp file must be fsynced before it is renamed over the target —
//     rename-before-sync can publish a zero-length or torn file after a
//     crash, which is precisely the corruption ckpt's CRC trailer exists to
//     detect but should never have to;
//  2. Close errors on the temp writer must be checked (a failed close can
//     lose buffered writes) unless the surrounding abort path already
//     removes the temp;
//  3. no return path may leak the temp file: every return must have
//     renamed it, removed it, or handed the handle off (returned it or
//     stored it in a struct, as seg.Writer.Create does — the rename
//     obligation then moves to wherever the handle ends up);
//  4. a standalone os.Rename of a temp-named path (seg.Writer.Close, where
//     the file was opened in another function) must still be preceded by a
//     Sync call somewhere earlier in the same function.
//
// Tracking activates only when os.Create/os.OpenFile is called on a
// ".tmp"-patterned path, so ordinary file I/O is never flagged. The walk is
// linear with clone-on-branch (same machinery shape as guardedby): branch
// bodies are analyzed against copies of the state, so an abort path that
// removes the temp satisfies its own returns without leaking cleanup into
// the success path.
var AtomicWrite = &Analyzer{
	Name: "atomicwrite",
	Doc:  "temp files are fsynced before rename, closes checked, no path leaks the temp",
	Run:  runAtomicWrite,
}

func runAtomicWrite(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if fd, ok := n.(*ast.FuncDecl); ok && fd.Body != nil {
				checkAtomicWrite(pass, fd)
				return false
			}
			return true
		})
	}
}

// awFile is the tracked state of one temp-file handle.
type awFile struct {
	tmp      *types.Var // variable holding the temp path, if any
	errVar   *types.Var // error variable from the creating call
	maybeNil bool       // inside the create-error branch: handle may be nil
	synced   bool
	renamed  bool
	removed  bool
	escaped  bool
}

// awState is one control-flow path's view of the tracked handles.
type awState struct {
	files map[*types.Var]*awFile
	tmps  map[*types.Var]bool // string vars holding ".tmp"-patterned paths
}

func (st *awState) clone() *awState {
	c := &awState{
		files: make(map[*types.Var]*awFile, len(st.files)),
		tmps:  make(map[*types.Var]bool, len(st.tmps)),
	}
	for v, f := range st.files {
		cp := *f
		c.files[v] = &cp
	}
	for v := range st.tmps {
		c.tmps[v] = true
	}
	return c
}

type awChecker struct {
	pass  *Pass
	syncs []token.Pos // positions of every .Sync() call in the function
}

func checkAtomicWrite(pass *Pass, fd *ast.FuncDecl) {
	c := &awChecker{pass: pass}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Sync" {
				c.syncs = append(c.syncs, call.Pos())
			}
		}
		return true
	})
	st := &awState{files: map[*types.Var]*awFile{}, tmps: map[*types.Var]bool{}}
	c.walk(fd.Body.List, st)
}

func (c *awChecker) walk(stmts []ast.Stmt, st *awState) {
	for _, s := range stmts {
		c.stmt(s, st, stmts)
	}
}

func (c *awChecker) stmt(s ast.Stmt, st *awState, block []ast.Stmt) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		c.assign(s, st)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					c.valueSpec(vs, st)
				}
			}
		}
	case *ast.ExprStmt:
		c.callEffects(s.X, st, block, true)
	case *ast.DeferStmt:
		// Deferred Close/Remove count as handled; a deferred close's error
		// is conventionally unobservable, so rule 2 does not fire here.
		if f := c.fileFor(st, recvOf(s.Call)); f != nil && methodName(s.Call) == "Close" {
			return
		}
		c.callEffects(s.Call, st, block, false)
	case *ast.ReturnStmt:
		for _, res := range s.Results {
			ast.Inspect(res, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					c.callEffects(call, st, block, false)
				}
				// Returning any expression that mentions the handle —
				// the handle itself, or a struct wrapping it — hands the
				// rename obligation to the caller.
				if f := c.fileFor(st, n); f != nil {
					f.escaped = true
				}
				return true
			})
		}
		for _, f := range st.files {
			if !f.renamed && !f.removed && !f.escaped && !f.maybeNil {
				c.pass.Reportf(s.Pos(), "return path leaks the temp file: rename it over the target, os.Remove it on the abort path, or return the handle")
			}
		}
	case *ast.IfStmt:
		if s.Init != nil {
			c.stmt(s.Init, st, block)
		}
		then := st.clone()
		// `if err != nil` on the creating call's error var: in that branch
		// the handle was never opened, so there is nothing to leak.
		if be, ok := s.Cond.(*ast.BinaryExpr); ok && be.Op == token.NEQ {
			if v := usedIdentVar(c.pass.Info, be.X); v != nil {
				for _, f := range then.files {
					if f.errVar == v {
						f.maybeNil = true
					}
				}
			}
		}
		c.walk(s.Body.List, then)
		if s.Else != nil {
			c.stmt(s.Else, st.clone(), block)
		}
	case *ast.BlockStmt:
		c.walk(s.List, st)
	case *ast.ForStmt:
		c.walk(s.Body.List, st.clone())
	case *ast.RangeStmt:
		c.walk(s.Body.List, st.clone())
	case *ast.SwitchStmt:
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				c.walk(cl.Body, st.clone())
			}
		}
	case *ast.TypeSwitchStmt:
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				c.walk(cl.Body, st.clone())
			}
		}
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CommClause); ok {
				c.walk(cl.Body, st.clone())
			}
		}
	case *ast.GoStmt:
		// A handle captured by a spawned goroutine is out of this
		// function's hands; treat it like any other escape.
		ast.Inspect(s.Call, func(n ast.Node) bool {
			if f := c.fileFor(st, n); f != nil {
				f.escaped = true
			}
			return true
		})
	}
}

func (c *awChecker) valueSpec(vs *ast.ValueSpec, st *awState) {
	for i, name := range vs.Names {
		if i >= len(vs.Values) {
			break
		}
		if containsTmpLit(vs.Values[i]) && isStringVar(c.pass.Info.Defs[name]) {
			if v, ok := c.pass.Info.Defs[name].(*types.Var); ok {
				st.tmps[v] = true
			}
		}
	}
}

func (c *awChecker) assign(s *ast.AssignStmt, st *awState) {
	// f, err := os.Create(tmp) — activation point.
	if len(s.Rhs) == 1 {
		if call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr); ok && c.isTmpOpen(call, st) {
			f := &awFile{}
			if len(call.Args) > 0 {
				if v := usedIdentVar(c.pass.Info, call.Args[0]); v != nil {
					f.tmp = v
				}
			}
			if len(s.Lhs) >= 2 {
				f.errVar = assignedVar(c.pass.Info, s.Lhs[1])
			}
			if fv := assignedVar(c.pass.Info, s.Lhs[0]); fv != nil {
				st.files[fv] = f
			}
			return
		}
	}
	for i, rhs := range s.Rhs {
		// tmp := path + ".tmp" — remember the temp path variable.
		if containsTmpLit(rhs) && i < len(s.Lhs) {
			if v := assignedVar(c.pass.Info, s.Lhs[i]); v != nil && isStringVar(v) {
				st.tmps[v] = true
			}
		}
		// Storing the handle in a composite literal or a field hands the
		// rename obligation to the receiving type (seg.Writer.Create).
		ast.Inspect(rhs, func(n ast.Node) bool {
			if cl, ok := n.(*ast.CompositeLit); ok {
				ast.Inspect(cl, func(m ast.Node) bool {
					if f := c.fileFor(st, m); f != nil {
						f.escaped = true
					}
					return true
				})
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok {
				c.callEffects(call, st, nil, false)
				return false
			}
			return true
		})
		if i < len(s.Lhs) {
			if _, isSel := ast.Unparen(s.Lhs[i]).(*ast.SelectorExpr); isSel {
				if f := c.fileFor(st, rhs); f != nil {
					f.escaped = true
				}
			}
		}
	}
}

// callEffects applies the state transitions of one call expression.
// bareStmt marks an expression-statement position, where a Close's error
// result is discarded (rule 2).
func (c *awChecker) callEffects(expr ast.Expr, st *awState, block []ast.Stmt, bareStmt bool) {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return
	}
	// Package-level os functions only: os.File methods (Sync, Close) also
	// live in package os but are handled via the tracked receiver below.
	if fn := calledFunc(c.pass.Info, call); fn != nil && fn.Pkg() != nil &&
		fn.Pkg().Path() == "os" && fn.Type().(*types.Signature).Recv() == nil {
		switch fn.Name() {
		case "Remove":
			if len(call.Args) == 1 {
				if v := usedIdentVar(c.pass.Info, call.Args[0]); v != nil {
					for _, f := range st.files {
						if f.tmp == v {
							f.removed = true
						}
					}
				}
			}
		case "Rename":
			if len(call.Args) != 2 {
				return
			}
			if v := usedIdentVar(c.pass.Info, call.Args[0]); v != nil {
				for _, f := range st.files {
					if f.tmp != v {
						continue
					}
					if !f.synced {
						c.pass.Reportf(call.Pos(), "temp file renamed over its target before Sync; a crash can publish a torn or empty file — fsync the temp first")
					}
					f.renamed = true
					return
				}
			}
			// Rule 4: a rename of a temp-named path opened elsewhere still
			// needs a Sync earlier in this function.
			if tmpishExpr(c.pass.Info, call.Args[0], st) && !c.syncBefore(call.Pos()) {
				c.pass.Reportf(call.Pos(), "temp file renamed over its target with no Sync call earlier in this function; fsync the writer before publishing")
			}
		}
		return
	}
	// Method calls on a tracked handle.
	f := c.fileFor(st, recvOf(call))
	if f == nil {
		return
	}
	switch methodName(call) {
	case "Sync":
		f.synced = true
	case "Close":
		if bareStmt && !blockRemoves(block, call.Pos()) {
			c.pass.Reportf(call.Pos(), "error from Close of the temp-file writer is discarded; check it (a failed close can lose buffered writes) or os.Remove the temp on this path")
		}
	}
}

// isTmpOpen reports whether call opens a ".tmp"-patterned path —
// os.Create/os.OpenFile whose path argument is a temp literal, a tracked
// temp variable, or a variable whose name says tmp.
func (c *awChecker) isTmpOpen(call *ast.CallExpr, st *awState) bool {
	fn := calledFunc(c.pass.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "os" {
		return false
	}
	if fn.Name() != "Create" && fn.Name() != "OpenFile" {
		return false
	}
	return len(call.Args) > 0 && tmpishExpr(c.pass.Info, call.Args[0], st)
}

func (c *awChecker) syncBefore(pos token.Pos) bool {
	for _, p := range c.syncs {
		if p < pos {
			return true
		}
	}
	return false
}

func (c *awChecker) fileFor(st *awState, n ast.Node) *awFile {
	expr, ok := n.(ast.Expr)
	if !ok {
		return nil
	}
	if v := usedIdentVar(c.pass.Info, expr); v != nil {
		return st.files[v]
	}
	return nil
}

// tmpishExpr reports whether expr names a temp path: contains a ".tmp"
// string literal, is a tracked temp variable, or is an identifier/selector
// whose name contains "tmp".
func tmpishExpr(info *types.Info, expr ast.Expr, st *awState) bool {
	if containsTmpLit(expr) {
		return true
	}
	if v := usedIdentVar(info, expr); v != nil {
		if st.tmps[v] || strings.Contains(strings.ToLower(v.Name()), "tmp") {
			return true
		}
	}
	if sel, ok := ast.Unparen(expr).(*ast.SelectorExpr); ok {
		return strings.Contains(strings.ToLower(sel.Sel.Name), "tmp")
	}
	return false
}

// containsTmpLit reports whether the expression tree contains a string
// literal with a ".tmp" component.
func containsTmpLit(expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if lit, ok := n.(*ast.BasicLit); ok && lit.Kind == token.STRING &&
			strings.Contains(lit.Value, ".tmp") {
			found = true
		}
		return !found
	})
	return found
}

// blockRemoves reports whether the statement list contains an os.Remove
// call after pos — the `f.Close(); os.Remove(tmp); return err` abort-path
// idiom that excuses an unchecked Close. Removes on earlier, unrelated
// abort paths don't count.
func blockRemoves(block []ast.Stmt, pos token.Pos) bool {
	for _, s := range block {
		found := false
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || call.Pos() <= pos {
				return true
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Remove" {
				if id, ok := sel.X.(*ast.Ident); ok && id.Name == "os" {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// recvOf returns the receiver expression of a method-shaped call, or nil.
func recvOf(call *ast.CallExpr) ast.Expr {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.X
	}
	return nil
}

// methodName returns the selector name of a method-shaped call, or "".
func methodName(call *ast.CallExpr) string {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	return ""
}

// usedIdentVar resolves a plain identifier expression to the variable it
// uses, or nil.
func usedIdentVar(info *types.Info, expr ast.Expr) *types.Var {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := info.Uses[id].(*types.Var)
	return v
}

// isStringVar reports whether obj is a variable of (underlying) string type.
func isStringVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	b, ok := v.Type().Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
