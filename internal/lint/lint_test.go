package lint

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files from current analyzer output")

// goldenCases pairs each fixture package with the single analyzer it
// exercises: one package with intentional violations, one provably clean.
var goldenCases = []struct {
	fixture  string
	analyzer string
}{
	{"atomicmix_bad", "atomic-mix"},
	{"atomicmix_ok", "atomic-mix"},
	{"guardedby_bad", "guardedby"},
	{"guardedby_ok", "guardedby"},
	{"noalloc_bad", "noalloc"},
	{"noalloc_ok", "noalloc"},
	{"falseshare_bad", "falseshare"},
	{"falseshare_ok", "falseshare"},
	{"determinism_bad", "determinism"},
	{"determinism_ok", "determinism"},
	{"intwidth_bad", "intwidth"},
	{"intwidth_ok", "intwidth"},
	{"ctxpoll_bad", "ctxpoll"},
	{"ctxpoll_ok", "ctxpoll"},
	{"atomicwrite_bad", "atomicwrite"},
	{"atomicwrite_ok", "atomicwrite"},
	{"locked_bad", "locked"},
	{"locked_ok", "locked"},
	{"gbinterproc_bad", "guardedby"},
	{"gbinterproc_ok", "guardedby"},
}

// renderFindings formats findings with file basenames so the golden files
// are independent of the checkout location.
func renderFindings(findings []Finding) string {
	var b strings.Builder
	for _, f := range findings {
		fmt.Fprintf(&b, "%s:%d:%d: %s: %s\n", filepath.Base(f.File), f.Line, f.Col, f.Analyzer, f.Message)
	}
	return b.String()
}

// TestGolden runs each analyzer over its fixture package and compares the
// findings against testdata/golden/<fixture>.txt. Every *_bad fixture must
// produce at least one finding (the analyzer provably fires) and every *_ok
// fixture must be clean.
func TestGolden(t *testing.T) {
	for _, tc := range goldenCases {
		t.Run(tc.fixture, func(t *testing.T) {
			a := ByName(tc.analyzer)
			if a == nil {
				t.Fatalf("unknown analyzer %q", tc.analyzer)
			}
			mod, err := LoadDir(filepath.Join("testdata", "src", tc.fixture))
			if err != nil {
				t.Fatalf("LoadDir: %v", err)
			}
			got := renderFindings(Run(mod, []*Analyzer{a}))

			if strings.HasSuffix(tc.fixture, "_bad") && got == "" {
				t.Fatalf("%s produced no findings; the %s analyzer never fired", tc.fixture, tc.analyzer)
			}
			if strings.HasSuffix(tc.fixture, "_ok") && got != "" {
				t.Fatalf("%s should be clean, got:\n%s", tc.fixture, got)
			}

			golden := filepath.Join("testdata", "golden", tc.fixture+".txt")
			if *update {
				if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("findings mismatch for %s\n--- got ---\n%s--- want ---\n%s", tc.fixture, got, want)
			}
		})
	}
}

// TestByName covers the analyzer registry.
func TestByName(t *testing.T) {
	for _, a := range All() {
		if ByName(a.Name) != a {
			t.Errorf("ByName(%q) did not return the registered analyzer", a.Name)
		}
	}
	if ByName("nope") != nil {
		t.Error("ByName of an unknown name should be nil")
	}
}
