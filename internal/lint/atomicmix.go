package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicMix flags plain reads/writes of memory that is elsewhere updated
// through sync/atomic. A counter that is atomic in one code path and plain
// in another (the locked/atomic/private counter modes of Section 5.2 are
// exactly such a design) races unless every plain access is proven to be
// mode- or phase-isolated — which the code must assert explicitly with an
// //armlint:allow atomic-mix directive stating the isolation argument.
//
// Tracking is per package and object-based: a target is either a variable
// or field whose address is passed to a sync/atomic function (&x.f), or the
// element space of a slice field (&x.f[i]). For element targets only index
// and range accesses are flagged; reading the slice header (len, append
// targets, passing the slice) is harmless. The typed atomic.Int64 family
// needs no checking — its API admits no plain access.
//
// v2 sees through one more layer: the call-graph AtomicParams summary marks
// module functions that update a pointer parameter through sync/atomic
// (directly or by forwarding it on), so `&x.f` handed to such a helper
// makes x.f a target exactly as if the atomic call were inlined. Wrapping
// the increment in func bump(c *int64) no longer hides the mix.
var AtomicMix = &Analyzer{
	Name: "atomic-mix",
	Doc:  "field updated via sync/atomic must not get plain reads/writes",
	Run:  runAtomicMix,
}

// atomicTarget describes how a variable is atomically accessed.
type atomicTarget struct {
	direct bool // &v itself passed to sync/atomic
	elem   bool // &v[i] passed to sync/atomic (v slice/array)
}

func runAtomicMix(pass *Pass) {
	targets := map[*types.Var]*atomicTarget{}
	var atomicArgs []ast.Expr // &-argument subtrees of atomic calls (exempt)

	record := func(arg ast.Expr) {
		un, ok := arg.(*ast.UnaryExpr)
		if !ok || un.Op != token.AND {
			return
		}
		v, elem := addressedVar(pass.Info, un.X)
		if v == nil {
			return
		}
		t := targets[v]
		if t == nil {
			t = &atomicTarget{}
			targets[v] = t
		}
		t.direct = t.direct || !elem
		t.elem = t.elem || elem
		atomicArgs = append(atomicArgs, un)
	}

	// Pass 1: find addresses handed to sync/atomic — directly, or through a
	// module helper whose AtomicParams summary says the pointee is updated
	// atomically inside.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isAtomicCall(pass.Info, call) {
				for _, arg := range call.Args {
					record(arg)
				}
				return true
			}
			if pass.Graph == nil {
				return true
			}
			fn := calledFunc(pass.Info, call)
			if fn == nil {
				return true
			}
			node := pass.Graph.Nodes[fn]
			if node == nil || len(node.AtomicParams) == 0 {
				return true
			}
			for i, arg := range call.Args {
				if node.AtomicParams[i] {
					record(arg)
				}
			}
			return true
		})
	}
	if len(targets) == 0 {
		return
	}

	inAtomicArg := func(n ast.Node) bool {
		for _, arg := range atomicArgs {
			if n.Pos() >= arg.Pos() && n.End() <= arg.End() {
				return true
			}
		}
		return false
	}

	// Pass 2: flag plain accesses of those targets.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.IndexExpr:
				v := usedVar(pass.Info, n.X)
				t := targets[v]
				if t == nil || !t.elem || inAtomicArg(n) {
					return true
				}
				pass.Reportf(n.Pos(), "elements of %q are updated via sync/atomic elsewhere in this package; plain indexed access races (isolate by mode/phase and assert with //armlint:allow atomic-mix <reason>)", v.Name())
				return false
			case *ast.RangeStmt:
				v := usedVar(pass.Info, n.X)
				if t := targets[v]; t != nil && t.elem && !inAtomicArg(n.X) {
					pass.Reportf(n.X.Pos(), "elements of %q are updated via sync/atomic elsewhere in this package; ranging over them reads racily", v.Name())
				}
				return true
			case *ast.SelectorExpr:
				v := usedVar(pass.Info, n)
				t := targets[v]
				if t == nil || !t.direct || inAtomicArg(n) {
					return true
				}
				pass.Reportf(n.Pos(), "%q is updated via sync/atomic elsewhere in this package; plain access races", v.Name())
				return false
			case *ast.Ident:
				v, ok := pass.Info.Uses[n].(*types.Var)
				if !ok {
					return true
				}
				t := targets[v]
				if t == nil || !t.direct || v.IsField() || inAtomicArg(n) {
					return true
				}
				pass.Reportf(n.Pos(), "%q is updated via sync/atomic elsewhere in this package; plain access races", v.Name())
			}
			return true
		})
	}
}

// isAtomicCall reports whether call invokes a function from sync/atomic.
func isAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == "sync/atomic"
}

// addressedVar resolves the variable whose storage &expr exposes: a plain
// variable or field (elem=false), or an element of a slice/array-typed
// variable or field (elem=true).
func addressedVar(info *types.Info, expr ast.Expr) (v *types.Var, elem bool) {
	switch e := expr.(type) {
	case *ast.IndexExpr:
		return usedVar(info, e.X), true
	default:
		return usedVar(info, expr), false
	}
}

// usedVar resolves an identifier or selector to the variable it names.
func usedVar(info *types.Info, expr ast.Expr) *types.Var {
	switch e := expr.(type) {
	case *ast.Ident:
		v, _ := info.Uses[e].(*types.Var)
		return v
	case *ast.SelectorExpr:
		v, _ := info.Uses[e.Sel].(*types.Var)
		return v
	case *ast.ParenExpr:
		return usedVar(info, e.X)
	}
	return nil
}
