package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GuardedBy enforces //armlint:guardedby mu field annotations: every access
// to the annotated field must happen while the named sibling lock is held.
//
// The check is deliberately conservative, in the spirit of Java's
// @GuardedBy: it walks each function body in statement order tracking which
// lock paths are held. mu.Lock() (and RLock) acquires, mu.Unlock() releases,
// defer mu.Unlock() holds to function end, and lock state acquired inside a
// nested branch/loop does not leak out of it. Lock paths are compared
// textually on the receiver chain with index subscripts dropped, so striped
// locks work: both `c.locks[i].Lock()` and the alias form
// `l := &c.locks[i]; l.Lock()` hold the path "c.locks", and any access to a
// field guarded by `locks` under the same receiver is then legal. Helpers
// that run with the lock already held by their caller (the hash tree's
// split-under-lock pattern) declare it with //armlint:locked <path>, which
// seeds the held set on entry.
//
// v2 makes the walk interprocedural through the call-graph lock summaries:
// a statement-position call to a module function whose top-level statements
// net-acquire or release locks (a lock()/unlock() helper pair) applies
// those effects to the caller's state, with the callee's receiver-relative
// paths substituted against the call-site receiver. `c.lock(); c.data = x;
// c.unlock()` therefore verifies without any annotation on the access.
//
// When the lock field is a stripe array ([]sync.Mutex), only *element*
// accesses of the guarded slice are checked: stripes partition the element
// space, and the slice header itself (len, capacity, the slice value) is
// immutable after construction, so no single stripe could meaningfully
// guard it. A scalar mutex guards every access, header included.
//
// Accesses the walker cannot prove locked are findings; accesses that are
// safe for a reason the analysis cannot see (single-threaded construction,
// mode isolation, a barrier) carry an //armlint:allow guardedby <reason>
// directive. Accesses appearing inside a sync/atomic argument are
// atomic-mix's jurisdiction and are skipped here.
var GuardedBy = &Analyzer{
	Name: "guardedby",
	Doc:  "annotated fields only accessed with their lock held",
	Run:  func(pass *Pass) { runLockWalk(pass, gbFields) },
}

// Locked is the call-site dual of the //armlint:locked annotation. guardedby
// *trusts* the annotation (it seeds the callee's held set); locked *verifies*
// it: every call to an annotated helper must happen at a point where the
// walker can prove the declared lock paths are held, with the helper's
// receiver-relative paths ("q.mu" on a method of q) substituted against the
// call-site receiver. Together the pair closes the contract from both sides —
// the helper may rely on the lock, and no caller can forget it.
var Locked = &Analyzer{
	Name: "locked",
	Doc:  "//armlint:locked helpers are only called with their locks held",
	Run:  func(pass *Pass) { runLockWalk(pass, gbLocked) },
}

// gbMode selects which obligations a lock walk checks: guarded field
// accesses, or //armlint:locked call-site contracts.
type gbMode int

const (
	gbFields gbMode = iota
	gbLocked
)

func runLockWalk(pass *Pass, mode gbMode) {
	if mode == gbFields && len(pass.Ann.Guarded) == 0 {
		return
	}
	if mode == gbLocked && len(pass.Ann.Locked) == 0 {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if fd, ok := n.(*ast.FuncDecl); ok && fd.Body != nil {
				c := &gbChecker{pass: pass, mode: mode, aliases: map[*types.Var]string{}}
				st := lockSet{}
				if fn := funcObj(pass.Info, fd); fn != nil {
					for _, path := range pass.Ann.Locked[fn] {
						st[path] = true
					}
				}
				c.stmts(fd.Body.List, st)
				return false
			}
			return true
		})
	}
}

// lockSet is the set of held lock paths.
type lockSet map[string]bool

func (s lockSet) clone() lockSet {
	c := make(lockSet, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}

type gbChecker struct {
	pass *Pass
	mode gbMode
	// aliases maps a local variable bound to &lockExpr (or &structExpr)
	// onto the rendered path of what it aliases.
	aliases map[*types.Var]string
}

// stmts walks a statement list, threading lock state sequentially.
func (c *gbChecker) stmts(list []ast.Stmt, st lockSet) {
	for _, s := range list {
		c.stmt(s, st)
	}
}

// stmt processes one statement: scans its expressions for guarded accesses
// against the current state, applies lock/unlock effects, and recurses into
// nested statements with cloned state (branch-local acquisitions stay
// branch-local — conservative).
func (c *gbChecker) stmt(s ast.Stmt, st lockSet) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if key, op := c.lockOp(s.X); op != lockNone {
			if op == lockAcquire {
				st[key] = true
			} else {
				delete(st, key)
			}
			return
		}
		c.scan(s.X, st)
		c.applyCallEffects(s.X, st)
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the lock held for the rest of the
		// function; a deferred unlock() helper is the same contract (its
		// releases fire at function end, so no effect is applied here). Any
		// other deferred call is scanned normally.
		if _, op := c.lockOp(s.Call); op != lockNone {
			return
		}
		c.scan(s.Call, st)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			c.scan(rhs, st)
			c.applyCallEffects(rhs, st)
		}
		for _, lhs := range s.Lhs {
			c.scan(lhs, st)
		}
		c.recordAliases(s)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.scan(v, st)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		c.scan(s.X, st)
	case *ast.SendStmt:
		c.scan(s.Chan, st)
		c.scan(s.Value, st)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			c.scan(r, st)
		}
	case *ast.GoStmt:
		// The goroutine body runs concurrently: locks held at spawn time
		// are not held inside it. scan gives FuncLits a fresh state.
		c.scan(s.Call, lockSet{})
	case *ast.BlockStmt:
		c.stmts(s.List, st.clone())
	case *ast.LabeledStmt:
		c.stmt(s.Stmt, st)
	case *ast.IfStmt:
		if s.Init != nil {
			c.stmt(s.Init, st)
		}
		c.scan(s.Cond, st)
		c.stmts(s.Body.List, st.clone())
		if s.Else != nil {
			c.stmt(s.Else, st.clone())
		}
	case *ast.ForStmt:
		if s.Init != nil {
			c.stmt(s.Init, st)
		}
		if s.Cond != nil {
			c.scan(s.Cond, st)
		}
		body := st.clone()
		c.stmts(s.Body.List, body)
		if s.Post != nil {
			c.stmt(s.Post, body)
		}
	case *ast.RangeStmt:
		// Ranging reads elements, which striped locks do guard even though
		// plain header reads are exempt.
		c.checkStripedElem(s.X, st)
		c.scan(s.X, st)
		c.stmts(s.Body.List, st.clone())
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init, st)
		}
		if s.Tag != nil {
			c.scan(s.Tag, st)
		}
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				cs := st.clone()
				for _, e := range cc.List {
					c.scan(e, cs)
				}
				c.stmts(cc.Body, cs)
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init, st)
		}
		c.stmt(s.Assign, st)
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				c.stmts(cc.Body, st.clone())
			}
		}
	case *ast.SelectStmt:
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok {
				cs := st.clone()
				if cc.Comm != nil {
					c.stmt(cc.Comm, cs)
				}
				c.stmts(cc.Body, cs)
			}
		}
	}
}

// scan inspects an expression tree for accesses to guarded fields, checking
// each against the held-lock state. Nested function literals are checked
// with empty state (they may run later, on another goroutine).
func (c *gbChecker) scan(expr ast.Expr, st lockSet) {
	ast.Inspect(expr, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			inner := &gbChecker{pass: c.pass, mode: c.mode, aliases: map[*types.Var]string{}}
			inner.stmts(n.Body.List, lockSet{})
			return false
		case *ast.CallExpr:
			if isAtomicCall(c.pass.Info, n) {
				// Atomic access to a guarded field is atomic-mix territory.
				return false
			}
			if c.mode == gbLocked {
				c.checkLockedCall(n, st)
			}
		case *ast.IndexExpr:
			c.checkStripedElem(n.X, st)
		case *ast.SelectorExpr:
			v, _ := c.pass.Info.Uses[n.Sel].(*types.Var)
			lock := c.pass.Ann.Guarded[v]
			if lock == nil || stripedLock(lock) {
				return true
			}
			c.check(n, v, lock, st)
			return true
		}
		return true
	})
}

// calleeSummary resolves a statement-position call expression to its module
// call-graph node and the rendered call-site receiver ("" for plain
// function calls). Returns nil when the call is not a direct module call.
func (c *gbChecker) calleeSummary(expr ast.Expr) (*FuncNode, string) {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok || c.pass.Graph == nil {
		return nil, ""
	}
	fn := calledFunc(c.pass.Info, call)
	if fn == nil {
		return nil, ""
	}
	node := c.pass.Graph.Nodes[fn]
	if node == nil {
		return nil, ""
	}
	recv := ""
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		recv = c.render(sel.X)
	}
	return node, recv
}

// applyCallEffects transfers a callee's lock summary into the caller's
// state: paths the callee releases are dropped, paths it net-acquires are
// added, each substituted against the call-site receiver. This is what lets
// lock()/unlock() helper pairs participate in the guarded-field proof.
func (c *gbChecker) applyCallEffects(expr ast.Expr, st lockSet) {
	node, recv := c.calleeSummary(expr)
	if node == nil {
		return
	}
	for _, p := range node.Releases {
		delete(st, node.Substitute(p, recv))
	}
	for _, p := range node.NetAcquires {
		st[node.Substitute(p, recv)] = true
	}
}

// checkLockedCall verifies one call against the callee's //armlint:locked
// contract: every declared path, relativized to the callee's receiver and
// substituted with the call-site receiver, must be held here.
func (c *gbChecker) checkLockedCall(call *ast.CallExpr, st lockSet) {
	fn := calledFunc(c.pass.Info, call)
	if fn == nil {
		return
	}
	paths := c.pass.Ann.Locked[fn]
	if len(paths) == 0 || c.pass.Graph == nil {
		return
	}
	node := c.pass.Graph.Nodes[fn]
	if node == nil {
		return
	}
	recv := ""
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		recv = c.render(sel.X)
	}
	for _, p := range paths {
		need := node.Substitute(node.RelativizeAnnotated(p), recv)
		if !st[need] {
			c.pass.Reportf(call.Pos(), "call to %s requires holding %q on entry (declared //armlint:locked %s; if safe, assert with //armlint:allow locked <reason>)", fn.Name(), need, p)
		}
	}
}

// check verifies one access to guarded field v through selector sel.
func (c *gbChecker) check(sel *ast.SelectorExpr, v, lock *types.Var, st lockSet) {
	need := c.render(sel.X) + "." + lock.Name()
	if !st[need] {
		c.pass.Reportf(sel.Pos(), "access to %q requires holding %q (no %s.Lock() dominates this point; if safe, assert with //armlint:allow guardedby <reason>)", v.Name(), need, need)
	}
}

// checkStripedElem flags an element access (index or range) of a field
// guarded by a stripe-lock array when no stripe of that array is held.
func (c *gbChecker) checkStripedElem(x ast.Expr, st lockSet) {
	sel, ok := ast.Unparen(x).(*ast.SelectorExpr)
	if !ok {
		return
	}
	v, _ := c.pass.Info.Uses[sel.Sel].(*types.Var)
	lock := c.pass.Ann.Guarded[v]
	if lock == nil || !stripedLock(lock) {
		return
	}
	c.check(sel, v, lock, st)
}

// stripedLock reports whether a lock field is a slice/array of sync
// mutexes rather than a single mutex.
func stripedLock(lock *types.Var) bool {
	switch u := lock.Type().Underlying().(type) {
	case *types.Slice:
		return isSyncMutex(u.Elem())
	case *types.Array:
		return isSyncMutex(u.Elem())
	}
	return false
}

// isSyncMutex reports whether t is sync.Mutex or sync.RWMutex.
func isSyncMutex(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

type lockOpKind int

const (
	lockNone lockOpKind = iota
	lockAcquire
	lockRelease
)

// lockOp classifies an expression as mu.Lock()/mu.Unlock() (or RLock
// variants) on a sync mutex and returns the held-path key.
func (c *gbChecker) lockOp(expr ast.Expr) (key string, op lockOpKind) {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return "", lockNone
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", lockNone
	}
	fn, ok := c.pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", lockNone
	}
	switch fn.Name() {
	case "Lock", "RLock":
		op = lockAcquire
	case "Unlock", "RUnlock":
		op = lockRelease
	default:
		return "", lockNone
	}
	return c.render(sel.X), op
}

// recordAliases notes `l := &path` bindings so a later l.Lock() resolves to
// path. Index subscripts are dropped by render, which is what makes the
// striped-lock alias `l := &c.locks[i]` hold "c.locks".
func (c *gbChecker) recordAliases(s *ast.AssignStmt) {
	if len(s.Lhs) != len(s.Rhs) {
		return
	}
	for i, lhs := range s.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			continue
		}
		un, ok := s.Rhs[i].(*ast.UnaryExpr)
		if !ok || un.Op != token.AND {
			continue
		}
		obj, ok := c.pass.Info.Defs[id].(*types.Var)
		if !ok {
			if obj, ok = c.pass.Info.Uses[id].(*types.Var); !ok {
				continue
			}
		}
		c.aliases[obj] = c.render(un.X)
	}
}

// render produces the comparison path of a receiver chain: identifiers by
// object (through aliases), selectors by field name, index subscripts
// dropped. Unrenderable expressions get a unique never-matching key.
func (c *gbChecker) render(expr ast.Expr) string {
	switch e := expr.(type) {
	case *ast.Ident:
		if v, ok := c.pass.Info.Uses[e].(*types.Var); ok {
			if path, ok := c.aliases[v]; ok {
				return path
			}
		}
		return e.Name
	case *ast.SelectorExpr:
		return c.render(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return c.render(e.X)
	case *ast.ParenExpr:
		return c.render(e.X)
	case *ast.StarExpr:
		return c.render(e.X)
	}
	return "?unrenderable?"
}
