package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one parsed and type-checked (non-test) package of the module.
type Package struct {
	Dir   string // absolute directory
	Path  string // import path
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Module is a fully loaded module: every non-test package parsed,
// type-checked in dependency order against one shared FileSet, plus the
// module-wide annotation table.
type Module struct {
	Root     string // absolute module root (directory of go.mod)
	Path     string // module path from go.mod
	Fset     *token.FileSet
	Packages []*Package // dependency order (imports before importers)
	Sizes    types.Sizes
	Ann      *Annotations
	// Graph is the module-wide call graph + summary substrate, built once
	// after annotation collection and shared by every analyzer pass.
	Graph *Graph
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("armlint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("armlint: no module directive in %s", gomod)
}

// skipDir reports whether a directory subtree is excluded from analysis:
// VCS/tool metadata, vendored code, and testdata fixtures (which contain
// intentional violations for the golden tests).
func skipDir(name string) bool {
	return name == "testdata" || name == "vendor" ||
		strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")
}

// sourceFiles lists the non-test .go files of dir in sorted order. Files
// excluded by build constraints for the host platform (//go:build tags or
// _GOOS/_GOARCH name suffixes) are skipped, exactly as `go build` would —
// otherwise platform-variant pairs like seg's mmap_unix.go/mmap_other.go
// type-check together and redeclare each other's symbols.
func sourceFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		if ok, err := build.Default.MatchFile(dir, name); err != nil || !ok {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	sort.Strings(files)
	return files, nil
}

// stdSizes returns the gc layout rules for the host architecture (falling
// back to amd64 for architectures types does not know).
func stdSizes() types.Sizes {
	if s := types.SizesFor("gc", runtime.GOARCH); s != nil {
		return s
	}
	return types.SizesFor("gc", "amd64")
}

// moduleImporter serves already-checked module packages from a cache and
// delegates everything else (the standard library) to the stdlib source
// importer, so the whole module shares one type-checked object world.
type moduleImporter struct {
	modpath  string
	pkgs     map[string]*types.Package
	fallback types.ImporterFrom
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	return m.ImportFrom(path, "", 0)
}

func (m *moduleImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if p, ok := m.pkgs[path]; ok {
		return p, nil
	}
	if path == m.modpath || strings.HasPrefix(path, m.modpath+"/") {
		return nil, fmt.Errorf("module package %q not loaded yet (load-order bug or import cycle)", path)
	}
	return m.fallback.ImportFrom(path, dir, mode)
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
}

// parsedPkg is the pre-typecheck form of one package directory.
type parsedPkg struct {
	dir     string
	path    string
	files   []*ast.File
	imports []string // module-internal imports only
}

// LoadModule discovers, parses and type-checks every non-test package under
// root (skipping testdata/vendor/hidden trees) and collects the module-wide
// armlint annotations.
func LoadModule(root string) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modpath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()

	// Discover and parse.
	byPath := map[string]*parsedPkg{}
	var order []string
	walk := func(dir string) error {
		files, err := sourceFiles(dir)
		if err != nil || len(files) == 0 {
			return err
		}
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return err
		}
		path := modpath
		if rel != "." {
			path = modpath + "/" + filepath.ToSlash(rel)
		}
		pp := &parsedPkg{dir: dir, path: path}
		for _, f := range files {
			af, err := parser.ParseFile(fset, f, nil, parser.ParseComments)
			if err != nil {
				return fmt.Errorf("armlint: %w", err)
			}
			pp.files = append(pp.files, af)
			for _, imp := range af.Imports {
				ip := strings.Trim(imp.Path.Value, `"`)
				if ip == modpath || strings.HasPrefix(ip, modpath+"/") {
					pp.imports = append(pp.imports, ip)
				}
			}
		}
		byPath[path] = pp
		order = append(order, path)
		return nil
	}
	err = filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		if p != root && skipDir(d.Name()) {
			return filepath.SkipDir
		}
		return walk(p)
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(order)

	// Topological order: dependencies before dependents.
	var topo []string
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(path string) error
	visit = func(path string) error {
		switch state[path] {
		case 1:
			return fmt.Errorf("armlint: import cycle through %s", path)
		case 2:
			return nil
		}
		state[path] = 1
		pp := byPath[path]
		deps := append([]string(nil), pp.imports...)
		sort.Strings(deps)
		for _, dep := range deps {
			if byPath[dep] == nil {
				return fmt.Errorf("armlint: %s imports %s which has no source under %s", path, dep, root)
			}
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[path] = 2
		topo = append(topo, path)
		return nil
	}
	for _, path := range order {
		if err := visit(path); err != nil {
			return nil, err
		}
	}

	// Type-check in that order with a shared importer and object world.
	mod := &Module{
		Root:  root,
		Path:  modpath,
		Fset:  fset,
		Sizes: stdSizes(),
		Ann:   newAnnotations(),
	}
	imp := &moduleImporter{
		modpath:  modpath,
		pkgs:     map[string]*types.Package{},
		fallback: importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
	}
	for _, path := range topo {
		pp := byPath[path]
		pkg, err := checkPackage(fset, path, pp.files, imp, mod.Sizes)
		if err != nil {
			return nil, err
		}
		imp.pkgs[path] = pkg.Types
		pkg.Dir = pp.dir
		mod.Packages = append(mod.Packages, pkg)
		mod.Ann.collect(fset, pkg)
	}
	mod.Graph = buildGraph(mod)
	return mod, nil
}

// LoadDir parses and type-checks a single directory as a standalone package
// (used by the analyzer tests to load testdata fixtures, which may import
// only the standard library).
func LoadDir(dir string) (*Module, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	files, err := sourceFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("armlint: no Go files in %s", dir)
	}
	fset := token.NewFileSet()
	var asts []*ast.File
	for _, f := range files {
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		asts = append(asts, af)
	}
	mod := &Module{
		Root:  dir,
		Path:  filepath.Base(dir),
		Fset:  fset,
		Sizes: stdSizes(),
		Ann:   newAnnotations(),
	}
	imp := &moduleImporter{
		modpath:  mod.Path,
		pkgs:     map[string]*types.Package{},
		fallback: importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
	}
	pkg, err := checkPackage(fset, mod.Path, asts, imp, mod.Sizes)
	if err != nil {
		return nil, err
	}
	pkg.Dir = dir
	mod.Packages = []*Package{pkg}
	mod.Ann.collect(fset, pkg)
	mod.Graph = buildGraph(mod)
	return mod, nil
}

// checkPackage type-checks one package's files.
func checkPackage(fset *token.FileSet, path string, files []*ast.File, imp types.Importer, sizes types.Sizes) (*Package, error) {
	info := newInfo()
	var errs []error
	conf := types.Config{
		Importer: imp,
		Sizes:    sizes,
		Error:    func(err error) { errs = append(errs, err) },
	}
	tpkg, err := conf.Check(path, fset, files, info)
	if len(errs) > 0 {
		return nil, fmt.Errorf("armlint: type-checking %s: %w", path, errs[0])
	}
	if err != nil {
		return nil, fmt.Errorf("armlint: type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Files: files, Types: tpkg, Info: info}, nil
}
