package lint

import (
	"go/ast"
)

// CtxPoll closes the gap where a new engine silently loses RunCtx parity:
// cancellation plumbing exists only if every long loop actually reaches a
// poll. The analyzer works on the shared call graph:
//
//   - Roots are the //armlint:cancellable entry points (MineCtx,
//     MineSegmentedCtx, the vbit DFS). Everything reachable from a root over
//     Refs edges — calls, method values, go/defer, escaping function
//     values — inherits the obligation; function literals are part of their
//     enclosing declaration.
//   - A loop owes a poll when its body calls an iteration source: a
//     function annotated //armlint:itersrc (chunk claimers like
//     sched.Cursor.Next, transaction scanners like db.Database.Items,
//     segment loaders like seg.Reader.LoadSegment) or one that transitively
//     calls such a function.
//   - The obligation is met when the loop condition or body reaches a
//     cancellation check: a direct ctx.Err()/ctx.Done()/ctx.Deadline(), or
//     a call to a function that Polls (directly, transitively, or by
//     //armlint:polls annotation — robust.Canceled, seg.Pipeline.take).
//
// An inner loop's poll satisfies every enclosing loop (the check is subtree
// containment), and `for ctx.Err() == nil { ... }` conditions count. Loops
// whose per-iteration work is bounded by construction (one chunk, one
// segment already gated at the claim) assert it with
// //armlint:allow ctxpoll <reason>.
var CtxPoll = &Analyzer{
	Name: "ctxpoll",
	Doc:  "scan loops reachable from cancellable roots reach a cancellation check",
	Run:  runCtxPoll,
}

func runCtxPoll(pass *Pass) {
	g := pass.Graph
	if g == nil || len(g.CancellableReach) == 0 {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				return true
			}
			fn := funcObj(pass.Info, fd)
			if fn == nil || !g.CancellableReach[fn] {
				return true
			}
			checkCtxPoll(pass, fd)
			return false
		})
	}
}

func checkCtxPoll(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		var cond ast.Expr
		var body *ast.BlockStmt
		switch loop := n.(type) {
		case *ast.ForStmt:
			cond, body = loop.Cond, loop.Body
		case *ast.RangeStmt:
			body = loop.Body
		default:
			return true
		}
		src := iterSource(pass, body)
		if src == "" {
			return true
		}
		if (cond != nil && pollsIn(pass, cond)) || pollsIn(pass, body) {
			return true
		}
		pass.Reportf(n.Pos(), "loop calls %s (an iteration source) without reaching a cancellation check; poll ctx.Err() in the loop, call through an //armlint:polls helper, or assert boundedness with //armlint:allow ctxpoll <reason>", src)
		return true
	})
}

// iterSource returns the name of the first iteration-source function the
// loop body calls, or "" when the loop owes no poll.
func iterSource(pass *Pass, body ast.Node) string {
	name := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calledFunc(pass.Info, call)
		if fn == nil {
			return true
		}
		if node := pass.Graph.Nodes[fn]; node != nil && node.IterSrc {
			name = fn.Name()
			return false
		}
		return true
	})
	return name
}

// pollsIn reports whether the subtree contains a cancellation check: a
// direct context poll or a call to a Polls function.
func pollsIn(pass *Pass, node ast.Node) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isCtxPollCall(pass.Info, call) {
			found = true
			return false
		}
		if fn := calledFunc(pass.Info, call); fn != nil {
			if n := pass.Graph.Nodes[fn]; n != nil && n.Polls {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
