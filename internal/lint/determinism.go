package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Determinism guards the packages whose outputs TestModelTimePinned freezes
// bit-for-bit (annotated //armlint:pinned in their package doc). Three
// nondeterminism sources are banned there:
//
//   - wall-clock reads: time.Now / time.Since / time.Sleep (and the timer
//     constructors). Pinned packages model cost in deterministic work
//     units; using time.Duration as a data type remains fine.
//   - math/rand (v1 or v2) imports: any randomness in a pinned package
//     would leak into candidate order or work totals.
//   - map-iteration order feeding an ordered accumulation: a `for range m`
//     over a map whose body appends to a slice declared outside the loop
//     produces a permutation that varies run to run. Iterate sorted keys
//     instead, or — if the accumulation is provably order-insensitive —
//     annotate //armlint:allow determinism <reason>.
//   - (v2, via the call graph) using the *result* of an unpinned module
//     function that transitively reads the wall clock: the clock value
//     would flow into pinned state. Statement-position calls — fire-and-
//     forget observability spans whose timing never feeds back — are
//     exempt, as are callees in pinned packages (any clock read there is
//     already flagged at its source).
//
// Unpinned packages (generators, the experiment harness, examples) are
// exempt: their job is wall time and randomness.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "pinned-model packages stay clock-, rand- and map-order-free",
	Run:  runDeterminism,
}

// bannedTimeFuncs are the time functions that read the wall clock or create
// timers; pure data constructors (time.Duration arithmetic) are allowed.
var bannedTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

func runDeterminism(pass *Pass) {
	if !pass.Ann.Pinned[pass.Pkg.Path()] {
		return
	}
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(), "pinned-model package imports %s: randomness would unpin the deterministic work model", path)
			}
		}
		// Statement-position calls: results discarded, so a transitive clock
		// read in the callee cannot flow into pinned state.
		bareCalls := map[*ast.CallExpr]bool{}
		ast.Inspect(file, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
					bareCalls[call] = true
				}
			case *ast.GoStmt:
				bareCalls[s.Call] = true
			case *ast.DeferStmt:
				bareCalls[s.Call] = true
			}
			return true
		})
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn := calledFunc(pass.Info, n)
				if fn == nil {
					return true
				}
				if fn.Pkg() != nil && fn.Pkg().Path() == "time" && bannedTimeFuncs[fn.Name()] {
					pass.Reportf(n.Pos(), "pinned-model package calls time.%s: wall-clock reads are nondeterministic (move timing to the caller)", fn.Name())
					return true
				}
				if pass.Graph == nil || bareCalls[n] || fn.Pkg() == pass.Pkg {
					return true
				}
				node := pass.Graph.Nodes[fn]
				if node != nil && node.Clock && !pass.Ann.Pinned[node.Pkg.Path] {
					pass.Reportf(n.Pos(), "pinned-model package uses the result of %s, which transitively reads the wall clock; compute the value deterministically or move the call to statement position", fn.Name())
				}
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			}
			return true
		})
	}
}

// checkMapRange flags a range over a map whose body appends to a slice
// declared outside the loop — map order escaping into an ordered result.
func checkMapRange(pass *Pass, rs *ast.RangeStmt) {
	t := pass.Info.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, ok := deref(t).Underlying().(*types.Map); !ok {
		return
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok {
			return true
		}
		if b, ok := pass.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
			return true
		}
		if len(call.Args) == 0 {
			return true
		}
		switch dst := ast.Unparen(call.Args[0]).(type) {
		case *ast.Ident:
			v, ok := pass.Info.Uses[dst].(*types.Var)
			if !ok {
				return true
			}
			// Appending to a slice declared inside the loop body is a
			// per-iteration scratch, not an ordered accumulation.
			if v.Pos() >= rs.Pos() && v.Pos() <= rs.End() {
				return true
			}
		case *ast.SelectorExpr, *ast.IndexExpr:
			// Fields and elements outlive the loop by construction.
		default:
			return true
		}
		pass.Reportf(call.Pos(), "append inside a map range leaks nondeterministic iteration order into an ordered accumulation; iterate sorted keys instead")
		return true
	})
}

// calledFunc resolves the *types.Func a call invokes, if any.
func calledFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}
