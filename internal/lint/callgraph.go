package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// This file is the dataflow substrate the v2 analyzers share: a module-wide
// call graph with per-function summaries, built once per LoadModule/LoadDir
// and handed to every Pass. Two edge kinds serve two different questions:
//
//   - Refs: any reference to a module function from this function's body —
//     direct calls, method values, go/defer, function values passed around.
//     Used for conservative reachability (ctxpoll's "reachable from a
//     cancellable root" set): a function whose value escapes may run, so it
//     must be assumed to.
//   - Calls: resolved direct CallExprs only. Used for the summary fixpoints
//     (Polls, IterSrc, Clock, WideRet, AtomicParams), where the question is
//     "does executing this call do X", which a mere reference does not.
//
// Function literals are merged into their enclosing declaration's node: a
// closure dispatched by sched.Pool.Run is, for every invariant armlint
// checks, part of the function that wrote it.
type Graph struct {
	// Nodes maps every module function (and method) with a body to its node.
	Nodes map[*types.Func]*FuncNode
	// CancellableReach marks functions reachable (over Refs edges) from an
	// //armlint:cancellable root, roots included — the set inside which
	// ctxpoll obligations apply.
	CancellableReach map[*types.Func]bool
}

// FuncNode is one module function in the call graph.
type FuncNode struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	// RecvName is the receiver identifier ("q" in func (q *Queue) ...), ""
	// for plain functions — the substitution key for receiver-relative lock
	// paths.
	RecvName string

	Refs  []*FuncNode // any reference to a module function (reachability)
	Calls []*FuncNode // resolved direct calls (summaries)

	// Polls: executing this function reaches a cancellation check — a direct
	// ctx.Err/Done/Deadline call, an //armlint:polls annotation, or a callee
	// that Polls. A loop that calls a Polls function observes cancellation.
	Polls bool
	// IterSrc: this function yields per-transaction / per-chunk / per-segment
	// work — annotated //armlint:itersrc or calling such a function. A loop
	// that calls an IterSrc function is a scan loop and owes a poll.
	IterSrc bool
	// Clock: this function (transitively) reads the wall clock via the
	// banned time functions.
	Clock bool
	// WideRet: this function returns a wide int64 (annotated //armlint:wide,
	// or returning the result of a WideRet function).
	WideRet bool

	// NetAcquires / Releases summarize the lock effects of the top-level
	// statement list: lock paths held after the call returns, and lock paths
	// the call drops. Receiver-relative components use recvMarker.
	NetAcquires []string
	Releases    []string

	// AtomicParams marks parameter indices whose pointee the function updates
	// through sync/atomic (directly or by forwarding to such a function).
	AtomicParams map[int]bool

	// wideRetCalls are the module functions whose results this function
	// returns directly — the propagation edges of the WideRet fixpoint.
	wideRetCalls []*FuncNode
	// atomicFwd records "this function forwards its param i as callee's
	// param j" bindings for the AtomicParams fixpoint.
	atomicFwd []atomicBinding
}

type atomicBinding struct {
	callerIdx int
	callee    *FuncNode
	calleeIdx int
}

// recvMarker substitutes for the receiver name in receiver-relative lock
// paths ("\x00.mu" for a method declared on receiver q with body q.mu.Lock()).
const recvMarker = "\x00recv"

// buildGraph constructs the call graph and runs the summary fixpoints. It
// must run after annotation collection (the seeds come from Ann).
func buildGraph(mod *Module) *Graph {
	g := &Graph{
		Nodes:            map[*types.Func]*FuncNode{},
		CancellableReach: map[*types.Func]bool{},
	}
	// Nodes: every FuncDecl with a body.
	for _, pkg := range mod.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn := funcObj(pkg.Info, fd)
				if fn == nil {
					continue
				}
				n := &FuncNode{Fn: fn, Decl: fd, Pkg: pkg}
				if fd.Recv != nil && len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
					n.RecvName = fd.Recv.List[0].Names[0].Name
				}
				g.Nodes[fn] = n
			}
		}
	}
	// Edges and local facts.
	for _, n := range g.Nodes {
		g.walkNode(mod, n)
		n.summarizeLocks()
	}
	// Fixpoints.
	g.fixpoint()
	// Reachability from cancellable roots over Refs.
	var frontier []*FuncNode
	for fn, node := range g.Nodes {
		if mod.Ann.Cancellable[fn] {
			g.CancellableReach[fn] = true
			frontier = append(frontier, node)
		}
	}
	for len(frontier) > 0 {
		n := frontier[0]
		frontier = frontier[1:]
		for _, ref := range n.Refs {
			if !g.CancellableReach[ref.Fn] {
				g.CancellableReach[ref.Fn] = true
				frontier = append(frontier, ref)
			}
		}
	}
	return g
}

// walkNode records Refs/Calls edges and the node-local summary seeds.
func (g *Graph) walkNode(mod *Module, n *FuncNode) {
	info := n.Pkg.Info
	refSeen := map[*FuncNode]bool{}
	callSeen := map[*FuncNode]bool{}
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		switch e := node.(type) {
		case *ast.Ident:
			if fn, ok := info.Uses[e].(*types.Func); ok {
				if target := g.Nodes[fn]; target != nil && !refSeen[target] {
					refSeen[target] = true
					n.Refs = append(n.Refs, target)
				}
			}
		case *ast.CallExpr:
			if isCtxPollCall(info, e) {
				n.Polls = true
			}
			fn := calledFunc(info, e)
			if fn == nil {
				return true
			}
			if fn.Pkg() != nil && fn.Pkg().Path() == "time" && bannedTimeFuncs[fn.Name()] {
				n.Clock = true
			}
			target := g.Nodes[fn]
			if target == nil {
				return true
			}
			if !callSeen[target] {
				callSeen[target] = true
				n.Calls = append(n.Calls, target)
			}
			// AtomicParams seeds and forwarding edges.
			for i, arg := range e.Args {
				id, ok := ast.Unparen(arg).(*ast.Ident)
				if !ok {
					continue
				}
				pv, ok := info.Uses[id].(*types.Var)
				if !ok {
					continue
				}
				if pi := paramIndex(n.Fn, pv); pi >= 0 {
					n.atomicFwd = append(n.atomicFwd, atomicBinding{pi, target, i})
				}
			}
		case *ast.ReturnStmt:
			for _, r := range e.Results {
				if call, ok := ast.Unparen(r).(*ast.CallExpr); ok {
					if fn := calledFunc(info, call); fn != nil {
						if target := g.Nodes[fn]; target != nil {
							n.wideRetCalls = append(n.wideRetCalls, target)
						}
					}
				}
			}
		}
		return true
	})
	// Atomic-param seeds: &-free param pointers handed straight to
	// sync/atomic (func bump(c *int64) { atomic.AddInt64(c, 1) }).
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok || !isAtomicCall(info, call) {
			return true
		}
		for _, arg := range call.Args {
			id, ok := ast.Unparen(arg).(*ast.Ident)
			if !ok {
				continue
			}
			pv, ok := info.Uses[id].(*types.Var)
			if !ok {
				continue
			}
			if pi := paramIndex(n.Fn, pv); pi >= 0 {
				if n.AtomicParams == nil {
					n.AtomicParams = map[int]bool{}
				}
				n.AtomicParams[pi] = true
			}
		}
		return true
	})
	ann := mod.Ann
	if ann.Polls[n.Fn] {
		n.Polls = true
	}
	if ann.IterSrc[n.Fn] {
		n.IterSrc = true
	}
	if ann.Wide[n.Fn] {
		n.WideRet = true
	}
}

// summarizeLocks walks the top-level statement list recording lock effects
// visible to a caller: paths acquired and still held at fall-through
// (NetAcquires) and paths released anywhere (Releases). Deeper nesting is
// deliberately ignored — a conditionally-taken lock is no summary at all.
func (n *FuncNode) summarizeLocks() {
	info := n.Pkg.Info
	held := map[string]bool{}
	var order []string
	released := map[string]bool{}
	record := func(call *ast.CallExpr) {
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return
		}
		fn, ok := info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
			return
		}
		path := n.relativize(simpleRender(sel.X))
		switch fn.Name() {
		case "Lock", "RLock":
			if !held[path] {
				held[path] = true
				order = append(order, path)
			}
		case "Unlock", "RUnlock":
			delete(held, path)
			released[path] = true
		}
	}
	for _, s := range n.Decl.Body.List {
		switch s := s.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				record(call)
			}
		case *ast.DeferStmt:
			record(s.Call)
		}
	}
	for _, p := range order {
		if held[p] {
			n.NetAcquires = append(n.NetAcquires, p)
		}
	}
	for p := range released {
		n.Releases = append(n.Releases, p)
	}
}

// relativize rewrites a rendered lock path so the receiver component becomes
// recvMarker, making the summary substitutable at any call site.
func (n *FuncNode) relativize(path string) string {
	if n.RecvName == "" {
		return path
	}
	if path == n.RecvName {
		return recvMarker
	}
	if strings.HasPrefix(path, n.RecvName+".") {
		return recvMarker + path[len(n.RecvName):]
	}
	return path
}

// Substitute resolves a receiver-relative path against a call site's
// rendered receiver ("" for plain function calls).
func (n *FuncNode) Substitute(path, recv string) string {
	if !strings.HasPrefix(path, recvMarker) {
		return path
	}
	return recv + path[len(recvMarker):]
}

// RelativizeAnnotated converts an //armlint:locked annotation path (written
// against the declared receiver name, e.g. "q.mu") to substitutable form.
func (n *FuncNode) RelativizeAnnotated(path string) string {
	return n.relativize(path)
}

// fixpoint iterates the transitive summaries to a fixed point. Every
// property only ever flips false→true, so the iteration terminates in at
// most |Nodes| rounds; recursion (including mutual) is handled for free.
func (g *Graph) fixpoint() {
	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes {
			for _, c := range n.Calls {
				if c.Polls && !n.Polls {
					n.Polls = true
					changed = true
				}
				if c.IterSrc && !n.IterSrc {
					n.IterSrc = true
					changed = true
				}
				if c.Clock && !n.Clock {
					n.Clock = true
					changed = true
				}
			}
			for _, c := range n.wideRetCalls {
				if c.WideRet && !n.WideRet {
					n.WideRet = true
					changed = true
				}
			}
			for _, b := range n.atomicFwd {
				if b.callee.AtomicParams[b.calleeIdx] && !n.AtomicParams[b.callerIdx] {
					if n.AtomicParams == nil {
						n.AtomicParams = map[int]bool{}
					}
					n.AtomicParams[b.callerIdx] = true
					changed = true
				}
			}
		}
	}
}

// paramIndex returns v's index among fn's parameters, or -1.
func paramIndex(fn *types.Func, v *types.Var) int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return -1
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i) == v {
			return i
		}
	}
	return -1
}

// isCtxPollCall reports whether call is a direct cancellation poll —
// ctx.Err(), ctx.Done() or ctx.Deadline() on a context.Context.
func isCtxPollCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return false
	}
	switch fn.Name() {
	case "Err", "Done", "Deadline":
		return true
	}
	return false
}

// simpleRender is the alias-free cousin of gbChecker.render, used where no
// local alias table exists (graph summaries): identifiers by name, selectors
// by field name, index subscripts dropped.
func simpleRender(expr ast.Expr) string {
	switch e := expr.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return simpleRender(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return simpleRender(e.X)
	case *ast.ParenExpr:
		return simpleRender(e.X)
	case *ast.StarExpr:
		return simpleRender(e.X)
	}
	return "?unrenderable?"
}
