package lint

import "testing"

// TestRepoIsArmlintClean loads the whole module and asserts that the full
// analyzer suite reports zero findings — the repo must ship armlint-clean,
// with every legitimate exception carrying an //armlint:allow and a reason.
func TestRepoIsArmlintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	mod, err := LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	findings := Run(mod, All())
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Fatalf("repo has %d armlint findings; fix them or add //armlint:allow with a reason", len(findings))
	}
}
