package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// IntWidth tracks "wide" int64 values — segmented-store global addresses,
// arena offsets, transaction counts: anything returned by a function
// annotated //armlint:wide (or transitively returning such a result), or
// read from a struct field annotated the same way — and flags explicit
// narrowing conversions of them into int32/int contexts.
//
// Go has no implicit numeric conversions, so every narrowing is an explicit
// T(x): flagging tainted conversion operands is complete, not just
// heuristic. A conversion is narrowing when the destination is an integer
// type smaller than 8 bytes, or a platform-sized int/uint/uintptr (whose
// width the code must not rely on — the historical bugs were exactly int
// arithmetic that silently narrowed on a 32-bit build model).
//
// Taint is per-function and flow-insensitive: locals assigned from a wide
// source (directly or through arithmetic on tainted values) are tainted;
// conversions to 8-byte integer types pass taint through, conversions to
// anything narrower launder it (and are themselves the checked sites).
//
// Two escapes exist, both explicit:
//
//   - a bounds guard: an earlier relational comparison (<, <=, >, >=)
//     naming the same plain variable that is being converted — the shape of
//     `if n > math.MaxInt32 { ... }; m := int32(n)`.
//   - //armlint:narrowok <reason> on or above the conversion, documenting
//     why the range is bounded (segment-local offsets bounded by SegItems,
//     for example). Compound operands (arithmetic expressions) always need
//     narrowok — a guard on one operand proves nothing about the product,
//     which is precisely how the PR 4 splitRange overflow slipped through.
//
// The PR 4 reduce fan-out truncation (int(p*n/procs) at MaxInt32) and the
// PR 5 arena-offset overflow (int32(len(arena)) unguarded) are the golden
// bad fixtures; both shapes are rejected.
var IntWidth = &Analyzer{
	Name: "intwidth",
	Doc:  "wide int64 values are not narrowed without a guard or narrowok",
	Run:  runIntWidth,
}

func runIntWidth(pass *Pass) {
	if pass.Graph == nil {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if fd, ok := n.(*ast.FuncDecl); ok && fd.Body != nil {
				checkIntWidth(pass, fd)
				return false
			}
			return true
		})
	}
}

// iwChecker carries one function's taint state.
type iwChecker struct {
	pass    *Pass
	tainted map[*types.Var]bool
}

func checkIntWidth(pass *Pass, fd *ast.FuncDecl) {
	c := &iwChecker{pass: pass, tainted: map[*types.Var]bool{}}

	// Flow-insensitive taint fixpoint over assignments: a var assigned from
	// a wide expression anywhere in the body is wide everywhere. Monotone,
	// so iteration terminates.
	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				if len(s.Lhs) != len(s.Rhs) {
					return true
				}
				for i, rhs := range s.Rhs {
					if !c.wide(rhs) {
						continue
					}
					if v := assignedVar(pass.Info, s.Lhs[i]); v != nil && !c.tainted[v] {
						c.tainted[v] = true
						changed = true
					}
				}
			case *ast.ValueSpec:
				for i, name := range s.Names {
					if i >= len(s.Values) || !c.wide(s.Values[i]) {
						continue
					}
					if v, ok := pass.Info.Defs[name].(*types.Var); ok && !c.tainted[v] {
						c.tainted[v] = true
						changed = true
					}
				}
			}
			return true
		})
	}

	// Guard positions: relational comparisons naming a tainted plain var.
	guards := map[*types.Var][]token.Pos{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ:
		default:
			return true
		}
		for _, side := range []ast.Expr{be.X, be.Y} {
			if id, ok := ast.Unparen(side).(*ast.Ident); ok {
				if v, ok := pass.Info.Uses[id].(*types.Var); ok && c.tainted[v] {
					guards[v] = append(guards[v], be.Pos())
				}
			}
		}
		return true
	})

	// Sites: explicit conversions of wide operands to narrow integer types.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		tv, ok := pass.Info.Types[call.Fun]
		if !ok || !tv.IsType() || !narrowIntType(tv.Type) {
			return true
		}
		arg := call.Args[0]
		if !c.wide(arg) {
			return true
		}
		// Guarded plain variable: an earlier relational comparison on the
		// same var counts as the bounds check.
		if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
			if v, ok := pass.Info.Uses[id].(*types.Var); ok {
				for _, gp := range guards[v] {
					if gp < call.Pos() {
						return true
					}
				}
			}
		}
		pass.Reportf(call.Pos(), "wide int64 value narrowed to %s without a bounds guard (compare the value against the target range first, or annotate //armlint:narrowok <reason>)", types.TypeString(tv.Type, types.RelativeTo(pass.Pkg)))
		return true
	})
}

// wide reports whether expr carries a wide value: a call to a WideRet
// function, a read of a wide field, a tainted variable, or arithmetic over
// any of those. Conversions to sub-8-byte integers launder the taint (the
// conversion itself is the checked site); conversions to 8-byte integers
// pass it through.
func (c *iwChecker) wide(expr ast.Expr) bool {
	found := false
	var walk func(e ast.Expr)
	walk = func(e ast.Expr) {
		if found || e == nil {
			return
		}
		switch e := e.(type) {
		case *ast.ParenExpr:
			walk(e.X)
		case *ast.UnaryExpr:
			walk(e.X)
		case *ast.BinaryExpr:
			walk(e.X)
			walk(e.Y)
		case *ast.CallExpr:
			if tv, ok := c.pass.Info.Types[e.Fun]; ok && tv.IsType() {
				// A conversion: taint survives only a full-width integer.
				if len(e.Args) == 1 && is8ByteInt(tv.Type) {
					walk(e.Args[0])
				}
				return
			}
			if fn := calledFunc(c.pass.Info, e); fn != nil {
				if node := c.pass.Graph.Nodes[fn]; node != nil && node.WideRet {
					found = true
				}
			}
		case *ast.SelectorExpr:
			if v, ok := c.pass.Info.Uses[e.Sel].(*types.Var); ok {
				if c.pass.Ann.WideField[v] || c.tainted[v] {
					found = true
				}
			}
		case *ast.Ident:
			if v, ok := c.pass.Info.Uses[e].(*types.Var); ok && c.tainted[v] {
				found = true
			}
		}
	}
	walk(expr)
	return found
}

// assignedVar resolves an assignment LHS to the variable it binds.
func assignedVar(info *types.Info, lhs ast.Expr) *types.Var {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return nil
	}
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v
	}
	v, _ := info.Uses[id].(*types.Var)
	return v
}

// narrowIntType reports whether t is an integer type a wide int64 must not
// be converted to unguarded: any integer under 8 bytes, plus the
// platform-sized kinds whose width is a build property, not a promise.
func narrowIntType(t types.Type) bool {
	b, ok := deref(t).Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsInteger == 0 {
		return false
	}
	switch b.Kind() {
	case types.Int, types.Uint, types.Uintptr,
		types.Int8, types.Int16, types.Int32,
		types.Uint8, types.Uint16, types.Uint32:
		return true
	}
	return false
}

// is8ByteInt reports whether t is a fixed 8-byte integer type.
func is8ByteInt(t types.Type) bool {
	b, ok := deref(t).Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch b.Kind() {
	case types.Int64, types.Uint64:
		return true
	}
	return false
}
