// Package guardedby_ok accesses its guarded field only under the mutex,
// exercising plain Lock/Unlock pairs, defer, and the //armlint:locked
// caller-holds-the-lock annotation.
package guardedby_ok

import "sync"

type Queue struct {
	mu sync.Mutex
	//armlint:guardedby mu
	items []int
}

func (q *Queue) Push(v int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.items = append(q.items, v)
}

func (q *Queue) Pop() (int, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.items) == 0 {
		return 0, false
	}
	v := q.items[len(q.items)-1]
	q.items = q.items[:len(q.items)-1]
	return v, true
}

// lenLocked documents that its callers hold q.mu.
//
//armlint:locked q.mu
func (q *Queue) lenLocked() int { return len(q.items) }

func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.lenLocked()
}
