// Package noalloc_ok contains a genuinely allocation-free hot function.
package noalloc_ok

// Sum folds a slice with nothing but arithmetic, indexing and range — no
// allocating construct anywhere.
//
//armlint:noalloc
func Sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

// Max is also clean; calling another noalloc function is fine.
//
//armlint:noalloc
func Max(xs []int) int {
	m := 0
	for i := range xs {
		if xs[i] > m {
			m = xs[i]
		}
	}
	return m + Sum(nil)
}
