// Package guardedby_bad accesses a //armlint:guardedby field without
// holding its mutex.
package guardedby_bad

import "sync"

type Queue struct {
	mu sync.Mutex
	//armlint:guardedby mu
	items []int
}

// Push holds the lock — clean.
func (q *Queue) Push(v int) {
	q.mu.Lock()
	q.items = append(q.items, v)
	q.mu.Unlock()
}

// Len reads the guarded field with no lock held — a finding.
func (q *Queue) Len() int { return len(q.items) }

// Drain releases the lock too early — the second access is a finding.
func (q *Queue) Drain() int {
	q.mu.Lock()
	n := len(q.items)
	q.mu.Unlock()
	q.items = nil
	return n
}
