// Package intwidth_ok handles wide int64 values correctly: guarded
// narrowing, documented narrowok conversions, or staying in 64 bits.
package intwidth_ok

import "math"

// NumTx returns the store's transaction count.
//
//armlint:wide
func NumTx() int64 { return 1 << 40 }

type arena struct {
	// used is the running arena offset.
	//
	//armlint:wide
	used int64
}

// guarded bounds-checks the wide value before narrowing it.
func guarded() (int32, bool) {
	n := NumTx()
	if n > math.MaxInt32 {
		return 0, false
	}
	return int32(n), true
}

// asserted documents the range bound instead of re-checking it.
func asserted(a *arena) int32 {
	//armlint:narrowok the arena is capped at SegBytes (64 MiB) by Append
	return int32(a.used)
}

// stayWide never narrows — arithmetic in 64 bits is always fine.
func stayWide() int64 {
	return NumTx() * 2
}

// narrowUnrelated converts a value that never touched a wide source.
func narrowUnrelated(x int64) int32 {
	if x > math.MaxInt32 {
		return math.MaxInt32
	}
	return int32(x)
}
