// Package atomicmix_bad mixes sync/atomic and plain accesses to the same
// fields — every plain access is a finding.
package atomicmix_bad

import "sync/atomic"

type Counters struct {
	hits  int64
	elems []int64
}

func (c *Counters) Inc() { atomic.AddInt64(&c.hits, 1) }

func (c *Counters) IncElem(i int) { atomic.AddInt64(&c.elems[i], 1) }

// Bad reads the atomically-updated field without the atomic package.
func (c *Counters) Bad() int64 { return c.hits }

// BadWrite stores to it plainly.
func (c *Counters) BadWrite() { c.hits = 0 }

// BadElem reads an element of the atomically-updated slice plainly.
func (c *Counters) BadElem(i int) int64 { return c.elems[i] }
