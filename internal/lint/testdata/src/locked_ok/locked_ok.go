// Package locked_ok calls //armlint:locked helpers correctly: under a
// plain Lock, under a deferred Unlock, from another locked helper (the
// contract seeds the held set), and through a differently-named receiver
// (the path substitutes).
package locked_ok

import "sync"

type queue struct {
	mu    sync.Mutex
	items []int
}

// lenLocked runs with q.mu held by the caller.
//
//armlint:locked q.mu
func (q *queue) lenLocked() int { return len(q.items) }

// emptyLocked inherits the contract, so calling lenLocked is proven.
//
//armlint:locked q.mu
func (q *queue) emptyLocked() bool { return q.lenLocked() == 0 }

// Len holds via defer.
func (q *queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.lenLocked()
}

// Push holds via a plain Lock/Unlock pair, under a renamed receiver.
func (self *queue) Push(v int) {
	self.mu.Lock()
	self.items = append(self.items, v)
	n := self.lenLocked()
	_ = n
	self.mu.Unlock()
}
