// Package locked_bad calls //armlint:locked helpers without provably
// holding the declared lock.
package locked_bad

import "sync"

type queue struct {
	mu    sync.Mutex
	items []int
}

// lenLocked runs with q.mu held by the caller.
//
//armlint:locked q.mu
func (q *queue) lenLocked() int { return len(q.items) }

// LenRacy forgets the lock entirely.
func (q *queue) LenRacy() int {
	return q.lenLocked()
}

// LenDropped releases before the call.
func (q *queue) LenDropped() int {
	q.mu.Lock()
	q.mu.Unlock()
	return q.lenLocked()
}
