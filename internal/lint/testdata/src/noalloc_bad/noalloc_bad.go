// Package noalloc_bad marks allocating functions //armlint:noalloc — every
// allocating construct is a finding.
package noalloc_bad

// Collect allocates a slice and appends to it.
//
//armlint:noalloc
func Collect(n int) []int {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}

// Describe concatenates strings and boxes an int into an interface.
//
//armlint:noalloc
func Describe(name string, v int) (string, any) {
	s := "item " + name
	var box any = v
	return s, box
}
