// Package callgraph exercises graph construction: recursion, method
// values, deferred calls, and every summary fixpoint.
package callgraph

import (
	"context"
	"sync/atomic"
)

// source yields work items.
//
//armlint:itersrc
func source() int { return 1 }

// level1/level2 propagate IterSrc transitively.
func level1() int { return source() }
func level2() int { return level1() }

// even/odd are mutually recursive; the fixpoint must terminate.
func even(n int) bool {
	if n == 0 {
		return true
	}
	return odd(n - 1)
}

func odd(n int) bool {
	if n == 0 {
		return false
	}
	return even(n - 1)
}

// check observes cancellation.
//
//armlint:polls
func check(ctx context.Context) bool { return ctx.Err() != nil }

// viaCheck polls transitively.
func viaCheck(ctx context.Context) bool { return check(ctx) }

type t struct{}

// M is only ever referenced as a method value, never called.
func (t) M() {}

// Root is a cancellable entry that takes a method value — a Refs edge
// without a Calls edge, and reachability must follow it.
//
//armlint:cancellable
func Root(ctx context.Context) func() {
	var x t
	return x.M
}

// deferred reaches helperD only through a defer.
func deferred() {
	defer helperD()
}

func helperD() {}

// base is a wide source; wrapWide returns its result directly.
//
//armlint:wide
func base() int64 { return 1 }

func wrapWide() int64 { return base() }

// bump updates its pointee atomically; bump2 forwards its parameter.
func bump(c *int64) { atomic.AddInt64(c, 1) }

func bump2(c *int64) { bump(c) }
