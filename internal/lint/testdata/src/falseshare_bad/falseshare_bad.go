// Package falseshare_bad lays out hot per-worker fields so that adjacent
// workers share a 64-byte coherence line.
package falseshare_bad

// Counter is 8 bytes: a []Counter packs eight workers' counters per line.
type Counter struct {
	//armlint:hot
	N int64
}

// Pool uses the unpadded hot struct as a slice element — a finding at the
// slice type.
type Pool struct {
	counters []Counter
}

// Mixed puts hot fields of two different groups on the same line — a
// finding at the struct definition.
type Mixed struct {
	//armlint:hot producer
	Head int64
	//armlint:hot consumer
	Tail int64
}
