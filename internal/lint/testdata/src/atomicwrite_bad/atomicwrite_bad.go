// Package atomicwrite_bad violates the temp+fsync+rename discipline in
// each of the four checked ways.
package atomicwrite_bad

import "os"

// renameBeforeSync publishes the temp without ever fsyncing it.
func renameBeforeSync(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// uncheckedClose discards the Close error on the success path, so a failed
// flush publishes a truncated file.
func uncheckedClose(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	f.Close()
	return os.Rename(tmp, path)
}

// leakyAbort returns on the write error without removing the temp file.
func leakyAbort(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

type writer struct{ tmp, path string }

// publishNoSync renames a temp-named path opened elsewhere with no Sync
// anywhere in the function (rule 4).
func publishNoSync(w *writer) error {
	return os.Rename(w.tmp, w.path)
}
