// Package gbinterproc_ok protects its guarded field entirely through
// lock()/unlock() helpers: the call-graph lock summaries carry the held
// state across the call boundary, so no access needs an annotation.
package gbinterproc_ok

import "sync"

type counter struct {
	mu sync.Mutex
	// n is the shared count.
	//
	//armlint:guardedby mu
	n int
}

// lock acquires c.mu on the caller's behalf (net-acquire summary).
func (c *counter) lock() { c.mu.Lock() }

// unlock releases it (release summary).
func (c *counter) unlock() { c.mu.Unlock() }

// Add brackets the access with the helpers.
func (c *counter) Add(v int) {
	c.lock()
	c.n += v
	c.unlock()
}

// Get holds to function end via a deferred helper unlock.
func (c *counter) Get() int {
	c.lock()
	defer c.unlock()
	return c.n
}
