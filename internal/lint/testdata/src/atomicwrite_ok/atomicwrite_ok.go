// Package atomicwrite_ok follows the temp+fsync+rename discipline: the
// ckpt.WriteFile single-function shape, and the seg.Writer split shape
// where the handle escapes into a struct and another method publishes.
package atomicwrite_ok

import "os"

// writeFile is the canonical checkpoint shape: create temp, write, sync,
// checked close, rename; every abort path removes the temp.
func writeFile(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

type writer struct {
	f    *os.File
	tmp  string
	path string
}

// create opens the temp and hands the rename obligation to the returned
// writer — the seg.Writer.Create shape.
func create(path string) (*writer, error) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return nil, err
	}
	return &writer{f: f, tmp: tmp, path: path}, nil
}

// close publishes: sync, checked close, then rename (rule 4 satisfied by
// the earlier Sync).
func (w *writer) close() error {
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		os.Remove(w.tmp)
		return err
	}
	if err := w.f.Close(); err != nil {
		os.Remove(w.tmp)
		return err
	}
	return os.Rename(w.tmp, w.path)
}
