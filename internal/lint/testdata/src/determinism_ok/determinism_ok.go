// Package determinism_ok is pinned and stays deterministic: map iteration
// only feeds order-insensitive folds, and the one ordered accumulation is
// sorted immediately and carries an //armlint:allow documenting that.
//
//armlint:pinned
package determinism_ok

import "sort"

// Total is an order-insensitive fold over a map — fine.
func Total(m map[string]int) int {
	t := 0
	for _, v := range m {
		t += v
	}
	return t
}

// SortedKeys collects then sorts, restoring a deterministic order.
func SortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		//armlint:allow determinism keys are sorted before return
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
