// Package ctxpoll_bad scans an iteration source from cancellable entry
// points without ever polling for cancellation — the shape that silently
// loses RunCtx parity.
package ctxpoll_bad

import "context"

type cursor struct{ next, hi int }

// Next claims the next chunk.
//
//armlint:itersrc
func (c *cursor) Next() (int, bool) {
	if c.next >= c.hi {
		return 0, false
	}
	n := c.next
	c.next++
	return n, true
}

// Mine is a cancellable root whose claim loop never looks at ctx.
//
//armlint:cancellable
func Mine(ctx context.Context, c *cursor) int {
	total := 0
	for {
		n, ok := c.Next()
		if !ok {
			break
		}
		total += n
	}
	return total
}

// helper is reachable from MineIndirect, so its scan loop owes a poll too.
func helper(c *cursor) int {
	s := 0
	for {
		n, ok := c.Next()
		if !ok {
			break
		}
		s += n
	}
	return s
}

// MineIndirect loses cancellation one call down.
//
//armlint:cancellable
func MineIndirect(ctx context.Context, c *cursor) int {
	return helper(c)
}
