// Package intwidth_bad narrows wide int64 values without bounds guards —
// including the two historical bug shapes: the PR 4 splitRange fan-out
// truncation and the PR 5 arena-offset overflow.
package intwidth_bad

// NumTx returns the store's transaction count, which exceeds 32 bits on
// large segmented databases.
//
//armlint:wide
func NumTx() int64 { return 1 << 40 }

type arena struct {
	// used is the running arena offset.
	//
	//armlint:wide
	used int64
}

// splitRangeShape is the PR 4 reduce fan-out truncation: the product
// p*n overflows long before the guard-free int() conversion runs.
func splitRangeShape(p, procs int) int {
	n := NumTx()
	return int(int64(p) * n / int64(procs))
}

// arenaShape is the PR 5 arena-offset overflow: int32 wraps once the arena
// passes 2 GiB.
func arenaShape(a *arena) int32 {
	return int32(a.used)
}

// taintChain launders through arithmetic and full-width conversions; the
// value is still wide when it finally narrows.
func taintChain() int {
	n := NumTx()
	m := n * 2
	k := int64(m + 1)
	return int(k)
}

// wrap propagates wideness without an annotation of its own.
func wrap() int64 { return NumTx() }

// viaWrapper narrows the transitively-wide result.
func viaWrapper() uint32 {
	return uint32(wrap())
}
