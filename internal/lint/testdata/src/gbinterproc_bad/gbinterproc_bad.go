// Package gbinterproc_bad accesses a guarded field where the lock-helper
// summaries prove the lock is not held.
package gbinterproc_bad

import "sync"

type counter struct {
	mu sync.Mutex
	// n is the shared count.
	//
	//armlint:guardedby mu
	n int
}

// lock acquires c.mu on the caller's behalf.
func (c *counter) lock() { c.mu.Lock() }

// unlock releases it.
func (c *counter) unlock() { c.mu.Unlock() }

// AddRacy never takes the lock.
func (c *counter) AddRacy(v int) {
	c.n += v
}

// AddDropped accesses after the helper already released.
func (c *counter) AddDropped(v int) {
	c.lock()
	c.unlock()
	c.n += v
}
