// Package ctxpoll_ok satisfies scan-loop poll obligations every accepted
// way: a direct ctx.Err() in the body, a poll in the loop condition, an
// //armlint:polls helper — and shows that unreachable code owes nothing.
package ctxpoll_ok

import "context"

type cursor struct{ next, hi int }

// Next claims the next chunk.
//
//armlint:itersrc
func (c *cursor) Next() (int, bool) {
	if c.next >= c.hi {
		return 0, false
	}
	n := c.next
	c.next++
	return n, true
}

// canceled observes cancellation for its callers (the robust.Canceled
// shape).
//
//armlint:polls
func canceled(ctx context.Context) bool { return ctx.Err() != nil }

// MineDirect polls in the loop body.
//
//armlint:cancellable
func MineDirect(ctx context.Context, c *cursor) int {
	total := 0
	for {
		if ctx.Err() != nil {
			return total
		}
		n, ok := c.Next()
		if !ok {
			break
		}
		total += n
	}
	return total
}

// MineHelper polls through the annotated helper.
//
//armlint:cancellable
func MineHelper(ctx context.Context, c *cursor) int {
	total := 0
	for {
		if canceled(ctx) {
			return total
		}
		n, ok := c.Next()
		if !ok {
			break
		}
		total += n
	}
	return total
}

// MineCond polls in the loop condition.
//
//armlint:cancellable
func MineCond(ctx context.Context, c *cursor) int {
	total := 0
	for ctx.Err() == nil {
		n, ok := c.Next()
		if !ok {
			break
		}
		total += n
	}
	return total
}

// Unreachable has the unpolled shape but no cancellable root reaches it,
// so it carries no obligation.
func Unreachable(c *cursor) int {
	s := 0
	for {
		n, ok := c.Next()
		if !ok {
			break
		}
		s += n
	}
	return s
}
