// Package atomicmix_ok keeps the atomic and plain worlds separate: the
// atomically-updated field is only ever touched through sync/atomic, and the
// plain field never is.
package atomicmix_ok

import "sync/atomic"

type Counters struct {
	hits  int64
	plain int64
}

func (c *Counters) Inc() { atomic.AddInt64(&c.hits, 1) }

func (c *Counters) Load() int64 { return atomic.LoadInt64(&c.hits) }

func (c *Counters) Bump() int64 {
	c.plain++
	return c.plain
}
