// Package falseshare_ok pads its hot per-worker struct to a full coherence
// line, so a slice of them gives each worker a private line.
package falseshare_ok

// Counter is exactly 64 bytes.
type Counter struct {
	//armlint:hot
	N int64
	//armlint:hot
	M int64
	_ [48]byte
}

type Pool struct {
	counters []Counter
}
