// Package determinism_bad is pinned but leaks wall-clock, randomness and
// map-iteration order into its results.
//
//armlint:pinned
package determinism_bad

import (
	"math/rand"
	"time"
)

// Jitter draws from the global PRNG — the import alone is a finding.
func Jitter() int64 { return rand.Int63() }

// Stamp reads the wall clock — a finding.
func Stamp() int64 { return time.Now().UnixNano() }

// Keys feeds map-iteration order into an ordered accumulation — a finding.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
