package baseline

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/apriori"
	"repro/internal/db"
	"repro/internal/hashtree"
	"repro/internal/itemset"
)

// PartitionOptions configures the Partition algorithm (Savasere, Omiecinski
// & Navathe 1995): the database is split into chunks small enough to mine
// in memory; phase 1 mines each chunk at the scaled-down local support and
// unions the locally frequent itemsets into a global candidate set; phase 2
// counts every candidate in one more full scan. Exactly two database scans
// total — the I/O structure the paper's related-work section contrasts
// with Apriori's k scans.
type PartitionOptions struct {
	Mining apriori.Options
	// Chunks is the number of partitions (default 4).
	Chunks int
}

// PartitionStats reports phase sizes.
type PartitionStats struct {
	Chunks          int
	LocalCandidates int // distinct locally-frequent itemsets (phase 1 union)
	Scans           int // always 2
}

// MinePartition runs the two-scan Partition algorithm. Results match
// Apriori exactly (the local-support union is a superset of the global
// frequent set).
func MinePartition(d *db.Database, opts PartitionOptions) (*apriori.Result, *PartitionStats, error) {
	if opts.Chunks < 1 {
		opts.Chunks = 4
	}
	minCount := opts.Mining.MinCount(d.Len())
	frac := float64(minCount) / float64(max(1, d.Len()))
	stats := &PartitionStats{Chunks: opts.Chunks, Scans: 2}

	// Phase 1: mine each chunk locally; union locally frequent itemsets.
	candidates := map[string]itemset.Itemset{}
	maxK := 1
	for _, s := range d.BlockPartition(opts.Chunks) {
		if s.Len() == 0 {
			continue
		}
		chunk := db.New(d.NumItems())
		s.ForEach(func(tid int64, items itemset.Itemset) {
			chunk.Append(tid, items)
		})
		localMin := int64(math.Ceil(frac * float64(chunk.Len())))
		if localMin < 1 {
			localMin = 1
		}
		localOpts := opts.Mining
		localOpts.AbsSupport = localMin
		localOpts.MinSupport = 0
		localRes, err := apriori.Mine(chunk, localOpts)
		if err != nil {
			return nil, nil, fmt.Errorf("partition: phase 1: %w", err)
		}
		for _, f := range localRes.All() {
			candidates[f.Items.Key()] = f.Items
			if f.Items.K() > maxK {
				maxK = f.Items.K()
			}
		}
	}
	stats.LocalCandidates = len(candidates)

	// Phase 2: count the global support of every candidate in one scan,
	// one hash tree per candidate size.
	byK := make([][]itemset.Itemset, maxK+1)
	for _, c := range candidates {
		byK[c.K()] = append(byK[c.K()], c)
	}
	res := &apriori.Result{MinCount: minCount, ByK: make([][]apriori.FrequentItemset, maxK+1)}

	// Size-1 candidates are counted directly.
	counts1 := make([]int64, d.NumItems())
	trees := make([]*hashtree.Tree, maxK+1)
	counters := make([]*hashtree.Counters, maxK+1)
	ctxs := make([]*hashtree.CountCtx, maxK+1)
	for k := 2; k <= maxK; k++ {
		if len(byK[k]) == 0 {
			continue
		}
		sort.Slice(byK[k], func(i, j int) bool { return byK[k][i].Less(byK[k][j]) })
		cfg := hashtree.Config{
			K: k, Fanout: opts.Mining.Fanout, Threshold: opts.Mining.Threshold,
			Hash: opts.Mining.Hash, NumItems: d.NumItems(),
		}
		tr, err := hashtree.Build(cfg, byK[k])
		if err != nil {
			return nil, nil, fmt.Errorf("partition: phase 2: %w", err)
		}
		trees[k] = tr
		counters[k] = hashtree.NewCounters(hashtree.CounterAtomic, tr.NumCandidates(), 1)
		ctxs[k] = tr.NewCountCtx(counters[k], hashtree.CountOpts{ShortCircuit: opts.Mining.ShortCircuit})
	}
	for i := 0; i < d.Len(); i++ {
		items := d.Items(i)
		for _, it := range items {
			counts1[it]++
		}
		for k := 2; k <= maxK; k++ {
			if ctxs[k] != nil {
				ctxs[k].CountTransaction(items)
			}
		}
	}

	for _, c := range byK[1] {
		if cnt := counts1[c[0]]; cnt >= minCount {
			res.ByK[1] = append(res.ByK[1], apriori.FrequentItemset{Items: c, Count: cnt})
		}
	}
	sortFrequent(res.ByK[1])
	for k := 2; k <= maxK; k++ {
		if trees[k] == nil {
			continue
		}
		res.ByK[k] = apriori.ExtractFrequent(trees[k], counters[k], minCount)
	}
	return res, stats, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
