package baseline

import (
	"fmt"

	"repro/internal/apriori"
	"repro/internal/db"
	"repro/internal/hashtree"
	"repro/internal/itemset"
)

// DHPOptions configures the Direct Hashing and Pruning algorithm (Park,
// Chen & Yu 1995). While counting 1-itemsets, DHP also hashes every
// 2-subset of every transaction into a fixed-size bucket table; a
// candidate 2-itemset whose bucket count is below minimum support cannot
// be frequent and is pruned before the expensive k=2 counting pass. The
// same trick applies at deeper levels but pays off mostly at k=2, which
// dominates candidate volume (Fig. 6), so this implementation hashes one
// level ahead throughout.
type DHPOptions struct {
	Mining apriori.Options
	// Buckets is the hash table size for the direct-hashing filter
	// (default 1<<16).
	Buckets int
}

// DHPStats reports the filter's effectiveness.
type DHPStats struct {
	// CandidatesBefore/After count C_k before and after bucket pruning,
	// summed over iterations.
	CandidatesBefore int64
	CandidatesAfter  int64
}

// hashPair maps an ordered item pair to a bucket.
func hashPair(a, b itemset.Item, buckets int) int {
	h := uint64(a)*2654435761 + uint64(b)*40503
	return int(h % uint64(buckets))
}

// MineDHP runs the sequential DHP algorithm.
func MineDHP(d *db.Database, opts DHPOptions) (*apriori.Result, *DHPStats, error) {
	if opts.Buckets <= 0 {
		opts.Buckets = 1 << 16
	}
	minCount := opts.Mining.MinCount(d.Len())
	res := &apriori.Result{MinCount: minCount, ByK: make([][]apriori.FrequentItemset, 2)}
	stats := &DHPStats{}

	// Pass 1: item counts plus the 2-subset bucket table.
	counts := make([]int64, d.NumItems())
	buckets := make([]int64, opts.Buckets)
	for i := 0; i < d.Len(); i++ {
		items := d.Items(i)
		for _, it := range items {
			counts[it]++
		}
		for a := 0; a < len(items); a++ {
			for b := a + 1; b < len(items); b++ {
				buckets[hashPair(items[a], items[b], opts.Buckets)]++
			}
		}
	}
	var f1 []apriori.FrequentItemset
	for it, c := range counts {
		if c >= minCount {
			f1 = append(f1, apriori.FrequentItemset{Items: itemset.New(itemset.Item(it)), Count: c})
		}
	}
	res.ByK[1] = f1
	labels := apriori.LabelsFromF1(f1, d.NumItems())
	prev := make([]itemset.Itemset, len(f1))
	for i, f := range f1 {
		prev[i] = f.Items
	}

	for k := 2; len(prev) > 0 && (opts.Mining.MaxK == 0 || k <= opts.Mining.MaxK); k++ {
		cands, _, _ := apriori.GenerateCandidates(prev, opts.Mining.NaiveJoin)
		stats.CandidatesBefore += int64(len(cands))
		// Bucket filter: a candidate's support is bounded by the support of
		// each of its 2-subsets, which in turn is bounded by the (possibly
		// colliding, hence over-counting) bucket total — so a candidate
		// whose last-pair bucket is below minCount cannot be frequent.
		// Filtering on every 2-subset would prune more at the cost of
		// C(k,2) probes; the last pair is the classic k=2 filter applied
		// level-ahead.
		filtered := cands[:0]
		for _, c := range cands {
			if buckets[hashPair(c[len(c)-2], c[len(c)-1], opts.Buckets)] >= minCount {
				filtered = append(filtered, c)
			}
		}
		cands = filtered
		stats.CandidatesAfter += int64(len(cands))
		if len(cands) == 0 {
			break
		}
		cfg := hashtree.Config{
			K: k, Fanout: opts.Mining.Fanout, Threshold: opts.Mining.Threshold,
			Hash: opts.Mining.Hash, NumItems: d.NumItems(), Labels: labels,
		}
		tree, err := hashtree.Build(cfg, cands)
		if err != nil {
			return nil, nil, fmt.Errorf("dhp: iteration %d: %w", k, err)
		}
		counters := hashtree.NewCounters(hashtree.CounterAtomic, tree.NumCandidates(), 1)
		ctx := tree.NewCountCtx(counters, hashtree.CountOpts{ShortCircuit: opts.Mining.ShortCircuit})
		for i := 0; i < d.Len(); i++ {
			ctx.CountTransaction(d.Items(i))
		}
		fk := apriori.ExtractFrequent(tree, counters, minCount)
		sortFrequent(fk)
		res.ByK = append(res.ByK, fk)
		prev = prev[:0]
		for _, f := range fk {
			prev = append(prev, f.Items)
		}
	}
	return res, stats, nil
}
