package baseline

import (
	"testing"

	"repro/internal/apriori"
	"repro/internal/db"
	"repro/internal/gen"
	"repro/internal/hashtree"
	"repro/internal/itemset"
)

func testDB(t *testing.T) *db.Database {
	t.Helper()
	d, err := gen.Generate(gen.Params{N: 60, L: 15, I: 4, T: 8, D: 600, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func flat(res *apriori.Result) map[string]int64 {
	out := map[string]int64{}
	for _, f := range res.All() {
		out[f.Items.Key()] = f.Count
	}
	return out
}

func assertSame(t *testing.T, label string, got, want map[string]int64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d frequent, want %d", label, len(got), len(want))
	}
	for k, c := range want {
		if got[k] != c {
			s, _ := itemset.ParseKey(k)
			t.Fatalf("%s: %v = %d, want %d", label, s, got[k], c)
		}
	}
}

func TestCountDistributionMatchesApriori(t *testing.T) {
	d := testDB(t)
	ref, err := apriori.Mine(d, apriori.Options{MinSupport: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	want := flat(ref)
	for _, procs := range []int{1, 3, 8} {
		res, stats, err := MineCD(d, CDOptions{
			Mining: apriori.Options{MinSupport: 0.02, Hash: hashtree.HashBitonic, ShortCircuit: true},
			Procs:  procs,
		})
		if err != nil {
			t.Fatal(err)
		}
		assertSame(t, "CD", flat(res), want)
		if stats.Rounds < 2 {
			t.Errorf("procs=%d: only %d all-reduce rounds", procs, stats.Rounds)
		}
		if stats.BytesExchanged <= 0 {
			t.Errorf("procs=%d: no communication recorded", procs)
		}
	}
}

func TestCDCommunicationScalesWithProcs(t *testing.T) {
	d := testDB(t)
	_, s2, err := MineCD(d, CDOptions{Mining: apriori.Options{MinSupport: 0.02}, Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	_, s8, err := MineCD(d, CDOptions{Mining: apriori.Options{MinSupport: 0.02}, Procs: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Same candidates per iteration, 4× the nodes → 4× the traffic.
	if s8.BytesExchanged != 4*s2.BytesExchanged {
		t.Errorf("traffic %d at 8 procs, %d at 2 — expected 4×", s8.BytesExchanged, s2.BytesExchanged)
	}
}

func TestCommBytesPerIteration(t *testing.T) {
	if got := CommBytesPerIteration(1000, 8); got != 64000 {
		t.Errorf("CommBytes = %d", got)
	}
}

func TestDHPMatchesApriori(t *testing.T) {
	d := testDB(t)
	ref, err := apriori.Mine(d, apriori.Options{MinSupport: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	want := flat(ref)
	for _, buckets := range []int{1 << 8, 1 << 16} {
		res, stats, err := MineDHP(d, DHPOptions{
			Mining:  apriori.Options{MinSupport: 0.02, ShortCircuit: true},
			Buckets: buckets,
		})
		if err != nil {
			t.Fatal(err)
		}
		assertSame(t, "DHP", flat(res), want)
		if stats.CandidatesAfter > stats.CandidatesBefore {
			t.Errorf("buckets=%d: filter added candidates?!", buckets)
		}
	}
}

func TestDHPPrunesCandidates(t *testing.T) {
	// With ample buckets (few collisions) DHP must prune a meaningful
	// share of C2 at a support level where many pairs are infrequent.
	d := testDB(t)
	_, stats, err := MineDHP(d, DHPOptions{
		Mining:  apriori.Options{MinSupport: 0.05},
		Buckets: 1 << 18,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.CandidatesAfter >= stats.CandidatesBefore {
		t.Errorf("no pruning: %d → %d", stats.CandidatesBefore, stats.CandidatesAfter)
	}
}

func TestPartitionMatchesApriori(t *testing.T) {
	d := testDB(t)
	ref, err := apriori.Mine(d, apriori.Options{MinSupport: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	want := flat(ref)
	for _, chunks := range []int{1, 3, 7} {
		res, stats, err := MinePartition(d, PartitionOptions{
			Mining: apriori.Options{MinSupport: 0.02, ShortCircuit: true},
			Chunks: chunks,
		})
		if err != nil {
			t.Fatal(err)
		}
		assertSame(t, "Partition", flat(res), want)
		if stats.Scans != 2 {
			t.Errorf("chunks=%d: %d scans", chunks, stats.Scans)
		}
		if stats.LocalCandidates < len(want) {
			t.Errorf("chunks=%d: local union %d smaller than frequent set %d",
				chunks, stats.LocalCandidates, len(want))
		}
	}
}

func TestPartitionAbsSupport(t *testing.T) {
	// AbsSupport path: local thresholds derive from the implied fraction.
	d := testDB(t)
	ref, _ := apriori.Mine(d, apriori.Options{AbsSupport: 20})
	res, _, err := MinePartition(d, PartitionOptions{
		Mining: apriori.Options{AbsSupport: 20},
		Chunks: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	assertSame(t, "Partition/abs", flat(res), flat(ref))
}

func TestBaselinesOnEmptyDB(t *testing.T) {
	d := db.New(10)
	if res, _, err := MineCD(d, CDOptions{Mining: apriori.Options{MinSupport: 0.5}, Procs: 3}); err != nil || res.NumFrequent() != 0 {
		t.Errorf("CD on empty: %v, %d", err, res.NumFrequent())
	}
	if res, _, err := MineDHP(d, DHPOptions{Mining: apriori.Options{MinSupport: 0.5}}); err != nil || res.NumFrequent() != 0 {
		t.Errorf("DHP on empty: %v, %d", err, res.NumFrequent())
	}
	if res, _, err := MinePartition(d, PartitionOptions{Mining: apriori.Options{MinSupport: 0.5}}); err != nil || res.NumFrequent() != 0 {
		t.Errorf("Partition on empty: %v, %d", err, res.NumFrequent())
	}
}
