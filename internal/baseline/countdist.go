// Package baseline implements the comparison algorithms the paper
// positions CCPD against in Section 7: Count Distribution (Agrawal &
// Shafer 1996), the best of the three IBM-SP2 distributed-memory
// parallelizations of Apriori, here simulated on shared memory with
// channel-based message passing; and DHP (Park et al. 1995), the
// hash-based sequential algorithm whose direct-hashing step prunes C2.
// Both produce exactly the frequent itemsets of Apriori and exist to
// reproduce the cost structures the paper argues about (communication
// volume for CD, candidate reduction for DHP).
package baseline

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/apriori"
	"repro/internal/db"
	"repro/internal/hashtree"
	"repro/internal/itemset"
)

// CDOptions configures a Count Distribution run.
type CDOptions struct {
	// Mining carries support and tree knobs.
	Mining apriori.Options
	// Procs is the number of simulated distributed nodes.
	Procs int
}

// CDStats records the simulated communication of a run: in Count
// Distribution every node broadcasts its partial counts for every
// candidate each iteration (an all-reduce), so traffic is
// |C_k| × 8 bytes × P per iteration — the overhead the paper's
// shared-memory CCPD avoids entirely.
type CDStats struct {
	Procs int
	// BytesExchanged is the total all-reduce volume over all iterations.
	BytesExchanged int64
	// Rounds is the number of all-reduce rounds (one per iteration ≥ 2).
	Rounds int
}

// MineCD runs Count Distribution: each node owns a horizontal database
// partition and a full replica of the candidate hash tree; after local
// counting, partial counts are exchanged (here: summed through a channel
// fan-in standing in for the SP2 message layer) and every node selects the
// same frequent set.
func MineCD(d *db.Database, opts CDOptions) (*apriori.Result, *CDStats, error) {
	if opts.Procs < 1 {
		opts.Procs = 1
	}
	minCount := opts.Mining.MinCount(d.Len())
	res := &apriori.Result{MinCount: minCount, ByK: make([][]apriori.FrequentItemset, 2)}
	stats := &CDStats{Procs: opts.Procs}

	slices := d.BlockPartition(opts.Procs)

	// Iteration 1: local item counts, then all-reduce.
	type countMsg struct {
		proc   int
		counts []int64
	}
	ch := make(chan countMsg, opts.Procs)
	for p := 0; p < opts.Procs; p++ {
		go func(p int) {
			counts := make([]int64, d.NumItems())
			slices[p].ForEach(func(_ int64, items itemset.Itemset) {
				for _, it := range items {
					counts[it]++
				}
			})
			ch <- countMsg{p, counts}
		}(p)
	}
	global := make([]int64, d.NumItems())
	for p := 0; p < opts.Procs; p++ {
		m := <-ch
		for i, c := range m.counts {
			global[i] += c
		}
	}
	stats.BytesExchanged += int64(d.NumItems()) * 8 * int64(opts.Procs)
	stats.Rounds++

	var f1 []apriori.FrequentItemset
	for it, c := range global {
		if c >= minCount {
			f1 = append(f1, apriori.FrequentItemset{Items: itemset.New(itemset.Item(it)), Count: c})
		}
	}
	res.ByK[1] = f1
	labels := apriori.LabelsFromF1(f1, d.NumItems())
	prev := make([]itemset.Itemset, len(f1))
	for i, f := range f1 {
		prev[i] = f.Items
	}

	for k := 2; len(prev) > 0 && (opts.Mining.MaxK == 0 || k <= opts.Mining.MaxK); k++ {
		// Every node generates the identical candidate set independently
		// (no communication needed — the hallmark of Count Distribution).
		cands, _, _ := apriori.GenerateCandidates(prev, opts.Mining.NaiveJoin)
		if len(cands) == 0 {
			break
		}
		cfg := hashtree.Config{
			K: k, Fanout: opts.Mining.Fanout, Threshold: opts.Mining.Threshold,
			Hash: opts.Mining.Hash, NumItems: d.NumItems(), Labels: labels,
		}
		// Per-node replica trees and local counting; the replicas are
		// identical, so one shared immutable tree stands in for P copies
		// (the counts are what get exchanged).
		tree, err := hashtree.Build(cfg, cands)
		if err != nil {
			return nil, nil, fmt.Errorf("countdist: iteration %d: %w", k, err)
		}
		partial := make([][]int64, opts.Procs)
		var wg sync.WaitGroup
		for p := 0; p < opts.Procs; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				local := hashtree.NewCounters(hashtree.CounterAtomic, tree.NumCandidates(), 1)
				ctx := tree.NewCountCtx(local, hashtree.CountOpts{ShortCircuit: opts.Mining.ShortCircuit})
				slices[p].ForEach(func(_ int64, items itemset.Itemset) {
					ctx.CountTransaction(items)
				})
				partial[p] = append([]int64(nil), local.Counts()...)
			}(p)
		}
		wg.Wait()

		// All-reduce of partial counts.
		total := hashtree.NewCounters(hashtree.CounterAtomic, tree.NumCandidates(), 1)
		sum := total.Counts()
		for p := 0; p < opts.Procs; p++ {
			for i, c := range partial[p] {
				sum[i] += c
			}
		}
		stats.BytesExchanged += int64(tree.NumCandidates()) * 8 * int64(opts.Procs)
		stats.Rounds++

		fk := apriori.ExtractFrequent(tree, total, minCount)
		res.ByK = append(res.ByK, fk)
		prev = prev[:0]
		for _, f := range fk {
			prev = append(prev, f.Items)
		}
	}
	return res, stats, nil
}

// CommBytesPerIteration returns the modelled all-reduce volume for a
// candidate count — useful for the communication-vs-shared-memory
// comparison in docs and tests.
func CommBytesPerIteration(numCandidates, procs int) int64 {
	return int64(numCandidates) * 8 * int64(procs)
}

// sortFrequent orders a frequent list lexicographically (shared helper).
func sortFrequent(fk []apriori.FrequentItemset) {
	sort.Slice(fk, func(i, j int) bool { return fk[i].Items.Less(fk[j].Items) })
}
