// Package taxonomy implements multi-level (generalized) association mining
// (Srikant & Agrawal 1995) — the second extension task Section 8 of the
// paper names. Items are organized in an is-a forest (e.g. jacket → outer-
// wear → clothes); a generalized rule may relate items at any level. The
// implementation follows the Cumulate approach: transactions are extended
// with all ancestors of their items, the extended database is mined with
// the (parallel) Apriori machinery of this repository, and itemsets that
// contain both an item and one of its ancestors are filtered out as
// trivially redundant.
package taxonomy

import (
	"fmt"
	"math/rand"

	"repro/internal/apriori"
	"repro/internal/ccpd"
	"repro/internal/db"
	"repro/internal/hashtree"
	"repro/internal/itemset"
)

// Taxonomy is an is-a forest over the item universe: Parent[i] is item i's
// parent, or -1 for roots. Leaf items are the ones appearing in raw
// transactions; interior items are categories.
type Taxonomy struct {
	Parent []itemset.Item
}

// New builds a taxonomy from a parent vector; it validates shape.
func New(parent []itemset.Item) (*Taxonomy, error) {
	t := &Taxonomy{Parent: parent}
	// Detect cycles and out-of-range parents with a visited walk.
	for i := range parent {
		seen := map[itemset.Item]bool{}
		for j := itemset.Item(i); j >= 0; {
			if seen[j] {
				return nil, fmt.Errorf("taxonomy: cycle through item %d", j)
			}
			seen[j] = true
			p := parent[j]
			if p >= 0 && int(p) >= len(parent) {
				return nil, fmt.Errorf("taxonomy: item %d has out-of-range parent %d", j, p)
			}
			j = p
		}
	}
	return t, nil
}

// NumItems returns the universe size including category items.
func (t *Taxonomy) NumItems() int { return len(t.Parent) }

// Ancestors returns the strict ancestors of item i, nearest first.
func (t *Taxonomy) Ancestors(i itemset.Item) []itemset.Item {
	var out []itemset.Item
	for p := t.Parent[i]; p >= 0; p = t.Parent[p] {
		out = append(out, p)
	}
	return out
}

// IsAncestor reports whether a is a strict ancestor of i.
func (t *Taxonomy) IsAncestor(a, i itemset.Item) bool {
	for p := t.Parent[i]; p >= 0; p = t.Parent[p] {
		if p == a {
			return true
		}
	}
	return false
}

// Depth returns the number of ancestors of i (roots have depth 0).
func (t *Taxonomy) Depth(i itemset.Item) int { return len(t.Ancestors(i)) }

// ExtendTransaction returns the items plus all their ancestors, sorted and
// deduplicated — the Cumulate transaction extension.
func (t *Taxonomy) ExtendTransaction(items itemset.Itemset) itemset.Itemset {
	out := make(itemset.Itemset, 0, 2*len(items))
	out = append(out, items...)
	for _, it := range items {
		out = append(out, t.Ancestors(it)...)
	}
	return itemset.New(out...)
}

// ExtendDatabase builds the extended database (every transaction augmented
// with ancestors).
func (t *Taxonomy) ExtendDatabase(d *db.Database) *db.Database {
	out := db.New(t.NumItems())
	for i := 0; i < d.Len(); i++ {
		out.Append(d.TID(i), t.ExtendTransaction(d.Items(i)))
	}
	return out
}

// ContainsAncestorPair reports whether the itemset holds both an item and
// one of its ancestors (such itemsets have support identical to the subset
// without the ancestor and are pruned per Cumulate).
func (t *Taxonomy) ContainsAncestorPair(s itemset.Itemset) bool {
	for _, a := range s {
		for _, b := range s {
			if a != b && t.IsAncestor(a, b) {
				return true
			}
		}
	}
	return false
}

// Options configures generalized mining.
type Options struct {
	// Mining carries the support/tree knobs of the base algorithm.
	Mining apriori.Options
	// Procs > 1 uses the parallel CCPD miner on the extended database.
	Procs int
}

// Result is the generalized mining output.
type Result struct {
	// Frequent holds the generalized frequent itemsets (ancestor-pair
	// itemsets removed) with supports, by size.
	ByK [][]apriori.FrequentItemset
	// Raw is the unfiltered result over the extended database.
	Raw *apriori.Result
	// PrunedAncestorPairs counts itemsets dropped by the ancestor filter.
	PrunedAncestorPairs int
}

// NumFrequent counts the surviving generalized itemsets.
func (r *Result) NumFrequent() int {
	n := 0
	for _, fk := range r.ByK {
		n += len(fk)
	}
	return n
}

// Mine extends the database with the taxonomy, mines it, and filters
// ancestor-pair itemsets.
func Mine(d *db.Database, t *Taxonomy, opts Options) (*Result, error) {
	if t.NumItems() < d.NumItems() {
		return nil, fmt.Errorf("taxonomy: universe %d smaller than database universe %d",
			t.NumItems(), d.NumItems())
	}
	ext := t.ExtendDatabase(d)
	var raw *apriori.Result
	var err error
	if opts.Procs > 1 {
		raw, _, err = ccpd.Mine(ext, ccpd.Options{
			Options: opts.Mining,
			Procs:   opts.Procs,
			Counter: hashtree.CounterPrivate,
			Balance: ccpd.BalanceBitonic,
		})
	} else {
		raw, err = apriori.Mine(ext, opts.Mining)
	}
	if err != nil {
		return nil, err
	}
	res := &Result{Raw: raw, ByK: make([][]apriori.FrequentItemset, len(raw.ByK))}
	for k := range raw.ByK {
		for _, f := range raw.ByK[k] {
			if t.ContainsAncestorPair(f.Items) {
				res.PrunedAncestorPairs++
				continue
			}
			res.ByK[k] = append(res.ByK[k], f)
		}
	}
	return res, nil
}

// Interest computes the R-interesting measure of Srikant & Agrawal: the
// ratio of an itemset's actual support to the support expected from the
// closest generalized itemset obtained by replacing every item with its
// parent (where one exists). Values near 1 mean the specific itemset adds
// no information over its generalization; a common threshold is R = 1.1.
// Returns 0 when no generalization exists or supports are missing.
func Interest(res *Result, t *Taxonomy, s itemset.Itemset, dbLen int) float64 {
	gen := make(itemset.Itemset, 0, len(s))
	replaced := false
	for _, it := range s {
		if p := t.Parent[it]; p >= 0 {
			gen = append(gen, p)
			replaced = true
		} else {
			gen = append(gen, it)
		}
	}
	if !replaced || dbLen == 0 {
		return 0
	}
	gen = itemset.New(gen...)
	if len(gen) != len(s) {
		// Two items collapsed to the same parent; expectation undefined
		// under the simple independence model.
		return 0
	}
	supS := res.Raw.SupportOf(s)
	supG := res.Raw.SupportOf(gen)
	if supS == 0 || supG == 0 {
		return 0
	}
	// Expected support of s = support(gen) × Π (support(item)/support(parent)).
	exp := float64(supG)
	for i, it := range s {
		if gen[i] == it {
			continue
		}
		si := res.Raw.SupportOf(itemset.New(it))
		sp := res.Raw.SupportOf(itemset.New(gen[i]))
		if si == 0 || sp == 0 {
			return 0
		}
		exp *= float64(si) / float64(sp)
	}
	if exp == 0 {
		return 0
	}
	return float64(supS) / exp
}

// GenParams configures the random taxonomy generator: a forest over
// numLeaves leaf items with the given fan-out and depth. Category ids are
// assigned above the leaf range, so a database over [0, numLeaves) items
// composes directly.
type GenParams struct {
	NumLeaves int
	Fanout    int // children per category (≥2)
	Levels    int // category levels above the leaves (≥1)
	Seed      int64
}

// Generate builds a random forest taxonomy.
func Generate(p GenParams) (*Taxonomy, error) {
	if p.NumLeaves < 1 || p.Fanout < 2 || p.Levels < 1 {
		return nil, fmt.Errorf("taxonomy: bad generator params %+v", p)
	}
	rng := rand.New(rand.NewSource(p.Seed))
	// Level 0: leaves. Each level groups the previous level's nodes into
	// categories of size Fanout (with a shuffle for irregularity).
	current := make([]itemset.Item, p.NumLeaves)
	for i := range current {
		current[i] = itemset.Item(i)
	}
	parent := make([]itemset.Item, p.NumLeaves)
	for i := range parent {
		parent[i] = -1
	}
	next := itemset.Item(p.NumLeaves)
	for level := 0; level < p.Levels && len(current) > 1; level++ {
		rng.Shuffle(len(current), func(i, j int) {
			current[i], current[j] = current[j], current[i]
		})
		var upper []itemset.Item
		for i := 0; i < len(current); i += p.Fanout {
			end := i + p.Fanout
			if end > len(current) {
				end = len(current)
			}
			cat := next
			next++
			parent = append(parent, -1)
			for _, child := range current[i:end] {
				parent[child] = cat
			}
			upper = append(upper, cat)
		}
		current = upper
	}
	return New(parent)
}
