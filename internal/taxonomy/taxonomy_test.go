package taxonomy

import (
	"testing"

	"repro/internal/apriori"
	"repro/internal/db"
	"repro/internal/gen"
	"repro/internal/itemset"
)

// smallTaxonomy:      8(clothes)      9(drinks)
//
//	  /    |               |
//	0(jkt) 1(shirt)      2(beer)
//
// items 3..7 are uncategorized leaves.
func smallTaxonomy(t *testing.T) *Taxonomy {
	t.Helper()
	parent := []itemset.Item{8, 8, 9, -1, -1, -1, -1, -1, -1, -1}
	tx, err := New(parent)
	if err != nil {
		t.Fatal(err)
	}
	return tx
}

func TestNewRejectsCycle(t *testing.T) {
	if _, err := New([]itemset.Item{1, 0}); err == nil {
		t.Error("cycle should be rejected")
	}
	if _, err := New([]itemset.Item{5}); err == nil {
		t.Error("out-of-range parent should be rejected")
	}
}

func TestAncestors(t *testing.T) {
	tx := smallTaxonomy(t)
	if got := tx.Ancestors(0); len(got) != 1 || got[0] != 8 {
		t.Errorf("Ancestors(0) = %v", got)
	}
	if got := tx.Ancestors(8); len(got) != 0 {
		t.Errorf("Ancestors(8) = %v", got)
	}
	if !tx.IsAncestor(8, 1) || tx.IsAncestor(9, 1) || tx.IsAncestor(0, 8) {
		t.Error("IsAncestor wrong")
	}
	if tx.Depth(0) != 1 || tx.Depth(8) != 0 {
		t.Error("Depth wrong")
	}
}

func TestExtendTransaction(t *testing.T) {
	tx := smallTaxonomy(t)
	got := tx.ExtendTransaction(itemset.New(0, 2, 3))
	want := itemset.New(0, 2, 3, 8, 9)
	if !got.Equal(want) {
		t.Errorf("extended = %v, want %v", got, want)
	}
	// No duplicate ancestors when two siblings present.
	got = tx.ExtendTransaction(itemset.New(0, 1))
	if !got.Equal(itemset.New(0, 1, 8)) {
		t.Errorf("sibling extension = %v", got)
	}
}

func TestContainsAncestorPair(t *testing.T) {
	tx := smallTaxonomy(t)
	if !tx.ContainsAncestorPair(itemset.New(0, 8)) {
		t.Error("(0,8) is an ancestor pair")
	}
	if tx.ContainsAncestorPair(itemset.New(0, 1)) {
		t.Error("(0,1) are siblings, not ancestor pair")
	}
	if tx.ContainsAncestorPair(itemset.New(0, 9)) {
		t.Error("(0,9) unrelated")
	}
}

func TestMineGeneralizedRules(t *testing.T) {
	// Jacket and shirt each appear in half the transactions, never
	// together with enough support — but their parent "clothes" is in all
	// of them, so a generalized itemset (clothes, 3) becomes frequent.
	d := db.New(10)
	d.Append(1, itemset.New(0, 3))
	d.Append(2, itemset.New(1, 3))
	d.Append(3, itemset.New(0, 3))
	d.Append(4, itemset.New(1, 3))
	tx := smallTaxonomy(t)
	res, err := Mine(d, tx, Options{Mining: apriori.Options{AbsSupport: 4}})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range res.ByK[2] {
		if f.Items.Equal(itemset.New(3, 8)) {
			found = true
			if f.Count != 4 {
				t.Errorf("support(3,8) = %d, want 4", f.Count)
			}
		}
	}
	if !found {
		t.Errorf("generalized itemset (3,8) not found: %+v", res.ByK)
	}
	// The raw result contains (0,8) [jacket+clothes] at support 2 — the
	// filter must have pruned any such pair that was frequent; with
	// AbsSupport 4 none are, so PrunedAncestorPairs may be 0. Re-mine at
	// support 2 and verify pruning happens.
	res2, err := Mine(d, tx, Options{Mining: apriori.Options{AbsSupport: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if res2.PrunedAncestorPairs == 0 {
		t.Error("expected ancestor-pair pruning at support 2")
	}
	for k := range res2.ByK {
		for _, f := range res2.ByK[k] {
			if tx.ContainsAncestorPair(f.Items) {
				t.Errorf("ancestor pair survived filter: %v", f.Items)
			}
		}
	}
}

// TestMineSupportCeiling checks generalized mining inherits the shared
// fractional-support ceiling (apriori.CeilSupport) through its Mining
// options: 1% of 300 transactions is a minimum count of exactly 3.
func TestMineSupportCeiling(t *testing.T) {
	d := db.New(10)
	for i := 0; i < 300; i++ {
		d.Append(int64(i+1), itemset.New(3))
	}
	tx := smallTaxonomy(t)
	res, err := Mine(d, tx, Options{Mining: apriori.Options{MinSupport: 0.01}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Raw.MinCount != 3 {
		t.Errorf("0.01 × 300: MinCount = %d, want 3", res.Raw.MinCount)
	}
}

func TestMineParallelMatchesSequential(t *testing.T) {
	d, err := gen.Generate(gen.Params{N: 50, L: 12, I: 3, T: 6, D: 400, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	tx, err := Generate(GenParams{NumLeaves: 50, Fanout: 5, Levels: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Mine(d, tx, Options{Mining: apriori.Options{MinSupport: 0.03}})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Mine(d, tx, Options{Mining: apriori.Options{MinSupport: 0.03}, Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if seq.NumFrequent() != par.NumFrequent() {
		t.Errorf("seq %d vs par %d", seq.NumFrequent(), par.NumFrequent())
	}
}

func TestMineUniverseMismatch(t *testing.T) {
	d := db.New(100)
	d.Append(1, itemset.New(99))
	tx := smallTaxonomy(t)
	if _, err := Mine(d, tx, Options{}); err == nil {
		t.Error("universe mismatch should fail")
	}
}

func TestGenerateTaxonomyShape(t *testing.T) {
	tx, err := Generate(GenParams{NumLeaves: 20, Fanout: 4, Levels: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// 20 leaves → 5 level-1 categories → 2 level-2 categories = 27 items.
	if tx.NumItems() != 27 {
		t.Errorf("NumItems = %d, want 27", tx.NumItems())
	}
	// Every leaf has a parent; every leaf's chain terminates.
	for i := 0; i < 20; i++ {
		if tx.Parent[i] < 0 {
			t.Errorf("leaf %d unparented", i)
		}
		if d := tx.Depth(itemset.Item(i)); d < 1 || d > 2 {
			t.Errorf("leaf %d depth %d", i, d)
		}
	}
}

func TestGenerateTaxonomyValidation(t *testing.T) {
	bad := []GenParams{
		{NumLeaves: 0, Fanout: 2, Levels: 1},
		{NumLeaves: 5, Fanout: 1, Levels: 1},
		{NumLeaves: 5, Fanout: 2, Levels: 0},
	}
	for _, p := range bad {
		if _, err := Generate(p); err == nil {
			t.Errorf("params %+v should fail", p)
		}
	}
}

func TestInterest(t *testing.T) {
	// Build data where (jacket, 3) has exactly the support predicted from
	// (clothes, 3) — interest ≈ 1 — and where (shirt, 4) is surprising.
	d := db.New(10)
	// 8 transactions with clothes-item + 3.
	d.Append(1, itemset.New(0, 3))
	d.Append(2, itemset.New(0, 3))
	d.Append(3, itemset.New(1, 3))
	d.Append(4, itemset.New(1, 3))
	// shirt+4 always together; jacket never with 4.
	d.Append(5, itemset.New(1, 4))
	d.Append(6, itemset.New(1, 4))
	d.Append(7, itemset.New(0, 5))
	d.Append(8, itemset.New(0, 5))
	tx := smallTaxonomy(t)
	res, err := Mine(d, tx, Options{Mining: apriori.Options{AbsSupport: 1}})
	if err != nil {
		t.Fatal(err)
	}
	iJacket := Interest(res, tx, itemset.New(0, 3), d.Len())
	iShirt4 := Interest(res, tx, itemset.New(1, 4), d.Len())
	if iJacket <= 0 || iShirt4 <= 0 {
		t.Fatalf("interest not computed: %f %f", iJacket, iShirt4)
	}
	if iShirt4 <= iJacket {
		t.Errorf("shirt+4 (always together) should be more interesting: %f vs %f", iShirt4, iJacket)
	}
	// Itemset with no generalization → 0.
	if got := Interest(res, tx, itemset.New(3, 4), d.Len()); got != 0 {
		t.Errorf("ungeneralizable interest = %f", got)
	}
}
