package obs

import (
	"io"
	"sync"
	"testing"
	"time"
	"unsafe"
)

// TestWorkerPadding pins the Worker layout: workers live in a []Worker, so
// the falseshare rule (and the design) require the struct to tile whole
// 64-byte cache lines — one worker's hot counters must never share a line
// with a neighbour's.
func TestWorkerPadding(t *testing.T) {
	if sz := unsafe.Sizeof(Worker{}); sz%64 != 0 {
		t.Errorf("Worker is %d bytes, not a multiple of the 64-byte cache line", sz)
	}
	if sz := unsafe.Sizeof(event{}); sz != 32 {
		t.Errorf("event is %d bytes, want exactly 32 (segments must tile lines)", sz)
	}
}

// TestNilRecorderNoOps asserts the disabled-recorder contract: every method
// of a nil *Recorder and a nil *Worker is a no-op, so call sites need no
// guards and the counting kernel pays only a test-and-branch.
func TestNilRecorderNoOps(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Error("nil recorder reports Enabled")
	}
	if r.Procs() != 0 {
		t.Error("nil recorder has procs")
	}
	r.SetPhase(PhaseCount, 2)
	r.BeginPhase(PhaseCount, 2)
	r.EndPhase(PhaseCount, 2)
	r.IterStats(2, 10, 5)
	r.AddIdle(time.Second)
	r.SetGauge("x", 1)
	r.Reset()
	if r.NumEvents() != 0 {
		t.Error("nil recorder has events")
	}
	ran := false
	r.PoolWrap(0, func(int) { ran = true })
	if !ran {
		t.Error("nil PoolWrap did not run the closure")
	}
	w := r.Worker(0)
	if w != nil {
		t.Fatal("nil recorder returned a worker")
	}
	w.BeginChunk(2, 0)
	w.EndChunk(2, 0)
	w.Steal(2, 0, 1)
	w.Flush(2, 8)
	w.AddWork(100)
	if err := r.WriteTrace(io.Discard); err == nil {
		t.Error("WriteTrace on nil recorder should error")
	}
	s := r.Snapshot()
	if s == nil || len(s.Workers) != 0 {
		t.Error("nil Snapshot not empty")
	}
}

// TestRecordSteadyStateZeroAlloc is the overhead gate: once a worker's
// active segment exists, recording events performs no heap allocation.
func TestRecordSteadyStateZeroAlloc(t *testing.T) {
	r := NewRecorder(2)
	w := r.Worker(0)
	allocs := testing.AllocsPerRun(100, func() {
		w.BeginChunk(2, 7)
		w.Steal(2, 7, 1)
		w.Flush(2, 64)
		w.EndChunk(2, 7)
		w.AddWork(10)
	})
	if allocs != 0 {
		t.Errorf("steady-state recording: %v allocs/op, want 0", allocs)
	}
}

// TestRingSegmentBoundary crosses a segment boundary and checks no event is
// lost or reordered while the ring is below its cap.
func TestRingSegmentBoundary(t *testing.T) {
	r := NewRecorder(1)
	w := r.Worker(0)
	const n = segEvents + segEvents/2
	for i := 0; i < n; i++ {
		w.BeginChunk(2, i)
	}
	if got := r.NumEvents(); got != n {
		t.Fatalf("NumEvents = %d, want %d", got, n)
	}
	i := 0
	w.events(func(ev event) {
		if int(ev.arg) != i {
			t.Fatalf("event %d has chunk %d (order broken at segment boundary)", i, ev.arg)
		}
		i++
	})
	if got := w.claimed.Load(); got != n {
		t.Errorf("claimed = %d, want %d", got, n)
	}
}

// TestRingRecyclesOldest saturates a worker's ring past maxSegs and checks
// the oldest events are dropped (and counted) rather than the ring growing
// without bound or recording stopping.
func TestRingRecyclesOldest(t *testing.T) {
	r := NewRecorder(1)
	w := r.Worker(0)
	const n = (maxSegs + 4) * segEvents
	for i := 0; i < n; i++ {
		w.BeginChunk(2, i)
	}
	if got := r.NumEvents(); got > maxSegs*segEvents {
		t.Errorf("ring grew past its bound: %d events > %d", got, maxSegs*segEvents)
	}
	if w.dropped.Load() == 0 {
		t.Error("saturated ring reported no dropped events")
	}
	if got := w.dropped.Load() + int64(r.NumEvents()); got != n {
		t.Errorf("dropped+buffered = %d, want %d (events silently lost)", got, n)
	}
	// The surviving events must be the newest, still in order.
	first := int64(-1)
	prev := int64(-1)
	w.events(func(ev event) {
		if first < 0 {
			first = ev.arg
		}
		if ev.arg <= prev {
			t.Fatalf("recycled ring out of order: %d after %d", ev.arg, prev)
		}
		prev = ev.arg
	})
	if prev != n-1 {
		t.Errorf("newest surviving event is chunk %d, want %d", prev, n-1)
	}
	if dropped := w.dropped.Load(); first != dropped {
		t.Errorf("oldest surviving event is chunk %d, want %d (oldest must be dropped first)", first, dropped)
	}
}

// TestResetBanksSegments checks Reset retains allocated segments: a second
// run of the same shape records entirely from the free list.
func TestResetBanksSegments(t *testing.T) {
	r := NewRecorder(1)
	w := r.Worker(0)
	for i := 0; i < 3*segEvents; i++ {
		w.BeginChunk(2, i)
	}
	r.IterStats(2, 100, 50)
	r.SetGauge("g", 1)
	r.Reset()
	if r.NumEvents() != 0 || w.claimed.Load() != 0 {
		t.Fatal("Reset did not clear events/counters")
	}
	s := r.Snapshot()
	if len(s.Iters) != 0 || len(s.Gauges) != 0 {
		t.Fatal("Reset did not clear iteration stats/gauges")
	}
	// A full record/Reset cycle of the same shape must not allocate fresh
	// segments: the active segment plus the banked free list cover it.
	allocs := testing.AllocsPerRun(1, func() {
		for i := 0; i < 3*segEvents; i++ {
			w.BeginChunk(2, i)
		}
		r.Reset()
	})
	if allocs != 0 {
		t.Errorf("record/Reset cycle allocated %v times, want 0 (free list unused)", allocs)
	}
}

// TestSnapshotAggregates checks the counter plumbing end to end.
func TestSnapshotAggregates(t *testing.T) {
	r := NewRecorder(2)
	w0, w1 := r.Worker(0), r.Worker(1)
	w0.BeginChunk(2, 0)
	w0.EndChunk(2, 0)
	w0.AddWork(40)
	w1.Steal(2, 0, 0)
	w1.BeginChunk(2, 0)
	w1.EndChunk(2, 0)
	w1.Flush(2, 16)
	w1.AddWork(60)
	r.IterStats(2, 9, 4)
	r.AddIdle(5 * time.Millisecond)
	r.SetGauge(`miss{policy="x"}`, 0.25)
	r.SetGauge(`miss{policy="x"}`, 0.5) // overwrite, not append

	s := r.Snapshot()
	if len(s.Workers) != 2 {
		t.Fatalf("snapshot has %d workers", len(s.Workers))
	}
	if s.Workers[0].Claimed != 1 || s.Workers[0].WorkUnits != 40 {
		t.Errorf("worker 0 stats = %+v", s.Workers[0])
	}
	if s.Workers[1].Claimed != 1 || s.Workers[1].Stolen != 1 || s.Workers[1].Flushes != 1 || s.Workers[1].WorkUnits != 60 {
		t.Errorf("worker 1 stats = %+v", s.Workers[1])
	}
	if len(s.Iters) != 1 || s.Iters[0] != (IterStat{K: 2, Candidates: 9, Frequent: 4}) {
		t.Errorf("iters = %+v", s.Iters)
	}
	if s.IdleNS != int64(5*time.Millisecond) {
		t.Errorf("idle = %d", s.IdleNS)
	}
	if len(s.Gauges) != 1 || s.Gauges[0].Value != 0.5 {
		t.Errorf("gauges = %+v", s.Gauges)
	}
}

// TestScrapeDuringRecording is the scrape-safety gate: Snapshot and
// WriteMetrics must be callable while every worker track is recording at
// full rate — the armined /metrics endpoint scrapes mid-mine, with no pool
// barrier. The race detector vets the atomic counter reads; the assertions
// check a mid-flight snapshot is sane (monotone counters, no negative
// buffered-event gauge even while rings recycle).
func TestScrapeDuringRecording(t *testing.T) {
	const procs = 4
	r := NewRecorder(procs)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			w := r.Worker(p)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				w.BeginChunk(2, i)
				w.Steal(2, i, (p+1)%procs)
				w.Flush(2, 64)
				w.AddWork(10)
				w.EndChunk(2, i)
			}
		}(p)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			r.IterStats(2, i, i/2)
			r.SetGauge("live", float64(i))
		}
	}()

	var prev []WorkerStats
	for i := 0; i < 200; i++ {
		s := r.Snapshot()
		if err := s.WritePrometheus(io.Discard); err != nil {
			t.Fatal(err)
		}
		for p, ws := range s.Workers {
			if ws.Events < 0 {
				t.Fatalf("proc %d: negative buffered-event gauge %d", p, ws.Events)
			}
			if prev != nil && ws.Claimed < prev[p].Claimed {
				t.Fatalf("proc %d: claimed went backwards (%d after %d)", p, ws.Claimed, prev[p].Claimed)
			}
		}
		prev = s.Workers
	}
	close(stop)
	wg.Wait()
}
