// Package obs is the low-overhead observability layer of the mining stack:
// per-worker event buffers record phase begin/end, chunk claims, steals and
// counter flushes as monotonic-clock spans, exportable as a Chrome
// trace_event JSON timeline (one track per "processor", viewable in
// Perfetto), a Prometheus-text metrics snapshot, and runtime/pprof labels
// that segment CPU profiles by mining phase.
//
// The paper's entire argument is timing-shaped — per-phase breakdowns, idle
// time, locality — so every balance claim a scheduler PR makes should be
// backed by an exported timeline rather than ad-hoc prints. The layer is
// therefore built to be cheap enough to leave compiled into the hot paths:
//
//   - Events are fixed-size structs appended to preallocated per-worker
//     ring segments: recording is a monotonic clock read plus a bounds
//     check and a store, with zero heap allocations steady-state. When the
//     per-worker ring is saturated the oldest segment is recycled (dropped
//     event counts are reported, never silently lost).
//   - Worker records are cache-line padded (their size is a multiple of 64
//     bytes, checked by armlint's falseshare pass and a layout test), so
//     two workers' live counters never share a coherence line.
//   - A nil *Recorder is a valid disabled recorder: every method nil-checks
//     its receiver and returns immediately, so the wired-in call sites
//     compile to a test-and-branch and the counting kernel keeps its
//     0 allocs/op gate.
package obs

import (
	"context"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Phase identifies one phase of a mining iteration.
type Phase uint8

const (
	// PhaseF1 is the iteration-1 item counting pass.
	PhaseF1 Phase = iota
	// PhaseCandGen is candidate generation (join + prune).
	PhaseCandGen
	// PhaseTreeBuild is the parallel hash-tree insert.
	PhaseTreeBuild
	// PhaseCount is support counting, the dominant phase.
	PhaseCount
	// PhaseReduce is counter reduction plus frequent extraction.
	PhaseReduce
	numPhases
)

func (p Phase) String() string {
	switch p {
	case PhaseF1:
		return "f1"
	case PhaseCandGen:
		return "gen"
	case PhaseTreeBuild:
		return "build"
	case PhaseCount:
		return "count"
	case PhaseReduce:
		return "reduce"
	}
	return "unknown"
}

// SegKind identifies one out-of-core segment-pipeline span: loading and
// materializing a segment (prefetcher side), counting it (consumer side), or
// the consumer stalling on a load that has not finished (the overlap figure
// the prefetch benchmarks gate on).
type SegKind uint8

const (
	// SegLoad spans a segment read + materialize on the io track.
	SegLoad SegKind = iota
	// SegCount spans one segment's counting pass on the master track.
	SegCount
	// SegStall spans the consumer's wait for the next segment.
	SegStall
)

func (k SegKind) String() string {
	switch k {
	case SegLoad:
		return "seg_load"
	case SegCount:
		return "seg_count"
	case SegStall:
		return "prefetch_stall"
	}
	return "seg_unknown"
}

// Event kinds. Begin/end pairs form spans; steal and flush are instants
// (steals additionally export as flow arrows from victim to thief track).
const (
	evBeginPhase uint8 = iota
	evEndPhase
	evBeginChunk
	evEndChunk
	evSteal
	evFlush
	evBeginSeg
	evEndSeg
)

// event is one fixed-size record: 32 bytes, no pointers, so a segment is a
// single flat allocation and appending never writes a heap header.
type event struct {
	ts    int64 // monotonic ns since the recorder epoch
	arg   int64 // chunk id (chunk spans, steals) or flushed updates (flush)
	aux   int32 // victim processor (steals)
	k     int32 // iteration stamp
	kind  uint8
	phase uint8
	_     [6]byte // pad to 32 so segments tile cache lines exactly
}

const (
	// segEvents sizes one ring segment (32 B/event → 128 KiB per segment).
	segEvents = 4096
	// maxSegs bounds a worker's ring: past this the oldest segment is
	// recycled, keeping steady-state recording allocation-free and memory
	// bounded at ~4 MiB per worker.
	maxSegs = 32
)

// Worker is one processor's event buffer plus live counters. Exactly one
// goroutine (the owning pool worker) writes to it between barriers; the
// event segments (cur/full/free) are read only after a pool barrier, but
// the scalar counters are atomics so a live /metrics scrape (Snapshot,
// WriteMetrics) mid-mine reads them race-free — the writes stay
// single-owner and uncontended, so the atomic costs nothing on the hot
// path. The struct's size is a multiple of the 64-byte cache line —
// workers live in a []Worker — so one worker's hot counters never share a
// line with a neighbour's (armlint falseshare rule 1; TestWorkerPadding
// pins the layout).
type Worker struct {
	rec *Recorder
	id  int64
	//armlint:hot
	cur []event // active segment; append is alloc-free below cap
	//armlint:hot
	claimed atomic.Int64 // chunks claimed
	//armlint:hot
	stolen atomic.Int64 // chunks stolen from other workers
	//armlint:hot
	flushes atomic.Int64 // batched counter flushes
	//armlint:hot
	workUnits atomic.Int64 // deterministic work units
	//armlint:hot
	dropped atomic.Int64 // events recycled out of a saturated ring
	//armlint:hot
	recorded atomic.Int64 // events ever recorded (buffered = recorded − dropped)
	full     [][]event
	free     [][]event
	_        [56]byte // pad to a 64-byte multiple (falseshare rule 1)
}

// Recorder owns the per-worker buffers, the master track, and the
// aggregate (mutex-guarded, master-side) iteration statistics. The zero
// value is not usable; a nil *Recorder is the disabled recorder.
type Recorder struct {
	epoch   time.Time
	workers []Worker // procs worker tracks + one master track
	procs   int
	phase   atomic.Pointer[phaseLabel]

	mu sync.Mutex
	//armlint:guardedby mu
	iters []IterStat
	//armlint:guardedby mu
	idleNS int64
	//armlint:guardedby mu
	gauges []Gauge
}

// IterStat is the master-side record of one iteration.
type IterStat struct {
	K          int
	Candidates int
	Frequent   int
}

// Gauge is one exported metric sample. Series is the full Prometheus series
// name including labels, e.g. `armine_cachesim_miss_rate{policy="gpp"}`.
type Gauge struct {
	Series string
	Value  float64
}

// phaseLabel is the currently-announced phase: the span identity workers
// record and the pprof label set they run under.
type phaseLabel struct {
	ph     Phase
	k      int32
	labels pprof.LabelSet
}

// NewRecorder builds an enabled recorder for procs processors, with every
// worker's first ring segment preallocated.
func NewRecorder(procs int) *Recorder {
	if procs < 1 {
		procs = 1
	}
	r := &Recorder{epoch: time.Now(), procs: procs}
	// procs worker tracks, then the master track, then the io track (the
	// out-of-core prefetcher goroutine; empty unless a segment pipeline runs).
	r.workers = make([]Worker, procs+2)
	for i := range r.workers {
		w := &r.workers[i]
		w.rec = r
		w.id = int64(i)
		w.cur = make([]event, 0, segEvents)
		w.full = make([][]event, 0, maxSegs)
	}
	return r
}

// Enabled reports whether the recorder records anything.
func (r *Recorder) Enabled() bool { return r != nil }

// Procs returns the worker-track count (excluding the master track).
func (r *Recorder) Procs() int {
	if r == nil {
		return 0
	}
	return r.procs
}

// Worker returns processor p's buffer handle, or nil for a nil/out-of-range
// recorder — all Worker methods accept a nil receiver, so call sites need
// no further guards.
func (r *Recorder) Worker(p int) *Worker {
	if r == nil || p < 0 || p >= r.procs {
		return nil
	}
	return &r.workers[p]
}

// master returns the master track (phase spans recorded by the coordinating
// goroutine).
func (r *Recorder) master() *Worker { return &r.workers[r.procs] }

// Master returns the master track for coordinator-side span recording (e.g.
// the segment pipeline's seg_count/prefetch_stall spans, which nest inside
// the live counting-phase span). Nil for a disabled recorder; only the
// coordinating goroutine may write to it.
func (r *Recorder) Master() *Worker {
	if r == nil {
		return nil
	}
	return r.master()
}

// / IO returns the io track: the single-writer buffer of the out-of-core
// prefetcher goroutine (seg_load spans). Nil for a disabled recorder.
func (r *Recorder) IO() *Worker {
	if r == nil {
		return nil
	}
	return &r.workers[r.procs+1]
}

func (r *Recorder) now() int64 { return int64(time.Since(r.epoch)) }

// SetPhase announces the phase subsequent pool dispatches belong to: it is
// stamped on every worker's phase span and becomes the workers' pprof label
// set (phase=<name>, k=<iteration>), so CPU profiles segment by mining
// phase. Call from the coordinating goroutine between pool barriers.
func (r *Recorder) SetPhase(ph Phase, k int) {
	if r == nil {
		return
	}
	r.phase.Store(&phaseLabel{
		ph: ph, k: int32(k),
		labels: pprof.Labels("phase", ph.String(), "k", strconv.Itoa(k)),
	})
}

// PoolWrap is the sched.Pool wrap hook: it brackets each dispatched closure
// with a phase span on the worker's track and runs it under the announced
// pprof labels. Install with pool.SetWrap(rec.PoolWrap).
func (r *Recorder) PoolWrap(worker int, fn func(int)) {
	if r == nil {
		fn(worker)
		return
	}
	pl := r.phase.Load()
	if pl == nil || worker < 0 || worker >= r.procs {
		fn(worker)
		return
	}
	w := &r.workers[worker]
	w.record(event{ts: r.now(), k: pl.k, kind: evBeginPhase, phase: uint8(pl.ph)})
	pprof.Do(context.Background(), pl.labels, func(context.Context) { fn(worker) })
	w.record(event{ts: r.now(), k: pl.k, kind: evEndPhase, phase: uint8(pl.ph)})
}

// BeginPhase opens a phase span on the master track.
func (r *Recorder) BeginPhase(ph Phase, k int) {
	if r == nil {
		return
	}
	r.master().record(event{ts: r.now(), k: int32(k), kind: evBeginPhase, phase: uint8(ph)})
}

// EndPhase closes the master-track phase span opened by BeginPhase.
func (r *Recorder) EndPhase(ph Phase, k int) {
	if r == nil {
		return
	}
	r.master().record(event{ts: r.now(), k: int32(k), kind: evEndPhase, phase: uint8(ph)})
}

// IterStats records one iteration's candidate and frequent counts.
func (r *Recorder) IterStats(k, candidates, frequent int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.iters = append(r.iters, IterStat{K: k, Candidates: candidates, Frequent: frequent})
	r.mu.Unlock()
}

// AddIdle accumulates counting-phase idle wall-clock (Σ_p max−elapsed_p).
func (r *Recorder) AddIdle(d time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.idleNS += int64(d)
	r.mu.Unlock()
}

// SetGauge records (or overwrites) a metric sample under its full
// Prometheus series name, e.g. cachesim miss rates from a placement replay.
func (r *Recorder) SetGauge(series string, value float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.gauges {
		if r.gauges[i].Series == series {
			r.gauges[i].Value = value
			return
		}
	}
	r.gauges = append(r.gauges, Gauge{Series: series, Value: value})
}

// NumEvents returns the total buffered event count across all tracks. Call
// only after a pool barrier (single-writer buffers are otherwise live).
func (r *Recorder) NumEvents() int {
	if r == nil {
		return 0
	}
	var n int
	for i := range r.workers {
		w := &r.workers[i]
		n += len(w.cur)
		for _, s := range w.full {
			n += len(s)
		}
	}
	return n
}

// Reset clears all buffered events and counters, retaining every allocated
// segment for reuse — after the first run of a given shape, subsequent runs
// record without allocating at all.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	for i := range r.workers {
		w := &r.workers[i]
		for _, s := range w.full {
			w.free = append(w.free, s[:0])
		}
		w.full = w.full[:0]
		w.cur = w.cur[:0]
		w.claimed.Store(0)
		w.stolen.Store(0)
		w.flushes.Store(0)
		w.workUnits.Store(0)
		w.dropped.Store(0)
		w.recorded.Store(0)
	}
	r.mu.Lock()
	r.iters = r.iters[:0]
	r.idleNS = 0
	r.gauges = r.gauges[:0]
	r.mu.Unlock()
	r.epoch = time.Now()
}

// record appends one event, recycling the ring's oldest segment when
// saturated. Steady-state (segment already allocated) this performs no heap
// allocation: the append below is always within capacity, and the recorded
// counter is an uncontended atomic on the worker's own cache line.
func (w *Worker) record(ev event) {
	if len(w.cur) == cap(w.cur) {
		w.grow()
	}
	w.cur = append(w.cur, ev)
	w.recorded.Add(1)
}

// grow seals the active segment and installs an empty one: a freed segment
// if Reset banked any, a fresh allocation while the ring is still growing,
// or — once maxSegs is reached — the ring's oldest segment, whose events
// are dropped (counted in dropped, reported by Snapshot).
func (w *Worker) grow() {
	w.full = append(w.full, w.cur)
	switch {
	case len(w.free) > 0:
		w.cur = w.free[len(w.free)-1]
		w.free = w.free[:len(w.free)-1]
	case len(w.full) < maxSegs:
		w.cur = make([]event, 0, segEvents)
	default:
		oldest := w.full[0]
		copy(w.full, w.full[1:])
		w.full = w.full[:len(w.full)-1]
		w.dropped.Add(int64(len(oldest)))
		w.cur = oldest[:0]
	}
}

// BeginChunk opens a chunk span nested inside the current phase span.
func (w *Worker) BeginChunk(k, chunk int) {
	if w == nil {
		return
	}
	w.claimed.Add(1)
	w.record(event{ts: w.rec.now(), arg: int64(chunk), k: int32(k), kind: evBeginChunk, phase: uint8(PhaseCount)})
}

// EndChunk closes the chunk span opened by BeginChunk.
func (w *Worker) EndChunk(k, chunk int) {
	if w == nil {
		return
	}
	w.record(event{ts: w.rec.now(), arg: int64(chunk), k: int32(k), kind: evEndChunk, phase: uint8(PhaseCount)})
}

// Steal records that this worker took chunk from victim's deque; the trace
// export draws it as a flow arrow from the victim's track to this one.
func (w *Worker) Steal(k, chunk, victim int) {
	if w == nil {
		return
	}
	w.stolen.Add(1)
	w.record(event{ts: w.rec.now(), arg: int64(chunk), aux: int32(victim), k: int32(k), kind: evSteal, phase: uint8(PhaseCount)})
}

// Flush records one batched counter flush of n buffered updates.
func (w *Worker) Flush(k, n int) {
	if w == nil {
		return
	}
	w.flushes.Add(1)
	w.record(event{ts: w.rec.now(), arg: int64(n), k: int32(k), kind: evFlush, phase: uint8(PhaseCount)})
}

// BeginSeg opens a segment-pipeline span (seg_load / seg_count /
// prefetch_stall) for segment seg on this track.
func (w *Worker) BeginSeg(kind SegKind, seg int) {
	if w == nil {
		return
	}
	w.record(event{ts: w.rec.now(), arg: int64(seg), kind: evBeginSeg, phase: uint8(kind)})
}

// EndSeg closes the span opened by BeginSeg.
func (w *Worker) EndSeg(kind SegKind, seg int) {
	if w == nil {
		return
	}
	w.record(event{ts: w.rec.now(), arg: int64(seg), kind: evEndSeg, phase: uint8(kind)})
}

// AddWork accumulates deterministic work units counted by this worker.
func (w *Worker) AddWork(units int64) {
	if w == nil {
		return
	}
	w.workUnits.Add(units)
}

// events returns the worker's buffered events in recording order.
func (w *Worker) events(yield func(event)) {
	for _, s := range w.full {
		for i := range s {
			yield(s[i])
		}
	}
	for i := range w.cur {
		yield(w.cur[i])
	}
}
