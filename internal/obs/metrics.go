package obs

import (
	"fmt"
	"io"
)

// WorkerStats is one processor's aggregated counters.
type WorkerStats struct {
	Proc      int
	Claimed   int64 // chunks claimed
	Stolen    int64 // chunks stolen from other workers
	Flushes   int64 // batched counter flushes
	WorkUnits int64 // deterministic work units
	Events    int   // buffered events on this track
	Dropped   int64 // events recycled out of a saturated ring
}

// Snapshot is a point-in-time aggregate of everything the recorder holds,
// safe to serialize or assert against. Unlike the trace export (which walks
// the single-writer ring segments and still requires a pool barrier), a
// Snapshot may be taken while a mine is running: the per-worker counters
// are atomics, and the master-side statistics are mutex-guarded, so a live
// /metrics scrape observes a consistent-enough view without synchronizing
// with the workers.
type Snapshot struct {
	Procs   int
	Workers []WorkerStats // one entry per processor (master track excluded)
	Iters   []IterStat
	IdleNS  int64
	Gauges  []Gauge
}

// Snapshot aggregates the per-worker counters and master-side statistics.
// Safe to call concurrently with a running mine; after a pool barrier it is
// exact (the post-barrier values are bit-identical to the pre-atomic
// implementation — TestObsEquivalence pins this).
func (r *Recorder) Snapshot() *Snapshot {
	if r == nil {
		return &Snapshot{}
	}
	s := &Snapshot{Procs: r.procs}
	for p := 0; p < r.procs; p++ {
		w := &r.workers[p]
		// dropped is loaded before recorded: recorded only grows, so the
		// buffered-event gauge (recorded − dropped) can never go negative
		// even when a recycle lands between the two loads.
		dropped := w.dropped.Load()
		s.Workers = append(s.Workers, WorkerStats{
			Proc: p, Claimed: w.claimed.Load(), Stolen: w.stolen.Load(),
			Flushes: w.flushes.Load(), WorkUnits: w.workUnits.Load(),
			Events: int(w.recorded.Load() - dropped), Dropped: dropped,
		})
	}
	r.mu.Lock()
	s.Iters = append(s.Iters, r.iters...)
	s.IdleNS = r.idleNS
	s.Gauges = append(s.Gauges, r.gauges...)
	r.mu.Unlock()
	return s
}

// WriteMetrics renders the snapshot in Prometheus text exposition format:
// per-processor chunk/steal/flush/work counters, counting idle time, per-k
// candidate and frequent series, and any gauges (e.g. cachesim miss rates
// when a placement replay ran). Output order is deterministic. Safe to call
// concurrently with a running mine — this is the armined /metrics scrape
// path.
func (r *Recorder) WriteMetrics(w io.Writer) error {
	return r.Snapshot().WritePrometheus(w)
}

// WritePrometheus renders the snapshot in Prometheus text format.
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	series := func(name, help, typ string, emit func(out io.Writer)) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		emit(w)
	}
	series("armine_chunks_claimed_total", "counting chunks claimed per processor", "counter", func(out io.Writer) {
		for _, ws := range s.Workers {
			fmt.Fprintf(out, "armine_chunks_claimed_total{proc=\"%d\"} %d\n", ws.Proc, ws.Claimed)
		}
	})
	series("armine_steals_total", "chunks stolen from another processor's deque", "counter", func(out io.Writer) {
		for _, ws := range s.Workers {
			fmt.Fprintf(out, "armine_steals_total{proc=\"%d\"} %d\n", ws.Proc, ws.Stolen)
		}
	})
	series("armine_batch_flushes_total", "batched counter flushes per processor", "counter", func(out io.Writer) {
		for _, ws := range s.Workers {
			fmt.Fprintf(out, "armine_batch_flushes_total{proc=\"%d\"} %d\n", ws.Proc, ws.Flushes)
		}
	})
	series("armine_work_units_total", "deterministic counting work units per processor", "counter", func(out io.Writer) {
		for _, ws := range s.Workers {
			fmt.Fprintf(out, "armine_work_units_total{proc=\"%d\"} %d\n", ws.Proc, ws.WorkUnits)
		}
	})
	series("armine_trace_events", "buffered trace events per processor track", "gauge", func(out io.Writer) {
		for _, ws := range s.Workers {
			fmt.Fprintf(out, "armine_trace_events{proc=\"%d\"} %d\n", ws.Proc, ws.Events)
		}
	})
	series("armine_trace_events_dropped_total", "events recycled out of saturated ring buffers", "counter", func(out io.Writer) {
		for _, ws := range s.Workers {
			fmt.Fprintf(out, "armine_trace_events_dropped_total{proc=\"%d\"} %d\n", ws.Proc, ws.Dropped)
		}
	})
	series("armine_count_idle_ns_total", "summed counting-phase wall-clock idle (Σ_p max−elapsed_p)", "counter", func(out io.Writer) {
		fmt.Fprintf(out, "armine_count_idle_ns_total %d\n", s.IdleNS)
	})
	series("armine_candidates", "candidate itemsets per iteration", "gauge", func(out io.Writer) {
		for _, it := range s.Iters {
			fmt.Fprintf(out, "armine_candidates{k=\"%d\"} %d\n", it.K, it.Candidates)
		}
	})
	series("armine_frequent", "frequent itemsets per iteration", "gauge", func(out io.Writer) {
		for _, it := range s.Iters {
			fmt.Fprintf(out, "armine_frequent{k=\"%d\"} %d\n", it.K, it.Frequent)
		}
	})
	for _, g := range s.Gauges {
		fmt.Fprintf(w, "%s %g\n", g.Series, g.Value)
	}
	return nil
}
