package obs

import (
	"bufio"
	"fmt"
	"io"
)

// WriteTrace exports every buffered event as Chrome trace_event JSON
// (loadable in Perfetto / chrome://tracing). The timeline has one track
// ("thread") per processor plus a "master" track for the coordinating
// goroutine: phase spans are B/E duration events, chunk spans nest inside
// them, counter flushes are instants, and steals are flow arrows drawn from
// the victim's track to the thief's chunk span.
//
// Call only after mining completes (the per-worker buffers are single-writer
// between pool barriers). The export path allocates freely — it is off the
// hot path by construction.
func (r *Recorder) WriteTrace(w io.Writer) error {
	if r == nil {
		return fmt.Errorf("obs: WriteTrace on a nil (disabled) recorder")
	}
	bw := bufio.NewWriter(w)
	bw.WriteString(`{"displayTimeUnit":"ns","traceEvents":[`)
	first := true
	emit := func(format string, args ...any) {
		if !first {
			bw.WriteByte(',')
		}
		first = false
		bw.WriteByte('\n')
		fmt.Fprintf(bw, format, args...)
	}

	// Track metadata: stable names so Perfetto shows "proc N" lanes. The io
	// track (the out-of-core prefetcher) is emitted only when it recorded
	// anything, so in-RAM traces keep their historical track set.
	emit(`{"name":"process_name","ph":"M","pid":1,"args":{"name":"armine"}}`)
	ioTrack := r.procs + 1
	ioUsed := len(r.workers[ioTrack].cur) > 0 || len(r.workers[ioTrack].full) > 0
	for p := range r.workers {
		var name string
		switch {
		case p < r.procs:
			name = fmt.Sprintf("proc %d", p)
		case p == r.procs:
			name = "master"
		default:
			if !ioUsed {
				continue
			}
			name = "io"
		}
		emit(`{"name":"thread_name","ph":"M","pid":1,"tid":%d,"args":{"name":%q}}`, p, name)
		emit(`{"name":"thread_sort_index","ph":"M","pid":1,"tid":%d,"args":{"sort_index":%d}}`, p, p)
	}

	flowID := 0
	for p := range r.workers {
		tid := p
		r.workers[p].events(func(ev event) {
			us := float64(ev.ts) / 1e3 // trace_event ts is in microseconds
			switch ev.kind {
			case evBeginPhase:
				emit(`{"name":%q,"cat":"phase","ph":"B","pid":1,"tid":%d,"ts":%.3f,"args":{"k":%d}}`,
					Phase(ev.phase).String(), tid, us, ev.k)
			case evEndPhase:
				emit(`{"ph":"E","pid":1,"tid":%d,"ts":%.3f}`, tid, us)
			case evBeginChunk:
				emit(`{"name":"chunk","cat":"chunk","ph":"B","pid":1,"tid":%d,"ts":%.3f,"args":{"chunk":%d,"k":%d}}`,
					tid, us, ev.arg, ev.k)
			case evEndChunk:
				emit(`{"ph":"E","pid":1,"tid":%d,"ts":%.3f}`, tid, us)
			case evSteal:
				// Flow arrow: start bound to whatever span is live on the
				// victim's track at the steal instant (its phase span at
				// minimum), finish bound to the thief's next chunk span.
				flowID++
				emit(`{"name":"steal","cat":"steal","ph":"s","id":%d,"pid":1,"tid":%d,"ts":%.3f,"args":{"chunk":%d,"k":%d}}`,
					flowID, ev.aux, us, ev.arg, ev.k)
				emit(`{"name":"steal","cat":"steal","ph":"f","bp":"e","id":%d,"pid":1,"tid":%d,"ts":%.3f}`,
					flowID, tid, us)
			case evFlush:
				emit(`{"name":"flush","cat":"flush","ph":"i","s":"t","pid":1,"tid":%d,"ts":%.3f,"args":{"updates":%d,"k":%d}}`,
					tid, us, ev.arg, ev.k)
			case evBeginSeg:
				emit(`{"name":%q,"cat":"seg","ph":"B","pid":1,"tid":%d,"ts":%.3f,"args":{"seg":%d}}`,
					SegKind(ev.phase).String(), tid, us, ev.arg)
			case evEndSeg:
				emit(`{"ph":"E","pid":1,"tid":%d,"ts":%.3f}`, tid, us)
			}
		})
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}
