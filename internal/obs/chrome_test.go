package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// traceDoc mirrors the Chrome trace_event JSON envelope.
type traceDoc struct {
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	TraceEvents     []traceEvent `json:"traceEvents"`
}

type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`
	ID   int            `json:"id"`
	Bp   string         `json:"bp"`
	Args map[string]any `json:"args"`
}

// record a small but complete run shape: a phase span per track enclosing
// chunk spans, one steal, one flush, plus master-track phase spans.
func recordSample(t *testing.T) *Recorder {
	t.Helper()
	r := NewRecorder(2)
	r.SetPhase(PhaseCount, 2)
	r.BeginPhase(PhaseCount, 2)
	for p := 0; p < 2; p++ {
		p := p
		r.PoolWrap(p, func(int) {
			w := r.Worker(p)
			w.BeginChunk(2, 2*p)
			w.Flush(2, 32)
			w.EndChunk(2, 2*p)
			if p == 1 {
				w.Steal(2, 3, 0)
				w.BeginChunk(2, 3)
				w.EndChunk(2, 3)
			}
		})
	}
	r.EndPhase(PhaseCount, 2)
	return r
}

func TestWriteTraceValidJSON(t *testing.T) {
	r := recordSample(t)
	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc traceDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}

	// Metadata: process name plus thread name/sort for every track
	// including the master.
	names := map[int]string{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" && ev.Name == "thread_name" {
			names[ev.Tid] = ev.Args["name"].(string)
		}
	}
	if names[0] != "proc 0" || names[1] != "proc 1" || names[2] != "master" {
		t.Errorf("thread names = %v", names)
	}

	// B/E spans must balance per track and never go negative (nesting).
	depth := map[int]int{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "B":
			depth[ev.Tid]++
		case "E":
			depth[ev.Tid]--
			if depth[ev.Tid] < 0 {
				t.Fatalf("tid %d: E without matching B", ev.Tid)
			}
		}
	}
	for tid, d := range depth {
		if d != 0 {
			t.Errorf("tid %d: %d unclosed spans", tid, d)
		}
	}

	// The steal must export as an s/f flow pair sharing an id, started on
	// the victim's track and finished on the thief's.
	var starts, finishes []traceEvent
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "s":
			starts = append(starts, ev)
		case "f":
			finishes = append(finishes, ev)
		}
	}
	if len(starts) != 1 || len(finishes) != 1 {
		t.Fatalf("flow events: %d starts, %d finishes, want 1/1", len(starts), len(finishes))
	}
	if starts[0].ID != finishes[0].ID {
		t.Error("flow pair ids differ")
	}
	if starts[0].Tid != 0 || finishes[0].Tid != 1 {
		t.Errorf("flow runs tid %d → %d, want victim 0 → thief 1", starts[0].Tid, finishes[0].Tid)
	}
	if finishes[0].Bp != "e" {
		t.Error(`flow finish missing bp:"e" (must bind to enclosing slice)`)
	}

	// Flush instants carry their update count.
	var flushes int
	for _, ev := range doc.TraceEvents {
		if ev.Cat == "flush" {
			flushes++
			if ev.Ph != "i" || ev.Args["updates"].(float64) != 32 {
				t.Errorf("flush event malformed: %+v", ev)
			}
		}
	}
	if flushes != 2 {
		t.Errorf("%d flush instants, want 2", flushes)
	}

	// Chunk spans: BeginChunk count per tid must match the claimed counters.
	chunkB := map[int]int64{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "B" && ev.Cat == "chunk" {
			chunkB[ev.Tid]++
		}
	}
	for p := 0; p < 2; p++ {
		if claimed := r.Worker(p).claimed.Load(); chunkB[p] != claimed {
			t.Errorf("tid %d: %d chunk spans, claimed counter says %d", p, chunkB[p], claimed)
		}
	}

	// Timestamps per track are non-decreasing (recording order).
	last := map[int]float64{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" {
			continue
		}
		if ev.Ts < last[ev.Tid] {
			t.Fatalf("tid %d: ts went backwards (%f after %f)", ev.Tid, ev.Ts, last[ev.Tid])
		}
		last[ev.Tid] = ev.Ts
	}
}

func TestWriteMetricsFormat(t *testing.T) {
	r := recordSample(t)
	r.IterStats(2, 12, 7)
	r.SetGauge(`armine_cachesim_miss_rate{policy="gpp"}`, 0.125)
	var buf bytes.Buffer
	if err := r.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`armine_chunks_claimed_total{proc="0"} 1`,
		`armine_chunks_claimed_total{proc="1"} 2`,
		`armine_steals_total{proc="1"} 1`,
		`armine_batch_flushes_total{proc="0"} 1`,
		`armine_candidates{k="2"} 12`,
		`armine_frequent{k="2"} 7`,
		`armine_cachesim_miss_rate{policy="gpp"} 0.125`,
		"# TYPE armine_steals_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q\n%s", want, out)
		}
	}
}
