package serve

import (
	"time"

	"repro/internal/apriori"
	"repro/internal/db"
	"repro/internal/itemset"
	"repro/internal/rules"
)

// Snapshot is one published mining generation: a frozen mining result, its
// pre-generated rule list, and a per-item query index. Snapshots are
// immutable after newSnapshot returns — handlers read them lock-free behind
// the server's atomic pointer, so nothing here may ever be mutated.
type Snapshot struct {
	// Generation counts publishes, starting at 1.
	Generation int64
	// DBLen is the transaction-prefix length this snapshot covers: queries
	// trail ingestion by exactly (live length − DBLen) transactions.
	//
	//armlint:wide
	DBLen int64
	// NumItems is the item-universe bound observed in the prefix.
	NumItems int
	// Engine names the registry engine the planner (or pin) chose.
	Engine string
	// MinedAt and Wall record when and how long the mine ran.
	MinedAt time.Time
	Wall    time.Duration

	// Result is the frozen frequent-itemset lattice.
	Result *apriori.Result
	// Rules is the pre-generated rule list in the deterministic sortRules
	// order (confidence desc, support desc, antecedent, consequent), so
	// every query slices a prefix-consistent ranking.
	Rules []rules.Rule

	// byItem maps each item to the indices (ascending, hence still in rule
	// order) of rules containing it in antecedent or consequent — the
	// /rules?item= filter without an O(|Rules|) scan per query.
	byItem map[itemset.Item][]int32
}

// newSnapshot freezes a mining result into a publishable snapshot.
func newSnapshot(gen int64, view *db.Database, engineName string, res *apriori.Result, rs []rules.Rule, wall time.Duration) *Snapshot {
	byItem := make(map[itemset.Item][]int32)
	for i, r := range rs {
		// Antecedent and consequent are disjoint, so no dedup needed.
		for _, it := range r.Antecedent {
			byItem[it] = append(byItem[it], int32(i))
		}
		for _, it := range r.Consequent {
			byItem[it] = append(byItem[it], int32(i))
		}
	}
	return &Snapshot{
		Generation: gen,
		DBLen:      int64(view.Len()),
		NumItems:   view.NumItems(),
		Engine:     engineName,
		MinedAt:    time.Now(),
		Wall:       wall,
		Result:     res,
		Rules:      rs,
		byItem:     byItem,
	}
}

// QueryRules returns up to limit rules at or above minConf, optionally
// restricted to rules mentioning item (item < 0 means no filter). The
// pre-sorted rule list makes the confidence cut a prefix: iteration stops
// at the first rule below threshold. The returned slice is freshly
// allocated; the rules it holds alias the immutable snapshot.
func (s *Snapshot) QueryRules(minConf float64, item int64, limit int) []rules.Rule {
	if limit <= 0 {
		limit = len(s.Rules)
	}
	out := []rules.Rule{}
	if item >= 0 {
		for _, idx := range s.byItem[itemset.Item(item)] {
			r := s.Rules[idx]
			if !rules.MeetsConfidence(r.Confidence, minConf) {
				break // indices ascend, rules sorted by confidence desc
			}
			out = append(out, r)
			if len(out) >= limit {
				break
			}
		}
		return out
	}
	for _, r := range s.Rules {
		if !rules.MeetsConfidence(r.Confidence, minConf) {
			break
		}
		out = append(out, r)
		if len(out) >= limit {
			break
		}
	}
	return out
}

// QueryItemsets returns up to limit frequent k-itemsets (all sizes when
// k <= 0), in the result's canonical lexicographic-by-level order.
func (s *Snapshot) QueryItemsets(k, limit int) []apriori.FrequentItemset {
	if limit <= 0 {
		limit = 1 << 20
	}
	out := []apriori.FrequentItemset{}
	if k > 0 {
		if k >= len(s.Result.ByK) {
			return out
		}
		fk := s.Result.ByK[k]
		if len(fk) > limit {
			fk = fk[:limit]
		}
		return append(out, fk...)
	}
	for _, fk := range s.Result.ByK {
		for _, f := range fk {
			if len(out) >= limit {
				return out
			}
			out = append(out, f)
		}
	}
	return out
}
