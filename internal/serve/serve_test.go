package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/db"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/itemset"
	"repro/internal/rules"
)

// testConfig is a small, fast daemon configuration shared by the tests.
func testConfig() Config {
	return Config{
		Support:        0.05,
		MinConfidence:  0.5,
		Procs:          2,
		RemineInterval: time.Millisecond,
	}
}

// genBatch renders a seeded Quest workload as the daemon's wire format.
func genBatch(t *testing.T, p gen.Params) ([][]int64, *db.Database) {
	t.Helper()
	d, err := gen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	txs := make([][]int64, d.Len())
	for i := 0; i < d.Len(); i++ {
		items := d.Items(i)
		row := make([]int64, len(items))
		for j, it := range items {
			row[j] = int64(it)
		}
		txs[i] = row
	}
	return txs, d
}

// waitPublished polls until a snapshot covering want transactions appears.
func waitPublished(t *testing.T, s *Server, want int64) *Snapshot {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if snap := s.Published(); snap != nil && snap.DBLen >= want {
			return snap
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("no snapshot covering %d transactions published in time", want)
	return nil
}

// postJSON posts a value to the test server and decodes the response.
func postJSON(t *testing.T, url string, body any, out any) int {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode response: %v", err)
		}
	}
	return resp.StatusCode
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode response: %v", err)
		}
	}
	return resp.StatusCode
}

// TestPublishedSnapshotMatchesBatch is the service's exactness guarantee:
// the snapshot armined publishes after ingesting a workload must be
// bit-identical — same frequent itemsets, same counts, same rules in the
// same order — to a batch engine.Dispatch + rules.GenerateFast run over the
// same transactions with the same plan.
func TestPublishedSnapshotMatchesBatch(t *testing.T) {
	txs, _ := genBatch(t, gen.Params{T: 8, I: 4, D: 300, Seed: 21})

	s := New(testConfig())
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go s.Run(ctx)

	batch, err := s.ValidateBatch(txs)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := s.Ingest(batch); err != nil || n != len(txs) {
		t.Fatalf("Ingest = (%d, %v), want (%d, nil)", n, err, len(txs))
	}
	snap := waitPublished(t, s, int64(len(txs)))

	// Batch reference: the same transactions, the same TIDs, the daemon's
	// own plan for this exact view shape.
	ref := db.New(0)
	for i, set := range batch {
		ref.Append(int64(i), set)
	}
	name, spec := s.Plan(ref)
	if snap.Engine != name {
		t.Fatalf("snapshot engine %q != batch plan %q", snap.Engine, name)
	}
	res, _, err := engine.Dispatch(context.Background(), name, ref, nil, spec)
	if err != nil {
		t.Fatal(err)
	}
	wantRules := rules.GenerateFast(res, rules.Options{
		MinConfidence: s.cfg.MinConfidence,
		DBSize:        int64(ref.Len()),
		MaxConsequent: s.cfg.MaxConsequent,
	})

	if !reflect.DeepEqual(snap.Result.ByK, res.ByK) {
		t.Error("published frequent itemsets differ from batch reference")
	}
	if snap.Result.MinCount != res.MinCount {
		t.Errorf("published MinCount %d != batch %d", snap.Result.MinCount, res.MinCount)
	}
	if len(snap.Rules) != len(wantRules) {
		t.Fatalf("published %d rules, batch reference %d", len(snap.Rules), len(wantRules))
	}
	for i := range wantRules {
		if !reflect.DeepEqual(snap.Rules[i], wantRules[i]) {
			t.Fatalf("rule %d differs:\n  published: %+v\n  batch:     %+v", i, snap.Rules[i], wantRules[i])
		}
	}
}

// TestIncrementalRemines ingests in waves and checks generations advance
// and each published snapshot covers a growing prefix.
func TestIncrementalRemines(t *testing.T) {
	txs, _ := genBatch(t, gen.Params{T: 6, I: 3, D: 300, Seed: 5})

	s := New(testConfig())
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go s.Run(ctx)

	var lastGen int64
	total := 0
	for _, cut := range []int{100, 200, 300} {
		batch, err := s.ValidateBatch(txs[total:cut])
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Ingest(batch); err != nil {
			t.Fatal(err)
		}
		total = cut
		snap := waitPublished(t, s, int64(total))
		if snap.Generation <= lastGen {
			t.Fatalf("generation did not advance: %d after %d", snap.Generation, lastGen)
		}
		if snap.DBLen < int64(total) {
			t.Fatalf("snapshot covers %d transactions, ingested %d", snap.DBLen, total)
		}
		lastGen = snap.Generation
	}
}

// TestHTTPEndToEnd drives the full HTTP surface: ingest, query rules and
// itemsets with filters, scrape metrics, health.
func TestHTTPEndToEnd(t *testing.T) {
	txs, _ := genBatch(t, gen.Params{T: 8, I: 4, D: 200, Seed: 9})

	s := New(testConfig())
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go s.Run(ctx)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var ir ingestResponse
	if code := postJSON(t, ts.URL+"/ingest", map[string][][]int64{"transactions": txs}, &ir); code != http.StatusAccepted {
		t.Fatalf("ingest: HTTP %d", code)
	}
	if ir.Accepted != len(txs) {
		t.Fatalf("accepted %d, want %d", ir.Accepted, len(txs))
	}
	waitPublished(t, s, int64(len(txs)))

	var rr rulesResponse
	if code := getJSON(t, ts.URL+"/rules", &rr); code != http.StatusOK {
		t.Fatalf("/rules: HTTP %d", code)
	}
	if rr.Count != len(rr.Rules) {
		t.Fatalf("/rules count %d != len %d", rr.Count, len(rr.Rules))
	}
	for _, r := range rr.Rules {
		if !rules.MeetsConfidence(r.Confidence, s.cfg.MinConfidence) {
			t.Fatalf("rule below configured confidence: %+v", r)
		}
	}
	// Tightened confidence returns a prefix of the full list.
	var tight rulesResponse
	getJSON(t, ts.URL+"/rules?minconf=0.9", &tight)
	if tight.Count > rr.Count {
		t.Fatalf("tightened query returned more rules (%d > %d)", tight.Count, rr.Count)
	}
	for _, r := range tight.Rules {
		if !rules.MeetsConfidence(r.Confidence, 0.9) {
			t.Fatalf("minconf=0.9 returned %+v", r)
		}
	}
	// Item filter: every returned rule mentions the item.
	if len(rr.Rules) > 0 {
		item := rr.Rules[0].Antecedent[0]
		var filt rulesResponse
		getJSON(t, fmt.Sprintf("%s/rules?item=%d", ts.URL, item), &filt)
		if filt.Count == 0 {
			t.Fatalf("item filter %d returned nothing", item)
		}
		for _, r := range filt.Rules {
			found := false
			for _, v := range append(append([]int64{}, r.Antecedent...), r.Consequent...) {
				if v == item {
					found = true
				}
			}
			if !found {
				t.Fatalf("item=%d filter returned rule without it: %+v", item, r)
			}
		}
	}
	// Limit caps the result.
	var lim rulesResponse
	getJSON(t, ts.URL+"/rules?limit=1", &lim)
	if rr.Count > 0 && lim.Count != 1 {
		t.Fatalf("limit=1 returned %d rules", lim.Count)
	}

	var is itemsetsResponse
	if code := getJSON(t, ts.URL+"/itemsets", &is); code != http.StatusOK {
		t.Fatalf("/itemsets: HTTP %d", code)
	}
	if is.Count == 0 {
		t.Fatal("/itemsets returned no frequent itemsets")
	}
	var is1 itemsetsResponse
	getJSON(t, ts.URL+"/itemsets?k=1", &is1)
	for _, f := range is1.Itemsets {
		if len(f.Items) != 1 {
			t.Fatalf("k=1 returned %v", f.Items)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"armined_ingested_transactions_total", "armined_remines_total",
		"armined_snapshot_generation", "armine_chunks_claimed_total",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}

	var h healthzResponse
	if code := getJSON(t, ts.URL+"/healthz", &h); code != http.StatusOK || h.Status != "ok" {
		t.Fatalf("/healthz: HTTP %d, %+v", code, h)
	}
	if h.Ingested != int64(len(txs)) {
		t.Fatalf("/healthz ingested %d, want %d", h.Ingested, len(txs))
	}
}

// TestIngestValidation exercises the request-rejection paths.
func TestIngestValidation(t *testing.T) {
	cfg := testConfig()
	cfg.MaxBatch = 4
	cfg.MaxTxItems = 3
	cfg.MaxItem = 100
	cfg.MaxBodyBytes = 1 << 16
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name string
		body any
		want int
	}{
		{"empty batch", map[string][][]int64{"transactions": {}}, http.StatusBadRequest},
		{"batch too large", map[string][][]int64{"transactions": {{1}, {1}, {1}, {1}, {1}}}, http.StatusBadRequest},
		{"empty transaction", map[string][][]int64{"transactions": {{}}}, http.StatusBadRequest},
		{"transaction too long", map[string][][]int64{"transactions": {{1, 2, 3, 4}}}, http.StatusBadRequest},
		{"negative item", map[string][][]int64{"transactions": {{-1}}}, http.StatusBadRequest},
		{"item out of universe", map[string][][]int64{"transactions": {{100}}}, http.StatusBadRequest},
		{"unknown field", map[string]string{"nope": "x"}, http.StatusBadRequest},
		{"ok", map[string][][]int64{"transactions": {{1, 2}, {2, 1}}}, http.StatusAccepted},
	}
	for _, tc := range cases {
		if code := postJSON(t, ts.URL+"/ingest", tc.body, nil); code != tc.want {
			t.Errorf("%s: HTTP %d, want %d", tc.name, code, tc.want)
		}
	}
	// A rejected batch must be all-or-nothing: only the final ok case landed.
	if got := s.Ingested(); got != 2 {
		t.Fatalf("ingested %d transactions, want 2 (rejected batches must not partially land)", got)
	}
	// GET on a POST route and queries before any snapshot.
	resp, err := http.Get(ts.URL + "/ingest")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /ingest: HTTP %d, want 405", resp.StatusCode)
	}
	if code := getJSON(t, ts.URL+"/rules", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("/rules before first snapshot: HTTP %d, want 503", code)
	}
}

// TestIngestArenaOverflow pins the overflow contract: when the item arena
// fills mid-batch, the prefix that fit stays ingested, the HTTP status is
// 507, and the daemon keeps serving.
func TestIngestArenaOverflow(t *testing.T) {
	restore := db.SetArenaLimitForTesting(10)
	defer restore()

	s := New(testConfig())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// 4 transactions × 3 items: the 4th would need 12 > 10 arena slots.
	body := map[string][][]int64{"transactions": {{1, 2, 3}, {4, 5, 6}, {7, 8, 9}, {1, 4, 7}}}
	var ir ingestResponse
	if code := postJSON(t, ts.URL+"/ingest", body, &ir); code != http.StatusInsufficientStorage {
		t.Fatalf("overflow ingest: HTTP %d, want 507", code)
	}
	if ir.Accepted != 3 {
		t.Fatalf("accepted %d, want 3 (durable prefix)", ir.Accepted)
	}
	if ir.Error == "" {
		t.Fatal("overflow response missing error")
	}
	if s.Ingested() != 3 {
		t.Fatalf("Ingested() = %d, want 3", s.Ingested())
	}
}

// TestConcurrentQueriesDuringIngestion is the race test the tentpole
// demands: with -race enabled, hammer /ingest, /rules, /itemsets, /metrics
// and /healthz concurrently while the background loop re-mines. Correctness
// here is "no data race, no torn snapshot": every rules response must be
// internally consistent (count matches, confidences above threshold).
func TestConcurrentQueriesDuringIngestion(t *testing.T) {
	txs, _ := genBatch(t, gen.Params{T: 6, I: 3, D: 600, Seed: 13})

	s := New(testConfig())
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go s.Run(ctx)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Seed enough data that snapshots exist while the hammering runs.
	first, err := s.ValidateBatch(txs[:100])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ingest(first); err != nil {
		t.Fatal(err)
	}
	waitPublished(t, s, 100)

	var wg sync.WaitGroup
	// Writer: stream the rest in small batches over HTTP.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for lo := 100; lo < len(txs); lo += 50 {
			hi := lo + 50
			if hi > len(txs) {
				hi = len(txs)
			}
			code := postJSON(t, ts.URL+"/ingest", map[string][][]int64{"transactions": txs[lo:hi]}, nil)
			if code != http.StatusAccepted {
				t.Errorf("concurrent ingest: HTTP %d", code)
				return
			}
		}
	}()
	// Readers: rules, itemsets, metrics, health — all racing the writer and
	// the re-mine loop.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				switch r % 4 {
				case 0:
					var rr rulesResponse
					if code := getJSON(t, ts.URL+"/rules", &rr); code != http.StatusOK {
						t.Errorf("/rules: HTTP %d", code)
						return
					}
					if rr.Count != len(rr.Rules) {
						t.Errorf("torn rules response: count %d != len %d", rr.Count, len(rr.Rules))
						return
					}
					for _, rl := range rr.Rules {
						if !rules.MeetsConfidence(rl.Confidence, s.cfg.MinConfidence) {
							t.Errorf("rule below threshold in snapshot: %+v", rl)
							return
						}
					}
				case 1:
					var is itemsetsResponse
					if code := getJSON(t, ts.URL+"/itemsets?k=1", &is); code != http.StatusOK {
						t.Errorf("/itemsets: HTTP %d", code)
						return
					}
				case 2:
					resp, err := http.Get(ts.URL + "/metrics")
					if err != nil {
						t.Errorf("/metrics: %v", err)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				case 3:
					var h healthzResponse
					getJSON(t, ts.URL+"/healthz", &h)
				}
			}
		}(r)
	}
	wg.Wait()

	// Quiesce: the loop must converge on the full prefix.
	snap := waitPublished(t, s, int64(len(txs)))
	if snap.DBLen != int64(len(txs)) {
		t.Fatalf("final snapshot covers %d, want %d", snap.DBLen, len(txs))
	}
}

// TestShutdownCancelsMine checks Run exits promptly on cancellation even
// with data pending, and the published snapshot (if any) stays readable.
func TestShutdownCancelsMine(t *testing.T) {
	txs, _ := genBatch(t, gen.Params{T: 10, I: 5, D: 2000, Seed: 3})
	cfg := testConfig()
	cfg.Support = 0.002 // deep lattice: the mine takes long enough to cancel into
	s := New(cfg)
	ctx, cancel := context.WithCancel(context.Background())
	go s.Run(ctx)

	batch, err := s.ValidateBatch(txs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ingest(batch); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond) // let the mine start
	cancel()

	done := make(chan struct{})
	go func() { s.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not exit within 10s of cancellation")
	}
	// Whatever was published before the cancel must still be coherent.
	if snap := s.Published(); snap != nil {
		if got := snap.QueryRules(s.cfg.MinConfidence, -1, 0); len(got) != len(snap.Rules) {
			t.Fatalf("published snapshot inconsistent after shutdown: %d != %d", len(got), len(snap.Rules))
		}
	}
}

// TestSnapshotViewIsolation pins the SnapshotView aliasing contract the
// whole design rests on: appends to the parent database never change what
// a previously taken view reads.
func TestSnapshotViewIsolation(t *testing.T) {
	d := db.New(0)
	for i := 0; i < 100; i++ {
		d.Append(int64(i), itemset.New(itemset.Item(i%7), itemset.Item(7+i%5)))
	}
	view := d.SnapshotView()
	wantLen := view.Len()
	wantItems := make([]itemset.Itemset, wantLen)
	for i := 0; i < wantLen; i++ {
		wantItems[i] = append(itemset.Itemset{}, view.Items(i)...)
	}
	for i := 100; i < 5000; i++ {
		d.Append(int64(i), itemset.New(itemset.Item(i%11), itemset.Item(11+i%13)))
	}
	if view.Len() != wantLen {
		t.Fatalf("view grew: %d -> %d", wantLen, view.Len())
	}
	for i := 0; i < wantLen; i++ {
		if !reflect.DeepEqual(view.Items(i), wantItems[i]) {
			t.Fatalf("view transaction %d changed after parent appends", i)
		}
	}
	if err := view.Validate(); err != nil {
		t.Fatal(err)
	}
}
