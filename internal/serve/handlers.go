package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/rules"
)

// Handler returns the daemon's HTTP mux. Routes use Go 1.22 method
// patterns; every handler is safe under arbitrary concurrency — queries
// read only the published snapshot pointer and scrape-safe atomics.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /ingest", s.ingestHandler)
	mux.HandleFunc("GET /rules", s.rulesHandler)
	mux.HandleFunc("GET /itemsets", s.itemsetsHandler)
	mux.HandleFunc("GET /metrics", s.metricsHandler)
	mux.HandleFunc("GET /healthz", s.healthzHandler)
	return mux
}

// ingestRequest is the /ingest body: transactions as arrays of item ids.
// Items decode as int64 first so out-of-range values are rejected by
// validation instead of silently truncated by a narrow decode.
type ingestRequest struct {
	Transactions [][]int64 `json:"transactions"`
}

type ingestResponse struct {
	Accepted int    `json:"accepted"`
	Total    int64  `json:"total"`
	Error    string `json:"error,omitempty"`
}

func (s *Server) ingestHandler(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var req ingestRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.ingestErrs.Add(1)
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		writeJSONError(w, status, fmt.Sprintf("decode: %v", err))
		return
	}
	batch, err := s.ValidateBatch(req.Transactions)
	if err != nil {
		s.ingestErrs.Add(1)
		writeJSONError(w, http.StatusBadRequest, err.Error())
		return
	}
	accepted, err := s.Ingest(batch)
	resp := ingestResponse{Accepted: accepted, Total: s.ingestedTx.Load()}
	status := http.StatusAccepted
	if err != nil {
		// Arena overflow: the accepted prefix is durable, the remainder was
		// refused — 507 tells the client the daemon is out of capacity.
		resp.Error = err.Error()
		status = http.StatusInsufficientStorage
	}
	writeJSON(w, status, resp)
}

// ruleJSON is the wire form of one rule.
type ruleJSON struct {
	Antecedent  []int64 `json:"antecedent"`
	Consequent  []int64 `json:"consequent"`
	Support     int64   `json:"support"`
	SupportFrac float64 `json:"supportFrac"`
	Confidence  float64 `json:"confidence"`
	Lift        float64 `json:"lift"`
}

type rulesResponse struct {
	Generation int64      `json:"generation"`
	DBLen      int64      `json:"dbLen"`
	Engine     string     `json:"engine"`
	Count      int        `json:"count"`
	Rules      []ruleJSON `json:"rules"`
}

func (s *Server) rulesHandler(w http.ResponseWriter, r *http.Request) {
	snap := s.published.Load()
	if snap == nil {
		writeJSONError(w, http.StatusServiceUnavailable, "no snapshot published yet")
		return
	}
	q := r.URL.Query()
	minConf := s.cfg.MinConfidence
	if v := q.Get("minconf"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f < 0 || f > 1 {
			writeJSONError(w, http.StatusBadRequest, "minconf must be a float in [0,1]")
			return
		}
		// Snapshots are generated at the configured confidence; queries can
		// only tighten the cut, never loosen it below what was generated.
		if f > minConf {
			minConf = f
		}
	}
	item := int64(-1)
	if v := q.Get("item"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 0 {
			writeJSONError(w, http.StatusBadRequest, "item must be a non-negative integer")
			return
		}
		item = n
	}
	limit, ok := parseLimit(q.Get("limit"))
	if !ok {
		writeJSONError(w, http.StatusBadRequest, "limit must be a non-negative integer")
		return
	}
	rs := snap.QueryRules(minConf, item, limit)
	s.queries.Add(1)
	out := make([]ruleJSON, len(rs))
	for i, rl := range rs {
		out[i] = toRuleJSON(rl)
	}
	writeJSON(w, http.StatusOK, rulesResponse{
		Generation: snap.Generation, DBLen: snap.DBLen, Engine: snap.Engine,
		Count: len(out), Rules: out,
	})
}

func toRuleJSON(r rules.Rule) ruleJSON {
	ante := make([]int64, len(r.Antecedent))
	for i, it := range r.Antecedent {
		ante[i] = int64(it)
	}
	cons := make([]int64, len(r.Consequent))
	for i, it := range r.Consequent {
		cons[i] = int64(it)
	}
	return ruleJSON{
		Antecedent: ante, Consequent: cons,
		Support: r.Support, SupportFrac: r.SupportFrac,
		Confidence: r.Confidence, Lift: r.Lift,
	}
}

type itemsetJSON struct {
	Items []int64 `json:"items"`
	Count int64   `json:"count"`
}

type itemsetsResponse struct {
	Generation int64         `json:"generation"`
	DBLen      int64         `json:"dbLen"`
	Engine     string        `json:"engine"`
	MinCount   int64         `json:"minCount"`
	Count      int           `json:"count"`
	Itemsets   []itemsetJSON `json:"itemsets"`
}

func (s *Server) itemsetsHandler(w http.ResponseWriter, r *http.Request) {
	snap := s.published.Load()
	if snap == nil {
		writeJSONError(w, http.StatusServiceUnavailable, "no snapshot published yet")
		return
	}
	q := r.URL.Query()
	k := 0
	if v := q.Get("k"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeJSONError(w, http.StatusBadRequest, "k must be a positive integer")
			return
		}
		k = n
	}
	limit, ok := parseLimit(q.Get("limit"))
	if !ok {
		writeJSONError(w, http.StatusBadRequest, "limit must be a non-negative integer")
		return
	}
	fs := snap.QueryItemsets(k, limit)
	s.queries.Add(1)
	out := make([]itemsetJSON, len(fs))
	for i, f := range fs {
		items := make([]int64, len(f.Items))
		for j, it := range f.Items {
			items[j] = int64(it)
		}
		out[i] = itemsetJSON{Items: items, Count: f.Count}
	}
	writeJSON(w, http.StatusOK, itemsetsResponse{
		Generation: snap.Generation, DBLen: snap.DBLen, Engine: snap.Engine,
		MinCount: snap.Result.MinCount, Count: len(out), Itemsets: out,
	})
}

// metricsHandler renders Prometheus text exposition: the daemon's own
// counters, the published-snapshot gauges, and the live mining recorder.
// Every value read here is an atomic load or an immutable snapshot field,
// so scraping during an active ingest or mine is race-free — the scrape
// Grafana points at a production miner, per the observability roadmap item.
func (s *Server) metricsHandler(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("armined_ingested_transactions_total", "Transactions accepted into the live database.", s.ingestedTx.Load())
	counter("armined_ingest_batches_total", "Ingest requests accepted.", s.ingestBatches.Load())
	counter("armined_ingest_errors_total", "Ingest requests rejected by validation.", s.ingestErrs.Load())
	counter("armined_queries_total", "Rule and itemset queries served.", s.queries.Load())
	counter("armined_remines_total", "Mining generations published.", s.remines.Load())
	counter("armined_remine_errors_total", "Re-mines that failed.", s.remineErrs.Load())
	gauge("armined_uptime_seconds", "Seconds since daemon start.", int64(time.Since(s.startedAt).Seconds()))

	if snap := s.published.Load(); snap != nil {
		gauge("armined_snapshot_generation", "Generation of the published snapshot.", snap.Generation)
		gauge("armined_snapshot_db_transactions", "Transaction prefix covered by the published snapshot.", snap.DBLen)
		gauge("armined_snapshot_rules", "Rules in the published snapshot.", int64(len(snap.Rules)))
		gauge("armined_snapshot_mine_wall_seconds", "Wall-clock of the published snapshot's mine (seconds, truncated).", int64(snap.Wall.Seconds()))
	}
	// The live recorder: scrape-safe by construction (atomic per-worker
	// counters), even while a mine is actively recording into it.
	if err := s.rec.WriteMetrics(w); err != nil {
		// Headers are gone; nothing to do but stop writing.
		return
	}
}

type healthzResponse struct {
	Status     string `json:"status"`
	Generation int64  `json:"generation"`
	DBLen      int64  `json:"dbLen"`
	Ingested   int64  `json:"ingested"`
	Engine     string `json:"engine,omitempty"`
}

func (s *Server) healthzHandler(w http.ResponseWriter, r *http.Request) {
	resp := healthzResponse{Status: "ok", Ingested: s.ingestedTx.Load()}
	if snap := s.published.Load(); snap != nil {
		resp.Generation = snap.Generation
		resp.DBLen = snap.DBLen
		resp.Engine = snap.Engine
	}
	writeJSON(w, http.StatusOK, resp)
}

func parseLimit(v string) (int, bool) {
	if v == "" {
		return 0, true
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeJSONError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
