// Package serve is the armined daemon core: the library's batch miners
// turned into a long-running mining-as-a-service process with streaming
// ingestion and concurrent rule queries — ROADMAP item 1.
//
// The design is a strict split of mutable and immutable state:
//
//   - Ingestion (POST /ingest) appends validated transaction batches into a
//     mutable in-memory db.Database under a mutex, overflow-aware through
//     db.TryAppend. Batches are validated and normalized outside the lock
//     (the SaM split-and-merge shape: per-chunk local work, a short merge
//     into global state).
//   - A single background re-mine loop wakes on ingestion, takes an O(1)
//     frozen prefix view (db.SnapshotView) under the lock, and mines it
//     outside the lock through the unified engine registry — the cost-based
//     engine.Planner re-chooses the engine per re-mine from the database's
//     current shape (density drifts as data streams in), and
//     engine.Dispatch runs it under the loop's context so shutdown cancels
//     a mine mid-flight via MineCtx.
//   - The mine's result plus a pre-generated rules.GenerateFast rule list
//     (with a per-item query index) freeze into an immutable Snapshot,
//     published by an atomic.Pointer swap. Query handlers (GET /rules,
//     /itemsets, /healthz) only ever load the pointer: readers never take
//     the ingest lock, never block a mine, and always see a complete,
//     internally consistent generation.
//
// Consistency model: queries trail ingestion by at most one re-mine cycle
// (a snapshot's Generation and DBLen say exactly which prefix it covers),
// and a published snapshot is bit-identical to a batch engine.Dispatch +
// rules.GenerateFast run over the same transaction prefix — the engines'
// exactness guarantee carries over to the service.
//
// Observability is scrape-safe by construction: GET /metrics renders the
// daemon's own atomic counters plus the live obs.Recorder snapshot, whose
// per-worker counters are atomics precisely so a scrape mid-mine is
// race-free.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/apriori"
	"repro/internal/ccpd"
	"repro/internal/db"
	"repro/internal/engine"
	"repro/internal/hashtree"
	"repro/internal/itemset"
	"repro/internal/obs"
	"repro/internal/robust"
	"repro/internal/rules"
)

// Config carries the daemon's mining policy and ingestion limits. The zero
// value is unusable; fill Support and take the rest from withDefaults.
type Config struct {
	// Support is the fractional minimum support each re-mine resolves
	// against the current database size (apriori.CeilSupport semantics).
	Support float64
	// MinConfidence is the rule-generation confidence threshold baked into
	// every published snapshot; /rules queries may filter above it, never
	// below.
	MinConfidence float64
	// MaxConsequent bounds rule consequent size (0 = unbounded).
	MaxConsequent int
	// Procs is the worker count handed to parallel engines.
	Procs int
	// Engine pins a registry engine by name; "" or "auto" re-plans per
	// re-mine through the cost-based planner.
	Engine string
	// MaxK bounds the mined itemset size (0 = fixpoint).
	MaxK int
	// RemineInterval is the debounce between consecutive re-mines: after a
	// mine completes the loop sleeps this long before honoring the next
	// dirty signal, so a steady ingest stream coalesces into periodic
	// re-mines instead of mining after every batch. Default 100ms.
	RemineInterval time.Duration
	// MaxBatch caps transactions per ingest request (default 65536).
	MaxBatch int
	// MaxTxItems caps items per transaction (default 4096).
	MaxTxItems int
	// MaxItem is the exclusive item-universe bound; ingested items must lie
	// in [0, MaxItem). Default 1<<20.
	MaxItem int64
	// MaxBodyBytes caps the /ingest request body (default 8 MiB).
	MaxBodyBytes int64
}

func (c Config) withDefaults() Config {
	if c.Procs <= 0 {
		c.Procs = 4
	}
	if c.RemineInterval <= 0 {
		c.RemineInterval = 100 * time.Millisecond
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 65536
	}
	if c.MaxTxItems <= 0 {
		c.MaxTxItems = 4096
	}
	if c.MaxItem <= 0 {
		c.MaxItem = 1 << 20
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	return c
}

// Server is the daemon state. Construct with New, serve Handler() over
// HTTP, and run the re-mine loop with Run.
type Server struct {
	cfg Config
	rec *obs.Recorder

	mu sync.Mutex
	//armlint:guardedby mu
	live *db.Database
	//armlint:guardedby mu
	nextTID int64

	// dirty is the re-mine wakeup: ingestion sends one token (non-blocking,
	// capacity 1), the loop drains it. A token left while a mine runs simply
	// triggers the next cycle — signals coalesce.
	dirty chan struct{}
	// published is the immutable snapshot swap point. Readers Load, the
	// re-mine loop Stores; no reader ever blocks.
	published atomic.Pointer[Snapshot]
	// loopDone closes when Run returns (shutdown drain point).
	loopDone chan struct{}

	startedAt time.Time

	// Scrape-safe daemon counters (see metricsHandler).
	ingestedTx    atomic.Int64 // transactions accepted
	ingestBatches atomic.Int64 // ingest requests accepted (fully or partially)
	ingestErrs    atomic.Int64 // ingest requests rejected by validation
	queries       atomic.Int64 // rule/itemset queries served
	remines       atomic.Int64 // snapshots published
	remineErrs    atomic.Int64 // re-mines that failed (non-cancellation)
}

// New builds a Server with an empty database.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		cfg:       cfg,
		rec:       obs.NewRecorder(cfg.Procs),
		live:      db.New(0),
		dirty:     make(chan struct{}, 1),
		loopDone:  make(chan struct{}),
		startedAt: time.Now(),
	}
}

// Config returns the effective (defaulted) configuration.
func (s *Server) Config() Config { return s.cfg }

// Published returns the current snapshot, or nil before the first publish.
func (s *Server) Published() *Snapshot { return s.published.Load() }

// Ingested returns the total accepted transaction count.
func (s *Server) Ingested() int64 { return s.ingestedTx.Load() }

// batchTooLarge and friends classify ingest failures for the HTTP layer.
var (
	errBatchTooLarge = errors.New("serve: batch exceeds MaxBatch")
	errEmptyBatch    = errors.New("serve: empty batch")
)

// txError is a per-transaction validation failure naming the offending
// batch index, mirroring the binary reader's out-of-universe diagnostics.
type txError struct {
	Index int
	Err   error
}

func (e *txError) Error() string { return fmt.Sprintf("transaction %d: %v", e.Index, e.Err) }

// ValidateBatch bounds-checks one ingest batch against the configured
// limits — the JSON twin of the PR 3 binary-reader validation: batch size,
// per-transaction length, and item range are all checked before anything
// touches shared state. It returns the normalized (sorted, deduplicated)
// itemsets, ready for TryAppend.
func (s *Server) ValidateBatch(txs [][]int64) ([]itemset.Itemset, error) {
	if len(txs) == 0 {
		return nil, errEmptyBatch
	}
	if len(txs) > s.cfg.MaxBatch {
		return nil, fmt.Errorf("%w: %d > %d", errBatchTooLarge, len(txs), s.cfg.MaxBatch)
	}
	out := make([]itemset.Itemset, len(txs))
	for i, tx := range txs {
		if len(tx) == 0 {
			return nil, &txError{i, errors.New("no items")}
		}
		if len(tx) > s.cfg.MaxTxItems {
			return nil, &txError{i, fmt.Errorf("%d items > limit %d", len(tx), s.cfg.MaxTxItems)}
		}
		items := make([]itemset.Item, len(tx))
		for j, v := range tx {
			if v < 0 || v >= s.cfg.MaxItem {
				return nil, &txError{i, fmt.Errorf("item %d outside universe [0,%d)", v, s.cfg.MaxItem)}
			}
			items[j] = itemset.Item(v) // bounds-checked above: MaxItem caps below 2³¹
		}
		out[i] = itemset.New(items...) // sorts + dedups
	}
	return out, nil
}

// Ingest appends a validated batch into the live database and signals the
// re-mine loop. Only the append itself runs under the lock — validation and
// normalization happened in ValidateBatch, outside. Returns the number of
// transactions accepted; on db.ErrArenaFull the prefix that fit stays
// ingested (every accepted transaction is durable in-memory) and the error
// reports the overflow.
func (s *Server) Ingest(batch []itemset.Itemset) (int, error) {
	s.mu.Lock()
	accepted := 0
	var err error
	for _, items := range batch {
		if err = s.live.TryAppend(s.nextTID, items); err != nil {
			break
		}
		s.nextTID++
		accepted++
	}
	s.mu.Unlock()

	if accepted > 0 {
		s.ingestedTx.Add(int64(accepted))
		s.ingestBatches.Add(1)
		s.markDirty()
	}
	return accepted, err
}

// markDirty wakes the re-mine loop (coalescing, never blocking).
func (s *Server) markDirty() {
	select {
	case s.dirty <- struct{}{}:
	default:
	}
}

// Run is the background re-mine loop: wake on ingestion, mine the frozen
// prefix, publish, debounce, repeat. It exits when ctx is canceled — a mine
// in flight is canceled cooperatively through the engine's MineCtx and its
// partial result is discarded. Call exactly once, in its own goroutine;
// Wait blocks until it has exited.
func (s *Server) Run(ctx context.Context) {
	defer close(s.loopDone)
	for {
		select {
		case <-ctx.Done():
			return
		case <-s.dirty:
		}
		s.remine(ctx)
		// Debounce: coalesce a steady ingest stream into periodic re-mines.
		timer := time.NewTimer(s.cfg.RemineInterval)
		select {
		case <-ctx.Done():
			timer.Stop()
			return
		case <-timer.C:
		}
	}
}

// Wait blocks until the Run loop has exited (graceful-shutdown drain).
func (s *Server) Wait() { <-s.loopDone }

// remine takes the frozen prefix view and publishes a fresh snapshot from
// it, unless nothing new arrived since the last publish.
func (s *Server) remine(ctx context.Context) {
	s.mu.Lock()
	view := s.live.SnapshotView()
	s.mu.Unlock()

	cur := s.published.Load()
	if view.Len() == 0 || (cur != nil && cur.DBLen == int64(view.Len())) {
		return
	}
	gen := int64(1)
	if cur != nil {
		gen = cur.Generation + 1
	}
	snap, err := s.mineSnapshot(ctx, view, gen)
	if err != nil {
		var canceled *robust.CanceledError
		if errors.As(err, &canceled) || ctx.Err() != nil {
			return // shutdown mid-mine: discard the partial result quietly
		}
		s.remineErrs.Add(1)
		return
	}
	s.published.Store(snap)
	s.remines.Add(1)
	// More data may have streamed in while mining; re-arm so the loop
	// catches up without waiting for the next ingest.
	s.mu.Lock()
	grew := s.live.Len() > view.Len()
	s.mu.Unlock()
	if grew {
		s.markDirty()
	}
}

// Plan resolves the engine name and Spec for mining the given view — the
// daemon's single mining policy, shared by the re-mine loop and the
// equivalence tests (which replay it batch-side to assert bit-identity).
// With Engine unset or "auto" the cost-based planner re-decides per call
// from the view's current shape.
func (s *Server) Plan(view *db.Database) (string, engine.Spec) {
	spec := engine.Spec{
		Mining: apriori.Options{
			MinSupport: s.cfg.Support, MaxK: s.cfg.MaxK,
			ShortCircuit: true, Hash: hashtree.HashBitonic,
		},
		Procs:   s.cfg.Procs,
		Counter: hashtree.CounterPrivate,
		Balance: ccpd.BalanceBitonic,
		DBPart:  ccpd.PartitionBlock,
		// ChunkSize doubles as the engines' cancellation poll stride, so a
		// shutdown interrupts a mine promptly.
		ChunkSize: 256,
	}
	name := s.cfg.Engine
	if name == "" || name == "auto" {
		plan := engine.Planner{Procs: s.cfg.Procs}.Plan(engine.Characterize(view))
		name = plan.Engine
		spec.DBPart = plan.DBPart
		spec.ChunkSize = plan.ChunkSize
	}
	return name, spec
}

// mineSnapshot dispatches one mine over the frozen view and freezes the
// result plus its pre-generated rule index into a publishable Snapshot.
func (s *Server) mineSnapshot(ctx context.Context, view *db.Database, gen int64) (*Snapshot, error) {
	name, spec := s.Plan(view)
	// The recorder accumulates one mine at a time: Reset is safe against
	// concurrent scrapes (atomic counters, mutex-guarded master stats), and
	// a Prometheus counter reset is ordinary scrape semantics.
	s.rec.Reset()
	spec.Obs = s.rec

	t0 := time.Now()
	res, _, err := engine.Dispatch(ctx, name, view, nil, spec)
	if err != nil {
		return nil, err
	}
	rs := rules.GenerateFast(res, rules.Options{
		MinConfidence: s.cfg.MinConfidence,
		DBSize:        int64(view.Len()),
		MaxConsequent: s.cfg.MaxConsequent,
	})
	return newSnapshot(gen, view, name, res, rs, time.Since(t0)), nil
}
