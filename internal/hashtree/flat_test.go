package hashtree

import (
	"math/rand"
	"testing"

	"repro/internal/itemset"
)

// TestFlatShape checks the frozen SoA view against the pointer structure.
func TestFlatShape(t *testing.T) {
	cands := combinations(12, 3)
	tr, err := Build(Config{K: 3, Fanout: 3, Threshold: 2, NumItems: 12}, cands)
	if err != nil {
		t.Fatal(err)
	}
	f := tr.Freeze()
	if f.NumNodes() != len(tr.nodes) {
		t.Fatalf("flat nodes %d != tree nodes %d", f.NumNodes(), len(tr.nodes))
	}
	if f.NumCandidates() != tr.NumCandidates() {
		t.Fatalf("flat cands %d != tree cands %d", f.NumCandidates(), tr.NumCandidates())
	}
	if tr.Freeze() != f {
		t.Fatal("Freeze not cached")
	}
	// Every candidate id must appear exactly once across the leaf CSR.
	seen := make([]int, f.NumCandidates())
	var leaves, internal int
	for n := 0; n < f.NumNodes(); n++ {
		if f.childBase[n] < 0 {
			leaves++
			for _, c := range f.leafItems[f.leafStart[n]:f.leafStart[n+1]] {
				seen[c]++
			}
			continue
		}
		internal++
		if f.leafStart[n] != f.leafStart[n+1] {
			t.Fatalf("internal node %d has leaf items", n)
		}
		for _, ch := range f.children[f.childBase[n] : f.childBase[n]+int32(f.fanout)] {
			if ch >= 0 && (ch <= int32(n) || ch >= int32(f.NumNodes())) {
				t.Fatalf("node %d child %d not in DFS-forward order", n, ch)
			}
		}
	}
	for id, c := range seen {
		if c != 1 {
			t.Fatalf("candidate %d appears %d times in leaf CSR", id, c)
		}
	}
	st := tr.ComputeStats()
	if leaves != st.Leaves || internal != st.Internal {
		t.Fatalf("flat leaves/internal %d/%d != stats %d/%d", leaves, internal, st.Leaves, st.Internal)
	}
}

// TestFlatCountMatchesPointerTree is the layout property test: frozen
// flat-tree counting must produce counts identical to the deliberately
// pointer-chasing PointerTree on randomized databases, across all counter
// modes and both short-circuit settings. Run under -race in CI.
func TestFlatCountMatchesPointerTree(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 12; trial++ {
		k := 2 + rng.Intn(3)
		universe := 10 + rng.Intn(20)
		candSet := map[string]itemset.Itemset{}
		for i := 0; i < 20+rng.Intn(80); i++ {
			m := map[itemset.Item]bool{}
			for len(m) < k {
				m[itemset.Item(rng.Intn(universe))] = true
			}
			var s itemset.Itemset
			for it := range m {
				s = append(s, it)
			}
			c := itemset.New(s...)
			candSet[c.Key()] = c
		}
		var cands []itemset.Itemset
		for _, c := range candSet {
			cands = append(cands, c)
		}
		txs := randomTxs(rng, 60+rng.Intn(100), 2+rng.Intn(12), universe)
		cfg := Config{
			K: k, Fanout: 2 + rng.Intn(6), Threshold: 1 + rng.Intn(5),
			Hash: HashKind(rng.Intn(2)), NumItems: universe,
		}

		for _, sc := range []bool{false, true} {
			// Fresh reference tree per setting: PointerTree counts accumulate
			// in the nodes themselves.
			ptr, err := BuildPointer(cfg, cands)
			if err != nil {
				t.Fatal(err)
			}
			pctx := ptr.NewCountCtx(sc)
			for _, tx := range txs {
				pctx.CountTransaction(tx)
			}
			want := map[string]int64{}
			ptr.ForEachCandidate(func(items itemset.Itemset, count int64) {
				want[items.Key()] = count
			})

			for _, mode := range []CounterMode{CounterLocked, CounterAtomic, CounterPrivate} {
				for _, batch := range []bool{false, true} {
					tr, err := Build(cfg, cands)
					if err != nil {
						t.Fatal(err)
					}
					const procs = 4
					counters := NewCounters(mode, tr.NumCandidates(), procs)
					done := make(chan struct{}, procs)
					for p := 0; p < procs; p++ {
						go func(p int) {
							ctx := tr.NewCountCtx(counters, CountOpts{
								ShortCircuit: sc, Proc: p, BatchUpdates: batch,
							})
							lo := p * len(txs) / procs
							hi := (p + 1) * len(txs) / procs
							for _, tx := range txs[lo:hi] {
								ctx.CountTransaction(tx)
							}
							ctx.Flush()
							done <- struct{}{}
						}(p)
					}
					for p := 0; p < procs; p++ {
						<-done
					}
					counters.Reduce()
					tr.ForEachCandidate(func(id int32) {
						key := tr.Candidate(id).Key()
						if got := counters.Count(id); got != want[key] {
							t.Fatalf("trial %d sc=%v mode=%v batch=%v: candidate %v count %d, want %d",
								trial, sc, mode, batch, tr.Candidate(id), got, want[key])
						}
					})
				}
			}
		}
	}
}

// TestFlatWorkMatchesRecursiveModel pins the deterministic work model: the
// iterative kernel must accumulate exactly the work units of the recursive
// definition (checked against an independent recursive re-implementation).
func TestFlatWorkMatchesRecursiveModel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cands := combinations(14, 3)
	txs := randomTxs(rng, 120, 12, 14)
	for _, sc := range []bool{false, true} {
		tr, err := Build(Config{K: 3, Fanout: 3, Threshold: 2, NumItems: 14}, cands)
		if err != nil {
			t.Fatal(err)
		}
		counters := NewCounters(CounterPrivate, tr.NumCandidates(), 1)
		ctx := tr.NewCountCtx(counters, CountOpts{ShortCircuit: sc})
		ref := newRecursiveRef(tr, sc)
		for _, tx := range txs {
			ctx.CountTransaction(tx)
			ref.countTransaction(tx)
		}
		if ctx.Work != ref.work {
			t.Fatalf("sc=%v: iterative work %d != recursive reference %d", sc, ctx.Work, ref.work)
		}
	}
}

// recursiveRef re-implements the pre-flat recursive walk over the pointer
// node structure, accumulating only work units.
type recursiveRef struct {
	t         *Tree
	sc        bool
	work      int64
	visit     [][]uint64
	epoch     []uint64
	leafStamp []uint64
	txSerial  uint64
}

func newRecursiveRef(t *Tree, sc bool) *recursiveRef {
	r := &recursiveRef{t: t, sc: sc}
	r.visit = make([][]uint64, t.cfg.K+1)
	for d := range r.visit {
		r.visit[d] = make([]uint64, t.cfg.Fanout)
	}
	r.epoch = make([]uint64, t.cfg.K+1)
	r.leafStamp = make([]uint64, len(t.nodes))
	return r
}

func (r *recursiveRef) countTransaction(items itemset.Itemset) {
	if len(items) < r.t.cfg.K {
		return
	}
	r.txSerial++
	r.walk(0, items, 0)
}

func (r *recursiveRef) walk(id int32, items itemset.Itemset, start int) {
	n := r.t.nodes[id]
	k := r.t.cfg.K
	r.work += WorkNodeVisit
	if n.isLeaf() {
		if !r.sc {
			if r.leafStamp[id] == r.txSerial {
				return
			}
			r.leafStamp[id] = r.txSerial
		}
		r.work += int64(len(n.items)) * int64(WorkLeafCand+k)
		for _, cand := range n.items {
			if items.Contains(r.t.candidateLocked(cand)) {
				r.work += WorkCtrUpdate
			}
		}
		return
	}
	d := int(n.depth)
	var row []uint64
	var ep uint64
	if r.sc {
		r.epoch[d]++
		ep = r.epoch[d]
		row = r.visit[d]
	}
	limit := len(items) - k + d
	for i := start; i <= limit; i++ {
		c := r.t.cell(items[i])
		r.work += WorkCellProbe
		if r.sc {
			if row[c] == ep {
				continue
			}
			row[c] = ep
		}
		child := n.children[c]
		if child < 0 {
			continue
		}
		r.walk(child, items, i+1)
	}
}

// TestCountTransactionZeroAlloc is the allocation regression gate for the
// counting kernel: steady-state CountTransaction must not touch the heap, in
// any counter mode, batched or not.
func TestCountTransactionZeroAlloc(t *testing.T) {
	cands := combinations(16, 3)
	tr, err := Build(Config{K: 3, Fanout: 4, Threshold: 3, NumItems: 16}, cands)
	if err != nil {
		t.Fatal(err)
	}
	tx := itemset.New(0, 2, 3, 5, 7, 8, 10, 11, 13, 15)
	for _, mode := range []CounterMode{CounterLocked, CounterAtomic, CounterPrivate} {
		for _, batch := range []bool{false, true} {
			for _, sc := range []bool{false, true} {
				counters := NewCounters(mode, tr.NumCandidates(), 1)
				ctx := tr.NewCountCtx(counters, CountOpts{ShortCircuit: sc, BatchUpdates: batch})
				allocs := testing.AllocsPerRun(50, func() {
					ctx.CountTransaction(tx)
				})
				if allocs != 0 {
					t.Errorf("mode=%v batch=%v sc=%v: %v allocs/op, want 0", mode, batch, sc, allocs)
				}
				ctx.Flush()
			}
		}
	}
}

// TestCountTransactionZeroAllocWithFlushHook extends the allocation gate to
// the observability wiring: an installed OnFlush hook (itself non-allocating)
// must keep the batched counting path at zero heap allocations, so mining
// with trace recording on cannot regress the kernel.
func TestCountTransactionZeroAllocWithFlushHook(t *testing.T) {
	cands := combinations(16, 3)
	tr, err := Build(Config{K: 3, Fanout: 4, Threshold: 3, NumItems: 16}, cands)
	if err != nil {
		t.Fatal(err)
	}
	tx := itemset.New(0, 2, 3, 5, 7, 8, 10, 11, 13, 15)
	var flushes, updates int64
	counters := NewCounters(CounterAtomic, tr.NumCandidates(), 1)
	ctx := tr.NewCountCtx(counters, CountOpts{
		BatchUpdates: true,
		OnFlush:      func(n int) { flushes++; updates += int64(n) },
	})
	allocs := testing.AllocsPerRun(200, func() {
		ctx.CountTransaction(tx)
	})
	if allocs != 0 {
		t.Errorf("with OnFlush hook: %v allocs/op, want 0", allocs)
	}
	ctx.Flush()
	if flushes == 0 || updates == 0 {
		t.Errorf("flush hook never fired (flushes=%d updates=%d)", flushes, updates)
	}
}

// TestCountDatabaseUsesUnsynchronizedCounters pins the sequential-baseline
// bugfix: CountDatabase must not pay atomic/lock cost on its single-threaded
// scan.
func TestCountDatabaseUsesUnsynchronizedCounters(t *testing.T) {
	tr, err := Build(Config{K: 2, Fanout: 2, Threshold: 2, NumItems: 6},
		[]itemset.Itemset{itemset.New(1, 2), itemset.New(2, 4), itemset.New(4, 5)})
	if err != nil {
		t.Fatal(err)
	}
	counters := tr.CountDatabase([]itemset.Itemset{
		itemset.New(1, 2, 4), itemset.New(2, 4, 5),
	}, CountOpts{ShortCircuit: true})
	if counters.Mode != CounterPrivate {
		t.Fatalf("CountDatabase counters mode %v, want private (unsynchronized)", counters.Mode)
	}
	if got := counters.Count(1); got != 2 { // (2 4) is candidate id 1
		t.Fatalf("count = %d, want 2", got)
	}
}
