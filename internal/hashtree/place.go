package hashtree

import (
	"repro/internal/itemset"
	"repro/internal/mem"
	"repro/internal/trace"
)

// Modelled component sizes in bytes, mirroring the C structures of Fig. 3:
// a hash tree node header, one hash-table cell pointer, an itemset list
// header, a list node (next + itemset pointers), and the itemset payload of
// 4 bytes per item. When locks and counters are not segregated they live
// inline at the end of the itemset block (4+4 bytes), which is exactly what
// makes the base policies suffer false sharing on itemset lines.
const (
	sizeHTN     = 16
	sizeCellPtr = 8
	sizeILH     = 8
	sizeLN      = 16
	sizeLock    = 4
	sizeCounter = 4
)

// Placement assigns a virtual address to every component of a built tree
// under one policy, and replays counting passes as memory access traces.
type Placement struct {
	Tree   *Tree
	Policy mem.Policy
	placer *mem.Placer

	nodeAddr  []mem.Addr // HTN per node
	ilhAddr   []mem.Addr // ILH per node
	tableAddr []mem.Addr // HTNP per node (0 for leaves)
	lnAddr    []mem.Addr // LN per candidate
	itemAddr  []mem.Addr // Itemset payload per candidate
	ctrAddr   []mem.Addr // shared counter per candidate (0 under LCA)
	lockAddr  []mem.Addr // lock per candidate (0 under LCA)
	privCtr   [][]mem.Addr

	// RemapBlocks counts the components copied by the GPP depth-first
	// remap; the placement study charges a per-block copy cost against
	// remapping policies (the paper reports remapping costs under 2% of
	// the running time, which is what keeps SPP competitive on small
	// trees).
	RemapBlocks int64
}

// NewPlacement replays the tree's creation-order event log through a placer
// for the given policy, then applies the GPP depth-first remap if the
// policy calls for it. procs sizes the LCA private counter arrays.
func NewPlacement(t *Tree, policy mem.Policy, procs int) *Placement {
	if procs < 1 {
		procs = 1
	}
	p := &Placement{
		Tree:      t,
		Policy:    policy,
		placer:    mem.NewPlacer(policy, procs, 64),
		nodeAddr:  make([]mem.Addr, len(t.nodes)),
		ilhAddr:   make([]mem.Addr, len(t.nodes)),
		tableAddr: make([]mem.Addr, len(t.nodes)),
		lnAddr:    make([]mem.Addr, int(t.nCand)),
		itemAddr:  make([]mem.Addr, int(t.nCand)),
	}
	lca := policy.PrivatizesCounters()
	if !lca {
		p.ctrAddr = make([]mem.Addr, int(t.nCand))
		p.lockAddr = make([]mem.Addr, int(t.nCand))
	}
	k := t.cfg.K
	itemBytes := uint32(4 * k)
	for _, ev := range t.events {
		switch ev.kind {
		case evNode:
			addrs := p.placer.PlaceGroup(
				[]mem.BlockKind{mem.KindHTN, mem.KindILH},
				[]uint32{sizeHTN, sizeILH})
			p.nodeAddr[ev.id] = addrs[0]
			p.ilhAddr[ev.id] = addrs[1]
		case evSplit:
			p.tableAddr[ev.id] = p.placer.Place(mem.KindHTNP, uint32(sizeCellPtr*t.cfg.Fanout))
		case evCand:
			if lca || policy.SegregatesRW() {
				addrs := p.placer.PlaceGroup(
					[]mem.BlockKind{mem.KindLN, mem.KindItemset},
					[]uint32{sizeLN, itemBytes})
				p.lnAddr[ev.id] = addrs[0]
				p.itemAddr[ev.id] = addrs[1]
				if !lca {
					p.ctrAddr[ev.id] = p.placer.Place(mem.KindCounter, sizeCounter)
					p.lockAddr[ev.id] = p.placer.Place(mem.KindLock, sizeLock)
				}
			} else {
				// Inline counter+lock share the itemset block.
				addrs := p.placer.PlaceGroup(
					[]mem.BlockKind{mem.KindLN, mem.KindItemset},
					[]uint32{sizeLN, itemBytes + sizeCounter + sizeLock})
				p.lnAddr[ev.id] = addrs[0]
				p.itemAddr[ev.id] = addrs[1]
				p.ctrAddr[ev.id] = addrs[1] + mem.Addr(itemBytes)
				p.lockAddr[ev.id] = addrs[1] + mem.Addr(itemBytes) + sizeCounter
			}
		}
	}
	if lca {
		p.privCtr = make([][]mem.Addr, procs)
		for proc := 0; proc < procs; proc++ {
			arr := make([]mem.Addr, int(t.nCand))
			for c := range arr {
				arr[c] = p.placer.PlacePrivateCounter(proc, sizeCounter)
			}
			p.privCtr[proc] = arr
		}
	}
	if policy.Remaps() {
		p.remapDFS()
	}
	return p
}

// remapDFS computes the depth-first traversal order of all tree-region
// components — the order the support-counting phase touches them — and
// rewrites addresses through the placer's remap (Section 5.1, GPP).
func (p *Placement) remapDFS() {
	t := p.Tree
	var order []mem.Addr
	inline := !p.Policy.SegregatesRW() && !p.Policy.PrivatizesCounters()
	var visit func(id int32)
	visit = func(id int32) {
		n := t.nodes[id]
		order = append(order, p.nodeAddr[id])
		if !n.isLeaf() {
			order = append(order, p.tableAddr[id])
			for _, c := range n.children {
				if c >= 0 {
					visit(c)
				}
			}
			return
		}
		order = append(order, p.ilhAddr[id])
		for _, cand := range n.items {
			order = append(order, p.lnAddr[cand], p.itemAddr[cand])
			_ = inline // inline counters move with their itemset block
		}
	}
	visit(0)
	table := p.placer.Remap(order)
	p.RemapBlocks = int64(len(table))
	fix := func(a mem.Addr) mem.Addr {
		if na, ok := table[a]; ok {
			return na
		}
		return a
	}
	for i := range p.nodeAddr {
		p.nodeAddr[i] = fix(p.nodeAddr[i])
		p.ilhAddr[i] = fix(p.ilhAddr[i])
		p.tableAddr[i] = fix(p.tableAddr[i])
	}
	for c := range p.lnAddr {
		p.lnAddr[c] = fix(p.lnAddr[c])
		oldItem := p.itemAddr[c]
		p.itemAddr[c] = fix(oldItem)
		if inline && p.ctrAddr != nil {
			// Inline counter/lock keep their offset inside the moved block.
			delta := p.itemAddr[c] - oldItem
			p.ctrAddr[c] += delta
			p.lockAddr[c] += delta
		}
	}
}

// BytesUsed reports virtual bytes per region class.
func (p *Placement) BytesUsed() (tree, rw, private uint64) { return p.placer.BytesUsed() }

// TraceCtx replays the counting walk of one processor as a memory trace
// while also producing real support counts (so traced and untraced runs can
// be cross-checked). The replay keeps the recursive walk over the original
// pointer nodes — its addresses model the malloc'd layout and are keyed by
// creation-order node ids — so freezing the tree for the fast kernel does
// not perturb trace semantics.
type TraceCtx struct {
	p        *Placement
	t        *Tree
	opts     CountOpts
	counters *Counters

	visit     [][]uint64
	epoch     []uint64
	leafStamp []uint64 // by creation-order node id
	txSerial  uint64

	Buf *trace.Buffer
}

// NewTraceCtx builds a tracing context for processor proc.
func (p *Placement) NewTraceCtx(counters *Counters, opts CountOpts, capacity int) *TraceCtx {
	t := p.Tree
	tc := &TraceCtx{
		p:        p,
		t:        t,
		opts:     opts,
		counters: counters,
		Buf:      trace.NewBuffer(opts.Proc, capacity),
	}
	tc.visit = make([][]uint64, t.cfg.K+1)
	for d := range tc.visit {
		tc.visit[d] = make([]uint64, t.cfg.Fanout)
	}
	tc.epoch = make([]uint64, t.cfg.K+1)
	tc.leafStamp = make([]uint64, len(t.nodes))
	return tc
}

// CountTransaction counts one transaction, emitting its access trace.
func (tc *TraceCtx) CountTransaction(items itemset.Itemset) {
	k := tc.t.cfg.K
	if len(items) < k {
		return
	}
	tc.txSerial++
	tc.walk(0, items, 0)
}

func (tc *TraceCtx) walk(id int32, items itemset.Itemset, start int) {
	p := tc.p
	t := tc.t
	n := t.nodes[id]
	k := t.cfg.K
	tc.Buf.Load(p.nodeAddr[id], 8) // HTN header
	if n.isLeaf() {
		if !tc.opts.ShortCircuit {
			if tc.leafStamp[id] == tc.txSerial {
				return
			}
			tc.leafStamp[id] = tc.txSerial
		}
		tc.Buf.Load(p.ilhAddr[id], 8) // list header
		for _, cand := range n.items {
			tc.Buf.Load(p.lnAddr[cand], 8)             // list node
			tc.Buf.Load(p.itemAddr[cand], uint16(4*k)) // itemset payload
			if items.Contains(t.candidateLocked(cand)) {
				tc.counters.add(cand, tc.opts.Proc)
				if p.Policy.PrivatizesCounters() {
					tc.Buf.Store(p.privCtr[tc.opts.Proc][cand], 4)
				} else {
					// lock acquire, counter increment, lock release
					tc.Buf.Store(p.lockAddr[cand], 4)
					tc.Buf.Store(p.ctrAddr[cand], 4)
					tc.Buf.Store(p.lockAddr[cand], 4)
				}
			}
		}
		return
	}
	d := int(n.depth)
	var row []uint64
	var ep uint64
	if tc.opts.ShortCircuit {
		tc.epoch[d]++
		ep = tc.epoch[d]
		row = tc.visit[d]
	}
	limit := len(items) - k + d
	for i := start; i <= limit; i++ {
		c := t.cell(items[i])
		if tc.opts.ShortCircuit {
			if row[c] == ep {
				continue
			}
			row[c] = ep
		}
		tc.Buf.Load(p.tableAddr[id]+mem.Addr(sizeCellPtr*int(c)), 8)
		child := n.children[c]
		if child < 0 {
			continue
		}
		tc.walk(child, items, i+1)
	}
}
