package hashtree

import (
	"math/rand"
	"testing"

	"repro/internal/itemset"
)

func TestPointerTreeMatchesArenaTree(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 10; trial++ {
		k := 2 + rng.Intn(2)
		seen := map[string]bool{}
		var cands []itemset.Itemset
		for i := 0; i < 80; i++ {
			m := map[itemset.Item]bool{}
			for len(m) < k {
				m[itemset.Item(rng.Intn(20))] = true
			}
			var s itemset.Itemset
			for it := range m {
				s = append(s, it)
			}
			c := itemset.New(s...)
			if !seen[c.Key()] {
				seen[c.Key()] = true
				cands = append(cands, c)
			}
		}
		txs := randomTxs(rng, 60, 10, 20)
		cfg := Config{K: k, Fanout: 3, Threshold: 2, Hash: HashKind(rng.Intn(2)), NumItems: 20}

		arena, err := Build(cfg, cands)
		if err != nil {
			t.Fatal(err)
		}
		counters := arena.CountDatabase(txs, CountOpts{ShortCircuit: true})
		want := map[string]int64{}
		arena.ForEachCandidate(func(id int32) {
			want[arena.Candidate(id).Key()] = counters.Count(id)
		})

		for _, sc := range []bool{false, true} {
			ptr, err := BuildPointer(cfg, cands)
			if err != nil {
				t.Fatal(err)
			}
			if ptr.NumCandidates() != len(cands) {
				t.Fatalf("pointer tree stored %d/%d", ptr.NumCandidates(), len(cands))
			}
			ctx := ptr.NewCountCtx(sc)
			for _, tx := range txs {
				ctx.CountTransaction(tx)
			}
			got := map[string]int64{}
			ptr.ForEachCandidate(func(items itemset.Itemset, count int64) {
				got[items.Key()] = count
			})
			if len(got) != len(want) {
				t.Fatalf("trial %d sc=%v: %d candidates, want %d", trial, sc, len(got), len(want))
			}
			for key, c := range want {
				if got[key] != c {
					ks, _ := itemset.ParseKey(key)
					t.Fatalf("trial %d sc=%v: %v = %d, want %d", trial, sc, ks, got[key], c)
				}
			}
		}
	}
}

func TestPointerTreeRejectsBadInput(t *testing.T) {
	ptr := NewPointerTree(Config{K: 2, Fanout: 2, NumItems: 8})
	if _, err := ptr.Insert(itemset.New(1)); err == nil {
		t.Error("wrong length accepted")
	}
	if _, err := ptr.Insert(itemset.Itemset{3, 1}); err == nil {
		t.Error("unsorted accepted")
	}
}

func TestPointerTreeAdaptiveFanout(t *testing.T) {
	cands := combinations(15, 2)
	ptr, err := BuildPointer(Config{K: 2, Threshold: 4, NumItems: 15}, cands)
	if err != nil {
		t.Fatal(err)
	}
	if ptr.cfg.Fanout != AdaptiveFanout(int64(len(cands)), 4, 2) {
		t.Errorf("fanout = %d", ptr.cfg.Fanout)
	}
}

func TestPointerTreeShortTransaction(t *testing.T) {
	ptr, _ := BuildPointer(Config{K: 3, Fanout: 2, Threshold: 2, NumItems: 8}, combinations(8, 3))
	ctx := ptr.NewCountCtx(true)
	ctx.CountTransaction(itemset.New(1, 2)) // shorter than K
	ptr.ForEachCandidate(func(items itemset.Itemset, count int64) {
		if count != 0 {
			t.Fatalf("short transaction counted %v", items)
		}
	})
}
