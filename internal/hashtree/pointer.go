package hashtree

import (
	"fmt"

	"repro/internal/itemset"
	"repro/internal/partition"
)

// PointerTree is a deliberately pointer-chasing implementation of the
// candidate hash tree, mirroring the original C structure of Fig. 3: every
// hash tree node, hash table, list node and itemset is a separate heap
// allocation linked by pointers. It exists as the real-layout baseline for
// the locality ablation (BenchmarkAblationLayout): the arena-backed Tree is
// the SPP-style layout, this is the malloc-scattered CCPD layout. Results
// must be identical; only memory behaviour differs.
type PointerTree struct {
	cfg     Config
	hashVec []int32
	root    *pnode
	nCand   int32
}

// pnode is one node; exactly one of table/list is used.
type pnode struct {
	depth int32
	table []*pnode // internal: fan-out cells
	list  *plistNode
	size  int
}

// plistNode is a linked-list cell holding one candidate.
type plistNode struct {
	next    *plistNode
	itemset itemset.Itemset // separately allocated payload
	id      int32
	count   int64
}

// NewPointerTree creates an empty pointer tree.
func NewPointerTree(cfg Config) *PointerTree {
	cfg = cfg.withDefaults()
	t := &PointerTree{cfg: cfg, root: &pnode{depth: 0}}
	n := cfg.NumItems
	if n <= 0 {
		n = 1
	}
	t.hashVec = make([]int32, n)
	for i := range t.hashVec {
		t.hashVec[i] = cellHash(cfg, i)
	}
	return t
}

// cellHash computes an item's hash cell directly from a config — the same
// rules Tree.buildHashVec applies (bitonic over rank labels, or raw mod).
func cellHash(cfg Config, i int) int32 {
	if cfg.Hash == HashBitonic {
		key := i
		if cfg.Labels != nil && i < len(cfg.Labels) && cfg.Labels[i] >= 0 {
			key = int(cfg.Labels[i])
		}
		return int32(partition.BitonicHash(key, cfg.Fanout))
	}
	return int32(i % cfg.Fanout)
}

func (t *PointerTree) cell(it itemset.Item) int32 {
	if int(it) < len(t.hashVec) && it >= 0 {
		return t.hashVec[it]
	}
	return int32(int(it) % t.cfg.Fanout)
}

// Insert adds a candidate (single-threaded; the layout ablation only needs
// sequential builds).
func (t *PointerTree) Insert(s itemset.Itemset) (int32, error) {
	if len(s) != t.cfg.K {
		return -1, fmt.Errorf("hashtree: inserting %d-itemset into K=%d pointer tree", len(s), t.cfg.K)
	}
	if !s.IsSorted() {
		return -1, fmt.Errorf("hashtree: itemset %v not sorted", s)
	}
	id := t.nCand
	t.nCand++
	ln := &plistNode{itemset: s.Clone(), id: id}
	cur := t.root
	for {
		if cur.table == nil {
			// Leaf: insert sorted by itemset.
			cur.size++
			var prev *plistNode
			p := cur.list
			for p != nil && p.itemset.Less(ln.itemset) {
				prev, p = p, p.next
			}
			ln.next = p
			if prev == nil {
				cur.list = ln
			} else {
				prev.next = ln
			}
			if cur.size > t.cfg.Threshold && int(cur.depth) < t.cfg.K {
				t.split(cur)
			}
			return id, nil
		}
		c := t.cell(ln.itemset[cur.depth])
		if cur.table[c] == nil {
			cur.table[c] = &pnode{depth: cur.depth + 1}
		}
		cur = cur.table[c]
	}
}

func (t *PointerTree) split(n *pnode) {
	n.table = make([]*pnode, t.cfg.Fanout)
	list := n.list
	n.list = nil
	n.size = 0
	for ln := list; ln != nil; {
		next := ln.next
		ln.next = nil
		c := t.cell(ln.itemset[n.depth])
		child := n.table[c]
		if child == nil {
			child = &pnode{depth: n.depth + 1}
			n.table[c] = child
		}
		// Sorted reinsertion into the child.
		child.size++
		var prev *plistNode
		p := child.list
		for p != nil && p.itemset.Less(ln.itemset) {
			prev, p = p, p.next
		}
		ln.next = p
		if prev == nil {
			child.list = ln
		} else {
			prev.next = ln
		}
		if child.size > t.cfg.Threshold && int(child.depth) < t.cfg.K {
			t.split(child)
		}
		ln = next
	}
}

// BuildPointer constructs a pointer tree from candidates.
func BuildPointer(cfg Config, cands []itemset.Itemset) (*PointerTree, error) {
	if cfg.Fanout <= 0 {
		cfg.Threshold = Config{Threshold: cfg.Threshold}.withDefaults().Threshold
		cfg.Fanout = AdaptiveFanout(int64(len(cands)), cfg.Threshold, cfg.K)
	}
	t := NewPointerTree(cfg)
	for _, s := range cands {
		if _, err := t.Insert(s); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// PointerCountCtx carries per-pass state for the pointer tree.
type PointerCountCtx struct {
	t        *PointerTree
	visit    [][]uint64
	epoch    []uint64
	txSerial uint64
	sc       bool
	// leafStamp uses a per-leaf map since pointer nodes have no ids; the
	// base (non-short-circuit) path needs per-transaction leaf dedup.
	leafStamp map[*pnode]uint64
}

// NewCountCtx prepares a counting context.
func (t *PointerTree) NewCountCtx(shortCircuit bool) *PointerCountCtx {
	ctx := &PointerCountCtx{t: t, sc: shortCircuit, leafStamp: map[*pnode]uint64{}}
	ctx.visit = make([][]uint64, t.cfg.K+1)
	for d := range ctx.visit {
		ctx.visit[d] = make([]uint64, t.cfg.Fanout)
	}
	ctx.epoch = make([]uint64, t.cfg.K+1)
	return ctx
}

// CountTransaction increments embedded per-list-node counters.
func (ctx *PointerCountCtx) CountTransaction(items itemset.Itemset) {
	if len(items) < ctx.t.cfg.K {
		return
	}
	ctx.txSerial++
	ctx.walk(ctx.t.root, items, 0)
}

func (ctx *PointerCountCtx) walk(n *pnode, items itemset.Itemset, start int) {
	t := ctx.t
	k := t.cfg.K
	if n.table == nil {
		if !ctx.sc {
			if ctx.leafStamp[n] == ctx.txSerial {
				return
			}
			ctx.leafStamp[n] = ctx.txSerial
		}
		for ln := n.list; ln != nil; ln = ln.next {
			if items.Contains(ln.itemset) {
				ln.count++
			}
		}
		return
	}
	d := int(n.depth)
	var row []uint64
	var ep uint64
	if ctx.sc {
		ctx.epoch[d]++
		ep = ctx.epoch[d]
		row = ctx.visit[d]
	}
	limit := len(items) - k + d
	for i := start; i <= limit; i++ {
		c := t.cell(items[i])
		if ctx.sc {
			if row[c] == ep {
				continue
			}
			row[c] = ep
		}
		child := n.table[c]
		if child == nil {
			continue
		}
		ctx.walk(child, items, i+1)
	}
}

// ForEachCandidate visits candidates in DFS order with their counts.
func (t *PointerTree) ForEachCandidate(fn func(items itemset.Itemset, count int64)) {
	var visit func(n *pnode)
	visit = func(n *pnode) {
		if n == nil {
			return
		}
		if n.table == nil {
			for ln := n.list; ln != nil; ln = ln.next {
				fn(ln.itemset, ln.count)
			}
			return
		}
		for _, c := range n.table {
			visit(c)
		}
	}
	visit(t.root)
}

// NumCandidates returns the number of inserted candidates.
func (t *PointerTree) NumCandidates() int { return int(t.nCand) }
