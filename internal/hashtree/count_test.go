package hashtree

import (
	"math/rand"
	"testing"

	"repro/internal/itemset"
)

// bruteCount computes reference supports by direct containment checks.
func bruteCount(cands []itemset.Itemset, txs []itemset.Itemset) map[string]int64 {
	out := map[string]int64{}
	for _, c := range cands {
		for _, tx := range txs {
			if tx.Contains(c) {
				out[c.Key()]++
			}
		}
	}
	return out
}

func randomTxs(rng *rand.Rand, n, maxLen, universe int) []itemset.Itemset {
	txs := make([]itemset.Itemset, n)
	for i := range txs {
		l := 1 + rng.Intn(maxLen)
		m := map[itemset.Item]bool{}
		for len(m) < l {
			m[itemset.Item(rng.Intn(universe))] = true
		}
		var s itemset.Itemset
		for it := range m {
			s = append(s, it)
		}
		txs[i] = itemset.New(s...)
	}
	return txs
}

func checkCounts(t *testing.T, tr *Tree, counters *Counters, want map[string]int64) {
	t.Helper()
	tr.ForEachCandidate(func(id int32) {
		key := tr.Candidate(id).Key()
		if got := counters.Count(id); got != want[key] {
			t.Errorf("candidate %v: count %d, want %d", tr.Candidate(id), got, want[key])
		}
	})
}

func TestCountSection213Example(t *testing.T) {
	// The worked example: D = {145, 12, 345, 1245}, C2 from F1={1,2,4,5}.
	txs := []itemset.Itemset{
		itemset.New(1, 4, 5), itemset.New(1, 2), itemset.New(3, 4, 5), itemset.New(1, 2, 4, 5),
	}
	c2 := []itemset.Itemset{
		itemset.New(1, 2), itemset.New(1, 4), itemset.New(1, 5),
		itemset.New(2, 4), itemset.New(2, 5), itemset.New(4, 5),
	}
	tr, err := Build(Config{K: 2, Fanout: 2, Threshold: 2, NumItems: 6}, c2)
	if err != nil {
		t.Fatal(err)
	}
	counters := tr.CountDatabase(txs, CountOpts{ShortCircuit: true})
	want := map[string]int64{
		itemset.New(1, 2).Key(): 2,
		itemset.New(1, 4).Key(): 2,
		itemset.New(1, 5).Key(): 2,
		itemset.New(2, 4).Key(): 1,
		itemset.New(2, 5).Key(): 1,
		itemset.New(4, 5).Key(): 3,
	}
	checkCounts(t, tr, counters, want)
}

func TestCountMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		k := 2 + rng.Intn(3)
		cands := map[string]itemset.Itemset{}
		for i := 0; i < 60; i++ {
			m := map[itemset.Item]bool{}
			for len(m) < k {
				m[itemset.Item(rng.Intn(25))] = true
			}
			var s itemset.Itemset
			for it := range m {
				s = append(s, it)
			}
			c := itemset.New(s...)
			cands[c.Key()] = c
		}
		var list []itemset.Itemset
		for _, c := range cands {
			list = append(list, c)
		}
		txs := randomTxs(rng, 80, 12, 25)
		want := bruteCount(list, txs)

		for _, sc := range []bool{false, true} {
			for _, hk := range []HashKind{HashInterleaved, HashBitonic} {
				tr, err := Build(Config{
					K: k, Fanout: 2 + rng.Intn(5), Threshold: 1 + rng.Intn(4),
					Hash: hk, NumItems: 25,
				}, list)
				if err != nil {
					t.Fatal(err)
				}
				counters := tr.CountDatabase(txs, CountOpts{ShortCircuit: sc})
				tr.ForEachCandidate(func(id int32) {
					key := tr.Candidate(id).Key()
					if got := counters.Count(id); got != want[key] {
						t.Fatalf("trial %d sc=%v hash=%v: candidate %v count %d, want %d",
							trial, sc, hk, tr.Candidate(id), got, want[key])
					}
				})
			}
		}
	}
}

func TestShortCircuitVisitsFewerNodes(t *testing.T) {
	// Large transactions cause many duplicate internal paths; the optimized
	// traversal must emit strictly fewer node visits. We measure via the
	// traced walk (node header loads).
	cands := combinations(16, 3)
	tr, err := Build(Config{K: 3, Fanout: 2, Threshold: 2, NumItems: 16}, cands)
	if err != nil {
		t.Fatal(err)
	}
	tx := itemset.New(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15)
	visits := func(sc bool) int {
		pl := NewPlacement(tr, 1, 1)
		counters := NewCounters(CounterAtomic, tr.NumCandidates(), 1)
		tc := pl.NewTraceCtx(counters, CountOpts{ShortCircuit: sc}, 1024)
		tc.CountTransaction(tx)
		return tc.Buf.Len()
	}
	base := visits(false)
	opt := visits(true)
	if opt >= base {
		t.Errorf("short-circuit accesses %d !< base %d", opt, base)
	}
}

func TestCountShortTransactionSkipped(t *testing.T) {
	tr, _ := Build(Config{K: 3, Fanout: 2, Threshold: 2, NumItems: 8}, combinations(8, 3))
	counters := tr.CountDatabase([]itemset.Itemset{itemset.New(1, 2)}, CountOpts{ShortCircuit: true})
	tr.ForEachCandidate(func(id int32) {
		if counters.Count(id) != 0 {
			t.Fatalf("short transaction counted: %v", tr.Candidate(id))
		}
	})
}

func TestCountersModes(t *testing.T) {
	for _, mode := range []CounterMode{CounterLocked, CounterAtomic, CounterPrivate} {
		c := NewCounters(mode, 10, 4)
		c.add(3, 0)
		c.add(3, 1)
		c.add(3, 3)
		c.add(9, 2)
		c.Reduce()
		if got := c.Count(3); got != 3 {
			t.Errorf("%v: Count(3) = %d, want 3", mode, got)
		}
		if got := c.Count(9); got != 1 {
			t.Errorf("%v: Count(9) = %d, want 1", mode, got)
		}
		if got := c.Count(0); got != 0 {
			t.Errorf("%v: Count(0) = %d", mode, got)
		}
		if len(c.Counts()) != 10 {
			t.Errorf("%v: Counts len %d", mode, len(c.Counts()))
		}
	}
}

func TestCounterModeString(t *testing.T) {
	if CounterLocked.String() != "locked" || CounterAtomic.String() != "atomic" ||
		CounterPrivate.String() != "private" || CounterMode(9).String() != "unknown" {
		t.Error("CounterMode strings wrong")
	}
}

func TestCountersParallelConsistency(t *testing.T) {
	// All three modes must agree under concurrent hammering (run with -race).
	const n, procs, iters = 50, 8, 200
	for _, mode := range []CounterMode{CounterLocked, CounterAtomic, CounterPrivate} {
		c := NewCounters(mode, n, procs)
		done := make(chan struct{})
		for p := 0; p < procs; p++ {
			go func(p int) {
				rng := rand.New(rand.NewSource(int64(p)))
				for i := 0; i < iters; i++ {
					c.add(int32(rng.Intn(n)), p)
				}
				done <- struct{}{}
			}(p)
		}
		for p := 0; p < procs; p++ {
			<-done
		}
		c.Reduce()
		var total int64
		for _, v := range c.Counts() {
			total += v
		}
		if total != procs*iters {
			t.Errorf("%v: total %d, want %d", mode, total, procs*iters)
		}
	}
}

func TestVisitedMemoryBytes(t *testing.T) {
	tr, _ := Build(Config{K: 3, Fanout: 8, Threshold: 2, NumItems: 16}, combinations(10, 3))
	ctx := tr.NewCountCtx(NewCounters(CounterAtomic, tr.NumCandidates(), 1), CountOpts{ShortCircuit: true})
	// (K+1) levels × H cells × 8 bytes.
	want := int64((3 + 1) * 8 * 8)
	if got := ctx.VisitedMemoryBytes(); got != want {
		t.Errorf("VisitedMemoryBytes = %d, want %d", got, want)
	}
}

func TestParallelCountingMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	cands := combinations(18, 2)
	txs := randomTxs(rng, 300, 10, 18)
	tr, err := Build(Config{K: 2, Fanout: 4, Threshold: 3, NumItems: 18}, cands)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteCount(cands, txs)

	const procs = 6
	counters := NewCounters(CounterPrivate, tr.NumCandidates(), procs)
	done := make(chan struct{})
	for p := 0; p < procs; p++ {
		go func(p int) {
			ctx := tr.NewCountCtx(counters, CountOpts{ShortCircuit: true, Proc: p})
			lo := p * len(txs) / procs
			hi := (p + 1) * len(txs) / procs
			for _, tx := range txs[lo:hi] {
				ctx.CountTransaction(tx)
			}
			done <- struct{}{}
		}(p)
	}
	for p := 0; p < procs; p++ {
		<-done
	}
	counters.Reduce()
	checkCounts(t, tr, counters, want)
}
