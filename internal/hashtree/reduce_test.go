package hashtree

import (
	"testing"

	"repro/internal/itemset"
	"repro/internal/sched"
)

func TestReduceRangeMatchesReduce(t *testing.T) {
	const n, procs = 100, 4
	build := func() *Counters {
		c := NewCounters(CounterPrivate, n, procs)
		for p := 0; p < procs; p++ {
			for id := int32(0); id < n; id++ {
				for k := 0; k <= p+int(id)%3; k++ {
					c.add(id, p)
				}
			}
		}
		return c
	}
	whole := build()
	whole.Reduce()

	ranged := build()
	pool := sched.NewPool(procs)
	defer pool.Close()
	pool.Run(func(p int) {
		ranged.ReduceRange(p*n/procs, (p+1)*n/procs)
	})
	for id := int32(0); id < n; id++ {
		if ranged.Count(id) != whole.Count(id) {
			t.Fatalf("id %d: ranged %d != whole %d", id, ranged.Count(id), whole.Count(id))
		}
	}
	// Private entries were zeroed, so a second reduce must not double-count.
	ranged.Reduce()
	for id := int32(0); id < n; id++ {
		if ranged.Count(id) != whole.Count(id) {
			t.Fatalf("id %d: double reduce changed count to %d", id, ranged.Count(id))
		}
	}
}

func TestReduceRangeClampsAndIgnoresSharedModes(t *testing.T) {
	c := NewCounters(CounterPrivate, 10, 2)
	c.add(3, 0)
	c.ReduceRange(-5, 100) // clamped to [0, 10)
	if c.Count(3) != 1 {
		t.Errorf("Count(3) = %d", c.Count(3))
	}
	a := NewCounters(CounterAtomic, 10, 2)
	a.add(3, 0)
	a.ReduceRange(0, 10) // no-op; count already in shared
	if a.Count(3) != 1 {
		t.Errorf("atomic Count(3) = %d", a.Count(3))
	}
}

func TestParallelBuildOnMatchesParallelBuild(t *testing.T) {
	var cands []itemset.Itemset
	for a := 0; a < 12; a++ {
		for b := a + 1; b < 12; b++ {
			cands = append(cands, itemset.New(itemset.Item(a), itemset.Item(b)))
		}
	}
	cfg := Config{K: 2, Threshold: 4, NumItems: 12}
	want, err := ParallelBuild(cfg, cands, 3)
	if err != nil {
		t.Fatal(err)
	}
	pool := sched.NewPool(3)
	defer pool.Close()
	got, err := ParallelBuildOn(pool, cfg, cands)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumCandidates() != want.NumCandidates() {
		t.Fatalf("candidates %d != %d", got.NumCandidates(), want.NumCandidates())
	}
	// Same candidate sets regardless of insertion interleaving.
	seen := map[string]bool{}
	want.ForEachCandidate(func(id int32) { seen[want.Candidate(id).Key()] = true })
	got.ForEachCandidate(func(id int32) {
		if !seen[got.Candidate(id).Key()] {
			t.Errorf("unexpected candidate %v", got.Candidate(id))
		}
	})
	// Build errors surface.
	if _, err := ParallelBuildOn(pool, cfg, []itemset.Itemset{itemset.New(1, 2, 3)}); err == nil {
		t.Error("wrong-length candidate should fail the pooled build")
	}
}
