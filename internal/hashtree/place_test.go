package hashtree

import (
	"math/rand"
	"testing"

	"repro/internal/cachesim"
	"repro/internal/itemset"
	"repro/internal/mem"
	"repro/internal/trace"
)

func buildSampleTree(t *testing.T) (*Tree, []itemset.Itemset) {
	t.Helper()
	cands := combinations(14, 3)
	tr, err := Build(Config{K: 3, Fanout: 3, Threshold: 3, Hash: HashBitonic, NumItems: 14}, cands)
	if err != nil {
		t.Fatal(err)
	}
	return tr, cands
}

func TestPlacementAssignsEveryComponent(t *testing.T) {
	tr, _ := buildSampleTree(t)
	for _, pol := range mem.AllPolicies {
		pl := NewPlacement(tr, pol, 2)
		for id := range tr.nodes {
			if pl.nodeAddr[id] == 0 || pl.ilhAddr[id] == 0 {
				t.Errorf("%v: node %d unplaced", pol, id)
			}
			if !tr.nodes[id].isLeaf() && pl.tableAddr[id] == 0 {
				t.Errorf("%v: internal node %d has no table addr", pol, id)
			}
		}
		for c := 0; c < tr.NumCandidates(); c++ {
			if pl.lnAddr[c] == 0 || pl.itemAddr[c] == 0 {
				t.Errorf("%v: candidate %d unplaced", pol, c)
			}
			if pol.PrivatizesCounters() {
				if len(pl.privCtr) != 2 || pl.privCtr[0][c] == 0 || pl.privCtr[1][c] == 0 {
					t.Errorf("%v: missing private counters", pol)
				}
			} else if pl.ctrAddr[c] == 0 || pl.lockAddr[c] == 0 {
				t.Errorf("%v: candidate %d missing counter/lock", pol, c)
			}
		}
	}
}

func TestPlacementAddressesDistinct(t *testing.T) {
	tr, _ := buildSampleTree(t)
	for _, pol := range mem.AllPolicies {
		pl := NewPlacement(tr, pol, 2)
		seen := map[mem.Addr]string{}
		record := func(a mem.Addr, what string) {
			if a == 0 {
				return
			}
			if prev, ok := seen[a]; ok {
				t.Fatalf("%v: address %#x reused by %s and %s", pol, a, prev, what)
			}
			seen[a] = what
		}
		for id := range tr.nodes {
			record(pl.nodeAddr[id], "HTN")
			record(pl.ilhAddr[id], "ILH")
			if !tr.nodes[id].isLeaf() {
				record(pl.tableAddr[id], "HTNP")
			}
		}
		for c := 0; c < tr.NumCandidates(); c++ {
			record(pl.lnAddr[c], "LN")
			record(pl.itemAddr[c], "Itemset")
		}
	}
}

func TestGPPRemapDFSContiguous(t *testing.T) {
	tr, _ := buildSampleTree(t)
	pl := NewPlacement(tr, mem.PolicyGPP, 1)
	// After the remap, DFS traversal must see monotonically increasing
	// addresses (the definition of the GPP layout).
	var prev mem.Addr
	ok := true
	var visit func(id int32)
	visit = func(id int32) {
		n := tr.nodes[id]
		if pl.nodeAddr[id] < prev {
			ok = false
		}
		prev = pl.nodeAddr[id]
		if !n.isLeaf() {
			for _, c := range n.children {
				if c >= 0 {
					visit(c)
				}
			}
			return
		}
		for _, cand := range n.items {
			if pl.lnAddr[cand] < prev {
				ok = false
			}
			prev = pl.lnAddr[cand]
		}
	}
	visit(0)
	if !ok {
		t.Error("GPP addresses not monotone in DFS order")
	}
}

func TestTracedCountsMatchUntraced(t *testing.T) {
	tr, cands := buildSampleTree(t)
	rng := rand.New(rand.NewSource(7))
	txs := randomTxs(rng, 100, 10, 14)
	want := bruteCount(cands, txs)
	for _, pol := range mem.AllPolicies {
		for _, sc := range []bool{false, true} {
			pl := NewPlacement(tr, pol, 1)
			counters := NewCounters(CounterAtomic, tr.NumCandidates(), 1)
			tc := pl.NewTraceCtx(counters, CountOpts{ShortCircuit: sc}, 4096)
			for _, tx := range txs {
				tc.CountTransaction(tx)
			}
			tr.ForEachCandidate(func(id int32) {
				key := tr.Candidate(id).Key()
				if got := counters.Count(id); got != want[key] {
					t.Fatalf("%v sc=%v: candidate %v = %d, want %d", pol, sc, tr.Candidate(id), got, want[key])
				}
			})
			if tc.Buf.Len() == 0 {
				t.Fatalf("%v: empty trace", pol)
			}
		}
	}
}

func TestPlacementLocalityOrdering(t *testing.T) {
	// The Fig. 12 single-processor claim: SPP ≤ CCPD modelled time, and GPP
	// beats CCPD as well (on a tree large enough to exceed the cache).
	cands := combinations(26, 3) // 2600 candidates
	tr, err := Build(Config{K: 3, Fanout: 5, Threshold: 4, Hash: HashBitonic, NumItems: 26}, cands)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	txs := randomTxs(rng, 150, 14, 26)
	cfg := cachesim.Config{
		Procs: 1, LineSize: 64, CacheSize: 1 << 14, Ways: 2,
		HitCycles: 1, MissCycles: 60, InvalidateCycles: 20, ComputeCycles: 1,
	}
	timeOf := func(pol mem.Policy) int64 {
		pl := NewPlacement(tr, pol, 1)
		counters := NewCounters(CounterAtomic, tr.NumCandidates(), 1)
		tc := pl.NewTraceCtx(counters, CountOpts{ShortCircuit: true}, 1<<16)
		for _, tx := range txs {
			tc.CountTransaction(tx)
		}
		res, err := cachesim.Replay(cfg, []*trace.Buffer{tc.Buf})
		if err != nil {
			t.Fatal(err)
		}
		return res.Time
	}
	ccpd := timeOf(mem.PolicyCCPD)
	spp := timeOf(mem.PolicySPP)
	gpp := timeOf(mem.PolicyGPP)
	if spp >= ccpd {
		t.Errorf("SPP time %d !< CCPD %d", spp, ccpd)
	}
	if gpp >= ccpd {
		t.Errorf("GPP time %d !< CCPD %d", gpp, ccpd)
	}
}

func TestLCAEliminatesFalseSharing(t *testing.T) {
	// Two processors counting different transactions over the same tree:
	// the base policy (inline counters) must show sharing invalidations;
	// LCA-GPP must show none on counter writes (itemset lines stay
	// read-only shared).
	cands := combinations(16, 2)
	tr, err := Build(Config{K: 2, Fanout: 4, Threshold: 3, NumItems: 16}, cands)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	txs := randomTxs(rng, 200, 10, 16)
	cfg := cachesim.DefaultConfig(2)
	invalsOf := func(pol mem.Policy) int64 {
		pl := NewPlacement(tr, pol, 2)
		counters := NewCounters(CounterPrivate, tr.NumCandidates(), 2)
		var bufs []*trace.Buffer
		for p := 0; p < 2; p++ {
			tc := pl.NewTraceCtx(counters, CountOpts{ShortCircuit: true, Proc: p}, 1<<16)
			lo, hi := p*len(txs)/2, (p+1)*len(txs)/2
			for _, tx := range txs[lo:hi] {
				tc.CountTransaction(tx)
			}
			bufs = append(bufs, tc.Buf)
		}
		res, err := cachesim.Replay(cfg, bufs)
		if err != nil {
			t.Fatal(err)
		}
		return res.Totals().InvalidationsRecv
	}
	base := invalsOf(mem.PolicyCCPD)
	lca := invalsOf(mem.PolicyLCAGPP)
	if base == 0 {
		t.Error("base policy shows no sharing invalidations — test not exercising sharing")
	}
	if lca != 0 {
		t.Errorf("LCA-GPP still causes %d invalidations", lca)
	}
}

func TestBytesUsedSegregation(t *testing.T) {
	tr, _ := buildSampleTree(t)
	plain := NewPlacement(tr, mem.PolicySPP, 1)
	seg := NewPlacement(tr, mem.PolicyLSPP, 1)
	_, rwPlain, _ := plain.BytesUsed()
	_, rwSeg, _ := seg.BytesUsed()
	if rwPlain != 0 {
		t.Errorf("SPP should not use rw region, used %d", rwPlain)
	}
	if rwSeg == 0 {
		t.Error("L-SPP should use rw region")
	}
	lca := NewPlacement(tr, mem.PolicyLCAGPP, 3)
	_, _, priv := lca.BytesUsed()
	if priv != uint64(3*4*tr.NumCandidates()) {
		t.Errorf("LCA private bytes = %d, want %d", priv, 3*4*tr.NumCandidates())
	}
}
