package hashtree

import (
	"math"
	"testing"

	"repro/internal/itemset"
)

// TestTheorem1LeafDistribution checks the practical content of Theorem 1:
// over the full k-itemset space, the bitonic hash puts a (1-1/H)^(k-1)
// fraction of leaves close to the average occupancy, while the interleaved
// (mod) hash leaves at most ~2/3 of leaves close for odd k (and none for
// even k). We measure the dispersion of itemsets-per-leaf for both hash
// functions over the complete C(d, k) itemset space and require the bitonic
// coefficient of variation to be at most the interleaved one.
func TestTheorem1LeafDistribution(t *testing.T) {
	const (
		d = 24 // items, divisible by 2H
		h = 4  // fan-out H; d/2H = 3 ≥ 1
	)
	for _, k := range []int{2, 3, 4} {
		universe := make(itemset.Itemset, d)
		for i := range universe {
			universe[i] = itemset.Item(i)
		}
		// Count itemsets per leaf signature (h(a1), …, h(ak)) directly —
		// the mapping S of the theorem.
		occupancy := func(kind HashKind) []int64 {
			cfg := Config{K: k, Fanout: h, Hash: kind, NumItems: d}
			tr := New(cfg)
			counts := map[string]int64{}
			universe.ForEachSubset(k, func(s itemset.Itemset) bool {
				sig := make([]byte, k)
				for i, it := range s {
					sig[i] = byte(tr.cell(it))
				}
				counts[string(sig)]++
				return true
			})
			out := make([]int64, 0, len(counts))
			for _, c := range counts {
				out = append(out, c)
			}
			return out
		}
		cv := func(v []int64) float64 {
			if len(v) == 0 {
				return 0
			}
			var sum float64
			for _, x := range v {
				sum += float64(x)
			}
			mean := sum / float64(len(v))
			var ss float64
			for _, x := range v {
				dlt := float64(x) - mean
				ss += dlt * dlt
			}
			return math.Sqrt(ss/float64(len(v))) / mean
		}
		biCV := cv(occupancy(HashBitonic))
		ilCV := cv(occupancy(HashInterleaved))
		if biCV > ilCV+1e-9 {
			t.Errorf("k=%d: bitonic CV %.4f > interleaved CV %.4f", k, biCV, ilCV)
		}
		// Theorem's bound: max/mean ≤ e^(k²/(d/H)) for both functions.
		bound := math.Exp(float64(k*k) / (float64(d) / float64(h)))
		for _, kind := range []HashKind{HashBitonic, HashInterleaved} {
			occ := occupancy(kind)
			var max, sum float64
			for _, c := range occ {
				sum += float64(c)
				if float64(c) > max {
					max = float64(c)
				}
			}
			// Average over the *full* leaf space T = H^k, as the theorem
			// defines kGk/kTk (empty signatures count).
			meanFull := sum / math.Pow(float64(h), float64(k))
			if max/meanFull > bound+1e-9 {
				t.Errorf("k=%d %v: max/mean %.3f exceeds theorem bound %.3f",
					k, kind, max/meanFull, bound)
			}
		}
	}
}
