package hashtree

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/itemset"
)

// combinations returns all k-subsets of the items [0, n).
func combinations(n, k int) []itemset.Itemset {
	universe := make(itemset.Itemset, n)
	for i := range universe {
		universe[i] = itemset.Item(i)
	}
	var out []itemset.Itemset
	universe.ForEachSubset(k, func(s itemset.Itemset) bool {
		out = append(out, s.Clone())
		return true
	})
	return out
}

func TestInsertAndRetrieve(t *testing.T) {
	tr := New(Config{K: 3, Fanout: 2, Threshold: 2, NumItems: 10})
	cands := []itemset.Itemset{
		itemset.New(0, 1, 2), itemset.New(0, 1, 3), itemset.New(1, 2, 4),
		itemset.New(2, 3, 4), itemset.New(0, 3, 4), itemset.New(1, 3, 4),
	}
	for _, c := range cands {
		if _, err := tr.Insert(c); err != nil {
			t.Fatal(err)
		}
	}
	if tr.NumCandidates() != len(cands) {
		t.Fatalf("NumCandidates = %d", tr.NumCandidates())
	}
	// Every candidate must be discoverable by DFS.
	var got []itemset.Itemset
	tr.ForEachCandidate(func(id int32) {
		got = append(got, tr.Candidate(id).Clone())
	})
	if len(got) != len(cands) {
		t.Fatalf("DFS found %d candidates, want %d", len(got), len(cands))
	}
	sort.Slice(got, func(i, j int) bool { return got[i].Less(got[j]) })
	want := make([]itemset.Itemset, len(cands))
	copy(want, cands)
	sort.Slice(want, func(i, j int) bool { return want[i].Less(want[j]) })
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Errorf("candidate %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestInsertRejectsBadInput(t *testing.T) {
	tr := New(Config{K: 3, Fanout: 2, Threshold: 2, NumItems: 10})
	if _, err := tr.Insert(itemset.New(1, 2)); err == nil {
		t.Error("wrong length accepted")
	}
	if _, err := tr.Insert(itemset.Itemset{3, 2, 1}); err == nil {
		t.Error("unsorted itemset accepted")
	}
}

func TestLeafSplitRespectsThreshold(t *testing.T) {
	tr := New(Config{K: 2, Fanout: 4, Threshold: 3, NumItems: 64})
	for _, c := range combinations(12, 2) {
		if _, err := tr.Insert(c); err != nil {
			t.Fatal(err)
		}
	}
	st := tr.ComputeStats()
	// No leaf above threshold unless it is at max depth K.
	for _, n := range tr.nodes {
		if n.isLeaf() && len(n.items) > 3 && int(n.depth) < 2 {
			t.Errorf("splittable leaf at depth %d holds %d items", n.depth, len(n.items))
		}
	}
	if st.MaxDepth > 2 {
		t.Errorf("depth %d exceeds K", st.MaxDepth)
	}
	if st.Candidates != 66 {
		t.Errorf("candidates = %d", st.Candidates)
	}
}

func TestDeepLeafCanExceedThreshold(t *testing.T) {
	// All candidates share the same hash path; at depth K the leaf must
	// absorb them all.
	tr := New(Config{K: 2, Fanout: 2, Threshold: 1, NumItems: 100})
	// Items 0, 2, 4, ... all hash to cell 0 under mod 2.
	for _, c := range []itemset.Itemset{
		itemset.New(0, 2), itemset.New(0, 4), itemset.New(2, 4),
		itemset.New(0, 6), itemset.New(2, 6), itemset.New(4, 6),
	} {
		if _, err := tr.Insert(c); err != nil {
			t.Fatal(err)
		}
	}
	st := tr.ComputeStats()
	if st.MaxDepth != 2 {
		t.Errorf("max depth = %d, want 2", st.MaxDepth)
	}
	found := 0
	tr.ForEachCandidate(func(int32) { found++ })
	if found != 6 {
		t.Errorf("found %d candidates", found)
	}
}

func TestAdaptiveFanout(t *testing.T) {
	// T·H^k > total: for 1000 candidates, T=10, k=2: H > 10 → 10 (ceil of sqrt(100)=10).
	if h := AdaptiveFanout(1000, 10, 2); h != 10 {
		t.Errorf("AdaptiveFanout(1000,10,2) = %d, want 10", h)
	}
	if h := AdaptiveFanout(0, 10, 2); h != 2 {
		t.Errorf("empty → min fanout, got %d", h)
	}
	if h := AdaptiveFanout(1<<40, 1, 1); h != 512 {
		t.Errorf("clamp to 512, got %d", h)
	}
	if h := AdaptiveFanout(100, 0, 0); h < 2 {
		t.Errorf("degenerate params, got %d", h)
	}
}

func TestBitonicTreeMoreBalancedThanInterleaved(t *testing.T) {
	// Theorem 1's practical claim: for the same candidates, the bitonic
	// hash yields a flatter itemsets-per-leaf distribution than mod.
	cands := combinations(24, 3)
	balance := func(kind HashKind) float64 {
		tr, err := Build(Config{K: 3, Fanout: 3, Threshold: 4, Hash: kind, NumItems: 24}, cands)
		if err != nil {
			t.Fatal(err)
		}
		return tr.ComputeStats().MaxLeafRatio()
	}
	bi := balance(HashBitonic)
	il := balance(HashInterleaved)
	if bi > il {
		t.Errorf("bitonic ratio %.3f > interleaved %.3f", bi, il)
	}
}

func TestParallelBuildMatchesSequential(t *testing.T) {
	cands := combinations(20, 3)
	seq, err := Build(Config{K: 3, Fanout: 4, Threshold: 3, NumItems: 20}, cands)
	if err != nil {
		t.Fatal(err)
	}
	par, err := ParallelBuild(Config{K: 3, Fanout: 4, Threshold: 3, NumItems: 20}, cands, 8)
	if err != nil {
		t.Fatal(err)
	}
	if seq.NumCandidates() != par.NumCandidates() {
		t.Fatalf("candidate counts differ: %d vs %d", seq.NumCandidates(), par.NumCandidates())
	}
	collect := func(tr *Tree) []string {
		var keys []string
		tr.ForEachCandidate(func(id int32) { keys = append(keys, tr.Candidate(id).Key()) })
		sort.Strings(keys)
		return keys
	}
	a, b := collect(seq), collect(par)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("candidate sets differ at %d", i)
		}
	}
}

func TestParallelBuildRace(t *testing.T) {
	// Exercised under -race: concurrent inserts into one shared tree.
	cands := combinations(30, 2) // 435 candidates
	tr, err := ParallelBuild(Config{K: 2, Threshold: 4, NumItems: 30}, cands, 8)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	tr.ForEachCandidate(func(int32) { n++ })
	if n != len(cands) {
		t.Errorf("parallel build lost candidates: %d/%d", n, len(cands))
	}
}

func TestBuildAdaptiveFanoutSelected(t *testing.T) {
	cands := combinations(30, 2)
	tr, err := Build(Config{K: 2, Threshold: 4, NumItems: 30}, cands)
	if err != nil {
		t.Fatal(err)
	}
	want := AdaptiveFanout(int64(len(cands)), 4, 2)
	if tr.Config().Fanout != want {
		t.Errorf("fanout = %d, want %d", tr.Config().Fanout, want)
	}
}

func TestStatsBytesPositive(t *testing.T) {
	tr, _ := Build(Config{K: 2, Fanout: 4, Threshold: 2, NumItems: 16}, combinations(16, 2))
	st := tr.ComputeStats()
	if st.Bytes <= 0 {
		t.Error("Bytes should be positive")
	}
	if st.Nodes != st.Internal+st.Leaves {
		t.Errorf("node accounting: %d != %d + %d", st.Nodes, st.Internal, st.Leaves)
	}
	total := 0
	for _, l := range st.LeafSizes {
		total += l
	}
	if total != st.Candidates {
		t.Errorf("leaf sizes sum %d != candidates %d", total, st.Candidates)
	}
}

func TestMaxLeafRatioEdge(t *testing.T) {
	if (Stats{}).MaxLeafRatio() != 0 {
		t.Error("empty stats ratio should be 0")
	}
}

func TestHashKindString(t *testing.T) {
	if HashBitonic.String() != "bitonic" || HashInterleaved.String() != "interleaved" {
		t.Error("HashKind strings wrong")
	}
}

func TestCellOutOfUniverse(t *testing.T) {
	tr := New(Config{K: 1, Fanout: 3, NumItems: 4})
	// Items beyond NumItems still map into range.
	for i := itemset.Item(0); i < 100; i++ {
		c := tr.cell(i)
		if c < 0 || c >= 3 {
			t.Fatalf("cell(%d) = %d", i, c)
		}
	}
	trB := New(Config{K: 1, Fanout: 3, Hash: HashBitonic, NumItems: 4})
	for i := itemset.Item(0); i < 100; i++ {
		c := trB.cell(i)
		if c < 0 || c >= 3 {
			t.Fatalf("bitonic cell(%d) = %d", i, c)
		}
	}
}

// Property: random candidate sets are always fully recoverable via DFS,
// regardless of fanout/threshold/hash combination.
func TestInsertRecoverProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		k := 2 + rng.Intn(3)
		fan := 2 + rng.Intn(6)
		thr := 1 + rng.Intn(5)
		kind := HashKind(rng.Intn(2))
		seen := map[string]bool{}
		var cands []itemset.Itemset
		for i := 0; i < 100; i++ {
			m := map[itemset.Item]bool{}
			for len(m) < k {
				m[itemset.Item(rng.Intn(40))] = true
			}
			var s itemset.Itemset
			for it := range m {
				s = append(s, it)
			}
			s = itemset.New(s...)
			if !seen[s.Key()] {
				seen[s.Key()] = true
				cands = append(cands, s)
			}
		}
		tr, err := Build(Config{K: k, Fanout: fan, Threshold: thr, Hash: kind, NumItems: 40}, cands)
		if err != nil {
			t.Fatal(err)
		}
		got := map[string]bool{}
		tr.ForEachCandidate(func(id int32) { got[tr.Candidate(id).Key()] = true })
		if len(got) != len(cands) {
			t.Fatalf("trial %d (k=%d H=%d T=%d %v): recovered %d/%d",
				trial, k, fan, thr, kind, len(got), len(cands))
		}
		for _, c := range cands {
			if !got[c.Key()] {
				t.Fatalf("trial %d: lost candidate %v", trial, c)
			}
		}
	}
}
