// Package hashtree implements the candidate hash tree of Section 2.1.1: an
// internal node at depth d holds a hash table of fan-out H whose cells point
// to depth d+1; leaves hold sorted lists of candidate k-itemsets. The
// package provides parallel construction with per-node locks
// (Section 3.1.4), the interleaved (mod) and bitonic (Theorem 1) hash
// functions with the Table 1 indirection vector, adaptive fan-out selection,
// support counting with short-circuited subset checking (Section 4.2, the
// reduced k·H·P memory scheme), and virtual memory placement for the
// locality study of Section 5.
//
// The package's work-unit model backs TestModelTimePinned, so it must stay
// free of wall-clock and randomness:
//
//armlint:pinned
package hashtree

import (
	"fmt"
	"math"
	"runtime/debug"
	"sync"

	"repro/internal/itemset"
	"repro/internal/partition"
	"repro/internal/robust"
)

// HashKind selects the cell hash function.
type HashKind int

const (
	// HashInterleaved is the simple g(i) = i mod H function.
	HashInterleaved HashKind = iota
	// HashBitonic is the balanced bitonic hash of Theorem 1, implemented
	// with an indirection vector over item labels.
	HashBitonic
)

func (h HashKind) String() string {
	if h == HashBitonic {
		return "bitonic"
	}
	return "interleaved"
}

// Config parameterizes a tree for one iteration.
type Config struct {
	K         int      // candidate itemset length (tree depth bound)
	Fanout    int      // hash table size H; ≤0 selects adaptively at Build
	Threshold int      // leaf split threshold T (max itemsets per leaf)
	Hash      HashKind // cell hash function
	NumItems  int      // item universe size (for the indirection vector)
	// Labels maps each item to its lexicographic rank among the frequent
	// 1-items (Section 4.1: "label the n frequent 1-itemsets from 0 to
	// n-1"); -1 marks unranked items. When present and Hash is HashBitonic,
	// the indirection vector hashes ranks rather than raw ids, which is
	// what makes the bitonic tree balanced regardless of how the frequent
	// items are spread over the id space. Ignored for HashInterleaved (the
	// paper's unoptimized baseline hashes raw ids mod H).
	Labels []int32
}

func (c Config) withDefaults() Config {
	if c.Threshold <= 0 {
		c.Threshold = 8
	}
	if c.Fanout <= 0 {
		c.Fanout = 8
	}
	if c.K <= 0 {
		c.K = 1
	}
	return c
}

// AdaptiveFanout solves T·H^k > totalCandidates for H (Section 3.1.1):
// H = ceil((totalCandidates/T)^(1/k)), clamped to [2, 512].
func AdaptiveFanout(totalCandidates int64, threshold, k int) int {
	if threshold < 1 {
		threshold = 1
	}
	if k < 1 {
		k = 1
	}
	if totalCandidates < 1 {
		return 2
	}
	h := int(math.Ceil(math.Pow(float64(totalCandidates)/float64(threshold), 1/float64(k))))
	if h < 2 {
		h = 2
	}
	if h > 512 {
		h = 512
	}
	return h
}

// node is one hash tree node. children == nil ⇔ leaf. A leaf at depth K can
// no longer split and its item list grows past the threshold.
type node struct {
	id       int32
	depth    int32
	children []int32 // len H; -1 = empty cell
	items    []int32 // candidate ids (leaf), sorted lexicographically
	mu       sync.Mutex
}

func (n *node) isLeaf() bool { return n.children == nil }

// event records a component creation for placement replay (Section 5:
// "placement is implicit in the order of hash tree creation").
type event struct {
	kind eventKind
	id   int32 // node id or candidate id
}

type eventKind uint8

const (
	evNode  eventKind = iota // a new leaf node: HTN + ILH
	evSplit                  // a leaf became internal: HTNP
	evCand                   // a candidate inserted: LN + Itemset (+ counter/lock)
)

// Tree is the candidate hash tree for iteration K.
type Tree struct {
	cfg     Config
	hashVec []int32 // item label → cell (indirection vector)

	// mu guards the growth of nodes, cands, and events during parallel
	// build; per-node mutation is guarded by each node's own lock. After
	// the build phase the structure is immutable and counting snapshots
	// the slice headers once.
	mu     sync.RWMutex
	nodes  []*node
	events []event
	cands  []itemset.Item // flat storage, K items per candidate
	nCand  int32

	// freezeOnce/flat cache the sealed SoA view (see flat.go). Computed
	// lazily on the first counting context; Insert after Freeze is invalid.
	freezeOnce sync.Once
	flat       *Flat
}

// New creates an empty tree. If cfg.Fanout ≤ 0 the caller should size it
// with AdaptiveFanout first; New falls back to 8.
func New(cfg Config) *Tree {
	cfg = cfg.withDefaults()
	t := &Tree{cfg: cfg}
	t.buildHashVec()
	root := &node{id: 0, depth: 0}
	t.nodes = append(t.nodes, root)
	t.events = append(t.events, event{kind: evNode, id: 0})
	return t
}

func (t *Tree) buildHashVec() {
	n := t.cfg.NumItems
	if n <= 0 {
		n = 1
	}
	t.hashVec = make([]int32, n)
	for i := range t.hashVec {
		switch t.cfg.Hash {
		case HashBitonic:
			key := i
			if t.cfg.Labels != nil && i < len(t.cfg.Labels) && t.cfg.Labels[i] >= 0 {
				key = int(t.cfg.Labels[i])
			}
			t.hashVec[i] = int32(partition.BitonicHash(key, t.cfg.Fanout))
		default:
			t.hashVec[i] = int32(i % t.cfg.Fanout)
		}
	}
}

// Config returns the tree's effective configuration.
func (t *Tree) Config() Config { return t.cfg }

// K returns the candidate length.
func (t *Tree) K() int { return t.cfg.K }

// NumCandidates returns the number of inserted candidates.
func (t *Tree) NumCandidates() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return int(t.nCand)
}

// Candidate returns candidate id's itemset; the slice aliases internal
// storage and must not be modified.
func (t *Tree) Candidate(id int32) itemset.Itemset {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.candidateLocked(id)
}

func (t *Tree) candidateLocked(id int32) itemset.Itemset {
	k := t.cfg.K
	return itemset.Itemset(t.cands[int(id)*k : int(id)*k+k])
}

// cell hashes an item to a hash table cell.
func (t *Tree) cell(it itemset.Item) int32 {
	if int(it) < len(t.hashVec) && it >= 0 {
		return t.hashVec[it]
	}
	// Items outside the declared universe still hash consistently.
	if t.cfg.Hash == HashBitonic {
		return int32(partition.BitonicHash(int(it), t.cfg.Fanout))
	}
	return int32(int(it) % t.cfg.Fanout)
}

// getNode reads a node pointer safely during concurrent growth.
func (t *Tree) getNode(id int32) *node {
	t.mu.RLock()
	n := t.nodes[id]
	t.mu.RUnlock()
	return n
}

// newNode allocates a node and logs the creation event.
func (t *Tree) newNode(depth int32) int32 {
	t.mu.Lock()
	id := int32(len(t.nodes))
	t.nodes = append(t.nodes, &node{id: id, depth: depth})
	t.events = append(t.events, event{kind: evNode, id: id})
	t.mu.Unlock()
	return id
}

// addCandidate stores the itemset and logs the creation event.
func (t *Tree) addCandidate(s itemset.Itemset) int32 {
	t.mu.Lock()
	id := t.nCand
	t.nCand++
	t.cands = append(t.cands, s...)
	t.events = append(t.events, event{kind: evCand, id: id})
	t.mu.Unlock()
	return id
}

// logSplit records a leaf→internal conversion event.
func (t *Tree) logSplit(id int32) {
	t.mu.Lock()
	t.events = append(t.events, event{kind: evSplit, id: id})
	t.mu.Unlock()
}

// Insert adds a candidate k-itemset and returns its candidate id. It is
// safe for concurrent use: descent uses per-node locking and leaf splits
// happen with the leaf's lock held, implementing the Section 3.1.4 scheme.
func (t *Tree) Insert(s itemset.Itemset) (int32, error) {
	if len(s) != t.cfg.K {
		return -1, fmt.Errorf("hashtree: inserting %d-itemset into K=%d tree", len(s), t.cfg.K)
	}
	if !s.IsSorted() {
		return -1, fmt.Errorf("hashtree: itemset %v not sorted", s)
	}
	cand := t.addCandidate(s.Clone())
	t.insertCand(cand, s)
	return cand, nil
}

func (t *Tree) insertCand(cand int32, s itemset.Itemset) {
	cur := int32(0)
	for {
		n := t.getNode(cur)
		n.mu.Lock()
		if n.isLeaf() {
			n.items = t.insertSorted(n.items, cand)
			if len(n.items) > t.cfg.Threshold && int(n.depth) < t.cfg.K {
				t.split(n)
			}
			n.mu.Unlock()
			return
		}
		c := t.cell(s[n.depth])
		child := n.children[c]
		if child < 0 {
			child = t.newNode(n.depth + 1)
			n.children[c] = child
		}
		n.mu.Unlock()
		cur = child
	}
}

// insertSorted keeps the leaf list in lexicographic candidate order, as the
// paper's leaves are sorted linked lists.
func (t *Tree) insertSorted(items []int32, cand int32) []int32 {
	t.mu.RLock()
	s := t.candidateLocked(cand)
	lo, hi := 0, len(items)
	for lo < hi {
		mid := (lo + hi) / 2
		if t.candidateLocked(items[mid]).Less(s) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	t.mu.RUnlock()
	items = append(items, 0)
	copy(items[lo+1:], items[lo:])
	items[lo] = cand
	return items
}

// split converts a locked leaf into an internal node, redistributing its
// candidates one level down by hashing the item at the leaf's depth. The
// conversion happens with the node lock held ("with the lock still set").
func (t *Tree) split(n *node) {
	n.children = make([]int32, t.cfg.Fanout)
	for i := range n.children {
		n.children[i] = -1
	}
	t.logSplit(n.id)
	old := n.items
	n.items = nil
	for _, cand := range old {
		t.mu.RLock()
		s := t.candidateLocked(cand)
		t.mu.RUnlock()
		c := t.cell(s[n.depth])
		child := n.children[c]
		if child < 0 {
			child = t.newNode(n.depth + 1)
			n.children[c] = child
		}
		cn := t.getNode(child)
		cn.mu.Lock()
		cn.items = t.insertSorted(cn.items, cand)
		// A redistribution can itself overflow a child (all candidates in
		// one cell); recurse while depth allows.
		if len(cn.items) > t.cfg.Threshold && int(cn.depth) < t.cfg.K {
			t.split(cn)
		}
		cn.mu.Unlock()
	}
}

// Build constructs a tree from a candidate list, selecting the fan-out
// adaptively from the candidate count when cfg.Fanout ≤ 0. It is the
// sequential convenience constructor; see ParallelBuild for the
// multi-processor version.
func Build(cfg Config, cands []itemset.Itemset) (*Tree, error) {
	return ParallelBuild(cfg, cands, 1)
}

// Runner abstracts a persistent worker pool (internal/sched.Pool satisfies
// it): Run executes fn once per processor id in [0, Procs), blocks until
// every worker finishes, and reports a contained worker panic (typically a
// *robust.WorkerPanicError) instead of crashing the process.
type Runner interface {
	Procs() int
	Run(fn func(p int)) error
}

// spawnRunner is the transient fallback Runner: it spawns fresh goroutines
// per Run, preserving the historical ParallelBuild behaviour for callers
// without a pool. Panics are contained with the same error contract as the
// pool.
type spawnRunner int

func (r spawnRunner) Procs() int { return int(r) }

func (r spawnRunner) Run(fn func(p int)) error {
	var wg sync.WaitGroup
	errs := make([]error, int(r))
	for p := 0; p < int(r); p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					errs[p] = &robust.WorkerPanicError{
						Worker: p, Chunk: -1, Value: rec, Stack: debug.Stack(),
					}
				}
			}()
			fn(p)
		}(p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ParallelBuild constructs the tree with procs goroutines inserting
// partitioned slices of the candidate list concurrently (Section 3.1.4).
func ParallelBuild(cfg Config, cands []itemset.Itemset, procs int) (*Tree, error) {
	if procs < 1 {
		procs = 1
	}
	return ParallelBuildOn(spawnRunner(procs), cfg, cands)
}

// ParallelBuildOn is ParallelBuild driven by an existing worker pool, so the
// per-iteration tree build reuses the mining run's persistent workers
// instead of spawning P goroutines each iteration.
func ParallelBuildOn(r Runner, cfg Config, cands []itemset.Itemset) (*Tree, error) {
	procs := r.Procs()
	if procs < 1 {
		procs = 1
	}
	if cfg.Fanout <= 0 {
		cfg.Threshold = Config{Threshold: cfg.Threshold}.withDefaults().Threshold
		cfg.Fanout = AdaptiveFanout(int64(len(cands)), cfg.Threshold, cfg.K)
	}
	t := New(cfg)
	errs := make([]error, procs)
	if err := r.Run(func(p int) {
		lo := p * len(cands) / procs
		hi := (p + 1) * len(cands) / procs
		for _, s := range cands[lo:hi] {
			if _, err := t.Insert(s); err != nil {
				errs[p] = err
				return
			}
		}
	}); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Stats summarizes tree shape for the balance experiments (Theorem 1) and
// the Fig. 6 footprint series.
type Stats struct {
	Nodes, Internal, Leaves int
	MaxDepth                int
	Candidates              int
	// LeafSizes is the distribution of itemsets per leaf.
	LeafSizes []int
	// Bytes is the modelled memory footprint: HTN 16B, HTNP 8H, ILH 8B,
	// LN 16B, Itemset 4K+8B (inline counter+lock), matching the placement
	// component sizes.
	Bytes int64
}

// ComputeStats walks the tree. Not safe during a concurrent build.
func (t *Tree) ComputeStats() Stats {
	st := Stats{Candidates: int(t.nCand)}
	for _, n := range t.nodes {
		st.Nodes++
		if int(n.depth) > st.MaxDepth {
			st.MaxDepth = int(n.depth)
		}
		st.Bytes += sizeHTN + sizeILH
		if n.isLeaf() {
			st.Leaves++
			st.LeafSizes = append(st.LeafSizes, len(n.items))
		} else {
			st.Internal++
			st.Bytes += int64(8 * t.cfg.Fanout)
		}
	}
	st.Bytes += int64(t.nCand) * (sizeLN + int64(4*t.cfg.K) + 8)
	return st
}

// MaxLeafRatio returns max-itemsets-per-leaf divided by the mean — the
// balance metric Theorem 1 bounds.
func (s Stats) MaxLeafRatio() float64 {
	if len(s.LeafSizes) == 0 || s.Candidates == 0 {
		return 0
	}
	max := 0
	for _, v := range s.LeafSizes {
		if v > max {
			max = v
		}
	}
	mean := float64(s.Candidates) / float64(len(s.LeafSizes))
	if mean == 0 {
		return 0
	}
	return float64(max) / mean
}

// ForEachCandidate visits every candidate id in depth-first tree order —
// the traversal used to extract frequent itemsets ("traverse the hash tree
// in depth first order"). Not safe during a concurrent build.
func (t *Tree) ForEachCandidate(fn func(id int32)) {
	t.dfs(0, func(n *node) {
		for _, c := range n.items {
			fn(c)
		}
	})
}

func (t *Tree) dfs(id int32, fn func(*node)) {
	n := t.nodes[id]
	fn(n)
	if n.isLeaf() {
		return
	}
	for _, c := range n.children {
		if c >= 0 {
			t.dfs(c, fn)
		}
	}
}
