package hashtree

import (
	"repro/internal/itemset"
	"repro/internal/partition"
)

// Flat is the frozen struct-of-arrays form of a built Tree — the real-memory
// analogue of the paper's GPP depth-first remap (Section 5.1). Where the
// pointer tree scatters every node header, hash table and leaf list across
// separate heap allocations, Flat packs the whole tree-region into four
// contiguous arenas laid out in depth-first traversal order, which is exactly
// the order the counting walk touches them:
//
//   - childBase[n]: offset of node n's hash table inside children, or -1 for
//     a leaf. Internal nodes occupy H consecutive cells (child node id or -1).
//   - leafStart[n] / leafItems: a CSR arena of per-leaf candidate-id lists
//     (internal nodes have empty ranges).
//   - cands: the K-items-per-candidate payload arena, shared with the Tree.
//
// Node ids are renumbered in DFS preorder, so a counting descent moves
// monotonically forward through the arenas — sequential prefetch instead of
// pointer chasing. A Flat is immutable; it is safe for any number of
// concurrent readers.
type Flat struct {
	k      int
	fanout int
	hash   HashKind

	hashVec []int32 // item → cell indirection (shared with the Tree)

	childBase []int32        // per node: children offset, -1 ⇔ leaf
	children  []int32        // H cells per internal node, DFS order
	leafStart []int32        // len numNodes+1, CSR into leafItems
	leafItems []int32        // candidate ids, per-leaf runs, leaf-sorted order
	cands     []itemset.Item // flat candidate storage, K items each
	nCand     int32

	// stampLen sizes the per-context transaction item-stamp array: one past
	// the largest item appearing in any candidate. A transaction item outside
	// [0, stampLen) can never match a candidate item, so stamping only the
	// in-range transaction items keeps the O(1) membership test exact.
	// 0 when some candidate item is negative (malformed input) — contexts
	// then fall back to the merge-walk containment test.
	stampLen int
}

// NumNodes returns the node count of the frozen tree.
func (f *Flat) NumNodes() int { return len(f.childBase) }

// NumCandidates returns the candidate count.
func (f *Flat) NumCandidates() int { return int(f.nCand) }

// candidate returns candidate id's itemset view into the flat arena.
//
//armlint:noalloc
func (f *Flat) candidate(id int32) itemset.Itemset {
	return itemset.Itemset(f.cands[int(id)*f.k : int(id)*f.k+f.k])
}

// cell hashes an item to a hash-table cell — the same rules as Tree.cell.
//
//armlint:noalloc
func (f *Flat) cell(it itemset.Item) int32 {
	if int(it) < len(f.hashVec) && it >= 0 {
		return f.hashVec[it]
	}
	if f.hash == HashBitonic {
		return int32(partition.BitonicHash(int(it), f.fanout))
	}
	return int32(int(it) % f.fanout)
}

// Freeze seals the built tree into its flat SoA form, computing it once and
// caching it on the Tree. The tree must be fully built: Insert after Freeze
// is a programming error (the frozen view would go stale). All counting
// contexts share the same frozen layout.
func (t *Tree) Freeze() *Flat {
	t.freezeOnce.Do(func() { t.flat = t.buildFlat() })
	return t.flat
}

// buildFlat renumbers nodes in DFS preorder and packs the SoA arenas.
func (t *Tree) buildFlat() *Flat {
	numNodes := len(t.nodes)
	f := &Flat{
		k:         t.cfg.K,
		fanout:    t.cfg.Fanout,
		hash:      t.cfg.Hash,
		hashVec:   t.hashVec,
		childBase: make([]int32, 0, numNodes),
		leafStart: make([]int32, 1, numNodes+1),
		cands:     t.cands,
		nCand:     t.nCand,
	}
	maxItem := itemset.Item(-1)
	for _, it := range t.cands {
		if it < 0 {
			maxItem = -1
			break
		}
		if it > maxItem {
			maxItem = it
		}
	}
	f.stampLen = int(maxItem) + 1
	var internal, leafCands int
	for _, n := range t.nodes {
		if n.isLeaf() {
			leafCands += len(n.items)
		} else {
			internal++
		}
	}
	f.children = make([]int32, 0, internal*t.cfg.Fanout)
	f.leafItems = make([]int32, 0, leafCands)

	var visit func(id int32)
	visit = func(id int32) {
		n := t.nodes[id]
		if n.isLeaf() {
			f.childBase = append(f.childBase, -1)
			f.leafItems = append(f.leafItems, n.items...)
			f.leafStart = append(f.leafStart, int32(len(f.leafItems)))
			return
		}
		base := int32(len(f.children))
		f.childBase = append(f.childBase, base)
		f.leafStart = append(f.leafStart, int32(len(f.leafItems)))
		f.children = append(f.children, n.children...)
		for c, ch := range n.children {
			if ch < 0 {
				f.children[base+int32(c)] = -1
				continue
			}
			f.children[base+int32(c)] = int32(len(f.childBase))
			visit(ch)
		}
	}
	visit(0)
	return f
}
