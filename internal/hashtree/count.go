package hashtree

import (
	"sync"
	"sync/atomic"

	"repro/internal/itemset"
)

// CounterMode selects how support counters are updated during parallel
// counting — the design axis evaluated in Section 5.2.
type CounterMode int

const (
	// CounterLocked guards shared counters with striped locks, the paper's
	// base scheme (lock, increment, unlock).
	CounterLocked CounterMode = iota
	// CounterAtomic updates shared counters with atomic adds — the modern
	// SMP equivalent of fine-grained locking.
	CounterAtomic
	// CounterPrivate keeps one counter array per processor and sums them in
	// a final reduction — the privatize-and-reduce LCA scheme, free of both
	// synchronization and false sharing.
	CounterPrivate
)

func (m CounterMode) String() string {
	switch m {
	case CounterLocked:
		return "locked"
	case CounterAtomic:
		return "atomic"
	case CounterPrivate:
		return "private"
	}
	return "unknown"
}

const lockStripes = 256

// Counters holds the support counts for one tree's candidates.
type Counters struct {
	Mode   CounterMode
	shared []int64
	locks  []sync.Mutex
	priv   [][]int64
}

// NewCounters allocates counters for n candidates and procs processors.
func NewCounters(mode CounterMode, n, procs int) *Counters {
	c := &Counters{Mode: mode}
	switch mode {
	case CounterPrivate:
		c.priv = make([][]int64, procs)
		for p := range c.priv {
			c.priv[p] = make([]int64, n)
		}
		// The reduction target.
		c.shared = make([]int64, n)
	case CounterLocked:
		c.shared = make([]int64, n)
		c.locks = make([]sync.Mutex, lockStripes)
	default:
		c.shared = make([]int64, n)
	}
	return c
}

// add increments candidate id's counter on behalf of processor proc.
func (c *Counters) add(id int32, proc int) {
	switch c.Mode {
	case CounterPrivate:
		c.priv[proc][id]++
	case CounterLocked:
		l := &c.locks[uint32(id)%lockStripes]
		l.Lock()
		c.shared[id]++
		l.Unlock()
	default:
		atomic.AddInt64(&c.shared[id], 1)
	}
}

// Reduce folds private arrays into the shared totals (no-op for shared
// modes). Call once after all counting completes.
func (c *Counters) Reduce() {
	if c.Mode != CounterPrivate {
		return
	}
	for _, arr := range c.priv {
		for i, v := range arr {
			c.shared[i] += v
		}
	}
	for p := range c.priv {
		for i := range c.priv[p] {
			c.priv[p][i] = 0
		}
	}
}

// Count returns candidate id's total (after Reduce for private mode).
func (c *Counters) Count(id int32) int64 { return c.shared[id] }

// Counts exposes the full totals slice (read-only).
func (c *Counters) Counts() []int64 { return c.shared }

// CountOpts configures a counting pass.
type CountOpts struct {
	// ShortCircuit enables the Section 4.2 visited-marking optimization
	// that preempts duplicate traversals at internal nodes. When disabled,
	// only leaves deduplicate (required for correct counts — the paper's
	// unoptimized base case).
	ShortCircuit bool
	// Proc is the processor identity (private counters, trace attribution).
	Proc int
}

// Deterministic work-unit costs for the counting cost model. On a host
// without enough real cores to observe parallel wall-clock behaviour, the
// experiment harness models per-processor time as accumulated work units;
// the weights approximate relative instruction costs of the operations.
const (
	WorkNodeVisit  = 1 // enter a node, read its header
	WorkCellProbe  = 1 // hash an item and read one table cell
	WorkLeafCand   = 4 // walk one list node + subset containment test
	WorkCtrUpdate  = 3 // lock, increment, unlock
	WorkJoinPair   = 3 // form one join candidate
	WorkPruneCheck = 2 // one (k-1)-subset membership probe
	WorkInsert     = 6 // one hash-tree insertion
	WorkItemScan   = 1 // read one transaction item (iteration 1)
)

// CountCtx is one processor's reusable counting state: the k·H visited
// flags of the reduced-memory short-circuit scheme, per-leaf visit stamps
// for the base case, and a snapshot of the (now immutable) tree.
type CountCtx struct {
	t    *Tree
	opts CountOpts

	// Work accumulates deterministic work units (see the work* constants);
	// the harness uses max-over-processors as the modelled parallel time.
	Work int64

	nodes []*node
	cands []itemset.Item

	// visit[d][c] holds the epoch in which cell c at recursion depth d was
	// last taken; one H-sized row per level — the k·H·P scheme. Epochs
	// avoid clearing rows between expansions.
	visit [][]uint64
	epoch []uint64 // per-depth expansion serial

	// leafStamp[node] holds the transaction serial of the last visit, for
	// leaf-only deduplication when short-circuiting is off.
	leafStamp []uint64
	txSerial  uint64

	counters *Counters
}

// NewCountCtx prepares a context. The tree must be fully built.
func (t *Tree) NewCountCtx(counters *Counters, opts CountOpts) *CountCtx {
	ctx := &CountCtx{
		t:        t,
		opts:     opts,
		nodes:    t.nodes,
		cands:    t.cands,
		counters: counters,
	}
	k := t.cfg.K
	ctx.visit = make([][]uint64, k+1)
	for d := range ctx.visit {
		ctx.visit[d] = make([]uint64, t.cfg.Fanout)
	}
	ctx.epoch = make([]uint64, k+1)
	ctx.leafStamp = make([]uint64, len(t.nodes))
	return ctx
}

// candidateOf returns the snapshot view of a candidate's itemset.
func (ctx *CountCtx) candidateOf(id int32) itemset.Itemset {
	k := ctx.t.cfg.K
	return itemset.Itemset(ctx.cands[int(id)*k : int(id)*k+k])
}

// CountTransaction updates support counts for every candidate contained in
// the transaction, walking the tree as in Section 2.1.2: at depth d hash on
// the transaction items that can still start a valid k-subset suffix.
func (ctx *CountCtx) CountTransaction(items itemset.Itemset) {
	k := ctx.t.cfg.K
	if len(items) < k {
		return
	}
	ctx.txSerial++
	ctx.walk(0, items, 0)
}

// walk processes node id; transaction items from position start onward are
// candidates for hashing at this node's depth.
func (ctx *CountCtx) walk(id int32, items itemset.Itemset, start int) {
	n := ctx.nodes[id]
	k := ctx.t.cfg.K
	ctx.Work += WorkNodeVisit
	if n.isLeaf() {
		if !ctx.opts.ShortCircuit {
			// Base case: leaf-level VISITED stamp prevents double counting
			// when multiple root paths reach the same leaf.
			if ctx.leafStamp[id] == ctx.txSerial {
				return
			}
			ctx.leafStamp[id] = ctx.txSerial
		}
		// A leaf scan walks one list node and runs a containment merge over
		// a k-itemset, so its cost grows with k.
		ctx.Work += int64(len(n.items)) * int64(WorkLeafCand+k)
		for _, cand := range n.items {
			if items.Contains(ctx.candidateOf(cand)) {
				ctx.counters.add(cand, ctx.opts.Proc)
				ctx.Work += WorkCtrUpdate
			}
		}
		return
	}
	d := int(n.depth)
	var row []uint64
	var ep uint64
	if ctx.opts.ShortCircuit {
		ctx.epoch[d]++
		ep = ctx.epoch[d]
		row = ctx.visit[d]
	}
	// Items 0..n-k+d at this level (paper: "hash on the remaining items i
	// through (n-k+1)+d").
	limit := len(items) - k + d
	for i := start; i <= limit; i++ {
		c := ctx.t.cell(items[i])
		ctx.Work += WorkCellProbe
		if ctx.opts.ShortCircuit {
			if row[c] == ep {
				continue // short-circuit: subtree already processed
			}
			row[c] = ep
		}
		child := n.children[c]
		if child < 0 {
			continue
		}
		ctx.walk(child, items, i+1)
	}
}

// VisitedMemoryBytes reports the short-circuit bookkeeping footprint of this
// context: k·H epoch words — the reduced scheme. The full scheme of the
// paper's first cut would need H^k flags.
func (ctx *CountCtx) VisitedMemoryBytes() int64 {
	var b int64
	for _, row := range ctx.visit {
		b += int64(len(row)) * 8
	}
	return b
}

// CountDatabase is a sequential convenience: counts every transaction
// through a fresh context and returns the counters.
func (t *Tree) CountDatabase(transactions []itemset.Itemset, opts CountOpts) *Counters {
	counters := NewCounters(CounterAtomic, t.NumCandidates(), 1)
	ctx := t.NewCountCtx(counters, opts)
	for _, tx := range transactions {
		ctx.CountTransaction(tx)
	}
	return counters
}
