package hashtree

import (
	"slices"
	"sync"
	"sync/atomic"

	"repro/internal/itemset"
)

// CounterMode selects how support counters are updated during parallel
// counting — the design axis evaluated in Section 5.2.
type CounterMode int

const (
	// CounterLocked guards shared counters with striped locks, the paper's
	// base scheme (lock, increment, unlock).
	CounterLocked CounterMode = iota
	// CounterAtomic updates shared counters with atomic adds — the modern
	// SMP equivalent of fine-grained locking.
	CounterAtomic
	// CounterPrivate keeps one counter array per processor and sums them in
	// a final reduction — the privatize-and-reduce LCA scheme, free of both
	// synchronization and false sharing.
	CounterPrivate
)

func (m CounterMode) String() string {
	switch m {
	case CounterLocked:
		return "locked"
	case CounterAtomic:
		return "atomic"
	case CounterPrivate:
		return "private"
	}
	return "unknown"
}

const lockStripes = 256

// Counters holds the support counts for one tree's candidates.
//
// shared's access discipline is Mode-dependent — the Section 5.2 design
// axis. Under CounterLocked every element access holds its stripe of
// locks (machine-checked by armlint's guardedby pass); under CounterAtomic
// elements are only touched through sync/atomic (the atomic-mix pass);
// under CounterPrivate the counting phase writes only priv, and shared is
// touched by the single-owner reduction. The Mode never changes after
// NewCounters, which is the isolation argument each //armlint:allow below
// states.
type Counters struct {
	Mode CounterMode
	//armlint:guardedby locks
	shared []int64
	locks  []sync.Mutex
	priv   [][]int64
}

// NewCounters allocates counters for n candidates and procs processors.
func NewCounters(mode CounterMode, n, procs int) *Counters {
	c := &Counters{Mode: mode}
	switch mode {
	case CounterPrivate:
		c.priv = make([][]int64, procs)
		for p := range c.priv {
			c.priv[p] = make([]int64, n)
		}
		// The reduction target.
		c.shared = make([]int64, n)
	case CounterLocked:
		c.shared = make([]int64, n)
		c.locks = make([]sync.Mutex, lockStripes)
	default:
		c.shared = make([]int64, n)
	}
	return c
}

// add increments candidate id's counter on behalf of processor proc.
//
//armlint:noalloc
func (c *Counters) add(id int32, proc int) {
	switch c.Mode {
	case CounterPrivate:
		c.priv[proc][id]++
	case CounterLocked:
		l := &c.locks[uint32(id)%lockStripes]
		l.Lock()
		//armlint:allow atomic-mix locked and atomic modes are mutually exclusive per run (Mode is fixed at construction)
		c.shared[id]++
		l.Unlock()
	default:
		atomic.AddInt64(&c.shared[id], 1)
	}
}

// addN adds n to candidate id's counter — one synchronization event per call
// regardless of n, which is what makes batched flushing cheaper than n
// individual adds under the locked and atomic modes.
//
//armlint:noalloc
func (c *Counters) addN(id int32, n int64, proc int) {
	switch c.Mode {
	case CounterPrivate:
		c.priv[proc][id] += n
	case CounterLocked:
		l := &c.locks[uint32(id)%lockStripes]
		l.Lock()
		//armlint:allow atomic-mix locked and atomic modes are mutually exclusive per run (Mode is fixed at construction)
		c.shared[id] += n
		l.Unlock()
	default:
		atomic.AddInt64(&c.shared[id], n)
	}
}

// Reduce folds private arrays into the shared totals (no-op for shared
// modes). Call once after all counting completes.
func (c *Counters) Reduce() {
	c.ReduceRange(0, len(c.shared))
}

// ReduceRange folds the private arrays into the shared totals for candidate
// ids in [lo, hi) only, zeroing the folded private entries. Disjoint ranges
// touch disjoint indices, so a worker pool can range-partition the reduction
// and run the pieces concurrently — the parallel replacement for the serial
// O(P·C) master tail. No-op for the shared modes.
func (c *Counters) ReduceRange(lo, hi int) {
	if c.Mode != CounterPrivate {
		return
	}
	if lo < 0 {
		lo = 0
	}
	if hi > len(c.shared) {
		hi = len(c.shared)
	}
	for _, arr := range c.priv {
		for i := lo; i < hi; i++ {
			//armlint:allow atomic-mix,guardedby private mode only: no lock/atomic traffic exists, and callers reduce disjoint ranges after the counting barrier
			c.shared[i] += arr[i]
			arr[i] = 0
		}
	}
}

// Count returns candidate id's total (after Reduce for private mode).
//
//armlint:allow atomic-mix,guardedby read-only extraction runs after the counting barrier; no writer is live
func (c *Counters) Count(id int32) int64 { return c.shared[id] }

// Counts exposes the full totals slice (read-only).
func (c *Counters) Counts() []int64 { return c.shared }

// CountOpts configures a counting pass.
type CountOpts struct {
	// ShortCircuit enables the Section 4.2 visited-marking optimization
	// that preempts duplicate traversals at internal nodes. When disabled,
	// only leaves deduplicate (required for correct counts — the paper's
	// unoptimized base case).
	ShortCircuit bool
	// Proc is the processor identity (private counters, trace attribution).
	Proc int
	// BatchUpdates buffers counter increments per context and flushes them
	// in aggregated batches, cutting the number of lock/atomic RMW events on
	// hot candidates under the shared-counter modes. Callers that enable it
	// MUST call Flush after their last CountTransaction, before reading
	// counts. Ignored for CounterPrivate (already synchronization-free).
	BatchUpdates bool
	// OnFlush, when set, observes every batched counter flush with the
	// number of buffered updates applied — the observability layer's flush
	// event hook. It is called from the counting hot path and must not
	// allocate or block.
	OnFlush func(updates int)
}

// Deterministic work-unit costs for the counting cost model. On a host
// without enough real cores to observe parallel wall-clock behaviour, the
// experiment harness models per-processor time as accumulated work units;
// the weights approximate relative instruction costs of the operations.
const (
	WorkNodeVisit  = 1 // enter a node, read its header
	WorkCellProbe  = 1 // hash an item and read one table cell
	WorkLeafCand   = 4 // walk one list node + subset containment test
	WorkCtrUpdate  = 3 // lock, increment, unlock
	WorkJoinPair   = 3 // form one join candidate
	WorkPruneCheck = 2 // one (k-1)-subset membership probe
	WorkInsert     = 6 // one hash-tree insertion
	WorkItemScan   = 1 // read one transaction item (iteration 1)
)

// batchCap sizes the per-context update buffer: small enough to stay L1/L2
// resident, large enough that a flush amortizes its sort over many updates.
const batchCap = 256

// walkFrame is one level of the explicit traversal stack: the node's hash
// table offset, the next transaction item index to probe, and the node's
// short-circuit epoch. The frame index in the stack equals the node depth.
type walkFrame struct {
	base int32  // childBase of the internal node
	i    int32  // next items[] position to hash at this level
	ep   uint64 // this expansion's epoch (short-circuit mode)
}

// CountCtx is one processor's reusable counting state over the frozen flat
// tree: the k·H visited epochs of the reduced-memory short-circuit scheme,
// per-leaf visit stamps for the base case, the explicit descent stack, and
// an optional batched counter-update buffer. All state is allocated once at
// construction; CountTransaction performs zero heap allocations.
type CountCtx struct {
	t    *Tree
	f    *Flat
	opts CountOpts

	// Work accumulates deterministic work units (see the work* constants);
	// the harness uses max-over-processors work as the modelled parallel
	// time. It is bumped on every node visit by the owning worker — hot in
	// the falseshare sense, which is safe only because contexts are
	// separately heap-allocated, never packed into a []CountCtx (armlint's
	// falseshare pass would flag such a slice).
	//
	//armlint:hot
	Work int64

	// visit[d·H+c] holds the epoch in which cell c at depth d was last
	// taken; one H-sized row per level — the k·H·P scheme. Epochs avoid
	// clearing rows between expansions.
	visit []uint64
	epoch []uint64 // per-depth expansion serial

	// leafStamp[node] holds the transaction serial of the last visit, for
	// leaf-only deduplication when short-circuiting is off. Indexed by flat
	// (DFS-order) node id.
	leafStamp []uint64
	txSerial  uint64

	// itemStamp[it] == txSerial ⇔ item it occurs in the current transaction,
	// turning the per-candidate containment merge into k O(1) probes. Sized
	// by Flat.stampLen; nil disables the fast path (negative candidate items).
	itemStamp []uint64

	stack []walkFrame

	counters *Counters
	batch    []int32 // pending candidate-id increments (nil ⇔ unbatched)
	batchLen int
}

// NewCountCtx prepares a context, sealing the tree into its flat form on
// first use. The tree must be fully built.
func (t *Tree) NewCountCtx(counters *Counters, opts CountOpts) *CountCtx {
	f := t.Freeze()
	ctx := &CountCtx{
		t:        t,
		f:        f,
		opts:     opts,
		counters: counters,
	}
	k := f.k
	ctx.visit = make([]uint64, (k+1)*f.fanout)
	ctx.epoch = make([]uint64, k+1)
	ctx.leafStamp = make([]uint64, f.NumNodes())
	if f.stampLen > 0 {
		ctx.itemStamp = make([]uint64, f.stampLen)
	}
	ctx.stack = make([]walkFrame, k+1)
	if opts.BatchUpdates && counters != nil && counters.Mode != CounterPrivate {
		ctx.batch = make([]int32, batchCap)
	}
	return ctx
}

// CountTransaction updates support counts for every candidate contained in
// the transaction, walking the tree as in Section 2.1.2: at depth d hash on
// the transaction items that can still start a valid k-subset suffix. The
// traversal is iterative over the frozen SoA layout — no recursion, no heap
// allocation — but visits nodes in exactly the order of the recursive walk,
// so counts, traces and modelled work units are bit-identical to it.
//
//armlint:noalloc
func (ctx *CountCtx) CountTransaction(items itemset.Itemset) {
	f := ctx.f
	k := f.k
	if len(items) < k {
		return
	}
	ctx.txSerial++
	if stamp := ctx.itemStamp; stamp != nil {
		n := itemset.Item(len(stamp))
		for _, it := range items {
			if it >= 0 && it < n {
				stamp[it] = ctx.txSerial
			}
		}
	}
	sc := ctx.opts.ShortCircuit
	H := int32(f.fanout)

	ctx.Work += WorkNodeVisit
	rootBase := f.childBase[0]
	if rootBase < 0 {
		ctx.scanLeaf(0, items)
		return
	}
	var ep uint64
	if sc {
		ctx.epoch[0]++
		ep = ctx.epoch[0]
	}
	stack := ctx.stack
	stack[0] = walkFrame{base: rootBase, i: 0, ep: ep}
	depth := 0
	for depth >= 0 {
		fr := &stack[depth]
		// Items start..(n-k+d) at this level (paper: "hash on the remaining
		// items i through (n-k+1)+d").
		limit := int32(len(items) - k + depth)
		descended := false
		for fr.i <= limit {
			c := f.cell(items[fr.i])
			fr.i++
			ctx.Work += WorkCellProbe
			if sc {
				cell := int32(depth)*H + c
				if ctx.visit[cell] == fr.ep {
					continue // short-circuit: subtree already processed
				}
				ctx.visit[cell] = fr.ep
			}
			child := f.children[fr.base+c]
			if child < 0 {
				continue
			}
			ctx.Work += WorkNodeVisit
			childBase := f.childBase[child]
			if childBase < 0 {
				ctx.scanLeaf(child, items)
				continue
			}
			depth++
			var cep uint64
			if sc {
				ctx.epoch[depth]++
				cep = ctx.epoch[depth]
			}
			stack[depth] = walkFrame{base: childBase, i: fr.i, ep: cep}
			descended = true
			break
		}
		if !descended {
			depth--
		}
	}
}

// scanLeaf runs the containment merge over one leaf's candidate list.
//
//armlint:noalloc
func (ctx *CountCtx) scanLeaf(node int32, items itemset.Itemset) {
	if !ctx.opts.ShortCircuit {
		// Base case: leaf-level VISITED stamp prevents double counting
		// when multiple root paths reach the same leaf.
		if ctx.leafStamp[node] == ctx.txSerial {
			return
		}
		ctx.leafStamp[node] = ctx.txSerial
	}
	f := ctx.f
	k := f.k
	lo, hi := f.leafStart[node], f.leafStart[node+1]
	// A leaf scan walks one list node and runs a containment merge over a
	// k-itemset, so its cost grows with k.
	ctx.Work += int64(hi-lo) * int64(WorkLeafCand+k)
	if stamp := ctx.itemStamp; stamp != nil {
		serial := ctx.txSerial
		cands := f.cands
		for _, cand := range f.leafItems[lo:hi] {
			base := int(cand) * k
			contained := true
			for _, it := range cands[base : base+k] {
				if stamp[it] != serial {
					contained = false
					break
				}
			}
			if contained {
				ctx.bump(cand)
				ctx.Work += WorkCtrUpdate
			}
		}
		return
	}
	for _, cand := range f.leafItems[lo:hi] {
		if items.Contains(f.candidate(cand)) {
			ctx.bump(cand)
			ctx.Work += WorkCtrUpdate
		}
	}
}

// bump records one support increment, buffering it when batching is on.
//
//armlint:noalloc
func (ctx *CountCtx) bump(cand int32) {
	if ctx.batch == nil {
		ctx.counters.add(cand, ctx.opts.Proc)
		return
	}
	ctx.batch[ctx.batchLen] = cand
	ctx.batchLen++
	if ctx.batchLen == len(ctx.batch) {
		ctx.flushBatch()
	}
}

// flushBatch sorts the pending ids and applies one addN per distinct
// candidate, so b buffered hits on a hot candidate cost one RMW instead of b
// (and locked-mode flushes take each stripe lock in runs).
//
//armlint:noalloc
func (ctx *CountCtx) flushBatch() {
	pend := ctx.batch[:ctx.batchLen]
	if len(pend) == 0 {
		return
	}
	slices.Sort(pend)
	run := int64(1)
	for i := 1; i < len(pend); i++ {
		if pend[i] == pend[i-1] {
			run++
			continue
		}
		ctx.counters.addN(pend[i-1], run, ctx.opts.Proc)
		run = 1
	}
	ctx.counters.addN(pend[len(pend)-1], run, ctx.opts.Proc)
	ctx.batchLen = 0
	if ctx.opts.OnFlush != nil {
		ctx.opts.OnFlush(len(pend))
	}
}

// Flush publishes any buffered counter updates. Required after the last
// CountTransaction when the context was created with BatchUpdates; a no-op
// otherwise.
func (ctx *CountCtx) Flush() {
	if ctx.batch != nil {
		ctx.flushBatch()
	}
}

// VisitedMemoryBytes reports the short-circuit bookkeeping footprint of this
// context: k·H epoch words — the reduced scheme. The full scheme of the
// paper's first cut would need H^k flags.
func (ctx *CountCtx) VisitedMemoryBytes() int64 {
	return int64(len(ctx.visit)) * 8
}

// CountDatabase is a sequential convenience: counts every transaction
// through a fresh context and returns the reduced counters. The scan is
// single-threaded, so it uses private (unsynchronized) counters — the
// sequential baseline must not pay atomic-RMW or locking cost.
func (t *Tree) CountDatabase(transactions []itemset.Itemset, opts CountOpts) *Counters {
	counters := NewCounters(CounterPrivate, t.NumCandidates(), 1)
	opts.Proc = 0
	ctx := t.NewCountCtx(counters, opts)
	for _, tx := range transactions {
		ctx.CountTransaction(tx)
	}
	counters.Reduce()
	return counters
}
