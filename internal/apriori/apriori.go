// Package apriori implements the sequential association mining algorithm of
// Section 2 (Agrawal et al. 1996): level-wise candidate generation with the
// optimized equivalence-class join and pruning of Section 3.1.1, hash-tree
// support counting, and frequent itemset extraction. The parallel CCPD/PCCD
// algorithms in internal/ccpd build on the same pieces.
//
// Candidate and frequent-set order feed the pinned work model
// (TestModelTimePinned), so the package must stay deterministic:
//
//armlint:pinned
package apriori

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/db"
	"repro/internal/hashtree"
	"repro/internal/itemset"
)

// Options configures a mining run.
type Options struct {
	// MinSupport is the minimum support as a fraction of |D| (e.g. 0.005
	// for the paper's 0.5%). Ignored if AbsSupport > 0.
	MinSupport float64
	// AbsSupport is the minimum support as an absolute transaction count.
	AbsSupport int64
	// MaxK bounds the iteration count; 0 means run to fixpoint.
	MaxK int

	// Threshold is the hash-tree leaf split threshold T (default 8).
	Threshold int
	// Fanout fixes the hash-table size H; ≤0 selects adaptively per
	// iteration from the candidate count (Section 3.1.1).
	Fanout int
	// Hash selects the tree hash function; HashBitonic enables the
	// tree-balancing optimization of Section 4.1.
	Hash hashtree.HashKind
	// ShortCircuit enables the subset-checking optimization of Section 4.2.
	ShortCircuit bool
	// NaiveJoin disables the equivalence-class join and considers all
	// C(|F|,2) pairs — the ablation baseline.
	NaiveJoin bool
	// MaxCandidatesInMemory caps how many candidates one hash tree may
	// hold (the paper's assumption that C_k fits in memory does not
	// survive low supports on large databases). When an iteration
	// generates more, the candidate list is split into contiguous
	// lexicographic batches of at most this size, each built, counted
	// (one full database pass per batch) and extracted separately; the
	// concatenated output is bit-identical to the unbatched run. 0 means
	// unlimited.
	MaxCandidatesInMemory int
}

func (o Options) withDefaults() Options {
	if o.Threshold <= 0 {
		o.Threshold = 8
	}
	return o
}

// MinCount resolves the support threshold against a database size.
func (o Options) MinCount(dbLen int) int64 {
	if o.AbsSupport > 0 {
		return o.AbsSupport
	}
	return CeilSupport(o.MinSupport, dbLen)
}

// CeilSupport converts a fractional minimum support into the smallest count
// satisfying it: support(X) = count/dbLen ≥ minSupport requires
// count = ⌈minSupport·dbLen⌉. The former int64(minSupport·dbLen) floor
// admitted itemsets BELOW the requested threshold whenever the product was
// not integral — 0.01 × 300 floored to 2, accepting 2/300 ≈ 0.67% against a
// 1% threshold. Products that are mathematically integral can land on either
// side of the integer in float64 (0.01×300 = 2.999…96, 0.1×300 = 30.000…004),
// so values within a relative epsilon of an integer snap to it before the
// ceiling is taken.
func CeilSupport(minSupport float64, dbLen int) int64 {
	x := minSupport * float64(dbLen)
	var c int64
	if r := math.Round(x); math.Abs(x-r) <= 1e-9*math.Max(1, math.Abs(x)) {
		c = int64(r)
	} else {
		c = int64(math.Ceil(x))
	}
	if c < 1 {
		c = 1
	}
	return c
}

// FrequentItemset pairs an itemset with its support count.
type FrequentItemset struct {
	Items itemset.Itemset
	Count int64
}

// IterStats records one iteration of the level-wise loop — the raw series
// behind Figs. 6 and 7.
type IterStats struct {
	K              int
	Candidates     int
	Frequent       int
	JoinPairs      int64 // join pairs considered (equivalence-class or naive)
	PrunedBySubset int   // candidates removed by the (k-1)-subset test
	// Batches is how many candidate batches the iteration ran under
	// Options.MaxCandidatesInMemory (1 when everything fit in one tree).
	Batches int
	// TreeStats describes the iteration's hash tree; for a batched
	// iteration, the last batch's tree.
	TreeStats hashtree.Stats
}

// Result is the output of a mining run.
type Result struct {
	MinCount int64
	// ByK[k] holds the frequent k-itemsets (ByK[0] is empty padding).
	ByK   [][]FrequentItemset
	Iters []IterStats
}

// All flattens the frequent itemsets over every k.
func (r *Result) All() []FrequentItemset {
	var out []FrequentItemset
	for _, fk := range r.ByK {
		out = append(out, fk...)
	}
	return out
}

// NumFrequent returns the total number of frequent itemsets.
func (r *Result) NumFrequent() int {
	n := 0
	for _, fk := range r.ByK {
		n += len(fk)
	}
	return n
}

// SupportOf looks up the support of an itemset, or 0.
func (r *Result) SupportOf(s itemset.Itemset) int64 {
	k := s.K()
	if k >= len(r.ByK) {
		return 0
	}
	for _, f := range r.ByK[k] {
		if f.Items.Equal(s) {
			return f.Count
		}
	}
	return 0
}

// Maximal returns the maximal frequent itemsets — those with no frequent
// superset (the sets All-MFS / Pincer-Search / MaxMiner in Section 7 aim
// for directly). Every frequent itemset is a subset of some maximal one.
func (r *Result) Maximal() []FrequentItemset {
	var out []FrequentItemset
	for k := 1; k < len(r.ByK); k++ {
		var super []FrequentItemset
		if k+1 < len(r.ByK) {
			super = r.ByK[k+1]
		}
		for _, f := range r.ByK[k] {
			maximal := true
			for _, g := range super {
				if g.Items.Contains(f.Items) {
					maximal = false
					break
				}
			}
			if maximal {
				out = append(out, f)
			}
		}
	}
	return out
}

// FrequentOne scans the database once and returns the frequent 1-itemsets
// in lexicographic order with their supports.
func FrequentOne(d *db.Database, minCount int64) []FrequentItemset {
	counts := make([]int64, d.NumItems())
	for i := 0; i < d.Len(); i++ {
		for _, it := range d.Items(i) {
			counts[it]++
		}
	}
	var out []FrequentItemset
	for it, c := range counts {
		if c >= minCount {
			out = append(out, FrequentItemset{Items: itemset.New(itemset.Item(it)), Count: c})
		}
	}
	return out
}

// LabelsFromF1 builds the item→lexicographic-rank vector of Section 4.1
// (Table 1's labels): the i-th frequent 1-item gets label i; everything
// else gets -1. The bitonic hash tree hashes these labels.
func LabelsFromF1(f1 []FrequentItemset, numItems int) []int32 {
	labels := make([]int32, numItems)
	for i := range labels {
		labels[i] = -1
	}
	for rank, f := range f1 {
		it := f.Items[0]
		if int(it) < numItems {
			labels[it] = int32(rank)
		}
	}
	return labels
}

// PruneSet builds the (k-1)-subset membership set for candidate pruning: an
// open-addressing hash set over the raw int32 item encodings of F_{k-1}.
// Returns nil when no prune probes will be made (k ≤ 2), so callers can skip
// the build.
func PruneSet(fkPrev []itemset.Itemset) *itemset.Set {
	if len(fkPrev) == 0 || fkPrev[0].K() < 2 {
		return nil
	}
	set := itemset.NewSet(fkPrev[0].K(), len(fkPrev))
	for _, s := range fkPrev {
		set.Add(s)
	}
	return set
}

// JoinPrune is the per-pair hot step of candidate generation: it writes the
// join prefix+a+b into scratch (len k) and runs the (k-1)-subset prune
// against prev. The two subsets that formed the candidate are frequent by
// construction, so only the k-2 subsets dropping an earlier position are
// probed. Zero heap allocations; prev may be nil when k ≤ 2.
//
//armlint:noalloc
func JoinPrune(prev *itemset.Set, scratch, prefix itemset.Itemset, a, b itemset.Item) bool {
	n := copy(scratch, prefix)
	scratch[n] = a
	scratch[n+1] = b
	for drop := 0; drop < len(scratch)-2; drop++ {
		if !prev.ContainsSkip(scratch, drop) {
			return false
		}
	}
	return true
}

// GenerateCandidates joins sorted F_{k-1} with itself and prunes candidates
// with an infrequent (k-1)-subset (Section 3.1.1). It returns the candidate
// (k)-itemsets in lexicographic order plus join/prune accounting.
func GenerateCandidates(fkPrev []itemset.Itemset, naive bool) (cands []itemset.Itemset, joinPairs int64, pruned int) {
	if len(fkPrev) == 0 {
		return nil, 0, 0
	}
	k := fkPrev[0].K() + 1
	inPrev := PruneSet(fkPrev)
	if naive {
		// Ablation: all C(|F|,2) pairs, joining only when the k-2 prefixes
		// match (checked pairwise, not via classes).
		scratch := make(itemset.Itemset, k)
		for i := 0; i < len(fkPrev); i++ {
			for j := i + 1; j < len(fkPrev); j++ {
				joinPairs++
				a, b := fkPrev[i], fkPrev[j]
				if !a[:k-2].Equal(b[:k-2]) {
					continue
				}
				if a[k-2] == b[k-2] {
					continue // union would not reach length k
				}
				lo, hi := a[k-2], b[k-2]
				if lo > hi {
					lo, hi = hi, lo
				}
				if JoinPrune(inPrev, scratch, a[:k-2], lo, hi) {
					cands = append(cands, scratch.Clone())
				} else {
					pruned++
				}
			}
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i].Less(cands[j]) })
		return cands, joinPairs, pruned
	}
	classes := itemset.Classes(fkPrev)
	scratch := make(itemset.Itemset, k)
	for ci := range classes {
		cl := &classes[ci]
		for i := 0; i < len(cl.Tails); i++ {
			for j := i + 1; j < len(cl.Tails); j++ {
				joinPairs++
				if JoinPrune(inPrev, scratch, cl.Prefix, cl.Tails[i], cl.Tails[j]) {
					cands = append(cands, scratch.Clone())
				} else {
					pruned++
				}
			}
		}
	}
	return cands, joinPairs, pruned
}

// Mine runs the sequential Apriori loop on the database.
func Mine(d *db.Database, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	minCount := opts.MinCount(d.Len())
	res := &Result{MinCount: minCount, ByK: make([][]FrequentItemset, 2)}

	f1 := FrequentOne(d, minCount)
	res.ByK[1] = f1
	res.Iters = append(res.Iters, IterStats{K: 1, Candidates: d.NumItems(), Frequent: len(f1), Batches: 1})
	labels := LabelsFromF1(f1, d.NumItems())

	prev := make([]itemset.Itemset, len(f1))
	for i, f := range f1 {
		prev[i] = f.Items
	}

	for k := 2; len(prev) > 0 && (opts.MaxK == 0 || k <= opts.MaxK); k++ {
		cands, joinPairs, pruned := GenerateCandidates(prev, opts.NaiveJoin)
		if len(cands) == 0 {
			break
		}
		cfg := hashtree.Config{
			K:         k,
			Fanout:    opts.Fanout,
			Threshold: opts.Threshold,
			Hash:      opts.Hash,
			NumItems:  d.NumItems(),
			Labels:    labels,
		}
		// Memory-budget batching: contiguous lexicographic sub-ranges of
		// the sorted candidate list, one full database pass each. Batch
		// outputs cover disjoint ascending lexicographic ranges, so plain
		// concatenation reproduces the unbatched extraction bit-identically.
		batchSize := len(cands)
		if lim := opts.MaxCandidatesInMemory; lim > 0 && lim < batchSize {
			batchSize = lim
		}
		numBatches := (len(cands) + batchSize - 1) / batchSize
		var fk []FrequentItemset
		var treeStats hashtree.Stats
		for b := 0; b < numBatches; b++ {
			lo := b * batchSize
			hi := lo + batchSize
			if hi > len(cands) {
				hi = len(cands)
			}
			tree, err := hashtree.Build(cfg, cands[lo:hi])
			if err != nil {
				return nil, fmt.Errorf("apriori: iteration %d: %w", k, err)
			}
			counters := hashtree.NewCounters(hashtree.CounterAtomic, tree.NumCandidates(), 1)
			ctx := tree.NewCountCtx(counters, hashtree.CountOpts{ShortCircuit: opts.ShortCircuit})
			for i := 0; i < d.Len(); i++ {
				ctx.CountTransaction(d.Items(i))
			}
			fk = append(fk, ExtractFrequent(tree, counters, minCount)...)
			treeStats = tree.ComputeStats()
		}
		res.ByK = append(res.ByK, fk)
		res.Iters = append(res.Iters, IterStats{
			K: k, Candidates: len(cands), Frequent: len(fk),
			JoinPairs: joinPairs, PrunedBySubset: pruned,
			Batches:   numBatches,
			TreeStats: treeStats,
		})
		prev = prev[:0]
		for _, f := range fk {
			prev = append(prev, f.Items)
		}
	}
	return res, nil
}

// ExtractFrequent walks the tree in depth-first order (Section 2.1.3) and
// returns the candidates meeting minCount, sorted lexicographically (the
// order the next join requires).
func ExtractFrequent(tree *hashtree.Tree, counters *hashtree.Counters, minCount int64) []FrequentItemset {
	var out []FrequentItemset
	tree.ForEachCandidate(func(id int32) {
		if c := counters.Count(id); c >= minCount {
			out = append(out, FrequentItemset{Items: tree.Candidate(id).Clone(), Count: c})
		}
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Items.Less(out[j].Items) })
	return out
}

// ExtractFrequentRange scans candidate ids [lo, hi) and returns those
// meeting minCount, sorted lexicographically within the range. Candidate
// ids partition across workers, so a pool can extract ranges concurrently
// (after reducing the same ranges) and merge with MergeFrequent — the
// parallel replacement for the serial master extraction. The bounds are
// plain ints so callers can do their range arithmetic without narrowing;
// ids narrow to int32 only at the hashtree API boundary.
func ExtractFrequentRange(tree *hashtree.Tree, counters *hashtree.Counters, minCount int64, lo, hi int) []FrequentItemset {
	var out []FrequentItemset
	for id := lo; id < hi; id++ {
		if c := counters.Count(int32(id)); c >= minCount {
			out = append(out, FrequentItemset{Items: tree.Candidate(int32(id)).Clone(), Count: c})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Items.Less(out[j].Items) })
	return out
}

// MergeFrequent k-way merges per-range (already sorted) frequent lists into
// one lexicographically sorted list — identical output to sorting the
// concatenation, in O(C·log P).
func MergeFrequent(ranges [][]FrequentItemset) []FrequentItemset {
	return itemset.MergeSortedBy(ranges, func(a, b FrequentItemset) bool {
		return a.Items.Less(b.Items)
	})
}
