package apriori

import (
	"reflect"
	"testing"

	"repro/internal/db"
	"repro/internal/itemset"
)

// TestCeilSupport pins the fractional-threshold arithmetic: the minimum
// count is the ceiling of MinSupport×|D|, with exact products snapped
// through the float-rounding guard. The old floor form int64(s×n) returned
// 2 for 0.01×300 (the product is 2.999…97 in binary) and admitted itemsets
// below the requested support.
func TestCeilSupport(t *testing.T) {
	cases := []struct {
		sup  float64
		n    int
		want int64
	}{
		{0.01, 300, 3},    // 2.999…97 → exact 3, the regression case
		{0.1, 300, 30},    // 30.000…004 → exact 30, guard in the other direction
		{0.005, 1000, 5},  // exact
		{0.0033, 1000, 4}, // 3.3 → genuine ceiling
		{0.5, 3, 2},       // 1.5 → 2
		{0.2, 4, 1},       // 0.8 → 1
		{0.000001, 100, 1}, // floor would be 0; threshold never drops below 1
		{0, 100, 1},
	}
	for _, c := range cases {
		if got := CeilSupport(c.sup, c.n); got != c.want {
			t.Errorf("CeilSupport(%g, %d) = %d, want %d", c.sup, c.n, got, c.want)
		}
	}
	// AbsSupport bypasses the fraction entirely.
	if got := (Options{MinSupport: 0.01, AbsSupport: 7}).MinCount(300); got != 7 {
		t.Errorf("AbsSupport override: MinCount = %d, want 7", got)
	}
	if got := (Options{MinSupport: 0.01}).MinCount(300); got != 3 {
		t.Errorf("MinCount(300) at 1%% = %d, want 3", got)
	}
}

// exactBoundaryDB: 300 transactions; itemset {0,1} occurs exactly twice and
// item 2 exactly three times — one below and exactly at a 1% threshold.
func exactBoundaryDB() *db.Database {
	d := db.New(4)
	for i := 0; i < 300; i++ {
		switch {
		case i < 2:
			d.Append(int64(i), itemset.New(0, 1, 3))
		case i < 3:
			d.Append(int64(i), itemset.New(2, 3))
		case i < 5:
			d.Append(int64(i), itemset.New(2))
		default:
			d.Append(int64(i), itemset.New(3))
		}
	}
	return d
}

// TestFractionalSupportBoundary is the sequential-engine regression for the
// floor bug: at MinSupport 0.01 over 300 transactions, 2 occurrences are
// below threshold and 3 are at it.
func TestFractionalSupportBoundary(t *testing.T) {
	d := exactBoundaryDB()
	res, err := Mine(d, Options{MinSupport: 0.01, ShortCircuit: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.MinCount != 3 {
		t.Fatalf("MinCount = %d, want 3 (ceil of 0.01×300)", res.MinCount)
	}
	if got := res.SupportOf(itemset.New(0, 1)); got != 0 {
		t.Errorf("{0,1} with 2 occurrences reported frequent (support %d)", got)
	}
	if got := res.SupportOf(itemset.New(2)); got != 3 {
		t.Errorf("{2} support = %d, want 3", got)
	}
}

// TestMineBatchedBitIdentical: the sequential miner under a candidate
// memory budget (multiple hash trees and database passes per iteration)
// returns exactly the unbatched result, and reports its batch counts.
func TestMineBatchedBitIdentical(t *testing.T) {
	d := db.New(30)
	// A dense block of overlapping transactions so iteration 2 has far more
	// candidates than the budget below.
	for i := 0; i < 60; i++ {
		items := itemset.New(
			itemset.Item(i%5), itemset.Item(5+i%7), itemset.Item(12+i%6),
			itemset.Item(18+i%4), itemset.Item(22+i%3),
		)
		d.Append(int64(i), items)
	}
	straight, err := Mine(d, Options{MinSupport: 0.05, ShortCircuit: true})
	if err != nil {
		t.Fatal(err)
	}
	batched, err := Mine(d, Options{MinSupport: 0.05, ShortCircuit: true, MaxCandidatesInMemory: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(batched.ByK, straight.ByK) {
		t.Error("batched result differs from unbatched")
	}
	saw := false
	for _, it := range batched.Iters {
		if it.Batches > 1 {
			saw = true
		}
		if it.Batches < 1 {
			t.Errorf("k=%d: Batches = %d, want >= 1", it.K, it.Batches)
		}
	}
	if !saw {
		t.Error("budget of 5 candidates never produced multiple batches")
	}
}
