package apriori

import (
	"testing"

	"repro/internal/db"
	"repro/internal/gen"
	"repro/internal/itemset"
)

func TestMaximalWorkedExample(t *testing.T) {
	// Section 2.1.3: frequent sets are {1},{2},{4},{5}, {12},{14},{15},{45},
	// {145}. Maximal: {12} and {145} (plus {2} is covered by {12}; all
	// singletons are covered).
	d := db.New(6)
	d.Append(1, itemset.New(1, 4, 5))
	d.Append(2, itemset.New(1, 2))
	d.Append(3, itemset.New(3, 4, 5))
	d.Append(4, itemset.New(1, 2, 4, 5))
	res, err := Mine(d, Options{AbsSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	maxes := res.Maximal()
	got := map[string]bool{}
	for _, m := range maxes {
		got[m.Items.Key()] = true
	}
	if len(maxes) != 2 {
		t.Fatalf("maximal = %v", maxes)
	}
	if !got[itemset.New(1, 2).Key()] || !got[itemset.New(1, 4, 5).Key()] {
		t.Errorf("maximal set wrong: %v", maxes)
	}
}

func TestMaximalCoversAllFrequent(t *testing.T) {
	d, err := gen.Generate(gen.Params{N: 50, L: 12, I: 3, T: 7, D: 500, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Mine(d, Options{MinSupport: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	maxes := res.Maximal()
	if len(maxes) == 0 {
		t.Fatal("no maximal itemsets")
	}
	// Every frequent itemset must be a subset of some maximal one, and no
	// maximal itemset may contain another.
	for _, f := range res.All() {
		covered := false
		for _, m := range maxes {
			if m.Items.Contains(f.Items) {
				covered = true
				break
			}
		}
		if !covered {
			t.Fatalf("frequent %v not covered by any maximal itemset", f.Items)
		}
	}
	for i := range maxes {
		for j := range maxes {
			if i != j && maxes[i].Items.Contains(maxes[j].Items) {
				t.Fatalf("maximal %v contains maximal %v", maxes[i].Items, maxes[j].Items)
			}
		}
	}
	if len(maxes) >= res.NumFrequent() {
		t.Errorf("maximal set (%d) not smaller than frequent set (%d)", len(maxes), res.NumFrequent())
	}
}

func TestMaximalEmpty(t *testing.T) {
	res := &Result{ByK: make([][]FrequentItemset, 2)}
	if got := res.Maximal(); len(got) != 0 {
		t.Errorf("Maximal on empty = %v", got)
	}
}
