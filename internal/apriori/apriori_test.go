package apriori

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/db"
	"repro/internal/gen"
	"repro/internal/hashtree"
	"repro/internal/itemset"
)

// exampleDB is the Section 2.1.3 worked example.
func exampleDB() *db.Database {
	d := db.New(6)
	d.Append(1, itemset.New(1, 4, 5))
	d.Append(2, itemset.New(1, 2))
	d.Append(3, itemset.New(3, 4, 5))
	d.Append(4, itemset.New(1, 2, 4, 5))
	return d
}

// TestSequentialExampleSection213 reproduces the paper's worked example:
// F1={1,2,4,5}, C2 all pairs, F2={12,14,15,45}, C3={145}, F3={145}.
func TestSequentialExampleSection213(t *testing.T) {
	res, err := Mine(exampleDB(), Options{AbsSupport: 2, ShortCircuit: true})
	if err != nil {
		t.Fatal(err)
	}
	wantF1 := []itemset.Itemset{itemset.New(1), itemset.New(2), itemset.New(4), itemset.New(5)}
	if len(res.ByK[1]) != len(wantF1) {
		t.Fatalf("F1 = %v", res.ByK[1])
	}
	for i, f := range res.ByK[1] {
		if !f.Items.Equal(wantF1[i]) {
			t.Errorf("F1[%d] = %v, want %v", i, f.Items, wantF1[i])
		}
	}
	wantF2 := []itemset.Itemset{
		itemset.New(1, 2), itemset.New(1, 4), itemset.New(1, 5), itemset.New(4, 5),
	}
	if len(res.ByK[2]) != len(wantF2) {
		t.Fatalf("F2 = %v", res.ByK[2])
	}
	for i, f := range res.ByK[2] {
		if !f.Items.Equal(wantF2[i]) {
			t.Errorf("F2[%d] = %v, want %v", i, f.Items, wantF2[i])
		}
	}
	if len(res.ByK) < 4 || len(res.ByK[3]) != 1 || !res.ByK[3][0].Items.Equal(itemset.New(1, 4, 5)) {
		t.Fatalf("F3 = %v", res.ByK[3])
	}
	if res.ByK[3][0].Count != 2 {
		t.Errorf("support(145) = %d, want 2", res.ByK[3][0].Count)
	}
	// The C3 join must have produced exactly one candidate after pruning
	// (124 and 125 are pruned because 24 and 25 are infrequent).
	if res.Iters[2].Candidates != 1 {
		t.Errorf("C3 candidates = %d, want 1", res.Iters[2].Candidates)
	}
	if res.Iters[2].PrunedBySubset != 2 {
		t.Errorf("C3 pruned = %d, want 2", res.Iters[2].PrunedBySubset)
	}
}

func TestGenerateCandidatesJoin(t *testing.T) {
	f2 := []itemset.Itemset{
		itemset.New(1, 2), itemset.New(1, 4), itemset.New(1, 5), itemset.New(4, 5),
	}
	cands, pairs, pruned := GenerateCandidates(f2, false)
	if len(cands) != 1 || !cands[0].Equal(itemset.New(1, 4, 5)) {
		t.Fatalf("cands = %v", cands)
	}
	// Class (1): tails {2,4,5} → 3 pairs; class (4): tails {5} → 0 pairs.
	if pairs != 3 {
		t.Errorf("join pairs = %d, want 3", pairs)
	}
	if pruned != 2 {
		t.Errorf("pruned = %d, want 2", pruned)
	}
}

func TestGenerateCandidatesNaiveMatchesOptimized(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		k := 2 + rng.Intn(2)
		seen := map[string]bool{}
		var fk []itemset.Itemset
		for i := 0; i < 40; i++ {
			m := map[itemset.Item]bool{}
			for len(m) < k {
				m[itemset.Item(rng.Intn(15))] = true
			}
			var s itemset.Itemset
			for it := range m {
				s = append(s, it)
			}
			c := itemset.New(s...)
			if !seen[c.Key()] {
				seen[c.Key()] = true
				fk = append(fk, c)
			}
		}
		sort.Slice(fk, func(i, j int) bool { return fk[i].Less(fk[j]) })
		opt, optPairs, _ := GenerateCandidates(fk, false)
		nai, naiPairs, _ := GenerateCandidates(fk, true)
		if len(opt) != len(nai) {
			t.Fatalf("trial %d: %d vs %d candidates", trial, len(opt), len(nai))
		}
		for i := range opt {
			if !opt[i].Equal(nai[i]) {
				t.Fatalf("trial %d: candidate %d differs: %v vs %v", trial, i, opt[i], nai[i])
			}
		}
		if optPairs > naiPairs {
			t.Errorf("trial %d: optimized join considered more pairs (%d > %d)", trial, optPairs, naiPairs)
		}
	}
}

func TestGenerateCandidatesEmpty(t *testing.T) {
	cands, pairs, pruned := GenerateCandidates(nil, false)
	if cands != nil || pairs != 0 || pruned != 0 {
		t.Error("empty input should yield nothing")
	}
}

func TestFrequentOne(t *testing.T) {
	d := exampleDB()
	f1 := FrequentOne(d, 2)
	if len(f1) != 4 {
		t.Fatalf("F1 = %v", f1)
	}
	if f1[0].Count != 3 { // item 1 appears in T1, T2, T4
		t.Errorf("support(1) = %d", f1[0].Count)
	}
	// Threshold 4: nothing qualifies.
	if got := FrequentOne(d, 4); len(got) != 0 {
		t.Errorf("minCount=4 → %v", got)
	}
}

func TestMinCount(t *testing.T) {
	o := Options{MinSupport: 0.005}
	if got := o.MinCount(100000); got != 500 {
		t.Errorf("MinCount = %d, want 500", got)
	}
	o = Options{MinSupport: 0.0000001}
	if got := o.MinCount(100); got != 1 {
		t.Errorf("tiny support should clamp to 1, got %d", got)
	}
	o = Options{MinSupport: 0.5, AbsSupport: 7}
	if got := o.MinCount(1000); got != 7 {
		t.Errorf("AbsSupport should win, got %d", got)
	}
}

// bruteForceFrequent enumerates all frequent itemsets by exhaustive search.
func bruteForceFrequent(d *db.Database, minCount int64, maxK int) map[string]int64 {
	out := map[string]int64{}
	// Start from frequent single items and grow (exact because of
	// downward closure).
	var frontier []itemset.Itemset
	counts := make([]int64, d.NumItems())
	for i := 0; i < d.Len(); i++ {
		for _, it := range d.Items(i) {
			counts[it]++
		}
	}
	for it, c := range counts {
		if c >= minCount {
			s := itemset.New(itemset.Item(it))
			out[s.Key()] = c
			frontier = append(frontier, s)
		}
	}
	for k := 2; len(frontier) > 0 && (maxK == 0 || k <= maxK); k++ {
		next := map[string]itemset.Itemset{}
		for _, base := range frontier {
			for it := itemset.Item(0); int(it) < d.NumItems(); it++ {
				if base.ContainsItem(it) || it <= base[base.K()-1] {
					continue
				}
				cand := base.Union(itemset.New(it))
				next[cand.Key()] = cand
			}
		}
		frontier = frontier[:0]
		for _, cand := range next {
			var c int64
			for i := 0; i < d.Len(); i++ {
				if d.Items(i).Contains(cand) {
					c++
				}
			}
			if c >= minCount {
				out[cand.Key()] = c
				frontier = append(frontier, cand)
			}
		}
	}
	return out
}

func TestMineMatchesBruteForce(t *testing.T) {
	d, err := gen.Generate(gen.Params{N: 40, L: 12, I: 3, T: 6, D: 300, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	const minCount = 15
	want := bruteForceFrequent(d, minCount, 0)
	for _, naive := range []bool{false, true} {
		for _, sc := range []bool{false, true} {
			for _, hash := range []hashtree.HashKind{hashtree.HashInterleaved, hashtree.HashBitonic} {
				res, err := Mine(d, Options{
					AbsSupport: minCount, ShortCircuit: sc, NaiveJoin: naive,
					Hash: hash, Threshold: 3,
				})
				if err != nil {
					t.Fatal(err)
				}
				got := map[string]int64{}
				for _, f := range res.All() {
					got[f.Items.Key()] = f.Count
				}
				if len(got) != len(want) {
					t.Fatalf("naive=%v sc=%v hash=%v: %d frequent, want %d",
						naive, sc, hash, len(got), len(want))
				}
				for key, c := range want {
					if got[key] != c {
						ks, _ := itemset.ParseKey(key)
						t.Fatalf("naive=%v sc=%v hash=%v: %v = %d, want %d",
							naive, sc, hash, ks, got[key], c)
					}
				}
			}
		}
	}
}

func TestMineMaxK(t *testing.T) {
	d := exampleDB()
	res, err := Mine(d, Options{AbsSupport: 2, MaxK: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ByK) > 3 {
		t.Errorf("MaxK=2 produced %d levels", len(res.ByK)-1)
	}
}

func TestMineEmptyDatabase(t *testing.T) {
	d := db.New(10)
	res, err := Mine(d, Options{MinSupport: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumFrequent() != 0 {
		t.Errorf("empty db yielded %d frequent", res.NumFrequent())
	}
}

func TestSupportOf(t *testing.T) {
	res, _ := Mine(exampleDB(), Options{AbsSupport: 2})
	if got := res.SupportOf(itemset.New(4, 5)); got != 3 {
		t.Errorf("SupportOf(45) = %d, want 3", got)
	}
	if got := res.SupportOf(itemset.New(2, 4)); got != 0 {
		t.Errorf("SupportOf(24) = %d, want 0", got)
	}
	if got := res.SupportOf(itemset.New(1, 2, 3, 4, 5, 6, 7)); got != 0 {
		t.Errorf("SupportOf(huge) = %d", got)
	}
}

func TestIterStatsSeries(t *testing.T) {
	d, err := gen.Generate(gen.Params{N: 60, L: 15, I: 4, T: 8, D: 400, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Mine(d, Options{MinSupport: 0.02, ShortCircuit: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Iters) < 2 {
		t.Fatalf("only %d iterations", len(res.Iters))
	}
	for i, it := range res.Iters {
		if it.K != i+1 {
			t.Errorf("iteration %d has K=%d", i, it.K)
		}
		if it.Frequent > it.Candidates {
			t.Errorf("K=%d: frequent %d > candidates %d", it.K, it.Frequent, it.Candidates)
		}
		if it.K >= 2 && it.TreeStats.Bytes <= 0 {
			t.Errorf("K=%d: tree bytes %d", it.K, it.TreeStats.Bytes)
		}
	}
	// The frequent-per-iteration series should rise then fall (unimodal-ish);
	// we only assert it eventually reaches zero growth, i.e. terminates.
	last := res.Iters[len(res.Iters)-1]
	if last.Frequent > 0 && last.Candidates == 0 {
		t.Error("loop terminated inconsistently")
	}
}

func TestExtractFrequentSorted(t *testing.T) {
	d, _ := gen.Generate(gen.Params{N: 30, L: 10, I: 3, T: 6, D: 200, Seed: 8})
	res, err := Mine(d, Options{MinSupport: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	for k, fk := range res.ByK {
		for i := 1; i < len(fk); i++ {
			if !fk[i-1].Items.Less(fk[i].Items) {
				t.Errorf("F%d not sorted at %d: %v !< %v", k, i, fk[i-1].Items, fk[i].Items)
			}
		}
	}
}

// TestJoinPruneZeroAlloc gates the per-pair join/prune hot path: forming a
// candidate in the caller's scratch and probing the (k-1)-subset set must not
// touch the heap.
func TestJoinPruneZeroAlloc(t *testing.T) {
	prev := []itemset.Itemset{
		itemset.New(1, 2, 3), itemset.New(1, 2, 4), itemset.New(1, 3, 4),
		itemset.New(2, 3, 4), itemset.New(1, 2, 5), itemset.New(1, 3, 5),
	}
	set := PruneSet(prev)
	scratch := make(itemset.Itemset, 4)
	prefix := itemset.New(1, 2)
	allocs := testing.AllocsPerRun(200, func() {
		JoinPrune(set, scratch, prefix, 3, 4) // survives
		JoinPrune(set, scratch, prefix, 4, 5) // pruned: (2 4 5) infrequent
	})
	if allocs != 0 {
		t.Fatalf("JoinPrune allocates: %v allocs/op", allocs)
	}
}

// TestJoinPruneSemantics spot-checks survive/prune decisions against the
// subset definition.
func TestJoinPruneSemantics(t *testing.T) {
	prev := []itemset.Itemset{
		itemset.New(1, 2, 3), itemset.New(1, 2, 4), itemset.New(1, 3, 4),
		itemset.New(2, 3, 4),
	}
	set := PruneSet(prev)
	scratch := make(itemset.Itemset, 4)
	// (1 2 3 4): all 3-subsets frequent.
	if !JoinPrune(set, scratch, itemset.New(1, 2), 3, 4) {
		t.Error("(1 2 3 4) should survive")
	}
	if !scratch.Equal(itemset.New(1, 2, 3, 4)) {
		t.Errorf("scratch = %v, want (1 2 3 4)", scratch)
	}
	// Joining (1 2 3)+(1 2 5): subset (1 3 5) missing.
	if JoinPrune(set, scratch, itemset.New(1, 2), 3, 5) {
		t.Error("(1 2 3 5) should be pruned")
	}
	// K=2: nil prune set, every pair survives.
	if !JoinPrune(nil, make(itemset.Itemset, 2), nil, 7, 9) {
		t.Error("k=2 pairs must always survive")
	}
}

func TestExtractFrequentRangeMatchesSerial(t *testing.T) {
	d, err := gen.Generate(gen.Params{N: 60, L: 15, I: 3, T: 6, D: 500, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Mine(d, Options{AbsSupport: 5, MaxK: 2})
	if err != nil {
		t.Fatal(err)
	}
	var prev []itemset.Itemset
	for _, f := range res.ByK[1] {
		prev = append(prev, f.Items)
	}
	cands, _, _ := GenerateCandidates(prev, false)
	tree, err := hashtree.Build(hashtree.Config{K: 2, Threshold: 4, NumItems: d.NumItems()}, cands)
	if err != nil {
		t.Fatal(err)
	}
	counters := hashtree.NewCounters(hashtree.CounterAtomic, tree.NumCandidates(), 1)
	ctx := tree.NewCountCtx(counters, hashtree.CountOpts{})
	for i := 0; i < d.Len(); i++ {
		ctx.CountTransaction(d.Items(i))
	}
	want := ExtractFrequent(tree, counters, 5)

	n := tree.NumCandidates()
	for _, procs := range []int{1, 2, 3, 7} {
		var ranges [][]FrequentItemset
		for p := 0; p < procs; p++ {
			ranges = append(ranges, ExtractFrequentRange(tree, counters, 5, p*n/procs, (p+1)*n/procs))
		}
		got := MergeFrequent(ranges)
		if len(got) != len(want) {
			t.Fatalf("procs=%d: %d frequent, want %d", procs, len(got), len(want))
		}
		for i := range want {
			if !got[i].Items.Equal(want[i].Items) || got[i].Count != want[i].Count {
				t.Fatalf("procs=%d: [%d] = %v/%d, want %v/%d",
					procs, i, got[i].Items, got[i].Count, want[i].Items, want[i].Count)
			}
		}
	}
}
