// Package robust carries the failure-containment vocabulary of the mining
// stack: typed errors for worker panics and cooperative cancellation, and
// the versioned checkpoint format behind ccpd.Resume. The package sits below
// internal/sched (which converts recovered panics into WorkerPanicError) and
// below internal/ccpd (which annotates them with phase context and drives
// checkpointing), so it must not import either.
//
// The design goal is the memory- and failure-constrained regime the
// distributed-Apriori literature reports as dominant in real deployments: a
// panic in one worker goroutine must surface as an error from Mine instead
// of killing the process, a long run must be cancelable at chunk
// granularity, and a run killed between iterations must be resumable
// bit-identically from its last completed iteration.
package robust

import (
	"context"
	"fmt"
)

// WorkerPanicError reports a panic recovered inside a worker-pool goroutine.
// The scheduler fills Worker, Chunk (when the panicking worker had announced
// a counting chunk via sched.Pool.NoteChunk), Value and Stack; the mining
// layer annotates Phase and K before returning the error from Mine. The
// process stays alive: the pool drains the barrier normally and remains
// usable.
type WorkerPanicError struct {
	// Worker is the pool worker ("processor") index that panicked.
	Worker int
	// Phase is the mining phase label ("f1", "gen", "build", "count",
	// "reduce"), or "" when the panic happened outside a labelled phase.
	Phase string
	// K is the iteration the panic interrupted (0 if unknown).
	K int
	// Chunk is the counting chunk being processed, or -1 when the panic was
	// not chunk-scoped.
	Chunk int
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack trace at recovery.
	Stack []byte
}

func (e *WorkerPanicError) Error() string {
	loc := fmt.Sprintf("worker %d", e.Worker)
	if e.Phase != "" {
		loc += fmt.Sprintf(" phase=%s k=%d", e.Phase, e.K)
	}
	if e.Chunk >= 0 {
		loc += fmt.Sprintf(" chunk=%d", e.Chunk)
	}
	return fmt.Sprintf("robust: panic in %s: %v", loc, e.Value)
}

// Unwrap exposes a panic value that was itself an error, so errors.Is/As
// reach through (e.g. a worker panicking with context.Canceled).
func (e *WorkerPanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// CanceledError reports that a mining run stopped cooperatively because its
// context was canceled (or its deadline passed). The run's partial result —
// every iteration completed before the cancellation point — is returned
// alongside the error by MineCtx, and a checkpoint-enabled run can Resume
// from the last completed iteration.
type CanceledError struct {
	// Phase is the phase that observed the cancellation.
	Phase string
	// K is the iteration that was interrupted.
	K int
	// Err is the context's error (context.Canceled or DeadlineExceeded).
	Err error
}

func (e *CanceledError) Error() string {
	return fmt.Sprintf("robust: mining canceled during phase=%s k=%d: %v", e.Phase, e.K, e.Err)
}

// Unwrap lets errors.Is(err, context.Canceled) see through the wrapper.
func (e *CanceledError) Unwrap() error { return e.Err }

// Canceled wraps a context error with phase/iteration attribution. It
// returns nil when ctx is still live, so callers can write
// `if err := robust.Canceled(ctx, phase, k); err != nil { ... }`.
func Canceled(ctx context.Context, phase string, k int) error {
	if ctx == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return &CanceledError{Phase: phase, K: k, Err: err}
	}
	return nil
}
