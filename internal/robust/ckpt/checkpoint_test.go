package ckpt

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/apriori"
	"repro/internal/itemset"
)

func sampleCheckpoint() *Checkpoint {
	return &Checkpoint{
		MinCount:   3,
		DBLen:      300,
		NumItems:   40,
		TotalItems: 2400,
		Procs:      4,
		OptsHash:   0xdeadbeefcafe,
		NextK:      3,
		Done:       false,
		ByK: [][]apriori.FrequentItemset{
			nil, // k=0 placeholder
			{
				{Items: itemset.Itemset{0}, Count: 120},
				{Items: itemset.Itemset{3}, Count: 77},
			},
			{
				{Items: itemset.Itemset{0, 3}, Count: 41},
			},
		},
		Iters: []IterSnapshot{
			{K: 1, Candidates: 40, Frequent: 2, Batches: 1,
				CountWork: []int64{10, 11, 12, 13}},
			{K: 2, Candidates: 1, Frequent: 1, GenSequential: true, Batches: 2,
				BuildWork: 5, ReduceWork: 9,
				GenWork:       []int64{1, 2, 3, 4},
				CountWork:     []int64{20, 21, 22, 23},
				ChunksClaimed: []int64{2, 2, 2, 2},
				Steals:        []int64{0, 1, 0, 0}},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	c := sampleCheckpoint()
	var buf bytes.Buffer
	if err := c.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// The reader materializes empty ByK levels as empty (non-nil) slices;
	// normalize before the deep comparison.
	want := sampleCheckpoint()
	want.ByK[0] = []apriori.FrequentItemset{}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("roundtrip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestRoundTripFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.ckpt")
	c := sampleCheckpoint()
	c.Done = true
	if err := c.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	// The atomic write must not leave its temp file behind.
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Errorf("temp file left behind: %v", err)
	}
	got, err := ReadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Done || got.NextK != 3 || len(got.ByK) != 3 {
		t.Errorf("file roundtrip lost fields: %+v", got)
	}
}

func TestBadMagic(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleCheckpoint().Write(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[0] = 'X'
	if _, err := ReadCheckpoint(bytes.NewReader(raw)); err == nil ||
		!strings.Contains(err.Error(), "magic") {
		t.Errorf("corrupt magic not rejected: %v", err)
	}
}

// TestTruncated checks every prefix of a valid checkpoint fails cleanly —
// no panic, no silent partial load.
func TestTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleCheckpoint().Write(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for n := 0; n < len(raw); n++ {
		if _, err := ReadCheckpoint(bytes.NewReader(raw[:n])); err == nil {
			t.Fatalf("truncation at %d/%d bytes read without error", n, len(raw))
		}
	}
}

// TestImplausibleLengths corrupts length fields so they decode as huge or
// negative values; the reader must reject them without a giant allocation.
func TestImplausibleLengths(t *testing.T) {
	base := func() []byte {
		var buf bytes.Buffer
		if err := sampleCheckpoint().Write(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	// Offsets of the length fields in the fixed-layout header region:
	// magic(8) + 5×i64 + u64 + nextK i64 + done byte = 65; numK at 65.
	const numKOff = 8 + 5*8 + 8 + 8 + 1
	cases := []struct {
		name string
		off  int
		val  byte
	}{
		{"huge numK", numKOff + 7, 0x7f},      // top byte of numK → ~2^62
		{"negative numK", numKOff + 7, 0xff},  // sign bit set
		{"huge set count", numKOff + 8 + 7, 0x7f}, // ByK[0] count
	}
	for _, c := range cases {
		raw := base()
		raw[c.off] = c.val
		if _, err := ReadCheckpoint(bytes.NewReader(raw)); err == nil ||
			!strings.Contains(err.Error(), "implausible") {
			t.Errorf("%s: not rejected as implausible: %v", c.name, err)
		}
	}
}

func TestWriteFileOverwriteIsAtomicShape(t *testing.T) {
	// Writing over an existing checkpoint replaces it wholesale.
	path := filepath.Join(t.TempDir(), "a.ckpt")
	c := sampleCheckpoint()
	if err := c.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	c.NextK = 4
	c.ByK = append(c.ByK, []apriori.FrequentItemset{})
	if err := c.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NextK != 4 || len(got.ByK) != 4 {
		t.Errorf("overwrite lost the newer snapshot: NextK=%d len(ByK)=%d", got.NextK, len(got.ByK))
	}
}
