// Package ckpt implements the versioned binary checkpoint format behind
// ccpd.Resume: after each completed k-iteration a mining run can serialize
// its frequent sets and deterministic work model, and a later process can
// continue bit-identically from that point. It lives apart from the base
// robust package (which hashtree imports for its panic error type) because
// the snapshot payload is apriori data.
package ckpt

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"repro/internal/apriori"
	"repro/internal/itemset"
)

// Checkpoint format (little endian), version 1:
//
//	magic      [8]byte  "ARMCKPT1"
//	minCount   int64
//	dbLen      int64
//	numItems   int64
//	totalItems int64    Σ|t| of the source database
//	procs      int64
//	optsHash   uint64   fingerprint of the determinism-relevant options
//	nextK      int64    iteration a resumed run starts at
//	done       uint8    1 when the run reached its natural fixpoint
//	numK       int64    len(ByK)
//	numK ×:    count int64, then count × { klen int32, klen × int32, support int64 }
//	numIters   int64
//	numIters ×: K int64, Candidates int64, Frequent int64, GenSequential uint8,
//	            Batches int64, BuildWork int64, ReduceWork int64,
//	            4 × (len int64, len × int64)   GenWork, CountWork, ChunksClaimed, Steals
//
// Everything serialized is deterministic-model state: wall-clock phase
// durations are deliberately absent, so a resumed run's pinned work-model
// totals (TestModelTimePinned) are bit-identical to a straight-through run
// while its wall clock reflects only the work it actually performed.

const ckptMagic = "ARMCKPT1"

// sanity bounds for the reader: a corrupt or truncated file must produce an
// error, never a huge allocation or a silent partial load.
const (
	maxCkptSets     = 1 << 31 // frequent itemsets per k
	maxCkptSetLen   = 1 << 20 // items per itemset (mirrors the db reader's cap)
	maxCkptIters    = 1 << 20
	maxCkptPerProcs = 1 << 20
)

// IterSnapshot is the deterministic slice of one iteration's PhaseTiming:
// the work-model fields the pinned tests gate on, without the wall-clock
// durations (which a resumed run cannot and should not reproduce).
type IterSnapshot struct {
	K             int
	Candidates    int
	Frequent      int
	GenSequential bool
	// Batches is how many candidate batches the iteration used (1 when the
	// candidate set fit in the memory budget).
	Batches    int
	BuildWork  int64
	ReduceWork int64
	GenWork    []int64
	CountWork  []int64
	// ChunksClaimed and Steals are nil for static partition modes.
	ChunksClaimed []int64
	Steals        []int64
}

// Checkpoint is one versioned snapshot of a mining run after a completed
// iteration: the frequent sets found so far, the deterministic per-iteration
// work model, and the fingerprint a resume validates against.
type Checkpoint struct {
	MinCount   int64
	DBLen      int64
	NumItems   int64
	TotalItems int64
	Procs      int
	// OptsHash fingerprints the options that determine the run's output and
	// work model (support, tree shape, balance, partition mode, …). Resume
	// refuses a checkpoint whose hash differs from the offered options.
	OptsHash uint64
	// NextK is the iteration a resumed run continues with.
	NextK int
	// Done marks a run that reached its natural fixpoint: resuming returns
	// the reconstructed result without running any further iteration.
	Done  bool
	ByK   [][]apriori.FrequentItemset
	Iters []IterSnapshot
}

// Write serializes the checkpoint to w.
func (c *Checkpoint) Write(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(ckptMagic); err != nil {
		return err
	}
	wi := func(v int64) { writeI64(bw, v) }
	wi(c.MinCount)
	wi(c.DBLen)
	wi(c.NumItems)
	wi(c.TotalItems)
	wi(int64(c.Procs))
	writeU64(bw, c.OptsHash)
	wi(int64(c.NextK))
	writeBool(bw, c.Done)
	wi(int64(len(c.ByK)))
	for _, fk := range c.ByK {
		wi(int64(len(fk)))
		for _, f := range fk {
			writeI32(bw, int32(len(f.Items)))
			for _, it := range f.Items {
				writeI32(bw, int32(it))
			}
			wi(f.Count)
		}
	}
	wi(int64(len(c.Iters)))
	for i := range c.Iters {
		it := &c.Iters[i]
		wi(int64(it.K))
		wi(int64(it.Candidates))
		wi(int64(it.Frequent))
		writeBool(bw, it.GenSequential)
		wi(int64(it.Batches))
		wi(it.BuildWork)
		wi(it.ReduceWork)
		for _, vec := range [][]int64{it.GenWork, it.CountWork, it.ChunksClaimed, it.Steals} {
			wi(int64(len(vec)))
			for _, v := range vec {
				wi(v)
			}
		}
	}
	return bw.Flush()
}

// ReadCheckpoint parses a checkpoint from r, validating the magic, version
// and every length field.
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("ckpt: checkpoint magic: %w", err)
	}
	if string(m[:]) != ckptMagic {
		return nil, fmt.Errorf("ckpt: bad checkpoint magic %q (want %q)", m[:], ckptMagic)
	}
	c := &Checkpoint{}
	var err error
	ri := func() int64 {
		if err != nil {
			return 0
		}
		var v int64
		v, err = readI64(br)
		return v
	}
	c.MinCount = ri()
	c.DBLen = ri()
	c.NumItems = ri()
	c.TotalItems = ri()
	c.Procs = int(ri())
	if err == nil {
		c.OptsHash, err = readU64(br)
	}
	c.NextK = int(ri())
	if err == nil {
		c.Done, err = readBool(br)
	}
	numK := ri()
	if err != nil {
		return nil, fmt.Errorf("ckpt: checkpoint header: %w", err)
	}
	if numK < 0 || numK > maxCkptIters {
		return nil, fmt.Errorf("ckpt: checkpoint: implausible ByK length %d", numK)
	}
	c.ByK = make([][]apriori.FrequentItemset, numK)
	for k := range c.ByK {
		n := ri()
		if err != nil {
			return nil, fmt.Errorf("ckpt: checkpoint ByK[%d]: %w", k, err)
		}
		if n < 0 || n > maxCkptSets {
			return nil, fmt.Errorf("ckpt: checkpoint ByK[%d]: implausible count %d", k, n)
		}
		// Cap the preallocation: the length field is untrusted until the
		// entries actually parse, and a corrupt count must fail with a read
		// error, not a multi-gigabyte allocation.
		fk := make([]apriori.FrequentItemset, 0, int(min(n, 1<<16)))
		for i := int64(0); i < n; i++ {
			klen, e := readI32(br)
			if e != nil {
				return nil, fmt.Errorf("ckpt: checkpoint ByK[%d][%d]: %w", k, i, e)
			}
			if klen < 1 || klen > maxCkptSetLen {
				return nil, fmt.Errorf("ckpt: checkpoint ByK[%d][%d]: implausible itemset length %d", k, i, klen)
			}
			items := make(itemset.Itemset, klen)
			for j := range items {
				v, e := readI32(br)
				if e != nil {
					return nil, fmt.Errorf("ckpt: checkpoint ByK[%d][%d] item %d: %w", k, i, j, e)
				}
				items[j] = itemset.Item(v)
			}
			count := ri()
			if err != nil {
				return nil, fmt.Errorf("ckpt: checkpoint ByK[%d][%d] count: %w", k, i, err)
			}
			fk = append(fk, apriori.FrequentItemset{Items: items, Count: count})
		}
		c.ByK[k] = fk
	}
	numIters := ri()
	if err != nil {
		return nil, fmt.Errorf("ckpt: checkpoint iters: %w", err)
	}
	if numIters < 0 || numIters > maxCkptIters {
		return nil, fmt.Errorf("ckpt: checkpoint: implausible iteration count %d", numIters)
	}
	c.Iters = make([]IterSnapshot, numIters)
	for i := range c.Iters {
		it := &c.Iters[i]
		it.K = int(ri())
		it.Candidates = int(ri())
		it.Frequent = int(ri())
		if err == nil {
			it.GenSequential, err = readBool(br)
		}
		it.Batches = int(ri())
		it.BuildWork = ri()
		it.ReduceWork = ri()
		for v, dst := range []*[]int64{&it.GenWork, &it.CountWork, &it.ChunksClaimed, &it.Steals} {
			n := ri()
			if err != nil {
				return nil, fmt.Errorf("ckpt: checkpoint iter %d vec %d: %w", i, v, err)
			}
			if n < 0 || n > maxCkptPerProcs {
				return nil, fmt.Errorf("ckpt: checkpoint iter %d vec %d: implausible length %d", i, v, n)
			}
			if n == 0 {
				continue
			}
			vec := make([]int64, n)
			for j := range vec {
				vec[j] = ri()
			}
			*dst = vec
		}
		if err != nil {
			return nil, fmt.Errorf("ckpt: checkpoint iter %d: %w", i, err)
		}
	}
	return c, nil
}

// WriteFile writes the checkpoint atomically: a temp file in the same
// directory, fsynced, then renamed over path — a kill mid-write leaves the
// previous checkpoint intact rather than a truncated one.
func (c *Checkpoint) WriteFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := c.Write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// ReadCheckpointFile loads and validates a checkpoint from path.
func ReadCheckpointFile(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCheckpoint(f)
}

// --- little-endian primitives ---

func writeI64(w *bufio.Writer, v int64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	w.Write(b[:])
}

func writeU64(w *bufio.Writer, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	w.Write(b[:])
}

func writeI32(w *bufio.Writer, v int32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(v))
	w.Write(b[:])
}

func writeBool(w *bufio.Writer, v bool) {
	if v {
		w.WriteByte(1)
	} else {
		w.WriteByte(0)
	}
}

func readI64(r *bufio.Reader) (int64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return int64(binary.LittleEndian.Uint64(b[:])), nil
}

func readU64(r *bufio.Reader) (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

func readI32(r *bufio.Reader) (int32, error) {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return int32(binary.LittleEndian.Uint32(b[:])), nil
}

func readBool(r *bufio.Reader) (bool, error) {
	b, err := r.ReadByte()
	if err != nil {
		return false, err
	}
	return b != 0, nil
}
