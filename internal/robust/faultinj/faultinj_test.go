package faultinj

import (
	"testing"
	"time"
)

// fires reports whether Fire at the given site panics.
func fires(in *Injector, phase string, k, worker, chunk int) (panicked bool) {
	defer func() {
		if recover() != nil {
			panicked = true
		}
	}()
	in.Fire(phase, k, worker, chunk)
	return false
}

func TestNilInjectorIsDisabled(t *testing.T) {
	var in *Injector
	in.Fire("count", 2, 0, 0) // must not panic or deref
	if got := in.Fired(); got != 0 {
		t.Errorf("nil injector Fired() = %d, want 0", got)
	}
}

func TestRuleMatching(t *testing.T) {
	cases := []struct {
		name  string
		rule  Rule
		phase string
		k, w  int
		chunk int
		want  bool
	}{
		{"exact match", Rule{Phase: "count", K: 2, Worker: 1, Chunk: 3}, "count", 2, 1, 3, true},
		{"phase mismatch", Rule{Phase: "count", K: 2, Worker: 1, Chunk: 3}, "build", 2, 1, 3, false},
		{"k mismatch", Rule{Phase: "count", K: 2, Worker: 1, Chunk: 3}, "count", 3, 1, 3, false},
		{"worker mismatch", Rule{Phase: "count", K: 2, Worker: 1, Chunk: 3}, "count", 2, 0, 3, false},
		{"chunk mismatch", Rule{Phase: "count", K: 2, Worker: 1, Chunk: 3}, "count", 2, 1, 4, false},
		{"empty phase is wildcard", Rule{K: 2, Worker: 1, Chunk: 3}, "reduce", 2, 1, 3, true},
		{"all wildcards", Rule{Phase: "", K: Wildcard, Worker: Wildcard, Chunk: Wildcard}, "gen", 7, 3, -1, true},
		{"zero k is not a wildcard", Rule{Phase: "count", K: 0, Worker: Wildcard, Chunk: Wildcard}, "count", 2, 0, 0, false},
		{"zero worker is not a wildcard", Rule{Phase: "count", K: Wildcard, Worker: 0, Chunk: Wildcard}, "count", 2, 1, 0, false},
		{"non-chunk site matches wildcard chunk", Rule{Phase: "gen", K: Wildcard, Worker: Wildcard, Chunk: Wildcard}, "gen", 2, 0, -1, true},
	}
	for _, c := range cases {
		in := New(c.rule)
		if got := fires(in, c.phase, c.k, c.w, c.chunk); got != c.want {
			t.Errorf("%s: fired=%v, want %v", c.name, got, c.want)
		}
	}
}

func TestOnceSemantics(t *testing.T) {
	in := New(Rule{Phase: "count", K: Wildcard, Worker: Wildcard, Chunk: Wildcard, Once: true})
	if !fires(in, "count", 2, 0, 0) {
		t.Fatal("first match should fire")
	}
	if fires(in, "count", 2, 1, 1) {
		t.Error("Once rule fired twice")
	}
	if got := in.Fired(); got != 1 {
		t.Errorf("Fired() = %d, want 1", got)
	}
}

func TestFiredCountsEveryMatch(t *testing.T) {
	in := New(Rule{Phase: "count", K: Wildcard, Worker: Wildcard, Chunk: Wildcard, Action: Call})
	for i := 0; i < 5; i++ {
		in.Fire("count", 2, i, i)
	}
	in.Fire("build", 2, 0, -1) // no match
	if got := in.Fired(); got != 5 {
		t.Errorf("Fired() = %d, want 5", got)
	}
}

func TestCallAndDelayActions(t *testing.T) {
	called := 0
	in := New(
		Rule{Phase: "count", K: Wildcard, Worker: Wildcard, Chunk: Wildcard,
			Action: Call, Do: func() { called++ }},
		Rule{Phase: "count", K: Wildcard, Worker: Wildcard, Chunk: Wildcard,
			Action: Delay, Delay: 10 * time.Millisecond, Once: true},
	)
	start := time.Now()
	in.Fire("count", 2, 0, 0)
	if called != 1 {
		t.Errorf("Call rule ran %d times, want 1", called)
	}
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Errorf("Delay rule slept %v, want >= 10ms", elapsed)
	}
}

func TestDoRunsBeforePanic(t *testing.T) {
	ran := false
	in := New(Rule{Phase: "count", K: Wildcard, Worker: Wildcard, Chunk: Wildcard,
		Action: Panic, Do: func() { ran = true }})
	if !fires(in, "count", 2, 0, 0) {
		t.Fatal("Panic rule did not panic")
	}
	if !ran {
		t.Error("Do hook did not run before the panic")
	}
}
