// Package faultinj is the fault-injection harness behind the robustness CI
// smoke tests: an Injector matches (phase, k, worker, chunk) sites inside a
// mining run and fires a configured action — a panic (to exercise the
// scheduler's panic containment), a delay (to widen race windows and fake
// stragglers), or an arbitrary callback (to cancel a context or kill a
// checkpoint file at a precise point).
//
// Injection is enabled only by explicitly setting ccpd.Options.FaultInj; a
// nil *Injector is the disabled harness and every call site compiles to a
// nil check. Production paths never construct one.
package faultinj

import (
	"fmt"
	"sync"
	"time"
)

// Action selects what a matched rule does.
type Action uint8

const (
	// Panic panics with a descriptive faultinj message — the containment
	// tests assert it surfaces as a robust.WorkerPanicError from Mine.
	Panic Action = iota
	// Delay sleeps for Rule.Delay, simulating a straggling worker or
	// widening a race window under the race detector.
	Delay
	// Call invokes Rule.Do only (the zero-cost hook for cancellation or
	// file-system sabotage at an exact site).
	Call
)

// Wildcard matches any value for the K, Worker and Chunk selectors.
const Wildcard = -1

// Rule matches injection sites. Zero-value selectors are NOT wildcards —
// use Wildcard (-1) for "any"; Phase "" matches any phase.
type Rule struct {
	// Phase matches the mining phase label ("f1", "gen", "build", "count",
	// "reduce"); "" matches every phase.
	Phase string
	// K matches the iteration (Wildcard = any).
	K int
	// Worker matches the pool worker index (Wildcard = any).
	Worker int
	// Chunk matches the counting chunk id (Wildcard = any site, including
	// non-chunk sites, which fire with chunk = -1).
	Chunk int
	// Action is what to do at a matched site.
	Action Action
	// Delay is the sleep for Action == Delay.
	Delay time.Duration
	// Do, when non-nil, runs at the matched site before the action (and is
	// the whole action for Action == Call).
	Do func()
	// Once limits the rule to its first match.
	Once bool
}

// matches reports whether the rule covers the site.
func (r *Rule) matches(phase string, k, worker, chunk int) bool {
	if r.Phase != "" && r.Phase != phase {
		return false
	}
	if r.K != Wildcard && r.K != k {
		return false
	}
	if r.Worker != Wildcard && r.Worker != worker {
		return false
	}
	if r.Chunk != Wildcard && r.Chunk != chunk {
		return false
	}
	return true
}

// Injector holds the active rules. Fire is called concurrently from every
// pool worker, so the spent-rule bookkeeping is mutex-guarded — the harness
// runs only in tests, where a mutex per injection site is irrelevant.
type Injector struct {
	mu sync.Mutex
	//armlint:guardedby mu
	rules []Rule
	//armlint:guardedby mu
	spent []bool
	//armlint:guardedby mu
	fired int64
}

// New builds an injector from rules.
func New(rules ...Rule) *Injector {
	return &Injector{rules: rules, spent: make([]bool, len(rules))}
}

// Fired returns how many rule firings have happened.
func (in *Injector) Fired() int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired
}

// Fire evaluates the rules at one injection site. A nil injector is the
// disabled harness. Matched Panic rules panic AFTER the bookkeeping is
// released, so containment tests can still query Fired().
func (in *Injector) Fire(phase string, k, worker, chunk int) {
	if in == nil {
		return
	}
	var todo []Rule
	in.mu.Lock()
	for i := range in.rules {
		r := &in.rules[i]
		if in.spent[i] || !r.matches(phase, k, worker, chunk) {
			continue
		}
		if r.Once {
			in.spent[i] = true
		}
		in.fired++
		todo = append(todo, *r)
	}
	in.mu.Unlock()
	for i := range todo {
		r := &todo[i]
		if r.Do != nil {
			r.Do()
		}
		switch r.Action {
		case Panic:
			panic(fmt.Sprintf("faultinj: injected panic at phase=%s k=%d worker=%d chunk=%d",
				phase, k, worker, chunk))
		case Delay:
			time.Sleep(r.Delay)
		}
	}
}
