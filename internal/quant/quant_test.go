package quant

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/apriori"
)

// ageIncomeTable builds the classic quantitative-rules example: age and
// income correlated, married flag categorical.
func ageIncomeTable(rows int, seed int64) *Table {
	rng := rand.New(rand.NewSource(seed))
	age := make([]float64, rows)
	income := make([]float64, rows)
	married := make([]float64, rows)
	for i := range age {
		a := 20 + rng.Float64()*50
		age[i] = a
		income[i] = a*1000 + rng.Float64()*5000 // income tracks age
		if a > 30 && rng.Float64() < 0.8 {
			married[i] = 1
		}
	}
	return &Table{Cols: []Column{
		{Name: "age", Kind: Numeric, Values: age},
		{Name: "income", Kind: Numeric, Values: income},
		{Name: "married", Kind: Categorical, Values: married},
	}}
}

func TestValidate(t *testing.T) {
	bad := &Table{Cols: []Column{
		{Name: "a", Values: []float64{1, 2}},
		{Name: "b", Values: []float64{1}},
	}}
	if bad.Validate() == nil {
		t.Error("ragged table should fail")
	}
	if (&Table{}).Rows() != 0 {
		t.Error("empty table rows")
	}
}

func TestCutpointsEquiDepth(t *testing.T) {
	v := make([]float64, 100)
	for i := range v {
		v[i] = float64(i)
	}
	edges := cutpoints(v, 4)
	if len(edges) != 5 {
		t.Fatalf("edges = %v", edges)
	}
	if edges[0] != 0 || edges[4] != 99 {
		t.Errorf("outer edges = %v", edges)
	}
	// Equi-depth on uniform data ≈ equal widths.
	for i := 1; i < 4; i++ {
		want := float64(i) * 99 / 4
		if math.Abs(edges[i]-want) > 2 {
			t.Errorf("edge %d = %g, want ≈ %g", i, edges[i], want)
		}
	}
}

func TestEncodeShapes(t *testing.T) {
	tab := ageIncomeTable(200, 1)
	d, enc, err := Encode(tab, Options{Intervals: 4, MaxMerge: 1})
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 200 {
		t.Fatalf("encoded %d rows", d.Len())
	}
	// 4 base intervals × 2 numeric attrs + 2 categorical values = 10 items.
	if enc.NumItems() != 10 {
		t.Errorf("NumItems = %d, want 10", enc.NumItems())
	}
	// Every transaction has exactly one item per attribute at MaxMerge 1.
	for i := 0; i < d.Len(); i++ {
		if d.Items(i).K() != 3 {
			t.Fatalf("row %d has %d items", i, d.Items(i).K())
		}
	}
}

func TestEncodeWithMerge(t *testing.T) {
	tab := ageIncomeTable(100, 2)
	d, enc, err := Encode(tab, Options{Intervals: 4, MaxMerge: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Ranges per numeric attr: lengths 1 (4) + lengths 2 (3) = 7; ×2 attrs
	// + 2 categorical = 16.
	if enc.NumItems() != 16 {
		t.Errorf("NumItems = %d, want 16", enc.NumItems())
	}
	// A row's value sits in 1 base interval and ≤2 length-2 ranges.
	for i := 0; i < d.Len(); i++ {
		k := d.Items(i).K()
		if k < 3 || k > 7 {
			t.Fatalf("row %d has %d items", i, k)
		}
	}
}

// TestMineSupportCeiling checks quantitative mining inherits the shared
// fractional-support ceiling (apriori.CeilSupport) through its Mining
// options: 1% of 300 rows is a minimum count of exactly 3.
func TestMineSupportCeiling(t *testing.T) {
	res, err := Mine(ageIncomeTable(300, 1), Options{
		Intervals: 4,
		Mining:    apriori.Options{MinSupport: 0.01},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mining.MinCount != 3 {
		t.Errorf("0.01 × 300: MinCount = %d, want 3", res.Mining.MinCount)
	}
}

func TestMineFindsCorrelation(t *testing.T) {
	tab := ageIncomeTable(1000, 3)
	res, err := Mine(tab, Options{
		Intervals: 4,
		Mining:    apriori.Options{MinSupport: 0.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	pairs := res.Frequent(2)
	if len(pairs) == 0 {
		t.Fatal("no frequent pairs")
	}
	// The age↔income correlation: a frequent pair joining the top age
	// interval with the top income interval must exist (both are the same
	// rows by construction).
	found := false
	for _, q := range pairs {
		var hasAgeTop, hasIncTop bool
		for _, p := range q.Predicates {
			if p.Attr == "age" && p.Kind == Numeric && p.Lo > 50 {
				hasAgeTop = true
			}
			if p.Attr == "income" && p.Kind == Numeric && p.Lo > 50000 {
				hasIncTop = true
			}
		}
		if hasAgeTop && hasIncTop {
			found = true
		}
	}
	if !found {
		t.Errorf("age↔income correlation not discovered in %d pairs", len(pairs))
	}
}

func TestFrequentSkipsSameAttrCombos(t *testing.T) {
	tab := ageIncomeTable(300, 4)
	res, err := Mine(tab, Options{
		Intervals: 4, MaxMerge: 3,
		Mining: apriori.Options{MinSupport: 0.05},
	})
	if err != nil {
		t.Fatal(err)
	}
	for k := 2; k < 4; k++ {
		for _, q := range res.Frequent(k) {
			seen := map[string]bool{}
			for _, p := range q.Predicates {
				if seen[p.Attr] {
					t.Fatalf("same attribute twice: %v", q.Predicates)
				}
				seen[p.Attr] = true
			}
		}
	}
	// Out-of-range k.
	if got := res.Frequent(99); got != nil {
		t.Error("Frequent(99) should be nil")
	}
}

func TestMineParallelMatches(t *testing.T) {
	tab := ageIncomeTable(400, 5)
	seq, err := Mine(tab, Options{Intervals: 4, Mining: apriori.Options{MinSupport: 0.1}})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Mine(tab, Options{Intervals: 4, Mining: apriori.Options{MinSupport: 0.1}, Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Mining.NumFrequent() != par.Mining.NumFrequent() {
		t.Errorf("seq %d vs par %d", seq.Mining.NumFrequent(), par.Mining.NumFrequent())
	}
}

func TestPredicateString(t *testing.T) {
	p := Predicate{Attr: "age", Kind: Numeric, Lo: 20, Hi: 30}
	if !strings.Contains(p.String(), "age") || !strings.Contains(p.String(), "20") {
		t.Errorf("String = %q", p.String())
	}
	c := Predicate{Attr: "married", Kind: Categorical, Value: 1}
	if c.String() != "married=1" {
		t.Errorf("String = %q", c.String())
	}
}

func TestPartialCompleteness(t *testing.T) {
	if got := PartialCompleteness(4, 1); got != 1.5 {
		t.Errorf("K(4,1) = %g", got)
	}
	if got := PartialCompleteness(10, 2); math.Abs(got-1.4) > 1e-9 {
		t.Errorf("K(10,2) = %g", got)
	}
	if !math.IsInf(PartialCompleteness(0, 1), 1) {
		t.Error("K(0,·) should be +Inf")
	}
	// More intervals → less information loss.
	if PartialCompleteness(20, 1) >= PartialCompleteness(4, 1) {
		t.Error("K should shrink with more intervals")
	}
}

func TestEmptyTable(t *testing.T) {
	d, enc, err := Encode(&Table{Cols: []Column{{Name: "x", Kind: Numeric}}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 0 || enc.NumItems() != 0 {
		t.Error("empty table should encode to empty db")
	}
}
