// Package quant implements quantitative association mining (Srikant &
// Agrawal 1996) — the third extension task Section 8 of the paper names.
// Numeric attributes are discretized into equi-depth base intervals;
// optionally, ranges of up to MaxMerge consecutive intervals become
// additional items (the paper's adjacent-interval combination, which
// counters the minimum-support problem of fine partitions). Each
// (attribute, range) pair maps to a boolean item, the encoded table is
// mined with the repository's (parallel) Apriori machinery, and frequent
// itemsets decode back into attribute-range predicates.
package quant

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/apriori"
	"repro/internal/ccpd"
	"repro/internal/db"
	"repro/internal/hashtree"
	"repro/internal/itemset"
)

// Kind distinguishes attribute types.
type Kind int

const (
	// Numeric attributes are discretized into intervals.
	Numeric Kind = iota
	// Categorical attributes map each distinct value to one item.
	Categorical
)

// Column is one attribute of the input table.
type Column struct {
	Name   string
	Kind   Kind
	Values []float64 // categorical values are small non-negative integers
}

// Table is a column-oriented relational table.
type Table struct {
	Cols []Column
}

// Rows returns the row count (0 for an empty table).
func (t *Table) Rows() int {
	if len(t.Cols) == 0 {
		return 0
	}
	return len(t.Cols[0].Values)
}

// Validate checks rectangular shape.
func (t *Table) Validate() error {
	n := t.Rows()
	for _, c := range t.Cols {
		if len(c.Values) != n {
			return fmt.Errorf("quant: column %q has %d rows, want %d", c.Name, len(c.Values), n)
		}
	}
	return nil
}

// Options configures encoding and mining.
type Options struct {
	// Intervals is the number of equi-depth base intervals per numeric
	// attribute (default 4).
	Intervals int
	// MaxMerge allows ranges spanning up to this many consecutive base
	// intervals (1 = base intervals only).
	MaxMerge int
	// Mining carries support and tree knobs.
	Mining apriori.Options
	// Procs > 1 mines in parallel with CCPD.
	Procs int
}

func (o Options) withDefaults() Options {
	if o.Intervals <= 0 {
		o.Intervals = 4
	}
	if o.MaxMerge <= 0 {
		o.MaxMerge = 1
	}
	return o
}

// Predicate is a decoded item: attribute ∈ [Lo, Hi] (numeric, inclusive
// interval of attribute values) or attribute = Value (categorical).
type Predicate struct {
	Attr  string
	Kind  Kind
	Lo    float64
	Hi    float64
	Value float64
}

func (p Predicate) String() string {
	if p.Kind == Categorical {
		return fmt.Sprintf("%s=%.4g", p.Attr, p.Value)
	}
	return fmt.Sprintf("%s∈[%.4g,%.4g]", p.Attr, p.Lo, p.Hi)
}

// Encoding maps (attribute, range) items to and from item ids.
type Encoding struct {
	preds   []Predicate // item id → predicate
	cols    int
	itemsOf [][]itemset.Item // per column: item ids, for decoding helpers
}

// NumItems returns the encoded universe size.
func (e *Encoding) NumItems() int { return len(e.preds) }

// Predicate decodes an item id.
func (e *Encoding) Predicate(it itemset.Item) Predicate { return e.preds[it] }

// DecodeItemset renders an encoded itemset as predicates.
func (e *Encoding) DecodeItemset(s itemset.Itemset) []Predicate {
	out := make([]Predicate, len(s))
	for i, it := range s {
		out[i] = e.preds[it]
	}
	return out
}

// cutpoints returns equi-depth boundaries for v split into n intervals:
// n+1 edges, first = min, last = max.
func cutpoints(v []float64, n int) []float64 {
	sorted := append([]float64(nil), v...)
	sort.Float64s(sorted)
	edges := make([]float64, n+1)
	for i := 0; i <= n; i++ {
		idx := i * (len(sorted) - 1) / n
		edges[i] = sorted[idx]
	}
	edges[0] = sorted[0]
	edges[n] = sorted[len(sorted)-1]
	return edges
}

// Encode discretizes the table into a transaction database plus the item
// encoding. Every row becomes one transaction holding, per attribute, the
// items of all ranges containing its value.
func Encode(t *Table, opts Options) (*db.Database, *Encoding, error) {
	opts = opts.withDefaults()
	if err := t.Validate(); err != nil {
		return nil, nil, err
	}
	enc := &Encoding{cols: len(t.Cols)}
	// Per column: base interval edges (numeric) or sorted distinct values
	// (categorical), then item ids for each range.
	type colPlan struct {
		kind     Kind
		edges    []float64
		values   []float64
		itemBase map[[2]int]itemset.Item // (loIdx, hiIdx) → item
		valItem  map[float64]itemset.Item
	}
	plans := make([]colPlan, len(t.Cols))
	for ci, c := range t.Cols {
		p := colPlan{kind: c.Kind}
		if t.Rows() == 0 {
			plans[ci] = p
			continue
		}
		if c.Kind == Categorical {
			p.valItem = map[float64]itemset.Item{}
			distinct := map[float64]bool{}
			for _, v := range c.Values {
				distinct[v] = true
			}
			for v := range distinct {
				p.values = append(p.values, v)
			}
			sort.Float64s(p.values)
			for _, v := range p.values {
				id := itemset.Item(len(enc.preds))
				p.valItem[v] = id
				enc.preds = append(enc.preds, Predicate{Attr: c.Name, Kind: Categorical, Value: v})
			}
		} else {
			p.edges = cutpoints(c.Values, opts.Intervals)
			p.itemBase = map[[2]int]itemset.Item{}
			for lo := 0; lo < opts.Intervals; lo++ {
				for hi := lo; hi < opts.Intervals && hi-lo < opts.MaxMerge; hi++ {
					id := itemset.Item(len(enc.preds))
					p.itemBase[[2]int{lo, hi}] = id
					enc.preds = append(enc.preds, Predicate{
						Attr: c.Name, Kind: Numeric,
						Lo: p.edges[lo], Hi: p.edges[hi+1],
					})
				}
			}
		}
		plans[ci] = p
	}

	d := db.New(len(enc.preds))
	row := make([]itemset.Item, 0, len(t.Cols)*opts.MaxMerge)
	for r := 0; r < t.Rows(); r++ {
		row = row[:0]
		for ci, c := range t.Cols {
			p := &plans[ci]
			v := c.Values[r]
			if c.Kind == Categorical {
				row = append(row, p.valItem[v])
				continue
			}
			// Find the base interval (last interval whose low edge ≤ v).
			base := sort.SearchFloat64s(p.edges[1:], v)
			if base >= opts.Intervals {
				base = opts.Intervals - 1
			}
			// All ranges [lo, hi] covering base.
			for lo := 0; lo <= base; lo++ {
				for hi := base; hi < opts.Intervals && hi-lo < opts.MaxMerge; hi++ {
					if lo > hi {
						continue
					}
					if id, ok := p.itemBase[[2]int{lo, hi}]; ok {
						row = append(row, id)
					}
				}
			}
		}
		d.Append(int64(r+1), itemset.New(row...))
	}
	return d, enc, nil
}

// Result pairs the mined output with the encoding for decoding.
type Result struct {
	Encoding *Encoding
	Mining   *apriori.Result
}

// QuantItemset is a decoded frequent itemset.
type QuantItemset struct {
	Predicates []Predicate
	Count      int64
}

// Frequent returns decoded frequent itemsets of size k, skipping itemsets
// that combine two overlapping ranges of the same attribute (those are
// artifacts of range-item encoding, not meaningful conjunctions).
func (r *Result) Frequent(k int) []QuantItemset {
	if k >= len(r.Mining.ByK) {
		return nil
	}
	var out []QuantItemset
	for _, f := range r.Mining.ByK[k] {
		if r.sameAttrTwice(f.Items) {
			continue
		}
		out = append(out, QuantItemset{Predicates: r.Encoding.DecodeItemset(f.Items), Count: f.Count})
	}
	return out
}

func (r *Result) sameAttrTwice(s itemset.Itemset) bool {
	seen := map[string]bool{}
	for _, it := range s {
		a := r.Encoding.preds[it].Attr
		if seen[a] {
			return true
		}
		seen[a] = true
	}
	return false
}

// Mine encodes and mines the table.
func Mine(t *Table, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	d, enc, err := Encode(t, opts)
	if err != nil {
		return nil, err
	}
	var res *apriori.Result
	if opts.Procs > 1 {
		res, _, err = ccpd.Mine(d, ccpd.Options{
			Options: opts.Mining,
			Procs:   opts.Procs,
			Counter: hashtree.CounterPrivate,
			Balance: ccpd.BalanceBitonic,
		})
	} else {
		res, err = apriori.Mine(d, opts.Mining)
	}
	if err != nil {
		return nil, err
	}
	return &Result{Encoding: enc, Mining: res}, nil
}

// PartialCompleteness returns the information-loss bound K of Srikant &
// Agrawal for equi-depth partitioning with n base intervals and merge depth
// m over a single attribute: intervals grow by at most a factor
// 1 + 2/(n·m) ... simplified here to the canonical 1 + 2·m/n bound used to
// pick n for a desired K.
func PartialCompleteness(intervals, maxMerge int) float64 {
	if intervals <= 0 {
		return math.Inf(1)
	}
	return 1 + 2*float64(maxMerge)/float64(intervals)
}
