// Package rules implements the second step of association mining
// (Section 2): generating implication rules X−Y ⇒ Y from the frequent
// itemsets, keeping those whose confidence support(X)/support(X−Y) meets a
// user threshold.
package rules

import (
	"fmt"

	"repro/internal/apriori"
	"repro/internal/itemset"
)

// Rule is an association rule Antecedent ⇒ Consequent.
type Rule struct {
	Antecedent itemset.Itemset
	Consequent itemset.Itemset
	// Support is the count of transactions containing Antecedent ∪
	// Consequent; SupportFrac the same as a fraction of |D|.
	Support     int64
	SupportFrac float64
	// Confidence is support(A∪C)/support(A).
	Confidence float64
	// Lift is confidence / supportFrac(C); > 1 indicates positive
	// correlation. (A standard extension; 0 when |D| unknown.)
	Lift float64
}

func (r Rule) String() string {
	return fmt.Sprintf("%v => %v (sup %d, conf %.3f)", r.Antecedent, r.Consequent, r.Support, r.Confidence)
}

// Options controls rule generation.
type Options struct {
	// MinConfidence filters rules below this confidence (e.g. 0.8).
	MinConfidence float64
	// DBSize, when > 0, enables SupportFrac and Lift computation. It is a
	// wide int64 transaction count — segmented stores (seg.Reader.NumTx)
	// address more than 2³¹ transactions, and an int here silently
	// truncated their SupportFrac and Lift denominators on 32-bit builds.
	//armlint:wide
	DBSize int64
	// MaxConsequent bounds the consequent size; 0 means no bound.
	MaxConsequent int
}

// Generate derives all rules meeting the confidence threshold from a mining
// result. For every frequent itemset X (|X| ≥ 2) and every non-empty proper
// subset Y ⊂ X it evaluates X−Y ⇒ Y. Rules come back in the deterministic
// shared order of sortRules: descending confidence, then support, then
// antecedent, then consequent.
func Generate(res *apriori.Result, opts Options) []Rule {
	sup := make(map[string]int64)
	for _, f := range res.All() {
		sup[f.Items.Key()] = f.Count
	}
	var out []Rule
	for k := 2; k < len(res.ByK); k++ {
		for _, f := range res.ByK[k] {
			x := f.Items
			// Enumerate consequent sizes 1..k-1 (bounded).
			maxC := k - 1
			if opts.MaxConsequent > 0 && opts.MaxConsequent < maxC {
				maxC = opts.MaxConsequent
			}
			for cs := 1; cs <= maxC; cs++ {
				x.ForEachSubset(cs, func(y itemset.Itemset) bool {
					if r, ok := evalRule(sup, x, f.Count, y, opts); ok {
						out = append(out, r)
					}
					return true
				})
			}
		}
	}
	sortRules(out)
	return out
}
