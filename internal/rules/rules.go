// Package rules implements the second step of association mining
// (Section 2): generating implication rules X−Y ⇒ Y from the frequent
// itemsets, keeping those whose confidence support(X)/support(X−Y) meets a
// user threshold.
package rules

import (
	"fmt"
	"sort"

	"repro/internal/apriori"
	"repro/internal/itemset"
)

// Rule is an association rule Antecedent ⇒ Consequent.
type Rule struct {
	Antecedent itemset.Itemset
	Consequent itemset.Itemset
	// Support is the count of transactions containing Antecedent ∪
	// Consequent; SupportFrac the same as a fraction of |D|.
	Support     int64
	SupportFrac float64
	// Confidence is support(A∪C)/support(A).
	Confidence float64
	// Lift is confidence / supportFrac(C); > 1 indicates positive
	// correlation. (A standard extension; 0 when |D| unknown.)
	Lift float64
}

func (r Rule) String() string {
	return fmt.Sprintf("%v => %v (sup %d, conf %.3f)", r.Antecedent, r.Consequent, r.Support, r.Confidence)
}

// Options controls rule generation.
type Options struct {
	// MinConfidence filters rules below this confidence (e.g. 0.8).
	MinConfidence float64
	// DBSize, when > 0, enables SupportFrac and Lift computation.
	DBSize int
	// MaxConsequent bounds the consequent size; 0 means no bound.
	MaxConsequent int
}

// Generate derives all rules meeting the confidence threshold from a mining
// result. For every frequent itemset X (|X| ≥ 2) and every non-empty proper
// subset Y ⊂ X it evaluates X−Y ⇒ Y. Rules come back sorted by descending
// confidence, then support, then antecedent.
func Generate(res *apriori.Result, opts Options) []Rule {
	sup := make(map[string]int64)
	for _, f := range res.All() {
		sup[f.Items.Key()] = f.Count
	}
	var out []Rule
	for k := 2; k < len(res.ByK); k++ {
		for _, f := range res.ByK[k] {
			x := f.Items
			// Enumerate consequent sizes 1..k-1 (bounded).
			maxC := k - 1
			if opts.MaxConsequent > 0 && opts.MaxConsequent < maxC {
				maxC = opts.MaxConsequent
			}
			for cs := 1; cs <= maxC; cs++ {
				x.ForEachSubset(cs, func(y itemset.Itemset) bool {
					ante := x.Minus(y)
					anteSup, ok := sup[ante.Key()]
					if !ok || anteSup == 0 {
						// Cannot happen for a correct miner (downward
						// closure) but guard anyway.
						return true
					}
					conf := float64(f.Count) / float64(anteSup)
					if conf+1e-12 < opts.MinConfidence {
						return true
					}
					r := Rule{
						Antecedent: ante,
						Consequent: y.Clone(),
						Support:    f.Count,
						Confidence: conf,
					}
					if opts.DBSize > 0 {
						r.SupportFrac = float64(f.Count) / float64(opts.DBSize)
						if cSup, ok := sup[y.Key()]; ok && cSup > 0 {
							r.Lift = conf / (float64(cSup) / float64(opts.DBSize))
						}
					}
					out = append(out, r)
					return true
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Confidence != out[j].Confidence {
			return out[i].Confidence > out[j].Confidence
		}
		if out[i].Support != out[j].Support {
			return out[i].Support > out[j].Support
		}
		return out[i].Antecedent.Less(out[j].Antecedent)
	})
	return out
}
