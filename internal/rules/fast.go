package rules

import (
	"repro/internal/apriori"
	"repro/internal/itemset"
)

// GenerateFast derives the same rule set as Generate using the ap-genrules
// consequent-growth algorithm of Agrawal & Srikant: for each frequent
// itemset, candidate consequents start at size 1 and grow by an
// Apriori-style join, exploiting the anti-monotonicity of confidence —
// moving an item from the antecedent to the consequent can only raise the
// antecedent's support and hence lower confidence, so once a consequent
// fails the threshold, all of its supersets fail too. For itemsets with
// many subsets this prunes most of the 2^k enumeration Generate performs.
func GenerateFast(res *apriori.Result, opts Options) []Rule {
	sup := make(map[string]int64)
	for _, f := range res.All() {
		sup[f.Items.Key()] = f.Count
	}
	var out []Rule
	emit := func(x itemset.Itemset, xCount int64, y itemset.Itemset) bool {
		r, ok := evalRule(sup, x, xCount, y, opts)
		if !ok {
			return false
		}
		out = append(out, r)
		return true
	}

	for k := 2; k < len(res.ByK); k++ {
		for _, f := range res.ByK[k] {
			x := f.Items
			maxC := k - 1
			if opts.MaxConsequent > 0 && opts.MaxConsequent < maxC {
				maxC = opts.MaxConsequent
			}
			// Level 1: single-item consequents that pass.
			var passing []itemset.Itemset
			for i := range x {
				y := itemset.New(x[i])
				if emit(x, f.Count, y) {
					passing = append(passing, y)
				}
			}
			// Grow: join passing consequents of size m into size m+1.
			for m := 1; m < maxC && len(passing) > 1; m++ {
				cands, _, _ := apriori.GenerateCandidates(passing, false)
				passing = passing[:0]
				for _, y := range cands {
					if emit(x, f.Count, y) {
						passing = append(passing, y)
					}
				}
			}
		}
	}
	sortRules(out)
	return out
}
