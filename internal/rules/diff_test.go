package rules

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/apriori"
	"repro/internal/db"
	"repro/internal/gen"
	"repro/internal/itemset"
)

// assertSameRules compares two rule lists for bit-identity: same rules, same
// order, same scores. The shared sortRules total order makes element-wise
// DeepEqual meaningful.
func assertSameRules(t *testing.T, label string, slow, fast []Rule) {
	t.Helper()
	if len(slow) != len(fast) {
		t.Fatalf("%s: Generate emits %d rules, GenerateFast %d", label, len(slow), len(fast))
	}
	for i := range slow {
		if !reflect.DeepEqual(slow[i], fast[i]) {
			t.Fatalf("%s: rule %d differs:\n  Generate:     %+v (frac %v lift %v)\n  GenerateFast: %+v (frac %v lift %v)",
				label, i, slow[i], slow[i].SupportFrac, slow[i].Lift, fast[i], fast[i].SupportFrac, fast[i].Lift)
		}
	}
}

// TestGenerateVsFastOnGenWorkloads is the differential property test: over
// seeded Quest workloads (uniform, dense, skewed), every combination of
// confidence threshold, MaxConsequent bound and DBSize must yield
// bit-identical rule lists — same rules, same scores, same deterministic
// order — from the 2^k-subset enumerator and the ap-genrules
// consequent-growth pruner.
func TestGenerateVsFastOnGenWorkloads(t *testing.T) {
	workloads := []struct {
		p       gen.Params
		support float64
	}{
		{gen.Params{T: 8, I: 4, D: 400, Seed: 7}, 0.02},
		{gen.Params{T: 12, I: 6, D: 200, N: 80, L: 40, Seed: 11}, 0.06},              // dense: long itemsets, deep rules
		{gen.Params{T: 6, I: 3, D: 500, Seed: 3, SkewFrac: 0.05, SkewMult: 6}, 0.02}, // planted heavy tail
	}
	for wi, w := range workloads {
		d, err := gen.Generate(w.p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := apriori.Mine(d, apriori.Options{MinSupport: w.support, ShortCircuit: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, conf := range []float64{0, 0.5, 0.75, 0.9, 1.0} {
			for _, maxC := range []int{0, 1, 2} {
				for _, dbSize := range []int64{0, int64(d.Len())} {
					opts := Options{MinConfidence: conf, MaxConsequent: maxC, DBSize: dbSize}
					label := fmt.Sprintf("w%d conf=%g maxc=%d dbsize=%d", wi, conf, maxC, dbSize)
					assertSameRules(t, label, Generate(res, opts), GenerateFast(res, opts))
				}
			}
		}
	}
}

// TestGenerateVsFastBoundaryConfidence pins the shared epsilon: rules whose
// confidence is exactly the threshold (3/4 against 0.75, 2/3 against the
// nearest float to 2/3) must be kept by both algorithms, and a threshold one
// ulp above must drop them from both. A divergence here is precisely the
// copy-paste drift the shared evalRule helper exists to prevent.
func TestGenerateVsFastBoundaryConfidence(t *testing.T) {
	// support({1}) = 4, support({1,2}) = 3 → conf(1⇒2) = 0.75 exactly.
	// support({3}) = 3, support({3,4}) = 2 → conf(3⇒4) = 2/3 (inexact).
	d := db.New(6)
	d.Append(1, itemset.New(1, 2, 3, 4))
	d.Append(2, itemset.New(1, 2, 3, 4))
	d.Append(3, itemset.New(1, 2, 3))
	d.Append(4, itemset.New(1, 5))
	res, err := apriori.Mine(d, apriori.Options{AbsSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, conf := range []float64{0.75, 2.0 / 3.0, 0.6666666666666667, 1.0} {
		opts := Options{MinConfidence: conf, DBSize: int64(d.Len())}
		slow, fast := Generate(res, opts), GenerateFast(res, opts)
		assertSameRules(t, fmt.Sprintf("conf=%v", conf), slow, fast)
		for _, r := range slow {
			if !MeetsConfidence(r.Confidence, conf) {
				t.Errorf("conf=%v: emitted rule below threshold: %v", conf, r)
			}
		}
	}
	// The exact-boundary rule must survive its own threshold.
	rs := Generate(res, Options{MinConfidence: 0.75})
	if findRule(rs, itemset.New(1), itemset.New(2)) == nil {
		t.Error("conf-0.75 rule 1⇒2 dropped at threshold 0.75 (epsilon regression)")
	}
}

// FuzzGenerateVsFast feeds arbitrary small transaction databases through
// both generators. The input encoding: bytes are consumed two at a time as
// (transaction id, item) with item folded into a small universe, so short
// random inputs produce overlapping baskets and real rules.
func FuzzGenerateVsFast(f *testing.F) {
	f.Add([]byte{0, 1, 0, 2, 1, 1, 1, 2, 2, 1, 3, 3}, 0.5, uint8(0))
	f.Add([]byte{0, 1, 0, 2, 0, 3, 1, 1, 1, 2, 1, 3, 2, 1, 2, 2}, 0.75, uint8(1))
	f.Add([]byte{5, 5, 5, 6, 6, 5, 6, 6, 7, 5, 7, 6, 7, 7}, 1.0, uint8(2))
	f.Fuzz(func(t *testing.T, raw []byte, conf float64, maxC uint8) {
		if len(raw) < 4 || len(raw) > 256 {
			return
		}
		if conf < 0 || conf > 1 || conf != conf {
			return
		}
		// Group items by transaction id (mod 16), fold items into [0, 8).
		byTx := map[int][]itemset.Item{}
		for i := 0; i+1 < len(raw); i += 2 {
			byTx[int(raw[i]%16)] = append(byTx[int(raw[i]%16)], itemset.Item(raw[i+1]%8))
		}
		d := db.New(8)
		tid := int64(0)
		for txi := 0; txi < 16; txi++ {
			items := byTx[txi]
			if len(items) == 0 {
				continue
			}
			d.Append(tid, itemset.New(items...)) // New sorts and dedups
			tid++
		}
		if d.Len() == 0 {
			return
		}
		res, err := apriori.Mine(d, apriori.Options{AbsSupport: 1})
		if err != nil {
			t.Fatal(err)
		}
		opts := Options{MinConfidence: conf, MaxConsequent: int(maxC % 4), DBSize: int64(d.Len())}
		assertSameRules(t, "fuzz", Generate(res, opts), GenerateFast(res, opts))
	})
}
