package rules

import (
	"math"
	"strings"
	"testing"

	"repro/internal/apriori"
	"repro/internal/db"
	"repro/internal/gen"
	"repro/internal/itemset"
)

func exampleResult(t *testing.T) *apriori.Result {
	t.Helper()
	d := db.New(6)
	d.Append(1, itemset.New(1, 4, 5))
	d.Append(2, itemset.New(1, 2))
	d.Append(3, itemset.New(3, 4, 5))
	d.Append(4, itemset.New(1, 2, 4, 5))
	res, err := apriori.Mine(d, apriori.Options{AbsSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func findRule(rs []Rule, ante, cons itemset.Itemset) *Rule {
	for i := range rs {
		if rs[i].Antecedent.Equal(ante) && rs[i].Consequent.Equal(cons) {
			return &rs[i]
		}
	}
	return nil
}

func TestGenerateFromExample(t *testing.T) {
	res := exampleResult(t)
	rs := Generate(res, Options{MinConfidence: 0, DBSize: 4})
	// 4 ⇒ 5: support(45)=3, support(4)=3 → confidence 1.0.
	r := findRule(rs, itemset.New(4), itemset.New(5))
	if r == nil {
		t.Fatal("rule 4⇒5 missing")
	}
	if math.Abs(r.Confidence-1.0) > 1e-9 || r.Support != 3 {
		t.Errorf("4⇒5 = %+v", *r)
	}
	// 1 ⇒ 2: support(12)=2, support(1)=3 → confidence 2/3.
	r = findRule(rs, itemset.New(1), itemset.New(2))
	if r == nil {
		t.Fatal("rule 1⇒2 missing")
	}
	if math.Abs(r.Confidence-2.0/3) > 1e-9 {
		t.Errorf("1⇒2 confidence = %f", r.Confidence)
	}
	// From F3={145}: rules like 14⇒5, 1⇒45 etc must exist.
	if findRule(rs, itemset.New(1, 4), itemset.New(5)) == nil {
		t.Error("rule 14⇒5 missing")
	}
	if findRule(rs, itemset.New(1), itemset.New(4, 5)) == nil {
		t.Error("rule 1⇒45 missing")
	}
}

func TestConfidenceThreshold(t *testing.T) {
	res := exampleResult(t)
	all := Generate(res, Options{MinConfidence: 0})
	strict := Generate(res, Options{MinConfidence: 0.9})
	if len(strict) >= len(all) {
		t.Errorf("threshold did not filter: %d vs %d", len(strict), len(all))
	}
	for _, r := range strict {
		if r.Confidence < 0.9-1e-9 {
			t.Errorf("rule below threshold survived: %+v", r)
		}
	}
}

func TestRulesSortedByConfidence(t *testing.T) {
	res := exampleResult(t)
	rs := Generate(res, Options{MinConfidence: 0})
	for i := 1; i < len(rs); i++ {
		if rs[i-1].Confidence < rs[i].Confidence-1e-12 {
			t.Fatalf("rules not sorted at %d", i)
		}
	}
}

func TestAntecedentConsequentDisjointAndComplete(t *testing.T) {
	res := exampleResult(t)
	rs := Generate(res, Options{MinConfidence: 0})
	for _, r := range rs {
		if r.Antecedent.Intersect(r.Consequent).K() != 0 {
			t.Errorf("overlapping rule %v", r)
		}
		x := r.Antecedent.Union(r.Consequent)
		if res.SupportOf(x) != r.Support {
			t.Errorf("support mismatch for %v: rule %d vs result %d", r, r.Support, res.SupportOf(x))
		}
		if r.Antecedent.K() == 0 || r.Consequent.K() == 0 {
			t.Errorf("degenerate rule %v", r)
		}
	}
}

func TestLiftComputation(t *testing.T) {
	res := exampleResult(t)
	rs := Generate(res, Options{MinConfidence: 0, DBSize: 4})
	r := findRule(rs, itemset.New(4), itemset.New(5))
	// conf(4⇒5)=1.0; supFrac(5)=3/4 → lift 4/3.
	if math.Abs(r.Lift-4.0/3) > 1e-9 {
		t.Errorf("lift = %f, want %f", r.Lift, 4.0/3)
	}
	if math.Abs(r.SupportFrac-0.75) > 1e-9 {
		t.Errorf("supportFrac = %f", r.SupportFrac)
	}
	// Without DBSize lift stays zero.
	rs0 := Generate(res, Options{MinConfidence: 0})
	if findRule(rs0, itemset.New(4), itemset.New(5)).Lift != 0 {
		t.Error("lift computed without DBSize")
	}
}

func TestMaxConsequent(t *testing.T) {
	res := exampleResult(t)
	rs := Generate(res, Options{MinConfidence: 0, MaxConsequent: 1})
	for _, r := range rs {
		if r.Consequent.K() > 1 {
			t.Errorf("consequent too large: %v", r)
		}
	}
}

func TestRuleString(t *testing.T) {
	r := Rule{
		Antecedent: itemset.New(1), Consequent: itemset.New(2),
		Support: 5, Confidence: 0.5,
	}
	s := r.String()
	if !strings.Contains(s, "=>") || !strings.Contains(s, "0.500") {
		t.Errorf("String = %q", s)
	}
}

func TestGenerateOnSyntheticData(t *testing.T) {
	d, err := gen.Generate(gen.Params{N: 60, L: 15, I: 4, T: 8, D: 500, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := apriori.Mine(d, apriori.Options{MinSupport: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	rs := Generate(res, Options{MinConfidence: 0.5, DBSize: int64(d.Len())})
	// Verify each rule's confidence against raw data.
	for _, r := range rs[:min(len(rs), 30)] {
		x := r.Antecedent.Union(r.Consequent)
		var supX, supA int64
		for i := 0; i < d.Len(); i++ {
			items := d.Items(i)
			if items.Contains(x) {
				supX++
			}
			if items.Contains(r.Antecedent) {
				supA++
			}
		}
		if supX != r.Support {
			t.Errorf("rule %v support %d, raw %d", r, r.Support, supX)
		}
		if math.Abs(r.Confidence-float64(supX)/float64(supA)) > 1e-9 {
			t.Errorf("rule %v confidence mismatch", r)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestEmptyResult(t *testing.T) {
	res := &apriori.Result{ByK: make([][]apriori.FrequentItemset, 2)}
	if rs := Generate(res, Options{}); len(rs) != 0 {
		t.Errorf("empty result generated %d rules", len(rs))
	}
}
