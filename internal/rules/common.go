package rules

import (
	"sort"

	"repro/internal/itemset"
)

// confEpsilon absorbs float rounding at the confidence threshold: a rule
// whose exact confidence equals MinConfidence must pass even when the
// division lands an ulp low (support ratios like 3/4 vs a 0.75 threshold).
// Generate and GenerateFast share this constant through MeetsConfidence so
// the two algorithms can never diverge on boundary rules.
const confEpsilon = 1e-12

// MeetsConfidence reports whether a computed confidence passes the
// threshold, with the shared epsilon applied. Exported so downstream
// consumers of pre-generated rule lists (the armined query index) cut off
// at exactly the same boundary the generators used.
func MeetsConfidence(conf, min float64) bool {
	return conf+confEpsilon >= min
}

// evalRule scores the candidate rule (x−y) ⇒ y against the support table
// and the options: confidence from the antecedent's support, and — when
// DBSize is known — the support fraction and lift. It returns ok=false when
// the rule fails the confidence threshold or the antecedent is missing from
// the table (impossible for a downward-closed miner, but guarded). This is
// the single scoring path shared by Generate and GenerateFast; before it
// existed the epsilon-and-lift logic was copy-pasted in both and could
// silently diverge.
func evalRule(sup map[string]int64, x itemset.Itemset, xCount int64, y itemset.Itemset, opts Options) (Rule, bool) {
	ante := x.Minus(y)
	anteSup, ok := sup[ante.Key()]
	if !ok || anteSup == 0 {
		return Rule{}, false
	}
	conf := float64(xCount) / float64(anteSup)
	if !MeetsConfidence(conf, opts.MinConfidence) {
		return Rule{}, false
	}
	r := Rule{
		Antecedent: ante,
		Consequent: y.Clone(),
		Support:    xCount,
		Confidence: conf,
	}
	if opts.DBSize > 0 {
		r.SupportFrac = float64(xCount) / float64(opts.DBSize)
		if cSup, ok := sup[y.Key()]; ok && cSup > 0 {
			r.Lift = conf / (float64(cSup) / float64(opts.DBSize))
		}
	}
	return r, true
}

// sortRules orders a rule list deterministically: descending confidence,
// then descending support, then antecedent, then consequent. The final
// consequent tiebreak makes the comparator a total order — two distinct
// rules never compare equal (an (antecedent, consequent) pair is unique) —
// so Generate and GenerateFast emit byte-identical orderings regardless of
// the enumeration order they discovered the rules in. Before this helper
// each algorithm carried its own three-key sort.Slice, and rules tied on
// all three keys could come back in either order.
func sortRules(out []Rule) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].Confidence != out[j].Confidence {
			return out[i].Confidence > out[j].Confidence
		}
		if out[i].Support != out[j].Support {
			return out[i].Support > out[j].Support
		}
		if c := out[i].Antecedent.Compare(out[j].Antecedent); c != 0 {
			return c < 0
		}
		return out[i].Consequent.Less(out[j].Consequent)
	})
}
