package rules

import (
	"math/rand"
	"testing"

	"repro/internal/apriori"
	"repro/internal/gen"
)

// ruleKey identifies a rule by antecedent/consequent.
func ruleKey(r Rule) string {
	return r.Antecedent.Key() + "=>" + r.Consequent.Key()
}

func TestGenerateFastMatchesGenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 5; trial++ {
		d, err := gen.Generate(gen.Params{
			N: 40, L: 12, I: 3, T: 7, D: 300, Seed: rng.Int63(),
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := apriori.Mine(d, apriori.Options{MinSupport: 0.03})
		if err != nil {
			t.Fatal(err)
		}
		for _, conf := range []float64{0, 0.5, 0.8, 0.95} {
			opts := Options{MinConfidence: conf, DBSize: int64(d.Len())}
			slow := Generate(res, opts)
			fast := GenerateFast(res, opts)
			if len(slow) != len(fast) {
				t.Fatalf("trial %d conf %.2f: %d rules vs %d", trial, conf, len(slow), len(fast))
			}
			sm := map[string]Rule{}
			for _, r := range slow {
				sm[ruleKey(r)] = r
			}
			for _, r := range fast {
				ref, ok := sm[ruleKey(r)]
				if !ok {
					t.Fatalf("trial %d: fast-only rule %v", trial, r)
				}
				if ref.Confidence != r.Confidence || ref.Support != r.Support || ref.Lift != r.Lift {
					t.Fatalf("trial %d: rule %v metrics differ: %+v vs %+v", trial, ruleKey(r), ref, r)
				}
			}
		}
	}
}

func TestGenerateFastMaxConsequent(t *testing.T) {
	res := exampleResult(t)
	for _, maxC := range []int{1, 2} {
		opts := Options{MinConfidence: 0, MaxConsequent: maxC}
		slow := Generate(res, opts)
		fast := GenerateFast(res, opts)
		if len(slow) != len(fast) {
			t.Fatalf("maxC=%d: %d vs %d rules", maxC, len(slow), len(fast))
		}
		for _, r := range fast {
			if r.Consequent.K() > maxC {
				t.Fatalf("consequent too big: %v", r)
			}
		}
	}
}

func TestGenerateFastEmpty(t *testing.T) {
	res := &apriori.Result{ByK: make([][]apriori.FrequentItemset, 2)}
	if rs := GenerateFast(res, Options{}); len(rs) != 0 {
		t.Errorf("empty result generated %d rules", len(rs))
	}
}

func TestGenerateFastSorted(t *testing.T) {
	res := exampleResult(t)
	rs := GenerateFast(res, Options{MinConfidence: 0})
	for i := 1; i < len(rs); i++ {
		if rs[i-1].Confidence < rs[i].Confidence-1e-12 {
			t.Fatalf("not sorted at %d", i)
		}
	}
}
