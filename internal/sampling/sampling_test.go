package sampling

import (
	"testing"

	"repro/internal/apriori"
	"repro/internal/db"
	"repro/internal/gen"
	"repro/internal/itemset"
)

func TestSampleFraction(t *testing.T) {
	d, err := gen.Generate(gen.Params{N: 50, L: 10, I: 3, T: 6, D: 2000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := Sample(d, 0.25, 7)
	frac := float64(s.Len()) / float64(d.Len())
	if frac < 0.18 || frac > 0.32 {
		t.Errorf("sample fraction %.3f far from 0.25", frac)
	}
	if err := s.Validate(); err != nil {
		t.Error(err)
	}
	// Determinism.
	s2 := Sample(d, 0.25, 7)
	if s2.Len() != s.Len() {
		t.Error("sampling not deterministic by seed")
	}
}

func TestSampleEdge(t *testing.T) {
	d := db.New(5)
	d.Append(1, itemset.New(1, 2))
	if got := Sample(d, 1.0, 1); got.Len() > 1 {
		t.Errorf("over-sampled: %d", got.Len())
	}
	if got := Sample(d, 0.0, 1); got.Len() != 0 {
		t.Errorf("fraction 0 sampled %d", got.Len())
	}
}

func TestEvaluateAccuracy(t *testing.T) {
	d, err := gen.Generate(gen.Params{N: 80, L: 20, I: 4, T: 8, D: 4000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	acc, full, err := Evaluate(d, Options{
		Fraction:     0.25,
		SupportSlack: 0.8,
		Mining:       apriori.Options{MinSupport: 0.02},
		Seed:         3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if full.NumFrequent() == 0 {
		t.Fatal("nothing frequent in full database — test not meaningful")
	}
	if acc.SampleSize == 0 {
		t.Fatal("empty sample")
	}
	// The companion paper's finding: modest samples already capture the
	// frequent set with high recall (slack suppresses false negatives).
	if r := acc.Recall(); r < 0.85 {
		t.Errorf("recall %.3f below 0.85 (TP=%d FN=%d)", r, acc.TruePositives, acc.FalseNegatives)
	}
	if p := acc.Precision(); p < 0.5 {
		t.Errorf("precision %.3f implausibly low", p)
	}
}

func TestEvaluateAbsSupport(t *testing.T) {
	d, err := gen.Generate(gen.Params{N: 50, L: 12, I: 3, T: 6, D: 1500, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	acc, _, err := Evaluate(d, Options{
		Fraction: 0.3,
		Mining:   apriori.Options{AbsSupport: 30},
		Seed:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if acc.Recall() < 0.7 {
		t.Errorf("abs-support recall %.3f too low", acc.Recall())
	}
}

func TestEvaluateDefaults(t *testing.T) {
	d, _ := gen.Generate(gen.Params{N: 30, L: 8, I: 3, T: 5, D: 500, Seed: 6})
	// Out-of-range options fall back to defaults rather than failing.
	if _, _, err := Evaluate(d, Options{
		Fraction: -1, SupportSlack: 9,
		Mining: apriori.Options{MinSupport: 0.05},
	}); err != nil {
		t.Fatal(err)
	}
}

func TestAccuracyMetricsEdge(t *testing.T) {
	a := Accuracy{}
	if a.Precision() != 1 || a.Recall() != 1 {
		t.Error("empty accuracy should be perfect")
	}
	a = Accuracy{TruePositives: 3, FalsePositives: 1, FalseNegatives: 1}
	if a.Precision() != 0.75 {
		t.Errorf("precision = %f", a.Precision())
	}
	if a.Recall() != 0.75 {
		t.Errorf("recall = %f", a.Recall())
	}
}
