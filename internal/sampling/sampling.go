// Package sampling implements the sampling-based mining evaluation of the
// authors' companion work (Zaki, Parthasarathy, Li & Ogihara 1997,
// "Evaluation of sampling for data mining of association rules", cited in
// Section 7): mine a uniform random sample of the database at a (slightly
// lowered) support and measure how faithfully the sample's frequent set
// matches the full database's.
package sampling

import (
	"math/rand"

	"repro/internal/apriori"
	"repro/internal/db"
)

// Options configures a sampling evaluation.
type Options struct {
	// Fraction of transactions to sample (0 < Fraction ≤ 1).
	Fraction float64
	// SupportSlack lowers the sample's support threshold multiplicatively
	// (e.g. 0.9 mines the sample at 90% of the scaled support) to reduce
	// false negatives, as Toivonen's negative-border approach motivates.
	SupportSlack float64
	// Mining carries the base support and tree knobs (applied to the full
	// database; the sample inherits scaled values).
	Mining apriori.Options
	Seed   int64
}

// Accuracy summarizes sample-vs-full agreement.
type Accuracy struct {
	SampleSize int
	// TruePositives: frequent in both; FalsePositives: frequent only in
	// the sample; FalseNegatives: frequent only in the full database.
	TruePositives  int
	FalsePositives int
	FalseNegatives int
}

// Precision returns TP/(TP+FP); 1 when nothing was found.
func (a Accuracy) Precision() float64 {
	if a.TruePositives+a.FalsePositives == 0 {
		return 1
	}
	return float64(a.TruePositives) / float64(a.TruePositives+a.FalsePositives)
}

// Recall returns TP/(TP+FN); 1 when nothing was missed.
func (a Accuracy) Recall() float64 {
	if a.TruePositives+a.FalseNegatives == 0 {
		return 1
	}
	return float64(a.TruePositives) / float64(a.TruePositives+a.FalseNegatives)
}

// Sample draws a uniform random subset of transactions.
func Sample(d *db.Database, fraction float64, seed int64) *db.Database {
	rng := rand.New(rand.NewSource(seed))
	out := db.New(d.NumItems())
	for i := 0; i < d.Len(); i++ {
		if rng.Float64() < fraction {
			out.Append(d.TID(i), d.Items(i))
		}
	}
	return out
}

// Evaluate mines both the sample and the full database and compares the
// frequent sets. The full-database result is returned alongside for reuse.
func Evaluate(d *db.Database, opts Options) (Accuracy, *apriori.Result, error) {
	if opts.Fraction <= 0 || opts.Fraction > 1 {
		opts.Fraction = 0.1
	}
	if opts.SupportSlack <= 0 || opts.SupportSlack > 1 {
		opts.SupportSlack = 0.9
	}
	full, err := apriori.Mine(d, opts.Mining)
	if err != nil {
		return Accuracy{}, nil, err
	}
	sample := Sample(d, opts.Fraction, opts.Seed)
	acc := Accuracy{SampleSize: sample.Len()}

	sampleOpts := opts.Mining
	// Scale the absolute threshold to the sample with slack; fractional
	// supports scale automatically, so only apply the slack there.
	if sampleOpts.AbsSupport > 0 {
		scaled := float64(sampleOpts.AbsSupport) * float64(sample.Len()) / float64(max(1, d.Len()))
		sampleOpts.AbsSupport = int64(scaled * opts.SupportSlack)
		if sampleOpts.AbsSupport < 1 {
			sampleOpts.AbsSupport = 1
		}
	} else {
		sampleOpts.MinSupport *= opts.SupportSlack
	}
	sampleRes, err := apriori.Mine(sample, sampleOpts)
	if err != nil {
		return Accuracy{}, nil, err
	}

	inFull := map[string]bool{}
	for _, f := range full.All() {
		inFull[f.Items.Key()] = true
	}
	inSample := map[string]bool{}
	for _, f := range sampleRes.All() {
		inSample[f.Items.Key()] = true
	}
	for k := range inSample {
		if inFull[k] {
			acc.TruePositives++
		} else {
			acc.FalsePositives++
		}
	}
	for k := range inFull {
		if !inSample[k] {
			acc.FalseNegatives++
		}
	}
	return acc, full, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
