package sched

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/robust"
)

// TestRunContainsPanic pins the containment contract: a panic in a worker
// closure comes back as a *robust.WorkerPanicError carrying the worker
// index, the panic value and a stack — and the pool survives to run the
// next phase.
func TestRunContainsPanic(t *testing.T) {
	p := NewPool(4)
	defer p.Close()

	err := p.Run(func(w int) {
		if w == 2 {
			panic("boom")
		}
	})
	var wp *robust.WorkerPanicError
	if !errors.As(err, &wp) {
		t.Fatalf("Run returned %v, want WorkerPanicError", err)
	}
	if wp.Worker != 2 {
		t.Errorf("Worker = %d, want 2", wp.Worker)
	}
	if wp.Value != "boom" {
		t.Errorf("Value = %v, want boom", wp.Value)
	}
	if wp.Chunk != -1 {
		t.Errorf("Chunk = %d, want -1 (no chunk announced)", wp.Chunk)
	}
	if !strings.Contains(string(wp.Stack), "robust_test") {
		t.Errorf("stack does not point at the panic site:\n%s", wp.Stack)
	}

	// The pool must stay usable: all workers run the next phase.
	ran := make([]bool, 4)
	if err := p.Run(func(w int) { ran[w] = true }); err != nil {
		t.Fatalf("pool unusable after contained panic: %v", err)
	}
	for w, ok := range ran {
		if !ok {
			t.Errorf("worker %d did not run after contained panic", w)
		}
	}
}

// TestRunPanicLowestWorkerWins pins the deterministic error choice when
// several workers panic in the same phase.
func TestRunPanicLowestWorkerWins(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	err := p.Run(func(w int) {
		if w >= 1 {
			panic(w)
		}
	})
	var wp *robust.WorkerPanicError
	if !errors.As(err, &wp) {
		t.Fatalf("Run returned %v", err)
	}
	if wp.Worker != 1 {
		t.Errorf("Worker = %d, want 1 (lowest panicking index)", wp.Worker)
	}
}

// TestRunPanicErrorValue checks that panicking with an error value is
// unwrappable from the containment error.
func TestRunPanicErrorValue(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	sentinel := errors.New("sentinel")
	err := p.Run(func(int) { panic(sentinel) })
	if !errors.Is(err, sentinel) {
		t.Errorf("contained panic does not unwrap to the panicked error: %v", err)
	}
}

// TestNoteChunkAttribution: a panic after NoteChunk is attributed to that
// chunk; the note resets between Runs.
func TestNoteChunkAttribution(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	err := p.Run(func(w int) {
		if w == 1 {
			p.NoteChunk(1, 37)
			panic("mid-chunk")
		}
	})
	var wp *robust.WorkerPanicError
	if !errors.As(err, &wp) {
		t.Fatalf("Run returned %v", err)
	}
	if wp.Chunk != 37 {
		t.Errorf("Chunk = %d, want 37", wp.Chunk)
	}

	// Next Run: the stale note must not leak into a new panic.
	err = p.Run(func(w int) {
		if w == 1 {
			panic("fresh")
		}
	})
	if !errors.As(err, &wp) {
		t.Fatalf("Run returned %v", err)
	}
	if wp.Chunk != -1 {
		t.Errorf("Chunk = %d, want -1 (note must reset at Run entry)", wp.Chunk)
	}
}

// TestRunCtx: a live context dispatches normally; a canceled one skips the
// phase and returns the context error.
func TestRunCtx(t *testing.T) {
	p := NewPool(2)
	defer p.Close()

	ran := false
	if err := p.RunCtx(context.Background(), func(w int) {
		if w == 0 {
			ran = true
		}
	}); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Error("live context did not dispatch")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran = false
	err := p.RunCtx(ctx, func(int) { ran = true })
	if !errors.Is(err, context.Canceled) {
		t.Errorf("RunCtx on canceled ctx = %v, want context.Canceled", err)
	}
	if ran {
		t.Error("canceled context still dispatched")
	}

	// nil context behaves like Run.
	if err := p.RunCtx(nil, func(int) {}); err != nil {
		t.Errorf("RunCtx(nil) = %v", err)
	}
}

// TestSingleProcPoolContainsPanic: the inline procs==1 fast path must
// contain panics exactly like the channel path.
func TestSingleProcPoolContainsPanic(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	err := p.Run(func(int) { panic("inline") })
	var wp *robust.WorkerPanicError
	if !errors.As(err, &wp) {
		t.Fatalf("Run returned %v", err)
	}
	if wp.Worker != 0 || wp.Value != "inline" {
		t.Errorf("got worker=%d value=%v", wp.Worker, wp.Value)
	}
	if err := p.Run(func(int) {}); err != nil {
		t.Errorf("single-proc pool unusable after panic: %v", err)
	}
}
