package sched

import (
	"sync"
	"sync/atomic"
)

// NumChunks returns how many size-sized chunks cover n items (the last chunk
// may be short). Zero when n or size is not positive.
func NumChunks(n, size int) int {
	if n <= 0 || size <= 0 {
		return 0
	}
	return (n + size - 1) / size
}

// ChunkRange returns the half-open item range [lo, hi) of chunk c.
func ChunkRange(n, size, c int) (lo, hi int) {
	lo = c * size
	hi = lo + size
	if hi > n {
		hi = n
	}
	return lo, hi
}

// Cursor hands out chunk indices [0, n) to concurrent claimants, each
// exactly once — the shared-counter dynamic loop of the counting phase.
type Cursor struct {
	next atomic.Int64
	n    int64
}

// NewCursor prepares a cursor over n chunks.
func NewCursor(n int) *Cursor {
	return &Cursor{n: int64(n)}
}

// Next claims the next chunk; ok is false once all chunks are taken.
//
//armlint:itersrc
func (c *Cursor) Next() (chunk int, ok bool) {
	v := c.next.Add(1) - 1
	if v >= c.n {
		return 0, false
	}
	return int(v), true
}

// Deque is a small mutex-guarded double-ended queue of chunk indices. The
// owner pushes and pops at the tail (LIFO, cache-warm), thieves pop at the
// head (FIFO, the oldest — and for seeded deques the largest-remaining —
// work). Chunk counts are small (thousands), so a lock per operation is
// far below the cost of counting one chunk; the classic lock-free Chase–Lev
// structure would buy nothing here.
//
// Deques live one-per-worker in a Stealing slice and the owner hammers its
// own mutex on every chunk claim, so the struct is padded to a full cache
// line: unpadded it is 40 bytes and two workers' deques would invalidate
// each other's line on every Push/Pop (armlint falseshare caught exactly
// that).
//
// Live entries are items[head:len(items)]: PopHead advances the head index
// instead of re-slicing items[1:], which would strand the consumed prefix
// of the backing array and force every post-steal Push or Seed to grow a
// fresh one — a capacity leak across reused deques. Whenever the deque
// drains, both ends reset (head=0, items[:0]) so the full backing array is
// reusable by the next Seed cycle.
type Deque struct {
	//armlint:hot
	mu sync.Mutex
	//armlint:hot
	//armlint:guardedby mu
	items []int32
	//armlint:hot
	//armlint:guardedby mu
	head int
	_    [64 - 8 - 24 - 8]byte // pad to one cache line (mutex 8B + slice header 24B + head 8B)
}

// Push appends v at the tail.
func (d *Deque) Push(v int32) {
	d.mu.Lock()
	d.items = append(d.items, v)
	d.mu.Unlock()
}

// PopTail removes the newest entry (owner side).
func (d *Deque) PopTail() (int32, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.items)
	if n == d.head {
		return 0, false
	}
	v := d.items[n-1]
	d.items = d.items[:n-1]
	if len(d.items) == d.head {
		d.head = 0
		d.items = d.items[:0]
	}
	return v, true
}

// PopHead removes the oldest entry (thief side).
func (d *Deque) PopHead() (int32, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.items) == d.head {
		return 0, false
	}
	v := d.items[d.head]
	d.head++
	if d.head == len(d.items) {
		d.head = 0
		d.items = d.items[:0]
	}
	return v, true
}

// Len returns the current entry count.
func (d *Deque) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.items) - d.head
}

// Stealing coordinates per-worker chunk deques: each worker drains its own
// deque LIFO and, when empty, scans the other workers round-robin stealing
// FIFO. Chunks are claimed exactly once; when every deque is empty Next
// reports done (in-flight chunks need no tracking — a claimed chunk is
// owned by its claimant).
type Stealing struct {
	deques []Deque
}

// NewStealing creates a scheduler for procs workers with empty deques; seed
// the deques with Seed before starting the workers.
func NewStealing(procs int) *Stealing {
	if procs < 1 {
		procs = 1
	}
	return &Stealing{deques: make([]Deque, procs)}
}

// Seed assigns chunk indices [lo, hi) to worker p's deque in ascending
// order, so the owner's LIFO pop walks its block back-to-front and thieves
// take the front — the end a block-partitioned straggler has not reached.
func (s *Stealing) Seed(p, lo, hi int) {
	d := &s.deques[p]
	d.mu.Lock()
	for c := lo; c < hi; c++ {
		d.items = append(d.items, int32(c))
	}
	d.mu.Unlock()
}

// SeedBlocks block-partitions n chunks across the deques (worker p receives
// the contiguous range p·n/P … (p+1)·n/P, mirroring db.BlockPartition).
func (s *Stealing) SeedBlocks(n int) {
	procs := len(s.deques)
	for p := 0; p < procs; p++ {
		s.Seed(p, p*n/procs, (p+1)*n/procs)
	}
}

// Next claims a chunk for worker p: own deque first (LIFO), then victims
// (p+1, p+2, … mod P) FIFO. victim is the deque the chunk came from — equal
// to p for a self-pop, another worker for a steal (the trace export draws
// the victim→thief flow arrow from it); ok is false when no work remains
// anywhere.
//
//armlint:itersrc
func (s *Stealing) Next(p int) (chunk int32, victim int, ok bool) {
	if v, ok := s.deques[p].PopTail(); ok {
		return v, p, true
	}
	procs := len(s.deques)
	for off := 1; off < procs; off++ {
		victim := (p + off) % procs
		if v, ok := s.deques[victim].PopHead(); ok {
			return v, victim, true
		}
	}
	return 0, p, false
}

// PerWorker is one worker's counting-phase accumulator set, padded to a full
// cache line so that adjacent workers' counters never share a line. The
// counting loop increments these on every chunk claim; before padding, the
// equivalent bare int64 slices (ChunksClaimed/Steals/CountWork in the phase
// timing arrays) packed eight workers per line and every increment
// invalidated its neighbours — the textbook false-sharing pattern the paper's
// Section 5.2 measures and armlint's falseshare analyzer flags.
type PerWorker struct {
	//armlint:hot
	Claimed int64 // chunks claimed by this worker
	//armlint:hot
	Stolen int64 // chunks stolen from other workers' deques
	//armlint:hot
	Work int64 // deterministic work units counted
	//armlint:hot
	ElapsedNS int64          // wall-clock nanoseconds spent in the phase
	_         [64 - 4*8]byte // pad to one cache line
}

// GreedySchedule is the deterministic stand-in for the racy runtime chunk
// assignment: chunks are assigned in index order, each to the processor with
// the least accumulated work (ties to the lowest id) — the list-scheduling
// bound dynamic claiming approximates. Per-chunk work units are themselves
// deterministic, so the returned per-processor totals are reproducible
// across runs and hosts, and their sum equals the total counting work of
// any static partition bit-for-bit.
func GreedySchedule(chunkWork []int64, procs int) []int64 {
	if procs < 1 {
		procs = 1
	}
	load := make([]int64, procs)
	for _, w := range chunkWork {
		min := 0
		for p := 1; p < procs; p++ {
			if load[p] < load[min] {
				min = p
			}
		}
		load[min] += w
	}
	return load
}
