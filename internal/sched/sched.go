// Package sched provides the dynamic scheduling substrate for the parallel
// mining phases: a persistent worker pool that replaces per-phase goroutine
// spawning, chunked work distribution through an atomic claim cursor, and
// per-worker deques with LIFO self-pop / FIFO steal for skewed workloads.
// The paper's static block/workload partitions (Section 3.2.2) leave
// processors idle whenever the transaction cost estimate is wrong; dynamic
// chunk claiming bounds that idle time by one chunk's work.
//
// The package also carries the deterministic greedy list-schedule model
// (GreedySchedule) that stands in for the racy runtime chunk assignment when
// the experiment harness needs reproducible per-processor work figures —
// which is why the package is pinned: no wall clock, no randomness.
//
//armlint:pinned
package sched

import (
	"context"
	"runtime/debug"
	"sync"

	"repro/internal/robust"
)

// Pool is a fixed set of persistent worker goroutines, created once per
// mining run and reused by every phase of every iteration. Run dispatches
// one closure per worker and blocks until all workers finish, so a Pool
// behaves like a barrier-synchronized processor set without paying goroutine
// spawn and teardown on each phase.
//
// A panic inside a dispatched closure is contained: the worker recovers it,
// the barrier completes normally, and Run returns a *robust.WorkerPanicError
// instead of letting the panic kill the process. The pool stays usable for
// further Runs (the paper's long-running-server regime: one bad transaction
// batch must not take down the whole mining service).
type Pool struct {
	procs int
	work  []chan func(int)
	wg    sync.WaitGroup
	// wrap, when set, brackets every dispatched closure — the hook the
	// observability layer uses to record per-worker phase spans and apply
	// runtime/pprof phase labels without sched importing either.
	wrap func(worker int, fn func(int))
	// panics[i] is worker i's recovered panic from the current Run, nil
	// when it completed normally. Reset by Run before dispatch; each worker
	// writes only its own slot, and Run reads only after the barrier.
	panics []error
	// notes[i] is worker i's announced counting chunk (NoteChunk), stamped
	// into the WorkerPanicError when that worker panics mid-chunk.
	notes []workerNote
}

// workerNote is one worker's current-chunk annotation, padded to a cache
// line: the owner rewrites it on every chunk claim, and unpadded slots would
// false-share exactly like the counting accumulators (PerWorker).
type workerNote struct {
	//armlint:hot
	chunk int64
	_     [64 - 8]byte
}

// NewPool starts procs persistent workers (minimum 1). Callers must Close
// the pool when the run completes.
func NewPool(procs int) *Pool {
	if procs < 1 {
		procs = 1
	}
	p := &Pool{
		procs:  procs,
		work:   make([]chan func(int), procs),
		panics: make([]error, procs),
		notes:  make([]workerNote, procs),
	}
	for i := range p.work {
		p.work[i] = make(chan func(int))
		go p.worker(i)
	}
	return p
}

func (p *Pool) worker(i int) {
	for fn := range p.work[i] {
		p.dispatch(i, fn)
		p.wg.Done()
	}
}

// dispatch runs fn(i) through the wrap hook when one is installed,
// containing any panic: the recovered value, the worker's stack and its
// announced chunk become a *robust.WorkerPanicError in panics[i].
func (p *Pool) dispatch(i int, fn func(int)) {
	defer func() {
		if r := recover(); r != nil {
			p.panics[i] = &robust.WorkerPanicError{
				Worker: i,
				Chunk:  int(p.notes[i].chunk),
				Value:  r,
				Stack:  debug.Stack(),
			}
		}
	}()
	if w := p.wrap; w != nil {
		w(i, fn)
		return
	}
	fn(i)
}

// NoteChunk announces the counting chunk worker i is about to process, so a
// panic inside it is attributed to the chunk. Chunk -1 clears the note. The
// slot is owner-written between barriers; the coordinating goroutine resets
// it at Run entry.
func (p *Pool) NoteChunk(worker, chunk int) {
	p.notes[worker].chunk = int64(chunk)
}

// Procs returns the number of workers.
func (p *Pool) Procs() int { return p.procs }

// SetWrap installs a hook invoked around every closure Run dispatches:
// wrap(worker, fn) must call fn(worker) exactly once. Call only while the
// pool is idle (no Run in flight) — workers observe the new hook on their
// next dispatch via the Run channel's happens-before edge. A nil wrap
// removes the hook.
func (p *Pool) SetWrap(wrap func(worker int, fn func(int))) {
	p.wrap = wrap
}

// Run executes fn(p) on every worker p in [0, Procs) and waits for all of
// them. fn must not call Run on the same pool (the workers are busy). A
// single-worker pool runs fn inline — phase semantics are identical and the
// sequential baseline pays no channel hop.
//
// A panic in any worker is contained and returned as a
// *robust.WorkerPanicError (the lowest-indexed panicking worker wins, so the
// returned error is deterministic when several workers fail); the remaining
// workers complete their closures normally and the pool stays usable.
func (p *Pool) Run(fn func(p int)) error {
	for i := 0; i < p.procs; i++ {
		p.panics[i] = nil
		p.notes[i].chunk = -1
	}
	if p.procs == 1 {
		p.dispatch(0, fn)
		return p.firstPanic()
	}
	p.wg.Add(p.procs)
	for i := 0; i < p.procs; i++ {
		p.work[i] <- fn
	}
	p.wg.Wait()
	return p.firstPanic()
}

// RunCtx is Run with a cancellation gate: a context that is already done
// skips the dispatch entirely and returns its error; otherwise the phase
// runs to its barrier (closures observe cancellation cooperatively at chunk
// boundaries) and any contained panic is reported as usual.
func (p *Pool) RunCtx(ctx context.Context, fn func(p int)) error {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return p.Run(fn)
}

// firstPanic returns the contained panic of the lowest-indexed worker.
func (p *Pool) firstPanic() error {
	for i := 0; i < p.procs; i++ {
		if err := p.panics[i]; err != nil {
			return err
		}
	}
	return nil
}

// Close shuts the workers down. The pool must be idle (no Run in flight).
func (p *Pool) Close() {
	for _, c := range p.work {
		close(c)
	}
}
