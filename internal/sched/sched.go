// Package sched provides the dynamic scheduling substrate for the parallel
// mining phases: a persistent worker pool that replaces per-phase goroutine
// spawning, chunked work distribution through an atomic claim cursor, and
// per-worker deques with LIFO self-pop / FIFO steal for skewed workloads.
// The paper's static block/workload partitions (Section 3.2.2) leave
// processors idle whenever the transaction cost estimate is wrong; dynamic
// chunk claiming bounds that idle time by one chunk's work.
//
// The package also carries the deterministic greedy list-schedule model
// (GreedySchedule) that stands in for the racy runtime chunk assignment when
// the experiment harness needs reproducible per-processor work figures —
// which is why the package is pinned: no wall clock, no randomness.
//
//armlint:pinned
package sched

import "sync"

// Pool is a fixed set of persistent worker goroutines, created once per
// mining run and reused by every phase of every iteration. Run dispatches
// one closure per worker and blocks until all workers finish, so a Pool
// behaves like a barrier-synchronized processor set without paying goroutine
// spawn and teardown on each phase.
type Pool struct {
	procs int
	work  []chan func(int)
	wg    sync.WaitGroup
	// wrap, when set, brackets every dispatched closure — the hook the
	// observability layer uses to record per-worker phase spans and apply
	// runtime/pprof phase labels without sched importing either.
	wrap func(worker int, fn func(int))
}

// NewPool starts procs persistent workers (minimum 1). Callers must Close
// the pool when the run completes.
func NewPool(procs int) *Pool {
	if procs < 1 {
		procs = 1
	}
	p := &Pool{procs: procs, work: make([]chan func(int), procs)}
	for i := range p.work {
		p.work[i] = make(chan func(int))
		go p.worker(i)
	}
	return p
}

func (p *Pool) worker(i int) {
	for fn := range p.work[i] {
		p.dispatch(i, fn)
		p.wg.Done()
	}
}

// dispatch runs fn(i) through the wrap hook when one is installed.
func (p *Pool) dispatch(i int, fn func(int)) {
	if w := p.wrap; w != nil {
		w(i, fn)
		return
	}
	fn(i)
}

// Procs returns the number of workers.
func (p *Pool) Procs() int { return p.procs }

// SetWrap installs a hook invoked around every closure Run dispatches:
// wrap(worker, fn) must call fn(worker) exactly once. Call only while the
// pool is idle (no Run in flight) — workers observe the new hook on their
// next dispatch via the Run channel's happens-before edge. A nil wrap
// removes the hook.
func (p *Pool) SetWrap(wrap func(worker int, fn func(int))) {
	p.wrap = wrap
}

// Run executes fn(p) on every worker p in [0, Procs) and waits for all of
// them. fn must not call Run on the same pool (the workers are busy). A
// single-worker pool runs fn inline — phase semantics are identical and the
// sequential baseline pays no channel hop.
func (p *Pool) Run(fn func(p int)) {
	if p.procs == 1 {
		p.dispatch(0, fn)
		return
	}
	p.wg.Add(p.procs)
	for i := 0; i < p.procs; i++ {
		p.work[i] <- fn
	}
	p.wg.Wait()
}

// Close shuts the workers down. The pool must be idle (no Run in flight).
func (p *Pool) Close() {
	for _, c := range p.work {
		close(c)
	}
}
