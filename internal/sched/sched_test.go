package sched

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestPoolRunsEveryWorker(t *testing.T) {
	for _, procs := range []int{1, 2, 4, 7} {
		pool := NewPool(procs)
		if pool.Procs() != procs {
			t.Fatalf("Procs = %d, want %d", pool.Procs(), procs)
		}
		seen := make([]int32, procs)
		// Reuse across many phases — the whole point of persistence.
		for round := 0; round < 25; round++ {
			pool.Run(func(p int) {
				atomic.AddInt32(&seen[p], 1)
			})
		}
		pool.Close()
		for p, c := range seen {
			if c != 25 {
				t.Errorf("procs=%d: worker %d ran %d times, want 25", procs, p, c)
			}
		}
	}
}

func TestPoolRunIsABarrier(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()
	var done int32
	pool.Run(func(p int) {
		atomic.AddInt32(&done, 1)
	})
	if done != 4 {
		t.Fatalf("Run returned before all workers finished: %d/4", done)
	}
}

func TestPoolMinimumOneWorker(t *testing.T) {
	pool := NewPool(0)
	defer pool.Close()
	ran := false
	pool.Run(func(p int) { ran = p == 0 })
	if !ran {
		t.Error("zero-proc pool should clamp to one worker")
	}
}

func TestChunkMath(t *testing.T) {
	if NumChunks(0, 10) != 0 || NumChunks(10, 0) != 0 {
		t.Error("degenerate chunk counts should be 0")
	}
	if got := NumChunks(1000, 256); got != 4 {
		t.Errorf("NumChunks(1000,256) = %d", got)
	}
	// Chunks tile [0, n) exactly.
	n, size := 1000, 256
	pos := 0
	for c := 0; c < NumChunks(n, size); c++ {
		lo, hi := ChunkRange(n, size, c)
		if lo != pos || hi <= lo || hi > n {
			t.Fatalf("chunk %d = [%d,%d), expected lo=%d", c, lo, hi, pos)
		}
		pos = hi
	}
	if pos != n {
		t.Errorf("chunks cover %d of %d", pos, n)
	}
}

func TestCursorClaimsEachChunkOnce(t *testing.T) {
	const n = 1000
	cur := NewCursor(n)
	var mu sync.Mutex
	got := make(map[int]int)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				c, ok := cur.Next()
				if !ok {
					return
				}
				mu.Lock()
				got[c]++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(got) != n {
		t.Fatalf("claimed %d distinct chunks, want %d", len(got), n)
	}
	for c, k := range got {
		if k != 1 {
			t.Errorf("chunk %d claimed %d times", c, k)
		}
	}
}

func TestDequeEnds(t *testing.T) {
	var d Deque
	for i := int32(0); i < 4; i++ {
		d.Push(i)
	}
	if v, ok := d.PopTail(); !ok || v != 3 {
		t.Errorf("PopTail = %d,%v want 3 (LIFO)", v, ok)
	}
	if v, ok := d.PopHead(); !ok || v != 0 {
		t.Errorf("PopHead = %d,%v want 0 (FIFO)", v, ok)
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d", d.Len())
	}
	d.PopTail()
	d.PopTail()
	if _, ok := d.PopTail(); ok {
		t.Error("PopTail on empty deque")
	}
	if _, ok := d.PopHead(); ok {
		t.Error("PopHead on empty deque")
	}
}

// TestDequeBackingArrayStable pins the PopHead capacity fix: draining a
// deque from the head (the thief side) and reseeding it must reuse the same
// backing array instead of growing a fresh one per cycle. The former
// items = items[1:] re-slice stranded the consumed prefix, so every
// Seed/drain cycle over a reused deque allocated anew.
func TestDequeBackingArrayStable(t *testing.T) {
	const chunks = 64
	var d Deque
	for i := 0; i < chunks; i++ {
		d.Push(int32(i))
	}
	base := &d.items[0]
	baseCap := cap(d.items)
	for cycle := 0; cycle < 10; cycle++ {
		// Drain entirely from the head, as a persistent thief would.
		for i := 0; i < chunks; i++ {
			if v, ok := d.PopHead(); !ok || v != int32(i) {
				t.Fatalf("cycle %d: PopHead = %d,%v want %d", cycle, v, ok, i)
			}
		}
		if _, ok := d.PopHead(); ok {
			t.Fatalf("cycle %d: deque not empty after drain", cycle)
		}
		if d.head != 0 || len(d.items) != 0 {
			t.Fatalf("cycle %d: drain did not reset ends (head=%d len=%d)", cycle, d.head, len(d.items))
		}
		for i := 0; i < chunks; i++ {
			d.Push(int32(i))
		}
		if cap(d.items) != baseCap || &d.items[0] != base {
			t.Fatalf("cycle %d: backing array changed (cap %d → %d) — capacity leak", cycle, baseCap, cap(d.items))
		}
	}
	// Mixed-end drain must also converge back to the same array.
	for d.Len() > 0 {
		d.PopHead()
		if d.Len() > 0 {
			d.PopTail()
		}
	}
	for i := 0; i < chunks; i++ {
		d.Push(int32(i))
	}
	if &d.items[0] != base {
		t.Error("mixed-end drain leaked the backing array")
	}
}

func TestStealingClaimsEachChunkOnce(t *testing.T) {
	const procs, chunks = 4, 500
	st := NewStealing(procs)
	st.SeedBlocks(chunks)
	var mu sync.Mutex
	got := make(map[int32]int)
	var steals int64
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for {
				c, victim, ok := st.Next(p)
				if !ok {
					return
				}
				mu.Lock()
				got[c]++
				if victim != p {
					steals++
				}
				mu.Unlock()
			}
		}(p)
	}
	wg.Wait()
	if len(got) != chunks {
		t.Fatalf("claimed %d distinct chunks, want %d", len(got), chunks)
	}
	for c, k := range got {
		if k != 1 {
			t.Errorf("chunk %d claimed %d times", c, k)
		}
	}
}

func TestStealingOrder(t *testing.T) {
	// Single-threaded semantics: owner LIFO, theft FIFO from the next victim.
	st := NewStealing(2)
	st.Seed(0, 0, 3) // worker 0 holds 0,1,2
	if c, victim, ok := st.Next(0); !ok || victim != 0 || c != 2 {
		t.Errorf("owner pop = %d victim=%d", c, victim)
	}
	if c, victim, ok := st.Next(1); !ok || victim != 0 || c != 0 {
		t.Errorf("steal = %d victim=%d, want FIFO chunk 0 from victim 0", c, victim)
	}
	if c, victim, ok := st.Next(1); !ok || victim != 0 || c != 1 {
		t.Errorf("second steal = %d victim=%d", c, victim)
	}
	if _, _, ok := st.Next(0); ok {
		t.Error("expected exhaustion")
	}
}

func TestGreedySchedule(t *testing.T) {
	// One giant chunk plus small ones: greedy puts the giant alone.
	load := GreedySchedule([]int64{100, 1, 1, 1, 1, 1, 1}, 3)
	var total, max int64
	for _, l := range load {
		total += l
		if l > max {
			max = l
		}
	}
	if total != 106 {
		t.Errorf("total = %d", total)
	}
	if max != 100 {
		t.Errorf("max = %d, giant chunk should sit alone", max)
	}
	// Deterministic.
	again := GreedySchedule([]int64{100, 1, 1, 1, 1, 1, 1}, 3)
	for p := range load {
		if load[p] != again[p] {
			t.Errorf("nondeterministic greedy schedule at %d", p)
		}
	}
	// Degenerate procs clamps.
	if got := GreedySchedule([]int64{5}, 0); len(got) != 1 || got[0] != 5 {
		t.Errorf("procs=0: %v", got)
	}
}
