package vbit

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/apriori"
	"repro/internal/db"
	"repro/internal/db/seg"
	"repro/internal/itemset"
	"repro/internal/obs"
	"repro/internal/robust"
	"repro/internal/sched"
)

// SegmentedOptions configures an out-of-core vertical run.
type SegmentedOptions struct {
	Options
	// MemBudget caps the bytes of decoded segments resident at once (the
	// seg.Pipeline budget); 0 double-buffers.
	MemBudget int64
	// LoadDelay adds synthetic latency per segment load (benchmark knob).
	LoadDelay time.Duration
}

// SegmentedStats summarizes an out-of-core vertical run. The in-RAM engine's
// per-class DFS work model does not transfer (the segmented engine is
// level-wise), so this carries per-level figures and the pipeline accounting
// instead of bending Stats.
type SegmentedStats struct {
	Procs      int
	Levels     int   // deepest k mined
	Candidates []int // candidates counted per k (index k, 0/1 unused)
	Frequent   []int // frequent sets per k
	Pipeline   seg.PipelineStats
	Total      time.Duration
}

// MineSegmented mines a segmented store with the vertical engine without
// materializing the whole database. The dEclat DFS needs every item's full
// tid column at once, which is exactly what out-of-core forbids, so the
// segmented path runs level-wise instead — the paper's Partition-style
// scheme: per level, candidates are generated once, then each segment is
// materialized as a small vertical layout (bitmaps/tidlists over the
// segment's transactions) and the candidates' supports accumulate across
// segments via the same word-parallel popcount kernels. Frequent sets and
// supports are identical to the in-RAM engine; only the traversal order (and
// with it the work model) differs.
func MineSegmented(r *seg.Reader, opts SegmentedOptions) (*apriori.Result, *SegmentedStats, error) {
	return MineSegmentedCtx(context.Background(), r, opts)
}

// MineSegmentedCtx is MineSegmented under a context; cancellation returns
// the partial result (completed levels) with a *robust.CanceledError.
//
//armlint:cancellable
func MineSegmentedCtx(ctx context.Context, r *seg.Reader, opts SegmentedOptions) (*apriori.Result, *SegmentedStats, error) {
	o := opts.Options.withDefaults()
	start := time.Now() //armlint:allow determinism wall-clock phase total feeds SegmentedStats only, never the work model
	n := r.NumTx()
	minCount := apriori.Options{MinSupport: o.MinSupport, AbsSupport: o.AbsSupport}.MinCount(int(n)) //armlint:narrowok int is 64-bit on every supported target, so the int64 transaction count converts losslessly
	rec := o.Obs
	res := &apriori.Result{MinCount: minCount, ByK: make([][]apriori.FrequentItemset, 2)}
	stats := &SegmentedStats{Procs: o.Procs, Candidates: []int{0, r.NumItems()}, Frequent: []int{0, 0}}

	if err := robust.Canceled(ctx, "f1", 1); err != nil {
		return nil, nil, err
	}
	pool := sched.NewPool(o.Procs)
	if rec.Enabled() {
		pool.SetWrap(rec.PoolWrap)
	}
	defer func() {
		if rec.Enabled() {
			pool.SetWrap(nil)
		}
		pool.Close()
	}()
	pipe := r.NewPipeline(seg.PipelineOptions{Budget: opts.MemBudget, LoadDelay: opts.LoadDelay, Obs: rec})
	finish := func(err error) (*apriori.Result, *SegmentedStats, error) {
		stats.Pipeline = pipe.Stats()
		stats.Total = time.Since(start) //armlint:allow determinism wall-clock phase total feeds SegmentedStats only, never the work model
		return res, stats, err
	}

	// Level 1: stream segments, block-partitioned private item counts.
	rec.SetPhase(obs.PhaseF1, 1)
	rec.BeginPhase(obs.PhaseF1, 1)
	sups, err := segCountItems(ctx, r, pipe, pool, o.ChunkStride)
	rec.EndPhase(obs.PhaseF1, 1)
	if err != nil {
		return nil, nil, annotate(err, "f1", 1)
	}
	if err := robust.Canceled(ctx, "f1", 1); err != nil {
		return nil, nil, err
	}
	for it, c := range sups {
		if c >= minCount {
			res.ByK[1] = append(res.ByK[1], apriori.FrequentItemset{Items: itemset.New(itemset.Item(it)), Count: c})
		}
	}
	stats.Levels = 1
	stats.Frequent[1] = len(res.ByK[1])
	rec.IterStats(1, r.NumItems(), len(res.ByK[1]))

	prev := make([]itemset.Itemset, len(res.ByK[1]))
	for i, f := range res.ByK[1] {
		prev[i] = f.Items
	}

	// Levels k >= 2: generate candidates, then one streaming pass per level.
	// Each worker owns a disjoint candidate range; per segment it adds the
	// segment-local supports (CountOne against the segment's layout) into
	// the shared totals — disjoint indexes, and segments are separated by
	// the pool barrier, so the accumulation is race-free.
	scratches := make([]*Scratch, o.Procs)
	for k := 2; len(prev) > 1 && (o.MaxK == 0 || k <= o.MaxK); k++ {
		if err := robust.Canceled(ctx, "gen", k); err != nil {
			return finish(err)
		}
		cands, _, _ := apriori.GenerateCandidates(prev, false)
		if len(cands) == 0 {
			break
		}
		sup := make([]int64, len(cands))
		rec.SetPhase(obs.PhaseCount, k)
		rec.BeginPhase(obs.PhaseCount, k)
		perr := pipe.ForEach(ctx, func(si int, sd *db.Database) error {
			// One small vertical layout per segment; minCount 1, because an
			// item rare in this segment can still be globally frequent.
			lay := Materialize(sd, o.DensityCutoff, 1)
			return pool.Run(func(p int) {
				scr := segScratch(&scratches[p], lay)
				lo := p * len(cands) / o.Procs
				hi := (p + 1) * len(cands) / o.Procs
				ow := rec.Worker(p)
				for i := lo; i < hi; i++ {
					if (i-lo)%1024 == 0 && ctx.Err() != nil {
						break
					}
					s := lay.CountOne(scr, cands[i])
					sup[i] += s
					if ow != nil {
						ow.AddWork(int64(lay.Words))
					}
				}
			})
		})
		rec.EndPhase(obs.PhaseCount, k)
		if perr != nil && !errors.Is(perr, context.Canceled) {
			return nil, nil, annotate(fmt.Errorf("vbit: out-of-core level %d: %w", k, perr), "count", k)
		}
		if err := robust.Canceled(ctx, "count", k); err != nil {
			return finish(err)
		}
		var fk []apriori.FrequentItemset
		for i, c := range cands {
			if sup[i] >= minCount {
				fk = append(fk, apriori.FrequentItemset{Items: c, Count: sup[i]})
			}
		}
		stats.Candidates = append(stats.Candidates, len(cands))
		stats.Frequent = append(stats.Frequent, len(fk))
		rec.IterStats(k, len(cands), len(fk))
		if len(fk) == 0 {
			break
		}
		stats.Levels = k
		res.ByK = append(res.ByK, fk)
		prev = prev[:0]
		for _, f := range fk {
			prev = append(prev, f.Items)
		}
	}
	return finish(nil)
}

// segScratch returns a Scratch view sized exactly for lay, growing the
// worker's backing scratch when a larger segment comes along. The kernels
// iterate whole slices, so a reused scratch must not be longer than the
// current layout's columns — hence the re-slice instead of reuse-as-is.
func segScratch(backing **Scratch, lay *Layout) *Scratch {
	need := lay.listMax
	if lay.Words > need {
		need = lay.Words
	}
	if lay.NumTx < need {
		need = lay.NumTx
	}
	b := *backing
	if b == nil || len(b.Words) < lay.Words || len(b.A) < need {
		b = lay.NewScratch()
		*backing = b
		return b
	}
	return &Scratch{Words: b.Words[:lay.Words], A: b.A[:need], B: b.B[:need]}
}

// segCountItems streams the level-1 item counts: per segment, workers count
// block sub-ranges into private arrays; the reduction runs once at the end.
func segCountItems(ctx context.Context, r *seg.Reader, pipe *seg.Pipeline, pool *sched.Pool, stride int) ([]int64, error) {
	procs := pool.Procs()
	numItems := r.NumItems()
	local := make([][]int64, procs)
	for p := range local {
		local[p] = make([]int64, numItems)
	}
	err := pipe.ForEach(ctx, func(si int, sd *db.Database) error {
		return pool.Run(func(p int) {
			counts := local[p]
			n := sd.Len()
			lo, hi := p*n/procs, (p+1)*n/procs
			for i := lo; i < hi; i++ {
				if (i-lo)%stride == 0 && ctx.Err() != nil {
					break
				}
				for _, it := range sd.Items(i) {
					counts[it]++
				}
			}
		})
	})
	if err != nil && !errors.Is(err, context.Canceled) {
		return nil, err
	}
	out := make([]int64, numItems)
	for p := 0; p < procs; p++ {
		for it, c := range local[p] {
			out[it] += c
		}
	}
	return out, nil
}
