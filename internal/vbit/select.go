package vbit

import (
	"fmt"

	"repro/internal/db"
)

// Engine identifies which counting engine the auto-selector picked.
type Engine int

const (
	// EngineCCPD is the horizontal hash-tree engine (paper Section 3).
	EngineCCPD Engine = iota
	// EngineVBit is the vertical word-parallel dEclat engine.
	EngineVBit
)

func (e Engine) String() string {
	switch e {
	case EngineCCPD:
		return "ccpd"
	case EngineVBit:
		return "vbit"
	}
	return fmt.Sprintf("engine(%d)", int(e))
}

// DBStats are the database statistics the auto-selector decides on — the
// same shape internal/gen parameterizes its synthetic workloads with:
// transaction count D, item universe N, mean transaction length T, and the
// density T/N (the probability a random item appears in a random row).
type DBStats struct {
	Transactions int
	NumItems     int
	AvgLen       float64
	Density      float64
}

// Characterize computes the selector's statistics in O(1) from the
// database's stored aggregates (no scan).
func Characterize(d *db.Database) DBStats {
	s := DBStats{
		Transactions: d.Len(),
		NumItems:     d.NumItems(),
		AvgLen:       d.AvgLen(),
	}
	if s.NumItems > 0 {
		s.Density = s.AvgLen / float64(s.NumItems)
	}
	return s
}

// DefaultCrossoverDensity is the density at which the vertical engine
// starts beating the horizontal hash-tree engine, and the -algo auto
// default. It comes from the two cost models: a vertical pair probe costs
// about D/64 word ops when columns are bitmaps, or ~2·density·D tid ops as
// tidlists, while the hash tree pays per transaction-row regardless of the
// probed pair's density — its per-pair share only amortizes when rows are
// long. Below about one occurrence per 128 universe items the vertical
// columns are so sparse that even the tidlist path degenerates to pointer
// chasing over near-empty lists while the hash tree still streams the
// whole database once per iteration, and the hash tree wins; above it the
// vertical engine's popcount kernels win and keep winning (the dense
// BENCH_counting rows). The density-sweep experiment (cmd/experiments
// -sweep density) reproduces this crossover from the deterministic work
// models; adjust the constant if the sweep moves.
const DefaultCrossoverDensity = 1.0 / 128

// AutoSelect picks the engine for a database: vertical when the density
// clears the crossover, hash-tree CCPD otherwise. Degenerate databases
// (no rows, no items) go to CCPD, whose scan trivially no-ops.
func AutoSelect(s DBStats) Engine {
	if s.Transactions == 0 || s.NumItems == 0 {
		return EngineCCPD
	}
	if s.Density >= DefaultCrossoverDensity {
		return EngineVBit
	}
	return EngineCCPD
}
