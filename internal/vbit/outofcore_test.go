package vbit

import (
	"bytes"
	"context"
	"errors"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/apriori"
	"repro/internal/db"
	"repro/internal/db/seg"
	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/robust"
)

func segStore(t *testing.T, d *db.Database, wopts seg.WriterOptions) *seg.Reader {
	t.Helper()
	path := filepath.Join(t.TempDir(), "store.arseg")
	if err := seg.WriteDatabase(path, d, wopts); err != nil {
		t.Fatalf("WriteDatabase: %v", err)
	}
	r, err := seg.Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

// TestSegmentedMatchesInRAM: the level-wise out-of-core vertical miner must
// reproduce both sequential Apriori and the in-RAM dEclat engine exactly —
// same frequent sets, same supports, same MinCount — across the layout
// spectrum and for sync (budget 1) and double-buffered (budget 0) pipelines.
func TestSegmentedMatchesInRAM(t *testing.T) {
	d, err := gen.Generate(gen.Params{N: 60, L: 15, I: 3, T: 6, D: 700, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	r := segStore(t, d, seg.WriterOptions{SegTx: 150})
	if r.NumSegments() < 4 {
		t.Fatalf("want >= 4 segments, got %d", r.NumSegments())
	}
	want, err := apriori.Mine(d, apriori.Options{MinSupport: 0.01, ShortCircuit: true})
	if err != nil {
		t.Fatal(err)
	}
	vres, _, err := Mine(d, Options{MinSupport: 0.01, Procs: 3})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "in-RAM-vbit", vres, want)
	cutoffs := map[string]float64{"mixed-layout": 0, "all-bitmap": 1e-9, "all-tidlist": 1.5}
	for cn, cutoff := range cutoffs {
		for _, budget := range []int64{1, 0} {
			res, stats, err := MineSegmented(r, SegmentedOptions{
				Options:   Options{MinSupport: 0.01, Procs: 3, DensityCutoff: cutoff},
				MemBudget: budget,
			})
			if err != nil {
				t.Fatalf("%s budget %d: %v", cn, budget, err)
			}
			sameResult(t, cn, res, want)
			if res.MinCount != want.MinCount {
				t.Errorf("%s: MinCount %d != %d", cn, res.MinCount, want.MinCount)
			}
			if stats.Pipeline.Segments == 0 || stats.Levels < 2 {
				t.Errorf("%s budget %d: implausible stats %+v", cn, budget, stats)
			}
			if budget == 0 && !stats.Pipeline.Overlapped {
				t.Errorf("%s: default budget should double-buffer", cn)
			}
			// One streaming pass per mined level plus the candidate-free tail.
			if stats.Pipeline.Passes < stats.Levels {
				t.Errorf("%s: %d passes for %d levels", cn, stats.Pipeline.Passes, stats.Levels)
			}
		}
	}
}

// TestSegmentedBeyondArenaLimit mines a store whose item arena exceeds the
// (test-lowered) single-arena ceiling — impossible to load in RAM — and must
// match the reference mined before the limit dropped.
func TestSegmentedBeyondArenaLimit(t *testing.T) {
	d, err := gen.Generate(gen.Params{T: 10, I: 4, D: 2000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	want, err := apriori.Mine(d, apriori.Options{AbsSupport: 10, ShortCircuit: true})
	if err != nil {
		t.Fatal(err)
	}
	restore := db.SetArenaLimitForTesting(2048)
	defer restore()
	if d.TotalItems() <= db.ArenaLimit() {
		t.Fatalf("test premise broken: %d occurrences fit the limit", d.TotalItems())
	}
	r := segStore(t, d, seg.WriterOptions{})
	if r.NumSegments() < 5 {
		t.Fatalf("want many segments, got %d", r.NumSegments())
	}
	res, stats, err := MineSegmented(r, SegmentedOptions{
		Options: Options{AbsSupport: 10, Procs: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "beyond-arena", res, want)
	if stats.Pipeline.Segments < stats.Levels*r.NumSegments() {
		t.Errorf("pipeline saw %d segment visits for %d levels x %d segments",
			stats.Pipeline.Segments, stats.Levels, r.NumSegments())
	}
}

func TestSegmentedMaxK(t *testing.T) {
	d, err := gen.Generate(gen.Params{N: 40, L: 10, I: 3, T: 6, D: 300, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	r := segStore(t, d, seg.WriterOptions{SegTx: 100})
	full, _, err := MineSegmented(r, SegmentedOptions{Options: Options{MinSupport: 0.02, Procs: 2}})
	if err != nil {
		t.Fatal(err)
	}
	for maxK := 1; maxK <= 3; maxK++ {
		res, _, err := MineSegmented(r, SegmentedOptions{Options: Options{MinSupport: 0.02, Procs: 2, MaxK: maxK}})
		if err != nil {
			t.Fatal(err)
		}
		if got := len(res.ByK) - 1; got > maxK {
			t.Errorf("MaxK=%d: results reach k=%d", maxK, got)
		}
		for k := 1; k <= maxK && k < len(full.ByK); k++ {
			if len(res.ByK[k]) != len(full.ByK[k]) {
				t.Errorf("MaxK=%d: k=%d has %d sets, want %d", maxK, k, len(res.ByK[k]), len(full.ByK[k]))
			}
		}
	}
}

func TestSegmentedCancellation(t *testing.T) {
	d, err := gen.Generate(gen.Params{N: 60, L: 15, I: 3, T: 6, D: 600, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	r := segStore(t, d, seg.WriterOptions{SegTx: 100})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err = MineSegmentedCtx(ctx, r, SegmentedOptions{Options: Options{MinSupport: 0.01, Procs: 2}})
	var ce *robust.CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("pre-canceled: err = %v, want *robust.CanceledError", err)
	}

	ctx2, cancel2 := context.WithCancel(context.Background())
	go func() {
		time.Sleep(3 * time.Millisecond)
		cancel2()
	}()
	res, _, err := MineSegmentedCtx(ctx2, r, SegmentedOptions{
		Options:   Options{MinSupport: 0.005, Procs: 2},
		LoadDelay: time.Millisecond,
	})
	if err != nil && !errors.As(err, &ce) {
		t.Fatalf("mid-run cancel: err = %v, want nil or CanceledError", err)
	}
	// A cancel during f1 legitimately yields no result; past it, completed
	// levels survive in the partial result.
	if err != nil && res != nil && len(res.ByK) > 1 && len(res.ByK[1]) == 0 {
		t.Error("partial result present but empty at k=1")
	}
	// The reader must be reusable after an aborted pass.
	if _, _, err := MineSegmented(r, SegmentedOptions{Options: Options{MinSupport: 0.01, Procs: 2}}); err != nil {
		t.Fatalf("rerun after cancel: %v", err)
	}
}

func TestSegmentedObsSpans(t *testing.T) {
	d, err := gen.Generate(gen.Params{N: 40, L: 10, I: 3, T: 6, D: 400, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	r := segStore(t, d, seg.WriterOptions{SegTx: 100})
	rec := obs.NewRecorder(2)
	if _, _, err := MineSegmented(r, SegmentedOptions{
		Options: Options{MinSupport: 0.02, Procs: 2, Obs: rec},
	}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rec.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"seg_load", "seg_count"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("trace missing %q events", want)
		}
	}
}
