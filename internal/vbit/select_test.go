package vbit

import (
	"math/rand"
	"testing"

	"repro/internal/db"
	"repro/internal/itemset"
)

func TestCharacterize(t *testing.T) {
	d := db.New(100)
	for i := 0; i < 50; i++ {
		d.Append(int64(i), itemset.New(0, 1, 2, 3, 4))
	}
	s := Characterize(d)
	if s.Transactions != 50 || s.NumItems != 100 {
		t.Errorf("D/N = %d/%d, want 50/100", s.Transactions, s.NumItems)
	}
	if s.AvgLen != 5 {
		t.Errorf("AvgLen = %v, want 5", s.AvgLen)
	}
	if s.Density != 0.05 {
		t.Errorf("Density = %v, want 0.05", s.Density)
	}
}

func TestAutoSelect(t *testing.T) {
	cases := []struct {
		name string
		s    DBStats
		want Engine
	}{
		{"dense", DBStats{Transactions: 1000, NumItems: 20, AvgLen: 10, Density: 0.5}, EngineVBit},
		{"at-crossover", DBStats{Transactions: 1000, NumItems: 128, AvgLen: 1, Density: DefaultCrossoverDensity}, EngineVBit},
		{"below-crossover", DBStats{Transactions: 1000, NumItems: 2000, AvgLen: 10, Density: 0.005}, EngineCCPD},
		{"empty-db", DBStats{}, EngineCCPD},
	}
	for _, c := range cases {
		if got := AutoSelect(c.s); got != c.want {
			t.Errorf("%s: AutoSelect = %v, want %v", c.name, got, c.want)
		}
	}
	if EngineCCPD.String() != "ccpd" || EngineVBit.String() != "vbit" {
		t.Errorf("Engine.String mismatch: %v %v", EngineCCPD, EngineVBit)
	}
}

// TestAutoSelectEndToEnd sanity-checks the selector against the densities
// the sweep experiment covers: a T≈N/2 basket database selects vbit, a
// huge-universe retail-style database selects ccpd.
func TestAutoSelectEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	dense := randomDB(rng, 20, 300, 0.4)
	if got := AutoSelect(Characterize(dense)); got != EngineVBit {
		t.Errorf("dense db selected %v, want vbit", got)
	}
	sparse := db.New(4000)
	for i := 0; i < 300; i++ {
		seen := map[itemset.Item]bool{}
		var raw []itemset.Item
		for len(raw) < 6 {
			it := itemset.Item(rng.Intn(4000))
			if !seen[it] {
				seen[it] = true
				raw = append(raw, it)
			}
		}
		sparse.Append(int64(i), itemset.New(raw...))
	}
	if got := AutoSelect(Characterize(sparse)); got != EngineCCPD {
		t.Errorf("sparse db selected %v, want ccpd", got)
	}
}
