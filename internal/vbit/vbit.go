package vbit

import (
	"context"
	"errors"
	"runtime"
	"time"

	"repro/internal/apriori"
	"repro/internal/db"
	"repro/internal/itemset"
	"repro/internal/obs"
	"repro/internal/robust"
	"repro/internal/sched"
)

// Options configures a vertical mining run.
type Options struct {
	// MinSupport is the minimum support fraction (used when AbsSupport is 0).
	MinSupport float64
	// AbsSupport is the absolute minimum count; overrides MinSupport.
	AbsSupport int64
	// MaxK limits itemset size (0 = unlimited).
	MaxK int
	// Procs is the worker count (default: GOMAXPROCS).
	Procs int
	// DensityCutoff is the item density below which a column is stored as a
	// tidlist instead of a bitmap (<= 0: DefaultDensityCutoff). Values > 1
	// force the all-tidlist layout; tiny positive values force all-bitmap.
	DensityCutoff float64
	// ChunkStride is how many transactions the F1 scan counts between
	// cancellation polls (default 256, as in CCPD's static modes).
	ChunkStride int
	// Obs receives phase spans, per-class chunk events and iteration stats;
	// nil disables observability.
	Obs *obs.Recorder
}

func (o Options) withDefaults() Options {
	if o.Procs <= 0 {
		o.Procs = runtime.GOMAXPROCS(0)
	}
	if o.ChunkStride <= 0 {
		o.ChunkStride = 256
	}
	if o.DensityCutoff <= 0 {
		o.DensityCutoff = DefaultDensityCutoff
	}
	return o
}

// Stats carries the deterministic work model of one vertical run, mirroring
// ccpd.Stats: per-processor totals are modelled (GreedySchedule over the
// per-class work) because runtime class assignment is racy, while the work
// units themselves are exact deterministic functions of the database and
// options — pinned by TestVBitModelPinned.
type Stats struct {
	Procs       int
	Classes     int // first-level equivalence classes (frequent items)
	DenseItems  int // columns stored as bitmaps
	SparseItems int // columns stored as tidlists

	// F1Work is the per-processor item-scan work of the counting pass
	// (block partition, like CCPD's iteration 1).
	F1Work []int64
	// BuildWork is the serial fill pass materializing the vertical columns.
	BuildWork int64
	// ClassWork[c] is the DFS work of first-level class c: every kernel
	// word/tid touched while diffing that class's subtree. Written once by
	// the class's claimant, deterministic per class.
	ClassWork []int64
	// CountWork is the greedy list-schedule of ClassWork over Procs — the
	// deterministic stand-in for the racy dynamic class assignment.
	CountWork []int64
	// ReduceWork is the k-way merge work (total itemsets merged, k >= 2).
	ReduceWork int64

	Total time.Duration // wall clock, whole run
	Count time.Duration // wall clock, class-DFS phase
}

// TotalWork sums every modelled work unit across processors.
func (s *Stats) TotalWork() int64 {
	var w int64 = s.BuildWork + s.ReduceWork
	for _, v := range s.F1Work {
		w += v
	}
	for _, v := range s.ClassWork {
		w += v
	}
	return w
}

// ModelTime is the modelled parallel execution time: the critical path of
// the F1 scan and the scheduled class work, plus the serial build and merge.
func (s *Stats) ModelTime() int64 {
	var t int64
	for _, v := range s.F1Work {
		if v > t {
			t = v
		}
	}
	var c int64
	for _, v := range s.CountWork {
		if v > c {
			c = v
		}
	}
	return t + s.BuildWork + c + s.ReduceWork
}

// Mine runs the word-parallel dEclat engine and returns the frequent
// itemsets in the same apriori.Result shape as every other engine, with
// deterministic ordering (ascending itemsets within each k).
func Mine(d *db.Database, opts Options) (*apriori.Result, *Stats, error) {
	return MineCtx(context.Background(), d, opts)
}

// annotate stamps phase/iteration context onto a contained worker panic.
func annotate(err error, phase string, k int) error {
	var wp *robust.WorkerPanicError
	if errors.As(err, &wp) {
		wp.Phase, wp.K = phase, k
	}
	return err
}

// MineCtx runs the engine under a context. Cancellation is cooperative:
// the F1 scan polls every ChunkStride transactions, the DFS phase polls at
// every class claim, and a cancelled run returns the partial result (every
// class completed before the cancellation point, merged in class order)
// together with a *robust.CanceledError naming the interrupted phase.
//
//armlint:cancellable
func MineCtx(ctx context.Context, d *db.Database, opts Options) (*apriori.Result, *Stats, error) {
	opts = opts.withDefaults()
	start := time.Now() //armlint:allow determinism wall-clock phase total feeds Stats only, never the work model
	minCount := apriori.Options{MinSupport: opts.MinSupport, AbsSupport: opts.AbsSupport}.MinCount(d.Len())
	rec := opts.Obs
	res := &apriori.Result{MinCount: minCount, ByK: make([][]apriori.FrequentItemset, 2)}
	stats := &Stats{Procs: opts.Procs}

	if err := robust.Canceled(ctx, "f1", 1); err != nil {
		return nil, nil, err
	}
	pool := sched.NewPool(opts.Procs)
	if rec.Enabled() {
		pool.SetWrap(rec.PoolWrap)
	}
	defer func() {
		if rec.Enabled() {
			pool.SetWrap(nil)
		}
		pool.Close()
	}()

	// Phase 1: parallel item counting (block partition, private arrays).
	rec.SetPhase(obs.PhaseF1, 1)
	rec.BeginPhase(obs.PhaseF1, 1)
	sups, f1work, err := countItems(ctx, d, pool, opts.ChunkStride)
	rec.EndPhase(obs.PhaseF1, 1)
	if err != nil {
		return nil, nil, annotate(err, "f1", 1)
	}
	if err := robust.Canceled(ctx, "f1", 1); err != nil {
		// Interrupted mid-scan: the counts are partial, nothing is usable.
		return nil, nil, err
	}
	stats.F1Work = f1work
	for it, c := range sups {
		if c >= minCount {
			res.ByK[1] = append(res.ByK[1], apriori.FrequentItemset{Items: itemset.New(itemset.Item(it)), Count: c})
		}
	}
	rec.IterStats(1, d.NumItems(), len(res.ByK[1]))
	if opts.MaxK == 1 || len(res.ByK[1]) < 2 {
		stats.Total = time.Since(start) //armlint:allow determinism wall-clock phase total feeds Stats only, never the work model
		return res, stats, nil
	}

	// Phase 2: materialize the vertical layout (serial fill; the counting
	// half of the build already ran in parallel above).
	if err := robust.Canceled(ctx, "build", 2); err != nil {
		return res, stats, err
	}
	rec.SetPhase(obs.PhaseTreeBuild, 2)
	rec.BeginPhase(obs.PhaseTreeBuild, 2)
	lay := FromCounts(d, opts.DensityCutoff, minCount, sups)
	rec.EndPhase(obs.PhaseTreeBuild, 2)
	stats.BuildWork = d.TotalItems() * WorkItemScan
	stats.DenseItems = lay.denseItems
	stats.SparseItems = lay.sparseItems

	heads := make([]head, len(res.ByK[1]))
	for i, f := range res.ByK[1] {
		heads[i] = head{item: f.Items[0], sup: f.Count, s: lay.sets[f.Items[0]]}
	}
	stats.Classes = len(heads)

	// Phase 3: per-equivalence-class dEclat DFS on the shared pool. Classes
	// are claimed dynamically through an atomic cursor; each class's result
	// lists and work total are written once by its claimant.
	rec.SetPhase(obs.PhaseCount, 2)
	rec.BeginPhase(obs.PhaseCount, 2)
	tCount := time.Now() //armlint:allow determinism wall-clock phase total feeds Stats only, never the work model
	classWork := make([]int64, len(heads))
	classDone := make([]bool, len(heads))
	classOut := make([][][]apriori.FrequentItemset, len(heads))
	cur := sched.NewCursor(len(heads))
	err = pool.Run(func(p int) {
		t := newTask(lay, minCount, opts.MaxK, len(heads))
		var ow *obs.Worker
		if rec.Enabled() {
			ow = rec.Worker(p)
		}
		for ctx == nil || ctx.Err() == nil {
			c, ok := cur.Next()
			if !ok {
				return
			}
			pool.NoteChunk(p, c)
			ow.BeginChunk(2, c)
			t.work = 0
			classOut[c] = t.mineClass(heads, c)
			classWork[c] = t.work
			classDone[c] = true
			ow.EndChunk(2, c)
			ow.AddWork(t.work)
		}
	})
	rec.EndPhase(obs.PhaseCount, 2)
	stats.Count = time.Since(tCount) //armlint:allow determinism wall-clock phase total feeds Stats only, never the work model
	if err != nil {
		return nil, nil, annotate(err, "count", 2)
	}
	stats.ClassWork = classWork
	stats.CountWork = sched.GreedySchedule(classWork, opts.Procs)

	// Phase 4: merge per-class per-k lists in class order. Each class emits
	// its k-sets in ascending order and classes own disjoint ascending
	// prefix ranges, so the k-way merge yields the deterministic global
	// ordering every engine shares.
	rec.SetPhase(obs.PhaseReduce, 2)
	rec.BeginPhase(obs.PhaseReduce, 2)
	for k := 2; ; k++ {
		var ranges [][]apriori.FrequentItemset
		for c := range classOut {
			if classDone[c] && k < len(classOut[c]) && len(classOut[c][k]) > 0 {
				ranges = append(ranges, classOut[c][k])
			}
		}
		if len(ranges) == 0 {
			break
		}
		fk := apriori.MergeFrequent(ranges)
		res.ByK = append(res.ByK, fk)
		stats.ReduceWork += int64(len(fk))
		rec.IterStats(k, len(fk), len(fk))
	}
	rec.EndPhase(obs.PhaseReduce, 2)
	stats.Total = time.Since(start) //armlint:allow determinism wall-clock phase total feeds Stats only, never the work model

	if err := robust.Canceled(ctx, "count", 2); err != nil {
		return res, stats, err
	}
	return res, stats, nil
}

// countItems is the parallel F1 scan: block partition, per-processor
// private count arrays, serial reduction. Returns the full per-item counts
// (the layout build reuses them) plus the per-processor scan work.
func countItems(ctx context.Context, d *db.Database, pool *sched.Pool, stride int) ([]int64, []int64, error) {
	procs := pool.Procs()
	local := make([][]int64, procs)
	work := make([]int64, procs)
	slices := d.BlockPartition(procs)
	err := pool.Run(func(p int) {
		counts := make([]int64, d.NumItems())
		var w int64
		s := slices[p]
		for i := s.Lo; i < s.Hi; i++ {
			if (i-s.Lo)%stride == 0 && ctx != nil && ctx.Err() != nil {
				break
			}
			items := d.Items(i)
			w += int64(len(items)) * WorkItemScan
			for _, it := range items {
				counts[it]++
			}
		}
		local[p] = counts
		work[p] = w
	})
	if err != nil {
		return nil, nil, err
	}
	sums := make([]int64, d.NumItems())
	for p := 0; p < procs; p++ {
		for it, c := range local[p] {
			sums[it] += c
		}
	}
	return sums, work, nil
}

// head is one first-level class anchor: a frequent item with its tidset.
type head struct {
	item itemset.Item
	sup  int64
	s    set
}

// node is one class member during the DFS: the extension item, its
// support, and its stored set — a tidset at level 1, a diffset below.
type node struct {
	item itemset.Item
	sup  int64
	s    set
}

// task is one worker's DFS state, reused across the classes it claims.
// Scratch buffers are caller-provided to the kernels (never allocated in
// the hot path); the per-class output arena is fresh per class because the
// emitted itemsets alias it.
type task struct {
	lay      *Layout
	scr      *Scratch
	minCount int64
	maxK     int
	work     int64

	pfx   []itemset.Item // prefix stack, pfx[:depth] is the current prefix
	arena []itemset.Item // per-class backing store for emitted itemsets
	out   [][]apriori.FrequentItemset
}

func newTask(lay *Layout, minCount int64, maxK, maxDepth int) *task {
	return &task{
		lay:      lay,
		scr:      lay.NewScratch(),
		minCount: minCount,
		maxK:     maxK,
		pfx:      make([]itemset.Item, maxDepth+1),
	}
}

// mineClass runs dEclat on the class anchored at heads[c] with tails
// heads[c+1:], returning per-k result lists (index k, entries 0 and 1 nil).
func (t *task) mineClass(heads []head, c int) [][]apriori.FrequentItemset {
	t.out = make([][]apriori.FrequentItemset, 2)
	t.arena = nil
	anchor := heads[c]
	t.pfx[0] = anchor.item
	if t.maxK == 1 {
		return t.out
	}
	// Level 2: diffsets against the anchor's tidset, d(ab) = t(a) \ t(b),
	// sup(ab) = sup(a) − |d(ab)|.
	var children []node
	for j := c + 1; j < len(heads); j++ {
		card, words, n := t.diffInto(anchor.s, heads[j].s)
		sup := anchor.sup - card
		if sup >= t.minCount {
			children = append(children, node{item: heads[j].item, sup: sup, s: t.persist(card, words, n)})
		}
	}
	if len(children) > 0 {
		t.grow(1, children)
	}
	return t.out
}

// grow emits every member of the class prefix pfx[:depth] × nodes and
// recurses: extending member a by member b (a < b) has diffset d(P·a·b) =
// d(P·b) \ d(P·a) and support sup(P·a) − |d(P·a·b)| — Zaki's dEclat
// recurrence, which keeps shrinking the sets the deeper the DFS goes.
func (t *task) grow(depth int, nodes []node) {
	k := depth + 1
	for a := range nodes {
		t.emit(depth, nodes[a].item, nodes[a].sup)
		if t.maxK > 0 && k+1 > t.maxK {
			continue
		}
		if a == len(nodes)-1 {
			continue
		}
		var next []node
		for b := a + 1; b < len(nodes); b++ {
			card, words, n := t.diffInto(nodes[b].s, nodes[a].s)
			sup := nodes[a].sup - card
			if sup >= t.minCount {
				next = append(next, node{item: nodes[b].item, sup: sup, s: t.persist(card, words, n)})
			}
		}
		if len(next) > 0 {
			t.pfx[depth] = nodes[a].item
			t.grow(depth+1, next)
		}
	}
}

// emit records pfx[:depth] + item as a frequent (depth+1)-set. The items
// are appended to the class arena; re-slicing with a capped capacity keeps
// later appends from aliasing earlier itemsets.
func (t *task) emit(depth int, item itemset.Item, sup int64) {
	k := depth + 1
	n := len(t.arena)
	t.arena = append(t.arena, t.pfx[:depth]...)
	t.arena = append(t.arena, item)
	items := itemset.Itemset(t.arena[n : n+k : n+k])
	for len(t.out) <= k {
		t.out = append(t.out, nil)
	}
	t.out[k] = append(t.out[k], apriori.FrequentItemset{Items: items, Count: sup})
}

// diffInto computes x \ y into the scratch buffers, dispatching on the four
// representation pairs, and returns the cardinality plus where the result
// lives (words: scr.Words; otherwise scr.A[:n]). Work units are the slice
// lengths each kernel touches.
func (t *task) diffInto(x, y set) (card int64, words bool, n int) {
	switch {
	case x.dense() && y.dense():
		t.work += int64(t.lay.Words) * WorkWordOp
		return AndNotInto(t.scr.Words, x.words, y.words), true, 0
	case x.dense():
		copy(t.scr.Words, x.words)
		cleared := ClearList(t.scr.Words, y.list)
		t.work += int64(t.lay.Words)*WorkWordOp + int64(len(y.list))*WorkTidOp
		return x.card - cleared, true, 0
	case y.dense():
		n = FilterInto(t.scr.A, x.list, y.words, false)
		t.work += int64(len(x.list)) * WorkTidOp
		return int64(n), false, n
	default:
		n = DiffInto(t.scr.A, x.list, y.list)
		t.work += int64(len(x.list)+len(y.list)) * WorkTidOp
		return int64(n), false, n
	}
}

// persist copies a scratch-resident diffset into its long-lived form. A
// word-form result whose cardinality has dropped below one tid per word is
// demoted to a sorted tidlist (the diffset switch-over rule): from there
// on this subtree's kernels run in tidlist mode, matching the memory the
// set actually occupies rather than the full bitmap width.
func (t *task) persist(card int64, words bool, n int) set {
	if words {
		if card >= int64(t.lay.Words) {
			out := make([]uint64, t.lay.Words)
			copy(out, t.scr.Words)
			return set{words: out, card: card}
		}
		m := ExtractInto(t.scr.A, t.scr.Words)
		t.work += int64(t.lay.Words)*WorkWordOp + int64(m)*WorkTidOp
		out := make([]int32, m)
		copy(out, t.scr.A)
		return set{list: out, card: card}
	}
	out := make([]int32, n)
	copy(out, t.scr.A[:n])
	return set{list: out, card: card}
}
