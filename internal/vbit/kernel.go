// Package vbit is the word-parallel vertical mining engine (ROADMAP item
// 2): per-item TID bitmaps packed into []uint64 words, support counting by
// popcount (math/bits.OnesCount64, a single hardware instruction on every
// target we care about), diffsets (dEclat) below the first level to cut
// memory traffic, and per-equivalence-class DFS tasks scheduled on the
// shared sched.Pool. Items too sparse to justify a bitmap fall back to the
// sorted tidlists the eclat package has always used, so one mixed-
// representation engine covers both ends of the density spectrum.
//
// This file holds the counting kernels. They are the vertical engine's
// analogue of hashtree.CountCtx.CountTransaction: the innermost loops that
// every candidate's support funnels through, so each is annotated
// //armlint:noalloc (statically allocation-free — see internal/lint) and
// writes through caller-provided destination slices with explicit indices
// instead of append. Every kernel's cost in deterministic work units is the
// slice lengths it touches, which is what the work model in vbit.go counts.
//
// That work model is frozen by TestModelTimePinned, so the package is
// pinned: no clocks, no randomness, no map-order leaks (wall-clock stats
// sites carry explicit determinism allows — they feed observability only):
//
//armlint:pinned
package vbit

import "math/bits"

// Word-parallel cost model constants, on the same nominal scale as the
// hashtree.Work* constants (1 unit ≈ one simple ALU op + dependent load):
// one 64-bit AND+popcount over a word, or one tidlist element touch during
// a merge. A bitmap pair-intersection over D transactions costs D/64
// WorkWordOp against a tidlist merge's ~2·density·D WorkTidOp — the factor
// the density-based engine selector (select.go) turns into a threshold.
const (
	WorkWordOp   = 1 // one 64-bit word AND/ANDNOT + popcount
	WorkTidOp    = 1 // one tidlist element compared or copied
	WorkItemScan = 1 // one item visited while materializing the layout
)

// AndCount returns |a ∩ b| for two equal-length bitmaps without writing the
// intersection anywhere — the pure support probe.
//
//armlint:noalloc
func AndCount(a, b []uint64) int64 {
	var n int
	for i := range a {
		n += bits.OnesCount64(a[i] & b[i])
	}
	return int64(n)
}

// AndCount3 returns |a ∩ b ∩ c|, fusing the two ANDs with the popcount so
// a 3-candidate support probe makes one pass with no intermediate bitmap —
// the kernel the dense-engine benchmarks exercise.
//
//armlint:noalloc
func AndCount3(a, b, c []uint64) int64 {
	var n int
	for i := range a {
		n += bits.OnesCount64(a[i] & b[i] & c[i])
	}
	return int64(n)
}

// AndInto writes a ∩ b into dst (len(dst) ≥ len(a) == len(b)) and returns
// the intersection's cardinality. dst may alias a or b.
//
//armlint:noalloc
func AndInto(dst, a, b []uint64) int64 {
	var n int
	for i := range a {
		w := a[i] & b[i]
		dst[i] = w
		n += bits.OnesCount64(w)
	}
	return int64(n)
}

// AndNotInto writes a \ b (a AND NOT b) into dst and returns its
// cardinality — the bitmap diffset kernel. dst may alias a or b.
//
//armlint:noalloc
func AndNotInto(dst, a, b []uint64) int64 {
	var n int
	for i := range a {
		w := a[i] &^ b[i]
		dst[i] = w
		n += bits.OnesCount64(w)
	}
	return int64(n)
}

// PopCount returns the number of set bits in the bitmap.
//
//armlint:noalloc
func PopCount(a []uint64) int64 {
	var n int
	for i := range a {
		n += bits.OnesCount64(a[i])
	}
	return int64(n)
}

// Bit reports whether tid's bit is set.
//
//armlint:noalloc
func Bit(words []uint64, tid int32) bool {
	return words[tid>>6]&(1<<uint(tid&63)) != 0
}

// SetBit sets tid's bit.
//
//armlint:noalloc
func SetBit(words []uint64, tid int32) {
	words[tid>>6] |= 1 << uint(tid&63)
}

// ClearList clears every tid in list from words and returns how many bits
// were actually set before clearing — the cardinality drop when a sparse
// tidlist is subtracted from a bitmap.
//
//armlint:noalloc
func ClearList(words []uint64, list []int32) int64 {
	var cleared int64
	for _, tid := range list {
		w := tid >> 6
		m := uint64(1) << uint(tid&63)
		if words[w]&m != 0 {
			words[w] &^= m
			cleared++
		}
	}
	return cleared
}

// ExtractInto writes the set bits of words into dst as ascending tids and
// returns the count — the bitmap→tidlist demotion used when a diffset's
// cardinality drops below one tid per word. dst must have room for every
// set bit.
//
//armlint:noalloc
func ExtractInto(dst []int32, words []uint64) int {
	n := 0
	for i, w := range words {
		base := int32(i) << 6
		for w != 0 {
			dst[n] = base + int32(bits.TrailingZeros64(w))
			n++
			w &= w - 1
		}
	}
	return n
}

// FilterInto writes into dst the entries of list whose bit in words matches
// keep (true: members, i.e. list ∩ bitmap; false: non-members, i.e.
// list \ bitmap) and returns the count. dst may alias list; len(dst) ≥
// len(list).
//
//armlint:noalloc
func FilterInto(dst, list []int32, words []uint64, keep bool) int {
	n := 0
	for _, tid := range list {
		if (words[tid>>6]&(1<<uint(tid&63)) != 0) == keep {
			dst[n] = tid
			n++
		}
	}
	return n
}

// IntersectInto writes a ∩ b into dst for two sorted tidlists and returns
// the count — the shared scratch-buffer intersection the eclat engine now
// runs on instead of allocating a fresh tidlist per call. len(dst) ≥
// min(len(a), len(b)); dst must not alias a or b.
//
//armlint:noalloc
func IntersectInto(dst, a, b []int32) int {
	n, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			dst[n] = a[i]
			n++
			i++
			j++
		}
	}
	return n
}

// DiffInto writes a \ b into dst for two sorted tidlists and returns the
// count — the tidlist diffset kernel. len(dst) ≥ len(a); dst may alias a.
//
//armlint:noalloc
func DiffInto(dst, a, b []int32) int {
	n, i, j := 0, 0, 0
	for i < len(a) {
		for j < len(b) && b[j] < a[i] {
			j++
		}
		if j < len(b) && b[j] == a[i] {
			i++
			j++
			continue
		}
		dst[n] = a[i]
		n++
		i++
	}
	return n
}
