package vbit

import (
	"math/rand"
	"testing"
)

// randBitmap returns a bitmap over n tids with roughly density d, plus the
// equivalent sorted tidlist.
func randBitmap(rng *rand.Rand, n int, d float64) ([]uint64, []int32) {
	words := make([]uint64, (n+63)/64)
	var list []int32
	for t := 0; t < n; t++ {
		if rng.Float64() < d {
			SetBit(words, int32(t))
			list = append(list, int32(t))
		}
	}
	return words, list
}

func TestKernelsAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(300)
		aw, al := randBitmap(rng, n, rng.Float64())
		bw, bl := randBitmap(rng, n, rng.Float64())

		inter := map[int32]bool{}
		diff := map[int32]bool{}
		for _, tid := range al {
			if Bit(bw, tid) {
				inter[tid] = true
			} else {
				diff[tid] = true
			}
		}

		if got := AndCount(aw, bw); got != int64(len(inter)) {
			t.Fatalf("trial %d: AndCount = %d, want %d", trial, got, len(inter))
		}
		dst := make([]uint64, len(aw))
		if got := AndInto(dst, aw, bw); got != int64(len(inter)) {
			t.Fatalf("trial %d: AndInto card = %d, want %d", trial, got, len(inter))
		}
		if got := AndNotInto(dst, aw, bw); got != int64(len(diff)) {
			t.Fatalf("trial %d: AndNotInto card = %d, want %d", trial, got, len(diff))
		}
		if got := PopCount(aw); got != int64(len(al)) {
			t.Fatalf("trial %d: PopCount = %d, want %d", trial, got, len(al))
		}

		// Extraction round-trips the diff bitmap into a sorted tidlist.
		ext := make([]int32, n)
		m := ExtractInto(ext, dst)
		if m != len(diff) {
			t.Fatalf("trial %d: ExtractInto n = %d, want %d", trial, m, len(diff))
		}
		for i := 0; i < m; i++ {
			if !diff[ext[i]] || (i > 0 && ext[i-1] >= ext[i]) {
				t.Fatalf("trial %d: ExtractInto produced bad tid %d at %d", trial, ext[i], i)
			}
		}

		// Tidlist kernels agree with the bitmap kernels.
		out := make([]int32, n)
		if got := IntersectInto(out, al, bl); got != len(inter) {
			t.Fatalf("trial %d: IntersectInto = %d, want %d", trial, got, len(inter))
		}
		if got := DiffInto(out, al, bl); got != len(diff) {
			t.Fatalf("trial %d: DiffInto = %d, want %d", trial, got, len(diff))
		}
		if got := FilterInto(out, al, bw, true); got != len(inter) {
			t.Fatalf("trial %d: FilterInto keep = %d, want %d", trial, got, len(inter))
		}
		if got := FilterInto(out, al, bw, false); got != len(diff) {
			t.Fatalf("trial %d: FilterInto drop = %d, want %d", trial, got, len(diff))
		}

		// ClearList(a, b∩a-list) drops exactly the intersection.
		cp := make([]uint64, len(aw))
		copy(cp, aw)
		if got := ClearList(cp, bl); got != int64(len(inter)) {
			t.Fatalf("trial %d: ClearList = %d, want %d", trial, got, len(inter))
		}
		if got := PopCount(cp); got != int64(len(al)-len(inter)) {
			t.Fatalf("trial %d: ClearList residue = %d, want %d", trial, got, len(al)-len(inter))
		}

		cw, _ := randBitmap(rng, n, rng.Float64())
		want3 := int64(0)
		for _, tid := range al {
			if Bit(bw, tid) && Bit(cw, tid) {
				want3++
			}
		}
		if got := AndCount3(aw, bw, cw); got != want3 {
			t.Fatalf("trial %d: AndCount3 = %d, want %d", trial, got, want3)
		}
	}
}

func TestKernelsEmpty(t *testing.T) {
	// Zero-length bitmaps and tidlists (an empty database) must no-op.
	if AndCount(nil, nil) != 0 || PopCount(nil) != 0 || AndCount3(nil, nil, nil) != 0 {
		t.Fatal("empty bitmap kernels returned nonzero")
	}
	if IntersectInto(nil, nil, nil) != 0 || DiffInto(nil, nil, nil) != 0 {
		t.Fatal("empty tidlist kernels returned nonzero")
	}
}

// TestKernelAllocs is the runtime face of the armlint noalloc gate: every
// counting kernel, and the Layout candidate-support path above them, runs
// with zero allocations per op once the scratch buffers exist.
func TestKernelAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 1024
	aw, al := randBitmap(rng, n, 0.3)
	bw, bl := randBitmap(rng, n, 0.3)
	cw, _ := randBitmap(rng, n, 0.3)
	dst := make([]uint64, len(aw))
	out := make([]int32, n)
	var sink int64
	cases := map[string]func(){
		"AndCount":     func() { sink += AndCount(aw, bw) },
		"AndCount3":    func() { sink += AndCount3(aw, bw, cw) },
		"AndInto":      func() { sink += AndInto(dst, aw, bw) },
		"AndNotInto":   func() { sink += AndNotInto(dst, aw, bw) },
		"ExtractInto":  func() { sink += int64(ExtractInto(out, aw)) },
		"IntersectInto": func() {
			sink += int64(IntersectInto(out, al, bl))
		},
		"DiffInto": func() { sink += int64(DiffInto(out, al, bl)) },
		"FilterInto": func() {
			sink += int64(FilterInto(out, al, bw, true))
		},
	}
	for name, fn := range cases {
		if allocs := testing.AllocsPerRun(100, fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", name, allocs)
		}
	}
	_ = sink
}
