package vbit

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/apriori"
	"repro/internal/db"
	"repro/internal/gen"
	"repro/internal/itemset"
	"repro/internal/robust"
)

// randomDB builds a database of d transactions over n items where each
// item appears with probability density — including, deliberately, empty
// transactions when the dice say so.
func randomDB(rng *rand.Rand, n, dd int, density float64) *db.Database {
	out := db.New(n)
	for t := 0; t < dd; t++ {
		var items itemset.Itemset
		for it := 0; it < n; it++ {
			if rng.Float64() < density {
				items = append(items, itemset.Item(it))
			}
		}
		out.Append(int64(t), items)
	}
	return out
}

func sameResult(t *testing.T, label string, got, want *apriori.Result) {
	t.Helper()
	if got.NumFrequent() != want.NumFrequent() {
		t.Errorf("%s: %d frequent itemsets, want %d", label, got.NumFrequent(), want.NumFrequent())
	}
	for k := 1; k < len(want.ByK); k++ {
		wk := want.ByK[k]
		if k >= len(got.ByK) {
			if len(wk) > 0 {
				t.Errorf("%s: missing k=%d (%d sets)", label, k, len(wk))
			}
			continue
		}
		gk := got.ByK[k]
		if len(gk) != len(wk) {
			t.Errorf("%s: k=%d has %d sets, want %d", label, k, len(gk), len(wk))
			continue
		}
		for i := range wk {
			if !gk[i].Items.Equal(wk[i].Items) || gk[i].Count != wk[i].Count {
				t.Errorf("%s: k=%d[%d] = %v/%d, want %v/%d",
					label, k, i, gk[i].Items, gk[i].Count, wk[i].Items, wk[i].Count)
				break
			}
		}
	}
}

// TestMineProperty drives the engine over randomized databases spanning the
// density spectrum — plus the degenerate shapes (empty transactions,
// singleton universe) — under all three layouts, against sequential
// Apriori as the reference.
func TestMineProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	shapes := []struct {
		name     string
		n, d     int
		density  float64
		support  float64
	}{
		{"dense", 12, 200, 0.5, 0.1},
		{"sparse", 40, 300, 0.03, 0.01},
		{"mixed", 25, 250, 0.15, 0.05},
		{"singleton-universe", 1, 50, 0.5, 0.1},
		{"mostly-empty", 15, 120, 0.02, 0.02},
	}
	cutoffs := map[string]float64{"mixed-layout": 0, "all-bitmap": 1e-9, "all-tidlist": 1.5}
	for _, sh := range shapes {
		for trial := 0; trial < 3; trial++ {
			d := randomDB(rng, sh.n, sh.d, sh.density)
			want, err := apriori.Mine(d, apriori.Options{MinSupport: sh.support, ShortCircuit: true})
			if err != nil {
				t.Fatal(err)
			}
			for cn, cutoff := range cutoffs {
				res, stats, err := Mine(d, Options{MinSupport: sh.support, Procs: 3, DensityCutoff: cutoff})
				if err != nil {
					t.Fatalf("%s/%s trial %d: %v", sh.name, cn, trial, err)
				}
				sameResult(t, sh.name+"/"+cn, res, want)
				if res.MinCount != want.MinCount {
					t.Errorf("%s/%s: MinCount %d != %d", sh.name, cn, res.MinCount, want.MinCount)
				}
				if stats == nil || stats.Procs != 3 {
					t.Errorf("%s/%s: bad stats %+v", sh.name, cn, stats)
				}
			}
		}
	}
}

func TestMineMaxK(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := randomDB(rng, 15, 150, 0.4)
	full, _, err := Mine(d, Options{MinSupport: 0.1, Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	for maxK := 1; maxK <= 3; maxK++ {
		res, _, err := Mine(d, Options{MinSupport: 0.1, Procs: 2, MaxK: maxK})
		if err != nil {
			t.Fatal(err)
		}
		if got := len(res.ByK) - 1; got > maxK {
			t.Errorf("MaxK=%d: results reach k=%d", maxK, got)
		}
		for k := 1; k <= maxK && k < len(full.ByK); k++ {
			if len(res.ByK[k]) != len(full.ByK[k]) {
				t.Errorf("MaxK=%d: k=%d has %d sets, want %d", maxK, k, len(res.ByK[k]), len(full.ByK[k]))
			}
		}
	}
}

func TestMineCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	d := randomDB(rand.New(rand.NewSource(1)), 10, 100, 0.3)
	res, _, err := MineCtx(ctx, d, Options{MinSupport: 0.1, Procs: 2})
	var ce *robust.CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *robust.CanceledError", err)
	}
	if ce.Phase != "f1" || ce.K != 1 {
		t.Errorf("canceled at phase %q k=%d, want f1/1", ce.Phase, ce.K)
	}
	if res != nil {
		t.Errorf("pre-canceled run returned a result")
	}
}

// TestMineCtxMidRun cancels concurrently with the DFS phase; whatever the
// timing, the outcome must be either the complete result or a partial one
// that is a support-exact subset of it, tagged with a CanceledError.
func TestMineCtxMidRun(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	d := randomDB(rng, 30, 400, 0.35)
	opts := Options{MinSupport: 0.05, Procs: 2}
	want, _, err := Mine(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go cancel()
	res, _, err := MineCtx(ctx, d, opts)
	if err != nil {
		var ce *robust.CanceledError
		if !errors.As(err, &ce) {
			t.Fatalf("err = %v, want *robust.CanceledError", err)
		}
	}
	if res == nil {
		return // canceled inside F1: no usable partial, by contract
	}
	for k := 2; k < len(res.ByK); k++ {
		for _, f := range res.ByK[k] {
			if want.SupportOf(f.Items) != f.Count {
				t.Fatalf("partial result contains %v/%d not in the full result", f.Items, f.Count)
			}
		}
	}
}

// TestModelPinned pins the deterministic work model: the totals depend only
// on the database and options, not on the processor count or scheduling
// luck, and their absolute values are frozen so silent cost-model drift
// fails loudly (same discipline as the CCPD model tests).
func TestModelPinned(t *testing.T) {
	d, err := gen.Generate(gen.Params{N: 60, L: 15, I: 3, T: 6, D: 400, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var ref *Stats
	for _, procs := range []int{1, 2, 4} {
		_, stats, err := Mine(d, Options{MinSupport: 0.01, Procs: procs})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = stats
			continue
		}
		if stats.TotalWork() != ref.TotalWork() {
			t.Errorf("procs=%d: TotalWork %d != %d", procs, stats.TotalWork(), ref.TotalWork())
		}
		for c, w := range stats.ClassWork {
			if ref.ClassWork[c] != w {
				t.Errorf("procs=%d: ClassWork[%d] = %d != %d", procs, c, w, ref.ClassWork[c])
			}
		}
	}
	// Frozen values for N=60 L=15 I=3 T=6 D=400 seed=5 at support 0.01 with
	// the default layout cutoff: 28 bitmap columns, 9 tidlist columns, 37
	// first-level classes.
	const pinnedTotalWork = 99455
	if ref.TotalWork() != pinnedTotalWork {
		t.Errorf("TotalWork = %d, want pinned %d", ref.TotalWork(), pinnedTotalWork)
	}
	_, stats4, err := Mine(d, Options{MinSupport: 0.01, Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if stats4.ModelTime() != 38668 {
		t.Errorf("ModelTime(procs=4) = %d, want pinned 38668", stats4.ModelTime())
	}
	if stats4.Classes != 37 || stats4.DenseItems != 28 || stats4.SparseItems != 9 {
		t.Errorf("classes/dense/sparse = %d/%d/%d, want 37/28/9",
			stats4.Classes, stats4.DenseItems, stats4.SparseItems)
	}
	var schedSum, classSum int64
	for _, w := range ref.CountWork {
		schedSum += w
	}
	for _, w := range ref.ClassWork {
		classSum += w
	}
	if schedSum != classSum {
		t.Errorf("GreedySchedule lost work: %d != %d", schedSum, classSum)
	}
}
