package vbit

import "repro/internal/itemset"

// Scratch is the caller-provided working memory for the counting kernels:
// one bitmap of Layout.Words words and two tidlist buffers big enough for
// any stored column. One Scratch per worker; kernels never allocate.
type Scratch struct {
	Words []uint64 //armlint:hot
	A, B  []int32  //armlint:hot
}

// NewScratch sizes a scratch set for this layout. The tidlist buffers are
// bounded by the longest stored list or by one tid per bitmap word
// (ExtractInto only demotes bitmaps whose cardinality is below Words).
func (l *Layout) NewScratch() *Scratch {
	n := l.listMax
	if l.Words > n {
		n = l.Words
	}
	if l.NumTx < n {
		n = l.NumTx
	}
	return &Scratch{
		Words: make([]uint64, l.Words),
		A:     make([]int32, n),
		B:     make([]int32, n),
	}
}

// CountCandidates writes the support of each candidate into out (len(out)
// >= len(cands)) using scr for intermediates. This is the vertical
// engine's counterpart of the hash-tree counting kernel: where the hash
// tree walks every transaction through a candidate trie, the vertical path
// intersects the candidates' columns directly — a handful of word-parallel
// popcount passes per candidate, independent of the transaction count of
// non-participating rows.
func (l *Layout) CountCandidates(scr *Scratch, cands []itemset.Itemset, out []int64) {
	for i, c := range cands {
		out[i] = l.CountOne(scr, c)
	}
}

// CountOne returns the support of one candidate itemset.
//
//armlint:noalloc
func (l *Layout) CountOne(scr *Scratch, cand itemset.Itemset) int64 {
	if len(cand) == 0 {
		return int64(l.NumTx)
	}
	allDense := true
	for _, it := range cand {
		s := &l.sets[it]
		if s.words == nil {
			if s.list == nil {
				return 0 // unmaterialized column: below minCount or absent
			}
			allDense = false
		}
	}
	if allDense {
		return l.countDense(scr, cand)
	}
	return l.countMixed(scr, cand)
}

// countDense intersects bitmap columns only: the fused 2- and 3-way
// popcount kernels for the common candidate sizes, a folding AndInto chain
// above that.
//
//armlint:noalloc
func (l *Layout) countDense(scr *Scratch, cand itemset.Itemset) int64 {
	switch len(cand) {
	case 1:
		return l.sets[cand[0]].card
	case 2:
		return AndCount(l.sets[cand[0]].words, l.sets[cand[1]].words)
	case 3:
		return AndCount3(l.sets[cand[0]].words, l.sets[cand[1]].words, l.sets[cand[2]].words)
	}
	n := AndInto(scr.Words, l.sets[cand[0]].words, l.sets[cand[1]].words)
	for _, it := range cand[2:] {
		n = AndInto(scr.Words, scr.Words, l.sets[it].words)
		if n == 0 {
			return 0
		}
	}
	return n
}

// countMixed handles candidates with at least one tidlist column: start
// from the smallest tidlist and filter it through the remaining columns
// (bit probes against bitmaps, sorted merges against other tidlists),
// ping-ponging between the two scratch buffers.
//
//armlint:noalloc
func (l *Layout) countMixed(scr *Scratch, cand itemset.Itemset) int64 {
	start := -1
	for i, it := range cand {
		s := &l.sets[it]
		if s.words != nil {
			continue
		}
		if start < 0 || s.card < l.sets[cand[start]].card {
			start = i
		}
	}
	cur := l.sets[cand[start]].list
	buf, other := scr.A, scr.B
	for i, it := range cand {
		if i == start {
			continue
		}
		s := &l.sets[it]
		if s.words != nil {
			// cur may live in buf; FilterInto writes in place safely.
			n := FilterInto(buf, cur, s.words, true)
			cur = buf[:n]
		} else {
			// IntersectInto forbids aliasing: write into the other buffer.
			n := IntersectInto(other, cur, s.list)
			cur = other[:n]
			buf, other = other, buf
		}
		if len(cur) == 0 {
			return 0
		}
	}
	return int64(len(cur))
}
