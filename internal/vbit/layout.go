package vbit

import (
	"repro/internal/db"
	"repro/internal/itemset"
)

// DefaultDensityCutoff is the item density below which the vertical layout
// stores a sorted tidlist instead of a bitmap. At density 1/64 an item has
// on average one set bit per 64-bit word, which is exactly where a packed
// bitmap stops being smaller than the equivalent []int32 tidlist (D/64
// words of 8 bytes vs D/64 tids of 4 bytes — but the tidlist's merge loops
// touch 2 elements per output tid, so the word-parallel AND still wins down
// to about one bit per word). One tid per word is therefore the break-even
// of the representation itself, independent of which engine was selected.
const DefaultDensityCutoff = 1.0 / 64

// set is one vertical column: exactly one of words (dense bitmap over all
// transactions) or list (sorted tidlist) is non-nil, except for items that
// never reach minCount, which carry neither. card is the number of tids in
// the stored set — for a level-1 column that is the item's support; for a
// diffset deeper in the DFS it is the support drop.
type set struct {
	words []uint64
	list  []int32
	card  int64
}

func (s *set) dense() bool { return s.words != nil }

// Layout is the vertical image of a db.Database: one column per item,
// bitmaps for dense items and tidlists for sparse ones, all backed by two
// arena allocations. It is materialized in one counting pass plus one fill
// pass over the horizontal database.
type Layout struct {
	NumTx  int     // transactions D (bit positions 0..NumTx-1)
	Words  int     // ⌈NumTx/64⌉ words per bitmap
	Cutoff float64 // density threshold that classified the columns

	sups []int64 // per-item support, for every item in [0, NumItems)
	sets []set
	// listMax is the longest stored tidlist — the scratch size tidlist
	// kernels need on top of the Words-sized bitmap scratch.
	listMax     int
	denseItems  int
	sparseItems int
}

// NewLayout materializes the vertical layout for every item that occurs at
// least once, using the default density cutoff when cutoff <= 0.
func NewLayout(d *db.Database, cutoff float64) *Layout {
	return Materialize(d, cutoff, 1)
}

// Materialize counts item supports and builds the vertical layout, storing
// columns only for items with support >= minCount (the engine never probes
// an infrequent column, so materializing it would be wasted arena).
func Materialize(d *db.Database, cutoff float64, minCount int64) *Layout {
	sups := make([]int64, d.NumItems())
	//armlint:allow ctxpoll single bounded support-count pass over the database; cancellation is observed at the next phase boundary
	for t := 0; t < d.Len(); t++ {
		for _, it := range d.Items(t) {
			sups[it]++
		}
	}
	return FromCounts(d, cutoff, minCount, sups)
}

// FromCounts builds the layout from precomputed per-item supports (the
// engine's parallel F1 phase already has them; recounting would double the
// scan). sups must have one entry per item in [0, d.NumItems()).
func FromCounts(d *db.Database, cutoff float64, minCount int64, sups []int64) *Layout {
	if cutoff <= 0 {
		cutoff = DefaultDensityCutoff
	}
	if minCount < 1 {
		minCount = 1
	}
	nTx := d.Len()
	l := &Layout{
		NumTx:  nTx,
		Words:  (nTx + 63) / 64,
		Cutoff: cutoff,
		sups:   sups,
		sets:   make([]set, d.NumItems()),
	}
	// Classify columns and size the two arenas. An item is dense when its
	// density (support / D) reaches the cutoff.
	denseFloor := cutoff * float64(nTx)
	var sparseTids int64
	for it, sup := range sups {
		switch {
		case sup < minCount:
			// no column
		case float64(sup) >= denseFloor:
			l.sets[it].card = -1 // marks dense; words attached below
			l.denseItems++
		default:
			l.sets[it].card = sup
			sparseTids += sup
			l.sparseItems++
			if int(sup) > l.listMax {
				l.listMax = int(sup)
			}
		}
	}
	wordArena := make([]uint64, l.denseItems*l.Words)
	listArena := make([]int32, sparseTids)
	next := make([]int32, d.NumItems()) // per-sparse-item write cursor
	var w, off int
	for it := range l.sets {
		s := &l.sets[it]
		switch {
		case s.card == -1:
			s.card = sups[it]
			s.words = wordArena[w*l.Words : (w+1)*l.Words]
			w++
		case s.card > 0:
			s.list = listArena[off : off+int(s.card)]
			next[it] = int32(off)
			off += int(s.card)
		}
	}
	// Fill pass: one scan over the horizontal database. Transactions are
	// visited in ascending order, so tidlists come out sorted for free.
	//armlint:allow ctxpoll single bounded fill pass over the database; cancellation is observed at the next phase boundary
	for t := 0; t < nTx; t++ {
		tid := int32(t)
		for _, it := range d.Items(t) {
			s := &l.sets[it]
			switch {
			case s.words != nil:
				SetBit(s.words, tid)
			case s.list != nil:
				listArena[next[it]] = tid
				next[it]++
			}
		}
	}
	return l
}

// Support returns the support of a single item (0 for items outside the
// materialized universe).
func (l *Layout) Support(it itemset.Item) int64 {
	if int(it) >= len(l.sups) {
		return 0
	}
	return l.sups[it]
}

// ItemWords returns item's bitmap column, nil when the item is stored as a
// tidlist (or not stored at all).
func (l *Layout) ItemWords(it itemset.Item) []uint64 { return l.sets[it].words }

// ItemList returns item's tidlist column, nil when the item is stored as a
// bitmap (or not stored at all).
func (l *Layout) ItemList(it itemset.Item) []int32 { return l.sets[it].list }

// DenseItems returns how many columns are bitmaps.
func (l *Layout) DenseItems() int { return l.denseItems }

// SparseItems returns how many columns are tidlists.
func (l *Layout) SparseItems() int { return l.sparseItems }

// BuildWork returns the deterministic work units of materializing the
// layout: the counting pass plus the fill pass each touch every item
// occurrence once.
func (l *Layout) BuildWork(d *db.Database) int64 {
	return 2 * d.TotalItems() * WorkItemScan
}
