package vbit

import (
	"math/rand"
	"testing"

	"repro/internal/db"
	"repro/internal/itemset"
)

// bruteSupport counts a candidate the slow way: scan every transaction.
func bruteSupport(d *db.Database, cand itemset.Itemset) int64 {
	var n int64
	for t := 0; t < d.Len(); t++ {
		if d.Items(t).Contains(cand) {
			n++
		}
	}
	return n
}

// TestCountOneProperty asserts bitmap-vs-tidlist support agreement: the
// same candidate counted through the all-bitmap layout, the all-tidlist
// layout, the mixed default, and a brute-force horizontal scan must give
// one answer — over random databases including empty transactions, a
// singleton universe, and both density extremes.
func TestCountOneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	shapes := []struct {
		name    string
		n, d    int
		density float64
	}{
		{"all-dense", 10, 256, 0.6},
		{"all-sparse", 50, 256, 0.01},
		{"mixed", 30, 300, 0.12},
		{"singleton-universe", 1, 64, 0.5},
		{"empty-heavy", 20, 100, 0.03},
	}
	for _, sh := range shapes {
		for trial := 0; trial < 3; trial++ {
			d := randomDB(rng, sh.n, sh.d, sh.density)
			layouts := map[string]*Layout{
				"mixed":       NewLayout(d, 0),
				"all-bitmap":  NewLayout(d, 1e-12),
				"all-tidlist": NewLayout(d, 1.5),
			}
			scratches := map[string]*Scratch{}
			for ln, l := range layouts {
				scratches[ln] = l.NewScratch()
			}
			for probe := 0; probe < 40; probe++ {
				k := 1 + rng.Intn(4)
				if k > sh.n {
					k = sh.n
				}
				seen := map[itemset.Item]bool{}
				var raw []itemset.Item
				for len(raw) < k {
					it := itemset.Item(rng.Intn(sh.n))
					if !seen[it] {
						seen[it] = true
						raw = append(raw, it)
					}
				}
				cand := itemset.New(raw...)
				want := bruteSupport(d, cand)
				for ln, l := range layouts {
					if got := l.CountOne(scratches[ln], cand); got != want {
						t.Fatalf("%s/%s trial %d: CountOne(%v) = %d, want %d",
							sh.name, ln, trial, cand, got, want)
					}
				}
			}
		}
	}
}

func TestLayoutClassification(t *testing.T) {
	// 128 transactions; item 0 in every row (density 1), item 1 in exactly
	// 2 rows (density 1/64 — exactly at the default cutoff, dense), item 2
	// in 1 row (below it, sparse), item 3 nowhere.
	d := db.New(4)
	for t2 := 0; t2 < 128; t2++ {
		items := itemset.New(0)
		if t2 < 2 {
			items = itemset.New(0, 1)
		} else if t2 == 5 {
			items = itemset.New(0, 2)
		}
		d.Append(int64(t2), items)
	}
	l := NewLayout(d, 0)
	if l.Cutoff != DefaultDensityCutoff {
		t.Errorf("Cutoff = %v, want default %v", l.Cutoff, DefaultDensityCutoff)
	}
	if l.Words != 2 {
		t.Errorf("Words = %d, want 2", l.Words)
	}
	if l.ItemWords(0) == nil || l.ItemWords(1) == nil {
		t.Errorf("items 0,1 should be bitmap columns")
	}
	if l.ItemList(2) == nil || l.ItemWords(2) != nil {
		t.Errorf("item 2 should be a tidlist column")
	}
	if l.ItemWords(3) != nil || l.ItemList(3) != nil {
		t.Errorf("absent item 3 should have no column")
	}
	if l.DenseItems() != 2 || l.SparseItems() != 1 {
		t.Errorf("dense/sparse = %d/%d, want 2/1", l.DenseItems(), l.SparseItems())
	}
	for it, want := range []int64{128, 2, 1, 0} {
		if got := l.Support(itemset.Item(it)); got != want {
			t.Errorf("Support(%d) = %d, want %d", it, got, want)
		}
	}
	if got := l.ItemList(2); len(got) != 1 || got[0] != 5 {
		t.Errorf("ItemList(2) = %v, want [5]", got)
	}
}

// TestCountOneAllocs gates the full candidate-support path — kernels plus
// the representation dispatch above them — at 0 allocs/op, for both pure
// and mixed layouts.
func TestCountOneAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	d := randomDB(rng, 24, 512, 0.15) // default cutoff leaves a mix
	for name, cutoff := range map[string]float64{"mixed": 0, "bitmap": 1e-12, "tidlist": 1.5} {
		l := NewLayout(d, cutoff)
		scr := l.NewScratch()
		cands := []itemset.Itemset{
			itemset.New(0, 1),
			itemset.New(1, 2, 3),
			itemset.New(0, 2, 4, 6),
			itemset.New(3, 7, 11, 15, 19),
		}
		var sink int64
		if allocs := testing.AllocsPerRun(100, func() {
			for _, c := range cands {
				sink += l.CountOne(scr, c)
			}
		}); allocs != 0 {
			t.Errorf("%s: CountOne %v allocs/op, want 0", name, allocs)
		}
		_ = sink
	}
}
