// Package seqpat implements parallel sequential-pattern mining (Agrawal &
// Srikant 1995), the extension task Section 8 of the paper names as a
// direct beneficiary of its techniques: the level-wise loop, hash-tree-like
// candidate storage with balanced hashing, short-circuit-style pruning and
// the CCPD parallelization (shared candidate structure, partitioned
// customer sequences, privatized counters) all carry over.
//
// The model is event sequences: each customer has an ordered sequence of
// items (events), possibly with repeats. A pattern p is supported by a
// customer if p is a subsequence (order preserved, gaps allowed) of the
// customer's sequence; support counts customers, not occurrences.
package seqpat

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/apriori"
	"repro/internal/itemset"
)

// Sequence is an ordered event list; repeats are allowed.
type Sequence []itemset.Item

// Clone returns an independent copy.
func (s Sequence) Clone() Sequence {
	c := make(Sequence, len(s))
	copy(c, s)
	return c
}

// Key returns a map key (injective).
func (s Sequence) Key() string {
	b := make([]byte, 0, 4*len(s))
	for _, it := range s {
		b = append(b, byte(it), byte(it>>8), byte(it>>16), byte(it>>24))
	}
	return string(b)
}

// String renders "<a b c>".
func (s Sequence) String() string {
	out := "<"
	for i, it := range s {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%d", it)
	}
	return out + ">"
}

// ContainsSubsequence reports whether sub occurs in s in order (gaps
// allowed), by greedy matching — correct and optimal for subsequence tests.
func (s Sequence) ContainsSubsequence(sub Sequence) bool {
	if len(sub) == 0 {
		return true
	}
	j := 0
	for _, it := range s {
		if it == sub[j] {
			j++
			if j == len(sub) {
				return true
			}
		}
	}
	return false
}

// Less orders sequences lexicographically.
func (s Sequence) Less(t Sequence) bool {
	n := len(s)
	if len(t) < n {
		n = len(t)
	}
	for i := 0; i < n; i++ {
		if s[i] != t[i] {
			return s[i] < t[i]
		}
	}
	return len(s) < len(t)
}

// Dataset is a set of customer sequences.
type Dataset struct {
	Sequences []Sequence
	NumItems  int
}

// Append adds a customer sequence, growing the item universe as needed.
func (d *Dataset) Append(s Sequence) {
	d.Sequences = append(d.Sequences, s)
	for _, it := range s {
		if int(it) >= d.NumItems {
			d.NumItems = int(it) + 1
		}
	}
}

// Len returns the number of customers.
func (d *Dataset) Len() int { return len(d.Sequences) }

// FrequentSequence pairs a pattern with its customer support.
type FrequentSequence struct {
	Pattern Sequence
	Count   int64
}

// Options configures mining.
type Options struct {
	// MinSupport as a fraction of customers; AbsSupport overrides if > 0.
	MinSupport float64
	AbsSupport int64
	// MaxLen bounds pattern length (0 = to fixpoint).
	MaxLen int
	// Procs parallelizes counting CCPD-style (customers partitioned,
	// shared candidate trie, per-processor private counters).
	Procs int
	// Hash selects the trie cell hash: bitonic over frequent-event ranks
	// (balanced, the paper's Section 4.1 technique) or interleaved mod.
	Hash HashChoice
}

func (o Options) minCount(n int) int64 {
	if o.AbsSupport > 0 {
		return o.AbsSupport
	}
	// Shared ceiling semantics with itemset mining: "support 1%" means at
	// least 1% of customers, so a fractional product rounds UP. The old
	// int64(...) truncation admitted patterns one customer short of the
	// threshold (0.01 × 300 → 2, not 3).
	return apriori.CeilSupport(o.MinSupport, n)
}

// Result holds the frequent patterns by length.
type Result struct {
	MinCount int64
	ByLen    [][]FrequentSequence
}

// All flattens the result.
func (r *Result) All() []FrequentSequence {
	var out []FrequentSequence
	for _, fs := range r.ByLen {
		out = append(out, fs...)
	}
	return out
}

// NumPatterns counts all frequent patterns.
func (r *Result) NumPatterns() int {
	n := 0
	for _, fs := range r.ByLen {
		n += len(fs)
	}
	return n
}

// SupportOf looks up a pattern's support, or 0.
func (r *Result) SupportOf(p Sequence) int64 {
	if len(p) >= len(r.ByLen) {
		return 0
	}
	key := p.Key()
	for _, f := range r.ByLen[len(p)] {
		if f.Pattern.Key() == key {
			return f.Count
		}
	}
	return 0
}

// Mine runs the level-wise sequential-pattern loop.
func Mine(d *Dataset, opts Options) (*Result, error) {
	if opts.Procs < 1 {
		opts.Procs = 1
	}
	minCount := opts.minCount(d.Len())
	res := &Result{MinCount: minCount, ByLen: make([][]FrequentSequence, 2)}

	// Length 1: count distinct events per customer.
	f1 := frequentEvents(d, minCount, opts.Procs)
	res.ByLen[1] = f1
	if len(f1) == 0 {
		return res, nil
	}
	// Rank labels for balanced hashing (Section 4.1 carried over).
	labels := make([]int32, d.NumItems)
	for i := range labels {
		labels[i] = -1
	}
	for rank, f := range f1 {
		labels[f.Pattern[0]] = int32(rank)
	}

	prev := make([]Sequence, len(f1))
	for i, f := range f1 {
		prev[i] = f.Pattern
	}

	for k := 2; len(prev) > 0 && (opts.MaxLen == 0 || k <= opts.MaxLen); k++ {
		cands := GenerateCandidates(prev)
		if len(cands) == 0 {
			break
		}
		trie := newTrie(k, fanoutFor(len(cands), k), labels, opts.Hash)
		for _, c := range cands {
			trie.insert(c)
		}
		counts := countParallel(d, trie, opts.Procs)
		var fk []FrequentSequence
		for id, c := range counts {
			if c >= minCount {
				fk = append(fk, FrequentSequence{Pattern: trie.pattern(int32(id)), Count: c})
			}
		}
		sort.Slice(fk, func(i, j int) bool { return fk[i].Pattern.Less(fk[j].Pattern) })
		res.ByLen = append(res.ByLen, fk)
		prev = prev[:0]
		for _, f := range fk {
			prev = append(prev, f.Pattern)
		}
	}
	return res, nil
}

// frequentEvents counts per-customer distinct events in parallel.
func frequentEvents(d *Dataset, minCount int64, procs int) []FrequentSequence {
	local := make([][]int64, procs)
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			counts := make([]int64, d.NumItems)
			seen := make([]bool, d.NumItems)
			lo, hi := p*d.Len()/procs, (p+1)*d.Len()/procs
			for _, s := range d.Sequences[lo:hi] {
				for _, it := range s {
					if !seen[it] {
						seen[it] = true
						counts[it]++
					}
				}
				for _, it := range s {
					seen[it] = false
				}
			}
			local[p] = counts
		}(p)
	}
	wg.Wait()
	var out []FrequentSequence
	for it := 0; it < d.NumItems; it++ {
		var c int64
		for p := 0; p < procs; p++ {
			c += local[p][it]
		}
		if c >= minCount {
			out = append(out, FrequentSequence{Pattern: Sequence{itemset.Item(it)}, Count: c})
		}
	}
	return out
}

// GenerateCandidates joins frequent (k-1)-patterns: p extends q when
// p[1:] == q[:k-2] (AprioriAll-style join for event sequences), and prunes
// candidates with an infrequent contiguous (k-1)-subsequence obtained by
// dropping the first or last element; dropping interior elements is also
// checked against the frequent set.
func GenerateCandidates(prev []Sequence) []Sequence {
	if len(prev) == 0 {
		return nil
	}
	k := len(prev[0]) + 1
	inPrev := make(map[string]bool, len(prev))
	// Index by (k-2)-prefix for the join.
	byPrefix := map[string][]Sequence{}
	for _, s := range prev {
		inPrev[s.Key()] = true
		byPrefix[s[:len(s)-1].Key()] = append(byPrefix[s[:len(s)-1].Key()], s)
	}
	var cands []Sequence
	for _, a := range prev {
		// Join a with every q whose prefix equals a's suffix.
		for _, b := range byPrefix[a[1:].Key()] {
			cand := make(Sequence, 0, k)
			cand = append(cand, a...)
			cand = append(cand, b[len(b)-1])
			// Prune: every (k-1)-subsequence obtained by dropping one
			// element must be frequent.
			ok := true
			for drop := 0; drop < k && ok; drop++ {
				sub := make(Sequence, 0, k-1)
				sub = append(sub, cand[:drop]...)
				sub = append(sub, cand[drop+1:]...)
				if !inPrev[sub.Key()] {
					ok = false
				}
			}
			if ok {
				cands = append(cands, cand)
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].Less(cands[j]) })
	// Deduplicate (the join can emit duplicates only if prev had them, but
	// stay defensive).
	out := cands[:0]
	var last string
	for _, c := range cands {
		k := c.Key()
		if k != last {
			out = append(out, c)
			last = k
		}
	}
	return out
}

func countParallel(d *Dataset, tr *trie, procs int) []int64 {
	local := make([][]int64, procs)
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			counts := make([]int64, tr.numPatterns())
			ctx := tr.newCtx()
			lo, hi := p*d.Len()/procs, (p+1)*d.Len()/procs
			for _, s := range d.Sequences[lo:hi] {
				ctx.countSequence(s, counts)
			}
			local[p] = counts
		}(p)
	}
	wg.Wait()
	total := make([]int64, tr.numPatterns())
	for p := 0; p < procs; p++ {
		for i, c := range local[p] {
			total[i] += c
		}
	}
	return total
}
