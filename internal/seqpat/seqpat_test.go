package seqpat

import (
	"math/rand"
	"testing"

	"repro/internal/itemset"
)

func seq(items ...itemset.Item) Sequence { return Sequence(items) }

func TestContainsSubsequence(t *testing.T) {
	s := seq(1, 3, 2, 3, 5)
	yes := []Sequence{{}, {1}, {3, 3}, {1, 2, 5}, {1, 3, 2, 3, 5}, {3, 2, 5}}
	for _, sub := range yes {
		if !s.ContainsSubsequence(sub) {
			t.Errorf("%v should contain %v", s, sub)
		}
	}
	no := []Sequence{{2, 1}, {5, 3}, {3, 3, 3}, {1, 3, 2, 3, 5, 7}, {4}}
	for _, sub := range no {
		if s.ContainsSubsequence(sub) {
			t.Errorf("%v should not contain %v", s, sub)
		}
	}
}

func TestSequenceLessAndKey(t *testing.T) {
	if !seq(1, 2).Less(seq(1, 3)) || seq(1, 3).Less(seq(1, 2)) {
		t.Error("Less ordering wrong")
	}
	if !seq(1).Less(seq(1, 0)) {
		t.Error("prefix should sort first")
	}
	if seq(1, 2).Key() == seq(2, 1).Key() {
		t.Error("Key must distinguish order")
	}
	if seq(1, 2).String() != "<1 2>" {
		t.Errorf("String = %q", seq(1, 2).String())
	}
}

func TestGenerateCandidatesJoin(t *testing.T) {
	// prev = {<1 2>, <2 3>, <2 2>}: joins <1 2>+<2 3> → <1 2 3>,
	// <1 2>+<2 2> → <1 2 2>, <2 2>+<2 3> → <2 2 3>, <2 2>+<2 2> → <2 2 2>.
	// Pruning requires all 2-subsequences frequent: <1 2 3> needs <1 3> —
	// absent → pruned. <1 2 2> needs <1 2>, <1 2>, <2 2> — present: kept.
	prev := []Sequence{seq(1, 2), seq(2, 3), seq(2, 2)}
	cands := GenerateCandidates(prev)
	got := map[string]bool{}
	for _, c := range cands {
		got[c.String()] = true
	}
	for _, want := range []string{"<1 2 2>", "<2 2 2>", "<2 2 3>"} {
		if !got[want] {
			t.Errorf("missing candidate %s (got %v)", want, cands)
		}
	}
	if got["<1 2 3>"] {
		t.Error("<1 2 3> should be pruned (<1 3> infrequent)")
	}
}

func TestGenerateCandidatesEmpty(t *testing.T) {
	if got := GenerateCandidates(nil); got != nil {
		t.Errorf("empty prev → %v", got)
	}
}

func TestMineTinyDataset(t *testing.T) {
	d := &Dataset{}
	d.Append(seq(1, 2, 3))
	d.Append(seq(1, 2, 3, 4))
	d.Append(seq(1, 3, 2))
	d.Append(seq(2, 1, 3))
	res, err := Mine(d, Options{AbsSupport: 3})
	if err != nil {
		t.Fatal(err)
	}
	// <1 3> appears in customers 1, 2, 3 (and 4? <2 1 3>: yes 1 before 3) → 4.
	if got := res.SupportOf(seq(1, 3)); got != 4 {
		t.Errorf("support(<1 3>) = %d, want 4", got)
	}
	// <1 2 3> appears in customers 1, 2 only → below support 3.
	if got := res.SupportOf(seq(1, 2, 3)); got != 0 {
		t.Errorf("<1 2 3> should be infrequent, got %d", got)
	}
	// <3 2> appears in customers 3 only → infrequent.
	if got := res.SupportOf(seq(3, 2)); got != 0 {
		t.Errorf("<3 2> support = %d", got)
	}
}

// TestMineSupportCeiling guards the fractional-threshold boundary: the
// minimum count must be the CEILING of MinSupport × customers, shared with
// itemset mining via apriori.CeilSupport. The old int64(...) truncation
// admitted patterns one customer short of the threshold, and a naive
// math.Ceil overshoots when the float product lands epsilon above an
// integer (0.01 × 300 must be 3, not 2 and not 4).
func TestMineSupportCeiling(t *testing.T) {
	build := func(n int) *Dataset {
		d := &Dataset{NumItems: 4}
		for c := 0; c < n; c++ {
			switch {
			case c < 3: // event 1 in exactly 3 customers
				d.Append(seq(1, 0))
			case c < 5: // event 2 in exactly 2 customers
				d.Append(seq(2, 0))
			default:
				d.Append(seq(0))
			}
		}
		return d
	}

	// 0.01 × 300 is an exact integer boundary: MinCount 3, so support 3 is
	// in and support 2 is out.
	res, err := Mine(build(300), Options{MinSupport: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if res.MinCount != 3 {
		t.Fatalf("0.01 × 300: MinCount = %d, want 3", res.MinCount)
	}
	if got := res.SupportOf(seq(1)); got != 3 {
		t.Errorf("<1> support = %d, want 3 (exactly at threshold)", got)
	}
	if got := res.SupportOf(seq(2)); got != 0 {
		t.Errorf("<2> reported frequent with support 2 < MinCount 3")
	}

	// 0.01 × 350 = 3.5 is fractional: "at least 1% of customers" means 4,
	// and the old truncation floor admitted support-3 patterns here.
	res, err = Mine(build(350), Options{MinSupport: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if res.MinCount != 4 {
		t.Fatalf("0.01 × 350: MinCount = %d, want 4 (ceiling of 3.5)", res.MinCount)
	}
	if got := res.SupportOf(seq(1)); got != 0 {
		t.Errorf("<1> (support 3, 0.857%%) reported frequent at 1%% of 350")
	}
}

// bruteMine enumerates frequent patterns exhaustively (grow-by-append over
// frequent events).
func bruteMine(d *Dataset, minCount int64, maxLen int) map[string]int64 {
	support := func(p Sequence) int64 {
		var c int64
		for _, s := range d.Sequences {
			if s.ContainsSubsequence(p) {
				c++
			}
		}
		return c
	}
	out := map[string]int64{}
	var frontier []Sequence
	for it := 0; it < d.NumItems; it++ {
		p := seq(itemset.Item(it))
		if c := support(p); c >= minCount {
			out[p.Key()] = c
			frontier = append(frontier, p)
		}
	}
	for l := 2; len(frontier) > 0 && (maxLen == 0 || l <= maxLen); l++ {
		var next []Sequence
		for _, base := range frontier {
			for it := 0; it < d.NumItems; it++ {
				cand := append(base.Clone(), itemset.Item(it))
				if c := support(cand); c >= minCount {
					out[cand.Key()] = c
					next = append(next, cand)
				}
			}
		}
		frontier = next
	}
	return out
}

func TestMineMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := &Dataset{NumItems: 12}
	for c := 0; c < 120; c++ {
		l := 2 + rng.Intn(8)
		s := make(Sequence, l)
		for i := range s {
			s[i] = itemset.Item(rng.Intn(12))
		}
		d.Append(s)
	}
	const minCount = 10
	want := bruteMine(d, minCount, 0)
	for _, hash := range []HashChoice{HashInterleaved, HashBitonic} {
		for _, procs := range []int{1, 4} {
			res, err := Mine(d, Options{AbsSupport: minCount, Procs: procs, Hash: hash})
			if err != nil {
				t.Fatal(err)
			}
			got := map[string]int64{}
			for _, f := range res.All() {
				got[f.Pattern.Key()] = f.Count
			}
			if len(got) != len(want) {
				t.Fatalf("hash=%v procs=%d: %d patterns, want %d", hash, procs, len(got), len(want))
			}
			for k, c := range want {
				if got[k] != c {
					t.Fatalf("hash=%v procs=%d: support mismatch (%d vs %d)", hash, procs, got[k], c)
				}
			}
		}
	}
}

func TestMineFindsPlantedPatterns(t *testing.T) {
	d, patterns, err := Generate(GenParams{C: 400, SeqLen: 12, NP: 8, PatLen: 3, N: 60, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Mine(d, Options{MinSupport: 0.05, Procs: 2, Hash: HashBitonic})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumPatterns() == 0 {
		t.Fatal("nothing mined")
	}
	// At least one planted pattern of length ≥2 should be found verbatim.
	found := 0
	for _, p := range patterns {
		if len(p) >= 2 && len(p) < len(res.ByLen) && res.SupportOf(p[:2]) > 0 {
			found++
		}
	}
	if found == 0 {
		t.Error("no planted pattern prefixes rediscovered")
	}
}

func TestMineMaxLen(t *testing.T) {
	d, _, _ := Generate(GenParams{C: 100, SeqLen: 10, NP: 5, PatLen: 3, N: 30, Seed: 7})
	res, err := Mine(d, Options{MinSupport: 0.05, MaxLen: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ByLen) > 3 {
		t.Errorf("MaxLen=2 produced %d levels", len(res.ByLen)-1)
	}
}

func TestMineEmptyDataset(t *testing.T) {
	res, err := Mine(&Dataset{NumItems: 5}, Options{MinSupport: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumPatterns() != 0 {
		t.Error("empty dataset mined patterns")
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, _, err := Generate(GenParams{C: -1, SeqLen: 5}); err == nil {
		t.Error("negative C should fail")
	}
	if _, _, err := Generate(GenParams{C: 10, SeqLen: 0}); err == nil {
		t.Error("zero SeqLen should fail")
	}
}

func TestGenerateDeterminism(t *testing.T) {
	a, _, _ := Generate(GenParams{C: 50, SeqLen: 8, Seed: 11})
	b, _, _ := Generate(GenParams{C: 50, SeqLen: 8, Seed: 11})
	if a.Len() != b.Len() {
		t.Fatal("lengths differ")
	}
	for i := range a.Sequences {
		if a.Sequences[i].Key() != b.Sequences[i].Key() {
			t.Fatal("sequences differ for same seed")
		}
	}
}

func TestRepeatedEventsInPatterns(t *testing.T) {
	// Patterns with repeats must be representable and countable.
	d := &Dataset{}
	d.Append(seq(7, 7, 7))
	d.Append(seq(7, 1, 7, 2, 7))
	d.Append(seq(7, 7))
	res, err := Mine(d, Options{AbsSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.SupportOf(seq(7, 7)); got != 3 {
		t.Errorf("support(<7 7>) = %d, want 3", got)
	}
	if got := res.SupportOf(seq(7, 7, 7)); got != 2 {
		t.Errorf("support(<7 7 7>) = %d, want 2", got)
	}
}

func TestTrieBalanceBitonic(t *testing.T) {
	// Bitonic rank hashing should not lose patterns vs interleaved.
	rng := rand.New(rand.NewSource(9))
	var cands []Sequence
	for i := 0; i < 200; i++ {
		cands = append(cands, seq(itemset.Item(rng.Intn(40)), itemset.Item(rng.Intn(40)), itemset.Item(rng.Intn(40))))
	}
	labels := make([]int32, 40)
	for i := range labels {
		labels[i] = int32(i)
	}
	for _, choice := range []HashChoice{HashInterleaved, HashBitonic} {
		tr := newTrie(3, 4, labels, choice)
		seen := map[string]bool{}
		for _, c := range cands {
			if !seen[c.Key()] {
				seen[c.Key()] = true
				tr.insert(c)
			}
		}
		if tr.numPatterns() != len(seen) {
			t.Errorf("%v: %d patterns stored, want %d", choice, tr.numPatterns(), len(seen))
		}
	}
}
