package seqpat

import (
	"repro/internal/hashtree"
	"repro/internal/itemset"
	"repro/internal/partition"
)

// HashChoice selects the trie cell hash function.
type HashChoice int

const (
	// HashInterleaved is id mod H.
	HashInterleaved HashChoice = iota
	// HashBitonic hashes frequent-event ranks with the bitonic function —
	// the Section 4.1 balancing technique carried over to sequences.
	HashBitonic
)

// fanoutFor applies the paper's adaptive fan-out rule to the candidate
// count.
func fanoutFor(numCands, k int) int {
	return hashtree.AdaptiveFanout(int64(numCands), 8, k)
}

// trie is the shared candidate structure for length-k patterns: an ordered
// analogue of the candidate hash tree. An internal node at depth d hashes a
// pattern's d-th event; leaves hold pattern id lists. Patterns may repeat
// events, so storage is a flat event arena rather than itemset.Itemset.
type trie struct {
	k      int
	fanout int
	choice HashChoice
	labels []int32
	nodes  []trieNode
	pats   []itemset.Item // flat, k per pattern
	nPat   int32
	thresh int
	// hashVec is precomputed at construction (immutable afterwards) so
	// concurrent counting goroutines can share it without synchronization.
	hashVec []int32
}

type trieNode struct {
	depth    int32
	children []int32
	items    []int32
}

func (n *trieNode) isLeaf() bool { return n.children == nil }

func newTrie(k, fanout int, labels []int32, choice HashChoice) *trie {
	t := &trie{k: k, fanout: fanout, choice: choice, labels: labels, thresh: 8}
	t.nodes = append(t.nodes, trieNode{depth: 0})
	t.hashVec = make([]int32, len(labels))
	for i := range t.hashVec {
		t.hashVec[i] = t.cellSlow(itemset.Item(i))
	}
	return t
}

// cellSlow computes the hash without the precomputed vector.
func (t *trie) cellSlow(it itemset.Item) int32 {
	key := int(it)
	if t.choice == HashBitonic && int(it) < len(t.labels) && t.labels[it] >= 0 {
		key = int(t.labels[it])
	}
	if t.choice == HashBitonic {
		return int32(partition.BitonicHash(key, t.fanout))
	}
	return int32(key % t.fanout)
}

func (t *trie) cell(it itemset.Item) int32 {
	if int(it) < len(t.hashVec) && it >= 0 {
		return t.hashVec[it]
	}
	return t.cellSlow(it)
}

func (t *trie) numPatterns() int { return int(t.nPat) }

func (t *trie) pattern(id int32) Sequence {
	return Sequence(t.pats[int(id)*t.k : int(id)*t.k+t.k]).Clone()
}

func (t *trie) patternView(id int32) Sequence {
	return Sequence(t.pats[int(id)*t.k : int(id)*t.k+t.k])
}

// insert is single-threaded (the build phase is cheap relative to counting;
// the paper's parallel build applies identically but is not needed here).
func (t *trie) insert(p Sequence) int32 {
	id := t.nPat
	t.nPat++
	t.pats = append(t.pats, p...)
	cur := int32(0)
	for {
		n := &t.nodes[cur]
		if n.isLeaf() {
			n.items = append(n.items, id)
			if len(n.items) > t.thresh && int(n.depth) < t.k {
				t.split(cur)
			}
			return id
		}
		c := t.cell(p[n.depth])
		child := n.children[c]
		if child < 0 {
			child = int32(len(t.nodes))
			t.nodes = append(t.nodes, trieNode{depth: n.depth + 1})
			t.nodes[cur].children[c] = child
		}
		cur = child
	}
}

func (t *trie) split(id int32) {
	n := &t.nodes[id]
	n.children = make([]int32, t.fanout)
	for i := range n.children {
		n.children[i] = -1
	}
	old := n.items
	n.items = nil
	depth := n.depth
	for _, pid := range old {
		p := t.patternView(pid)
		c := t.cell(p[depth])
		child := t.nodes[id].children[c]
		if child < 0 {
			child = int32(len(t.nodes))
			t.nodes = append(t.nodes, trieNode{depth: depth + 1})
			t.nodes[id].children[c] = child
		}
		cn := &t.nodes[child]
		cn.items = append(cn.items, pid)
		if len(cn.items) > t.thresh && int(cn.depth) < t.k {
			t.split(child)
		}
	}
}

// trieCtx is one processor's counting state: per-depth cell epochs (the
// k·H visited scheme) — always short-circuited; sequences give the same
// superset-coverage guarantee as sets.
type trieCtx struct {
	t     *trie
	visit [][]uint64
	epoch []uint64
}

func (t *trie) newCtx() *trieCtx {
	ctx := &trieCtx{t: t}
	ctx.visit = make([][]uint64, t.k+1)
	for d := range ctx.visit {
		ctx.visit[d] = make([]uint64, t.fanout)
	}
	ctx.epoch = make([]uint64, t.k+1)
	return ctx
}

// countSequence increments counts for every pattern that is a subsequence
// of s.
func (ctx *trieCtx) countSequence(s Sequence, counts []int64) {
	if len(s) < ctx.t.k {
		return
	}
	ctx.walk(0, s, 0, counts)
}

func (ctx *trieCtx) walk(id int32, s Sequence, start int, counts []int64) {
	t := ctx.t
	n := &t.nodes[id]
	if n.isLeaf() {
		for _, pid := range n.items {
			if s.ContainsSubsequence(t.patternView(pid)) {
				counts[pid]++
			}
		}
		return
	}
	d := int(n.depth)
	ctx.epoch[d]++
	ep := ctx.epoch[d]
	row := ctx.visit[d]
	limit := len(s) - t.k + d
	for i := start; i <= limit; i++ {
		c := t.cell(s[i])
		if row[c] == ep {
			continue
		}
		row[c] = ep
		child := n.children[c]
		if child < 0 {
			continue
		}
		ctx.walk(child, s, i+1, counts)
	}
}
