package seqpat

import (
	"fmt"
	"math/rand"

	"repro/internal/itemset"
)

// GenParams configures the synthetic customer-sequence generator, the
// sequential analogue of the Quest basket generator: NP source patterns of
// mean length PatLen are planted into C customer sequences of mean length
// SeqLen, with noise events mixed in.
type GenParams struct {
	C      int     // number of customers
	SeqLen int     // mean sequence length
	NP     int     // number of source patterns
	PatLen int     // mean source pattern length
	N      int     // event universe size
	Noise  float64 // probability an emitted event is random noise
	Seed   int64
}

func (p GenParams) withDefaults() GenParams {
	if p.N == 0 {
		p.N = 500
	}
	if p.NP == 0 {
		p.NP = 50
	}
	if p.PatLen == 0 {
		p.PatLen = 4
	}
	if p.Noise == 0 {
		p.Noise = 0.25
	}
	return p
}

// Validate rejects impossible parameters.
func (p GenParams) Validate() error {
	p = p.withDefaults()
	if p.C < 0 || p.SeqLen < 1 || p.NP < 1 || p.PatLen < 1 || p.N < 1 {
		return fmt.Errorf("seqpat: invalid generator params %+v", p)
	}
	return nil
}

// Generate builds the dataset and also returns the planted source patterns.
func Generate(p GenParams) (*Dataset, []Sequence, error) {
	p = p.withDefaults()
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	patterns := make([]Sequence, p.NP)
	for i := range patterns {
		l := 1 + rng.Intn(2*p.PatLen-1) // mean ≈ PatLen
		s := make(Sequence, l)
		for j := range s {
			s[j] = itemset.Item(rng.Intn(p.N))
		}
		patterns[i] = s
	}
	d := &Dataset{NumItems: p.N}
	for c := 0; c < p.C; c++ {
		target := 1 + rng.Intn(2*p.SeqLen-1)
		seq := make(Sequence, 0, target)
		for len(seq) < target {
			if rng.Float64() < p.Noise {
				seq = append(seq, itemset.Item(rng.Intn(p.N)))
				continue
			}
			// Interleave a planted pattern, possibly truncated.
			pat := patterns[rng.Intn(p.NP)]
			take := len(pat)
			if room := target - len(seq); take > room {
				take = room
			}
			seq = append(seq, pat[:take]...)
		}
		d.Append(seq)
	}
	return d, patterns, nil
}
