package eclat

import (
	"context"
	"errors"
	"testing"

	"repro/internal/apriori"
	"repro/internal/db"
	"repro/internal/gen"
	"repro/internal/itemset"
	"repro/internal/robust"
	"repro/internal/vbit"
)

func flat(res *apriori.Result) map[string]int64 {
	out := map[string]int64{}
	for _, f := range res.All() {
		out[f.Items.Key()] = f.Count
	}
	return out
}

func TestEclatMatchesApriori(t *testing.T) {
	d, err := gen.Generate(gen.Params{N: 60, L: 15, I: 4, T: 8, D: 600, Seed: 55})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := apriori.Mine(d, apriori.Options{MinSupport: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	want := flat(ref)
	for _, procs := range []int{1, 4} {
		res, err := Mine(d, Options{MinSupport: 0.02, Procs: procs})
		if err != nil {
			t.Fatal(err)
		}
		got := flat(res)
		if len(got) != len(want) {
			t.Fatalf("procs=%d: %d frequent, want %d", procs, len(got), len(want))
		}
		for k, c := range want {
			if got[k] != c {
				s, _ := itemset.ParseKey(k)
				t.Fatalf("procs=%d: %v = %d, want %d", procs, s, got[k], c)
			}
		}
	}
}

func TestEclatWorkedExample(t *testing.T) {
	// Section 2.1.3 example database, support 2.
	d := db.New(6)
	d.Append(1, itemset.New(1, 4, 5))
	d.Append(2, itemset.New(1, 2))
	d.Append(3, itemset.New(3, 4, 5))
	d.Append(4, itemset.New(1, 2, 4, 5))
	res, err := Mine(d, Options{AbsSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.SupportOf(itemset.New(1, 4, 5)); got != 2 {
		t.Errorf("support(145) = %d, want 2", got)
	}
	if got := res.SupportOf(itemset.New(4, 5)); got != 3 {
		t.Errorf("support(45) = %d, want 3", got)
	}
	if res.NumFrequent() != 4+4+1 {
		t.Errorf("NumFrequent = %d, want 9", res.NumFrequent())
	}
}

func TestEclatMaxK(t *testing.T) {
	d, _ := gen.Generate(gen.Params{N: 40, L: 10, I: 3, T: 6, D: 300, Seed: 2})
	res, err := Mine(d, Options{MinSupport: 0.02, MaxK: 2})
	if err != nil {
		t.Fatal(err)
	}
	for k := 3; k < len(res.ByK); k++ {
		if len(res.ByK[k]) != 0 {
			t.Errorf("MaxK=2 produced %d-itemsets", k)
		}
	}
}

func TestEclatEmpty(t *testing.T) {
	res, err := Mine(db.New(5), Options{MinSupport: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumFrequent() != 0 {
		t.Error("empty database mined itemsets")
	}
}

func TestIntersect(t *testing.T) {
	// The package-local intersect helper is gone: eclat now runs on the
	// shared vbit.IntersectInto kernel through a scratch buffer.
	a := tidlist{1, 3, 5, 7}
	b := tidlist{2, 3, 6, 7, 9}
	scratch := make(tidlist, len(a))
	n := vbit.IntersectInto(scratch, a, b)
	if got := scratch[:n]; len(got) != 2 || got[0] != 3 || got[1] != 7 {
		t.Errorf("IntersectInto = %v", got)
	}
	if n := vbit.IntersectInto(scratch, a, nil); n != 0 {
		t.Errorf("IntersectInto with nil = %d entries", n)
	}
}

func TestMineCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	d, _ := gen.Generate(gen.Params{N: 40, L: 10, I: 3, T: 6, D: 300, Seed: 2})
	res, err := MineCtx(ctx, d, Options{MinSupport: 0.02})
	var ce *robust.CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *robust.CanceledError", err)
	}
	if res != nil {
		t.Error("pre-canceled run returned a result")
	}
}

// TestMineCtxMidRun cancels concurrently with the class tasks: whatever
// classes completed must carry supports matching the full run, and the
// error (when the cancel lands in time) names the interrupted phase.
func TestMineCtxMidRun(t *testing.T) {
	d, err := gen.Generate(gen.Params{N: 60, L: 15, I: 4, T: 8, D: 600, Seed: 55})
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{MinSupport: 0.02, Procs: 2}
	want, err := Mine(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go cancel()
	res, err := MineCtx(ctx, d, opts)
	if err != nil {
		var ce *robust.CanceledError
		if !errors.As(err, &ce) {
			t.Fatalf("err = %v, want *robust.CanceledError", err)
		}
		if res == nil {
			return // canceled before F1 finished: no partial by contract
		}
	}
	for k := 2; k < len(res.ByK); k++ {
		for _, f := range res.ByK[k] {
			if want.SupportOf(f.Items) != f.Count {
				t.Fatalf("partial result %v/%d disagrees with full run", f.Items, f.Count)
			}
		}
	}
}
