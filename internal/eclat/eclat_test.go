package eclat

import (
	"testing"

	"repro/internal/apriori"
	"repro/internal/db"
	"repro/internal/gen"
	"repro/internal/itemset"
)

func flat(res *apriori.Result) map[string]int64 {
	out := map[string]int64{}
	for _, f := range res.All() {
		out[f.Items.Key()] = f.Count
	}
	return out
}

func TestEclatMatchesApriori(t *testing.T) {
	d, err := gen.Generate(gen.Params{N: 60, L: 15, I: 4, T: 8, D: 600, Seed: 55})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := apriori.Mine(d, apriori.Options{MinSupport: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	want := flat(ref)
	for _, procs := range []int{1, 4} {
		res, err := Mine(d, Options{MinSupport: 0.02, Procs: procs})
		if err != nil {
			t.Fatal(err)
		}
		got := flat(res)
		if len(got) != len(want) {
			t.Fatalf("procs=%d: %d frequent, want %d", procs, len(got), len(want))
		}
		for k, c := range want {
			if got[k] != c {
				s, _ := itemset.ParseKey(k)
				t.Fatalf("procs=%d: %v = %d, want %d", procs, s, got[k], c)
			}
		}
	}
}

func TestEclatWorkedExample(t *testing.T) {
	// Section 2.1.3 example database, support 2.
	d := db.New(6)
	d.Append(1, itemset.New(1, 4, 5))
	d.Append(2, itemset.New(1, 2))
	d.Append(3, itemset.New(3, 4, 5))
	d.Append(4, itemset.New(1, 2, 4, 5))
	res, err := Mine(d, Options{AbsSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.SupportOf(itemset.New(1, 4, 5)); got != 2 {
		t.Errorf("support(145) = %d, want 2", got)
	}
	if got := res.SupportOf(itemset.New(4, 5)); got != 3 {
		t.Errorf("support(45) = %d, want 3", got)
	}
	if res.NumFrequent() != 4+4+1 {
		t.Errorf("NumFrequent = %d, want 9", res.NumFrequent())
	}
}

func TestEclatMaxK(t *testing.T) {
	d, _ := gen.Generate(gen.Params{N: 40, L: 10, I: 3, T: 6, D: 300, Seed: 2})
	res, err := Mine(d, Options{MinSupport: 0.02, MaxK: 2})
	if err != nil {
		t.Fatal(err)
	}
	for k := 3; k < len(res.ByK); k++ {
		if len(res.ByK[k]) != 0 {
			t.Errorf("MaxK=2 produced %d-itemsets", k)
		}
	}
}

func TestEclatEmpty(t *testing.T) {
	res, err := Mine(db.New(5), Options{MinSupport: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumFrequent() != 0 {
		t.Error("empty database mined itemsets")
	}
}

func TestIntersect(t *testing.T) {
	a := tidlist{1, 3, 5, 7}
	b := tidlist{2, 3, 6, 7, 9}
	got := intersect(a, b)
	if len(got) != 2 || got[0] != 3 || got[1] != 7 {
		t.Errorf("intersect = %v", got)
	}
	if got := intersect(a, nil); len(got) != 0 {
		t.Errorf("intersect with nil = %v", got)
	}
}
