package eclat

import (
	"testing"

	"repro/internal/db"
	"repro/internal/itemset"
)

// TestFractionalSupportBoundary is Eclat's face of the support-threshold
// regression: its minCount used to duplicate apriori's floor arithmetic, so
// at MinSupport 0.01 over 300 transactions (product 2.999…97) it admitted
// 2-occurrence itemsets. Both engines now share apriori.CeilSupport, and 2
// occurrences must be below the threshold of 3.
func TestFractionalSupportBoundary(t *testing.T) {
	d := db.New(4)
	for i := 0; i < 300; i++ {
		switch {
		case i < 2:
			d.Append(int64(i), itemset.New(0, 1, 3))
		case i < 3:
			d.Append(int64(i), itemset.New(2, 3))
		case i < 5:
			d.Append(int64(i), itemset.New(2))
		default:
			d.Append(int64(i), itemset.New(3))
		}
	}
	res, err := Mine(d, Options{MinSupport: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if res.MinCount != 3 {
		t.Fatalf("MinCount = %d, want 3 (ceil of 0.01×300)", res.MinCount)
	}
	if got := res.SupportOf(itemset.New(0, 1)); got != 0 {
		t.Errorf("{0,1} with 2 occurrences reported frequent (support %d)", got)
	}
	if got := res.SupportOf(itemset.New(2)); got != 3 {
		t.Errorf("{2} support = %d, want 3", got)
	}
}
