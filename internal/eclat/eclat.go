// Package eclat implements the vertical-database association miner of the
// authors' follow-up work (Zaki, Parthasarathy, Ogihara & Li 1997 — cited
// throughout Section 7 as the successor with "excellent locality since only
// simple intersection operations are used"). The database is turned into
// per-item transaction-id lists; frequent itemsets grow by intersecting
// tidlists within prefix equivalence classes, depth first. Results match
// Apriori exactly; the cost structure (no hash tree, no rescans — pure
// intersections) is the contrast the paper draws.
package eclat

import (
	"sort"
	"sync"

	"repro/internal/apriori"
	"repro/internal/db"
	"repro/internal/itemset"
)

// Options configures a run.
type Options struct {
	// MinSupport as a fraction of |D|; AbsSupport overrides when > 0.
	MinSupport float64
	AbsSupport int64
	// MaxK bounds itemset size (0 = unbounded).
	MaxK int
	// Procs parallelizes over the first-level equivalence classes, the
	// natural task decomposition of the authors' parallel Eclat.
	Procs int
}

// minCount resolves the support threshold through the shared ceiling
// computation (apriori.CeilSupport) — this used to duplicate apriori's
// floor arithmetic, so both engines admitted itemsets below the requested
// fractional support and the bug had to be fixed in two places.
func (o Options) minCount(n int) int64 {
	if o.AbsSupport > 0 {
		return o.AbsSupport
	}
	return apriori.CeilSupport(o.MinSupport, n)
}

// tidlist is a sorted list of transaction indices.
type tidlist []int32

// intersect returns the sorted intersection a ∩ b.
func intersect(a, b tidlist) tidlist {
	out := make(tidlist, 0, min(len(a), len(b)))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Mine runs Eclat and returns the result in apriori.Result form so callers
// (and tests) can compare directly.
func Mine(d *db.Database, opts Options) (*apriori.Result, error) {
	if opts.Procs < 1 {
		opts.Procs = 1
	}
	minCount := opts.minCount(d.Len())
	res := &apriori.Result{MinCount: minCount, ByK: make([][]apriori.FrequentItemset, 2)}

	// Vertical transformation: one tidlist per item.
	lists := make([]tidlist, d.NumItems())
	for t := 0; t < d.Len(); t++ {
		for _, it := range d.Items(t) {
			lists[it] = append(lists[it], int32(t))
		}
	}
	type headItem struct {
		item itemset.Item
		tids tidlist
	}
	var f1 []headItem
	for it, l := range lists {
		if int64(len(l)) >= minCount {
			f1 = append(f1, headItem{itemset.Item(it), l})
			res.ByK[1] = append(res.ByK[1], apriori.FrequentItemset{
				Items: itemset.New(itemset.Item(it)), Count: int64(len(l)),
			})
		}
	}
	if opts.MaxK == 1 || len(f1) == 0 {
		return res, nil
	}

	// Depth-first growth within prefix classes. Each first-level class
	// (anchored at one frequent item) is an independent task.
	type found struct {
		items itemset.Itemset
		count int64
	}
	results := make([][]found, len(f1))
	var wg sync.WaitGroup
	sem := make(chan struct{}, opts.Procs)
	for i := range f1 {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			var out []found
			prefix := itemset.New(f1[i].item)
			// Sibling tails: items after i with their tidlists.
			type node struct {
				item itemset.Item
				tids tidlist
			}
			var grow func(prefix itemset.Itemset, siblings []node)
			grow = func(prefix itemset.Itemset, siblings []node) {
				if opts.MaxK > 0 && prefix.K() >= opts.MaxK {
					return
				}
				for a := 0; a < len(siblings); a++ {
					ext := prefix.Union(itemset.New(siblings[a].item))
					out = append(out, found{ext, int64(len(siblings[a].tids))})
					var next []node
					for b := a + 1; b < len(siblings); b++ {
						x := intersect(siblings[a].tids, siblings[b].tids)
						if int64(len(x)) >= minCount {
							next = append(next, node{siblings[b].item, x})
						}
					}
					if len(next) > 0 {
						grow(ext, next)
					}
				}
			}
			var sib []node
			for j := i + 1; j < len(f1); j++ {
				x := intersect(f1[i].tids, f1[j].tids)
				if int64(len(x)) >= minCount {
					sib = append(sib, node{f1[j].item, x})
				}
			}
			if len(sib) > 0 {
				grow(prefix, sib)
			}
			results[i] = out
		}(i)
	}
	wg.Wait()

	for _, out := range results {
		for _, f := range out {
			k := f.items.K()
			for len(res.ByK) <= k {
				res.ByK = append(res.ByK, nil)
			}
			res.ByK[k] = append(res.ByK[k], apriori.FrequentItemset{Items: f.items, Count: f.count})
		}
	}
	for k := range res.ByK {
		fk := res.ByK[k]
		sort.Slice(fk, func(i, j int) bool { return fk[i].Items.Less(fk[j].Items) })
	}
	return res, nil
}
