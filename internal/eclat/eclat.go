// Package eclat implements the vertical-database association miner of the
// authors' follow-up work (Zaki, Parthasarathy, Ogihara & Li 1997 — cited
// throughout Section 7 as the successor with "excellent locality since only
// simple intersection operations are used"). The database is turned into
// per-item transaction-id lists; frequent itemsets grow by intersecting
// tidlists within prefix equivalence classes, depth first. Results match
// Apriori exactly; the cost structure (no hash tree, no rescans — pure
// intersections) is the contrast the paper draws.
//
// The intersection itself runs on the shared vbit.IntersectInto kernel
// through a per-class scratch buffer: a candidate extension costs zero
// allocations unless it turns out frequent, in which case only the
// surviving tidlist is copied out. (The engine previously allocated a
// fresh tidlist for every probed pair, frequent or not.)
package eclat

import (
	"context"
	"sort"
	"sync"

	"repro/internal/apriori"
	"repro/internal/db"
	"repro/internal/itemset"
	"repro/internal/robust"
	"repro/internal/vbit"
)

// Options configures a run.
type Options struct {
	// MinSupport as a fraction of |D|; AbsSupport overrides when > 0.
	MinSupport float64
	AbsSupport int64
	// MaxK bounds itemset size (0 = unbounded).
	MaxK int
	// Procs parallelizes over the first-level equivalence classes, the
	// natural task decomposition of the authors' parallel Eclat.
	Procs int
}

// minCount resolves the support threshold through the shared ceiling
// computation (apriori.CeilSupport) — this used to duplicate apriori's
// floor arithmetic, so both engines admitted itemsets below the requested
// fractional support and the bug had to be fixed in two places.
func (o Options) minCount(n int) int64 {
	if o.AbsSupport > 0 {
		return o.AbsSupport
	}
	return apriori.CeilSupport(o.MinSupport, n)
}

// tidlist is a sorted list of transaction indices.
type tidlist []int32

// Mine runs Eclat and returns the result in apriori.Result form so callers
// (and tests) can compare directly.
func Mine(d *db.Database, opts Options) (*apriori.Result, error) {
	return MineCtx(context.Background(), d, opts)
}

// MineCtx runs Eclat under a context, honoring the same cancellation
// contract as CCPD/PCCD: cancellation is observed at equivalence-class
// granularity (each first-level class is one task), and a cancelled run
// returns the partial result — every class completed before the
// cancellation point — together with a *robust.CanceledError.
//
//armlint:cancellable
func MineCtx(ctx context.Context, d *db.Database, opts Options) (*apriori.Result, error) {
	if opts.Procs < 1 {
		opts.Procs = 1
	}
	if err := robust.Canceled(ctx, "f1", 1); err != nil {
		return nil, err
	}
	minCount := opts.minCount(d.Len())
	res := &apriori.Result{MinCount: minCount, ByK: make([][]apriori.FrequentItemset, 2)}

	// Vertical transformation: one tidlist per item. The pass can dominate
	// the runtime on large sparse databases, so it polls for cancellation
	// every 4096 transactions rather than only at the phase boundary.
	lists := make([]tidlist, d.NumItems())
	for t := 0; t < d.Len(); t++ {
		if t&0xfff == 0 {
			if err := robust.Canceled(ctx, "f1", 1); err != nil {
				return nil, err
			}
		}
		for _, it := range d.Items(t) {
			lists[it] = append(lists[it], int32(t))
		}
	}
	type headItem struct {
		item itemset.Item
		tids tidlist
	}
	var f1 []headItem
	for it, l := range lists {
		if int64(len(l)) >= minCount {
			f1 = append(f1, headItem{itemset.Item(it), l})
			res.ByK[1] = append(res.ByK[1], apriori.FrequentItemset{
				Items: itemset.New(itemset.Item(it)), Count: int64(len(l)),
			})
		}
	}
	if opts.MaxK == 1 || len(f1) == 0 {
		return res, nil
	}

	// Depth-first growth within prefix classes. Each first-level class
	// (anchored at one frequent item) is an independent task; a class
	// claimed after cancellation is skipped, so the partial result holds
	// exactly the classes that completed.
	type found struct {
		items itemset.Itemset
		count int64
	}
	results := make([][]found, len(f1))
	done := make([]bool, len(f1))
	var wg sync.WaitGroup
	sem := make(chan struct{}, opts.Procs)
	for i := range f1 {
		if ctx.Err() != nil {
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			if ctx.Err() != nil {
				return
			}
			var out []found
			// One scratch tidlist per class task: every intersection lands
			// here first and is copied out only when frequent.
			scratch := make(tidlist, d.Len())
			intersect := func(a, b tidlist) tidlist {
				n := vbit.IntersectInto(scratch, a, b)
				if int64(n) < minCount {
					return nil
				}
				out := make(tidlist, n)
				copy(out, scratch[:n])
				return out
			}
			prefix := itemset.New(f1[i].item)
			// Sibling tails: items after i with their tidlists.
			type node struct {
				item itemset.Item
				tids tidlist
			}
			var grow func(prefix itemset.Itemset, siblings []node)
			grow = func(prefix itemset.Itemset, siblings []node) {
				if opts.MaxK > 0 && prefix.K() >= opts.MaxK {
					return
				}
				for a := 0; a < len(siblings); a++ {
					ext := prefix.Union(itemset.New(siblings[a].item))
					out = append(out, found{ext, int64(len(siblings[a].tids))})
					var next []node
					for b := a + 1; b < len(siblings); b++ {
						if x := intersect(siblings[a].tids, siblings[b].tids); x != nil {
							next = append(next, node{siblings[b].item, x})
						}
					}
					if len(next) > 0 {
						grow(ext, next)
					}
				}
			}
			var sib []node
			for j := i + 1; j < len(f1); j++ {
				if x := intersect(f1[i].tids, f1[j].tids); x != nil {
					sib = append(sib, node{f1[j].item, x})
				}
			}
			if len(sib) > 0 {
				grow(prefix, sib)
			}
			results[i] = out
			done[i] = true
		}(i)
	}
	wg.Wait()

	for i, out := range results {
		if !done[i] {
			continue
		}
		for _, f := range out {
			k := f.items.K()
			for len(res.ByK) <= k {
				res.ByK = append(res.ByK, nil)
			}
			res.ByK[k] = append(res.ByK[k], apriori.FrequentItemset{Items: f.items, Count: f.count})
		}
	}
	for k := range res.ByK {
		fk := res.ByK[k]
		sort.Slice(fk, func(i, j int) bool { return fk[i].Items.Less(fk[j].Items) })
	}
	if err := robust.Canceled(ctx, "count", 2); err != nil {
		return res, err
	}
	return res, nil
}
