package ccpd

import (
	"testing"
	"time"

	"repro/internal/apriori"
	"repro/internal/gen"
)

// optsFor builds mining options at a support fraction.
func optsFor(sup float64) apriori.Options {
	return apriori.Options{MinSupport: sup, ShortCircuit: true}
}

func TestPhaseTimingModelTime(t *testing.T) {
	pt := PhaseTiming{
		GenWork:    []int64{10, 30, 20},
		CountWork:  []int64{100, 150, 120},
		BuildWork:  90,
		ReduceWork: 5,
	}
	// max(gen)=30 + build/3=30 + max(count)=150 + reduce=5 = 215.
	if got := pt.ModelTime(3); got != 215 {
		t.Errorf("ModelTime = %d, want 215", got)
	}
	// Zero procs: build term skipped.
	if got := pt.ModelTime(0); got != 185 {
		t.Errorf("ModelTime(0) = %d, want 185", got)
	}
	// Empty phases.
	empty := PhaseTiming{}
	if got := empty.ModelTime(4); got != 0 {
		t.Errorf("empty ModelTime = %d", got)
	}
}

func TestStatsModelTimeSums(t *testing.T) {
	s := Stats{
		Procs: 2,
		PerIter: []PhaseTiming{
			{CountWork: []int64{10, 20}},
			{CountWork: []int64{5, 5}, ReduceWork: 1},
		},
	}
	if got := s.ModelTime(); got != 20+5+1 {
		t.Errorf("Stats.ModelTime = %d", got)
	}
}

func TestModelTimeDecreasesWithProcs(t *testing.T) {
	d := testDB(t)
	var prev int64
	for i, procs := range []int{1, 2, 4, 8} {
		_, st, err := Mine(d, Options{
			Options: optsFor(0.01), Procs: procs,
			Balance: BalanceBitonic, AdaptiveMinUnits: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		mt := st.ModelTime()
		if i > 0 && mt >= prev {
			t.Errorf("ModelTime did not shrink at P=%d: %d >= %d", procs, mt, prev)
		}
		prev = mt
	}
}

// TestModelTimePinned pins the deterministic work-model totals on a fixed
// dataset, per partition mode. The model is the substitute for parallel
// wall-clock (see DESIGN.md), so layout or traversal rewrites of the
// counting kernel must leave these numbers bit-identical; a change here
// means the cost model moved, which invalidates the regenerated figures
// until re-derived.
//
// The per-mode figures differ only through iteration balance: at procs=1
// every mode must agree exactly (work is conserved), dynamic and stealing
// share the greedy list-schedule model, and workload's static heuristic
// lands in between. Before the k=1 attribution fix, all four modes wrongly
// reported the block figure.
func TestModelTimePinned(t *testing.T) {
	d, err := gen.Generate(gen.Params{T: 10, I: 4, D: 2000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := map[DBPartition]map[int]int64{
		PartitionBlock:    {1: 13435543, 4: 3719619},
		PartitionWorkload: {1: 13435543, 4: 3633905},
		PartitionDynamic:  {1: 13435543, 4: 3689075},
		PartitionStealing: {1: 13435543, 4: 3689075},
	}
	for part, byProcs := range want {
		for _, procs := range []int{1, 4} {
			_, st, err := Mine(d, Options{
				Options: apriori.Options{AbsSupport: 10, ShortCircuit: true},
				Procs:   procs, Balance: BalanceBitonic, AdaptiveMinUnits: 1,
				DBPart: part,
			})
			if err != nil {
				t.Fatal(err)
			}
			if got := st.ModelTime(); got != byProcs[procs] {
				t.Errorf("%s procs=%d: ModelTime = %d, want %d (work model changed)",
					part, procs, got, byProcs[procs])
			}
		}
	}
}

// TestIterOneCountWorkConserved asserts the k=1 attribution fix: every
// partition mode distributes the same total iteration-1 work (work is
// conserved across partitionings), and the dynamic modes report the greedy
// list-schedule rather than the block split.
func TestIterOneCountWorkConserved(t *testing.T) {
	d := testDB(t)
	var blockTotal int64
	for _, part := range []DBPartition{PartitionBlock, PartitionWorkload, PartitionDynamic, PartitionStealing} {
		opts := Options{
			Options: optsFor(0.01), Procs: 4, DBPart: part,
		}.withDefaults()
		work := iterOneCountWork(d, opts)
		if len(work) != 4 {
			t.Fatalf("%s: %d entries, want 4", part, len(work))
		}
		var total int64
		for _, w := range work {
			total += w
		}
		if part == PartitionBlock {
			blockTotal = total
		} else if total != blockTotal {
			t.Errorf("%s: total k=1 work %d, want %d (conservation)", part, total, blockTotal)
		}
	}
}

func TestTotalTimePositive(t *testing.T) {
	d := testDB(t)
	_, st, err := Mine(d, Options{Options: optsFor(0.02), Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	var phases time.Duration
	for _, it := range st.PerIter {
		phases += it.CandGen + it.TreeBuild + it.Count + it.Reduce
	}
	if phases <= 0 || st.Total < phases/2 {
		t.Errorf("timing inconsistent: total %v, phases %v", st.Total, phases)
	}
}
