package ccpd

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/apriori"
	"repro/internal/db"
	"repro/internal/gen"
	"repro/internal/robust"
	"repro/internal/robust/faultinj"
)

// robustOpts is the base option set of the robustness tests: 4 processors,
// a small chunk so the dynamic modes have plenty of claims, and the bitonic
// balance the paper defaults to.
func robustOpts() Options {
	return Options{
		Options: apriori.Options{MinSupport: 0.01, ShortCircuit: true},
		Procs:   4, Balance: BalanceBitonic, ChunkSize: 64,
	}
}

// assertIdenticalByK asserts bit-identical frequent sets: same levels, same
// order, same items, same counts. Level 0 is normalized (the checkpoint
// reader materializes it as an empty slice where a fresh run leaves nil).
func assertIdenticalByK(t *testing.T, label string, got, want [][]apriori.FrequentItemset) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d levels, want %d", label, len(got), len(want))
	}
	for k := 1; k < len(want); k++ {
		if len(got[k]) != len(want[k]) {
			t.Fatalf("%s: level %d has %d sets, want %d", label, k, len(got[k]), len(want[k]))
		}
		for i := range want[k] {
			if !reflect.DeepEqual(got[k][i], want[k][i]) {
				t.Fatalf("%s: level %d entry %d = %+v, want %+v", label, k, i, got[k][i], want[k][i])
			}
		}
	}
}

// TestPanicContainedPerPhase injects a worker panic into every phase of the
// CCPD pipeline and asserts it surfaces as a *robust.WorkerPanicError naming
// the phase and iteration — with the process (and the test binary) alive.
func TestPanicContainedPerPhase(t *testing.T) {
	d := testDB(t)
	cases := []struct {
		phase string
		k     int
	}{
		{"f1", 1},
		{"gen", 2},
		{"build", 2},
		{"count", 2},
		{"reduce", 2},
	}
	for _, c := range cases {
		opts := robustOpts()
		opts.FaultInj = faultinj.New(faultinj.Rule{
			Phase: c.phase, K: c.k, Worker: faultinj.Wildcard, Chunk: faultinj.Wildcard,
			Action: faultinj.Panic, Once: true,
		})
		res, stats, err := Mine(d, opts)
		var wp *robust.WorkerPanicError
		if !errors.As(err, &wp) {
			t.Fatalf("phase %s: Mine returned %v, want WorkerPanicError", c.phase, err)
		}
		if wp.Phase != c.phase || wp.K != c.k {
			t.Errorf("phase %s: error names phase=%s k=%d, want %s/%d", c.phase, wp.Phase, wp.K, c.phase, c.k)
		}
		if !strings.Contains(err.Error(), "faultinj") {
			t.Errorf("phase %s: error does not carry the panic value: %v", c.phase, err)
		}
		if res != nil || stats != nil {
			t.Errorf("phase %s: panic returned a result", c.phase)
		}
		if opts.FaultInj.Fired() == 0 {
			t.Errorf("phase %s: injector never fired", c.phase)
		}
	}

	// The process survived five injected panics; a clean mine still works.
	res, _, err := Mine(d, robustOpts())
	if err != nil {
		t.Fatalf("clean mine after contained panics: %v", err)
	}
	seq, err := apriori.Mine(d, apriori.Options{MinSupport: 0.01, ShortCircuit: true})
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "after panics", res, seq)
}

// TestPCCDPanicContained mirrors the containment contract for the PCCD foil.
func TestPCCDPanicContained(t *testing.T) {
	d := testDB(t)
	for _, c := range []struct {
		phase string
		k     int
	}{
		{"f1", 1}, {"build", 2}, {"count", 2}, {"reduce", 2},
	} {
		opts := robustOpts()
		opts.FaultInj = faultinj.New(faultinj.Rule{
			Phase: c.phase, K: c.k, Worker: faultinj.Wildcard, Chunk: faultinj.Wildcard,
			Action: faultinj.Panic, Once: true,
		})
		res, _, err := MinePCCD(d, opts)
		var wp *robust.WorkerPanicError
		if !errors.As(err, &wp) {
			t.Fatalf("pccd %s: MinePCCD returned %v, want WorkerPanicError", c.phase, err)
		}
		if wp.Phase != c.phase || wp.K != c.k {
			t.Errorf("pccd %s: error names phase=%s k=%d, want %s/%d", c.phase, wp.Phase, wp.K, c.phase, c.k)
		}
		if res != nil {
			t.Errorf("pccd %s: panic returned a result", c.phase)
		}
	}
}

// TestPanicChunkAttribution pins the chunk provenance of a dynamic-mode
// counting panic: the error names the chunk the worker had claimed.
func TestPanicChunkAttribution(t *testing.T) {
	d := testDB(t)
	opts := robustOpts()
	opts.DBPart = PartitionDynamic
	opts.FaultInj = faultinj.New(faultinj.Rule{
		Phase: "count", K: faultinj.Wildcard, Worker: faultinj.Wildcard, Chunk: 3,
		Action: faultinj.Panic, Once: true,
	})
	_, _, err := Mine(d, opts)
	var wp *robust.WorkerPanicError
	if !errors.As(err, &wp) {
		t.Fatalf("Mine returned %v, want WorkerPanicError", err)
	}
	if wp.Chunk != 3 {
		t.Errorf("Chunk = %d, want 3", wp.Chunk)
	}
	if wp.Phase != "count" {
		t.Errorf("Phase = %q, want count", wp.Phase)
	}
}

// TestCancelBeforeStart: a context canceled up front yields no result and a
// CanceledError naming the first phase, for both algorithms.
func TestCancelBeforeStart(t *testing.T) {
	d := testDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, stats, err := MineCtx(ctx, d, robustOpts())
	var ce *robust.CanceledError
	if !errors.As(err, &ce) || !errors.Is(err, context.Canceled) {
		t.Fatalf("MineCtx = %v, want CanceledError wrapping context.Canceled", err)
	}
	if ce.Phase != "f1" || res != nil || stats != nil {
		t.Errorf("pre-canceled run: phase=%q res=%v stats=%v", ce.Phase, res, stats)
	}
	if res, _, err := MinePCCDCtx(ctx, d, robustOpts()); !errors.As(err, &ce) || res != nil {
		t.Errorf("pre-canceled PCCD: res=%v err=%v", res, err)
	}
}

// TestCancelMidRun cancels from inside the k=2 counting phase (via a Call
// rule) and asserts the partial-result contract: every iteration completed
// before the cancellation point is returned, with a CanceledError naming the
// interrupted phase.
func TestCancelMidRun(t *testing.T) {
	d := testDB(t)
	straight, _, err := Mine(d, robustOpts())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts := robustOpts()
	opts.FaultInj = faultinj.New(faultinj.Rule{
		Phase: "count", K: 2, Worker: faultinj.Wildcard, Chunk: faultinj.Wildcard,
		Action: faultinj.Call, Do: cancel, Once: true,
	})
	res, stats, err := MineCtx(ctx, d, opts)
	var ce *robust.CanceledError
	if !errors.As(err, &ce) || !errors.Is(err, context.Canceled) {
		t.Fatalf("MineCtx = %v, want CanceledError wrapping context.Canceled", err)
	}
	if ce.Phase != "count" || ce.K != 2 {
		t.Errorf("canceled at phase=%q k=%d, want count/2", ce.Phase, ce.K)
	}
	if res == nil || stats == nil {
		t.Fatal("mid-run cancel returned no partial result")
	}
	if len(res.ByK) != 2 {
		t.Fatalf("partial result has %d levels, want 2 (only k=1 completed)", len(res.ByK))
	}
	assertIdenticalByK(t, "partial F1", res.ByK[:2], straight.ByK[:2])
}

// TestCheckpointResumeBitIdentical: a MaxK-bounded checkpointed run resumed
// with the bound lifted reproduces the straight-through run bit for bit —
// frequent sets AND the deterministic work model — in every partition mode.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	d := testDB(t)
	for _, mode := range []DBPartition{PartitionBlock, PartitionWorkload, PartitionDynamic, PartitionStealing} {
		opts := robustOpts()
		opts.DBPart = mode
		straightRes, straightSt, err := Mine(d, opts)
		if err != nil {
			t.Fatal(err)
		}

		path := filepath.Join(t.TempDir(), "run.ckpt")
		bounded := opts
		bounded.Checkpoint = path
		bounded.MaxK = 2
		if _, _, err := Mine(d, bounded); err != nil {
			t.Fatalf("%s bounded: %v", mode, err)
		}

		resumed := bounded
		resumed.MaxK = 0
		res, st, err := Resume(context.Background(), path, d, resumed)
		if err != nil {
			t.Fatalf("%s resume: %v", mode, err)
		}
		assertIdenticalByK(t, mode.String(), res.ByK, straightRes.ByK)
		if res.MinCount != straightRes.MinCount {
			t.Errorf("%s: MinCount %d != %d", mode, res.MinCount, straightRes.MinCount)
		}
		if got, want := st.ModelTime(), straightSt.ModelTime(); got != want {
			t.Errorf("%s: resumed ModelTime %d != straight %d", mode, got, want)
		}
		if len(st.PerIter) != len(straightSt.PerIter) {
			t.Fatalf("%s: %d iterations recorded, want %d", mode, len(st.PerIter), len(straightSt.PerIter))
		}
		for i := range st.PerIter {
			if !reflect.DeepEqual(st.PerIter[i].CountWork, straightSt.PerIter[i].CountWork) {
				t.Errorf("%s iter %d: CountWork %v != %v", mode, i,
					st.PerIter[i].CountWork, straightSt.PerIter[i].CountWork)
			}
		}

		// The resumed run reached the fixpoint and rewrote the checkpoint
		// with Done set: a second resume returns immediately, identically.
		res2, st2, err := Resume(context.Background(), path, d, resumed)
		if err != nil {
			t.Fatalf("%s resume of done checkpoint: %v", mode, err)
		}
		assertIdenticalByK(t, mode.String()+" done", res2.ByK, straightRes.ByK)
		if got, want := st2.ModelTime(), straightSt.ModelTime(); got != want {
			t.Errorf("%s: done-resume ModelTime %d != %d", mode, got, want)
		}
	}
}

// TestKillAndResume is the crash story end to end: a checkpointed run is
// cancelled from inside iteration 2's counting phase ("the kill"), and a
// fresh Resume completes it bit-identically to a run that was never killed.
func TestKillAndResume(t *testing.T) {
	d := testDB(t)
	opts := robustOpts()
	opts.DBPart = PartitionStealing
	straightRes, straightSt, err := Mine(d, opts)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "run.ckpt")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	killed := opts
	killed.Checkpoint = path
	killed.FaultInj = faultinj.New(faultinj.Rule{
		Phase: "count", K: 2, Worker: faultinj.Wildcard, Chunk: faultinj.Wildcard,
		Action: faultinj.Call, Do: cancel, Once: true,
	})
	if _, _, err := MineCtx(ctx, d, killed); !errors.Is(err, context.Canceled) {
		t.Fatalf("killed run: %v, want cancellation", err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("killed run left no checkpoint: %v", err)
	}

	resumed := opts
	resumed.Checkpoint = path
	res, st, err := Resume(context.Background(), path, d, resumed)
	if err != nil {
		t.Fatalf("resume after kill: %v", err)
	}
	assertIdenticalByK(t, "kill+resume", res.ByK, straightRes.ByK)
	if got, want := st.ModelTime(), straightSt.ModelTime(); got != want {
		t.Errorf("kill+resume ModelTime %d != straight %d", got, want)
	}
}

// TestResumePinnedModelTime repeats the TestModelTimePinned gate across a
// checkpoint boundary: bounded run + resume must land on the exact pinned
// work-model total of a straight run — the strongest bit-identity check the
// repo has.
func TestResumePinnedModelTime(t *testing.T) {
	d, err := gen.Generate(gen.Params{T: 10, I: 4, D: 2000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	const pinned = 3719619 // PartitionBlock, procs=4 (see TestModelTimePinned)
	opts := Options{
		Options: apriori.Options{AbsSupport: 10, ShortCircuit: true},
		Procs:   4, Balance: BalanceBitonic, AdaptiveMinUnits: 1,
		DBPart: PartitionBlock,
	}
	path := filepath.Join(t.TempDir(), "pinned.ckpt")
	bounded := opts
	bounded.Checkpoint = path
	bounded.MaxK = 3
	if _, _, err := Mine(d, bounded); err != nil {
		t.Fatal(err)
	}
	resumed := opts
	_, st, err := Resume(context.Background(), path, d, resumed)
	if err != nil {
		t.Fatal(err)
	}
	if got := st.ModelTime(); got != pinned {
		t.Errorf("resumed ModelTime = %d, want pinned %d", got, pinned)
	}
}

// TestResumeValidation: a checkpoint must be refused against the wrong
// database, a different support threshold, different processor count or a
// different work-model option, and corrupt files must error cleanly.
func TestResumeValidation(t *testing.T) {
	d := testDB(t)
	opts := robustOpts()
	path := filepath.Join(t.TempDir(), "v.ckpt")
	ckOpts := opts
	ckOpts.Checkpoint = path
	ckOpts.MaxK = 2
	if _, _, err := Mine(d, ckOpts); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	otherDB, err := gen.Generate(gen.Params{N: 80, L: 20, I: 4, T: 8, D: 800, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		d    *db.Database
		opts Options
		want string
	}{
		{"wrong database", otherDB, opts, "different database"},
		{"different support", d, func() Options { o := opts; o.MinSupport = 0.05; return o }(), "min count"},
		{"different procs", d, func() Options { o := opts; o.Procs = 2; return o }(), "Procs"},
		{"different balance", d, func() Options { o := opts; o.Balance = BalanceBlock; return o }(), "fingerprint"},
		{"different partition", d, func() Options { o := opts; o.DBPart = PartitionDynamic; return o }(), "fingerprint"},
	}
	for _, c := range cases {
		_, _, err := Resume(ctx, path, c.d, c.opts)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: Resume = %v, want error containing %q", c.name, err, c.want)
		}
	}

	// Corrupt file: flip a byte inside the payload.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw = raw[:len(raw)/2]
	bad := filepath.Join(t.TempDir(), "bad.ckpt")
	if err := os.WriteFile(bad, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Resume(ctx, bad, d, opts); err == nil {
		t.Error("truncated checkpoint accepted")
	}
	if _, _, err := Resume(ctx, filepath.Join(t.TempDir(), "absent.ckpt"), d, opts); err == nil {
		t.Error("missing checkpoint accepted")
	}
}

// TestBatchingBitIdentical: a memory-budget run (many small candidate
// batches, one database pass each) must reproduce the unbatched frequent
// sets bit for bit, in every partition mode.
func TestBatchingBitIdentical(t *testing.T) {
	d := testDB(t)
	for _, mode := range []DBPartition{PartitionBlock, PartitionWorkload, PartitionDynamic, PartitionStealing} {
		opts := robustOpts()
		opts.DBPart = mode
		straight, _, err := Mine(d, opts)
		if err != nil {
			t.Fatal(err)
		}
		batched := opts
		batched.MaxCandidatesInMemory = 7
		res, st, err := Mine(d, batched)
		if err != nil {
			t.Fatalf("%s batched: %v", mode, err)
		}
		assertIdenticalByK(t, mode.String(), res.ByK, straight.ByK)
		saw := 0
		for _, it := range st.PerIter {
			if it.Batches > 1 {
				saw++
			}
		}
		if saw == 0 {
			t.Errorf("%s: budget of 7 never split an iteration into batches", mode)
		}
	}
}

// TestBatchedCheckpointResume composes the two new mechanisms: a batched,
// checkpointed run killed at MaxK resumes to the same answer as an
// unbatched straight run.
func TestBatchedCheckpointResume(t *testing.T) {
	d := testDB(t)
	opts := robustOpts()
	straight, _, err := Mine(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "b.ckpt")
	bounded := opts
	bounded.MaxCandidatesInMemory = 9
	bounded.Checkpoint = path
	bounded.MaxK = 2
	if _, _, err := Mine(d, bounded); err != nil {
		t.Fatal(err)
	}
	resumed := bounded
	resumed.MaxK = 0
	res, _, err := Resume(context.Background(), path, d, resumed)
	if err != nil {
		t.Fatal(err)
	}
	assertIdenticalByK(t, "batched resume", res.ByK, straight.ByK)
}
