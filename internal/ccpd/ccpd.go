// Package ccpd implements the paper's shared-memory parallel association
// mining algorithms: CCPD (Common Candidate Partitioned Database — a shared
// hash tree built in parallel with per-node locks, the database logically
// split across processors) and PCCD (Partitioned Candidate Common Database —
// per-processor local trees, every processor scanning the whole database).
// Computation balancing for candidate generation (Section 3.1.2), adaptive
// parallelism (Section 3.1.3), database partitioning (Section 3.2.2) and the
// counter update modes of Section 5.2 are all selectable.
package ccpd

import (
	"fmt"
	"time"

	"repro/internal/apriori"
	"repro/internal/db"
	"repro/internal/hashtree"
	"repro/internal/itemset"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/sched"
)

// BalanceScheme selects the candidate-generation partitioning of
// Section 3.1.2.
type BalanceScheme int

const (
	// BalanceBlock is the naive contiguous split (the unoptimized base).
	BalanceBlock BalanceScheme = iota
	// BalanceInterleaved assigns unit i to processor i mod P.
	BalanceInterleaved
	// BalanceBitonic is the greedy bitonic scheme over all equivalence
	// classes (the COMP optimization).
	BalanceBitonic
)

func (b BalanceScheme) String() string {
	switch b {
	case BalanceInterleaved:
		return "interleaved"
	case BalanceBitonic:
		return "bitonic"
	}
	return "block"
}

// DBPartition selects how the database is split for counting.
type DBPartition int

const (
	// PartitionBlock splits by equal transaction counts.
	PartitionBlock DBPartition = iota
	// PartitionWorkload splits by the estimated Σ C(|t|,k)/T counting cost
	// (the static heuristic of Section 3.2.2).
	PartitionWorkload
	// PartitionDynamic cuts the database into cache-sized transaction
	// chunks claimed from a shared atomic cursor: no processor idles until
	// fewer than P chunks remain, bounding load imbalance by one chunk's
	// work regardless of transaction-size skew.
	PartitionDynamic
	// PartitionStealing seeds each processor's deque with a contiguous
	// chunk block (cache- and model-equivalent to PartitionBlock when
	// balanced) and lets idle processors steal from the front of a
	// straggler's block.
	PartitionStealing
)

func (p DBPartition) String() string {
	switch p {
	case PartitionWorkload:
		return "workload"
	case PartitionDynamic:
		return "dynamic"
	case PartitionStealing:
		return "stealing"
	}
	return "block"
}

// Dynamic reports whether the partition mode claims chunks at runtime
// rather than fixing per-processor transaction ranges up front.
func (p DBPartition) Dynamic() bool {
	return p == PartitionDynamic || p == PartitionStealing
}

// Options configures a parallel run.
type Options struct {
	apriori.Options

	// Procs is the number of worker goroutines ("processors").
	Procs int
	// Counter selects the shared-counter update mode.
	Counter hashtree.CounterMode
	// Balance selects candidate-generation computation balancing.
	Balance BalanceScheme
	// DBPart selects the counting-phase database split.
	DBPart DBPartition
	// AdaptiveMinUnits is the Section 3.1.3 adaptive-parallelism cutoff:
	// when F_{k-1} has fewer join units than this, candidate generation
	// runs sequentially (parallelization overhead would dominate).
	// 0 uses 4×Procs.
	AdaptiveMinUnits int
	// ChunkSize is the transactions-per-chunk granularity of the dynamic
	// partition modes: small enough that a few hundred transactions fit in
	// cache and bound the end-of-phase imbalance, large enough that one
	// cursor claim or deque operation is noise against counting the chunk.
	// 0 uses 256.
	ChunkSize int
	// Obs, when non-nil, records phase spans, chunk claims, steals and
	// counter flushes for trace/metrics export, and labels the pool workers
	// for pprof. Nil disables recording: every obs call site nil-checks and
	// returns, so the counting kernel keeps its zero-allocation guarantee.
	Obs *obs.Recorder
}

func (o Options) withDefaults() Options {
	if o.Threshold <= 0 {
		o.Threshold = 8
	}
	if o.Procs < 1 {
		o.Procs = 1
	}
	if o.AdaptiveMinUnits == 0 {
		o.AdaptiveMinUnits = 4 * o.Procs
	}
	if o.ChunkSize <= 0 {
		o.ChunkSize = 256
	}
	return o
}

// PhaseTiming records wall-clock and modelled work per phase of one
// iteration. The Work fields count deterministic work units (see the
// hashtree cost model); on hosts without enough real cores the harness uses
// max-over-processors work as the parallel time model.
type PhaseTiming struct {
	K          int
	CandGen    time.Duration // join + prune
	TreeBuild  time.Duration // parallel insert
	Count      time.Duration // support counting
	Reduce     time.Duration // counter reduction + frequent extraction
	Candidates int
	Frequent   int
	// GenSequential reports whether adaptive parallelism chose a
	// sequential candidate generation this iteration.
	GenSequential bool

	// GenWork[p] is processor p's candidate-generation work; for a
	// sequential generation all work lands on processor 0.
	GenWork []int64
	// CountWork[p] is processor p's support-counting work.
	CountWork []int64
	// BuildWork is the total tree-insertion work (parallelized evenly).
	BuildWork int64
	// ReduceWork is the master's serial reduction/extraction work.
	ReduceWork int64

	// ChunksClaimed[p] is how many counting chunks processor p claimed
	// under a dynamic partition mode (nil for static modes). The values
	// sum to the chunk count of the iteration.
	ChunksClaimed []int64
	// Steals[p] counts the chunks processor p took from another
	// processor's deque (PartitionStealing only; zero for the cursor mode,
	// whose shared queue has no owner to steal from).
	Steals []int64
	// CountIdle is the summed wall-clock idle time of the counting phase:
	// Σ_p (slowest processor's counting time − processor p's). On a host
	// with fewer real cores than Procs this is scheduling noise; the
	// modelled IdleWork is the meaningful figure there.
	CountIdle time.Duration
}

// IdleWork returns the modelled counting idle: the work units processors
// spend waiting for the slowest one, Σ_p (max CountWork − CountWork[p]).
// A perfectly balanced phase has zero idle work.
func (pt *PhaseTiming) IdleWork() int64 {
	m := maxOf(pt.CountWork)
	var idle int64
	for _, w := range pt.CountWork {
		idle += m - w
	}
	return idle
}

// ModelTime returns the modelled parallel time of the iteration: serial
// reduce plus the per-processor maxima of the parallel phases.
func (pt *PhaseTiming) ModelTime(procs int) int64 {
	var t int64
	t += maxOf(pt.GenWork)
	if procs > 0 {
		t += pt.BuildWork / int64(procs)
	}
	t += maxOf(pt.CountWork)
	t += pt.ReduceWork
	return t
}

func maxOf(v []int64) int64 {
	var m int64
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	return m
}

// Stats aggregates a run.
type Stats struct {
	Procs   int
	PerIter []PhaseTiming
	Total   time.Duration
}

// ModelTime sums the per-iteration modelled parallel times.
func (s *Stats) ModelTime() int64 {
	var t int64
	for i := range s.PerIter {
		t += s.PerIter[i].ModelTime(s.Procs)
	}
	return t
}

// TotalCount returns the summed counting time (the phase the paper reports
// dominates at ~85%).
func (s *Stats) TotalCount() time.Duration {
	var t time.Duration
	for _, it := range s.PerIter {
		t += it.Count
	}
	return t
}

// CountIdleWork sums the modelled counting idle work over all iterations —
// the figure the static-vs-dynamic scheduling experiments gate on.
func (s *Stats) CountIdleWork() int64 {
	var t int64
	for i := range s.PerIter {
		t += s.PerIter[i].IdleWork()
	}
	return t
}

// TotalSteals sums the cross-processor chunk steals over all iterations.
func (s *Stats) TotalSteals() int64 {
	var t int64
	for i := range s.PerIter {
		for _, v := range s.PerIter[i].Steals {
			t += v
		}
	}
	return t
}

// Mine runs CCPD on the database and returns the frequent itemsets plus
// per-phase timings.
func Mine(d *db.Database, opts Options) (*apriori.Result, *Stats, error) {
	opts = opts.withDefaults()
	start := time.Now()
	minCount := opts.MinCount(d.Len())
	res := &apriori.Result{MinCount: minCount, ByK: make([][]apriori.FrequentItemset, 2)}
	stats := &Stats{Procs: opts.Procs}

	// One persistent worker pool serves every phase of every iteration —
	// the P "processors" of the paper's model, without per-phase goroutine
	// spawn and teardown.
	pool := sched.NewPool(opts.Procs)
	defer pool.Close()
	rec := opts.Obs
	if rec.Enabled() {
		pool.SetWrap(rec.PoolWrap)
		defer pool.SetWrap(nil)
	}

	// Iteration 1: parallel item counting with private arrays + reduction.
	t0 := time.Now()
	rec.SetPhase(obs.PhaseF1, 1)
	rec.BeginPhase(obs.PhaseF1, 1)
	f1 := parallelFrequentOne(d, minCount, pool)
	rec.EndPhase(obs.PhaseF1, 1)
	res.ByK[1] = f1
	it1 := PhaseTiming{
		K: 1, Count: time.Since(t0), Candidates: d.NumItems(), Frequent: len(f1),
		CountWork: iterOneCountWork(d, opts),
	}
	it1.ReduceWork = int64(d.NumItems())
	stats.PerIter = append(stats.PerIter, it1)
	rec.IterStats(1, d.NumItems(), len(f1))
	labels := apriori.LabelsFromF1(f1, d.NumItems())

	prev := make([]itemset.Itemset, len(f1))
	for i, f := range f1 {
		prev[i] = f.Items
	}

	for k := 2; len(prev) > 0 && (opts.MaxK == 0 || k <= opts.MaxK); k++ {
		var pt PhaseTiming
		pt.K = k

		t0 = time.Now()
		rec.SetPhase(obs.PhaseCandGen, k)
		rec.BeginPhase(obs.PhaseCandGen, k)
		cands, seq, genWork := generateParallel(prev, opts, pool)
		rec.EndPhase(obs.PhaseCandGen, k)
		pt.CandGen = time.Since(t0)
		pt.GenSequential = seq
		pt.GenWork = genWork
		pt.Candidates = len(cands)
		pt.BuildWork = int64(len(cands)) * hashtree.WorkInsert
		if len(cands) == 0 {
			rec.IterStats(k, 0, 0)
			stats.PerIter = append(stats.PerIter, pt)
			break
		}

		t0 = time.Now()
		cfg := hashtree.Config{
			K: k, Fanout: opts.Fanout, Threshold: opts.Threshold,
			Hash: opts.Hash, NumItems: d.NumItems(), Labels: labels,
		}
		rec.SetPhase(obs.PhaseTreeBuild, k)
		rec.BeginPhase(obs.PhaseTreeBuild, k)
		tree, err := hashtree.ParallelBuildOn(pool, cfg, cands)
		rec.EndPhase(obs.PhaseTreeBuild, k)
		if err != nil {
			return nil, nil, fmt.Errorf("ccpd: iteration %d: %w", k, err)
		}
		pt.TreeBuild = time.Since(t0)

		t0 = time.Now()
		counters := hashtree.NewCounters(opts.Counter, tree.NumCandidates(), opts.Procs)
		rec.SetPhase(obs.PhaseCount, k)
		rec.BeginPhase(obs.PhaseCount, k)
		countPhase(d, tree, counters, opts, k, pool, &pt)
		rec.EndPhase(obs.PhaseCount, k)
		pt.Count = time.Since(t0)
		rec.AddIdle(pt.CountIdle)

		// Reduction and frequent selection, range-partitioned across the
		// pool. Candidate ids are extracted in disjoint ascending ranges,
		// each sorted locally, then k-way merged — the output order is
		// identical to the serial extract. ReduceWork stays the serial
		// model figure: the paper's master-phase cost is what the time
		// model pins, independent of how the wall clock is spent.
		t0 = time.Now()
		nc := tree.NumCandidates()
		ranges := make([][]apriori.FrequentItemset, opts.Procs)
		rec.SetPhase(obs.PhaseReduce, k)
		rec.BeginPhase(obs.PhaseReduce, k)
		pool.Run(func(p int) {
			lo, hi := splitRange(p, opts.Procs, nc)
			counters.ReduceRange(lo, hi)
			ranges[p] = apriori.ExtractFrequentRange(tree, counters, minCount, lo, hi)
		})
		rec.EndPhase(obs.PhaseReduce, k)
		fk := apriori.MergeFrequent(ranges)
		pt.Reduce = time.Since(t0)
		pt.ReduceWork = int64(len(cands))
		pt.Frequent = len(fk)
		rec.IterStats(k, len(cands), len(fk))

		res.ByK = append(res.ByK, fk)
		stats.PerIter = append(stats.PerIter, pt)
		prev = prev[:0]
		for _, f := range fk {
			prev = append(prev, f.Items)
		}
	}
	stats.Total = time.Since(start)
	return res, stats, nil
}

// splitRange returns the half-open sub-range [lo, hi) of [0, n) handled by
// processor p of procs. The products run in int64 end-to-end: the former
// int32(p*n/procs) form multiplied in int first and truncated on conversion,
// which for candidate counts within a factor of procs of 2^31 corrupted the
// reduce fan-out boundaries.
func splitRange(p, procs, n int) (lo, hi int) {
	lo = int(int64(p) * int64(n) / int64(procs))
	hi = int(int64(p+1) * int64(n) / int64(procs))
	return lo, hi
}

// iterOneCountWork models the per-processor work of the iteration-1 item
// counting pass under the selected partition mode. The pass itself always
// runs block-partitioned with private count arrays (parallelFrequentOne) —
// item counting has no hash-tree walk to balance — but the *model* must
// follow opts.DBPart: attributing block-partition work to a workload or
// dynamic run misstated per-processor CountWork and every idle/balance
// figure derived from it. Dynamic modes use the same deterministic greedy
// list-schedule over per-chunk work that countPhase reports, so k=1 and k≥2
// figures are attributed consistently.
func iterOneCountWork(d *db.Database, opts Options) []int64 {
	if opts.DBPart.Dynamic() {
		n := d.Len()
		numChunks := sched.NumChunks(n, opts.ChunkSize)
		chunkWork := make([]int64, numChunks)
		for c := range chunkWork {
			lo, hi := sched.ChunkRange(n, opts.ChunkSize, c)
			s := db.Slice{DB: d, Lo: lo, Hi: hi}
			chunkWork[c] = s.EstimatedWork(1) * hashtree.WorkItemScan
		}
		return sched.GreedySchedule(chunkWork, opts.Procs)
	}
	work := make([]int64, opts.Procs)
	var slices []db.Slice
	if opts.DBPart == PartitionWorkload {
		slices = d.WorkloadPartition(opts.Procs, 1)
	} else {
		slices = d.BlockPartition(opts.Procs)
	}
	for p, s := range slices {
		work[p] = s.EstimatedWork(1) * hashtree.WorkItemScan
	}
	return work
}

// countPhase runs the support-counting phase on the pool and fills the
// timing record's CountWork, ChunksClaimed, Steals and CountIdle fields.
//
// Static modes count fixed per-processor slices as before. Dynamic modes cut
// the database into ChunkSize-transaction chunks claimed at runtime (atomic
// cursor, or seeded deques with stealing); the racy runtime assignment makes
// the observed per-processor work non-reproducible, so CountWork is instead
// the deterministic greedy list-schedule over the per-chunk work units —
// reproducible across runs, and summing bit-identically to any static split
// because per-transaction work does not depend on who counts it.
func countPhase(d *db.Database, tree *hashtree.Tree, counters *hashtree.Counters, opts Options, k int, pool *sched.Pool, pt *PhaseTiming) {
	procs := opts.Procs
	rec := opts.Obs
	// Workers accumulate into cache-line padded sched.PerWorker records, so
	// live increments never invalidate a neighbour's line; the bare int64
	// timing slices (eight counters per line) are filled in only after the
	// pool barrier.
	acc := make([]sched.PerWorker, procs)
	newCtx := func(p int) *hashtree.CountCtx {
		co := hashtree.CountOpts{
			ShortCircuit: opts.ShortCircuit, Proc: p,
			// Batch shared-counter updates to cut lock/atomic contention
			// on hot candidates (no-op for private mode).
			BatchUpdates: true,
		}
		// The flush hook is a bound method on the worker's padded obs
		// record: one closure per (worker, iteration), nothing per
		// transaction, and absent entirely when recording is off so the
		// kernel's zero-allocation path is untouched.
		if ow := rec.Worker(p); ow != nil {
			co.OnFlush = func(n int) { ow.Flush(k, n) }
		}
		return tree.NewCountCtx(counters, co)
	}

	if !opts.DBPart.Dynamic() {
		var slices []db.Slice
		if opts.DBPart == PartitionWorkload {
			slices = d.WorkloadPartition(procs, k)
		} else {
			slices = d.BlockPartition(procs)
		}
		pool.Run(func(p int) {
			t0 := time.Now()
			ctx := newCtx(p)
			slices[p].ForEach(func(_ int64, items itemset.Itemset) {
				ctx.CountTransaction(items)
			})
			ctx.Flush()
			rec.Worker(p).AddWork(ctx.Work)
			acc[p].Work = ctx.Work
			acc[p].ElapsedNS = time.Since(t0).Nanoseconds()
		})
		pt.CountWork = make([]int64, procs)
		for p := range acc {
			pt.CountWork[p] = acc[p].Work
		}
		pt.CountIdle = idleOf(acc)
		return
	}

	n := d.Len()
	numChunks := sched.NumChunks(n, opts.ChunkSize)
	chunkWork := make([]int64, numChunks)

	countChunk := func(ctx *hashtree.CountCtx, c int) {
		lo, hi := sched.ChunkRange(n, opts.ChunkSize, c)
		before := ctx.Work
		for i := lo; i < hi; i++ {
			ctx.CountTransaction(d.Items(i))
		}
		// Each chunk is claimed exactly once, so this write is private.
		chunkWork[c] = ctx.Work - before
	}

	switch opts.DBPart {
	case PartitionStealing:
		st := sched.NewStealing(procs)
		st.SeedBlocks(numChunks)
		pool.Run(func(p int) {
			t0 := time.Now()
			ctx := newCtx(p)
			w := &acc[p]
			ow := rec.Worker(p)
			for {
				c, victim, ok := st.Next(p)
				if !ok {
					break
				}
				if victim != p {
					w.Stolen++
					ow.Steal(k, int(c), victim)
				}
				ow.BeginChunk(k, int(c))
				countChunk(ctx, int(c))
				ow.EndChunk(k, int(c))
				w.Claimed++
			}
			ctx.Flush()
			ow.AddWork(ctx.Work)
			w.ElapsedNS = time.Since(t0).Nanoseconds()
		})
	default: // PartitionDynamic
		cur := sched.NewCursor(numChunks)
		pool.Run(func(p int) {
			t0 := time.Now()
			ctx := newCtx(p)
			w := &acc[p]
			ow := rec.Worker(p)
			for {
				c, ok := cur.Next()
				if !ok {
					break
				}
				ow.BeginChunk(k, c)
				countChunk(ctx, c)
				ow.EndChunk(k, c)
				w.Claimed++
			}
			ctx.Flush()
			ow.AddWork(ctx.Work)
			w.ElapsedNS = time.Since(t0).Nanoseconds()
		})
	}
	pt.ChunksClaimed = make([]int64, procs)
	pt.Steals = make([]int64, procs)
	for p := range acc {
		pt.ChunksClaimed[p] = acc[p].Claimed
		pt.Steals[p] = acc[p].Stolen
	}
	pt.CountWork = sched.GreedySchedule(chunkWork, procs)
	pt.CountIdle = idleOf(acc)
}

// idleOf sums each processor's wall-clock wait for the slowest one.
func idleOf(acc []sched.PerWorker) time.Duration {
	var m, idle int64
	for i := range acc {
		if acc[i].ElapsedNS > m {
			m = acc[i].ElapsedNS
		}
	}
	for i := range acc {
		idle += m - acc[i].ElapsedNS
	}
	return time.Duration(idle)
}

// parallelFrequentOne counts 1-itemsets with per-processor count arrays.
func parallelFrequentOne(d *db.Database, minCount int64, pool *sched.Pool) []apriori.FrequentItemset {
	procs := pool.Procs()
	local := make([][]int64, procs)
	slices := d.BlockPartition(procs)
	pool.Run(func(p int) {
		counts := make([]int64, d.NumItems())
		slices[p].ForEach(func(_ int64, items itemset.Itemset) {
			for _, it := range items {
				counts[it]++
			}
		})
		local[p] = counts
	})
	var out []apriori.FrequentItemset
	for it := 0; it < d.NumItems(); it++ {
		var c int64
		for p := 0; p < procs; p++ {
			c += local[p][it]
		}
		if c >= minCount {
			out = append(out, apriori.FrequentItemset{Items: itemset.New(itemset.Item(it)), Count: c})
		}
	}
	return out
}

// generateParallel partitions the join units of F_{k-1}'s equivalence
// classes across processors per the balance scheme, generates and prunes in
// parallel, and merges the per-processor candidate lists in lexicographic
// order. Adaptive parallelism (Section 3.1.3) falls back to the sequential
// join when there is too little work.
func generateParallel(prev []itemset.Itemset, opts Options, pool *sched.Pool) ([]itemset.Itemset, bool, []int64) {
	classes := itemset.Classes(prev)
	sizes := make([]int, len(classes))
	for i := range classes {
		sizes[i] = classes[i].Size()
	}
	costs, units := partition.MultiClassCosts(sizes)
	k := prev[0].K() + 1
	perPair := int64(hashtree.WorkJoinPair + (k-2)*hashtree.WorkPruneCheck)
	if opts.Procs == 1 || len(units) < opts.AdaptiveMinUnits {
		cands, joinPairs, _ := apriori.GenerateCandidates(prev, opts.NaiveJoin)
		// Sequential generation: all work on processor 0.
		work := make([]int64, opts.Procs)
		work[0] = joinPairs * perPair
		return cands, true, work
	}

	var assign *partition.Assignment
	switch opts.Balance {
	case BalanceInterleaved:
		assign = partition.Interleaved(len(units), opts.Procs)
	case BalanceBitonic:
		assign = partition.GreedyBitonic(costs, opts.Procs)
	default:
		assign = partition.Block(len(units), opts.Procs)
	}

	// Invert the assignment once: each worker receives only its own unit
	// list instead of all P workers scanning every entry of assign.Bucket.
	// Unit ids stay ascending within each list, which keeps every worker's
	// output lexicographically sorted (classes are in prefix order and a
	// unit's candidates are ordered by tail pair).
	perProc := make([][]int32, opts.Procs)
	for u, b := range assign.Bucket {
		perProc[b] = append(perProc[b], int32(u))
	}

	inPrev := apriori.PruneSet(prev)

	locals := make([][]itemset.Itemset, opts.Procs)
	genWork := make([]int64, opts.Procs)
	pool.Run(func(p int) {
		var out []itemset.Itemset
		// Accumulate work in a register-resident local and store once:
		// incrementing genWork[p] per unit would bounce the slice's cache
		// line between all P processors (false sharing) for the whole
		// generation phase.
		var work int64
		scratch := make(itemset.Itemset, k)
		// Per-worker arena: surviving candidates are copied into one
		// growing block instead of one heap object per candidate.
		arena := make([]itemset.Item, 0, 64*k)
		for _, u := range perProc[p] {
			cu := units[u]
			cl := &classes[cu.Class]
			work += int64(len(cl.Tails)-cu.Pos-1) * perPair
			for j := cu.Pos + 1; j < len(cl.Tails); j++ {
				if apriori.JoinPrune(inPrev, scratch, cl.Prefix, cl.Tails[cu.Pos], cl.Tails[j]) {
					n := len(arena)
					arena = append(arena, scratch...)
					out = append(out, itemset.Itemset(arena[n:n+k:n+k]))
				}
			}
		}
		genWork[p] = work
		locals[p] = out
	})
	return mergeSortedCandidates(locals), false, genWork
}

// mergeSortedCandidates k-way merges the per-processor (already
// lexicographically sorted) candidate lists through the shared heap-based
// merge: O(C·log P) comparisons, replacing the former O(C·P) linear head
// scan (which itself replaced a serial O(C log C) global sort).
func mergeSortedCandidates(locals [][]itemset.Itemset) []itemset.Itemset {
	return itemset.MergeSortedBy(locals, itemset.Itemset.Less)
}
