// Package ccpd implements the paper's shared-memory parallel association
// mining algorithms: CCPD (Common Candidate Partitioned Database — a shared
// hash tree built in parallel with per-node locks, the database logically
// split across processors) and PCCD (Partitioned Candidate Common Database —
// per-processor local trees, every processor scanning the whole database).
// Computation balancing for candidate generation (Section 3.1.2), adaptive
// parallelism (Section 3.1.3), database partitioning (Section 3.2.2) and the
// counter update modes of Section 5.2 are all selectable.
//
// The package also carries the robustness layer of the production story:
// cooperative cancellation (MineCtx), worker panic containment (a panic in
// any phase surfaces as a *robust.WorkerPanicError instead of killing the
// process), per-iteration checkpointing with bit-identical resume (Resume),
// and memory-budget candidate batching (Options.MaxCandidatesInMemory) for
// candidate sets larger than memory — the classic limited-memory Apriori
// regime of multiple database passes per iteration.
package ccpd

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"time"

	"repro/internal/apriori"
	"repro/internal/db"
	"repro/internal/db/seg"
	"repro/internal/hashtree"
	"repro/internal/itemset"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/robust"
	"repro/internal/robust/faultinj"
	"repro/internal/sched"
)

// BalanceScheme selects the candidate-generation partitioning of
// Section 3.1.2.
type BalanceScheme int

const (
	// BalanceBlock is the naive contiguous split (the unoptimized base).
	BalanceBlock BalanceScheme = iota
	// BalanceInterleaved assigns unit i to processor i mod P.
	BalanceInterleaved
	// BalanceBitonic is the greedy bitonic scheme over all equivalence
	// classes (the COMP optimization).
	BalanceBitonic
)

func (b BalanceScheme) String() string {
	switch b {
	case BalanceInterleaved:
		return "interleaved"
	case BalanceBitonic:
		return "bitonic"
	}
	return "block"
}

// DBPartition selects how the database is split for counting.
type DBPartition int

const (
	// PartitionBlock splits by equal transaction counts.
	PartitionBlock DBPartition = iota
	// PartitionWorkload splits by the estimated Σ C(|t|,k)/T counting cost
	// (the static heuristic of Section 3.2.2).
	PartitionWorkload
	// PartitionDynamic cuts the database into cache-sized transaction
	// chunks claimed from a shared atomic cursor: no processor idles until
	// fewer than P chunks remain, bounding load imbalance by one chunk's
	// work regardless of transaction-size skew.
	PartitionDynamic
	// PartitionStealing seeds each processor's deque with a contiguous
	// chunk block (cache- and model-equivalent to PartitionBlock when
	// balanced) and lets idle processors steal from the front of a
	// straggler's block.
	PartitionStealing
)

func (p DBPartition) String() string {
	switch p {
	case PartitionWorkload:
		return "workload"
	case PartitionDynamic:
		return "dynamic"
	case PartitionStealing:
		return "stealing"
	}
	return "block"
}

// Dynamic reports whether the partition mode claims chunks at runtime
// rather than fixing per-processor transaction ranges up front.
func (p DBPartition) Dynamic() bool {
	return p == PartitionDynamic || p == PartitionStealing
}

// Options configures a parallel run.
type Options struct {
	apriori.Options

	// Procs is the number of worker goroutines ("processors").
	Procs int
	// Counter selects the shared-counter update mode.
	Counter hashtree.CounterMode
	// Balance selects candidate-generation computation balancing.
	Balance BalanceScheme
	// DBPart selects the counting-phase database split.
	DBPart DBPartition
	// AdaptiveMinUnits is the Section 3.1.3 adaptive-parallelism cutoff:
	// when F_{k-1} has fewer join units than this, candidate generation
	// runs sequentially (parallelization overhead would dominate).
	// 0 uses 4×Procs.
	AdaptiveMinUnits int
	// ChunkSize is the transactions-per-chunk granularity of the dynamic
	// partition modes: small enough that a few hundred transactions fit in
	// cache and bound the end-of-phase imbalance, large enough that one
	// cursor claim or deque operation is noise against counting the chunk.
	// It is also the stride at which static-partition workers poll for
	// cancellation. 0 uses 256.
	ChunkSize int
	// Obs, when non-nil, records phase spans, chunk claims, steals and
	// counter flushes for trace/metrics export, and labels the pool workers
	// for pprof. Nil disables recording: every obs call site nil-checks and
	// returns, so the counting kernel keeps its zero-allocation guarantee.
	Obs *obs.Recorder
	// Checkpoint, when non-empty, writes a versioned binary snapshot of the
	// run (frequent sets + deterministic work model) to this path after
	// every completed iteration, atomically (temp file + rename). A killed
	// run continues bit-identically via Resume. "" disables checkpointing.
	Checkpoint string
	// FaultInj, when non-nil, enables the fault-injection harness at
	// phase/chunk granularity — tests and CI smoke only; a nil injector
	// compiles to a nil check at every site.
	FaultInj *faultinj.Injector
}

func (o Options) withDefaults() Options {
	if o.Threshold <= 0 {
		o.Threshold = 8
	}
	if o.Procs < 1 {
		o.Procs = 1
	}
	if o.AdaptiveMinUnits == 0 {
		o.AdaptiveMinUnits = 4 * o.Procs
	}
	if o.ChunkSize <= 0 {
		o.ChunkSize = 256
	}
	return o
}

// fingerprint hashes the options that determine the run's output and work
// model, so Resume can refuse a checkpoint recorded under different
// settings. MaxK is deliberately excluded (resuming with a larger bound
// extends a run), as are Checkpoint, Obs and FaultInj (observation and
// harness knobs, not model inputs).
func (o Options) fingerprint() uint64 {
	h := fnv.New64a()
	var b [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	put(math.Float64bits(o.MinSupport))
	put(uint64(o.AbsSupport))
	put(uint64(o.Threshold))
	put(uint64(o.Fanout))
	put(uint64(o.Hash))
	putBool := func(v bool) {
		if v {
			put(1)
		} else {
			put(0)
		}
	}
	putBool(o.ShortCircuit)
	putBool(o.NaiveJoin)
	put(uint64(o.MaxCandidatesInMemory))
	put(uint64(o.Procs))
	put(uint64(o.Counter))
	put(uint64(o.Balance))
	put(uint64(o.DBPart))
	put(uint64(o.AdaptiveMinUnits))
	put(uint64(o.ChunkSize))
	return h.Sum64()
}

// PhaseTiming records wall-clock and modelled work per phase of one
// iteration. The Work fields count deterministic work units (see the
// hashtree cost model); on hosts without enough real cores the harness uses
// max-over-processors work as the parallel time model.
type PhaseTiming struct {
	K          int
	CandGen    time.Duration // join + prune
	TreeBuild  time.Duration // parallel insert
	Count      time.Duration // support counting
	Reduce     time.Duration // counter reduction + frequent extraction
	Candidates int
	Frequent   int
	// GenSequential reports whether adaptive parallelism chose a
	// sequential candidate generation this iteration.
	GenSequential bool
	// Batches is how many candidate batches the iteration was split into
	// under Options.MaxCandidatesInMemory (1 = everything fit in one tree;
	// each batch pays a full database pass).
	Batches int

	// GenWork[p] is processor p's candidate-generation work; for a
	// sequential generation all work lands on processor 0.
	GenWork []int64
	// CountWork[p] is processor p's support-counting work (summed over
	// candidate batches when the iteration was batched).
	CountWork []int64
	// BuildWork is the total tree-insertion work (parallelized evenly).
	BuildWork int64
	// ReduceWork is the master's serial reduction/extraction work.
	ReduceWork int64

	// ChunksClaimed[p] is how many counting chunks processor p claimed
	// under a dynamic partition mode (nil for static modes). The values
	// sum to the chunk count of the iteration (times the batch count when
	// batched).
	ChunksClaimed []int64
	// Steals[p] counts the chunks processor p took from another
	// processor's deque (PartitionStealing only; zero for the cursor mode,
	// whose shared queue has no owner to steal from).
	Steals []int64
	// CountIdle is the summed wall-clock idle time of the counting phase:
	// Σ_p (slowest processor's counting time − processor p's). On a host
	// with fewer real cores than Procs this is scheduling noise; the
	// modelled IdleWork is the meaningful figure there.
	CountIdle time.Duration
}

// IdleWork returns the modelled counting idle: the work units processors
// spend waiting for the slowest one, Σ_p (max CountWork − CountWork[p]).
// A perfectly balanced phase has zero idle work.
func (pt *PhaseTiming) IdleWork() int64 {
	m := maxOf(pt.CountWork)
	var idle int64
	for _, w := range pt.CountWork {
		idle += m - w
	}
	return idle
}

// ModelTime returns the modelled parallel time of the iteration: serial
// reduce plus the per-processor maxima of the parallel phases.
func (pt *PhaseTiming) ModelTime(procs int) int64 {
	var t int64
	t += maxOf(pt.GenWork)
	if procs > 0 {
		t += pt.BuildWork / int64(procs)
	}
	t += maxOf(pt.CountWork)
	t += pt.ReduceWork
	return t
}

func maxOf(v []int64) int64 {
	var m int64
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	return m
}

// Stats aggregates a run.
type Stats struct {
	Procs   int
	PerIter []PhaseTiming
	Total   time.Duration
	// OutOfCore carries the segment pipeline's accounting (loads, stalls,
	// prefetch overlap) when the run was mined from a segmented store via
	// MineSegmented; nil for in-RAM runs.
	OutOfCore *seg.PipelineStats
}

// ModelTime sums the per-iteration modelled parallel times.
func (s *Stats) ModelTime() int64 {
	var t int64
	for i := range s.PerIter {
		t += s.PerIter[i].ModelTime(s.Procs)
	}
	return t
}

// TotalCount returns the summed counting time (the phase the paper reports
// dominates at ~85%).
func (s *Stats) TotalCount() time.Duration {
	var t time.Duration
	for _, it := range s.PerIter {
		t += it.Count
	}
	return t
}

// CountIdleWork sums the modelled counting idle work over all iterations —
// the figure the static-vs-dynamic scheduling experiments gate on.
func (s *Stats) CountIdleWork() int64 {
	var t int64
	for i := range s.PerIter {
		t += s.PerIter[i].IdleWork()
	}
	return t
}

// TotalSteals sums the cross-processor chunk steals over all iterations.
func (s *Stats) TotalSteals() int64 {
	var t int64
	for i := range s.PerIter {
		for _, v := range s.PerIter[i].Steals {
			t += v
		}
	}
	return t
}

// miner is the per-run state shared by MineCtx, MineSegmented and Resume:
// the data source (in-RAM database or segmented store), resolved options,
// persistent pool, recorder, and the result/stats being accumulated.
type miner struct {
	d        *db.Database // in-RAM source; nil for out-of-core runs
	src      *segSource   // segmented source; nil for in-RAM runs
	opts     Options
	pool     *sched.Pool
	rec      *obs.Recorder
	fi       *faultinj.Injector
	minCount int64
	labels   []int32
	res      *apriori.Result
	stats    *Stats
	ckpts    int // checkpoints written (exported as a gauge)
}

// numItems returns the item universe size of whichever source backs the run.
func (m *miner) numItems() int {
	if m.src != nil {
		return m.src.r.NumItems()
	}
	return m.d.NumItems()
}

// newMiner builds the in-RAM run state; the returned cleanup must run when
// the mine completes (it unhooks the recorder and closes the pool).
func newMiner(d *db.Database, opts Options) (*miner, func()) {
	m := &miner{
		d: d, opts: opts, fi: opts.FaultInj,
		minCount: opts.MinCount(d.Len()),
		rec:      opts.Obs,
	}
	return m, m.setupPool()
}

// setupPool attaches the persistent worker pool — the P "processors" of the
// paper's model, serving every phase of every iteration without per-phase
// goroutine spawn and teardown — and returns its cleanup.
func (m *miner) setupPool() func() {
	m.pool = sched.NewPool(m.opts.Procs)
	if m.rec.Enabled() {
		m.pool.SetWrap(m.rec.PoolWrap)
	}
	return func() {
		if m.rec.Enabled() {
			m.pool.SetWrap(nil)
		}
		m.pool.Close()
	}
}

// annotate stamps phase/iteration context onto a contained worker panic, so
// the error from Mine names where the worker died.
func annotate(err error, phase string, k int) error {
	var wp *robust.WorkerPanicError
	if errors.As(err, &wp) {
		wp.Phase, wp.K = phase, k
	}
	return err
}

// Mine runs CCPD on the database and returns the frequent itemsets plus
// per-phase timings. It is MineCtx without cancellation.
func Mine(d *db.Database, opts Options) (*apriori.Result, *Stats, error) {
	return MineCtx(context.Background(), d, opts)
}

// MineCtx runs CCPD under a context. Cancellation is cooperative: workers
// observe it at chunk boundaries (dynamic modes) or every ChunkSize
// transactions (static modes), the current phase drains promptly, and the
// call returns the partial result — every iteration completed before the
// cancellation point — together with a *robust.CanceledError naming the
// interrupted phase. A worker panic in any phase is contained by the pool
// and returned as a *robust.WorkerPanicError; the process stays alive.
//
//armlint:cancellable
func MineCtx(ctx context.Context, d *db.Database, opts Options) (*apriori.Result, *Stats, error) {
	opts = opts.withDefaults()
	start := time.Now()
	m, cleanup := newMiner(d, opts)
	defer cleanup()
	return m.mine(ctx, start)
}

// mine is the full run, shared by the in-RAM and out-of-core entry points:
// iteration 1, then the k-loop until fixpoint.
func (m *miner) mine(ctx context.Context, start time.Time) (*apriori.Result, *Stats, error) {
	opts := m.opts
	m.res = &apriori.Result{MinCount: m.minCount, ByK: make([][]apriori.FrequentItemset, 2)}
	m.stats = &Stats{Procs: opts.Procs}

	if err := robust.Canceled(ctx, "f1", 1); err != nil {
		return nil, nil, err
	}

	// Iteration 1: parallel item counting with private arrays + reduction.
	t0 := time.Now()
	m.rec.SetPhase(obs.PhaseF1, 1)
	m.rec.BeginPhase(obs.PhaseF1, 1)
	f1, f1Work, err := m.frequentOne(ctx)
	m.rec.EndPhase(obs.PhaseF1, 1)
	if err != nil {
		return nil, nil, annotate(err, "f1", 1)
	}
	if err := robust.Canceled(ctx, "f1", 1); err != nil {
		// The pass was interrupted: its counts are partial, so there is no
		// usable partial result yet.
		return nil, nil, err
	}
	m.res.ByK[1] = f1
	numItems := m.numItems()
	it1 := PhaseTiming{
		K: 1, Count: time.Since(t0), Candidates: numItems, Frequent: len(f1),
		CountWork: f1Work, Batches: 1,
	}
	it1.ReduceWork = int64(numItems)
	m.stats.PerIter = append(m.stats.PerIter, it1)
	m.rec.IterStats(1, numItems, len(f1))
	m.labels = apriori.LabelsFromF1(f1, numItems)
	if err := m.checkpoint(2, false); err != nil {
		return nil, nil, err
	}

	prev := make([]itemset.Itemset, len(f1))
	for i, f := range f1 {
		prev[i] = f.Items
	}

	err = m.loop(ctx, 2, prev)
	m.stats.Total = time.Since(start)
	if m.src != nil {
		ps := m.src.pipe.Stats()
		m.stats.OutOfCore = &ps
		m.rec.SetGauge("armine_ooc_segments_streamed", float64(ps.Segments))
		m.rec.SetGauge("armine_ooc_stall_fraction", ps.StallFraction())
	}
	return m.finish(err)
}

// frequentOne runs iteration 1 on whichever source backs the run, returning
// F1 together with its modelled per-processor counting work.
func (m *miner) frequentOne(ctx context.Context) ([]apriori.FrequentItemset, []int64, error) {
	if m.src != nil {
		return m.src.frequentOne(ctx, m)
	}
	f1, err := parallelFrequentOne(ctx, m.d, m.minCount, m.pool, m.fi, m.opts.ChunkSize)
	if err != nil {
		return nil, nil, err
	}
	return f1, iterOneCountWork(m.d, m.opts), nil
}

// finish maps the loop's error to the Mine return contract: cancellation
// returns the partial result alongside the error; a worker panic or
// infrastructure failure returns the error alone.
func (m *miner) finish(err error) (*apriori.Result, *Stats, error) {
	if err == nil {
		return m.res, m.stats, nil
	}
	var ce *robust.CanceledError
	if errors.As(err, &ce) {
		return m.res, m.stats, err
	}
	return nil, nil, err
}

// loop runs iterations startK, startK+1, … until fixpoint, MaxK or error.
// prev holds F_{startK-1}.
func (m *miner) loop(ctx context.Context, startK int, prev []itemset.Itemset) error {
	opts := m.opts
	for k := startK; len(prev) > 0 && (opts.MaxK == 0 || k <= opts.MaxK); k++ {
		fk, stop, err := m.iterate(ctx, k, prev)
		if err != nil {
			return err
		}
		if stop {
			// No candidates: the natural fixpoint. Record it in the
			// checkpoint so a resume returns immediately.
			return m.checkpoint(k, true)
		}
		m.res.ByK = append(m.res.ByK, fk)
		if err := m.checkpoint(k+1, false); err != nil {
			return err
		}
		prev = prev[:0]
		for _, f := range fk {
			prev = append(prev, f.Items)
		}
	}
	if len(prev) == 0 {
		// The last iteration produced no frequent sets — also a fixpoint.
		// (A MaxK exit is deliberately not marked done: resuming with a
		// larger bound continues the run.)
		return m.checkpoint(len(m.res.ByK), true)
	}
	return nil
}

// iterate runs one k-iteration: candidate generation, then per-batch tree
// build / count / extract. stop reports the no-candidates fixpoint.
func (m *miner) iterate(ctx context.Context, k int, prev []itemset.Itemset) (fk []apriori.FrequentItemset, stop bool, err error) {
	opts := m.opts
	var pt PhaseTiming
	pt.K = k

	if err := robust.Canceled(ctx, "gen", k); err != nil {
		return nil, false, err
	}
	t0 := time.Now()
	m.rec.SetPhase(obs.PhaseCandGen, k)
	m.rec.BeginPhase(obs.PhaseCandGen, k)
	cands, seq, genWork, err := generateParallel(prev, opts, m.pool)
	m.rec.EndPhase(obs.PhaseCandGen, k)
	if err != nil {
		return nil, false, annotate(err, "gen", k)
	}
	pt.CandGen = time.Since(t0)
	pt.GenSequential = seq
	pt.GenWork = genWork
	pt.Candidates = len(cands)
	pt.BuildWork = int64(len(cands)) * hashtree.WorkInsert
	if len(cands) == 0 {
		m.rec.IterStats(k, 0, 0)
		m.stats.PerIter = append(m.stats.PerIter, pt)
		return nil, true, nil
	}

	// Memory-budget batching: when the candidate set exceeds the in-memory
	// budget, build/count/extract contiguous lexicographic sub-ranges, one
	// database pass each. Each batch's frequent list covers a disjoint,
	// ascending lexicographic range, so plain concatenation reproduces the
	// unbatched output bit-identically.
	batchSize := len(cands)
	if lim := opts.MaxCandidatesInMemory; lim > 0 && lim < batchSize {
		batchSize = lim
	}
	numBatches := (len(cands) + batchSize - 1) / batchSize
	pt.Batches = numBatches
	for b := 0; b < numBatches; b++ {
		lo := b * batchSize
		hi := lo + batchSize
		if hi > len(cands) {
			hi = len(cands)
		}
		bfk, err := m.buildCountExtract(ctx, k, cands[lo:hi], &pt)
		if err != nil {
			m.stats.PerIter = append(m.stats.PerIter, pt)
			return nil, false, err
		}
		fk = append(fk, bfk...)
	}
	if numBatches > 1 {
		m.rec.SetGauge(fmt.Sprintf("armine_candidate_batches{k=%q}", fmt.Sprint(k)), float64(numBatches))
	}
	pt.Frequent = len(fk)
	m.rec.IterStats(k, len(cands), len(fk))
	m.stats.PerIter = append(m.stats.PerIter, pt)
	return fk, false, nil
}

// buildCountExtract builds the hash tree over one candidate batch, counts
// the whole database against it, and extracts its frequent itemsets,
// accumulating work-model figures into pt.
func (m *miner) buildCountExtract(ctx context.Context, k int, cands []itemset.Itemset, pt *PhaseTiming) ([]apriori.FrequentItemset, error) {
	opts := m.opts
	if err := robust.Canceled(ctx, "build", k); err != nil {
		return nil, err
	}
	// The build phase's injection sites live inside ParallelBuildOn's
	// closures, which the harness cannot reach; when injection is active an
	// extra (test-only) barrier exposes a per-worker build site.
	if m.fi != nil {
		if err := m.pool.Run(func(p int) { m.fi.Fire("build", k, p, -1) }); err != nil {
			return nil, annotate(err, "build", k)
		}
	}
	t0 := time.Now()
	cfg := hashtree.Config{
		K: k, Fanout: opts.Fanout, Threshold: opts.Threshold,
		Hash: opts.Hash, NumItems: m.numItems(), Labels: m.labels,
	}
	m.rec.SetPhase(obs.PhaseTreeBuild, k)
	m.rec.BeginPhase(obs.PhaseTreeBuild, k)
	tree, err := hashtree.ParallelBuildOn(m.pool, cfg, cands)
	m.rec.EndPhase(obs.PhaseTreeBuild, k)
	if err != nil {
		return nil, annotate(fmt.Errorf("ccpd: iteration %d: %w", k, err), "build", k)
	}
	pt.TreeBuild += time.Since(t0)

	t0 = time.Now()
	counters := hashtree.NewCounters(opts.Counter, tree.NumCandidates(), opts.Procs)
	m.rec.SetPhase(obs.PhaseCount, k)
	m.rec.BeginPhase(obs.PhaseCount, k)
	var cr countResult
	if m.src != nil {
		cr, err = m.src.countPhase(ctx, m, tree, counters, k)
	} else {
		cr, err = countPhase(ctx, m.d, tree, counters, opts, k, m.pool)
	}
	m.rec.EndPhase(obs.PhaseCount, k)
	if err != nil {
		return nil, annotate(err, "count", k)
	}
	pt.Count += time.Since(t0)
	pt.CountIdle += cr.Idle
	m.rec.AddIdle(cr.Idle)
	pt.CountWork = addVec(pt.CountWork, cr.Work)
	pt.ChunksClaimed = addVec(pt.ChunksClaimed, cr.Claimed)
	pt.Steals = addVec(pt.Steals, cr.Steals)
	if err := robust.Canceled(ctx, "count", k); err != nil {
		return nil, err
	}

	// Reduction and frequent selection, range-partitioned across the
	// pool. Candidate ids are extracted in disjoint ascending ranges,
	// each sorted locally, then k-way merged — the output order is
	// identical to the serial extract. ReduceWork stays the serial
	// model figure: the paper's master-phase cost is what the time
	// model pins, independent of how the wall clock is spent.
	t0 = time.Now()
	nc := tree.NumCandidates()
	ranges := make([][]apriori.FrequentItemset, opts.Procs)
	m.rec.SetPhase(obs.PhaseReduce, k)
	m.rec.BeginPhase(obs.PhaseReduce, k)
	err = m.pool.Run(func(p int) {
		m.fi.Fire("reduce", k, p, -1)
		lo, hi := splitRange(p, opts.Procs, nc)
		counters.ReduceRange(lo, hi)
		ranges[p] = apriori.ExtractFrequentRange(tree, counters, m.minCount, lo, hi)
	})
	m.rec.EndPhase(obs.PhaseReduce, k)
	if err != nil {
		return nil, annotate(err, "reduce", k)
	}
	fk := apriori.MergeFrequent(ranges)
	pt.Reduce += time.Since(t0)
	pt.ReduceWork += int64(len(cands))
	return fk, nil
}

// addVec element-wise adds b into a (allocating a when nil). A nil b leaves
// a unchanged, so static modes keep nil ChunksClaimed/Steals.
func addVec(a, b []int64) []int64 {
	if b == nil {
		return a
	}
	if a == nil {
		a = make([]int64, len(b))
	}
	for i := range b {
		a[i] += b[i]
	}
	return a
}

// splitRange returns the half-open sub-range [lo, hi) of [0, n) handled by
// processor p of procs. The products run in int64 end-to-end: the former
// int32(p*n/procs) form multiplied in int first and truncated on conversion,
// which for candidate counts within a factor of procs of 2^31 corrupted the
// reduce fan-out boundaries.
func splitRange(p, procs, n int) (lo, hi int) {
	lo = int(int64(p) * int64(n) / int64(procs))
	hi = int(int64(p+1) * int64(n) / int64(procs))
	return lo, hi
}

// iterOneCountWork models the per-processor work of the iteration-1 item
// counting pass under the selected partition mode. The pass itself always
// runs block-partitioned with private count arrays (parallelFrequentOne) —
// item counting has no hash-tree walk to balance — but the *model* must
// follow opts.DBPart: attributing block-partition work to a workload or
// dynamic run misstated per-processor CountWork and every idle/balance
// figure derived from it. Dynamic modes use the same deterministic greedy
// list-schedule over per-chunk work that countPhase reports, so k=1 and k≥2
// figures are attributed consistently.
func iterOneCountWork(d *db.Database, opts Options) []int64 {
	if opts.DBPart.Dynamic() {
		n := d.Len()
		numChunks := sched.NumChunks(n, opts.ChunkSize)
		chunkWork := make([]int64, numChunks)
		//armlint:allow ctxpoll bounded per-chunk estimation before the phase starts; cancellation is observed at the phase boundary
		for c := range chunkWork {
			lo, hi := sched.ChunkRange(n, opts.ChunkSize, c)
			s := db.Slice{DB: d, Lo: lo, Hi: hi}
			chunkWork[c] = s.EstimatedWork(1) * hashtree.WorkItemScan
		}
		return sched.GreedySchedule(chunkWork, opts.Procs)
	}
	work := make([]int64, opts.Procs)
	var slices []db.Slice
	if opts.DBPart == PartitionWorkload {
		slices = d.WorkloadPartition(opts.Procs, 1)
	} else {
		slices = d.BlockPartition(opts.Procs)
	}
	//armlint:allow ctxpoll bounded per-slice estimation before the phase starts; cancellation is observed at the phase boundary
	for p, s := range slices {
		work[p] = s.EstimatedWork(1) * hashtree.WorkItemScan
	}
	return work
}

// newCountCtxFn builds the per-worker CountCtx factory shared by the in-RAM
// and out-of-core counting phases.
func newCountCtxFn(tree *hashtree.Tree, counters *hashtree.Counters, opts Options, k int) func(p int) *hashtree.CountCtx {
	rec := opts.Obs
	return func(p int) *hashtree.CountCtx {
		co := hashtree.CountOpts{
			ShortCircuit: opts.ShortCircuit, Proc: p,
			// Batch shared-counter updates to cut lock/atomic contention
			// on hot candidates (no-op for private mode).
			BatchUpdates: true,
		}
		// The flush hook is a bound method on the worker's padded obs
		// record: one closure per (worker, iteration), nothing per
		// transaction, and absent entirely when recording is off so the
		// kernel's zero-allocation path is untouched.
		if ow := rec.Worker(p); ow != nil {
			co.OnFlush = func(n int) { ow.Flush(k, n) }
		}
		return tree.NewCountCtx(counters, co)
	}
}

// countResult is one counting pass's deterministic accounting: per-processor
// work, chunk claims/steals (dynamic modes) and wall-clock idle.
type countResult struct {
	Work    []int64
	Claimed []int64
	Steals  []int64
	Idle    time.Duration
}

// countPhase runs the support-counting phase on the pool and returns its
// accounting.
//
// Static modes count fixed per-processor slices as before, polling for
// cancellation every ChunkSize transactions. Dynamic modes cut the database
// into ChunkSize-transaction chunks claimed at runtime (atomic cursor, or
// seeded deques with stealing), checking the context at each claim; the racy
// runtime assignment makes the observed per-processor work non-reproducible,
// so CountWork is instead the deterministic greedy list-schedule over the
// per-chunk work units — reproducible across runs, and summing
// bit-identically to any static split because per-transaction work does not
// depend on who counts it.
func countPhase(ctx context.Context, d *db.Database, tree *hashtree.Tree, counters *hashtree.Counters, opts Options, k int, pool *sched.Pool) (countResult, error) {
	procs := opts.Procs
	rec := opts.Obs
	fi := opts.FaultInj
	// Workers accumulate into cache-line padded sched.PerWorker records, so
	// live increments never invalidate a neighbour's line; the bare int64
	// timing slices (eight counters per line) are filled in only after the
	// pool barrier.
	acc := make([]sched.PerWorker, procs)
	newCtx := newCountCtxFn(tree, counters, opts, k)

	if !opts.DBPart.Dynamic() {
		var slices []db.Slice
		if opts.DBPart == PartitionWorkload {
			slices = d.WorkloadPartition(procs, k)
		} else {
			slices = d.BlockPartition(procs)
		}
		err := pool.Run(func(p int) {
			t0 := time.Now()
			fi.Fire("count", k, p, -1)
			ctxc := newCtx(p)
			s := slices[p]
			for i := s.Lo; i < s.Hi; i++ {
				// Poll for cancellation once per ChunkSize transactions —
				// the same promptness bound the dynamic modes get per
				// chunk claim, without a context check in the kernel loop.
				if (i-s.Lo)%opts.ChunkSize == 0 && ctx.Err() != nil {
					break
				}
				ctxc.CountTransaction(d.Items(i))
			}
			ctxc.Flush()
			rec.Worker(p).AddWork(ctxc.Work)
			acc[p].Work = ctxc.Work
			acc[p].ElapsedNS = time.Since(t0).Nanoseconds()
		})
		if err != nil {
			return countResult{}, err
		}
		cr := countResult{Work: make([]int64, procs), Idle: idleOf(acc)}
		for p := range acc {
			cr.Work[p] = acc[p].Work
		}
		return cr, nil
	}

	n := d.Len()
	numChunks := sched.NumChunks(n, opts.ChunkSize)
	chunkWork := make([]int64, numChunks)

	countChunk := func(ctxc *hashtree.CountCtx, c int) {
		lo, hi := sched.ChunkRange(n, opts.ChunkSize, c)
		before := ctxc.Work
		//armlint:allow ctxpoll a chunk is at most ChunkSize transactions; the claim loop around it polls between chunks
		for i := lo; i < hi; i++ {
			ctxc.CountTransaction(d.Items(i))
		}
		// Each chunk is claimed exactly once, so this write is private.
		chunkWork[c] = ctxc.Work - before
	}

	var runErr error
	switch opts.DBPart {
	case PartitionStealing:
		st := sched.NewStealing(procs)
		st.SeedBlocks(numChunks)
		runErr = pool.Run(func(p int) {
			t0 := time.Now()
			ctxc := newCtx(p)
			w := &acc[p]
			ow := rec.Worker(p)
			for ctx.Err() == nil {
				c, victim, ok := st.Next(p)
				if !ok {
					break
				}
				if victim != p {
					w.Stolen++
					ow.Steal(k, int(c), victim)
				}
				pool.NoteChunk(p, int(c))
				fi.Fire("count", k, p, int(c))
				ow.BeginChunk(k, int(c))
				countChunk(ctxc, int(c))
				ow.EndChunk(k, int(c))
				w.Claimed++
			}
			pool.NoteChunk(p, -1)
			ctxc.Flush()
			ow.AddWork(ctxc.Work)
			w.ElapsedNS = time.Since(t0).Nanoseconds()
		})
	default: // PartitionDynamic
		cur := sched.NewCursor(numChunks)
		runErr = pool.Run(func(p int) {
			t0 := time.Now()
			ctxc := newCtx(p)
			w := &acc[p]
			ow := rec.Worker(p)
			for ctx.Err() == nil {
				c, ok := cur.Next()
				if !ok {
					break
				}
				pool.NoteChunk(p, c)
				fi.Fire("count", k, p, c)
				ow.BeginChunk(k, c)
				countChunk(ctxc, c)
				ow.EndChunk(k, c)
				w.Claimed++
			}
			pool.NoteChunk(p, -1)
			ctxc.Flush()
			ow.AddWork(ctxc.Work)
			w.ElapsedNS = time.Since(t0).Nanoseconds()
		})
	}
	if runErr != nil {
		return countResult{}, runErr
	}
	cr := countResult{
		Claimed: make([]int64, procs),
		Steals:  make([]int64, procs),
		Work:    sched.GreedySchedule(chunkWork, procs),
		Idle:    idleOf(acc),
	}
	for p := range acc {
		cr.Claimed[p] = acc[p].Claimed
		cr.Steals[p] = acc[p].Stolen
	}
	return cr, nil
}

// idleOf sums each processor's wall-clock wait for the slowest one.
func idleOf(acc []sched.PerWorker) time.Duration {
	var m, idle int64
	for i := range acc {
		if acc[i].ElapsedNS > m {
			m = acc[i].ElapsedNS
		}
	}
	for i := range acc {
		idle += m - acc[i].ElapsedNS
	}
	return time.Duration(idle)
}

// parallelFrequentOne counts 1-itemsets with per-processor count arrays,
// polling for cancellation every stride transactions. On cancellation the
// caller must discard the (partial) counts — it checks the context before
// using the result.
func parallelFrequentOne(ctx context.Context, d *db.Database, minCount int64, pool *sched.Pool, fi *faultinj.Injector, stride int) ([]apriori.FrequentItemset, error) {
	procs := pool.Procs()
	local := make([][]int64, procs)
	slices := d.BlockPartition(procs)
	err := pool.Run(func(p int) {
		fi.Fire("f1", 1, p, -1)
		counts := make([]int64, d.NumItems())
		s := slices[p]
		for i := s.Lo; i < s.Hi; i++ {
			if (i-s.Lo)%stride == 0 && ctx.Err() != nil {
				break
			}
			for _, it := range d.Items(i) {
				counts[it]++
			}
		}
		local[p] = counts
	})
	if err != nil {
		return nil, err
	}
	var out []apriori.FrequentItemset
	for it := 0; it < d.NumItems(); it++ {
		var c int64
		for p := 0; p < procs; p++ {
			c += local[p][it]
		}
		if c >= minCount {
			out = append(out, apriori.FrequentItemset{Items: itemset.New(itemset.Item(it)), Count: c})
		}
	}
	return out, nil
}

// generateParallel partitions the join units of F_{k-1}'s equivalence
// classes across processors per the balance scheme, generates and prunes in
// parallel, and merges the per-processor candidate lists in lexicographic
// order. Adaptive parallelism (Section 3.1.3) falls back to the sequential
// join when there is too little work — still dispatched through the pool so
// a panic in the join is contained like any other phase.
func generateParallel(prev []itemset.Itemset, opts Options, pool *sched.Pool) ([]itemset.Itemset, bool, []int64, error) {
	classes := itemset.Classes(prev)
	sizes := make([]int, len(classes))
	for i := range classes {
		sizes[i] = classes[i].Size()
	}
	costs, units := partition.MultiClassCosts(sizes)
	k := prev[0].K() + 1
	fi := opts.FaultInj
	perPair := int64(hashtree.WorkJoinPair + (k-2)*hashtree.WorkPruneCheck)
	if opts.Procs == 1 || len(units) < opts.AdaptiveMinUnits {
		// Sequential generation, run on worker 0 (all work attributed
		// there; the other workers return immediately at the barrier).
		var cands []itemset.Itemset
		var joinPairs int64
		err := pool.Run(func(p int) {
			fi.Fire("gen", k, p, -1)
			if p != 0 {
				return
			}
			cands, joinPairs, _ = apriori.GenerateCandidates(prev, opts.NaiveJoin)
		})
		if err != nil {
			return nil, true, nil, err
		}
		work := make([]int64, opts.Procs)
		work[0] = joinPairs * perPair
		return cands, true, work, nil
	}

	var assign *partition.Assignment
	switch opts.Balance {
	case BalanceInterleaved:
		assign = partition.Interleaved(len(units), opts.Procs)
	case BalanceBitonic:
		assign = partition.GreedyBitonic(costs, opts.Procs)
	default:
		assign = partition.Block(len(units), opts.Procs)
	}

	// Invert the assignment once: each worker receives only its own unit
	// list instead of all P workers scanning every entry of assign.Bucket.
	// Unit ids stay ascending within each list, which keeps every worker's
	// output lexicographically sorted (classes are in prefix order and a
	// unit's candidates are ordered by tail pair).
	perProc := make([][]int32, opts.Procs)
	for u, b := range assign.Bucket {
		perProc[b] = append(perProc[b], int32(u))
	}

	inPrev := apriori.PruneSet(prev)

	locals := make([][]itemset.Itemset, opts.Procs)
	genWork := make([]int64, opts.Procs)
	err := pool.Run(func(p int) {
		fi.Fire("gen", k, p, -1)
		var out []itemset.Itemset
		// Accumulate work in a register-resident local and store once:
		// incrementing genWork[p] per unit would bounce the slice's cache
		// line between all P processors (false sharing) for the whole
		// generation phase.
		var work int64
		scratch := make(itemset.Itemset, k)
		// Per-worker arena: surviving candidates are copied into one
		// growing block instead of one heap object per candidate.
		arena := make([]itemset.Item, 0, 64*k)
		for _, u := range perProc[p] {
			cu := units[u]
			cl := &classes[cu.Class]
			work += int64(len(cl.Tails)-cu.Pos-1) * perPair
			for j := cu.Pos + 1; j < len(cl.Tails); j++ {
				if apriori.JoinPrune(inPrev, scratch, cl.Prefix, cl.Tails[cu.Pos], cl.Tails[j]) {
					n := len(arena)
					arena = append(arena, scratch...)
					out = append(out, itemset.Itemset(arena[n:n+k:n+k]))
				}
			}
		}
		genWork[p] = work
		locals[p] = out
	})
	if err != nil {
		return nil, false, nil, err
	}
	return mergeSortedCandidates(locals), false, genWork, nil
}

// mergeSortedCandidates k-way merges the per-processor (already
// lexicographically sorted) candidate lists through the shared heap-based
// merge: O(C·log P) comparisons, replacing the former O(C·P) linear head
// scan (which itself replaced a serial O(C log C) global sort).
func mergeSortedCandidates(locals [][]itemset.Itemset) []itemset.Itemset {
	return itemset.MergeSortedBy(locals, itemset.Itemset.Less)
}
