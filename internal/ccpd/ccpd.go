// Package ccpd implements the paper's shared-memory parallel association
// mining algorithms: CCPD (Common Candidate Partitioned Database — a shared
// hash tree built in parallel with per-node locks, the database logically
// split across processors) and PCCD (Partitioned Candidate Common Database —
// per-processor local trees, every processor scanning the whole database).
// Computation balancing for candidate generation (Section 3.1.2), adaptive
// parallelism (Section 3.1.3), database partitioning (Section 3.2.2) and the
// counter update modes of Section 5.2 are all selectable.
package ccpd

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/apriori"
	"repro/internal/db"
	"repro/internal/hashtree"
	"repro/internal/itemset"
	"repro/internal/partition"
)

// BalanceScheme selects the candidate-generation partitioning of
// Section 3.1.2.
type BalanceScheme int

const (
	// BalanceBlock is the naive contiguous split (the unoptimized base).
	BalanceBlock BalanceScheme = iota
	// BalanceInterleaved assigns unit i to processor i mod P.
	BalanceInterleaved
	// BalanceBitonic is the greedy bitonic scheme over all equivalence
	// classes (the COMP optimization).
	BalanceBitonic
)

func (b BalanceScheme) String() string {
	switch b {
	case BalanceInterleaved:
		return "interleaved"
	case BalanceBitonic:
		return "bitonic"
	}
	return "block"
}

// DBPartition selects how the database is split for counting.
type DBPartition int

const (
	// PartitionBlock splits by equal transaction counts.
	PartitionBlock DBPartition = iota
	// PartitionWorkload splits by the estimated Σ C(|t|,k)/T counting cost
	// (the static heuristic of Section 3.2.2).
	PartitionWorkload
)

func (p DBPartition) String() string {
	if p == PartitionWorkload {
		return "workload"
	}
	return "block"
}

// Options configures a parallel run.
type Options struct {
	apriori.Options

	// Procs is the number of worker goroutines ("processors").
	Procs int
	// Counter selects the shared-counter update mode.
	Counter hashtree.CounterMode
	// Balance selects candidate-generation computation balancing.
	Balance BalanceScheme
	// DBPart selects the counting-phase database split.
	DBPart DBPartition
	// AdaptiveMinUnits is the Section 3.1.3 adaptive-parallelism cutoff:
	// when F_{k-1} has fewer join units than this, candidate generation
	// runs sequentially (parallelization overhead would dominate).
	// 0 uses 4×Procs.
	AdaptiveMinUnits int
}

func (o Options) withDefaults() Options {
	if o.Threshold <= 0 {
		o.Threshold = 8
	}
	if o.Procs < 1 {
		o.Procs = 1
	}
	if o.AdaptiveMinUnits == 0 {
		o.AdaptiveMinUnits = 4 * o.Procs
	}
	return o
}

// PhaseTiming records wall-clock and modelled work per phase of one
// iteration. The Work fields count deterministic work units (see the
// hashtree cost model); on hosts without enough real cores the harness uses
// max-over-processors work as the parallel time model.
type PhaseTiming struct {
	K          int
	CandGen    time.Duration // join + prune
	TreeBuild  time.Duration // parallel insert
	Count      time.Duration // support counting
	Reduce     time.Duration // counter reduction + frequent extraction
	Candidates int
	Frequent   int
	// GenSequential reports whether adaptive parallelism chose a
	// sequential candidate generation this iteration.
	GenSequential bool

	// GenWork[p] is processor p's candidate-generation work; for a
	// sequential generation all work lands on processor 0.
	GenWork []int64
	// CountWork[p] is processor p's support-counting work.
	CountWork []int64
	// BuildWork is the total tree-insertion work (parallelized evenly).
	BuildWork int64
	// ReduceWork is the master's serial reduction/extraction work.
	ReduceWork int64
}

// ModelTime returns the modelled parallel time of the iteration: serial
// reduce plus the per-processor maxima of the parallel phases.
func (pt *PhaseTiming) ModelTime(procs int) int64 {
	var t int64
	t += maxOf(pt.GenWork)
	if procs > 0 {
		t += pt.BuildWork / int64(procs)
	}
	t += maxOf(pt.CountWork)
	t += pt.ReduceWork
	return t
}

func maxOf(v []int64) int64 {
	var m int64
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	return m
}

// Stats aggregates a run.
type Stats struct {
	Procs   int
	PerIter []PhaseTiming
	Total   time.Duration
}

// ModelTime sums the per-iteration modelled parallel times.
func (s *Stats) ModelTime() int64 {
	var t int64
	for i := range s.PerIter {
		t += s.PerIter[i].ModelTime(s.Procs)
	}
	return t
}

// TotalCount returns the summed counting time (the phase the paper reports
// dominates at ~85%).
func (s *Stats) TotalCount() time.Duration {
	var t time.Duration
	for _, it := range s.PerIter {
		t += it.Count
	}
	return t
}

// Mine runs CCPD on the database and returns the frequent itemsets plus
// per-phase timings.
func Mine(d *db.Database, opts Options) (*apriori.Result, *Stats, error) {
	opts = opts.withDefaults()
	start := time.Now()
	minCount := opts.MinCount(d.Len())
	res := &apriori.Result{MinCount: minCount, ByK: make([][]apriori.FrequentItemset, 2)}
	stats := &Stats{Procs: opts.Procs}

	// Iteration 1: parallel item counting with private arrays + reduction.
	t0 := time.Now()
	f1 := parallelFrequentOne(d, minCount, opts.Procs)
	res.ByK[1] = f1
	it1 := PhaseTiming{
		K: 1, Count: time.Since(t0), Candidates: d.NumItems(), Frequent: len(f1),
		CountWork: make([]int64, opts.Procs),
	}
	for p, s := range d.BlockPartition(opts.Procs) {
		it1.CountWork[p] = s.EstimatedWork(1) * hashtree.WorkItemScan
	}
	it1.ReduceWork = int64(d.NumItems())
	stats.PerIter = append(stats.PerIter, it1)
	labels := apriori.LabelsFromF1(f1, d.NumItems())

	prev := make([]itemset.Itemset, len(f1))
	for i, f := range f1 {
		prev[i] = f.Items
	}

	for k := 2; len(prev) > 0 && (opts.MaxK == 0 || k <= opts.MaxK); k++ {
		var pt PhaseTiming
		pt.K = k

		t0 = time.Now()
		cands, seq, genWork := generateParallel(prev, opts)
		pt.CandGen = time.Since(t0)
		pt.GenSequential = seq
		pt.GenWork = genWork
		pt.Candidates = len(cands)
		pt.BuildWork = int64(len(cands)) * hashtree.WorkInsert
		if len(cands) == 0 {
			stats.PerIter = append(stats.PerIter, pt)
			break
		}

		t0 = time.Now()
		cfg := hashtree.Config{
			K: k, Fanout: opts.Fanout, Threshold: opts.Threshold,
			Hash: opts.Hash, NumItems: d.NumItems(), Labels: labels,
		}
		tree, err := hashtree.ParallelBuild(cfg, cands, opts.Procs)
		if err != nil {
			return nil, nil, fmt.Errorf("ccpd: iteration %d: %w", k, err)
		}
		pt.TreeBuild = time.Since(t0)

		t0 = time.Now()
		counters := hashtree.NewCounters(opts.Counter, tree.NumCandidates(), opts.Procs)
		var slices []db.Slice
		if opts.DBPart == PartitionWorkload {
			slices = d.WorkloadPartition(opts.Procs, k)
		} else {
			slices = d.BlockPartition(opts.Procs)
		}
		pt.CountWork = make([]int64, opts.Procs)
		var wg sync.WaitGroup
		for p := 0; p < opts.Procs; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				ctx := tree.NewCountCtx(counters, hashtree.CountOpts{
					ShortCircuit: opts.ShortCircuit, Proc: p,
					// Batch shared-counter updates to cut lock/atomic
					// contention on hot candidates (no-op for private mode).
					BatchUpdates: true,
				})
				slices[p].ForEach(func(_ int64, items itemset.Itemset) {
					ctx.CountTransaction(items)
				})
				ctx.Flush()
				pt.CountWork[p] = ctx.Work
			}(p)
		}
		wg.Wait()
		pt.Count = time.Since(t0)

		// Master phase: reduction and frequent selection.
		t0 = time.Now()
		counters.Reduce()
		fk := apriori.ExtractFrequent(tree, counters, minCount)
		pt.Reduce = time.Since(t0)
		pt.ReduceWork = int64(len(cands))
		pt.Frequent = len(fk)

		res.ByK = append(res.ByK, fk)
		stats.PerIter = append(stats.PerIter, pt)
		prev = prev[:0]
		for _, f := range fk {
			prev = append(prev, f.Items)
		}
	}
	stats.Total = time.Since(start)
	return res, stats, nil
}

// parallelFrequentOne counts 1-itemsets with per-processor count arrays.
func parallelFrequentOne(d *db.Database, minCount int64, procs int) []apriori.FrequentItemset {
	local := make([][]int64, procs)
	slices := d.BlockPartition(procs)
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			counts := make([]int64, d.NumItems())
			slices[p].ForEach(func(_ int64, items itemset.Itemset) {
				for _, it := range items {
					counts[it]++
				}
			})
			local[p] = counts
		}(p)
	}
	wg.Wait()
	var out []apriori.FrequentItemset
	for it := 0; it < d.NumItems(); it++ {
		var c int64
		for p := 0; p < procs; p++ {
			c += local[p][it]
		}
		if c >= minCount {
			out = append(out, apriori.FrequentItemset{Items: itemset.New(itemset.Item(it)), Count: c})
		}
	}
	return out
}

// generateParallel partitions the join units of F_{k-1}'s equivalence
// classes across processors per the balance scheme, generates and prunes in
// parallel, and merges the per-processor candidate lists in lexicographic
// order. Adaptive parallelism (Section 3.1.3) falls back to the sequential
// join when there is too little work.
func generateParallel(prev []itemset.Itemset, opts Options) ([]itemset.Itemset, bool, []int64) {
	classes := itemset.Classes(prev)
	sizes := make([]int, len(classes))
	for i := range classes {
		sizes[i] = classes[i].Size()
	}
	costs, units := partition.MultiClassCosts(sizes)
	k := prev[0].K() + 1
	perPair := int64(hashtree.WorkJoinPair + (k-2)*hashtree.WorkPruneCheck)
	if opts.Procs == 1 || len(units) < opts.AdaptiveMinUnits {
		cands, joinPairs, _ := apriori.GenerateCandidates(prev, opts.NaiveJoin)
		// Sequential generation: all work on processor 0.
		work := make([]int64, opts.Procs)
		work[0] = joinPairs * perPair
		return cands, true, work
	}

	var assign *partition.Assignment
	switch opts.Balance {
	case BalanceInterleaved:
		assign = partition.Interleaved(len(units), opts.Procs)
	case BalanceBitonic:
		assign = partition.GreedyBitonic(costs, opts.Procs)
	default:
		assign = partition.Block(len(units), opts.Procs)
	}

	// Invert the assignment once: each worker receives only its own unit
	// list instead of all P workers scanning every entry of assign.Bucket.
	// Unit ids stay ascending within each list, which keeps every worker's
	// output lexicographically sorted (classes are in prefix order and a
	// unit's candidates are ordered by tail pair).
	perProc := make([][]int32, opts.Procs)
	for u, b := range assign.Bucket {
		perProc[b] = append(perProc[b], int32(u))
	}

	inPrev := apriori.PruneSet(prev)

	locals := make([][]itemset.Itemset, opts.Procs)
	genWork := make([]int64, opts.Procs)
	var wg sync.WaitGroup
	for p := 0; p < opts.Procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			var out []itemset.Itemset
			scratch := make(itemset.Itemset, k)
			// Per-worker arena: surviving candidates are copied into one
			// growing block instead of one heap object per candidate.
			arena := make([]itemset.Item, 0, 64*k)
			for _, u := range perProc[p] {
				cu := units[u]
				cl := &classes[cu.Class]
				genWork[p] += int64(len(cl.Tails)-cu.Pos-1) * perPair
				for j := cu.Pos + 1; j < len(cl.Tails); j++ {
					if apriori.JoinPrune(inPrev, scratch, cl.Prefix, cl.Tails[cu.Pos], cl.Tails[j]) {
						n := len(arena)
						arena = append(arena, scratch...)
						out = append(out, itemset.Itemset(arena[n : n+k : n+k]))
					}
				}
			}
			locals[p] = out
		}(p)
	}
	wg.Wait()
	return mergeSortedCandidates(locals), false, genWork
}

// mergeSortedCandidates k-way merges the per-processor (already
// lexicographically sorted) candidate lists, replacing the former global
// sort's serial O(C log C) tail with an O(C·P) pass.
func mergeSortedCandidates(locals [][]itemset.Itemset) []itemset.Itemset {
	nonEmpty, total := 0, 0
	for _, l := range locals {
		if len(l) > 0 {
			nonEmpty++
			total += len(l)
		}
	}
	if total == 0 {
		return nil
	}
	if nonEmpty == 1 {
		for _, l := range locals {
			if len(l) > 0 {
				return l
			}
		}
	}
	out := make([]itemset.Itemset, 0, total)
	idx := make([]int, len(locals))
	for len(out) < total {
		best := -1
		for p := range locals {
			if idx[p] >= len(locals[p]) {
				continue
			}
			if best < 0 || locals[p][idx[p]].Less(locals[best][idx[best]]) {
				best = p
			}
		}
		out = append(out, locals[best][idx[best]])
		idx[best]++
	}
	return out
}
