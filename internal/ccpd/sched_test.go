package ccpd

import (
	"testing"

	"repro/internal/apriori"
	"repro/internal/gen"
	"repro/internal/hashtree"
	"repro/internal/sched"
)

// assertSameOrder checks exact frequent-list equality including order —
// dynamic scheduling must not perturb the output sequence, only the wall
// clock.
func assertSameOrder(t *testing.T, label string, got, want *apriori.Result) {
	t.Helper()
	g, w := got.All(), want.All()
	if len(g) != len(w) {
		t.Fatalf("%s: %d frequent itemsets, want %d", label, len(g), len(w))
	}
	for i := range w {
		if !g[i].Items.Equal(w[i].Items) || g[i].Count != w[i].Count {
			t.Fatalf("%s: item %d = %v(%d), want %v(%d)",
				label, i, g[i].Items, g[i].Count, w[i].Items, w[i].Count)
		}
	}
}

func countWorkTotals(s *Stats) []int64 {
	out := make([]int64, len(s.PerIter))
	for i := range s.PerIter {
		var tot int64
		for _, w := range s.PerIter[i].CountWork {
			tot += w
		}
		out[i] = tot
	}
	return out
}

// TestDynamicMatchesStatic sweeps the dynamic partition modes against the
// static block baseline over counter modes, chunk sizes and processor
// counts: identical frequent sets in identical order, identical per-iteration
// total counting work (the per-transaction work units are partition
// independent), and coherent scheduler observability (claims cover every
// chunk exactly once, the cursor mode never steals).
func TestDynamicMatchesStatic(t *testing.T) {
	d := testDB(t)
	base := apriori.Options{MinSupport: 0.01, ShortCircuit: true}
	ref, refStats, err := Mine(d, Options{Options: base, Procs: 1})
	if err != nil {
		t.Fatal(err)
	}
	refTotals := countWorkTotals(refStats)

	for _, part := range []DBPartition{PartitionDynamic, PartitionStealing} {
		for _, mode := range []hashtree.CounterMode{hashtree.CounterLocked, hashtree.CounterAtomic, hashtree.CounterPrivate} {
			for _, chunk := range []int{1, 64, 997} {
				for _, procs := range []int{1, 4} {
					label := part.String() + "/" + mode.String()
					res, stats, err := Mine(d, Options{
						Options: base, Procs: procs, Counter: mode,
						DBPart: part, ChunkSize: chunk,
					})
					if err != nil {
						t.Fatalf("%s: %v", label, err)
					}
					assertSameOrder(t, label, res, ref)

					totals := countWorkTotals(stats)
					numChunks := int64(sched.NumChunks(d.Len(), chunk))
					for i, it := range stats.PerIter {
						if it.K == 1 {
							continue // iteration 1 has no chunked counting
						}
						if totals[i] != refTotals[i] {
							t.Errorf("%s chunk=%d procs=%d k=%d: total count work %d, want %d",
								label, chunk, procs, it.K, totals[i], refTotals[i])
						}
						if it.Candidates == 0 {
							continue // terminal iteration: no counting ran
						}
						var claimed, steals int64
						for _, c := range it.ChunksClaimed {
							claimed += c
						}
						for _, s := range it.Steals {
							steals += s
						}
						if claimed != numChunks {
							t.Errorf("%s chunk=%d procs=%d k=%d: %d chunks claimed, want %d",
								label, chunk, procs, it.K, claimed, numChunks)
						}
						if part == PartitionDynamic && steals != 0 {
							t.Errorf("%s k=%d: cursor mode reported %d steals", label, it.K, steals)
						}
						if steals > claimed {
							t.Errorf("%s k=%d: steals %d > claims %d", label, it.K, steals, claimed)
						}
					}
				}
			}
		}
	}
}

// TestStaticModesUnchangedByPool re-checks the static paths (now running on
// the persistent pool) against the sequential miner, including observability
// defaults: no chunk claims, no steals.
func TestStaticModesUnchangedByPool(t *testing.T) {
	d := testDB(t)
	base := apriori.Options{MinSupport: 0.01, ShortCircuit: true}
	seqRes, err := apriori.Mine(d, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, part := range []DBPartition{PartitionBlock, PartitionWorkload} {
		res, stats, err := Mine(d, Options{Options: base, Procs: 4, DBPart: part})
		if err != nil {
			t.Fatal(err)
		}
		assertSameOrder(t, part.String(), res, seqRes)
		for _, it := range stats.PerIter {
			if it.ChunksClaimed != nil || it.Steals != nil {
				t.Errorf("%s k=%d: static mode reported chunk claims %v steals %v",
					part, it.K, it.ChunksClaimed, it.Steals)
			}
		}
	}
}

// TestDynamicBeatsStaticOnSkew plants a heavy tail of giant transactions at
// the end of the database (the worst case for a block partition: one
// processor owns the entire tail) and asserts the dynamic modes cut the
// modelled idle work. This is the acceptance criterion of the scheduler
// change in deterministic form — on a host with real cores the wall-clock
// gap follows the modelled one.
func TestDynamicBeatsStaticOnSkew(t *testing.T) {
	d, err := gen.Generate(gen.Params{
		N: 80, L: 20, I: 4, T: 8, D: 2000, Seed: 7,
		SkewFrac: 0.05, SkewMult: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The heavy tail makes deep levels combinatorially dense; MaxK bounds
	// the run (the scheduling comparison only needs the counting phases).
	base := apriori.Options{MinSupport: 0.02, ShortCircuit: true, MaxK: 3}
	run := func(part DBPartition) *Stats {
		_, stats, err := Mine(d, Options{
			Options: base, Procs: 4, DBPart: part, ChunkSize: 8,
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	static := run(PartitionBlock)
	staticIdle := static.CountIdleWork()
	if staticIdle == 0 {
		t.Fatal("skewed database produced no static imbalance; test is vacuous")
	}
	for _, part := range []DBPartition{PartitionDynamic, PartitionStealing} {
		dyn := run(part)
		idle := dyn.CountIdleWork()
		// Dynamic idle is bounded by roughly one chunk's work per
		// processor per iteration; on this workload that is far below
		// half the static imbalance.
		if idle*2 >= staticIdle {
			t.Errorf("%s: modelled idle %d not well below static %d", part, idle, staticIdle)
		}
		if dyn.ModelTime() >= static.ModelTime() {
			t.Errorf("%s: model time %d not below static %d", part, dyn.ModelTime(), static.ModelTime())
		}
	}
	// The stealing mode must actually steal on a skewed tail: the owner of
	// the heavy block cannot finish first.
	if st := run(PartitionStealing); st.TotalSteals() == 0 {
		t.Error("stealing mode reported zero steals on a skewed database")
	}
}
