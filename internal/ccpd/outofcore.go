package ccpd

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/apriori"
	"repro/internal/db"
	"repro/internal/db/seg"
	"repro/internal/hashtree"
	"repro/internal/itemset"
	"repro/internal/sched"
)

// SegmentedOptions configures an out-of-core CCPD run over a segmented store.
type SegmentedOptions struct {
	Options
	// MemBudget caps the bytes of decoded segments resident at once (the
	// seg.Pipeline budget). 0 double-buffers; a budget below two segments
	// degrades to synchronous load-then-count.
	MemBudget int64
	// LoadDelay adds synthetic latency to every segment load — the
	// prefetch-overlap benchmarks' slow-disk model.
	LoadDelay time.Duration
}

// MineSegmented mines a segmented store without ever materializing the whole
// database: every counting pass streams the segments through a pipeline that
// prefetches segment N+1 while the pool counts segment N. The frequent sets
// and the deterministic work model (CountWork, ModelTime, IdleWork) are
// bit-identical to an in-RAM Mine over the same data and options: each
// worker (static block) or chunk (dynamic modes) covers exactly the same
// global transaction ranges, merely delivered a segment at a time.
func MineSegmented(r *seg.Reader, opts SegmentedOptions) (*apriori.Result, *Stats, error) {
	return MineSegmentedCtx(context.Background(), r, opts)
}

// MineSegmentedCtx is MineSegmented under a context; cancellation behaves
// exactly like MineCtx. Stats.OutOfCore carries the pipeline accounting.
//
// PartitionWorkload is not supported (its boundary computation needs a full
// extra database pass before any counting), and neither is checkpointing.
//
//armlint:cancellable
func MineSegmentedCtx(ctx context.Context, r *seg.Reader, opts SegmentedOptions) (*apriori.Result, *Stats, error) {
	o := opts.Options.withDefaults()
	if o.DBPart == PartitionWorkload {
		return nil, nil, fmt.Errorf("ccpd: out-of-core mining supports block, dynamic and stealing partitions; workload needs a full up-front pass")
	}
	if o.Checkpoint != "" {
		return nil, nil, fmt.Errorf("ccpd: checkpointing is not supported for out-of-core runs")
	}
	start := time.Now()
	m := &miner{
		opts: o, fi: o.FaultInj,
		minCount: o.MinCount(int(r.NumTx())), //armlint:narrowok int is 64-bit on every supported target, so the int64 transaction count converts losslessly
		rec:      o.Obs,
	}
	m.src = &segSource{
		r: r,
		pipe: r.NewPipeline(seg.PipelineOptions{
			Budget: opts.MemBudget, LoadDelay: opts.LoadDelay, Obs: o.Obs,
		}),
	}
	cleanup := m.setupPool()
	defer cleanup()
	return m.mine(ctx, start)
}

// segSource streams counting passes from a segmented store. One long-lived
// pipeline serves every pass of the run, so its buffers are reused across
// iterations and its stats accumulate the whole mine.
type segSource struct {
	r    *seg.Reader
	pipe *seg.Pipeline
}

// blockRange is processor p's global transaction range under the static
// block partition — the same i*n/p boundaries as db.BlockPartition, in int64.
func blockRange(p, procs int, n int64) (lo, hi int64) {
	return int64(p) * n / int64(procs), int64(p+1) * n / int64(procs)
}

// chunkSpan returns the global chunk ids overlapping [base, segHi).
func chunkSpan(base, segHi, chunkSize int64) (cLo, cHi int) {
	if segHi <= base {
		return 0, 0
	}
	return int(base / chunkSize), int((segHi + chunkSize - 1) / chunkSize)
}

// frequentOne is the streaming iteration 1: per-processor private count
// arrays over block sub-ranges of each segment (summing item counts is
// partition-independent, so the result matches any in-RAM mode), plus the
// work model for the configured partition mode, computed from the same
// per-transaction EstimatedWork figures the in-RAM model uses.
func (s *segSource) frequentOne(ctx context.Context, m *miner) ([]apriori.FrequentItemset, []int64, error) {
	opts := m.opts
	procs := opts.Procs
	numItems := s.r.NumItems()
	n := s.r.NumTx()
	cs := int64(opts.ChunkSize)

	local := make([][]int64, procs)
	for p := range local {
		local[p] = make([]int64, numItems)
	}
	var chunkEst []int64
	blockEst := make([]int64, procs)
	if opts.DBPart.Dynamic() {
		chunkEst = make([]int64, sched.NumChunks(int(n), opts.ChunkSize)) //armlint:narrowok int is 64-bit on every supported target, so the int64 transaction count converts losslessly
	}

	err := s.pipe.ForEach(ctx, func(si int, sd *db.Database) error {
		base := s.r.Segment(si).TxOff
		segHi := base + int64(sd.Len())
		// Work-model attribution, on the coordinator: per-chunk (dynamic) or
		// per-processor-block (static) Σ|t| — EstimatedWork(1) — scaled by
		// the item-scan cost, exactly as iterOneCountWork computes in RAM.
		if chunkEst != nil {
			cLo, cHi := chunkSpan(base, segHi, cs)
			//armlint:allow ctxpoll per-chunk estimation over one resident segment; the enclosing segment loop polls between segments
			for c := cLo; c < cHi; c++ {
				lo, hi := maxI64(int64(c)*cs, base), minI64(int64(c+1)*cs, segHi)
				var w int64
				//armlint:allow ctxpoll chunk slice of one resident segment; the enclosing segment loop polls between segments
				for i := lo; i < hi; i++ {
					w += int64(sd.Items(int(i - base)).K())
				}
				chunkEst[c] += w * hashtree.WorkItemScan
			}
		} else {
			//armlint:allow ctxpoll per-processor estimation over one resident segment; the enclosing segment loop polls between segments
			for p := 0; p < procs; p++ {
				lo, hi := blockRange(p, procs, n)
				lo, hi = maxI64(lo, base), minI64(hi, segHi)
				var w int64
				//armlint:allow ctxpoll block slice of one resident segment; the enclosing segment loop polls between segments
				for i := lo; i < hi; i++ {
					w += int64(sd.Items(int(i - base)).K())
				}
				blockEst[p] += w * hashtree.WorkItemScan
			}
		}
		return m.pool.Run(func(p int) {
			m.fi.Fire("f1", 1, p, si)
			counts := local[p]
			lo, hi := blockRange(p, procs, n)
			lo, hi = maxI64(lo, base), minI64(hi, segHi)
			for i := lo; i < hi; i++ {
				if (i-lo)%cs == 0 && ctx.Err() != nil {
					break
				}
				for _, it := range sd.Items(int(i - base)) {
					counts[it]++
				}
			}
		})
	})
	if err != nil && !errors.Is(err, context.Canceled) {
		// A canceled pass falls through: the caller's robust.Canceled check
		// discards the partial counts, the same contract as the in-RAM path.
		return nil, nil, err
	}

	var out []apriori.FrequentItemset
	for it := 0; it < numItems; it++ {
		var c int64
		for p := 0; p < procs; p++ {
			c += local[p][it]
		}
		if c >= m.minCount {
			out = append(out, apriori.FrequentItemset{Items: itemset.New(itemset.Item(it)), Count: c})
		}
	}
	work := blockEst
	if chunkEst != nil {
		work = sched.GreedySchedule(chunkEst, procs)
	}
	return out, work, nil
}

// countPhase streams one support-counting pass. Workers keep their CountCtx
// (tree walk state, batched counter updates, work tally) across segments, so
// the pass-level accounting is identical to counting the concatenated
// database:
//
//   - Static block: worker p counts the intersection of its global block
//     [p·n/P, (p+1)·n/P) with each segment — the same transactions, in the
//     same order, as the in-RAM BlockPartition, so per-processor CountWork
//     matches bit-for-bit.
//   - Dynamic/stealing: the global ChunkSize grid is preserved; each segment
//     claims its overlapping chunk ids from a per-segment cursor or deque
//     set. A chunk straddling a segment edge is counted in two pieces (its
//     work accumulates across the two sequential segment passes — no race,
//     the pool barrier sits between them), so chunkWork, and with it the
//     GreedySchedule CountWork model, is bit-identical to in-RAM. Claims and
//     steals remain runtime-dependent, and ChunksClaimed sums to the chunk
//     count plus one extra claim per straddled boundary.
func (s *segSource) countPhase(ctx context.Context, m *miner, tree *hashtree.Tree, counters *hashtree.Counters, k int) (countResult, error) {
	opts := m.opts
	procs := opts.Procs
	rec := opts.Obs
	fi := opts.FaultInj
	n := s.r.NumTx()
	cs := int64(opts.ChunkSize)

	acc := make([]sched.PerWorker, procs)
	newCtx := newCountCtxFn(tree, counters, opts, k)
	ctxs := make([]*hashtree.CountCtx, procs)

	var chunkWork []int64
	if opts.DBPart.Dynamic() {
		chunkWork = make([]int64, sched.NumChunks(int(n), opts.ChunkSize)) //armlint:narrowok int is 64-bit on every supported target, so the int64 transaction count converts losslessly
	}

	err := s.pipe.ForEach(ctx, func(si int, sd *db.Database) error {
		base := s.r.Segment(si).TxOff
		segHi := base + int64(sd.Len())

		countChunk := func(ctxc *hashtree.CountCtx, c int) {
			lo, hi := maxI64(int64(c)*cs, base), minI64(int64(c+1)*cs, segHi)
			before := ctxc.Work
			//armlint:allow ctxpoll a chunk is at most ChunkSize transactions; the claim loop around it polls between chunks
			for i := lo; i < hi; i++ {
				ctxc.CountTransaction(sd.Items(int(i - base)))
			}
			// Claimed once per segment; segments are separated by the pool
			// barrier, so the accumulation is race-free even for chunks that
			// straddle a segment edge.
			chunkWork[c] += ctxc.Work - before
		}

		switch {
		case !opts.DBPart.Dynamic():
			return m.pool.Run(func(p int) {
				t0 := time.Now()
				fi.Fire("count", k, p, si)
				if ctxs[p] == nil {
					ctxs[p] = newCtx(p)
				}
				ctxc := ctxs[p]
				lo, hi := blockRange(p, procs, n)
				lo, hi = maxI64(lo, base), minI64(hi, segHi)
				for i := lo; i < hi; i++ {
					if (i-lo)%cs == 0 && ctx.Err() != nil {
						break
					}
					ctxc.CountTransaction(sd.Items(int(i - base)))
				}
				acc[p].ElapsedNS += time.Since(t0).Nanoseconds()
			})
		case opts.DBPart == PartitionStealing:
			cLo, cHi := chunkSpan(base, segHi, cs)
			st := sched.NewStealing(procs)
			st.SeedBlocks(cHi - cLo)
			return m.pool.Run(func(p int) {
				t0 := time.Now()
				if ctxs[p] == nil {
					ctxs[p] = newCtx(p)
				}
				ctxc := ctxs[p]
				w := &acc[p]
				ow := rec.Worker(p)
				for ctx.Err() == nil {
					lc, victim, ok := st.Next(p)
					if !ok {
						break
					}
					c := cLo + int(lc)
					if victim != p {
						w.Stolen++
						ow.Steal(k, c, victim)
					}
					m.pool.NoteChunk(p, c)
					fi.Fire("count", k, p, c)
					ow.BeginChunk(k, c)
					countChunk(ctxc, c)
					ow.EndChunk(k, c)
					w.Claimed++
				}
				m.pool.NoteChunk(p, -1)
				w.ElapsedNS += time.Since(t0).Nanoseconds()
			})
		default: // PartitionDynamic
			cLo, cHi := chunkSpan(base, segHi, cs)
			cur := sched.NewCursor(cHi - cLo)
			return m.pool.Run(func(p int) {
				t0 := time.Now()
				if ctxs[p] == nil {
					ctxs[p] = newCtx(p)
				}
				ctxc := ctxs[p]
				w := &acc[p]
				ow := rec.Worker(p)
				for ctx.Err() == nil {
					lc, ok := cur.Next()
					if !ok {
						break
					}
					c := cLo + lc
					m.pool.NoteChunk(p, c)
					fi.Fire("count", k, p, c)
					ow.BeginChunk(k, c)
					countChunk(ctxc, c)
					ow.EndChunk(k, c)
					w.Claimed++
				}
				m.pool.NoteChunk(p, -1)
				w.ElapsedNS += time.Since(t0).Nanoseconds()
			})
		}
	})
	if err != nil && !errors.Is(err, context.Canceled) {
		// Cancellation falls through with partial counts; buildCountExtract's
		// robust.Canceled check right after countPhase discards them — the
		// same contract as the in-RAM phase.
		return countResult{}, err
	}

	// Final per-worker flush of batched counter updates and work tallies.
	if err := m.pool.Run(func(p int) {
		if ctxs[p] == nil {
			return
		}
		ctxs[p].Flush()
		rec.Worker(p).AddWork(ctxs[p].Work)
		acc[p].Work = ctxs[p].Work
	}); err != nil {
		return countResult{}, err
	}

	cr := countResult{Idle: idleOf(acc)}
	if opts.DBPart.Dynamic() {
		cr.Work = sched.GreedySchedule(chunkWork, procs)
		cr.Claimed = make([]int64, procs)
		cr.Steals = make([]int64, procs)
		for p := range acc {
			cr.Claimed[p] = acc[p].Claimed
			cr.Steals[p] = acc[p].Stolen
		}
	} else {
		cr.Work = make([]int64, procs)
		for p := range acc {
			cr.Work[p] = acc[p].Work
		}
	}
	return cr, nil
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
