package ccpd

import (
	"testing"

	"repro/internal/apriori"
	"repro/internal/hashtree"
	"repro/internal/itemset"
	"repro/internal/sched"
)

// TestGenerateParallelMatchesSequential checks the parallel candidate
// generation directly against apriori.GenerateCandidates: identical candidate
// lists in identical (lexicographic) order, for every balance scheme and
// several processor counts. Order equality is what validates the k-way merge
// of per-processor outputs.
func TestGenerateParallelMatchesSequential(t *testing.T) {
	d := testDB(t)
	res, err := apriori.Mine(d, apriori.Options{MinSupport: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	levels := 0
	for k := 2; k < len(res.ByK); k++ {
		prev := make([]itemset.Itemset, len(res.ByK[k]))
		for i, f := range res.ByK[k] {
			prev[i] = f.Items
		}
		if len(prev) == 0 {
			continue
		}
		levels++
		want, wantPairs, _ := apriori.GenerateCandidates(prev, false)
		for _, b := range []BalanceScheme{BalanceBlock, BalanceInterleaved, BalanceBitonic} {
			for _, procs := range []int{2, 3, 8} {
				opts := Options{Procs: procs, Balance: b, AdaptiveMinUnits: 1}
				opts.Options = apriori.Options{}
				pool := sched.NewPool(procs)
				got, seq, genWork, err := generateParallel(prev, opts.withDefaults(), pool)
				pool.Close()
				if err != nil {
					t.Fatalf("k=%d %v procs=%d: %v", k+1, b, procs, err)
				}
				if seq {
					t.Fatalf("k=%d %v procs=%d: fell back to sequential with cutoff 1", k+1, b, procs)
				}
				if len(genWork) != procs {
					t.Fatalf("k=%d %v procs=%d: genWork len %d", k+1, b, procs, len(genWork))
				}
				var totalWork int64
				for _, w := range genWork {
					totalWork += w
				}
				perPair := int64(hashtree.WorkJoinPair + (prev[0].K()-1)*hashtree.WorkPruneCheck)
				if totalWork != wantPairs*perPair {
					t.Errorf("k=%d %v procs=%d: total gen work %d, want %d",
						k+1, b, procs, totalWork, wantPairs*perPair)
				}
				if len(got) != len(want) {
					t.Fatalf("k=%d %v procs=%d: %d candidates, want %d", k+1, b, procs, len(got), len(want))
				}
				for i := range want {
					if !got[i].Equal(want[i]) {
						t.Fatalf("k=%d %v procs=%d: candidate[%d] = %v, want %v (merge order broken)",
							k+1, b, procs, i, got[i], want[i])
					}
				}
			}
		}
	}
	if levels < 2 {
		t.Fatalf("only %d candidate-generation levels exercised; weak test", levels)
	}
}
