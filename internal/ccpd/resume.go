package ccpd

import (
	"context"
	"fmt"
	"time"

	"repro/internal/apriori"
	"repro/internal/db"
	"repro/internal/itemset"
	"repro/internal/robust/ckpt"
)

// checkpoint writes the run's current state to Options.Checkpoint (a no-op
// when checkpointing is disabled). nextK is the iteration a resume starts
// at; done marks the natural fixpoint.
func (m *miner) checkpoint(nextK int, done bool) error {
	if m.opts.Checkpoint == "" {
		return nil
	}
	c := &ckpt.Checkpoint{
		MinCount:   m.minCount,
		DBLen:      int64(m.d.Len()),
		NumItems:   int64(m.d.NumItems()),
		TotalItems: m.d.TotalItems(),
		Procs:      m.opts.Procs,
		OptsHash:   m.opts.fingerprint(),
		NextK:      nextK,
		Done:       done,
		ByK:        m.res.ByK,
		Iters:      make([]ckpt.IterSnapshot, len(m.stats.PerIter)),
	}
	for i := range m.stats.PerIter {
		c.Iters[i] = snapshotOf(&m.stats.PerIter[i])
	}
	if err := c.WriteFile(m.opts.Checkpoint); err != nil {
		return fmt.Errorf("ccpd: checkpoint %q: %w", m.opts.Checkpoint, err)
	}
	m.ckpts++
	m.rec.SetGauge("armine_checkpoints_written_total", float64(m.ckpts))
	return nil
}

// snapshotOf extracts the deterministic work-model slice of a PhaseTiming —
// the part a resumed run must carry forward bit-identically. Wall-clock
// durations stay behind: a resumed run only clocks the work it performs.
func snapshotOf(pt *PhaseTiming) ckpt.IterSnapshot {
	return ckpt.IterSnapshot{
		K:             pt.K,
		Candidates:    pt.Candidates,
		Frequent:      pt.Frequent,
		GenSequential: pt.GenSequential,
		Batches:       pt.Batches,
		BuildWork:     pt.BuildWork,
		ReduceWork:    pt.ReduceWork,
		GenWork:       pt.GenWork,
		CountWork:     pt.CountWork,
		ChunksClaimed: pt.ChunksClaimed,
		Steals:        pt.Steals,
	}
}

// timingOf rebuilds the PhaseTiming of a checkpointed iteration (durations
// zero — the resumed process did not perform that work).
func timingOf(s *ckpt.IterSnapshot) PhaseTiming {
	return PhaseTiming{
		K:             s.K,
		Candidates:    s.Candidates,
		Frequent:      s.Frequent,
		GenSequential: s.GenSequential,
		Batches:       s.Batches,
		BuildWork:     s.BuildWork,
		ReduceWork:    s.ReduceWork,
		GenWork:       s.GenWork,
		CountWork:     s.CountWork,
		ChunksClaimed: s.ChunksClaimed,
		Steals:        s.Steals,
	}
}

// Resume continues a checkpointed CCPD run bit-identically: the frequent
// sets and work-model stats of the completed iterations come from the
// snapshot, and mining restarts at the recorded iteration against the same
// database. The offered options must match the checkpointed run (same
// support, tree shape, balance/partition modes, Procs — everything the
// options fingerprint covers) except MaxK, which may grow: resuming a
// MaxK-bounded run with a larger bound extends it. Resuming a run that
// reached its fixpoint returns the reconstructed result immediately.
//
// Cancellation and panic containment behave exactly as in MineCtx, and the
// resumed run keeps checkpointing to the same path when Options.Checkpoint
// is set.
func Resume(ctx context.Context, path string, d *db.Database, opts Options) (*apriori.Result, *Stats, error) {
	opts = opts.withDefaults()
	start := time.Now()
	c, err := ckpt.ReadCheckpointFile(path)
	if err != nil {
		return nil, nil, err
	}
	if err := validateCheckpoint(c, d, opts); err != nil {
		return nil, nil, err
	}

	m, cleanup := newMiner(d, opts)
	defer cleanup()
	m.res = &apriori.Result{MinCount: m.minCount, ByK: c.ByK}
	m.stats = &Stats{Procs: opts.Procs, PerIter: make([]PhaseTiming, len(c.Iters))}
	for i := range c.Iters {
		m.stats.PerIter[i] = timingOf(&c.Iters[i])
	}
	if c.Done {
		// The checkpointed run reached its fixpoint; nothing to mine.
		m.stats.Total = time.Since(start)
		return m.res, m.stats, nil
	}
	m.labels = apriori.LabelsFromF1(c.ByK[1], d.NumItems())

	last := c.ByK[len(c.ByK)-1]
	prev := make([]itemset.Itemset, len(last))
	for i, f := range last {
		prev[i] = f.Items
	}
	err = m.loop(ctx, c.NextK, prev)
	m.stats.Total = time.Since(start)
	return m.finish(err)
}

// validateCheckpoint refuses snapshots that do not belong to (d, opts): a
// resume against the wrong database or different mining options would not be
// a continuation of the original run.
func validateCheckpoint(c *ckpt.Checkpoint, d *db.Database, opts Options) error {
	minCount := opts.MinCount(d.Len())
	switch {
	case c.DBLen != int64(d.Len()) || c.NumItems != int64(d.NumItems()) || c.TotalItems != d.TotalItems():
		return fmt.Errorf("ccpd: resume: checkpoint is for a different database (len=%d items=%d total=%d, have len=%d items=%d total=%d)",
			c.DBLen, c.NumItems, c.TotalItems, d.Len(), d.NumItems(), d.TotalItems())
	case c.MinCount != minCount:
		return fmt.Errorf("ccpd: resume: checkpoint min count %d differs from options' %d", c.MinCount, minCount)
	case c.Procs != opts.Procs:
		return fmt.Errorf("ccpd: resume: checkpoint recorded Procs=%d, options have %d", c.Procs, opts.Procs)
	case c.OptsHash != opts.fingerprint():
		return fmt.Errorf("ccpd: resume: options fingerprint mismatch (checkpoint %#x, options %#x)", c.OptsHash, opts.fingerprint())
	case len(c.ByK) < 2:
		return fmt.Errorf("ccpd: resume: checkpoint has no iteration-1 result")
	case !c.Done && c.NextK != len(c.ByK):
		return fmt.Errorf("ccpd: resume: inconsistent checkpoint (nextK=%d with %d recorded levels)", c.NextK, len(c.ByK))
	}
	return nil
}
