package ccpd

import (
	"testing"

	"repro/internal/apriori"
	"repro/internal/db"
	"repro/internal/gen"
	"repro/internal/hashtree"
	"repro/internal/itemset"
)

func testDB(t *testing.T) *db.Database {
	t.Helper()
	d, err := gen.Generate(gen.Params{N: 80, L: 20, I: 4, T: 8, D: 800, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// resultKey flattens a result into a comparable map.
func resultKey(res *apriori.Result) map[string]int64 {
	out := map[string]int64{}
	for _, f := range res.All() {
		out[f.Items.Key()] = f.Count
	}
	return out
}

func assertSameResult(t *testing.T, label string, got, want *apriori.Result) {
	t.Helper()
	g, w := resultKey(got), resultKey(want)
	if len(g) != len(w) {
		t.Fatalf("%s: %d frequent itemsets, want %d", label, len(g), len(w))
	}
	for k, c := range w {
		if g[k] != c {
			s, _ := itemset.ParseKey(k)
			t.Fatalf("%s: support of %v = %d, want %d", label, s, g[k], c)
		}
	}
}

func TestCCPDMatchesSequential(t *testing.T) {
	d := testDB(t)
	seqRes, err := apriori.Mine(d, apriori.Options{MinSupport: 0.01, ShortCircuit: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, procs := range []int{1, 2, 4, 8} {
		for _, mode := range []hashtree.CounterMode{hashtree.CounterLocked, hashtree.CounterAtomic, hashtree.CounterPrivate} {
			opts := Options{
				Options: apriori.Options{MinSupport: 0.01, ShortCircuit: true},
				Procs:   procs, Counter: mode, Balance: BalanceBitonic,
			}
			res, stats, err := Mine(d, opts)
			if err != nil {
				t.Fatal(err)
			}
			assertSameResult(t, mode.String(), res, seqRes)
			if stats.Procs != procs || len(stats.PerIter) == 0 {
				t.Errorf("stats malformed: %+v", stats)
			}
		}
	}
}

func TestCCPDBalanceSchemes(t *testing.T) {
	d := testDB(t)
	seqRes, _ := apriori.Mine(d, apriori.Options{MinSupport: 0.01})
	for _, b := range []BalanceScheme{BalanceBlock, BalanceInterleaved, BalanceBitonic} {
		res, _, err := Mine(d, Options{
			Options: apriori.Options{MinSupport: 0.01},
			Procs:   4, Balance: b,
			AdaptiveMinUnits: 1, // force parallel generation
		})
		if err != nil {
			t.Fatal(err)
		}
		assertSameResult(t, b.String(), res, seqRes)
	}
}

func TestCCPDDBPartitionModes(t *testing.T) {
	d := testDB(t)
	seqRes, _ := apriori.Mine(d, apriori.Options{MinSupport: 0.01})
	for _, p := range []DBPartition{PartitionBlock, PartitionWorkload} {
		res, _, err := Mine(d, Options{
			Options: apriori.Options{MinSupport: 0.01},
			Procs:   4, DBPart: p,
		})
		if err != nil {
			t.Fatal(err)
		}
		assertSameResult(t, p.String(), res, seqRes)
	}
}

func TestCCPDTreeBalancingVariants(t *testing.T) {
	d := testDB(t)
	seqRes, _ := apriori.Mine(d, apriori.Options{MinSupport: 0.01})
	for _, h := range []hashtree.HashKind{hashtree.HashInterleaved, hashtree.HashBitonic} {
		for _, sc := range []bool{false, true} {
			res, _, err := Mine(d, Options{
				Options: apriori.Options{MinSupport: 0.01, Hash: h, ShortCircuit: sc},
				Procs:   3,
			})
			if err != nil {
				t.Fatal(err)
			}
			assertSameResult(t, h.String(), res, seqRes)
		}
	}
}

func TestPCCDMatchesSequential(t *testing.T) {
	d := testDB(t)
	seqRes, _ := apriori.Mine(d, apriori.Options{MinSupport: 0.01})
	for _, procs := range []int{1, 3, 4} {
		res, stats, err := MinePCCD(d, Options{
			Options: apriori.Options{MinSupport: 0.01},
			Procs:   procs,
		})
		if err != nil {
			t.Fatal(err)
		}
		assertSameResult(t, "pccd", res, seqRes)
		if len(stats.PerIter) == 0 {
			t.Error("missing timings")
		}
	}
}

func TestAdaptiveParallelism(t *testing.T) {
	d := testDB(t)
	// Huge cutoff: generation must go sequential every iteration.
	_, stats, err := Mine(d, Options{
		Options:          apriori.Options{MinSupport: 0.01},
		Procs:            4,
		AdaptiveMinUnits: 1 << 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range stats.PerIter[1:] {
		if it.Candidates > 0 && !it.GenSequential {
			t.Errorf("K=%d: expected sequential generation", it.K)
		}
	}
	// Cutoff 1: generation parallel whenever there are units.
	_, stats, err = Mine(d, Options{
		Options:          apriori.Options{MinSupport: 0.01},
		Procs:            4,
		AdaptiveMinUnits: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	sawParallel := false
	for _, it := range stats.PerIter[1:] {
		if !it.GenSequential && it.Candidates > 0 {
			sawParallel = true
		}
	}
	if !sawParallel {
		t.Error("no parallel candidate generation observed")
	}
}

func TestScanBytes(t *testing.T) {
	d := testDB(t)
	ccpd := ScanBytes(d, 5, 8, false)
	pccd := ScanBytes(d, 5, 8, true)
	if pccd != 8*ccpd {
		t.Errorf("PCCD should scan P× more: %d vs %d", pccd, ccpd)
	}
}

func TestStatsTotalCount(t *testing.T) {
	d := testDB(t)
	_, stats, err := Mine(d, Options{Options: apriori.Options{MinSupport: 0.01}, Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalCount() <= 0 {
		t.Error("TotalCount should be positive")
	}
	if stats.Total < stats.TotalCount() {
		t.Error("total time below counting time")
	}
}

func TestSchemeStrings(t *testing.T) {
	if BalanceBlock.String() != "block" || BalanceInterleaved.String() != "interleaved" || BalanceBitonic.String() != "bitonic" {
		t.Error("BalanceScheme strings")
	}
	if PartitionBlock.String() != "block" || PartitionWorkload.String() != "workload" {
		t.Error("DBPartition strings")
	}
}

func TestEmptyDatabaseParallel(t *testing.T) {
	d := db.New(5)
	res, _, err := Mine(d, Options{Options: apriori.Options{MinSupport: 0.5}, Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumFrequent() != 0 {
		t.Errorf("empty db mined %d itemsets", res.NumFrequent())
	}
	res, _, err = MinePCCD(d, Options{Options: apriori.Options{MinSupport: 0.5}, Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumFrequent() != 0 {
		t.Errorf("empty db PCCD mined %d itemsets", res.NumFrequent())
	}
}

func TestMoreProcsThanRows(t *testing.T) {
	d := db.New(6)
	d.Append(1, itemset.New(1, 2, 3))
	d.Append(2, itemset.New(1, 2, 3))
	res, _, err := Mine(d, Options{Options: apriori.Options{AbsSupport: 2}, Procs: 16})
	if err != nil {
		t.Fatal(err)
	}
	if res.SupportOf(itemset.New(1, 2, 3)) != 2 {
		t.Errorf("support(123) = %d", res.SupportOf(itemset.New(1, 2, 3)))
	}
}
