package ccpd

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"repro/internal/apriori"
	"repro/internal/hashtree"
	"repro/internal/obs"
)

// TestObsEquivalence is the observer-effect gate: mining with a recorder
// attached must yield bit-identical frequent sets and work models to mining
// without one. The recorder may measure; it must not perturb.
func TestObsEquivalence(t *testing.T) {
	d := testDB(t)
	for _, part := range []DBPartition{PartitionBlock, PartitionWorkload, PartitionDynamic, PartitionStealing} {
		base := Options{
			Options: apriori.Options{MinSupport: 0.01, ShortCircuit: true},
			Procs:   4, Counter: hashtree.CounterAtomic,
			Balance: BalanceBitonic, DBPart: part, ChunkSize: 16,
		}
		plainRes, plainStats, err := Mine(d, base)
		if err != nil {
			t.Fatal(err)
		}
		obsOpts := base
		obsOpts.Obs = obs.NewRecorder(base.Procs)
		obsRes, obsStats, err := Mine(d, obsOpts)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResult(t, part.String()+"/obs", obsRes, plainRes)
		if g, w := obsStats.ModelTime(), plainStats.ModelTime(); g != w {
			t.Errorf("%s: ModelTime with obs = %d, without = %d", part, g, w)
		}
		if len(obsStats.PerIter) != len(plainStats.PerIter) {
			t.Fatalf("%s: iteration counts differ", part)
		}
		for i := range plainStats.PerIter {
			g, w := obsStats.PerIter[i], plainStats.PerIter[i]
			if !reflect.DeepEqual(g.CountWork, w.CountWork) || !reflect.DeepEqual(g.GenWork, w.GenWork) {
				t.Errorf("%s k=%d: work vectors differ with obs attached", part, w.K)
			}
		}
		if obsOpts.Obs.NumEvents() == 0 {
			t.Errorf("%s: recorder attached but recorded nothing", part)
		}
	}
}

// TestObsConcurrentRecording exercises concurrent per-worker event recording
// under the stealing partition with shared counters — the densest recording
// pattern — so the race detector can vet the single-writer-per-track design.
func TestObsConcurrentRecording(t *testing.T) {
	d := testDB(t)
	rec := obs.NewRecorder(4)
	for run := 0; run < 3; run++ {
		rec.Reset()
		_, _, err := Mine(d, Options{
			Options: apriori.Options{MinSupport: 0.01, ShortCircuit: true},
			Procs:   4, Counter: hashtree.CounterAtomic,
			Balance: BalanceBitonic, DBPart: PartitionStealing, ChunkSize: 8,
			Obs: rec,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := rec.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if err := rec.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
}

// TestTraceMatchesStats cross-checks the two reporting paths: the per-track
// chunk spans in the exported trace must agree with the PhaseTiming
// ChunksClaimed/Steals counters and the metrics snapshot, per processor.
func TestTraceMatchesStats(t *testing.T) {
	d := testDB(t)
	const procs = 4
	rec := obs.NewRecorder(procs)
	_, stats, err := Mine(d, Options{
		Options: apriori.Options{MinSupport: 0.01, ShortCircuit: true},
		Procs:   procs, Counter: hashtree.CounterAtomic,
		Balance: BalanceBitonic, DBPart: PartitionStealing, ChunkSize: 16,
		Obs: rec,
	})
	if err != nil {
		t.Fatal(err)
	}

	wantClaimed := make([]int64, procs)
	wantSteals := make([]int64, procs)
	for _, it := range stats.PerIter {
		for p, c := range it.ChunksClaimed {
			wantClaimed[p] += c
		}
		for p, s := range it.Steals {
			wantSteals[p] += s
		}
	}

	snap := rec.Snapshot()
	var buf bytes.Buffer
	if err := rec.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Cat string `json:"cat"`
			Ph  string `json:"ph"`
			Tid int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace JSON invalid: %v", err)
	}
	gotChunks := make([]int64, procs)
	gotSteals := make([]int64, procs)
	for _, ev := range doc.TraceEvents {
		if ev.Cat == "chunk" && ev.Ph == "B" {
			gotChunks[ev.Tid]++
		}
		if ev.Cat == "steal" && ev.Ph == "f" {
			gotSteals[ev.Tid]++
		}
	}
	for p := 0; p < procs; p++ {
		if gotChunks[p] != wantClaimed[p] {
			t.Errorf("proc %d: %d chunk spans in trace, Stats says %d claimed", p, gotChunks[p], wantClaimed[p])
		}
		if gotSteals[p] != wantSteals[p] {
			t.Errorf("proc %d: %d steal flows in trace, Stats says %d steals", p, gotSteals[p], wantSteals[p])
		}
		if snap.Workers[p].Claimed != wantClaimed[p] {
			t.Errorf("proc %d: snapshot claims %d, Stats says %d", p, snap.Workers[p].Claimed, wantClaimed[p])
		}
	}
}

// TestSplitRangeBounds pins the int64 reduce fan-out math: ranges must tile
// [0, n) exactly even when n is at the top of the int32 range, where the
// former int32(p*n/procs) expression overflowed int before converting.
func TestSplitRangeBounds(t *testing.T) {
	for _, n := range []int{0, 1, 7, 1 << 20, math.MaxInt32 - 3, math.MaxInt32} {
		for _, procs := range []int{1, 2, 3, 7, 64} {
			prevHi := 0
			for p := 0; p < procs; p++ {
				lo, hi := splitRange(p, procs, n)
				if lo != prevHi {
					t.Fatalf("n=%d procs=%d p=%d: lo=%d, want %d (gap or overlap)", n, procs, p, lo, prevHi)
				}
				if hi < lo {
					t.Fatalf("n=%d procs=%d p=%d: hi=%d < lo=%d", n, procs, p, hi, lo)
				}
				// Reference computed fully in int64.
				wantLo := int(int64(p) * int64(n) / int64(procs))
				wantHi := int(int64(p+1) * int64(n) / int64(procs))
				if lo != wantLo || hi != wantHi {
					t.Fatalf("n=%d procs=%d p=%d: [%d,%d), want [%d,%d)", n, procs, p, lo, hi, wantLo, wantHi)
				}
				prevHi = hi
			}
			if prevHi != n {
				t.Fatalf("n=%d procs=%d: ranges end at %d, want %d", n, procs, prevHi, n)
			}
		}
	}
}
