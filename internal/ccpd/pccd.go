package ccpd

import (
	"fmt"
	"time"

	"repro/internal/apriori"
	"repro/internal/db"
	"repro/internal/hashtree"
	"repro/internal/itemset"
	"repro/internal/obs"
	"repro/internal/sched"
)

// MinePCCD runs the Partitioned Candidate Common Database algorithm
// (Section 3.3): the candidate set of each iteration is split into
// per-processor local hash trees, and every processor traverses the entire
// database counting only its local tree. No locks or shared counters are
// needed, but each processor pays the full database scan — the paper found
// this approach performs very poorly (a speed-down beyond one processor on
// their I/O-bound system) and our harness reproduces the redundant-scan
// cost structure.
func MinePCCD(d *db.Database, opts Options) (*apriori.Result, *Stats, error) {
	opts = opts.withDefaults()
	start := time.Now()
	minCount := opts.MinCount(d.Len())
	res := &apriori.Result{MinCount: minCount, ByK: make([][]apriori.FrequentItemset, 2)}
	stats := &Stats{Procs: opts.Procs}

	// The same persistent pool serves the per-iteration build, count and
	// extract phases.
	pool := sched.NewPool(opts.Procs)
	defer pool.Close()
	rec := opts.Obs
	if rec.Enabled() {
		pool.SetWrap(rec.PoolWrap)
		defer pool.SetWrap(nil)
	}

	t0 := time.Now()
	rec.SetPhase(obs.PhaseF1, 1)
	rec.BeginPhase(obs.PhaseF1, 1)
	f1 := parallelFrequentOne(d, minCount, pool)
	rec.EndPhase(obs.PhaseF1, 1)
	res.ByK[1] = f1
	stats.PerIter = append(stats.PerIter, PhaseTiming{
		K: 1, Count: time.Since(t0), Candidates: d.NumItems(), Frequent: len(f1),
	})
	rec.IterStats(1, d.NumItems(), len(f1))

	labels := apriori.LabelsFromF1(f1, d.NumItems())
	prev := make([]itemset.Itemset, len(f1))
	for i, f := range f1 {
		prev[i] = f.Items
	}

	for k := 2; len(prev) > 0 && (opts.MaxK == 0 || k <= opts.MaxK); k++ {
		var pt PhaseTiming
		pt.K = k

		t0 = time.Now()
		rec.BeginPhase(obs.PhaseCandGen, k)
		cands, _, _ := apriori.GenerateCandidates(prev, opts.NaiveJoin)
		rec.EndPhase(obs.PhaseCandGen, k)
		pt.CandGen = time.Since(t0)
		pt.Candidates = len(cands)
		if len(cands) == 0 {
			rec.IterStats(k, 0, 0)
			stats.PerIter = append(stats.PerIter, pt)
			break
		}

		// Partition candidates across processors (interleaved keeps the
		// per-proc trees similar in size since candidates are sorted).
		t0 = time.Now()
		rec.SetPhase(obs.PhaseTreeBuild, k)
		rec.BeginPhase(obs.PhaseTreeBuild, k)
		parts := make([][]itemset.Itemset, opts.Procs)
		for i, c := range cands {
			p := i % opts.Procs
			parts[p] = append(parts[p], c)
		}
		trees := make([]*hashtree.Tree, opts.Procs)
		counters := make([]*hashtree.Counters, opts.Procs)
		cfg := hashtree.Config{
			K: k, Fanout: opts.Fanout, Threshold: opts.Threshold,
			Hash: opts.Hash, NumItems: d.NumItems(), Labels: labels,
		}
		buildErrs := make([]error, opts.Procs)
		pool.Run(func(p int) {
			tr, err := hashtree.Build(cfg, parts[p])
			if err != nil {
				buildErrs[p] = err
				return
			}
			trees[p] = tr
			counters[p] = hashtree.NewCounters(hashtree.CounterAtomic, tr.NumCandidates(), 1)
		})
		rec.EndPhase(obs.PhaseTreeBuild, k)
		for _, err := range buildErrs {
			if err != nil {
				return nil, nil, fmt.Errorf("pccd: iteration %d: %w", k, err)
			}
		}
		pt.TreeBuild = time.Since(t0)

		// Counting: every processor scans the ENTIRE database.
		t0 = time.Now()
		rec.SetPhase(obs.PhaseCount, k)
		rec.BeginPhase(obs.PhaseCount, k)
		pool.Run(func(p int) {
			ctx := trees[p].NewCountCtx(counters[p], hashtree.CountOpts{
				ShortCircuit: opts.ShortCircuit,
			})
			for i := 0; i < d.Len(); i++ {
				ctx.CountTransaction(d.Items(i))
			}
		})
		rec.EndPhase(obs.PhaseCount, k)
		pt.Count = time.Since(t0)

		// Reduction: each processor extracts its own (sorted) frequent
		// list, and the disjoint lists are k-way merged — replacing the
		// serial concatenate-and-sort tail.
		t0 = time.Now()
		locals := make([][]apriori.FrequentItemset, opts.Procs)
		rec.SetPhase(obs.PhaseReduce, k)
		rec.BeginPhase(obs.PhaseReduce, k)
		pool.Run(func(p int) {
			locals[p] = apriori.ExtractFrequent(trees[p], counters[p], minCount)
		})
		rec.EndPhase(obs.PhaseReduce, k)
		fk := apriori.MergeFrequent(locals)
		pt.Reduce = time.Since(t0)
		pt.Frequent = len(fk)
		rec.IterStats(k, len(cands), len(fk))

		res.ByK = append(res.ByK, fk)
		stats.PerIter = append(stats.PerIter, pt)
		prev = prev[:0]
		for _, f := range fk {
			prev = append(prev, f.Items)
		}
	}
	stats.Total = time.Since(start)
	return res, stats, nil
}

// ScanBytes returns the total bytes logically read from the database by a
// CCPD run (each iteration reads the DB once, split across processors) vs a
// PCCD run (each processor reads the whole DB every iteration) — the I/O
// asymmetry behind the paper's PCCD speed-down observation.
func ScanBytes(d *db.Database, iterations, procs int, pccd bool) int64 {
	per := d.SizeBytes()
	if pccd {
		return per * int64(iterations) * int64(procs)
	}
	return per * int64(iterations)
}
