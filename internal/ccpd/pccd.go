package ccpd

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/apriori"
	"repro/internal/db"
	"repro/internal/hashtree"
	"repro/internal/itemset"
)

// MinePCCD runs the Partitioned Candidate Common Database algorithm
// (Section 3.3): the candidate set of each iteration is split into
// per-processor local hash trees, and every processor traverses the entire
// database counting only its local tree. No locks or shared counters are
// needed, but each processor pays the full database scan — the paper found
// this approach performs very poorly (a speed-down beyond one processor on
// their I/O-bound system) and our harness reproduces the redundant-scan
// cost structure.
func MinePCCD(d *db.Database, opts Options) (*apriori.Result, *Stats, error) {
	opts = opts.withDefaults()
	start := time.Now()
	minCount := opts.MinCount(d.Len())
	res := &apriori.Result{MinCount: minCount, ByK: make([][]apriori.FrequentItemset, 2)}
	stats := &Stats{Procs: opts.Procs}

	t0 := time.Now()
	f1 := parallelFrequentOne(d, minCount, opts.Procs)
	res.ByK[1] = f1
	stats.PerIter = append(stats.PerIter, PhaseTiming{
		K: 1, Count: time.Since(t0), Candidates: d.NumItems(), Frequent: len(f1),
	})

	labels := apriori.LabelsFromF1(f1, d.NumItems())
	prev := make([]itemset.Itemset, len(f1))
	for i, f := range f1 {
		prev[i] = f.Items
	}

	for k := 2; len(prev) > 0 && (opts.MaxK == 0 || k <= opts.MaxK); k++ {
		var pt PhaseTiming
		pt.K = k

		t0 = time.Now()
		cands, _, _ := apriori.GenerateCandidates(prev, opts.NaiveJoin)
		pt.CandGen = time.Since(t0)
		pt.Candidates = len(cands)
		if len(cands) == 0 {
			stats.PerIter = append(stats.PerIter, pt)
			break
		}

		// Partition candidates across processors (interleaved keeps the
		// per-proc trees similar in size since candidates are sorted).
		t0 = time.Now()
		parts := make([][]itemset.Itemset, opts.Procs)
		for i, c := range cands {
			p := i % opts.Procs
			parts[p] = append(parts[p], c)
		}
		trees := make([]*hashtree.Tree, opts.Procs)
		counters := make([]*hashtree.Counters, opts.Procs)
		cfg := hashtree.Config{
			K: k, Fanout: opts.Fanout, Threshold: opts.Threshold,
			Hash: opts.Hash, NumItems: d.NumItems(), Labels: labels,
		}
		buildErrs := make([]error, opts.Procs)
		var wg sync.WaitGroup
		for p := 0; p < opts.Procs; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				tr, err := hashtree.Build(cfg, parts[p])
				if err != nil {
					buildErrs[p] = err
					return
				}
				trees[p] = tr
				counters[p] = hashtree.NewCounters(hashtree.CounterAtomic, tr.NumCandidates(), 1)
			}(p)
		}
		wg.Wait()
		for _, err := range buildErrs {
			if err != nil {
				return nil, nil, fmt.Errorf("pccd: iteration %d: %w", k, err)
			}
		}
		pt.TreeBuild = time.Since(t0)

		// Counting: every processor scans the ENTIRE database.
		t0 = time.Now()
		for p := 0; p < opts.Procs; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				ctx := trees[p].NewCountCtx(counters[p], hashtree.CountOpts{
					ShortCircuit: opts.ShortCircuit,
				})
				for i := 0; i < d.Len(); i++ {
					ctx.CountTransaction(d.Items(i))
				}
			}(p)
		}
		wg.Wait()
		pt.Count = time.Since(t0)

		// Master reduction: concatenate per-processor frequent sets
		// (candidate partitions are disjoint).
		t0 = time.Now()
		var fk []apriori.FrequentItemset
		for p := 0; p < opts.Procs; p++ {
			fk = append(fk, apriori.ExtractFrequent(trees[p], counters[p], minCount)...)
		}
		sort.Slice(fk, func(i, j int) bool { return fk[i].Items.Less(fk[j].Items) })
		pt.Reduce = time.Since(t0)
		pt.Frequent = len(fk)

		res.ByK = append(res.ByK, fk)
		stats.PerIter = append(stats.PerIter, pt)
		prev = prev[:0]
		for _, f := range fk {
			prev = append(prev, f.Items)
		}
	}
	stats.Total = time.Since(start)
	return res, stats, nil
}

// ScanBytes returns the total bytes logically read from the database by a
// CCPD run (each iteration reads the DB once, split across processors) vs a
// PCCD run (each processor reads the whole DB every iteration) — the I/O
// asymmetry behind the paper's PCCD speed-down observation.
func ScanBytes(d *db.Database, iterations, procs int, pccd bool) int64 {
	per := d.SizeBytes()
	if pccd {
		return per * int64(iterations) * int64(procs)
	}
	return per * int64(iterations)
}
