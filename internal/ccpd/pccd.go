package ccpd

import (
	"context"
	"fmt"
	"time"

	"repro/internal/apriori"
	"repro/internal/db"
	"repro/internal/hashtree"
	"repro/internal/itemset"
	"repro/internal/obs"
	"repro/internal/robust"
	"repro/internal/sched"
)

// MinePCCD runs the Partitioned Candidate Common Database algorithm. It is
// MinePCCDCtx without cancellation.
func MinePCCD(d *db.Database, opts Options) (*apriori.Result, *Stats, error) {
	return MinePCCDCtx(context.Background(), d, opts)
}

// MinePCCDCtx runs the Partitioned Candidate Common Database algorithm
// (Section 3.3): the candidate set of each iteration is split into
// per-processor local hash trees, and every processor traverses the entire
// database counting only its local tree. No locks or shared counters are
// needed, but each processor pays the full database scan — the paper found
// this approach performs very poorly (a speed-down beyond one processor on
// their I/O-bound system) and our harness reproduces the redundant-scan
// cost structure.
//
// Cancellation and panic containment follow the MineCtx contract: workers
// poll the context every ChunkSize transactions, the interrupted call
// returns the completed iterations with a *robust.CanceledError, and a
// worker panic surfaces as a *robust.WorkerPanicError. PCCD is the
// measurement foil, not the production path, so it has no checkpointing or
// candidate batching.
//
//armlint:cancellable
func MinePCCDCtx(ctx context.Context, d *db.Database, opts Options) (*apriori.Result, *Stats, error) {
	opts = opts.withDefaults()
	start := time.Now()
	minCount := opts.MinCount(d.Len())
	fi := opts.FaultInj
	res := &apriori.Result{MinCount: minCount, ByK: make([][]apriori.FrequentItemset, 2)}
	stats := &Stats{Procs: opts.Procs}
	partial := func(err error) (*apriori.Result, *Stats, error) {
		stats.Total = time.Since(start)
		return res, stats, err
	}

	// The same persistent pool serves the per-iteration build, count and
	// extract phases.
	pool := sched.NewPool(opts.Procs)
	defer pool.Close()
	rec := opts.Obs
	if rec.Enabled() {
		pool.SetWrap(rec.PoolWrap)
		defer pool.SetWrap(nil)
	}

	if err := robust.Canceled(ctx, "f1", 1); err != nil {
		return nil, nil, err
	}
	t0 := time.Now()
	rec.SetPhase(obs.PhaseF1, 1)
	rec.BeginPhase(obs.PhaseF1, 1)
	f1, err := parallelFrequentOne(ctx, d, minCount, pool, fi, opts.ChunkSize)
	rec.EndPhase(obs.PhaseF1, 1)
	if err != nil {
		return nil, nil, annotate(err, "f1", 1)
	}
	if err := robust.Canceled(ctx, "f1", 1); err != nil {
		// Interrupted mid-pass: the counts are partial, discard them.
		return nil, nil, err
	}
	res.ByK[1] = f1
	stats.PerIter = append(stats.PerIter, PhaseTiming{
		K: 1, Count: time.Since(t0), Candidates: d.NumItems(), Frequent: len(f1),
	})
	rec.IterStats(1, d.NumItems(), len(f1))

	labels := apriori.LabelsFromF1(f1, d.NumItems())
	prev := make([]itemset.Itemset, len(f1))
	for i, f := range f1 {
		prev[i] = f.Items
	}

	for k := 2; len(prev) > 0 && (opts.MaxK == 0 || k <= opts.MaxK); k++ {
		var pt PhaseTiming
		pt.K = k

		if err := robust.Canceled(ctx, "gen", k); err != nil {
			return partial(err)
		}
		t0 = time.Now()
		rec.BeginPhase(obs.PhaseCandGen, k)
		cands, _, _ := apriori.GenerateCandidates(prev, opts.NaiveJoin)
		rec.EndPhase(obs.PhaseCandGen, k)
		pt.CandGen = time.Since(t0)
		pt.Candidates = len(cands)
		if len(cands) == 0 {
			rec.IterStats(k, 0, 0)
			stats.PerIter = append(stats.PerIter, pt)
			break
		}

		// Partition candidates across processors (interleaved keeps the
		// per-proc trees similar in size since candidates are sorted).
		t0 = time.Now()
		rec.SetPhase(obs.PhaseTreeBuild, k)
		rec.BeginPhase(obs.PhaseTreeBuild, k)
		parts := make([][]itemset.Itemset, opts.Procs)
		for i, c := range cands {
			p := i % opts.Procs
			parts[p] = append(parts[p], c)
		}
		trees := make([]*hashtree.Tree, opts.Procs)
		counters := make([]*hashtree.Counters, opts.Procs)
		cfg := hashtree.Config{
			K: k, Fanout: opts.Fanout, Threshold: opts.Threshold,
			Hash: opts.Hash, NumItems: d.NumItems(), Labels: labels,
		}
		buildErrs := make([]error, opts.Procs)
		err := pool.Run(func(p int) {
			fi.Fire("build", k, p, -1)
			tr, err := hashtree.Build(cfg, parts[p])
			if err != nil {
				buildErrs[p] = err
				return
			}
			trees[p] = tr
			counters[p] = hashtree.NewCounters(hashtree.CounterAtomic, tr.NumCandidates(), 1)
		})
		rec.EndPhase(obs.PhaseTreeBuild, k)
		if err != nil {
			return nil, nil, annotate(err, "build", k)
		}
		for _, err := range buildErrs {
			if err != nil {
				return nil, nil, fmt.Errorf("pccd: iteration %d: %w", k, err)
			}
		}
		pt.TreeBuild = time.Since(t0)

		// Counting: every processor scans the ENTIRE database.
		if err := robust.Canceled(ctx, "count", k); err != nil {
			return partial(err)
		}
		t0 = time.Now()
		rec.SetPhase(obs.PhaseCount, k)
		rec.BeginPhase(obs.PhaseCount, k)
		err = pool.Run(func(p int) {
			fi.Fire("count", k, p, -1)
			ctxc := trees[p].NewCountCtx(counters[p], hashtree.CountOpts{
				ShortCircuit: opts.ShortCircuit,
			})
			for i := 0; i < d.Len(); i++ {
				if i%opts.ChunkSize == 0 && ctx.Err() != nil {
					break
				}
				ctxc.CountTransaction(d.Items(i))
			}
		})
		rec.EndPhase(obs.PhaseCount, k)
		if err != nil {
			return nil, nil, annotate(err, "count", k)
		}
		if err := robust.Canceled(ctx, "count", k); err != nil {
			return partial(err)
		}
		pt.Count = time.Since(t0)

		// Reduction: each processor extracts its own (sorted) frequent
		// list, and the disjoint lists are k-way merged — replacing the
		// serial concatenate-and-sort tail.
		t0 = time.Now()
		locals := make([][]apriori.FrequentItemset, opts.Procs)
		rec.SetPhase(obs.PhaseReduce, k)
		rec.BeginPhase(obs.PhaseReduce, k)
		err = pool.Run(func(p int) {
			fi.Fire("reduce", k, p, -1)
			locals[p] = apriori.ExtractFrequent(trees[p], counters[p], minCount)
		})
		rec.EndPhase(obs.PhaseReduce, k)
		if err != nil {
			return nil, nil, annotate(err, "reduce", k)
		}
		fk := apriori.MergeFrequent(locals)
		pt.Reduce = time.Since(t0)
		pt.Frequent = len(fk)
		rec.IterStats(k, len(cands), len(fk))

		res.ByK = append(res.ByK, fk)
		stats.PerIter = append(stats.PerIter, pt)
		prev = prev[:0]
		for _, f := range fk {
			prev = append(prev, f.Items)
		}
	}
	stats.Total = time.Since(start)
	return res, stats, nil
}

// ScanBytes returns the total bytes logically read from the database by a
// CCPD run (each iteration reads the DB once, split across processors) vs a
// PCCD run (each processor reads the whole DB every iteration) — the I/O
// asymmetry behind the paper's PCCD speed-down observation.
func ScanBytes(d *db.Database, iterations, procs int, pccd bool) int64 {
	per := d.SizeBytes()
	if pccd {
		return per * int64(iterations) * int64(procs)
	}
	return per * int64(iterations)
}
