package ccpd

import (
	"context"
	"errors"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/apriori"
	"repro/internal/db"
	"repro/internal/db/seg"
	"repro/internal/gen"
	"repro/internal/robust"
)

// segStore writes d into a segmented store and opens it.
func segStore(t *testing.T, d *db.Database, wopts seg.WriterOptions) *seg.Reader {
	t.Helper()
	path := filepath.Join(t.TempDir(), "store.arseg")
	if err := seg.WriteDatabase(path, d, wopts); err != nil {
		t.Fatalf("WriteDatabase: %v", err)
	}
	r, err := seg.Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

// TestSegmentedMatchesInRAM is the core equivalence gate: for every supported
// partition mode, mining the segmented store — with segment boundaries that
// do NOT align with the chunk grid, so chunks straddle segment edges — must
// reproduce the in-RAM run's frequent sets AND its deterministic work model
// (per-iteration CountWork, ModelTime, IdleWork) bit-for-bit. Claims/steals
// are runtime figures and are only checked for consistency, not equality.
func TestSegmentedMatchesInRAM(t *testing.T) {
	d, err := gen.Generate(gen.Params{N: 60, L: 15, I: 3, T: 6, D: 700, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	// SegTx=300 with ChunkSize=64: chunk 4 spans tx [256,320) across the
	// segment edge at 300, likewise around 600 — the straddle cases.
	r := segStore(t, d, seg.WriterOptions{SegTx: 300})
	if r.NumSegments() < 2 {
		t.Fatalf("want multiple segments, got %d", r.NumSegments())
	}
	for _, mode := range []DBPartition{PartitionBlock, PartitionDynamic, PartitionStealing} {
		opts := Options{
			Options: apriori.Options{MinSupport: 0.01, ShortCircuit: true},
			Procs:   4, Balance: BalanceBitonic, DBPart: mode, ChunkSize: 64,
		}
		want, wantStats, err := Mine(d, opts)
		if err != nil {
			t.Fatalf("%s in-RAM: %v", mode, err)
		}
		for _, budget := range []int64{1, 0} { // sync and double-buffered
			res, stats, err := MineSegmented(r, SegmentedOptions{Options: opts, MemBudget: budget})
			if err != nil {
				t.Fatalf("%s budget %d: %v", mode, budget, err)
			}
			label := mode.String()
			assertSameResult(t, label, res, want)
			if res.MinCount != want.MinCount {
				t.Errorf("%s: MinCount %d != %d", label, res.MinCount, want.MinCount)
			}
			if got, w := stats.ModelTime(), wantStats.ModelTime(); got != w {
				t.Errorf("%s budget %d: ModelTime %d != in-RAM %d", label, budget, got, w)
			}
			if got, w := stats.CountIdleWork(), wantStats.CountIdleWork(); got != w {
				t.Errorf("%s budget %d: IdleWork %d != in-RAM %d", label, budget, got, w)
			}
			if len(stats.PerIter) != len(wantStats.PerIter) {
				t.Fatalf("%s budget %d: %d iterations != %d", label, budget, len(stats.PerIter), len(wantStats.PerIter))
			}
			for i := range stats.PerIter {
				g, w := stats.PerIter[i], wantStats.PerIter[i]
				for p := range w.CountWork {
					if g.CountWork[p] != w.CountWork[p] {
						t.Errorf("%s budget %d: iter k=%d CountWork[%d] = %d, want %d",
							label, budget, w.K, p, g.CountWork[p], w.CountWork[p])
					}
				}
				// Dynamic modes: every chunk is claimed at least once; the
				// segmented run adds one claim per straddled chunk.
				if mode.Dynamic() {
					var claims int64
					for _, c := range g.ChunksClaimed {
						claims += c
					}
					var wantClaims int64
					for _, c := range w.ChunksClaimed {
						wantClaims += c
					}
					if claims < wantClaims {
						t.Errorf("%s budget %d: iter k=%d claims %d < in-RAM %d",
							label, budget, w.K, claims, wantClaims)
					}
				}
			}
			if stats.OutOfCore == nil || stats.OutOfCore.Segments == 0 {
				t.Errorf("%s budget %d: missing OutOfCore pipeline stats", label, budget)
			}
		}
	}
}

// TestSegmentedBeyondArenaLimit is the headline acceptance test: a database
// whose total item arena exceeds the (test-lowered) in-RAM ceiling mines via
// the segmented path with zero ErrArenaFull, producing the same frequent
// sets and pinned work-model totals as an unconstrained in-RAM run.
func TestSegmentedBeyondArenaLimit(t *testing.T) {
	d, err := gen.Generate(gen.Params{T: 10, I: 4, D: 2000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{
		Options: apriori.Options{AbsSupport: 10, ShortCircuit: true},
		Procs:   4, Balance: BalanceBitonic, AdaptiveMinUnits: 1,
		DBPart: PartitionBlock,
	}
	want, wantStats, err := Mine(d, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Lower the arena ceiling far below the dataset's ~20k item occurrences:
	// a single-arena load of this database is now impossible, and the writer
	// clamps its segments to fit the reduced limit.
	restore := db.SetArenaLimitForTesting(2048)
	defer restore()
	if d.TotalItems() <= db.ArenaLimit() {
		t.Fatalf("test premise broken: %d occurrences fit the %d-item limit", d.TotalItems(), db.ArenaLimit())
	}
	r := segStore(t, d, seg.WriterOptions{})
	if r.NumSegments() < 5 {
		t.Fatalf("want many segments under the lowered limit, got %d", r.NumSegments())
	}
	res, stats, err := MineSegmented(r, SegmentedOptions{Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "beyond-arena", res, want)
	// The pinned figure from TestModelTimePinned (PartitionBlock, procs=4):
	// the out-of-core path must not move the work model.
	const pinned = 3719619
	if got := stats.ModelTime(); got != pinned || got != wantStats.ModelTime() {
		t.Errorf("ModelTime = %d, want pinned %d (in-RAM %d)", got, pinned, wantStats.ModelTime())
	}
}

// TestSegmentedMappedLoader repeats the equivalence check through the mmap
// loader when the platform offers it.
func TestSegmentedMappedLoader(t *testing.T) {
	d, err := gen.Generate(gen.Params{N: 50, L: 12, I: 3, T: 6, D: 400, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "store.arseg")
	if err := seg.WriteDatabase(path, d, seg.WriterOptions{SegTx: 150}); err != nil {
		t.Fatal(err)
	}
	r, err := seg.OpenMapped(path)
	if err != nil {
		t.Skipf("OpenMapped unavailable: %v", err)
	}
	defer r.Close()
	opts := Options{
		Options: apriori.Options{MinSupport: 0.02, ShortCircuit: true},
		Procs:   3, DBPart: PartitionDynamic, ChunkSize: 64,
	}
	want, _, err := Mine(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := MineSegmented(r, SegmentedOptions{Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "mmap", res, want)
}

func TestSegmentedRejectsUnsupported(t *testing.T) {
	d, err := gen.Generate(gen.Params{N: 40, L: 10, I: 3, T: 6, D: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	r := segStore(t, d, seg.WriterOptions{})
	base := apriori.Options{MinSupport: 0.05}
	if _, _, err := MineSegmented(r, SegmentedOptions{Options: Options{Options: base, DBPart: PartitionWorkload}}); err == nil ||
		!strings.Contains(err.Error(), "workload") {
		t.Errorf("workload partition: err = %v, want rejection", err)
	}
	if _, _, err := MineSegmented(r, SegmentedOptions{Options: Options{Options: base, Checkpoint: "x.ckpt"}}); err == nil ||
		!strings.Contains(err.Error(), "checkpoint") {
		t.Errorf("checkpoint: err = %v, want rejection", err)
	}
}

func TestSegmentedCancellation(t *testing.T) {
	d, err := gen.Generate(gen.Params{N: 60, L: 15, I: 3, T: 6, D: 600, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	r := segStore(t, d, seg.WriterOptions{SegTx: 100})
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // canceled before the first pass
	_, _, err = MineSegmentedCtx(ctx, r, SegmentedOptions{Options: Options{
		Options: apriori.Options{MinSupport: 0.01, ShortCircuit: true}, Procs: 2,
	}})
	var ce *robust.CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *robust.CanceledError", err)
	}

	// Cancel mid-run: the partial result covers completed iterations only.
	ctx2, cancel2 := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel2()
	}()
	res, _, err := MineSegmentedCtx(ctx2, r, SegmentedOptions{
		Options: Options{
			Options: apriori.Options{MinSupport: 0.005, ShortCircuit: true},
			Procs:   2, DBPart: PartitionDynamic, ChunkSize: 16,
		},
		LoadDelay: time.Millisecond,
	})
	if err != nil && !errors.As(err, &ce) {
		t.Fatalf("mid-run cancel: err = %v, want nil or CanceledError", err)
	}
	// A cancellation during iteration 1 legitimately returns no result (the
	// f1 counts are partial); past it, the completed iterations must survive.
	if err != nil && res != nil && res.NumFrequent() == 0 {
		t.Fatal("partial result present but empty")
	}
	_ = res
}
