package ccpd

import (
	"testing"

	"repro/internal/apriori"
	"repro/internal/db"
	"repro/internal/eclat"
	"repro/internal/gen"
	"repro/internal/itemset"
	"repro/internal/vbit"
)

// TestCrossAlgorithmEquivalence asserts that every mining engine in the repo
// — sequential Apriori, CCPD under all four database partition modes, PCCD,
// Eclat, and the vertical bitmap engine under its three layouts (mixed,
// all-bitmap, all-tidlist) — returns the same frequent sets with the same
// supports, over a
// grid of seeded synthetic databases and fractional support thresholds. The
// fractional thresholds go through the shared ceiling computation, so this
// suite also guards against the engines' support arithmetic drifting apart
// again (the old floor bug lived in two separately-maintained copies).
func TestCrossAlgorithmEquivalence(t *testing.T) {
	for _, seed := range []int64{5, 17} {
		d, err := gen.Generate(gen.Params{N: 60, L: 15, I: 3, T: 6, D: 400, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		for _, sup := range []float64{0.01, 0.025} {
			want, err := apriori.Mine(d, apriori.Options{MinSupport: sup, ShortCircuit: true})
			if err != nil {
				t.Fatal(err)
			}
			for _, mode := range []DBPartition{PartitionBlock, PartitionWorkload, PartitionDynamic, PartitionStealing} {
				res, _, err := Mine(d, Options{
					Options: apriori.Options{MinSupport: sup, ShortCircuit: true},
					Procs:   4, Balance: BalanceBitonic, DBPart: mode, ChunkSize: 32,
				})
				if err != nil {
					t.Fatalf("seed %d sup %g ccpd/%s: %v", seed, sup, mode, err)
				}
				assertSameResult(t, mode.String(), res, want)
				if res.MinCount != want.MinCount {
					t.Errorf("seed %d sup %g ccpd/%s: MinCount %d != %d", seed, sup, mode, res.MinCount, want.MinCount)
				}
			}
			pres, _, err := MinePCCD(d, Options{
				Options: apriori.Options{MinSupport: sup, ShortCircuit: true}, Procs: 3,
			})
			if err != nil {
				t.Fatalf("seed %d sup %g pccd: %v", seed, sup, err)
			}
			assertSameResult(t, "pccd", pres, want)
			eres, err := eclat.Mine(d, eclat.Options{MinSupport: sup, Procs: 2})
			if err != nil {
				t.Fatalf("seed %d sup %g eclat: %v", seed, sup, err)
			}
			assertSameResult(t, "eclat", eres, want)
			if eres.MinCount != want.MinCount {
				t.Errorf("seed %d sup %g eclat: MinCount %d != %d", seed, sup, eres.MinCount, want.MinCount)
			}
			// vbit under three layouts: the default mixed representation,
			// all-bitmap (any materialized column clears a 1e-9 cutoff) and
			// all-tidlist (no column reaches a cutoff > 1).
			for name, cutoff := range map[string]float64{
				"vbit": 0, "vbit-dense": 1e-9, "vbit-sparse": 1.5,
			} {
				vres, _, err := vbit.Mine(d, vbit.Options{MinSupport: sup, Procs: 3, DensityCutoff: cutoff})
				if err != nil {
					t.Fatalf("seed %d sup %g %s: %v", seed, sup, name, err)
				}
				assertSameResult(t, name, vres, want)
				if vres.MinCount != want.MinCount {
					t.Errorf("seed %d sup %g %s: MinCount %d != %d", seed, sup, name, vres.MinCount, want.MinCount)
				}
			}
		}
	}
}

// exactThresholdDB builds 300 transactions where itemset {0,1} appears in
// exactly 2 and item 2 in exactly 3 — the boundary cases of a 1% threshold
// on 300 rows (0.01 × 300 = 3 up to float rounding).
func exactThresholdDB(t *testing.T) *db.Database {
	t.Helper()
	d := db.New(4)
	for i := 0; i < 300; i++ {
		switch {
		case i < 2:
			d.Append(int64(i), itemset.New(0, 1, 3))
		case i < 3:
			d.Append(int64(i), itemset.New(2, 3))
		case i < 5:
			d.Append(int64(i), itemset.New(2))
		default:
			d.Append(int64(i), itemset.New(3))
		}
	}
	return d
}

// TestFractionalSupportBoundaryParallel is the parallel-engine face of the
// support-threshold regression: at MinSupport 0.01 on 300 transactions the
// threshold is 3 occurrences (ceiling), so the 2-occurrence {0,1} must not
// be frequent while the 3-occurrence item 2 must. The former floor
// arithmetic computed int64(2.999…) = 2 and admitted both.
func TestFractionalSupportBoundaryParallel(t *testing.T) {
	d := exactThresholdDB(t)
	for _, mode := range []DBPartition{PartitionBlock, PartitionDynamic} {
		res, _, err := Mine(d, Options{
			Options: apriori.Options{MinSupport: 0.01, ShortCircuit: true},
			Procs:   4, DBPart: mode,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.MinCount != 3 {
			t.Errorf("%s: MinCount = %d, want 3 (ceil of 0.01×300)", mode, res.MinCount)
		}
		if got := res.SupportOf(itemset.New(0, 1)); got != 0 {
			t.Errorf("%s: {0,1} (2 occurrences) reported frequent with support %d", mode, got)
		}
		if got := res.SupportOf(itemset.New(2)); got != 3 {
			t.Errorf("%s: {2} support = %d, want 3", mode, got)
		}
	}
}
