package mem

import (
	"strings"
	"testing"
)

func TestRegionAlloc(t *testing.T) {
	r := NewRegion("t", 1000, 100)
	a := r.Alloc(10, 8)
	if a != 1000 {
		t.Errorf("first alloc at %d, want 1000", a)
	}
	b := r.Alloc(4, 8)
	if b != 1016 { // 1010 rounded up to 8
		t.Errorf("second alloc at %d, want 1016", b)
	}
	if r.Used() != 20 {
		t.Errorf("Used = %d", r.Used())
	}
	r.Reset()
	if r.Used() != 0 || r.Alloc(8, 8) != 1000 {
		t.Error("Reset did not rewind")
	}
}

func TestRegionExhaustionPanics(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Error("exhausted region should panic")
		} else if !strings.Contains(r.(string), "exhausted") {
			t.Errorf("unexpected panic: %v", r)
		}
	}()
	r := NewRegion("small", 0, 16)
	r.Alloc(32, 1)
}

func TestRegionAlignDefault(t *testing.T) {
	r := NewRegion("t", 7, 100)
	if a := r.Alloc(3, 0); a != 7 {
		t.Errorf("align 0 should behave as 1; got %d", a)
	}
}

func TestPolicyPredicates(t *testing.T) {
	cases := []struct {
		p                          Policy
		segregates, remaps, groups bool
		privatizes                 bool
	}{
		{PolicyCCPD, false, false, false, false},
		{PolicySPP, false, false, false, false},
		{PolicyLPP, false, false, true, false},
		{PolicyGPP, false, true, false, false},
		{PolicyLSPP, true, false, false, false},
		{PolicyLLPP, true, false, true, false},
		{PolicyLGPP, true, true, false, false},
		{PolicyLCAGPP, true, true, false, true},
	}
	for _, c := range cases {
		if c.p.SegregatesRW() != c.segregates {
			t.Errorf("%v SegregatesRW = %v", c.p, c.p.SegregatesRW())
		}
		if c.p.Remaps() != c.remaps {
			t.Errorf("%v Remaps = %v", c.p, c.p.Remaps())
		}
		if c.p.GroupsLocally() != c.groups {
			t.Errorf("%v GroupsLocally = %v", c.p, c.p.GroupsLocally())
		}
		if c.p.PrivatizesCounters() != c.privatizes {
			t.Errorf("%v PrivatizesCounters = %v", c.p, c.p.PrivatizesCounters())
		}
	}
}

func TestPolicyStrings(t *testing.T) {
	for _, p := range AllPolicies {
		if s := p.String(); strings.HasPrefix(s, "Policy(") {
			t.Errorf("missing name for policy %d", int(p))
		}
	}
	if Policy(99).String() != "Policy(99)" {
		t.Error("unknown policy String")
	}
	if PolicyLCAGPP.String() != "LCA-GPP" {
		t.Errorf("LCAGPP = %q", PolicyLCAGPP.String())
	}
}

func TestBlockKindStrings(t *testing.T) {
	for k := BlockKind(0); k < numKinds; k++ {
		if strings.HasPrefix(k.String(), "BlockKind(") {
			t.Errorf("missing name for kind %d", k)
		}
	}
}

func TestSPPContiguity(t *testing.T) {
	pl := NewPlacer(PolicySPP, 1, 64)
	a := pl.Place(KindHTN, 16)
	b := pl.Place(KindHTNP, 32)
	c := pl.Place(KindILH, 8)
	if b != a+16 || c != b+32 {
		t.Errorf("SPP not contiguous: %d %d %d", a, b, c)
	}
}

func TestCCPDScatters(t *testing.T) {
	pl := NewPlacer(PolicyCCPD, 1, 64)
	// Same-size-class allocations should not be line-adjacent in general:
	// at least one of a run must land on a different line than its
	// predecessor + size.
	adjacent := 0
	prev := pl.Place(KindLN, 16)
	for i := 0; i < 50; i++ {
		a := pl.Place(KindLN, 16)
		if a == prev+16 {
			adjacent++
		}
		prev = a
	}
	if adjacent > 25 {
		t.Errorf("scatter heap too sequential: %d/50 adjacent", adjacent)
	}
	// Different kinds land in well-separated bins when sizes differ.
	h := pl.Place(KindHTNP, 256)
	l := pl.Place(KindLN, 16)
	if diff := int64(h) - int64(l); diff < 0 {
		diff = -diff
	}
}

func TestCCPDDeterministic(t *testing.T) {
	p1 := NewPlacer(PolicyCCPD, 1, 64)
	p2 := NewPlacer(PolicyCCPD, 1, 64)
	for i := 0; i < 20; i++ {
		if p1.Place(KindLN, 16) != p2.Place(KindLN, 16) {
			t.Fatal("scatter heap not deterministic")
		}
	}
}

func TestLPPGrouping(t *testing.T) {
	pl := NewPlacer(PolicyLPP, 1, 64)
	addrs := pl.PlaceGroup([]BlockKind{KindLN, KindItemset}, []uint32{16, 12})
	if addrs[1] != addrs[0]+16 {
		t.Errorf("LPP group not adjacent: %v", addrs)
	}
	// Under SPP PlaceGroup is also contiguous (creation order).
	pl2 := NewPlacer(PolicySPP, 1, 64)
	a2 := pl2.PlaceGroup([]BlockKind{KindLN, KindItemset}, []uint32{16, 12})
	if a2[1] != a2[0]+16 {
		t.Errorf("SPP sequential group not adjacent: %v", a2)
	}
}

func TestLLPPGroupSegregatesLocks(t *testing.T) {
	pl := NewPlacer(PolicyLLPP, 1, 64)
	addrs := pl.PlaceGroup(
		[]BlockKind{KindLN, KindItemset, KindCounter, KindLock},
		[]uint32{16, 12, 4, 4})
	if addrs[1] != addrs[0]+16 {
		t.Error("payload blocks should stay grouped")
	}
	if addrs[2] < spanRW || addrs[2] >= spanPriv {
		t.Errorf("counter at %#x, want rw region", addrs[2])
	}
	if addrs[3] < spanRW || addrs[3] >= spanPriv {
		t.Errorf("lock at %#x, want rw region", addrs[3])
	}
}

func TestSegregatedRegions(t *testing.T) {
	pl := NewPlacer(PolicyLSPP, 1, 64)
	tree := pl.Place(KindHTN, 16)
	lock := pl.Place(KindLock, 4)
	ctr := pl.Place(KindCounter, 4)
	if tree < spanTree || tree >= spanRemap {
		t.Errorf("tree block at %#x", tree)
	}
	if lock < spanRW || ctr < spanRW {
		t.Errorf("lock/counter not segregated: %#x %#x", lock, ctr)
	}
	// Non-segregating policies put counters inline in the tree region.
	pl2 := NewPlacer(PolicySPP, 1, 64)
	c2 := pl2.Place(KindCounter, 4)
	if c2 < spanTree || c2 >= spanRemap {
		t.Errorf("SPP counter at %#x, want tree region", c2)
	}
}

func TestPrivateCounters(t *testing.T) {
	pl := NewPlacer(PolicyLCAGPP, 4, 64)
	a0 := pl.PlacePrivateCounter(0, 4)
	a3 := pl.PlacePrivateCounter(3, 4)
	if a0 < spanPriv || a3 < spanPriv {
		t.Errorf("private counters outside private span: %#x %#x", a0, a3)
	}
	if a3-a0 < privStride {
		t.Errorf("procs 0 and 3 too close: %#x %#x", a0, a3)
	}
}

func TestRemap(t *testing.T) {
	pl := NewPlacer(PolicyGPP, 1, 64)
	a := pl.Place(KindHTN, 16)
	b := pl.Place(KindHTNP, 32)
	c := pl.Place(KindLN, 16)
	// DFS order visits c before b.
	tr := pl.Remap([]Addr{a, c, b})
	if len(tr) != 3 {
		t.Fatalf("translated %d blocks", len(tr))
	}
	if tr[c] >= tr[b] {
		t.Errorf("DFS order not respected: c→%#x b→%#x", tr[c], tr[b])
	}
	if tr[a] < spanRemap {
		t.Errorf("remap target %#x outside remap region", tr[a])
	}
	// Placer's own records must be rewritten.
	for _, blk := range pl.Blocks() {
		if blk.Addr < spanRemap || blk.Addr >= spanRW {
			t.Errorf("block %v not rewritten", blk)
		}
	}
	// Unknown and duplicate addresses are ignored gracefully.
	tr2 := pl.Remap([]Addr{Addr(1), tr[a], tr[a]})
	if len(tr2) != 1 {
		t.Errorf("remap of unknown/dup: %d entries", len(tr2))
	}
}

func TestPlacerReset(t *testing.T) {
	pl := NewPlacer(PolicyLSPP, 2, 64)
	pl.Place(KindHTN, 16)
	pl.Place(KindLock, 4)
	pl.PlacePrivateCounter(1, 4)
	pl.Reset()
	tree, rw, priv := pl.BytesUsed()
	if tree != 0 || rw != 0 || priv != 0 {
		t.Errorf("Reset left %d/%d/%d bytes", tree, rw, priv)
	}
	if len(pl.Blocks()) != 0 {
		t.Error("Reset left blocks")
	}
}

func TestBytesUsed(t *testing.T) {
	pl := NewPlacer(PolicyLSPP, 1, 64)
	pl.Place(KindHTN, 16)
	pl.Place(KindCounter, 4)
	tree, rw, _ := pl.BytesUsed()
	if tree < 16 || rw < 4 {
		t.Errorf("BytesUsed = %d/%d", tree, rw)
	}
}

func TestBinFor(t *testing.T) {
	if binFor(1) != 0 || binFor(8) != 0 {
		t.Error("small sizes → bin 0")
	}
	if binFor(9) != 1 || binFor(16) != 1 {
		t.Error("≤16 → bin 1")
	}
	if binFor(1<<40) != numBins-1 {
		t.Error("huge sizes clamp to last bin")
	}
}
