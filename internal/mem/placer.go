package mem

// Placer assigns virtual addresses to hash-tree building blocks according to
// one placement policy. The address space is carved into disjoint gigabyte
// spans so regions can never collide:
//
//	[1G, 2G)   scattered malloc heap (CCPD)
//	[2G, 3G)   common tree region (SPP/LPP, and the GPP build phase)
//	[3G, 4G)   GPP remap target region
//	[4G, 5G)   segregated lock/counter region (L-*)
//	[5G, …)    per-processor private counter regions (LCA), 256M each
type Placer struct {
	Policy Policy
	// Line is the coherence block size used for malloc modelling; 64 bytes
	// matches the SGI Challenge secondary line and modern CPUs.
	Line uint64

	tree   *Region
	remap  *Region
	rw     *Region
	priv   []*Region
	malloc *scatterHeap

	// blocks records every placed block in creation order; GPP remapping
	// rewrites Addr in place via the returned translation table.
	blocks []Block
}

const (
	spanMalloc = 1 << 30
	spanTree   = 2 << 30
	spanRemap  = 3 << 30
	spanRW     = 4 << 30
	spanPriv   = 5 << 30
	privStride = 256 << 20
)

// NewPlacer builds a placer for the given policy and processor count.
func NewPlacer(p Policy, procs int, line uint64) *Placer {
	if line == 0 {
		line = 64
	}
	pl := &Placer{
		Policy: p,
		Line:   line,
		tree:   NewRegion("tree", spanTree, 1<<30),
		remap:  NewRegion("remap", spanRemap, 1<<30),
		rw:     NewRegion("rw", spanRW, 1<<30),
		malloc: newScatterHeap(spanMalloc, 1<<30, line),
	}
	for i := 0; i < procs; i++ {
		pl.priv = append(pl.priv, NewRegion("priv", Addr(spanPriv+uint64(i)*privStride), privStride))
	}
	return pl
}

// Place allocates one block of the given kind.
func (pl *Placer) Place(kind BlockKind, size uint32) Addr {
	var a Addr
	if pl.Policy == PolicyCCPD {
		a = pl.malloc.alloc(uint64(size))
	} else if pl.Policy.SegregatesRW() && (kind == KindLock || kind == KindCounter) {
		a = pl.rw.Alloc(uint64(size), 4)
	} else {
		a = pl.tree.Alloc(uint64(size), 8)
	}
	pl.blocks = append(pl.blocks, Block{Kind: kind, Addr: a, Size: size})
	return a
}

// PlaceGroup allocates several blocks contiguously — the LPP "reservation"
// mechanism that keeps an LN with its Itemset and an HTN with its ILH
// adjacent. Under non-grouping policies it degrades to sequential Place
// calls, which for SPP/GPP is contiguous anyway and for CCPD is scattered.
func (pl *Placer) PlaceGroup(kinds []BlockKind, sizes []uint32) []Addr {
	out := make([]Addr, len(kinds))
	if pl.Policy.GroupsLocally() {
		var total uint64
		for _, s := range sizes {
			total += uint64(s)
		}
		base := pl.tree.Alloc(total, 8)
		off := Addr(0)
		for i := range kinds {
			// Segregated kinds still go to the rw region even when the rest
			// of the group is reserved together.
			if pl.Policy.SegregatesRW() && (kinds[i] == KindLock || kinds[i] == KindCounter) {
				out[i] = pl.rw.Alloc(uint64(sizes[i]), 4)
			} else {
				out[i] = base + off
				off += Addr(sizes[i])
			}
			pl.blocks = append(pl.blocks, Block{Kind: kinds[i], Addr: out[i], Size: sizes[i]})
		}
		return out
	}
	for i := range kinds {
		out[i] = pl.Place(kinds[i], sizes[i])
	}
	return out
}

// PlacePrivateCounter allocates a per-processor private counter (LCA): each
// processor's counters come from its own region, so no two processors ever
// share a counter cache line.
func (pl *Placer) PlacePrivateCounter(proc int, size uint32) Addr {
	a := pl.priv[proc].Alloc(uint64(size), 4)
	pl.blocks = append(pl.blocks, Block{Kind: KindCounter, Addr: a, Size: size})
	return a
}

// Remap performs the GPP depth-first remapping: blocks are re-placed in the
// order given (the tree's DFS traversal order) into the remap region, and a
// translation table from old to new addresses is returned. Blocks not in
// dfsOrder (e.g. segregated counters) keep their addresses. Remap may be
// called once per iteration; the remap region is reset first, matching the
// paper's per-iteration rebuild.
func (pl *Placer) Remap(dfsOrder []Addr) map[Addr]Addr {
	pl.remap.Reset()
	sizes := make(map[Addr]uint32, len(pl.blocks))
	for _, b := range pl.blocks {
		sizes[b.Addr] = b.Size
	}
	tr := make(map[Addr]Addr, len(dfsOrder))
	for _, old := range dfsOrder {
		sz, ok := sizes[old]
		if !ok {
			continue
		}
		if _, dup := tr[old]; dup {
			continue
		}
		tr[old] = pl.remap.Alloc(uint64(sz), 8)
	}
	for i := range pl.blocks {
		if na, ok := tr[pl.blocks[i].Addr]; ok {
			pl.blocks[i].Addr = na
		}
	}
	return tr
}

// Blocks returns the placed blocks in creation order (post-remap addresses).
func (pl *Placer) Blocks() []Block { return pl.blocks }

// BytesUsed reports total virtual bytes consumed per region class.
func (pl *Placer) BytesUsed() (tree, rw, private uint64) {
	tree = pl.tree.Used() + pl.malloc.used()
	rw = pl.rw.Used()
	for _, r := range pl.priv {
		private += r.Used()
	}
	return
}

// Reset clears all regions for the next iteration's tree.
func (pl *Placer) Reset() {
	pl.tree.Reset()
	pl.remap.Reset()
	pl.rw.Reset()
	for _, r := range pl.priv {
		r.Reset()
	}
	pl.malloc.reset()
	pl.blocks = pl.blocks[:0]
}

// scatterHeap models a standard Unix malloc for the CCPD base case: every
// allocation pays a boundary-tag header that shares its cache line with the
// payload, allocations are binned by size class with the bins interleaved
// across the heap, and a deterministic LCG injects the free-list reuse
// scatter that destroys creation-order contiguity.
type scatterHeap struct {
	base Addr
	size uint64
	line uint64
	bins []Addr
	lcg  uint64
	tot  uint64
}

const (
	numBins     = 16
	boundaryTag = 16 // bytes of malloc metadata per allocation
)

func newScatterHeap(base Addr, size uint64, line uint64) *scatterHeap {
	h := &scatterHeap{base: base, size: size, line: line, lcg: 0x9E3779B97F4A7C15}
	h.initBins()
	return h
}

func (h *scatterHeap) initBins() {
	h.bins = make([]Addr, numBins)
	stride := h.size / numBins
	for i := range h.bins {
		h.bins[i] = h.base + Addr(uint64(i)*stride)
	}
}

func (h *scatterHeap) next() uint64 {
	h.lcg = h.lcg*6364136223846793005 + 1442695040888963407
	return h.lcg >> 33
}

// binFor maps a request size to its size-class bin.
func binFor(size uint64) int {
	b := 0
	for s := uint64(8); s < size && b < numBins-1; s <<= 1 {
		b++
	}
	return b
}

func (h *scatterHeap) alloc(size uint64) Addr {
	b := binFor(size)
	// Boundary tag precedes the payload; occasional free-list reuse skips
	// ahead a line, so consecutive allocations are often not adjacent.
	a := h.bins[b] + boundaryTag
	skip := (h.next() % 2) * h.line
	h.bins[b] = a + Addr(size) + Addr(skip)
	h.tot += size + boundaryTag + skip
	return a
}

func (h *scatterHeap) used() uint64 { return h.tot }

func (h *scatterHeap) reset() {
	h.tot = 0
	h.lcg = 0x9E3779B97F4A7C15
	h.initBins()
}
