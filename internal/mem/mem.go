// Package mem implements the custom memory placement library of Section 5
// of the paper over a *virtual* address space. The Go runtime does not allow
// explicit control of heap placement (the repro constraint: GC and runtime
// limit explicit placement policies), so placement policies assign virtual
// addresses to the hash-tree building blocks — hash tree nodes (HTN), hash
// tables (HTNP), itemset list headers (ILH), list nodes (LN), itemsets,
// locks and counters — and the counting phase replays its access pattern
// against these addresses through the cache simulator. The policy surface
// matches the paper: scattered malloc with boundary tags (CCPD), a common
// bump region (SPP), reservation-grouped allocation (LPP), depth-first
// remapping (GPP), segregated lock/counter regions (L-*), and per-processor
// private counter regions (LCA).
package mem

import "fmt"

// Addr is a virtual byte address.
type Addr uint64

// BlockKind labels the hash-tree building blocks named in Fig. 3/5 of the
// paper plus the read-write metadata (locks, counters) that Section 5.2
// segregates.
type BlockKind uint8

const (
	KindHTN     BlockKind = iota // hash tree node header
	KindHTNP                     // hash table pointer array
	KindILH                      // itemset list header
	KindLN                       // list node
	KindItemset                  // the itemset payload
	KindLock                     // per-itemset or per-node lock word
	KindCounter                  // support counter
	numKinds
)

func (k BlockKind) String() string {
	switch k {
	case KindHTN:
		return "HTN"
	case KindHTNP:
		return "HTNP"
	case KindILH:
		return "ILH"
	case KindLN:
		return "LN"
	case KindItemset:
		return "Itemset"
	case KindLock:
		return "Lock"
	case KindCounter:
		return "Counter"
	}
	return fmt.Sprintf("BlockKind(%d)", uint8(k))
}

// Block is one placed allocation.
type Block struct {
	Kind BlockKind
	Addr Addr
	Size uint32
}

// Policy identifies a placement policy from Section 5/6.4.
type Policy int

const (
	// PolicyCCPD is the base case: standard Unix malloc with boundary tags
	// and scattered reuse.
	PolicyCCPD Policy = iota
	// PolicySPP allocates every building block sequentially from one common
	// region in creation order.
	PolicySPP
	// PolicyLPP groups related blocks via a reservation mechanism: LN with
	// its Itemset, HTN with its ILH.
	PolicyLPP
	// PolicyGPP builds like SPP and then remaps the whole tree in
	// depth-first traversal order.
	PolicyGPP
	// PolicyLSPP / PolicyLLPP / PolicyLGPP add a segregated region for
	// locks and counters (read-write data) to the corresponding base policy.
	PolicyLSPP
	PolicyLLPP
	PolicyLGPP
	// PolicyLCAGPP is GPP with per-processor private counter arrays
	// (privatize-and-reduce); locks disappear entirely.
	PolicyLCAGPP
)

var policyNames = map[Policy]string{
	PolicyCCPD:   "CCPD",
	PolicySPP:    "SPP",
	PolicyLPP:    "LPP",
	PolicyGPP:    "GPP",
	PolicyLSPP:   "L-SPP",
	PolicyLLPP:   "L-LPP",
	PolicyLGPP:   "L-GPP",
	PolicyLCAGPP: "LCA-GPP",
}

func (p Policy) String() string {
	if s, ok := policyNames[p]; ok {
		return s
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// AllPolicies lists every policy in paper order (Fig. 13 x-axis order).
var AllPolicies = []Policy{
	PolicyCCPD, PolicySPP, PolicyLSPP, PolicyLLPP, PolicyGPP, PolicyLGPP, PolicyLCAGPP,
}

// SegregatesRW reports whether the policy places locks and counters in a
// separate region from the read-only tree data.
func (p Policy) SegregatesRW() bool {
	switch p {
	case PolicyLSPP, PolicyLLPP, PolicyLGPP, PolicyLCAGPP:
		return true
	}
	return false
}

// Remaps reports whether the policy performs the GPP depth-first remap.
func (p Policy) Remaps() bool {
	switch p {
	case PolicyGPP, PolicyLGPP, PolicyLCAGPP:
		return true
	}
	return false
}

// GroupsLocally reports whether the policy uses LPP reservation grouping.
func (p Policy) GroupsLocally() bool {
	return p == PolicyLPP || p == PolicyLLPP
}

// PrivatizesCounters reports whether counters live in per-processor private
// regions (LCA).
func (p Policy) PrivatizesCounters() bool { return p == PolicyLCAGPP }

// Region is a bump allocator over a span of the virtual address space.
type Region struct {
	Name string
	Base Addr
	next Addr
	End  Addr
}

// NewRegion creates a region spanning [base, base+size).
func NewRegion(name string, base Addr, size uint64) *Region {
	return &Region{Name: name, Base: base, next: base, End: base + Addr(size)}
}

// Alloc reserves size bytes aligned to align (a power of two) and returns
// the address. Regions are virtual, so exhaustion indicates a sizing bug;
// Alloc panics rather than corrupting the experiment silently.
func (r *Region) Alloc(size uint64, align uint64) Addr {
	if align == 0 {
		align = 1
	}
	a := (uint64(r.next) + align - 1) &^ (align - 1)
	if Addr(a+size) > r.End {
		panic(fmt.Sprintf("mem: region %s exhausted (%d bytes requested at %#x, end %#x)", r.Name, size, a, r.End))
	}
	r.next = Addr(a + size)
	return Addr(a)
}

// Used returns the number of bytes consumed so far.
func (r *Region) Used() uint64 { return uint64(r.next - r.Base) }

// Reset rewinds the region to empty — the "faster memory freeing option"
// (delete aggregation) of the custom library.
func (r *Region) Reset() { r.next = r.Base }
