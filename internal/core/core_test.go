package core

import (
	"testing"

	"repro/internal/apriori"
	"repro/internal/cachesim"
	"repro/internal/gen"
	"repro/internal/mem"
)

func TestMineSequentialAndParallelAgree(t *testing.T) {
	d, err := gen.Generate(gen.Params{N: 60, L: 15, I: 4, T: 8, D: 600, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := MineSequential(d, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	par, stats, err := MineParallel(d, 0.01, 4)
	if err != nil {
		t.Fatal(err)
	}
	if seq.NumFrequent() != par.NumFrequent() {
		t.Fatalf("sequential %d vs parallel %d frequent", seq.NumFrequent(), par.NumFrequent())
	}
	if stats.Total <= 0 {
		t.Error("no timing recorded")
	}
}

func TestPlacementStudySmoke(t *testing.T) {
	d, err := gen.Generate(gen.Params{N: 60, L: 15, I: 4, T: 8, D: 400, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunPlacementStudy(d, StudyOptions{
		Mining:     apriori.Options{MinSupport: 0.01, ShortCircuit: true},
		Procs:      2,
		MaxTraceTx: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Policies) != len(mem.AllPolicies) {
		t.Fatalf("got %d policy rows", len(res.Policies))
	}
	if len(res.TracedIters) == 0 {
		t.Fatal("no iterations traced")
	}
	base := res.ByPolicy(mem.PolicyCCPD)
	if base == nil || base.Normalized != 1.0 {
		t.Fatalf("CCPD base row: %+v", base)
	}
	for _, pr := range res.Policies {
		if pr.Time <= 0 {
			t.Errorf("%v: non-positive time", pr.Policy)
		}
		if pr.Totals.Accesses == 0 {
			t.Errorf("%v: no accesses", pr.Policy)
		}
	}
	// Mining output must still be correct (cross-check with plain Apriori).
	plain, err := apriori.Mine(d, apriori.Options{MinSupport: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mining.NumFrequent() != plain.NumFrequent() {
		t.Errorf("study mining %d vs plain %d", res.Mining.NumFrequent(), plain.NumFrequent())
	}
}

func TestPlacementStudyOrdering(t *testing.T) {
	// The headline claim: simple placement (SPP) alone cuts modelled time
	// substantially vs CCPD, and the privatized LCA-GPP never loses to the
	// base under multiple processors.
	d, err := gen.Generate(gen.Params{N: 80, L: 20, I: 4, T: 10, D: 800, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	cache := cachesim.Config{
		Procs: 4, LineSize: 64, CacheSize: 1 << 15, Ways: 2,
		HitCycles: 1, MissCycles: 60, InvalidateCycles: 20, ComputeCycles: 1,
	}
	res, err := RunPlacementStudy(d, StudyOptions{
		Mining:     apriori.Options{MinSupport: 0.005, ShortCircuit: true},
		Procs:      4,
		Cache:      cache,
		MaxTraceTx: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	spp := res.ByPolicy(mem.PolicySPP)
	lca := res.ByPolicy(mem.PolicyLCAGPP)
	if spp.Normalized >= 1.0 {
		t.Errorf("SPP normalized %.3f, want < 1 (CCPD base)", spp.Normalized)
	}
	if lca.Normalized >= 1.0 {
		t.Errorf("LCA-GPP normalized %.3f, want < 1", lca.Normalized)
	}
	// LCA must eliminate counter sharing: fewer invalidations than CCPD.
	ccpdRow := res.ByPolicy(mem.PolicyCCPD)
	if lca.Totals.InvalidationsRecv >= ccpdRow.Totals.InvalidationsRecv && ccpdRow.Totals.InvalidationsRecv > 0 {
		t.Errorf("LCA invalidations %d !< CCPD %d",
			lca.Totals.InvalidationsRecv, ccpdRow.Totals.InvalidationsRecv)
	}
}

func TestPlacementStudyOnlyK(t *testing.T) {
	d, err := gen.Generate(gen.Params{N: 60, L: 15, I: 4, T: 8, D: 300, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunPlacementStudy(d, StudyOptions{
		Mining: apriori.Options{MinSupport: 0.01},
		Procs:  1,
		OnlyK:  2,
		Policies: []mem.Policy{
			mem.PolicyCCPD, mem.PolicySPP,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TracedIters) != 1 || res.TracedIters[0] != 2 {
		t.Errorf("TracedIters = %v", res.TracedIters)
	}
	if len(res.Policies) != 2 {
		t.Errorf("policies = %d", len(res.Policies))
	}
}

func TestByPolicyMissing(t *testing.T) {
	r := &StudyResult{}
	if r.ByPolicy(mem.PolicySPP) != nil {
		t.Error("missing policy should return nil")
	}
}
