// Package core is the high-level entry point tying the paper's pieces
// together: convenience mining wrappers over the sequential (Section 2) and
// parallel CCPD/PCCD (Section 3) algorithms, and the memory-placement study
// engine of Sections 5–6.4 that replays the counting phase of every
// iteration through the placement policies and the MESI cache simulator.
package core

import (
	"fmt"

	"repro/internal/apriori"
	"repro/internal/cachesim"
	"repro/internal/ccpd"
	"repro/internal/db"
	"repro/internal/hashtree"
	"repro/internal/itemset"
	"repro/internal/mem"
	"repro/internal/trace"
)

// StudyOptions configures a placement study run.
type StudyOptions struct {
	// Mining parameters (support, tree knobs). ShortCircuit applies to the
	// traced walks as well.
	Mining apriori.Options
	// Procs is the simulated processor count.
	Procs int
	// Policies to evaluate; defaults to mem.AllPolicies.
	Policies []mem.Policy
	// Cache geometry; zero value uses cachesim.DefaultConfig(Procs).
	Cache cachesim.Config
	// MaxTraceTx caps the number of transactions traced per processor per
	// iteration (the full database is still counted for mining
	// correctness); 0 means trace everything.
	MaxTraceTx int
	// OnlyK restricts tracing to one iteration; 0 traces every k ≥ 2.
	OnlyK int
}

// remapCyclesPerBlock is the modelled cost of copying one hash-tree
// component during the GPP depth-first remap (read + write, amortized over
// the cache line).
const remapCyclesPerBlock = 4

// PolicyResult aggregates the simulated behaviour of one policy over the
// traced iterations.
type PolicyResult struct {
	Policy mem.Policy
	// Time is the summed modelled parallel execution time (cycles).
	Time int64
	// Normalized is Time divided by the CCPD base time (Fig. 12/13 y-axis).
	Normalized float64
	Totals     cachesim.Stats
}

// StudyResult is the outcome of a placement study.
type StudyResult struct {
	Mining   *apriori.Result
	Policies []PolicyResult
	// TracedIters lists the iterations that contributed traces.
	TracedIters []int
}

// ByPolicy returns the result row for a policy, or nil.
func (r *StudyResult) ByPolicy(p mem.Policy) *PolicyResult {
	for i := range r.Policies {
		if r.Policies[i].Policy == p {
			return &r.Policies[i]
		}
	}
	return nil
}

// RunPlacementStudy mines the database level-wise; at each iteration k ≥ 2
// it assigns virtual addresses to the iteration's hash tree under every
// policy, replays the counting phase of each simulated processor as a
// memory trace, and feeds the interleaved traces to the cache simulator.
// Modelled times are summed over iterations and normalized to CCPD.
func RunPlacementStudy(d *db.Database, opts StudyOptions) (*StudyResult, error) {
	if opts.Procs < 1 {
		opts.Procs = 1
	}
	if len(opts.Policies) == 0 {
		opts.Policies = mem.AllPolicies
	}
	if opts.Cache.Procs == 0 {
		opts.Cache = cachesim.DefaultConfig(opts.Procs)
	}
	opts.Cache.Procs = opts.Procs
	minCount := opts.Mining.MinCount(d.Len())

	res := &StudyResult{
		Mining: &apriori.Result{MinCount: minCount, ByK: make([][]apriori.FrequentItemset, 2)},
	}
	agg := make(map[mem.Policy]*PolicyResult, len(opts.Policies))
	for _, p := range opts.Policies {
		agg[p] = &PolicyResult{Policy: p}
	}

	f1 := apriori.FrequentOne(d, minCount)
	res.Mining.ByK[1] = f1
	labels := apriori.LabelsFromF1(f1, d.NumItems())
	prev := make([]itemset.Itemset, len(f1))
	for i, f := range f1 {
		prev[i] = f.Items
	}

	slices := d.BlockPartition(opts.Procs)
	for k := 2; len(prev) > 0 && (opts.Mining.MaxK == 0 || k <= opts.Mining.MaxK); k++ {
		cands, _, _ := apriori.GenerateCandidates(prev, false)
		if len(cands) == 0 {
			break
		}
		cfg := hashtree.Config{
			K: k, Fanout: opts.Mining.Fanout, Threshold: opts.Mining.Threshold,
			Hash: opts.Mining.Hash, NumItems: d.NumItems(), Labels: labels,
		}
		tree, err := hashtree.Build(cfg, cands)
		if err != nil {
			return nil, fmt.Errorf("core: iteration %d: %w", k, err)
		}

		// Full untraced pass for mining correctness.
		counters := hashtree.NewCounters(hashtree.CounterAtomic, tree.NumCandidates(), 1)
		ctx := tree.NewCountCtx(counters, hashtree.CountOpts{ShortCircuit: opts.Mining.ShortCircuit})
		for i := 0; i < d.Len(); i++ {
			ctx.CountTransaction(d.Items(i))
		}

		if opts.OnlyK == 0 || opts.OnlyK == k {
			res.TracedIters = append(res.TracedIters, k)
			for _, pol := range opts.Policies {
				pl := hashtree.NewPlacement(tree, pol, opts.Procs)
				scratch := hashtree.NewCounters(hashtree.CounterPrivate, tree.NumCandidates(), opts.Procs)
				bufs := make([]*trace.Buffer, opts.Procs)
				traced := 0
				for p := 0; p < opts.Procs; p++ {
					tc := pl.NewTraceCtx(scratch, hashtree.CountOpts{
						ShortCircuit: opts.Mining.ShortCircuit, Proc: p,
					}, 1<<14)
					n := 0
					s := slices[p]
					for i := s.Lo; i < s.Hi; i++ {
						if opts.MaxTraceTx > 0 && n >= opts.MaxTraceTx {
							break
						}
						tc.CountTransaction(d.Items(i))
						n++
					}
					traced += n
					bufs[p] = tc.Buf
				}
				sim, err := cachesim.Replay(opts.Cache, bufs)
				if err != nil {
					return nil, fmt.Errorf("core: policy %v: %w", pol, err)
				}
				a := agg[pol]
				a.Time += sim.Time
				// Charge the depth-first remap (a serial copy of the tree),
				// prorated by the traced fraction of the database: the real
				// remap is paid once per iteration and amortized over the
				// full counting pass, of which the trace covers only a
				// window.
				if d.Len() > 0 && traced > 0 {
					frac := float64(traced) / float64(d.Len())
					a.Time += int64(float64(pl.RemapBlocks*remapCyclesPerBlock) * frac)
				}
				addStats(&a.Totals, sim.Totals())
			}
		}

		fk := apriori.ExtractFrequent(tree, counters, minCount)
		res.Mining.ByK = append(res.Mining.ByK, fk)
		prev = prev[:0]
		for _, f := range fk {
			prev = append(prev, f.Items)
		}
	}

	var base int64
	if a, ok := agg[mem.PolicyCCPD]; ok {
		base = a.Time
	} else if len(opts.Policies) > 0 {
		base = agg[opts.Policies[0]].Time
	}
	for _, p := range opts.Policies {
		a := agg[p]
		if base > 0 {
			a.Normalized = float64(a.Time) / float64(base)
		}
		res.Policies = append(res.Policies, *a)
	}
	return res, nil
}

func addStats(dst *cachesim.Stats, s cachesim.Stats) {
	dst.Accesses += s.Accesses
	dst.Hits += s.Hits
	dst.Misses += s.Misses
	dst.ColdMisses += s.ColdMisses
	dst.CoherenceMisses += s.CoherenceMisses
	dst.InvalidationsRecv += s.InvalidationsRecv
	dst.FalseSharingInvals += s.FalseSharingInvals
	dst.TrueSharingInvals += s.TrueSharingInvals
	dst.InvalidationsSent += s.InvalidationsSent
	dst.Writebacks += s.Writebacks
	dst.Cycles += s.Cycles
}

// MineSequential is a convenience wrapper over the sequential algorithm
// with the paper's optimizations (bitonic tree balancing, short-circuited
// subset checking) enabled.
func MineSequential(d *db.Database, minSupport float64) (*apriori.Result, error) {
	return apriori.Mine(d, apriori.Options{
		MinSupport:   minSupport,
		Hash:         hashtree.HashBitonic,
		ShortCircuit: true,
	})
}

// MineParallel is a convenience wrapper over CCPD with all optimizations:
// bitonic computation balancing, bitonic tree balancing, short-circuited
// subset checking, and privatized counters.
func MineParallel(d *db.Database, minSupport float64, procs int) (*apriori.Result, *ccpd.Stats, error) {
	return ccpd.Mine(d, ccpd.Options{
		Options: apriori.Options{
			MinSupport:   minSupport,
			Hash:         hashtree.HashBitonic,
			ShortCircuit: true,
		},
		Procs:   procs,
		Counter: hashtree.CounterPrivate,
		Balance: ccpd.BalanceBitonic,
	})
}
