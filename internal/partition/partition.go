// Package partition implements the computation-balancing schemes of
// Section 3.1.2 of the paper: block, interleaved and bitonic partitioning of
// a single equivalence class, and the greedy generalization to multiple
// equivalence classes. The same bitonic assignment doubles as the balanced
// hash function for hash-tree balancing (Section 4.1) by substituting the
// fan-out H for the processor count P.
//
// Assignments feed the pinned work model (TestModelTimePinned), so the
// package must stay deterministic:
//
//armlint:pinned
package partition

import (
	"fmt"
	"sort"
)

// Assignment maps each of n work units (itemset positions within an
// equivalence class) to one of P buckets (processors, or hash-table cells).
type Assignment struct {
	P      int   // number of buckets
	Bucket []int // Bucket[i] = bucket of unit i, 0 ≤ Bucket[i] < P
}

// Workload returns the per-bucket total workload under the canonical
// candidate-generation cost model w_i = n - i - 1 (unit i joins with every
// later unit in its class).
func (a *Assignment) Workload() []int64 {
	w := make([]int64, a.P)
	n := len(a.Bucket)
	for i, b := range a.Bucket {
		w[b] += int64(n - i - 1)
	}
	return w
}

// WorkloadOf returns per-bucket totals under an arbitrary per-unit cost
// vector (len(cost) == len(a.Bucket)).
func (a *Assignment) WorkloadOf(cost []int64) []int64 {
	w := make([]int64, a.P)
	for i, b := range a.Bucket {
		w[b] += cost[i]
	}
	return w
}

// Imbalance returns (max-min)/mean over bucket workloads; 0 is perfect.
// It returns 0 when total work is zero.
func Imbalance(w []int64) float64 {
	if len(w) == 0 {
		return 0
	}
	min, max, sum := w[0], w[0], int64(0)
	for _, v := range w {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
		sum += v
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(w))
	return float64(max-min) / mean
}

// Block assigns units to buckets in contiguous runs of ⌈n/P⌉-or-⌊n/P⌋, the
// naive scheme the paper shows to be badly imbalanced (W = 24/15/6 in the
// Section 3.1.2 example).
func Block(n, p int) *Assignment {
	a := &Assignment{P: p, Bucket: make([]int, n)}
	if n == 0 || p <= 0 {
		return a
	}
	// Match the paper's example: first P-1 buckets get ⌊n/P⌋ units, the last
	// bucket absorbs the remainder ({0,1,2} {3,4,5} {6,7,8,9} for n=10,P=3).
	q := n / p
	if q == 0 {
		q = 1
	}
	for i := 0; i < n; i++ {
		b := i / q
		if b >= p {
			b = p - 1
		}
		a.Bucket[i] = b
	}
	return a
}

// Interleaved assigns unit i to bucket i mod P — the "simple mod" scheme,
// equivalent to the g(i)=i mod H hash function.
func Interleaved(n, p int) *Assignment {
	a := &Assignment{P: p, Bucket: make([]int, n)}
	if p <= 0 {
		return a
	}
	for i := 0; i < n; i++ {
		a.Bucket[i] = i % p
	}
	return a
}

// Bitonic assigns units of a single equivalence class to P buckets using the
// bitonic scheme: units i and 2P-i-1 pair to constant work w_i + w_{2P-i-1}
// = 2n-2P-1, so full 2P-sized blocks are perfectly balanced. Within each
// block of 2P consecutive units, unit j goes to bucket j if j < P and to
// bucket 2P-1-j otherwise.
func Bitonic(n, p int) *Assignment {
	a := &Assignment{P: p, Bucket: make([]int, n)}
	if p <= 0 {
		return a
	}
	for i := 0; i < n; i++ {
		a.Bucket[i] = BitonicHash(i, p)
	}
	return a
}

// BitonicHash is the bitonic hash function of Theorem 1:
// h(i) = i mod H when 0 ≤ (i mod 2H) < H, and 2H-1-(i mod 2H) otherwise.
//
//armlint:noalloc
func BitonicHash(i, h int) int {
	m := i % (2 * h)
	if m < h {
		return m
	}
	return 2*h - 1 - m
}

// GreedyBitonic handles the multi-equivalence-class case (Section 3.1.2):
// sort all per-unit workloads descending and repeatedly give the largest
// remaining unit to the least-loaded bucket. cost[i] is the workload of unit
// i; ties broken by lower unit index for determinism.
func GreedyBitonic(cost []int64, p int) *Assignment {
	a := &Assignment{P: p, Bucket: make([]int, len(cost))}
	if p <= 0 {
		return a
	}
	order := make([]int, len(cost))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool {
		if cost[order[x]] != cost[order[y]] {
			return cost[order[x]] > cost[order[y]]
		}
		return order[x] < order[y]
	})
	load := make([]int64, p)
	for _, u := range order {
		best := 0
		for b := 1; b < p; b++ {
			if load[b] < load[best] {
				best = b
			}
		}
		a.Bucket[u] = best
		load[best] += cost[u]
	}
	return a
}

// ClassUnit identifies one work unit in a multi-class problem: the class
// index and the position of the unit within the class.
type ClassUnit struct {
	Class, Pos int
}

// MultiClassCosts flattens per-class sizes into a global per-unit workload
// vector under the join model (unit at position j of a class with s members
// costs s-j-1 pairs), returning the cost vector and the unit identities.
func MultiClassCosts(classSizes []int) ([]int64, []ClassUnit) {
	var costs []int64
	var units []ClassUnit
	for c, s := range classSizes {
		for j := 0; j < s; j++ {
			costs = append(costs, int64(s-j-1))
			units = append(units, ClassUnit{Class: c, Pos: j})
		}
	}
	return costs, units
}

// IndirectionVector builds the label→bucket table of Section 4.1 (Table 1):
// label i (the lexicographic rank of a frequent 1-item) maps to its bitonic
// bucket among h cells. It is the hash function used at every level of a
// balanced hash tree.
func IndirectionVector(n, h int) []int {
	v := make([]int, n)
	for i := range v {
		v[i] = BitonicHash(i, h)
	}
	return v
}

// Validate checks that the assignment is well formed.
func (a *Assignment) Validate() error {
	for i, b := range a.Bucket {
		if b < 0 || b >= a.P {
			return fmt.Errorf("partition: unit %d assigned to bucket %d outside [0,%d)", i, b, a.P)
		}
	}
	return nil
}
