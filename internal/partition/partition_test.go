package partition

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestBitonicFigure4 reproduces the Section 3.1.2 worked example (Figure 4):
// n=10 items, P=3 processors.
func TestBitonicFigure4(t *testing.T) {
	n, p := 10, 3

	block := Block(n, p).Workload()
	wantBlock := []int64{24, 15, 6}
	for i := range wantBlock {
		if block[i] != wantBlock[i] {
			t.Errorf("block W%d = %d, want %d", i, block[i], wantBlock[i])
		}
	}

	inter := Interleaved(n, p).Workload()
	wantInter := []int64{18, 15, 12}
	for i := range wantInter {
		if inter[i] != wantInter[i] {
			t.Errorf("interleaved W%d = %d, want %d", i, inter[i], wantInter[i])
		}
	}

	bi := Bitonic(n, p)
	biW := bi.Workload()
	wantBi := []int64{16, 15, 14}
	for i := range wantBi {
		if biW[i] != wantBi[i] {
			t.Errorf("bitonic W%d = %d, want %d", i, biW[i], wantBi[i])
		}
	}
	// The paper's assignments: A0={0,5,6}, A1={1,4,7}, A2={2,3,8,9}.
	wantBuckets := []int{0, 1, 2, 2, 1, 0, 0, 1, 2, 2}
	for i, b := range bi.Bucket {
		if b != wantBuckets[i] {
			t.Errorf("bitonic bucket[%d] = %d, want %d", i, b, wantBuckets[i])
		}
	}

	// Ordering of quality: bitonic ≤ interleaved ≤ block imbalance.
	ib, ii, ibl := Imbalance(biW), Imbalance(inter), Imbalance(block)
	if !(ib <= ii && ii <= ibl) {
		t.Errorf("imbalance ordering violated: bitonic=%f interleaved=%f block=%f", ib, ii, ibl)
	}
}

// TestIndirectionVectorTable1 reproduces Table 1: 10 labels, H=3.
func TestIndirectionVectorTable1(t *testing.T) {
	got := IndirectionVector(10, 3)
	want := []int{0, 1, 2, 2, 1, 0, 0, 1, 2, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("indirection[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestBitonicPerfectWhenMultiple(t *testing.T) {
	// n mod 2P == 0 → perfect balance (pairs sum to constant 2n-2P-1).
	for _, c := range []struct{ n, p int }{{12, 3}, {16, 4}, {40, 5}, {8, 1}} {
		w := Bitonic(c.n, c.p).Workload()
		for i := 1; i < len(w); i++ {
			if w[i] != w[0] {
				t.Errorf("n=%d p=%d: bucket %d has %d, bucket 0 has %d", c.n, c.p, i, w[i], w[0])
			}
		}
	}
}

func TestBitonicHash(t *testing.T) {
	// h(i) for H=3 over two periods: 0 1 2 2 1 0 | 0 1 2 2 1 0
	want := []int{0, 1, 2, 2, 1, 0, 0, 1, 2, 2, 1, 0}
	for i, w := range want {
		if got := BitonicHash(i, 3); got != w {
			t.Errorf("BitonicHash(%d,3) = %d, want %d", i, got, w)
		}
	}
	// Range invariant.
	for i := 0; i < 100; i++ {
		for h := 1; h <= 8; h++ {
			if v := BitonicHash(i, h); v < 0 || v >= h {
				t.Fatalf("BitonicHash(%d,%d) = %d out of range", i, h, v)
			}
		}
	}
}

func TestBlockEdgeCases(t *testing.T) {
	if a := Block(0, 3); len(a.Bucket) != 0 {
		t.Error("Block(0,3) should be empty")
	}
	if a := Block(5, 0); len(a.Bucket) != 5 {
		t.Error("Block with p=0 yields empty buckets slice of len n")
	}
	// n < p: every unit still in range.
	a := Block(2, 5)
	if err := a.Validate(); err != nil {
		t.Error(err)
	}
	// All units covered when p doesn't divide n.
	a = Block(10, 4)
	if err := a.Validate(); err != nil {
		t.Error(err)
	}
	counts := make([]int, 4)
	for _, b := range a.Bucket {
		counts[b]++
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 10 {
		t.Errorf("block covered %d units, want 10", total)
	}
}

func TestImbalance(t *testing.T) {
	if got := Imbalance([]int64{5, 5, 5}); got != 0 {
		t.Errorf("uniform imbalance = %f", got)
	}
	if got := Imbalance([]int64{0, 0}); got != 0 {
		t.Errorf("zero-work imbalance = %f", got)
	}
	if got := Imbalance(nil); got != 0 {
		t.Errorf("empty imbalance = %f", got)
	}
	if got := Imbalance([]int64{10, 0}); got != 2 {
		t.Errorf("Imbalance(10,0) = %f, want 2", got)
	}
}

func TestGreedyBitonicSingleClassNearOptimal(t *testing.T) {
	// For a single class the greedy scheme should be at least as balanced as
	// interleaved partitioning.
	for _, c := range []struct{ n, p int }{{10, 3}, {17, 4}, {100, 8}, {31, 5}} {
		costs := make([]int64, c.n)
		for i := range costs {
			costs[i] = int64(c.n - i - 1)
		}
		g := GreedyBitonic(costs, c.p)
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
		gi := Imbalance(g.WorkloadOf(costs))
		ii := Imbalance(Interleaved(c.n, c.p).WorkloadOf(costs))
		if gi > ii+1e-9 {
			t.Errorf("n=%d p=%d: greedy imbalance %f > interleaved %f", c.n, c.p, gi, ii)
		}
	}
}

func TestGreedyBitonicMultiClass(t *testing.T) {
	costs, units := MultiClassCosts([]int{5, 3, 7, 1})
	if len(costs) != 16 || len(units) != 16 {
		t.Fatalf("flattened %d costs, %d units", len(costs), len(units))
	}
	// First unit of the 5-class costs 4 pairs; last unit of every class is 0.
	if costs[0] != 4 {
		t.Errorf("cost[0] = %d, want 4", costs[0])
	}
	if costs[4] != 0 {
		t.Errorf("cost[4] = %d, want 0", costs[4])
	}
	if units[5] != (ClassUnit{Class: 1, Pos: 0}) {
		t.Errorf("units[5] = %+v", units[5])
	}
	g := GreedyBitonic(costs, 4)
	w := g.WorkloadOf(costs)
	// Greedy LPT guarantee: max ≤ (4/3)·OPT ≤ (4/3)·(total/P + max single).
	var total, maxc int64
	for _, c := range costs {
		total += c
		if c > maxc {
			maxc = c
		}
	}
	var maxw int64
	for _, v := range w {
		if v > maxw {
			maxw = v
		}
	}
	bound := 4*(total/4+maxc)/3 + 2
	if maxw > bound {
		t.Errorf("greedy max load %d exceeds LPT bound %d", maxw, bound)
	}
}

func TestGreedyDeterministic(t *testing.T) {
	costs := []int64{3, 3, 3, 1, 1, 1}
	a := GreedyBitonic(costs, 2)
	b := GreedyBitonic(costs, 2)
	for i := range a.Bucket {
		if a.Bucket[i] != b.Bucket[i] {
			t.Fatal("greedy assignment not deterministic")
		}
	}
}

// Property: all three single-class schemes produce valid assignments that
// cover every unit exactly once, and bitonic never loses to block.
func TestSchemesProperty(t *testing.T) {
	f := func(rn, rp uint8) bool {
		n := int(rn%200) + 1
		p := int(rp%12) + 1
		for _, a := range []*Assignment{Block(n, p), Interleaved(n, p), Bitonic(n, p)} {
			if len(a.Bucket) != n || a.Validate() != nil {
				return false
			}
		}
		bi := Imbalance(Bitonic(n, p).Workload())
		bl := Imbalance(Block(n, p).Workload())
		return bi <= bl+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Property: greedy never exceeds twice the ideal mean load (classic bound).
func TestGreedyBoundProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(100)
		p := 1 + rng.Intn(8)
		costs := make([]int64, n)
		var total, maxc int64
		for i := range costs {
			costs[i] = int64(rng.Intn(50))
			total += costs[i]
			if costs[i] > maxc {
				maxc = costs[i]
			}
		}
		w := GreedyBitonic(costs, p).WorkloadOf(costs)
		var maxw int64
		for _, v := range w {
			if v > maxw {
				maxw = v
			}
		}
		// max load ≤ mean + max single item (greedy guarantee).
		if maxw > total/int64(p)+maxc {
			t.Fatalf("trial %d: max load %d > %d", trial, maxw, total/int64(p)+maxc)
		}
	}
}

func TestIndirectionVectorRange(t *testing.T) {
	for _, h := range []int{1, 2, 3, 7} {
		v := IndirectionVector(50, h)
		counts := make([]int, h)
		for _, b := range v {
			if b < 0 || b >= h {
				t.Fatalf("h=%d: bucket %d out of range", h, b)
			}
			counts[b]++
		}
		// Bitonic spreads evenly: counts differ by at most 2·(partial period).
		min, max := counts[0], counts[0]
		for _, c := range counts {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		if max-min > 2 {
			t.Errorf("h=%d: uneven cell usage %v", h, counts)
		}
	}
}
