package expt

import (
	"fmt"
	"io"

	"repro/internal/ccpd"
	"repro/internal/db"
	"repro/internal/gen"
)

// schedParts lists the counting-phase partition modes in comparison order.
var schedParts = []ccpd.DBPartition{
	ccpd.PartitionBlock, ccpd.PartitionWorkload,
	ccpd.PartitionDynamic, ccpd.PartitionStealing,
}

// SchedBalance compares the static database partitions of Section 3.2.2
// against the dynamic chunk schedulers on a uniform database and on a
// skew-planted variant (a heavy tail of ~8× transactions, the static
// splits' worst case). Reported per mode and processor count: modelled
// parallel time, max-over-processors counting work, the summed idle work
// Σ_p(max−work_p), and chunk steals. All figures are deterministic work
// units, so the table reproduces bit-identically on any host.
func (r *Runner) SchedBalance(w io.Writer) error {
	t := &Table{
		Title:  "Scheduler balance: static vs dynamic counting partitions (0.5% support)",
		Header: []string{"Database", "Procs", "Partition", "ModelTime", "MaxCount", "IdleWork", "Steals"},
	}
	base := PaperDatasets[1] // T10.I4.D100K
	skewed := base
	skewed.SkewFrac, skewed.SkewMult = 0.05, 8

	for _, p := range []gen.Params{base, skewed} {
		var d *db.Database
		var name string
		var err error
		if p.SkewFrac > 0 {
			// Params.Name ignores the skew knob, so the runner cache
			// would alias the uniform dataset; generate directly.
			d, err = gen.Generate(Scaled(p, r.Scale))
			name = p.Name() + "+skew"
		} else {
			d, name, err = r.Dataset(p)
		}
		if err != nil {
			return err
		}
		for _, procs := range r.Procs {
			if procs < 2 {
				continue // a single processor has nothing to balance
			}
			for _, part := range schedParts {
				opts := ccpdOpts(absSupport(d.Len(), SupportHigh), procs, true, true, true)
				opts.DBPart = part
				// A heavy transaction dominates a default-size chunk;
				// finer chunks keep the greedy schedule's imbalance
				// bound at one transaction's work.
				opts.ChunkSize = 16
				// Heavy tails make deep levels combinatorially dense.
				opts.MaxK = 4
				_, st, err := ccpd.Mine(d, opts)
				if err != nil {
					return err
				}
				var maxCount int64
				for i := range st.PerIter {
					maxCount += maxWork(st.PerIter[i].CountWork)
				}
				t.AddRow(name, fmt.Sprintf("%d", procs), part.String(),
					fmt.Sprintf("%d", st.ModelTime()),
					fmt.Sprintf("%d", maxCount),
					fmt.Sprintf("%d", st.CountIdleWork()),
					fmt.Sprintf("%d", st.TotalSteals()))
			}
		}
	}
	t.Fprint(w)
	return nil
}
