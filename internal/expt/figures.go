package expt

import (
	"fmt"
	"io"

	"repro/internal/apriori"
	"repro/internal/ccpd"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/hashtree"
	"repro/internal/mem"
	"repro/internal/partition"
)

// Support levels used throughout the evaluation.
const (
	SupportHigh = 0.005 // 0.5%
	SupportLow  = 0.001 // 0.1%
)

// ccpdOpts builds parallel options for one optimization combination.
func ccpdOpts(minCount int64, procs int, comp, tree, sc bool) ccpd.Options {
	o := ccpd.Options{
		Options: apriori.Options{AbsSupport: minCount, ShortCircuit: sc},
		Procs:   procs,
		Counter: hashtree.CounterPrivate,
		Balance: ccpd.BalanceBlock,
		// Keep generation parallel at every size so balancing effects are
		// visible on the scaled-down databases.
		AdaptiveMinUnits: 1,
	}
	if comp {
		o.Balance = ccpd.BalanceBitonic
	}
	if tree {
		o.Hash = hashtree.HashBitonic
	}
	return o
}

// gaugeMissRate exports one placement-study row's cachesim miss rate to the
// runner's recorder (no-op when recording is off), so a metrics snapshot of
// a figure run carries the locality evidence alongside the printed tables.
func (r *Runner) gaugeMissRate(db string, procs int, sup float64, pr *core.PolicyResult) {
	if r.Obs == nil || pr == nil || pr.Totals.Accesses == 0 {
		return
	}
	series := fmt.Sprintf(`armine_cachesim_miss_rate{db=%q,procs="%d",support="%.1f%%",policy=%q}`,
		db, procs, sup*100, pr.Policy.String())
	r.Obs.SetGauge(series, float64(pr.Totals.Misses)/float64(pr.Totals.Accesses))
}

// Table1 prints the bitonic indirection vector of Section 4.1 (Table 1):
// ten labels hashed into H=3 cells.
func Table1(w io.Writer) error {
	t := &Table{Title: "Table 1: indirection vector (n=10 labels, H=3)", Header: []string{"Label"}}
	vals := []string{"Hash value"}
	v := partition.IndirectionVector(10, 3)
	for i, h := range v {
		t.Header = append(t.Header, fmt.Sprintf("%d", i))
		vals = append(vals, fmt.Sprintf("%d", h))
	}
	t.AddRow(vals...)
	t.Fprint(w)
	return nil
}

// Table2 prints the database properties table.
func (r *Runner) Table2(w io.Writer) error {
	t := &Table{
		Title:  fmt.Sprintf("Table 2: database properties (scale %.3g)", r.Scale),
		Header: []string{"Database", "T", "I", "D", "Total size"},
	}
	for _, p := range PaperDatasets {
		d, name, err := r.Dataset(p)
		if err != nil {
			return err
		}
		t.AddRow(name, fmt.Sprintf("%d", p.T), fmt.Sprintf("%d", p.I),
			fmt.Sprintf("%d", d.Len()),
			fmt.Sprintf("%.1fMB", float64(d.SizeBytes())/(1<<20)))
	}
	t.Fprint(w)
	return nil
}

// Figure4 prints the Section 3.1.2 partitioning example: per-processor
// workloads of the block, interleaved and bitonic schemes for n=10, P=3.
func Figure4(w io.Writer) error {
	t := &Table{
		Title:  "Figure 4: partitioning workloads (n=10 itemsets, P=3)",
		Header: []string{"Scheme", "W0", "W1", "W2", "Imbalance"},
	}
	for _, s := range []struct {
		name string
		a    *partition.Assignment
	}{
		{"block", partition.Block(10, 3)},
		{"interleaved", partition.Interleaved(10, 3)},
		{"bitonic", partition.Bitonic(10, 3)},
	} {
		wl := s.a.Workload()
		t.AddRow(s.name,
			fmt.Sprintf("%d", wl[0]), fmt.Sprintf("%d", wl[1]), fmt.Sprintf("%d", wl[2]),
			f2s(partition.Imbalance(wl)))
	}
	t.Fprint(w)
	return nil
}

// fig6Datasets are the six databases plotted in Fig. 6.
var fig6Datasets = []gen.Params{
	PaperDatasets[0], PaperDatasets[1], PaperDatasets[3],
	PaperDatasets[4], PaperDatasets[5], PaperDatasets[6],
}

// Figure6 prints intermediate hash tree sizes per iteration (0.1% support).
func (r *Runner) Figure6(w io.Writer) error {
	t := &Table{
		Title:  "Figure 6: intermediate hash tree size per iteration, bytes (0.1% support)",
		Header: []string{"Database", "k", "Candidates", "TreeBytes"},
	}
	for _, p := range fig6Datasets {
		d, name, err := r.Dataset(p)
		if err != nil {
			return err
		}
		res, err := apriori.Mine(d, apriori.Options{
			AbsSupport: absSupport(d.Len(), SupportLow), Hash: hashtree.HashBitonic, ShortCircuit: true,
		})
		if err != nil {
			return err
		}
		for _, it := range res.Iters {
			if it.K < 2 {
				continue
			}
			t.AddRow(name, fmt.Sprintf("%d", it.K),
				fmt.Sprintf("%d", it.Candidates),
				fmt.Sprintf("%d", it.TreeStats.Bytes))
		}
	}
	t.Fprint(w)
	return nil
}

// Figure7 prints frequent itemsets per iteration (0.5% support) for all
// eight databases.
func (r *Runner) Figure7(w io.Writer) error {
	t := &Table{
		Title:  "Figure 7: frequent itemsets per iteration (0.5% support)",
		Header: []string{"Database", "k", "Frequent"},
	}
	for _, p := range PaperDatasets {
		d, name, err := r.Dataset(p)
		if err != nil {
			return err
		}
		res, err := apriori.Mine(d, apriori.Options{
			AbsSupport: absSupport(d.Len(), SupportHigh), Hash: hashtree.HashBitonic, ShortCircuit: true,
		})
		if err != nil {
			return err
		}
		for _, it := range res.Iters {
			if it.Frequent == 0 {
				continue
			}
			t.AddRow(name, fmt.Sprintf("%d", it.K), fmt.Sprintf("%d", it.Frequent))
		}
	}
	t.Fprint(w)
	return nil
}

// fig8Datasets are the six databases of Fig. 8.
var fig8Datasets = []gen.Params{
	PaperDatasets[0], PaperDatasets[1], PaperDatasets[2],
	PaperDatasets[4], PaperDatasets[5], PaperDatasets[6],
}

// Figure8 prints the percentage improvement of computation balancing
// (COMP), hash tree balancing (TREE) and both (COMP-TREE) over the
// unoptimized run, by processor count (modelled parallel time).
func (r *Runner) Figure8(w io.Writer) error {
	t := &Table{
		Title:  "Figure 8: % improvement from computation/tree balancing (0.5% support)",
		Header: []string{"Database", "Procs", "COMP", "TREE", "COMP-TREE"},
	}
	for _, p := range fig8Datasets {
		d, name, err := r.Dataset(p)
		if err != nil {
			return err
		}
		for _, procs := range r.Procs {
			model := func(comp, tree bool) int64 {
				_, st, err2 := ccpd.Mine(d, ccpdOpts(absSupport(d.Len(), SupportHigh), procs, comp, tree, false))
				if err2 != nil {
					err = err2
					return 0
				}
				return st.ModelTime()
			}
			base := model(false, false)
			comp := model(true, false)
			tree := model(false, true)
			both := model(true, true)
			if err != nil {
				return err
			}
			t.AddRow(name, fmt.Sprintf("%d", procs),
				f1(pct(base, comp)), f1(pct(base, tree)), f1(pct(base, both)))
		}
	}
	t.Fprint(w)
	return nil
}

// fig9Datasets are the four databases of Fig. 9.
var fig9Datasets = []gen.Params{
	PaperDatasets[0], PaperDatasets[5], PaperDatasets[2], PaperDatasets[3],
}

// Figure9 prints the percentage improvement of short-circuited subset
// checking over the unoptimized version.
func (r *Runner) Figure9(w io.Writer) error {
	t := &Table{
		Title:  "Figure 9: % improvement from short-circuited subset checking (0.5% support)",
		Header: []string{"Database", "Procs", "Improvement"},
	}
	for _, p := range fig9Datasets {
		d, name, err := r.Dataset(p)
		if err != nil {
			return err
		}
		for _, procs := range r.Procs {
			_, stBase, err := ccpd.Mine(d, ccpdOpts(absSupport(d.Len(), SupportHigh), procs, true, true, false))
			if err != nil {
				return err
			}
			_, stSC, err := ccpd.Mine(d, ccpdOpts(absSupport(d.Len(), SupportHigh), procs, true, true, true))
			if err != nil {
				return err
			}
			t.AddRow(name, fmt.Sprintf("%d", procs), f1(pct(stBase.ModelTime(), stSC.ModelTime())))
		}
	}
	t.Fprint(w)
	return nil
}

// Figure10 prints the per-iteration short-circuit improvement for
// T20.I6.D100K on one processor.
func (r *Runner) Figure10(w io.Writer) error {
	d, name, err := r.Dataset(PaperDatasets[3])
	if err != nil {
		return err
	}
	_, stBase, err := ccpd.Mine(d, ccpdOpts(absSupport(d.Len(), SupportHigh), 1, true, true, false))
	if err != nil {
		return err
	}
	_, stSC, err := ccpd.Mine(d, ccpdOpts(absSupport(d.Len(), SupportHigh), 1, true, true, true))
	if err != nil {
		return err
	}
	t := &Table{
		Title:  fmt.Sprintf("Figure 10: %% improvement per iteration (%s, 1 proc, 0.5%% support)", name),
		Header: []string{"Iteration", "Improvement"},
	}
	n := len(stBase.PerIter)
	if len(stSC.PerIter) < n {
		n = len(stSC.PerIter)
	}
	for i := 1; i < n; i++ { // skip k=1 (no tree)
		base := maxWork(stBase.PerIter[i].CountWork)
		opt := maxWork(stSC.PerIter[i].CountWork)
		t.AddRow(fmt.Sprintf("%d", stBase.PerIter[i].K), f1(pct(base, opt)))
	}
	t.Fprint(w)
	return nil
}

func maxWork(v []int64) int64 {
	var m int64
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	return m
}

// Figure11 prints CCPD speed-up per dataset and processor count, both pure
// compute (modelled) and with the paper's serial-I/O fractions applied
// (Amdahl), reproducing the reported ceilings.
func (r *Runner) Figure11(w io.Writer) error {
	t := &Table{
		Title:  "Figure 11: CCPD speed-up (0.5% support; modelled parallel time)",
		Header: []string{"Database", "Procs", "Speedup", "Speedup+IO"},
	}
	procs := append([]int{}, r.Procs...)
	if procs[len(procs)-1] < 12 {
		procs = append(procs, 12)
	}
	for _, p := range PaperDatasets {
		d, name, err := r.Dataset(p)
		if err != nil {
			return err
		}
		_, st1, err := ccpd.Mine(d, ccpdOpts(absSupport(d.Len(), SupportHigh), 1, true, true, true))
		if err != nil {
			return err
		}
		t1 := st1.ModelTime()
		ioFrac := SerialIOFraction[name]
		for _, pr := range procs {
			if pr == 1 {
				t.AddRow(name, "1", "1.00", "1.00")
				continue
			}
			_, stP, err := ccpd.Mine(d, ccpdOpts(absSupport(d.Len(), SupportHigh), pr, true, true, true))
			if err != nil {
				return err
			}
			s := float64(t1) / float64(stP.ModelTime())
			// Amdahl with the serial disk share: the database is read from
			// one non-local disk, so I/O never parallelizes.
			sIO := 1 / (ioFrac + (1-ioFrac)/s)
			t.AddRow(name, fmt.Sprintf("%d", pr), f2s(s), f2s(sIO))
		}
	}
	t.Fprint(w)
	return nil
}

// fig12Datasets are the six databases of Fig. 12.
var fig12Datasets = fig6Datasets

// Figure12 prints normalized modelled execution times of the
// single-processor placement policies (CCPD, SPP, LPP, GPP) at 0.5% and
// 0.1% support.
func (r *Runner) Figure12(w io.Writer) error {
	pols := []mem.Policy{mem.PolicyCCPD, mem.PolicySPP, mem.PolicyLPP, mem.PolicyGPP}
	t := &Table{
		Title:  "Figure 12: memory placement, one processor (normalized time)",
		Header: []string{"Database", "Support", "CCPD", "SPP", "LPP", "GPP"},
	}
	for _, p := range fig12Datasets {
		d, name, err := r.Dataset(p)
		if err != nil {
			return err
		}
		for _, sup := range []float64{SupportHigh, SupportLow} {
			res, err := core.RunPlacementStudy(d, core.StudyOptions{
				Mining:     apriori.Options{AbsSupport: absSupport(d.Len(), sup), Hash: hashtree.HashBitonic, ShortCircuit: true},
				Procs:      1,
				Policies:   pols,
				MaxTraceTx: r.MaxTraceTx,
			})
			if err != nil {
				return err
			}
			row := []string{name, fmt.Sprintf("%.1f%%", sup*100)}
			for _, pol := range pols {
				row = append(row, f2s(res.ByPolicy(pol).Normalized))
				r.gaugeMissRate(name, 1, sup, res.ByPolicy(pol))
			}
			t.AddRow(row...)
		}
	}
	t.Fprint(w)
	return nil
}

// fig13Datasets are the five databases of Fig. 13.
var fig13Datasets = []gen.Params{
	PaperDatasets[0], PaperDatasets[1], PaperDatasets[3],
	PaperDatasets[5], PaperDatasets[7],
}

// Figure13 prints normalized modelled execution times of all placement
// policies on four and eight processors at 0.5% and 0.1% support.
func (r *Runner) Figure13(w io.Writer) error {
	t := &Table{
		Title: "Figure 13: memory placement, multiple processors (normalized time)",
		Header: []string{"Database", "Procs", "Support",
			"CCPD", "SPP", "L-SPP", "L-LPP", "GPP", "L-GPP", "LCA-GPP"},
	}
	for _, p := range fig13Datasets {
		d, name, err := r.Dataset(p)
		if err != nil {
			return err
		}
		for _, procs := range []int{4, 8} {
			for _, sup := range []float64{SupportHigh, SupportLow} {
				res, err := core.RunPlacementStudy(d, core.StudyOptions{
					Mining:     apriori.Options{AbsSupport: absSupport(d.Len(), sup), Hash: hashtree.HashBitonic, ShortCircuit: true},
					Procs:      procs,
					Policies:   mem.AllPolicies,
					MaxTraceTx: r.MaxTraceTx,
				})
				if err != nil {
					return err
				}
				row := []string{name, fmt.Sprintf("%d", procs), fmt.Sprintf("%.1f%%", sup*100)}
				for _, pol := range mem.AllPolicies {
					row = append(row, f2s(res.ByPolicy(pol).Normalized))
					r.gaugeMissRate(name, procs, sup, res.ByPolicy(pol))
				}
				t.AddRow(row...)
			}
		}
	}
	t.Fprint(w)
	return nil
}
