// Out-of-core study: the paper's Section 6.3 discusses runs where the
// database does not fit in memory and every processor shares one disk —
// previously modelled here only as SerialIOFraction scalars. The segmented
// store makes that stage real: this study mines the same database in RAM,
// through the synchronous load-then-count loop, and through the
// double-buffered prefetch pipeline, with a synthetic per-segment load
// latency calibrated to the counting time so I/O and compute are comparable.
package expt

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/apriori"
	"repro/internal/ccpd"
	"repro/internal/db/seg"
	"repro/internal/gen"
)

// oocSegments is how many segments the study's store is cut into: few and
// large, so per-segment counting dwarfs scheduler wake latency and the
// overlap is attributable to the prefetcher rather than timer noise.
const oocSegments = 4

// OutOfCore mines T10.I4 in RAM and out-of-core (sync and double-buffered)
// and reports wall clock, stall share, and the speedup double buffering
// recovers. The three runs must agree on every frequent itemset — the study
// doubles as an end-to-end equivalence probe for the segmented path.
func (r *Runner) OutOfCore(w io.Writer) error {
	d, name, err := r.Dataset(gen.Params{T: 10, I: 4, D: 100000})
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "exptooc")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "store.arseg")
	segTx := (d.Len() + oocSegments - 1) / oocSegments
	if err := seg.WriteDatabase(path, d, seg.WriterOptions{SegTx: segTx}); err != nil {
		return err
	}
	rd, err := seg.Open(path)
	if err != nil {
		return err
	}
	defer rd.Close()

	procs := r.Procs[len(r.Procs)-1]
	opts := ccpd.Options{
		Options: apriori.Options{AbsSupport: absSupport(d.Len(), 0.0025), ShortCircuit: true},
		Procs:   procs,
	}

	t0 := time.Now()
	want, _, err := ccpd.Mine(d, opts)
	if err != nil {
		return err
	}
	ramWall := time.Since(t0)

	// Calibrate the synthetic load latency to the measured counting time per
	// segment visit (delay-free sync pass), then measure both pipeline modes.
	_, cal, err := ccpd.MineSegmented(rd, ccpd.SegmentedOptions{Options: opts, MemBudget: 1})
	if err != nil {
		return err
	}
	calPipe := cal.OutOfCore
	delay := time.Duration(calPipe.CountNS / int64(calPipe.Segments))
	if delay < 500*time.Microsecond {
		delay = 500 * time.Microsecond
	}

	type row struct {
		mode string
		wall time.Duration
		pipe *seg.PipelineStats
		res  *apriori.Result
	}
	rows := []row{{mode: "in-RAM", wall: ramWall, res: want}}
	for _, m := range []struct {
		mode   string
		budget int64
	}{{"ooc sync", 1}, {"ooc double-buffered", 0}} {
		t0 := time.Now()
		res, st, err := ccpd.MineSegmented(rd, ccpd.SegmentedOptions{
			Options: opts, MemBudget: m.budget, LoadDelay: delay,
		})
		if err != nil {
			return fmt.Errorf("%s: %w", m.mode, err)
		}
		rows = append(rows, row{mode: m.mode, wall: time.Since(t0), pipe: st.OutOfCore, res: res})
	}
	for _, rw := range rows[1:] {
		if err := sameFrequent(rw.res, want); err != nil {
			return fmt.Errorf("%s disagrees with in-RAM: %w", rw.mode, err)
		}
	}

	tab := &Table{
		Title: fmt.Sprintf("Out-of-core mining: %s, %d segments, %d procs, load delay %v (calibrated)",
			name, rd.NumSegments(), procs, delay.Round(10*time.Microsecond)),
		Header: []string{"mode", "wall ms", "stall %", "loads", "passes", "vs sync"},
	}
	syncWall := rows[1].wall
	for _, rw := range rows {
		stall, loads, passes := "-", "-", "-"
		if rw.pipe != nil {
			stall = f1(100 * rw.pipe.StallFraction())
			loads = fmt.Sprintf("%d", rw.pipe.Segments)
			passes = fmt.Sprintf("%d", rw.pipe.Passes)
		}
		speedup := "-"
		if rw.pipe != nil && rw.wall > 0 {
			speedup = f2s(float64(syncWall) / float64(rw.wall))
		}
		tab.AddRow(rw.mode, f1(float64(rw.wall.Microseconds())/1000), stall, loads, passes, speedup)
	}
	tab.Fprint(w)
	fmt.Fprintf(w, "all three modes mined the identical %d frequent itemsets\n", want.NumFrequent())
	return nil
}

// sameFrequent checks two results enumerate identical frequent itemsets with
// identical supports.
func sameFrequent(got, want *apriori.Result) error {
	if got.NumFrequent() != want.NumFrequent() {
		return fmt.Errorf("%d frequent itemsets, want %d", got.NumFrequent(), want.NumFrequent())
	}
	for k := 1; k < len(want.ByK); k++ {
		if k >= len(got.ByK) {
			if len(want.ByK[k]) > 0 {
				return fmt.Errorf("missing k=%d", k)
			}
			continue
		}
		if len(got.ByK[k]) != len(want.ByK[k]) {
			return fmt.Errorf("k=%d has %d sets, want %d", k, len(got.ByK[k]), len(want.ByK[k]))
		}
		for i, f := range want.ByK[k] {
			g := got.ByK[k][i]
			if !g.Items.Equal(f.Items) || g.Count != f.Count {
				return fmt.Errorf("k=%d[%d]: %v/%d, want %v/%d", k, i, g.Items, g.Count, f.Items, f.Count)
			}
		}
	}
	return nil
}
