// Density sweep: the engine-selection study behind the cost-based planner.
// The paper's horizontal CCPD kernel and the vertical bitmap engine trade
// places as the database gets denser; this sweep holds the transaction shape
// fixed and shrinks the item universe so the density T/N walks across the
// planner's crossover, recording both engines' wall clock at every point.
package expt

import (
	"fmt"
	"io"
	"time"

	"repro/internal/apriori"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/vbit"
)

// densityUniverses are the item-universe sizes the sweep walks through: at
// T=10 they span densities from 0.2 (every column a bitmap) down to ~0.003
// (every column a tidlist), bracketing vbit.DefaultCrossoverDensity = 1/128.
var densityUniverses = []int{50, 100, 200, 400, 800, 1600, 3200}

// DensitySweep mines one database per universe size with both the
// horizontal CCPD engine and the vertical bitmap engine — dispatched through
// the unified Miner interface — printing density, per-engine wall clock
// (best of three), the engine the cost-based planner picks, and the engine
// that actually won, then reports the measured crossover next to the
// configured default. The two results are cross-checked for agreement at
// every point — the sweep doubles as an equivalence probe across the density
// range.
func (r *Runner) DensitySweep(w io.Writer) error {
	base := gen.Params{T: 10, I: 4, D: 100000}
	procs := r.Procs[len(r.Procs)-1]

	tab := &Table{
		Title: "Density sweep: ccpd vs vbit (cost-based planner study)",
		Header: []string{"N", "density", "F", "ccpd ms", "vbit ms",
			"vbit/ccpd", "planned", "winner"},
	}
	// measuredCross is the smallest density at which vbit still won; the
	// rows walk dense → sparse, so it tracks where the advantage runs out.
	measuredCross := -1.0
	for _, n := range densityUniverses {
		p := base
		p.N = n
		p.L = n / 2
		sp := Scaled(p, r.Scale)
		sp.Seed += int64(n) // distinct universe, distinct database
		d, err := gen.Generate(sp)
		if err != nil {
			return err
		}
		sup := absSupport(d.Len(), 0.01)
		spec := engine.Spec{
			Mining: apriori.Options{AbsSupport: sup, ShortCircuit: true},
			Procs:  procs,
		}

		walls := map[string]time.Duration{}
		results := map[string]*apriori.Result{}
		for try := 0; try < 3; try++ {
			for _, name := range []string{"ccpd", "vbit"} {
				m, ok := engine.Lookup(name)
				if !ok {
					return fmt.Errorf("engine %q not registered", name)
				}
				t0 := time.Now()
				res, _, err := m.Mine(d, spec)
				if err != nil {
					return fmt.Errorf("%s N=%d: %w", name, n, err)
				}
				if el := time.Since(t0); try == 0 || el < walls[name] {
					walls[name] = el
				}
				results[name] = res
			}
		}
		cres, vres := results["ccpd"], results["vbit"]
		if cres.NumFrequent() != vres.NumFrequent() {
			return fmt.Errorf("N=%d: engines disagree (%d vs %d frequent)",
				n, cres.NumFrequent(), vres.NumFrequent())
		}

		info := engine.Characterize(d)
		plan := engine.Planner{Procs: procs}.Plan(info)
		winner := "ccpd"
		if walls["vbit"] < walls["ccpd"] {
			winner = "vbit"
			if measuredCross < 0 || info.Density < measuredCross {
				measuredCross = info.Density
			}
		}
		tab.AddRow(
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.4f", info.Density),
			fmt.Sprintf("%d", cres.NumFrequent()),
			f2s(float64(walls["ccpd"].Microseconds())/1000),
			f2s(float64(walls["vbit"].Microseconds())/1000),
			f2s(float64(walls["vbit"])/float64(walls["ccpd"])),
			plan.Engine,
			winner,
		)
	}
	tab.Fprint(w)
	fmt.Fprintf(w, "\nplanner default crossover: density >= %.4f (1/128) -> vbit\n",
		vbit.DefaultCrossoverDensity)
	if measuredCross >= 0 {
		fmt.Fprintf(w, "measured on this host: vbit still wins down to density %.4f\n", measuredCross)
	} else {
		fmt.Fprintf(w, "measured on this host: vbit never won (contended or tiny-scale run)\n")
	}
	return nil
}
