package expt

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/gen"
)

// tinyRunner keeps harness tests fast: ~200-row databases, 2 processors.
func tinyRunner() *Runner {
	r := NewRunner(0.002)
	r.Procs = []int{1, 2}
	r.MaxTraceTx = 40
	return r
}

func TestScaled(t *testing.T) {
	p := Scaled(gen.Params{T: 10, I: 4, D: 100000}, 0.01)
	if p.D != 1000 {
		t.Errorf("scaled D = %d", p.D)
	}
	if p.Seed == 0 {
		t.Error("seed not derived")
	}
	// Floor.
	p = Scaled(gen.Params{T: 10, I: 4, D: 100000}, 0.0000001)
	if p.D != 200 {
		t.Errorf("floor D = %d", p.D)
	}
	// Same params → same seed (figures share databases).
	if Scaled(PaperDatasets[0], 0.01).Seed != Scaled(PaperDatasets[0], 0.5).Seed {
		t.Error("seed should not depend on scale")
	}
}

func TestDatasetCache(t *testing.T) {
	r := tinyRunner()
	d1, name, err := r.Dataset(PaperDatasets[0])
	if err != nil {
		t.Fatal(err)
	}
	if name != "T5.I2.D100K" {
		t.Errorf("name = %q", name)
	}
	d2, _, _ := r.Dataset(PaperDatasets[0])
	if d1 != d2 {
		t.Error("dataset not cached")
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{Title: "X", Header: []string{"A", "LongHeader"}}
	tab.AddRow("1", "2")
	tab.AddRow("333", "4")
	var buf bytes.Buffer
	tab.Fprint(&buf)
	out := buf.String()
	if !strings.Contains(out, "X\n") || !strings.Contains(out, "LongHeader") {
		t.Errorf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Errorf("expected 5 lines, got %d:\n%s", len(lines), out)
	}
}

func TestAbsSupport(t *testing.T) {
	if got := absSupport(100000, 0.005); got != 500 {
		t.Errorf("absSupport = %d, want 500", got)
	}
	// The floor guards tiny scaled databases.
	if got := absSupport(200, 0.001); got != 3 {
		t.Errorf("floored absSupport = %d, want 3", got)
	}
	if got := absSupport(0, 0.5); got != 3 {
		t.Errorf("empty-db absSupport = %d, want 3", got)
	}
}

func TestPct(t *testing.T) {
	if got := pct(100, 60); got != 40 {
		t.Errorf("pct = %f", got)
	}
	if got := pct(0, 10); got != 0 {
		t.Errorf("pct base 0 = %f", got)
	}
}

func TestTable1(t *testing.T) {
	var buf bytes.Buffer
	if err := Table1(&buf); err != nil {
		t.Fatal(err)
	}
	// The Table 1 vector is 0 1 2 2 1 0 0 1 2 2.
	if !strings.Contains(buf.String(), "0  1  2  2  1  0  0  1  2  2") {
		t.Errorf("Table1 output:\n%s", buf.String())
	}
}

func TestTable2(t *testing.T) {
	r := tinyRunner()
	var buf bytes.Buffer
	if err := r.Table2(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range []string{"T5.I2.D100K", "T10.I6.D3200K"} {
		if !strings.Contains(out, name) {
			t.Errorf("missing %s in:\n%s", name, out)
		}
	}
}

func TestFigure4(t *testing.T) {
	var buf bytes.Buffer
	if err := Figure4(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Paper workloads: block 24/15/6, interleaved 18/15/12, bitonic 16/15/14.
	for _, s := range []string{"24", "16", "bitonic"} {
		if !strings.Contains(out, s) {
			t.Errorf("Figure4 missing %q:\n%s", s, out)
		}
	}
}

func TestFigures6And7(t *testing.T) {
	r := tinyRunner()
	var buf bytes.Buffer
	if err := r.Figure6(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "TreeBytes") {
		t.Error("Figure6 header missing")
	}
	buf.Reset()
	if err := r.Figure7(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Frequent") {
		t.Error("Figure7 header missing")
	}
	// Must contain at least one k=2 row.
	if !strings.Contains(buf.String(), "2") {
		t.Error("Figure7 has no iterations")
	}
}

func TestFigure8(t *testing.T) {
	r := tinyRunner()
	var buf bytes.Buffer
	if err := r.Figure8(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "COMP-TREE") {
		t.Errorf("Figure8 output:\n%s", out)
	}
	// Row count: 6 datasets × 2 proc counts.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3+6*2 {
		t.Errorf("Figure8 rows = %d:\n%s", len(lines), out)
	}
}

func TestFigures9And10(t *testing.T) {
	r := tinyRunner()
	var buf bytes.Buffer
	if err := r.Figure9(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Improvement") {
		t.Error("Figure9 header missing")
	}
	buf.Reset()
	if err := r.Figure10(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Iteration") {
		t.Error("Figure10 header missing")
	}
}

func TestFigure11(t *testing.T) {
	r := tinyRunner()
	var buf bytes.Buffer
	if err := r.Figure11(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Speedup+IO") {
		t.Errorf("Figure11 output:\n%s", out)
	}
	// Every dataset gets a procs=12 row even if r.Procs stops at 2.
	if !strings.Contains(out, "12") {
		t.Error("Figure11 missing 12-processor row")
	}
}

func TestFigure12(t *testing.T) {
	r := tinyRunner()
	// Restrict to two datasets for speed by reusing the internal slices is
	// not exposed; rely on tiny scale instead.
	var buf bytes.Buffer
	if err := r.Figure12(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "GPP") || !strings.Contains(out, "0.5%") || !strings.Contains(out, "0.1%") {
		t.Errorf("Figure12 output:\n%s", out)
	}
}

func TestFigure13(t *testing.T) {
	r := tinyRunner()
	var buf bytes.Buffer
	if err := r.Figure13(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "LCA-GPP") {
		t.Errorf("Figure13 output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// 5 datasets × 2 proc counts × 2 supports + 3 header lines.
	if len(lines) != 3+5*2*2 {
		t.Errorf("Figure13 rows = %d", len(lines))
	}
}
