package expt

import (
	"fmt"
	"io"

	"repro/internal/ccpd"
	"repro/internal/gen"
	"repro/internal/hashtree"
	"repro/internal/obs"
)

// TraceSkewed mines the skew-planted T10.I4.D100K variant (the SchedBalance
// worst case for static partitions) under the stealing scheduler with a
// recorder attached, and writes the resulting Chrome trace JSON to traceW
// and a Prometheus metrics snapshot to metricsW (either may be nil to skip).
// The run uses atomic shared counters so batched flush instants appear on
// the timeline, and fine chunks so steals actually happen — the exported
// trace is the harness's canonical "watch work-stealing rebalance a skewed
// counting phase in Perfetto" artifact (see EXPERIMENTS.md).
func (r *Runner) TraceSkewed(traceW, metricsW io.Writer, procs int) error {
	if procs < 2 {
		procs = 4
	}
	p := PaperDatasets[1] // T10.I4.D100K
	p.SkewFrac, p.SkewMult = 0.05, 8
	d, err := gen.Generate(Scaled(p, r.Scale))
	if err != nil {
		return err
	}

	rec := r.Obs
	if rec == nil {
		rec = obs.NewRecorder(procs)
	}
	opts := ccpdOpts(absSupport(d.Len(), SupportHigh), procs, true, true, true)
	opts.DBPart = ccpd.PartitionStealing
	opts.ChunkSize = 16
	opts.MaxK = 4
	opts.Counter = hashtree.CounterAtomic
	opts.Obs = rec
	if _, _, err := ccpd.Mine(d, opts); err != nil {
		return fmt.Errorf("expt: skewed trace run: %w", err)
	}

	if traceW != nil {
		if err := rec.WriteTrace(traceW); err != nil {
			return err
		}
	}
	if metricsW != nil {
		if err := rec.WriteMetrics(metricsW); err != nil {
			return err
		}
	}
	return nil
}
