// Package expt is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (Section 6) on scaled-down synthetic
// databases. Because placement cannot be controlled under the Go runtime
// and the host may not have 12 physical CPUs, parallel execution time is
// modelled from deterministic per-processor work units (see the hashtree
// cost model) and memory behaviour from the MESI cache simulator; wall
// clock is also reported where meaningful.
package expt

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/db"
	"repro/internal/gen"
	"repro/internal/obs"
)

// PaperDatasets lists the Table 2 databases in paper order (N=1000, L=2000).
var PaperDatasets = []gen.Params{
	{T: 5, I: 2, D: 100000},
	{T: 10, I: 4, D: 100000},
	{T: 15, I: 4, D: 100000},
	{T: 20, I: 6, D: 100000},
	{T: 10, I: 6, D: 400000},
	{T: 10, I: 6, D: 800000},
	{T: 10, I: 6, D: 1600000},
	{T: 10, I: 6, D: 3200000},
}

// SerialIOFraction models the paper's observed serial disk share per
// dataset (Section 6.3: 40% for T5.I2.D100K, ~10% for T10.I6.D1600K, all
// processors sharing one disk). Used optionally by the Figure 11 runner to
// reproduce the reported speed-up ceilings.
var SerialIOFraction = map[string]float64{
	"T5.I2.D100K":   0.40,
	"T10.I4.D100K":  0.30,
	"T15.I4.D100K":  0.25,
	"T20.I6.D100K":  0.20,
	"T10.I6.D400K":  0.15,
	"T10.I6.D800K":  0.12,
	"T10.I6.D1600K": 0.10,
	"T10.I6.D3200K": 0.08,
}

// Scaled returns the dataset parameters with the transaction count scaled
// by the factor (minimum 200 transactions), keeping a deterministic seed
// derived from the parameters so every figure sees the same database.
func Scaled(p gen.Params, scale float64) gen.Params {
	d := int(float64(p.D) * scale)
	if d < 200 {
		d = 200
	}
	out := p
	out.D = d
	out.Seed = int64(p.T)*1_000_003 + int64(p.I)*10_007 + int64(p.D)
	return out
}

// Runner caches generated databases across figures.
type Runner struct {
	// Scale shrinks every dataset's transaction count (1.0 = paper size).
	Scale float64
	// Procs lists the processor counts used by the multi-processor figures.
	Procs []int
	// MaxTraceTx caps traced transactions per processor in the placement
	// studies (0 = everything).
	MaxTraceTx int
	// Obs, when non-nil, receives cachesim miss-rate gauges from the
	// placement figures and is threaded into any mining run the harness
	// exports traces from.
	Obs *obs.Recorder

	cache map[string]*db.Database
}

// NewRunner builds a runner with the defaults used by cmd/experiments:
// scale 0.02 and processor counts 1..8.
func NewRunner(scale float64) *Runner {
	if scale <= 0 {
		scale = 0.02
	}
	return &Runner{
		Scale:      scale,
		Procs:      []int{1, 2, 4, 8},
		MaxTraceTx: 200,
		cache:      map[string]*db.Database{},
	}
}

// Dataset returns (generating and caching) the scaled database for params.
func (r *Runner) Dataset(p gen.Params) (*db.Database, string, error) {
	name := p.Name() // canonical (unscaled) label, as in the paper's figures
	if d, ok := r.cache[name]; ok {
		return d, name, nil
	}
	d, err := gen.Generate(Scaled(p, r.Scale))
	if err != nil {
		return nil, name, err
	}
	r.cache[name] = d
	return d, name, nil
}

// Table is a simple fixed-width text table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint renders the table.
func (t *Table) Fprint(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

// absSupport resolves a support fraction to an absolute count with a floor
// of 3 transactions: on scaled-down databases a fraction like 0.1% would
// otherwise collapse to a count of 1, making every item frequent and
// exploding C2 combinatorially — a scale artifact, not a property of the
// paper's workloads.
func absSupport(dbLen int, frac float64) int64 {
	c := int64(frac * float64(dbLen))
	if c < 3 {
		c = 3
	}
	return c
}

func pct(base, opt int64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (1 - float64(opt)/float64(base))
}

func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func f2s(v float64) string { return fmt.Sprintf("%.2f", v) }
