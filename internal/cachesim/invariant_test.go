package cachesim

import (
	"math/rand"
	"testing"

	"repro/internal/mem"
	"repro/internal/trace"
)

// checkMESIInvariants verifies the single-writer / multi-reader protocol
// invariants over all caches: a line in M or E in one cache must be Invalid
// everywhere else; S copies may coexist but never alongside M/E.
func checkMESIInvariants(t *testing.T, s *Sim) {
	t.Helper()
	type holder struct {
		proc int
		st   state
	}
	lines := map[uint64][]holder{}
	for p := range s.caches {
		for si := range s.caches[p].sets {
			for _, l := range s.caches[p].sets[si] {
				if l.state != invalid {
					lines[l.tag] = append(lines[l.tag], holder{p, l.state})
				}
			}
		}
	}
	for ln, hs := range lines {
		exclusiveHolders := 0
		sharedHolders := 0
		for _, h := range hs {
			switch h.st {
			case modified, exclusive:
				exclusiveHolders++
			case shared:
				sharedHolders++
			}
		}
		if exclusiveHolders > 1 {
			t.Fatalf("line %#x held M/E by %d caches", ln, exclusiveHolders)
		}
		if exclusiveHolders == 1 && sharedHolders > 0 {
			t.Fatalf("line %#x held M/E alongside %d S copies", ln, sharedHolders)
		}
	}
}

// TestMESIInvariantRandom hammers the simulator with random interleaved
// reads and writes and checks protocol invariants and stats consistency
// after every burst.
func TestMESIInvariantRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(12345))
	for trial := 0; trial < 10; trial++ {
		procs := 2 + rng.Intn(4)
		cfg := Config{
			Procs: procs, LineSize: 64, CacheSize: 2048, Ways: 2,
			HitCycles: 1, MissCycles: 30, InvalidateCycles: 10, ComputeCycles: 1,
		}
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for burst := 0; burst < 20; burst++ {
			bufs := make([]*trace.Buffer, procs)
			for p := 0; p < procs; p++ {
				b := trace.NewBuffer(p, 32)
				for i := 0; i < 32; i++ {
					addr := mem.Addr(0x10000 + rng.Intn(40)*16) // heavy sharing
					if rng.Intn(3) == 0 {
						b.Store(addr, 4)
					} else {
						b.Load(addr, 4)
					}
				}
				bufs[p] = b
			}
			res := s.Run(bufs)
			checkMESIInvariants(t, s)
			tot := res.Totals()
			if tot.Hits+tot.Misses != tot.Accesses {
				t.Fatalf("hits %d + misses %d != accesses %d", tot.Hits, tot.Misses, tot.Accesses)
			}
			if tot.TrueSharingInvals+tot.FalseSharingInvals != tot.InvalidationsRecv {
				t.Fatalf("sharing classification doesn't sum: %d + %d != %d",
					tot.TrueSharingInvals, tot.FalseSharingInvals, tot.InvalidationsRecv)
			}
			if tot.ColdMisses+tot.CoherenceMisses > tot.Misses {
				t.Fatalf("miss classification exceeds misses")
			}
		}
	}
}

// TestRunAccumulates verifies consecutive Run calls keep cache state (warm
// second pass).
func TestRunAccumulates(t *testing.T) {
	cfg := tinyConfig(1)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b := trace.NewBuffer(0, 4)
	b.Load(0x100, 4)
	r1 := s.Run([]*trace.Buffer{b})
	if r1.PerProc[0].Misses != 1 {
		t.Fatalf("first pass: %+v", r1.PerProc[0])
	}
	b2 := trace.NewBuffer(0, 4)
	b2.Load(0x100, 4)
	r2 := s.Run([]*trace.Buffer{b2})
	// Cumulative stats: second run adds a hit.
	if r2.PerProc[0].Hits != 1 || r2.PerProc[0].Misses != 1 {
		t.Fatalf("second pass (cumulative): %+v", r2.PerProc[0])
	}
}
