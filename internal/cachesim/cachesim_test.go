package cachesim

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/trace"
)

func tinyConfig(procs int) Config {
	return Config{
		Procs: procs, LineSize: 64, CacheSize: 1024, Ways: 2,
		HitCycles: 1, MissCycles: 50, InvalidateCycles: 10, ComputeCycles: 1,
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Procs: 0, LineSize: 64, CacheSize: 1024, Ways: 2},
		{Procs: 1, LineSize: 48, CacheSize: 1024, Ways: 2},
		{Procs: 1, LineSize: 64, CacheSize: 64, Ways: 2},
		{Procs: 1, LineSize: 64, CacheSize: 1024, Ways: 0},
	}
	for i, c := range bad {
		if _, err := New(c); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
	if _, err := New(DefaultConfig(4)); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestColdMissThenHit(t *testing.T) {
	b := trace.NewBuffer(0, 4)
	b.Load(0x1000, 4)
	b.Load(0x1000, 4)
	b.Load(0x1004, 4) // same line
	res, err := Replay(tinyConfig(1), []*trace.Buffer{b})
	if err != nil {
		t.Fatal(err)
	}
	s := res.PerProc[0]
	if s.Accesses != 3 || s.Misses != 1 || s.Hits != 2 || s.ColdMisses != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestCapacityEviction(t *testing.T) {
	// 1KB, 2-way, 64B lines → 8 sets. 3 lines mapping to the same set force
	// an eviction; re-touching the first line misses again (not cold).
	b := trace.NewBuffer(0, 8)
	set0 := func(i int) mem.Addr { return mem.Addr(0x10000 + i*8*64) } // stride 8 lines = same set
	b.Load(set0(0), 4)
	b.Load(set0(1), 4)
	b.Load(set0(2), 4) // evicts set0(0) (LRU)
	b.Load(set0(0), 4) // miss again
	res, _ := Replay(tinyConfig(1), []*trace.Buffer{b})
	s := res.PerProc[0]
	if s.Misses != 4 {
		t.Errorf("expected 4 misses, got %+v", s)
	}
	if s.ColdMisses != 3 {
		t.Errorf("expected 3 cold misses, got %d", s.ColdMisses)
	}
}

func TestLRUKeepsHotLine(t *testing.T) {
	b := trace.NewBuffer(0, 16)
	set0 := func(i int) mem.Addr { return mem.Addr(0x10000 + i*8*64) }
	b.Load(set0(0), 4)
	b.Load(set0(1), 4)
	b.Load(set0(0), 4) // refresh 0 → LRU victim is 1
	b.Load(set0(2), 4) // evicts 1
	b.Load(set0(0), 4) // still cached → hit
	res, _ := Replay(tinyConfig(1), []*trace.Buffer{b})
	s := res.PerProc[0]
	if s.Hits != 2 {
		t.Errorf("expected 2 hits (refresh + final), got %+v", s)
	}
}

func TestWriteUpgradeInvalidates(t *testing.T) {
	// P0 and P1 read the same line (→ shared), then P0 writes it: P1 must
	// receive an invalidation, and its next read is a coherence miss.
	b0 := trace.NewBuffer(0, 4)
	b1 := trace.NewBuffer(1, 4)
	b0.Load(0x2000, 4)
	b1.Load(0x2000, 4)
	b0.Store(0x2000, 4)
	b1.Load(0x2000, 4)
	res, _ := Replay(tinyConfig(2), []*trace.Buffer{b0, b1})
	s0, s1 := res.PerProc[0], res.PerProc[1]
	if s0.InvalidationsSent != 1 {
		t.Errorf("P0 sent %d invalidations, want 1", s0.InvalidationsSent)
	}
	if s1.InvalidationsRecv != 1 {
		t.Errorf("P1 received %d invalidations, want 1", s1.InvalidationsRecv)
	}
	if s1.CoherenceMisses != 1 {
		t.Errorf("P1 coherence misses = %d, want 1", s1.CoherenceMisses)
	}
}

func TestTrueVsFalseSharing(t *testing.T) {
	// True sharing: both touch word 0, P0 writes word 0.
	b0 := trace.NewBuffer(0, 4)
	b1 := trace.NewBuffer(1, 4)
	b0.Load(0x3000, 4)
	b1.Load(0x3000, 4)
	b0.Store(0x3000, 4)
	res, _ := Replay(tinyConfig(2), []*trace.Buffer{b0, b1})
	if res.PerProc[1].TrueSharingInvals != 1 || res.PerProc[1].FalseSharingInvals != 0 {
		t.Errorf("true-sharing case: %+v", res.PerProc[1])
	}

	// False sharing: P1 touches word 8 (byte 32), P0 writes word 0 of the
	// same line.
	b0 = trace.NewBuffer(0, 4)
	b1 = trace.NewBuffer(1, 4)
	b0.Load(0x4000, 4)
	b1.Load(0x4020, 4) // same 64B line, different word
	b0.Store(0x4000, 4)
	res, _ = Replay(tinyConfig(2), []*trace.Buffer{b0, b1})
	if res.PerProc[1].FalseSharingInvals != 1 || res.PerProc[1].TrueSharingInvals != 0 {
		t.Errorf("false-sharing case: %+v", res.PerProc[1])
	}
}

func TestExclusiveSilentUpgrade(t *testing.T) {
	// A sole reader that then writes should not send invalidations (E→M).
	b := trace.NewBuffer(0, 2)
	b.Load(0x5000, 4)
	b.Store(0x5000, 4)
	res, _ := Replay(tinyConfig(2), []*trace.Buffer{b, trace.NewBuffer(1, 0)})
	s := res.PerProc[0]
	if s.InvalidationsSent != 0 {
		t.Errorf("silent upgrade sent %d invalidations", s.InvalidationsSent)
	}
	if s.Hits != 1 || s.Misses != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestWritebackOnEvictionOfModified(t *testing.T) {
	b := trace.NewBuffer(0, 8)
	set0 := func(i int) mem.Addr { return mem.Addr(0x10000 + i*8*64) }
	b.Store(set0(0), 4)
	b.Load(set0(1), 4)
	b.Load(set0(2), 4) // evicts modified set0(0) → writeback
	res, _ := Replay(tinyConfig(1), []*trace.Buffer{b})
	if res.PerProc[0].Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", res.PerProc[0].Writebacks)
	}
}

func TestReadSharingNoInvalidation(t *testing.T) {
	// Pure read sharing must not create invalidations.
	b0 := trace.NewBuffer(0, 4)
	b1 := trace.NewBuffer(1, 4)
	for i := 0; i < 3; i++ {
		b0.Load(0x6000, 4)
		b1.Load(0x6000, 4)
	}
	res, _ := Replay(tinyConfig(2), []*trace.Buffer{b0, b1})
	tot := res.Totals()
	if tot.InvalidationsRecv != 0 || tot.InvalidationsSent != 0 {
		t.Errorf("read sharing produced invalidations: %+v", tot)
	}
	if tot.Misses != 2 {
		t.Errorf("misses = %d, want 2 (one cold each)", tot.Misses)
	}
}

func TestMultiLineAccessSplit(t *testing.T) {
	// A 128-byte access spans two 64B lines → two references.
	b := trace.NewBuffer(0, 1)
	b.Load(0x7000, 128)
	res, _ := Replay(tinyConfig(1), []*trace.Buffer{b})
	if res.PerProc[0].Accesses != 2 || res.PerProc[0].Misses != 2 {
		t.Errorf("multi-line stats = %+v", res.PerProc[0])
	}
}

func TestTimeIsMaxOverProcs(t *testing.T) {
	b0 := trace.NewBuffer(0, 10)
	b1 := trace.NewBuffer(1, 1)
	for i := 0; i < 10; i++ {
		b0.Load(mem.Addr(0x8000+i*64), 4)
	}
	b1.Load(0x9000, 4)
	res, _ := Replay(tinyConfig(2), []*trace.Buffer{b0, b1})
	if res.Time != res.PerProc[0].Cycles {
		t.Errorf("Time = %d, P0 cycles = %d", res.Time, res.PerProc[0].Cycles)
	}
	if res.PerProc[0].Cycles <= res.PerProc[1].Cycles {
		t.Error("P0 should dominate")
	}
}

func TestContiguousBeatsScattered(t *testing.T) {
	// The core premise of the placement study: sequential accesses over a
	// compact region produce fewer misses than the same count of accesses
	// scattered across lines.
	compact := trace.NewBuffer(0, 256)
	for i := 0; i < 256; i++ {
		compact.Load(mem.Addr(0x10000+i*4), 4)
	}
	scattered := trace.NewBuffer(0, 256)
	for i := 0; i < 256; i++ {
		scattered.Load(mem.Addr(0x10000+i*256), 4)
	}
	cfg := tinyConfig(1)
	r1, _ := Replay(cfg, []*trace.Buffer{compact})
	r2, _ := Replay(cfg, []*trace.Buffer{scattered})
	if r1.PerProc[0].Misses >= r2.PerProc[0].Misses {
		t.Errorf("compact misses %d !< scattered misses %d", r1.PerProc[0].Misses, r2.PerProc[0].Misses)
	}
	if r1.Time >= r2.Time {
		t.Errorf("compact time %d !< scattered time %d", r1.Time, r2.Time)
	}
}

func TestMissRate(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 {
		t.Error("zero-access miss rate should be 0")
	}
	s = Stats{Accesses: 10, Misses: 3}
	if got := s.MissRate(); got != 0.3 {
		t.Errorf("MissRate = %f", got)
	}
}

func TestTotals(t *testing.T) {
	b0 := trace.NewBuffer(0, 2)
	b1 := trace.NewBuffer(1, 2)
	b0.Load(0xA000, 4)
	b1.Load(0xB000, 4)
	res, _ := Replay(tinyConfig(2), []*trace.Buffer{b0, b1})
	tot := res.Totals()
	if tot.Accesses != 2 || tot.Misses != 2 {
		t.Errorf("totals = %+v", tot)
	}
}

func TestZeroSizeAccess(t *testing.T) {
	b := trace.NewBuffer(0, 1)
	b.Accesses = append(b.Accesses, trace.Access{Addr: 0xC000, Size: 0, Op: trace.Read})
	res, _ := Replay(tinyConfig(1), []*trace.Buffer{b})
	if res.PerProc[0].Accesses != 1 {
		t.Errorf("zero-size access should count once, got %+v", res.PerProc[0])
	}
}
