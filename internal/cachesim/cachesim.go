// Package cachesim simulates per-processor set-associative caches kept
// coherent with a snooping MESI protocol. It replays the memory access
// traces produced by the support-counting phase (internal/trace) and
// reports hits, misses, coherence invalidations — split into true and false
// sharing — and a modelled execution time, reproducing the locality /
// false-sharing evaluation of Section 6.4 without requiring control over
// the real heap.
//
// False-sharing classification follows Torrellas et al. (1990): an
// invalidation received by processor Q because P wrote word w is *false*
// if Q never accessed word w while it held the line, and *true* otherwise.
package cachesim

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/trace"
)

// Config sizes the simulated memory system. The defaults approximate one
// node of the paper's SGI Power Challenge (1 MB secondary cache, long
// miss penalty relative to hits).
type Config struct {
	Procs     int
	LineSize  int // bytes per coherence block (power of two)
	CacheSize int // bytes per processor (the coherent L2 level)
	Ways      int // associativity

	// Optional private first-level cache in front of the coherent level
	// (the SGI node pairs a 16 KB primary with the 1 MB secondary).
	// L1Size 0 disables it. The L1 is kept inclusive: remote
	// invalidations and L2 evictions clear the L1 copy.
	L1Size int
	L1Ways int

	// Latency model (cycles). HitCycles is the L2 (coherent-level) hit
	// cost; L1HitCycles the first-level hit cost.
	L1HitCycles      int
	HitCycles        int
	MissCycles       int // memory access on miss
	InvalidateCycles int // bus transaction charged to the writer
	ComputeCycles    int // fixed per-access compute overlap
}

// DefaultConfig mirrors the evaluation platform closely enough for relative
// comparisons: a 16 KB direct-mapped primary over a 1 MB 4-way coherent
// secondary with 64 B lines.
func DefaultConfig(procs int) Config {
	return Config{
		Procs:            procs,
		LineSize:         64,
		CacheSize:        1 << 20,
		Ways:             4,
		L1Size:           16 << 10,
		L1Ways:           1,
		L1HitCycles:      1,
		HitCycles:        8,
		MissCycles:       60,
		InvalidateCycles: 20,
		ComputeCycles:    1,
	}
}

func (c Config) validate() error {
	if c.Procs < 1 {
		return fmt.Errorf("cachesim: need ≥1 processor, got %d", c.Procs)
	}
	if c.LineSize <= 0 || c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("cachesim: line size %d not a power of two", c.LineSize)
	}
	if c.Ways < 1 || c.CacheSize < c.LineSize*c.Ways {
		return fmt.Errorf("cachesim: cache %dB/%d-way too small for line %dB", c.CacheSize, c.Ways, c.LineSize)
	}
	if c.L1Size > 0 && (c.L1Ways < 1 || c.L1Size < c.LineSize*c.L1Ways) {
		return fmt.Errorf("cachesim: L1 %dB/%d-way too small for line %dB", c.L1Size, c.L1Ways, c.LineSize)
	}
	return nil
}

// state is the MESI line state.
type state uint8

const (
	invalid state = iota
	shared
	exclusive
	modified
)

// line is one cache way.
type line struct {
	tag   uint64
	state state
	// wordMask records which 4-byte words this processor touched since the
	// line was loaded; used for true/false sharing classification.
	wordMask uint64
	lru      uint64
}

// cache is one processor's coherent-level cache.
type cache struct {
	sets [][]line
}

// l1line is one way of the private first-level cache (no protocol state of
// its own; inclusion keeps it consistent with the coherent level).
type l1line struct {
	tag   uint64
	valid bool
	lru   uint64
}

// l1cache is one processor's first-level cache.
type l1cache struct {
	sets [][]l1line
}

// Stats aggregates results for one processor.
type Stats struct {
	Accesses           int64
	L1Hits             int64 // satisfied by the private first-level cache
	Hits               int64
	Misses             int64
	ColdMisses         int64 // first touch of a line anywhere
	CoherenceMisses    int64 // miss on a line this cache held but lost to an invalidation
	InvalidationsRecv  int64
	FalseSharingInvals int64
	TrueSharingInvals  int64
	InvalidationsSent  int64
	Writebacks         int64
	Cycles             int64
}

// Result is the outcome of replaying a workload.
type Result struct {
	PerProc []Stats
	// Time is the modelled parallel execution time: the max per-processor
	// cycle count (processors run concurrently).
	Time int64
}

// Totals sums the per-processor stats.
func (r *Result) Totals() Stats {
	var t Stats
	for _, s := range r.PerProc {
		t.Accesses += s.Accesses
		t.L1Hits += s.L1Hits
		t.Hits += s.Hits
		t.Misses += s.Misses
		t.ColdMisses += s.ColdMisses
		t.CoherenceMisses += s.CoherenceMisses
		t.InvalidationsRecv += s.InvalidationsRecv
		t.FalseSharingInvals += s.FalseSharingInvals
		t.TrueSharingInvals += s.TrueSharingInvals
		t.InvalidationsSent += s.InvalidationsSent
		t.Writebacks += s.Writebacks
		t.Cycles += s.Cycles
	}
	return t
}

// MissRate returns misses/accesses.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Sim is the multi-processor cache simulator.
type Sim struct {
	cfg       Config
	caches    []cache
	l1        []l1cache
	numL1Sets int
	stats     []Stats
	lineShift uint
	setsMask  uint64
	numSets   int
	clock     uint64
	// touched records lines ever loaded anywhere, for cold-miss accounting.
	touched map[uint64]bool
	// lost records lines a processor once cached but lost to invalidation.
	lost []map[uint64]bool
}

// New builds a simulator.
func New(cfg Config) (*Sim, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	shift := uint(0)
	for 1<<shift < cfg.LineSize {
		shift++
	}
	numSets := cfg.CacheSize / (cfg.LineSize * cfg.Ways)
	if numSets == 0 {
		numSets = 1
	}
	s := &Sim{
		cfg:       cfg,
		caches:    make([]cache, cfg.Procs),
		stats:     make([]Stats, cfg.Procs),
		lineShift: shift,
		numSets:   numSets,
		touched:   make(map[uint64]bool),
		lost:      make([]map[uint64]bool, cfg.Procs),
	}
	for p := range s.caches {
		s.caches[p].sets = make([][]line, numSets)
		for i := range s.caches[p].sets {
			s.caches[p].sets[i] = make([]line, cfg.Ways)
		}
		s.lost[p] = make(map[uint64]bool)
	}
	if cfg.L1Size > 0 {
		s.numL1Sets = cfg.L1Size / (cfg.LineSize * cfg.L1Ways)
		if s.numL1Sets == 0 {
			s.numL1Sets = 1
		}
		s.l1 = make([]l1cache, cfg.Procs)
		for p := range s.l1 {
			s.l1[p].sets = make([][]l1line, s.numL1Sets)
			for i := range s.l1[p].sets {
				s.l1[p].sets[i] = make([]l1line, cfg.L1Ways)
			}
		}
	}
	return s, nil
}

// l1Lookup returns the way index of ln in proc's L1, or -1.
func (s *Sim) l1Lookup(proc int, ln uint64) int {
	if s.l1 == nil {
		return -1
	}
	set := s.l1[proc].sets[int(ln%uint64(s.numL1Sets))]
	for w := range set {
		if set[w].valid && set[w].tag == ln {
			return w
		}
	}
	return -1
}

// l1Install places ln into proc's L1, evicting LRU.
func (s *Sim) l1Install(proc int, ln uint64) {
	if s.l1 == nil {
		return
	}
	set := s.l1[proc].sets[int(ln%uint64(s.numL1Sets))]
	best, bestLRU := 0, ^uint64(0)
	for w := range set {
		if !set[w].valid {
			best = w
			break
		}
		if set[w].lru < bestLRU {
			best, bestLRU = w, set[w].lru
		}
	}
	set[best] = l1line{tag: ln, valid: true, lru: s.clock}
}

// l1Invalidate drops ln from proc's L1 (inclusion maintenance).
func (s *Sim) l1Invalidate(proc int, ln uint64) {
	if s.l1 == nil {
		return
	}
	set := s.l1[proc].sets[int(ln%uint64(s.numL1Sets))]
	for w := range set {
		if set[w].valid && set[w].tag == ln {
			set[w].valid = false
		}
	}
}

func (s *Sim) lineOf(a mem.Addr) uint64 { return uint64(a) >> s.lineShift }

func (s *Sim) setOf(ln uint64) int { return int(ln % uint64(s.numSets)) }

// wordBit returns the word-mask bit for byte offset off within a line.
func wordBit(off uint64) uint64 { return 1 << ((off / 4) & 63) }

// find returns the way index holding ln in proc's cache, or -1.
func (s *Sim) find(proc int, ln uint64) int {
	set := s.caches[proc].sets[s.setOf(ln)]
	for w := range set {
		if set[w].state != invalid && set[w].tag == ln {
			return w
		}
	}
	return -1
}

// victim picks the LRU way in the set (preferring invalid ways).
func (s *Sim) victim(proc int, ln uint64) int {
	set := s.caches[proc].sets[s.setOf(ln)]
	best, bestLRU := 0, ^uint64(0)
	for w := range set {
		if set[w].state == invalid {
			return w
		}
		if set[w].lru < bestLRU {
			best, bestLRU = w, set[w].lru
		}
	}
	return best
}

// access replays one reference by processor proc.
func (s *Sim) access(proc int, a trace.Access) {
	st := &s.stats[proc]
	// A reference spanning multiple lines is split.
	first := s.lineOf(a.Addr)
	last := s.lineOf(a.Addr + mem.Addr(a.Size) - 1)
	if a.Size == 0 {
		last = first
	}
	for ln := first; ln <= last; ln++ {
		s.clock++
		st.Accesses++
		st.Cycles += int64(s.cfg.ComputeCycles)
		off := uint64(0)
		if ln == first {
			off = uint64(a.Addr) & uint64(s.cfg.LineSize-1)
		}
		bit := wordBit(off)
		// First-level lookup: reads are satisfied privately; writes must
		// still run the coherent-level protocol.
		if a.Op == trace.Read {
			if lw := s.l1Lookup(proc, ln); lw >= 0 {
				// Accesses and compute cycles were charged at loop entry.
				st.L1Hits++
				st.Cycles += int64(s.cfg.L1HitCycles)
				set := s.l1[proc].sets[int(ln%uint64(s.numL1Sets))]
				set[lw].lru = s.clock
				// Keep the coherent level's word mask (sharing
				// classification) and recency up to date.
				if w2 := s.find(proc, ln); w2 >= 0 {
					l2set := s.caches[proc].sets[s.setOf(ln)]
					l2set[w2].wordMask |= bit
					l2set[w2].lru = s.clock
				}
				continue
			}
		}
		w := s.find(proc, ln)
		if w >= 0 {
			set := s.caches[proc].sets[s.setOf(ln)]
			l := &set[w]
			if a.Op == trace.Read || l.state == modified || l.state == exclusive {
				// Hit, possibly with a silent E→M upgrade.
				if a.Op == trace.Write {
					l.state = modified
				}
				l.wordMask |= bit
				l.lru = s.clock
				st.Hits++
				st.Cycles += int64(s.cfg.HitCycles)
				s.l1Install(proc, ln)
				continue
			}
			// Write hit on a shared line: upgrade, invalidate other copies.
			s.invalidateOthers(proc, ln, bit)
			l.state = modified
			l.wordMask |= bit
			l.lru = s.clock
			st.Hits++
			st.Cycles += int64(s.cfg.HitCycles + s.cfg.InvalidateCycles)
			st.InvalidationsSent++
			s.l1Install(proc, ln)
			continue
		}
		// Miss path.
		st.Misses++
		st.Cycles += int64(s.cfg.MissCycles)
		if !s.touched[ln] {
			st.ColdMisses++
			s.touched[ln] = true
		} else if s.lost[proc][ln] {
			st.CoherenceMisses++
			delete(s.lost[proc], ln)
		}
		sharedElsewhere := false
		if a.Op == trace.Write {
			s.invalidateOthers(proc, ln, bit)
			st.InvalidationsSent++
			st.Cycles += int64(s.cfg.InvalidateCycles)
		} else {
			sharedElsewhere = s.downgradeOthers(proc, ln)
		}
		v := s.victim(proc, ln)
		set := s.caches[proc].sets[s.setOf(ln)]
		if set[v].state != invalid {
			// Inclusion: evicting a coherent-level line drops the L1 copy.
			s.l1Invalidate(proc, set[v].tag)
		}
		if set[v].state == modified {
			st.Writebacks++
		}
		ns := exclusive
		switch {
		case a.Op == trace.Write:
			ns = modified
		case sharedElsewhere:
			ns = shared
		}
		set[v] = line{tag: ln, state: ns, wordMask: bit, lru: s.clock}
		s.l1Install(proc, ln)
	}
}

// invalidateOthers removes ln from every other cache, classifying each
// invalidation as true or false sharing against the victim's word mask.
func (s *Sim) invalidateOthers(writer int, ln uint64, bit uint64) {
	for p := range s.caches {
		if p == writer {
			continue
		}
		w := s.find(p, ln)
		if w < 0 {
			continue
		}
		set := s.caches[p].sets[s.setOf(ln)]
		if set[w].state == modified {
			s.stats[p].Writebacks++
		}
		s.stats[p].InvalidationsRecv++
		if set[w].wordMask&bit != 0 {
			s.stats[p].TrueSharingInvals++
		} else {
			s.stats[p].FalseSharingInvals++
		}
		set[w].state = invalid
		s.l1Invalidate(p, ln)
		s.lost[p][ln] = true
	}
}

// downgradeOthers moves M/E copies to S for a read miss, returning whether
// any other cache holds the line.
func (s *Sim) downgradeOthers(reader int, ln uint64) bool {
	any := false
	for p := range s.caches {
		if p == reader {
			continue
		}
		w := s.find(p, ln)
		if w < 0 {
			continue
		}
		set := s.caches[p].sets[s.setOf(ln)]
		if set[w].state == modified {
			s.stats[p].Writebacks++
		}
		if set[w].state != invalid {
			set[w].state = shared
			any = true
		}
	}
	return any
}

// Run replays the per-processor buffers with round-robin interleaving at
// single-access granularity, approximating concurrent execution, and
// returns the statistics. Buffers may have different lengths.
func (s *Sim) Run(bufs []*trace.Buffer) *Result {
	idx := make([]int, len(bufs))
	remaining := 0
	for _, b := range bufs {
		remaining += b.Len()
	}
	for remaining > 0 {
		for bi, b := range bufs {
			if idx[bi] >= b.Len() {
				continue
			}
			s.access(b.Proc, b.Accesses[idx[bi]])
			idx[bi]++
			remaining--
		}
	}
	res := &Result{PerProc: make([]Stats, len(s.stats))}
	copy(res.PerProc, s.stats)
	for _, st := range res.PerProc {
		if st.Cycles > res.Time {
			res.Time = st.Cycles
		}
	}
	return res
}

// Replay is the one-shot convenience: build a simulator and run the buffers.
func Replay(cfg Config, bufs []*trace.Buffer) (*Result, error) {
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return s.Run(bufs), nil
}
