package cachesim

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/trace"
)

func l1Config(procs int) Config {
	c := tinyConfig(procs)
	c.L1Size = 256 // 4 lines
	c.L1Ways = 1
	c.L1HitCycles = 1
	c.HitCycles = 8
	return c
}

func TestL1ReadHit(t *testing.T) {
	b := trace.NewBuffer(0, 3)
	b.Load(0x1000, 4) // cold miss, fills L2 and L1
	b.Load(0x1000, 4) // L1 hit
	b.Load(0x1004, 4) // same line, L1 hit
	res, err := Replay(l1Config(1), []*trace.Buffer{b})
	if err != nil {
		t.Fatal(err)
	}
	s := res.PerProc[0]
	if s.L1Hits != 2 {
		t.Errorf("L1Hits = %d, want 2", s.L1Hits)
	}
	if s.Misses != 1 {
		t.Errorf("Misses = %d", s.Misses)
	}
	// Hit accounting: accesses = L1 hits + L2 hits + misses.
	if s.Accesses != s.L1Hits+s.Hits+s.Misses {
		t.Errorf("accounting: %d != %d + %d + %d", s.Accesses, s.L1Hits, s.Hits, s.Misses)
	}
}

func TestL1HitCheaperThanL2(t *testing.T) {
	cfg := l1Config(1)
	// Same access twice: second via L1.
	b := trace.NewBuffer(0, 2)
	b.Load(0x2000, 4)
	b.Load(0x2000, 4)
	res, _ := Replay(cfg, []*trace.Buffer{b})
	withL1 := res.PerProc[0].Cycles

	cfg2 := cfg
	cfg2.L1Size = 0 // disabled
	b2 := trace.NewBuffer(0, 2)
	b2.Load(0x2000, 4)
	b2.Load(0x2000, 4)
	res2, _ := Replay(cfg2, []*trace.Buffer{b2})
	without := res2.PerProc[0].Cycles
	if withL1 >= without {
		t.Errorf("L1 should reduce cycles: %d vs %d", withL1, without)
	}
}

func TestL1WritesGoThroughProtocol(t *testing.T) {
	// P0 and P1 read-share a line (both have it in L1+L2). P0's write must
	// still invalidate P1 even though P0 has an L1 copy.
	b0 := trace.NewBuffer(0, 4)
	b1 := trace.NewBuffer(1, 4)
	b0.Load(0x3000, 4)
	b1.Load(0x3000, 4)
	b0.Store(0x3000, 4)
	b1.Load(0x3000, 4) // must miss: L1 copy was invalidated via inclusion
	res, _ := Replay(l1Config(2), []*trace.Buffer{b0, b1})
	s1 := res.PerProc[1]
	if s1.InvalidationsRecv != 1 {
		t.Errorf("P1 invalidations = %d", s1.InvalidationsRecv)
	}
	if s1.CoherenceMisses != 1 {
		t.Errorf("P1 must re-miss after invalidation; stats %+v", s1)
	}
	if s1.L1Hits != 0 {
		t.Errorf("stale L1 hit after invalidation: %+v", s1)
	}
}

func TestL1InclusionOnL2Eviction(t *testing.T) {
	// Evict a line from L2 by conflict; its L1 copy must die with it.
	cfg := l1Config(1)
	// L2: 1024B/2-way/64B → 8 sets; same-set stride 8*64.
	// L1: 256B direct-mapped → 4 sets; stride for L1 set 0 is 4*64.
	set0 := func(i int) mem.Addr { return mem.Addr(0x10000 + i*8*64) }
	b := trace.NewBuffer(0, 8)
	b.Load(set0(0), 4)
	b.Load(set0(1), 4)
	b.Load(set0(2), 4) // evicts set0(0) from L2 (LRU) → L1 copy must go
	b.Load(set0(0), 4) // must be an L2 miss, not an L1 hit
	res, _ := Replay(cfg, []*trace.Buffer{b})
	s := res.PerProc[0]
	if s.Misses != 4 {
		t.Errorf("expected 4 misses (incl. re-fetch), got %+v", s)
	}
	if s.L1Hits != 0 {
		t.Errorf("stale L1 hit across L2 eviction: %+v", s)
	}
}

func TestL1ValidatesConfig(t *testing.T) {
	cfg := l1Config(1)
	cfg.L1Ways = 0
	if _, err := New(cfg); err == nil {
		t.Error("L1Size>0 with L1Ways=0 should be rejected")
	}
	cfg = l1Config(1)
	cfg.L1Size = 32 // smaller than one line
	if _, err := New(cfg); err == nil {
		t.Error("L1 smaller than a line should be rejected")
	}
}

func TestDefaultConfigHasL1(t *testing.T) {
	cfg := DefaultConfig(2)
	if cfg.L1Size != 16<<10 || cfg.L1Ways != 1 {
		t.Errorf("default L1 = %d/%d", cfg.L1Size, cfg.L1Ways)
	}
	if _, err := New(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMESIInvariantsWithL1(t *testing.T) {
	// Rerun the random invariant hammer with an L1 in front.
	cfg := l1Config(3)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seed := uint64(99)
	next := func() uint64 { seed = seed*6364136223846793005 + 1; return seed >> 33 }
	for burst := 0; burst < 30; burst++ {
		bufs := make([]*trace.Buffer, 3)
		for p := 0; p < 3; p++ {
			b := trace.NewBuffer(p, 16)
			for i := 0; i < 16; i++ {
				addr := mem.Addr(0x20000 + next()%30*16)
				if next()%3 == 0 {
					b.Store(addr, 4)
				} else {
					b.Load(addr, 4)
				}
			}
			bufs[p] = b
		}
		s.Run(bufs)
		checkMESIInvariants(t, s)
	}
}
