package engine

import (
	"context"
	"path/filepath"
	"testing"

	"repro/internal/apriori"
	"repro/internal/db/seg"
	"repro/internal/gen"
)

// TestEquivalenceThroughInterface reruns the PR 5 cross-algorithm
// equivalence suite through the Miner interface: every registered exact
// engine, dispatched by name with one shared Spec, must return bit-identical
// results (frequent sets, supports, ordering, MinCount) to sequential
// Apriori over seeded databases and fractional thresholds — and the engines
// with a segmented capability must match again when mining the same data
// from an on-disk segmented store.
func TestEquivalenceThroughInterface(t *testing.T) {
	for _, seed := range []int64{5, 17} {
		d, err := gen.Generate(gen.Params{N: 60, L: 15, I: 3, T: 6, D: 400, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		segPath := filepath.Join(t.TempDir(), "eq.arseg")
		if err := seg.WriteDatabase(segPath, d, seg.WriterOptions{SegTx: 150}); err != nil {
			t.Fatal(err)
		}
		r, err := seg.Open(segPath)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()

		for _, sup := range []float64{0.01, 0.025} {
			want, err := apriori.Mine(d, apriori.Options{MinSupport: sup, ShortCircuit: true})
			if err != nil {
				t.Fatal(err)
			}
			spec := Spec{
				Mining: apriori.Options{MinSupport: sup, ShortCircuit: true},
				Procs:  3, ChunkSize: 32,
			}
			for _, name := range Names() {
				m, ok := Lookup(name)
				if !ok {
					t.Fatalf("Names() lists %q but Lookup fails", name)
				}
				if !m.Caps().Exact {
					continue
				}
				res, _, err := m.Mine(d, spec)
				if err != nil {
					t.Fatalf("seed %d sup %g %s: %v", seed, sup, name, err)
				}
				assertSameResult(t, name, res, want)

				if m.Caps().Segmented {
					sm, ok := AsSegmented(m)
					if !ok {
						t.Fatalf("%s: Caps().Segmented but no SegmentedMiner", name)
					}
					sres, _, err := sm.MineSegmented(context.Background(), r, spec)
					if err != nil {
						t.Fatalf("seed %d sup %g %s segmented: %v", seed, sup, name, err)
					}
					assertSameResult(t, name+"/segmented", sres, want)
				}
			}
		}
	}
}

// TestDispatch exercises the single dispatch entry point: by-name lookup,
// in-RAM vs segmented routing, and the error paths the CLI relies on.
func TestDispatch(t *testing.T) {
	d, err := gen.Generate(gen.Params{N: 60, L: 15, I: 3, T: 6, D: 300, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{Mining: apriori.Options{MinSupport: 0.02, ShortCircuit: true}, Procs: 2}
	want, err := apriori.Mine(d, spec.Mining)
	if err != nil {
		t.Fatal(err)
	}
	res, st, err := Dispatch(context.Background(), "vbit", d, nil, spec)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "dispatch/vbit", res, want)
	if st == nil || st.EngineName != "vbit" || st.VBit == nil {
		t.Errorf("vbit stats not normalized: %+v", st)
	}

	if _, _, err := Dispatch(context.Background(), "nope", d, nil, spec); err == nil {
		t.Error("unknown engine should fail")
	}

	segPath := filepath.Join(t.TempDir(), "d.arseg")
	if err := seg.WriteDatabase(segPath, d, seg.WriterOptions{SegTx: 100}); err != nil {
		t.Fatal(err)
	}
	r, err := seg.Open(segPath)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	sres, sst, err := Dispatch(context.Background(), "ccpd", nil, r, spec)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "dispatch/ccpd-seg", sres, want)
	if sst == nil || sst.Pipeline == nil {
		t.Errorf("segmented ccpd run missing pipeline stats: %+v", sst)
	}
	if _, _, err := Dispatch(context.Background(), "eclat", nil, r, spec); err == nil {
		t.Error("eclat has no out-of-core path; segmented dispatch should fail")
	}
}

// TestCapsShape pins the capability matrix: callers branch on these flags,
// so a silent capability regression is an interface break.
func TestCapsShape(t *testing.T) {
	wantCaps := map[string]Caps{
		"seq":      {Exact: true},
		"ccpd":     {Parallel: true, Cancellation: true, Checkpoint: true, Resume: true, Segmented: true, Exact: true},
		"pccd":     {Parallel: true, Cancellation: true, Exact: true},
		"eclat":    {Parallel: true, Cancellation: true, Exact: true},
		"vbit":     {Parallel: true, Cancellation: true, Segmented: true, Exact: true},
		"sampling": {Exact: true},
	}
	names := Names()
	if len(names) != len(wantCaps) {
		t.Fatalf("registered engines %v, want %d of them", names, len(wantCaps))
	}
	for name, want := range wantCaps {
		m, ok := Lookup(name)
		if !ok {
			t.Errorf("engine %q not registered", name)
			continue
		}
		if got := m.Caps(); got != want {
			t.Errorf("%s caps = %+v, want %+v", name, got, want)
		}
		if _, ok := AsResumer(m); ok != want.Resume {
			t.Errorf("%s: AsResumer = %v, Caps.Resume = %v", name, ok, want.Resume)
		}
		if _, ok := AsSegmented(m); ok != want.Segmented {
			t.Errorf("%s: AsSegmented = %v, Caps.Segmented = %v", name, ok, want.Segmented)
		}
	}
}

func assertSameResult(t *testing.T, label string, got, want *apriori.Result) {
	t.Helper()
	if got.MinCount != want.MinCount {
		t.Errorf("%s: MinCount %d != %d", label, got.MinCount, want.MinCount)
	}
	gk, wk := len(got.ByK), len(want.ByK)
	for k := 1; k < gk || k < wk; k++ {
		var g, w []apriori.FrequentItemset
		if k < gk {
			g = got.ByK[k]
		}
		if k < wk {
			w = want.ByK[k]
		}
		if len(g) != len(w) {
			t.Errorf("%s: k=%d has %d frequent, want %d", label, k, len(g), len(w))
			continue
		}
		for i := range g {
			if !g[i].Items.Equal(w[i].Items) || g[i].Count != w[i].Count {
				t.Errorf("%s: k=%d[%d] = %v/%d, want %v/%d",
					label, k, i, g[i].Items, g[i].Count, w[i].Items, w[i].Count)
				break
			}
		}
	}
}
